// Plan persistence benchmark: what does reuse of an analyzed BlockPlan buy?
//
// Table 5 of the paper prices preprocessing at many single-solve
// equivalents; ISSUE 4's persistence subsystem lets a service pay it once.
// For each partition scheme this bench measures the three ways to obtain a
// ready solver for a pattern that has been analyzed before:
//
//   cold_ms      create() from scratch — full planning + level analyses
//   load_ms      create_from_file(): deserialize + rehydrate + refresh
//   hit_ms       create(..., &cache) on a warm PlanCache hit
//   refresh_ms   refresh_values() on a live solver (new factorization,
//                same pattern — the timestep-loop case)
//
// and reports warm/cold ratios of (create + one solve), the quantity a
// request-serving loop sees. Acceptance (ISSUE 4): on the recursive scheme
// the warm create+solve must come in under 0.5x the cold create+solve.
//
//   ./bench/plan_cache [--n=120000] [--min-ms=40] [--out=BENCH_cache.json]
//                      [--tiny] [--legacy-timing]
//
// --tiny is the CI smoke mode: small matrix, short timings, still
// exercising save/load/cache-hit/refresh on every scheme and the JSON
// writer. --legacy-timing restores the pre-tuner grand-average estimator
// (see bench::TimingOptions) for comparison with historical JSON records.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"
#include "harness.hpp"

using namespace blocktri;

namespace {

struct Record {
  std::string matrix;
  std::string scheme;
  double cold_ms = 0.0;
  double save_ms = 0.0;
  double load_ms = 0.0;
  double hit_ms = 0.0;
  double refresh_ms = 0.0;
  double solve_ms = 0.0;
  std::size_t artifact_bytes = 0;
  double load_vs_cold = 0.0;  // (load + solve) / (cold + solve)
  double hit_vs_cold = 0.0;   // (hit + solve) / (cold + solve)
  // Resilience counters from the warm path's PlanCache (ISSUE 6): all zero
  // on a healthy run — nonzero values flag quarantined patterns, artifact
  // loads that needed transient-I/O retries, or workspace-lease contention.
  PlanCacheStats cache_stats;
};

void emit(std::vector<Record>* out, Record r) {
  const double cold_total = r.cold_ms + r.solve_ms;
  r.load_vs_cold = cold_total > 0.0 ? (r.load_ms + r.solve_ms) / cold_total
                                    : 0.0;
  r.hit_vs_cold = cold_total > 0.0 ? (r.hit_ms + r.solve_ms) / cold_total
                                   : 0.0;
  std::fprintf(stderr,
               "  %-10s %-10s cold %8.2f ms  save %7.2f  load %7.2f  "
               "hit %7.2f  refresh %7.2f  solve %7.2f  load/cold %5.3fx  "
               "hit/cold %5.3fx  (%zu KiB)\n",
               r.matrix.c_str(), r.scheme.c_str(), r.cold_ms, r.save_ms,
               r.load_ms, r.hit_ms, r.refresh_ms, r.solve_ms, r.load_vs_cold,
               r.hit_vs_cold, r.artifact_bytes >> 10);
  const PlanCacheStats& cs = r.cache_stats;
  std::fprintf(stderr,
               "  %-10s %-10s cache hits %llu  misses %llu  quarantined %llu  "
               "retry_successes %llu  lease_waits %llu  tombstones %zu\n",
               r.matrix.c_str(), r.scheme.c_str(),
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.quarantined),
               static_cast<unsigned long long>(cs.retry_successes),
               static_cast<unsigned long long>(cs.lease_waits),
               cs.tombstones);
  out->push_back(r);
}

void write_json(const std::string& path, const std::vector<Record>& recs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"plan_cache\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"matrix\": \"%s\", \"scheme\": \"%s\", \"cold_ms\": %.6f, "
        "\"save_ms\": %.6f, \"load_ms\": %.6f, \"hit_ms\": %.6f, "
        "\"refresh_ms\": %.6f, \"solve_ms\": %.6f, \"artifact_bytes\": %zu, "
        "\"load_vs_cold\": %.4f, \"hit_vs_cold\": %.4f, "
        "\"cache_quarantined\": %llu, \"cache_retry_successes\": %llu, "
        "\"cache_lease_waits\": %llu, \"cache_tombstones\": %zu}%s\n",
        r.matrix.c_str(), r.scheme.c_str(), r.cold_ms, r.save_ms, r.load_ms,
        r.hit_ms, r.refresh_ms, r.solve_ms, r.artifact_bytes, r.load_vs_cold,
        r.hit_vs_cold,
        static_cast<unsigned long long>(r.cache_stats.quarantined),
        static_cast<unsigned long long>(r.cache_stats.retry_successes),
        static_cast<unsigned long long>(r.cache_stats.lease_waits),
        r.cache_stats.tombstones, i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const double min_ms = cli.get_double("min-ms", tiny ? 2.0 : 40.0);
  const auto n =
      static_cast<index_t>(cli.get_int("n", tiny ? 10000 : 120000));
  const std::string out_path = cli.get("out", "BENCH_cache.json");
  bench::TimingOptions topt;
  topt.min_ms = min_ms;
  topt.repeats = tiny ? 3 : 5;
  topt.legacy_average = cli.get_bool("legacy-timing", false);
  const auto time_ms = [&](auto&& fn) { return bench::time_ms(fn, topt); };
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }
  std::fprintf(stderr, "plan_cache: hardware_concurrency=%u\n",
               std::thread::hardware_concurrency());

  struct MatCase {
    const char* name;
    Csr<double> L;
  };
  std::vector<MatCase> mats;
  mats.push_back({"banded", gen::banded(n, 48, 16.0, 11)});
  mats.push_back({"rndlevels", gen::random_levels(n, n / 50, 4.0, 1.0, 8)});

  struct SchemeCase {
    const char* name;
    BlockScheme scheme;
  };
  const SchemeCase schemes[] = {
      {"recursive", BlockScheme::kRecursive},
      {"column", BlockScheme::kColumn},
      {"row", BlockScheme::kRow},
  };

  std::vector<Record> recs;
  for (const MatCase& mc : mats) {
    const Csr<double>& L = mc.L;
    const auto b = gen::random_rhs<double>(L.nrows, 7);

    // New numeric values on the fixed pattern, for the refresh case.
    Csr<double> L2 = L;
    for (std::size_t i = 0; i < L2.val.size(); ++i)
      L2.val[i] *= 1.0 + 1e-3 * static_cast<double>(i % 101);

    for (const SchemeCase& sc : schemes) {
      BlockSolver<double>::Options opt;
      opt.scheme = sc.scheme;
      opt.planner.stop_rows = std::max<index_t>(512, n / 64);
      opt.planner.nseg = 8;
      opt.verify.enabled = false;

      Record r;
      r.matrix = mc.name;
      r.scheme = sc.name;

      std::unique_ptr<BlockSolver<double>> solver;
      r.cold_ms = time_ms([&] {
        solver.reset();
        if (!BlockSolver<double>::create(L, opt, &solver).ok()) std::exit(1);
      });

      const std::string path = out_path + "." + mc.name + "." + sc.name +
                               ".btpa";
      r.save_ms = time_ms([&] {
        if (!solver->save_artifact(path).ok()) std::exit(1);
      });
      r.artifact_bytes = artifact_bytes(solver->capture_artifact());

      std::unique_ptr<BlockSolver<double>> warm;
      r.load_ms = time_ms([&] {
        warm.reset();
        if (!BlockSolver<double>::create_from_file(path, L, opt, &warm).ok())
          std::exit(1);
      });

      PlanCache<double> cache;
      std::unique_ptr<BlockSolver<double>> tmp;
      if (!BlockSolver<double>::create(L, opt, &tmp, &cache).ok())
        std::exit(1);  // seed the cache (one miss)
      r.hit_ms = time_ms([&] {
        tmp.reset();
        if (!BlockSolver<double>::create(L, opt, &tmp, &cache).ok())
          std::exit(1);
      });
      if (cache.stats().hits == 0) {
        std::fprintf(stderr, "cache never hit — bug\n");
        return 1;
      }
      // Fold the warm solver's lease telemetry into the cache, then snapshot
      // the whole resilience surface for the record.
      cache.note_lease_waits(tmp->workspace_stats().lease_waits);
      r.cache_stats = cache.stats();

      r.refresh_ms = time_ms([&] {
        if (!solver->refresh_values(L2).ok()) std::exit(1);
      });

      std::vector<double> x;
      r.solve_ms = time_ms([&] { x = warm->solve(b); });
      emit(&recs, r);
      std::remove(path.c_str());
    }
  }

  write_json(out_path, recs);
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());

  // Acceptance gate (ISSUE 4): warm create+solve < 0.5x cold create+solve
  // on the recursive scheme. Only enforced at full size — in --tiny smoke
  // runs cold analysis is too cheap for the ratio to be meaningful.
  if (tiny) return 0;
  for (const Record& r : recs)
    if (r.scheme == "recursive" && !(r.hit_vs_cold < 0.5)) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAIL: %s recursive hit/cold = %.3f >= 0.5\n",
                   r.matrix.c_str(), r.hit_vs_cold);
      return 1;
    }
  return 0;
}
