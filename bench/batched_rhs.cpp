// Batched multi-RHS (SpTRSM) benchmark: wall-clock comparison of
// solve_many(B, k) against k independent solve() calls, sweeping the panel
// width k across the three partition schemes and the standalone batched
// kernels. The headline metric is the amortised per-RHS cost:
//
//   per_rhs_single  = pre_ms + single_ms        (analysis paid per RHS — the
//                                                workflow without plan reuse)
//   per_rhs_batched = (pre_ms + batched_ms) / k (analysis paid once for the
//                                                whole panel)
//   per_rhs_ratio   = per_rhs_batched / per_rhs_single
//
// plus the analysis-free kernel_ratio = (batched_ms / k) / single_ms, which
// isolates the structure-streaming win of the batched kernels themselves.
//
//   ./bench/batched_rhs [--ks=1,4,16,64] [--out=BENCH_batched.json]
//                       [--min-ms=40] [--n=120000] [--tiny]
//
// --tiny is the CI smoke mode: small matrix, k up to 4, few repetitions,
// still exercising every scheme, every batched kernel and the JSON writer.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"

using namespace blocktri;

namespace {

std::vector<index_t> parse_k_list(const std::string& s) {
  std::vector<index_t> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(static_cast<index_t>(
        std::atoi(s.substr(pos, comma - pos).c_str())));
    pos = comma + 1;
  }
  for (const index_t k : out) {
    if (k < 1) {
      std::fprintf(stderr, "bad --ks list '%s'\n", s.c_str());
      std::exit(1);
    }
  }
  return out;
}

template <class Fn>
double time_ms(double min_ms, Fn&& fn) {
  fn();  // warmup
  Stopwatch sw;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (sw.milliseconds() < min_ms || reps < 2);
  return sw.milliseconds() / reps;
}

struct Record {
  std::string matrix;
  std::string target;  // scheme or kernel name
  index_t k = 1;
  double pre_ms = 0.0;      // one-time analysis / construction
  double single_ms = 0.0;   // one solve() / one single-RHS kernel call
  double batched_ms = 0.0;  // one solve_many / batched kernel call, all k
  double per_rhs_single = 0.0;
  double per_rhs_batched = 0.0;
  double per_rhs_ratio = 0.0;
  double kernel_ratio = 0.0;
};

void emit(std::vector<Record>* out, Record r) {
  r.per_rhs_single = r.pre_ms + r.single_ms;
  r.per_rhs_batched = (r.pre_ms + r.batched_ms) / static_cast<double>(r.k);
  r.per_rhs_ratio =
      r.per_rhs_single > 0.0 ? r.per_rhs_batched / r.per_rhs_single : 0.0;
  r.kernel_ratio =
      r.single_ms > 0.0
          ? (r.batched_ms / static_cast<double>(r.k)) / r.single_ms
          : 0.0;
  std::fprintf(stderr,
               "  %-14s %-22s k=%-3d pre %8.3f ms  single %8.4f ms  "
               "batched %9.4f ms  per-RHS %6.3fx  kernel %6.3fx\n",
               r.matrix.c_str(), r.target.c_str(), r.k, r.pre_ms, r.single_ms,
               r.batched_ms, r.per_rhs_ratio, r.kernel_ratio);
  out->push_back(r);
}

void write_json(const std::string& path, const std::vector<Record>& recs,
                const std::vector<index_t>& ks) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"batched_rhs\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"ks\": [");
  for (std::size_t i = 0; i < ks.size(); ++i)
    std::fprintf(f, "%s%d", i == 0 ? "" : ", ", ks[i]);
  std::fprintf(f, "],\n  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"matrix\": \"%s\", \"target\": \"%s\", \"k\": %d, "
        "\"pre_ms\": %.6f, \"single_ms\": %.6f, \"batched_ms\": %.6f, "
        "\"per_rhs_single\": %.6f, \"per_rhs_batched\": %.6f, "
        "\"per_rhs_ratio\": %.4f, \"kernel_ratio\": %.4f}%s\n",
        r.matrix.c_str(), r.target.c_str(), r.k, r.pre_ms, r.single_ms,
        r.batched_ms, r.per_rhs_single, r.per_rhs_batched, r.per_rhs_ratio,
        r.kernel_ratio, i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const auto ks = parse_k_list(cli.get("ks", tiny ? "1,4" : "1,4,16,64"));
  const double min_ms = cli.get_double("min-ms", tiny ? 2.0 : 40.0);
  const auto n =
      static_cast<index_t>(cli.get_int("n", tiny ? 10000 : 120000));
  const std::string out_path = cli.get("out", "BENCH_batched.json");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }
  if (std::getenv("BLOCKTRI_THREADS") != nullptr) {
    std::fprintf(stderr, "unset BLOCKTRI_THREADS before running — it pins "
                         "the BlockSolver points to one thread count\n");
    return 1;
  }
  std::fprintf(stderr, "batched_rhs: hardware_concurrency=%u\n",
               std::thread::hardware_concurrency());

  const Csr<double> L = gen::banded(n, 48, 16.0, 11);
  const index_t kmax = *std::max_element(ks.begin(), ks.end());
  const auto B =
      gen::random_rhs<double>(static_cast<index_t>(L.nrows * kmax), 7);
  std::vector<double> x(static_cast<std::size_t>(L.nrows));
  std::vector<double> X(B.size());
  std::vector<Record> recs;

  // --- Standalone batched kernels (analysis = kernel construction) --------
  {
    Stopwatch pre;
    const LevelSetSolver<double> ls(L);
    const double pre_ls = pre.milliseconds();
    pre.reset();
    const SyncFreeSolver<double> sf(L);
    const double pre_sf = pre.milliseconds();
    pre.reset();
    const CusparseLikeSolver<double> cl(L);
    const double pre_cl = pre.milliseconds();
    std::vector<double> diag(static_cast<std::size_t>(L.nrows));
    for (index_t i = 0; i < L.nrows; ++i)
      diag[static_cast<std::size_t>(i)] =
          L.val[static_cast<std::size_t>(
              L.row_ptr[static_cast<std::size_t>(i) + 1] - 1)];
    const DiagonalSolver<double> dg(diag);
    const Dcsr<double> D = csr_to_dcsr(L);

    for (const index_t k : ks) {
      Record r;
      r.matrix = "banded";
      r.k = k;

      r.target = "sptrsv_levelset";
      r.pre_ms = pre_ls;
      r.single_ms =
          time_ms(min_ms, [&] { ls.solve(B.data(), x.data(), nullptr); });
      r.batched_ms =
          time_ms(min_ms, [&] { ls.solve_many(B.data(), X.data(), k,
                                              L.nrows); });
      emit(&recs, r);

      r.target = "sptrsv_syncfree";
      r.pre_ms = pre_sf;
      r.single_ms =
          time_ms(min_ms, [&] { sf.solve(B.data(), x.data(), nullptr); });
      r.batched_ms =
          time_ms(min_ms, [&] { sf.solve_many(B.data(), X.data(), k,
                                              L.nrows); });
      emit(&recs, r);

      r.target = "sptrsv_cusparse_like";
      r.pre_ms = pre_cl;
      r.single_ms =
          time_ms(min_ms, [&] { cl.solve(B.data(), x.data(), nullptr); });
      r.batched_ms =
          time_ms(min_ms, [&] { cl.solve_many(B.data(), X.data(), k,
                                              L.nrows); });
      emit(&recs, r);

      r.target = "sptrsv_diagonal";
      r.pre_ms = 0.0;
      r.single_ms =
          time_ms(min_ms, [&] { dg.solve(B.data(), x.data(), nullptr); });
      r.batched_ms =
          time_ms(min_ms, [&] { dg.solve_many(B.data(), X.data(), k,
                                              L.nrows); });
      emit(&recs, r);

      r.target = "spmv_scalar_csr";
      r.single_ms = time_ms(min_ms, [&] {
        spmv_scalar_csr(L, B.data(), x.data(), nullptr);
      });
      r.batched_ms = time_ms(min_ms, [&] {
        spmv_scalar_csr_many(L, B.data(), X.data(), k, L.nrows, L.nrows);
      });
      emit(&recs, r);

      r.target = "spmv_vector_dcsr";
      r.single_ms = time_ms(min_ms, [&] {
        spmv_vector_dcsr(D, B.data(), x.data(), nullptr);
      });
      r.batched_ms = time_ms(min_ms, [&] {
        spmv_vector_dcsr_many(D, B.data(), X.data(), k, L.nrows, L.nrows);
      });
      emit(&recs, r);
    }
  }

  // --- Full BlockSolver across the three schemes --------------------------
  struct SchemeCase {
    const char* name;
    BlockScheme scheme;
  };
  const SchemeCase schemes[] = {
      {"recursive", BlockScheme::kRecursive},
      {"column", BlockScheme::kColumn},
      {"row", BlockScheme::kRow},
  };
  const std::vector<double> b1(B.begin(), B.begin() + L.nrows);
  for (const SchemeCase& sc : schemes) {
    BlockSolver<double>::Options opt;
    opt.scheme = sc.scheme;
    opt.planner.stop_rows = std::max<index_t>(512, n / 16);
    opt.planner.nseg = 8;
    opt.verify.enabled = false;
    Stopwatch pre;
    const BlockSolver<double> solver(L, opt);
    const double pre_ms = pre.milliseconds();

    const double single_ms =
        time_ms(min_ms, [&] { x = solver.solve(b1); });
    for (const index_t k : ks) {
      const std::vector<double> Bk(B.begin(), B.begin() + L.nrows * k);
      Record r;
      r.matrix = "banded";
      r.target = std::string("blocksolver_") + sc.name;
      r.k = k;
      r.pre_ms = pre_ms;
      r.single_ms = single_ms;
      r.batched_ms = time_ms(min_ms, [&] { X = solver.solve_many(Bk, k); });
      emit(&recs, r);
    }
  }

  write_json(out_path, recs, ks);
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());
  return 0;
}
