// Ablation of the §3.4 adaptive kernel selection: the adaptive decision
// tree (Alg. 7) against forcing every triangular block to a single fixed
// SpTRSV kernel (square blocks stay adaptive so only one factor varies).
// The paper's claim: adaptivity "brings better overall performance" than
// any fixed choice across matrices.
//
//   ./bench/ablation_adaptive
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

int main(int, char**) {
  const sim::GpuSpec base = sim::titan_rtx();
  const TriKernelKind forced[3] = {TriKernelKind::kLevelSet,
                                   TriKernelKind::kSyncFree,
                                   TriKernelKind::kCusparseLike};

  std::printf("Adaptive-selection ablation — block-algorithm GFlops with the\n"
              "Alg. 7 selector vs a single forced triangular kernel:\n\n");
  TextTable t({"matrix", "adaptive", "all level-set", "all sync-free",
               "all cusparse-like", "best fixed"});
  GeoMean adaptive_vs_best_fixed;
  for (const auto& entry : gen::representative_suite()) {
    const Csr<double> L = entry.build();
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    const auto stop =
        static_cast<index_t>(sim::paper_stop_rows(base, entry.scale));
    const auto b = gen::random_rhs<double>(L.nrows, 7);

    auto run = [&](bool adaptive, TriKernelKind kind) {
      auto opt = bench_block_options<double>(stop);
      opt.adaptive = adaptive;
      opt.forced_tri = kind;
      // Square blocks keep the adaptive SpMV choice in both modes: the
      // Options only disable adaptivity wholesale, so re-select via
      // thresholds by keeping the default table and forcing squares to the
      // selector's pick is equivalent — we simply always leave the square
      // selection adaptive by running forced mode per-kernel below.
      if (!adaptive) {
        // Use a solver probe to recover the adaptive square choice, then
        // force that per-square kind. Simpler: force scalar-CSR everywhere
        // is unfair; instead force vector-CSR (robust middle ground).
        opt.forced_square = SpmvKernelKind::kVectorCsr;
      }
      const BlockSolver<double> solver(L, opt);
      return measure_block(solver, b, gpu).gflops;
    };

    const double ad = run(true, TriKernelKind::kSyncFree);
    double best_fixed = 0.0;
    std::vector<std::string> row = {entry.name, fmt_fixed(ad, 2)};
    for (const TriKernelKind k : forced) {
      const double g = run(false, k);
      best_fixed = std::max(best_fixed, g);
      row.push_back(fmt_fixed(g, 2));
    }
    row.push_back(fmt_fixed(best_fixed, 2));
    adaptive_vs_best_fixed.add(ad / best_fixed);
    t.add_row(std::move(row));
    std::fflush(stdout);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("adaptive vs best-fixed-per-matrix (geomean): %.2fx\n"
              "(>= 1 means the decision tree recovers or beats the best "
              "single kernel choice,\nwithout knowing it in advance)\n",
              adaptive_vs_best_fixed.value());
  return 0;
}
