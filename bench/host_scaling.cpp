// Host thread-scaling benchmark for the multithreaded execution backend:
// real wall-clock times (not the GPU simulator) for the parallel SpTRSV and
// SpMV kernels and the BlockSolver executor, swept over a list of thread
// counts, with serial (1-thread) runs as the speedup baseline.
//
//   ./bench/host_scaling [--threads=1,2,4,8] [--out=BENCH_host.json]
//                        [--min-ms=80] [--n=400000] [--tiny]
//
// --tiny is the CI smoke mode: one small matrix, a handful of repetitions,
// still exercising every kernel and the JSON writer. The JSON records
// hardware_concurrency so readers can tell when the sweep was run on fewer
// cores than the requested thread counts (speedups are then not expected).
//
// Note: BLOCKTRI_THREADS overrides BlockSolver's Options::threads, which
// would pin every point of the sweep to one count — the bench refuses to run
// with it set.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"

using namespace blocktri;

namespace {

std::vector<int> parse_thread_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  for (const int t : out) {
    if (t < 1) {
      std::fprintf(stderr, "bad --threads list '%s'\n", s.c_str());
      std::exit(1);
    }
  }
  return out;
}

/// Repeats fn until `min_ms` of wall-clock has elapsed (at least twice, after
/// one untimed warmup) and returns the per-call milliseconds.
template <class Fn>
double time_ms(double min_ms, Fn&& fn) {
  fn();  // warmup
  Stopwatch sw;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (sw.milliseconds() < min_ms || reps < 2);
  return sw.milliseconds() / reps;
}

struct Record {
  std::string matrix;
  std::string kernel;
  int threads = 1;
  double ms = 0.0;
  double gflops = 0.0;  // 2*nnz / time (0 for preprocessing records)
  double speedup = 0.0; // vs the 1-thread run of the same (matrix, kernel)
};

class Sweep {
 public:
  Sweep(std::string matrix, double min_ms, std::vector<Record>* out)
      : matrix_(std::move(matrix)), min_ms_(min_ms), out_(out) {}

  /// Times fn(pool) for one thread count (pool == nullptr for 1 thread) and
  /// appends the record; `flops` = 0 suppresses the GFLOP/s column.
  template <class Fn>
  void point(const std::string& kernel, int threads, double flops, Fn&& fn) {
    ThreadPool* pool = nullptr;
    std::unique_ptr<ThreadPool> owned;
    if (threads > 1) {
      owned = std::make_unique<ThreadPool>(threads);
      pool = owned.get();
    }
    Record r;
    r.matrix = matrix_;
    r.kernel = kernel;
    r.threads = threads;
    r.ms = time_ms(min_ms_, [&] { fn(pool); });
    if (flops > 0.0) r.gflops = flops / (r.ms * 1e6);
    if (threads == 1) serial_ms_[kernel] = r.ms;
    const auto it = serial_ms_.find(kernel);
    r.speedup = it == serial_ms_.end() ? 0.0 : it->second / r.ms;
    out_->push_back(r);
    std::fprintf(stderr, "  %-28s %-16s t=%d  %9.4f ms  %7.3f GF/s  %5.2fx\n",
                 matrix_.c_str(), kernel.c_str(), threads, r.ms, r.gflops,
                 r.speedup);
  }

 private:
  std::string matrix_;
  double min_ms_;
  std::vector<Record>* out_;
  std::map<std::string, double> serial_ms_;
};

void write_json(const std::string& path, const std::vector<Record>& recs,
                const std::vector<int>& threads) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"host_scaling\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"threads\": [");
  for (std::size_t i = 0; i < threads.size(); ++i)
    std::fprintf(f, "%s%d", i == 0 ? "" : ", ", threads[i]);
  std::fprintf(f, "],\n  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(f,
                 "    {\"matrix\": \"%s\", \"kernel\": \"%s\", \"threads\": "
                 "%d, \"ms\": %.6f, \"gflops\": %.4f, \"speedup\": %.4f}%s\n",
                 r.matrix.c_str(), r.kernel.c_str(), r.threads, r.ms,
                 r.gflops, r.speedup, i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const auto threads =
      parse_thread_list(cli.get("threads", tiny ? "1,2" : "1,2,4,8"));
  const double min_ms = cli.get_double("min-ms", tiny ? 2.0 : 80.0);
  const auto n = static_cast<index_t>(cli.get_int("n", tiny ? 20000 : 400000));
  const std::string out_path = cli.get("out", "BENCH_host.json");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }
  if (std::getenv("BLOCKTRI_THREADS") != nullptr) {
    std::fprintf(stderr, "unset BLOCKTRI_THREADS before running the sweep — "
                         "it pins every BlockSolver point to one count\n");
    return 1;
  }
  std::fprintf(stderr, "host_scaling: hardware_concurrency=%u\n",
               std::thread::hardware_concurrency());

  // Two profiles where the paper's kernels differ: a wide banded matrix
  // (few levels, SpMV-heavy) and a level-structured one (sync-free-friendly).
  struct Case {
    std::string name;
    Csr<double> L;
  };
  std::vector<Case> cases;
  cases.push_back(Case{"banded", gen::banded(n, 64, 24.0, 11)});
  cases.push_back(
      Case{"random_levels", gen::random_levels(n, 160, 10.0, 1.0, 12)});

  std::vector<Record> recs;
  for (const Case& c : cases) {
    const Csr<double>& L = c.L;
    const auto b = gen::random_rhs<double>(L.nrows, 7);
    std::vector<double> x(static_cast<std::size_t>(L.nrows));
    std::vector<double> y(static_cast<std::size_t>(L.nrows));
    const double flops = 2.0 * static_cast<double>(L.nnz());
    const Dcsr<double> D = csr_to_dcsr(L);
    Sweep sweep(c.name, min_ms, &recs);

    for (const int t : threads) {
      // SpTRSV kernels (solver built once per thread count so the analysis
      // also runs with that pool; solve timing dominates).
      {
        std::unique_ptr<ThreadPool> pool;
        if (t > 1) pool = std::make_unique<ThreadPool>(t);
        Stopwatch pre;
        const LevelSetSolver<double> ls(L, pool.get());
        const double pre_ms = pre.milliseconds();
        sweep.point("sptrsv_levelset", t, flops,
                    [&](ThreadPool* p) { ls.solve(b.data(), x.data(),
                                                  nullptr, p); });
        recs.push_back({c.name, "pre_levelset", t, pre_ms, 0.0, 0.0});
        pre.reset();
        const SyncFreeSolver<double> sf(L, pool.get());
        const double pre_sf_ms = pre.milliseconds();
        sweep.point("sptrsv_syncfree", t, flops,
                    [&](ThreadPool* p) { sf.solve(b.data(), x.data(),
                                                  nullptr, p); });
        recs.push_back({c.name, "pre_syncfree", t, pre_sf_ms, 0.0, 0.0});
      }

      // SpMV kernels: y -= L x (y reset cost is part of each rep; identical
      // across thread counts, so speedups stay comparable).
      sweep.point("spmv_scalar_csr", t, flops, [&](ThreadPool* p) {
        std::fill(y.begin(), y.end(), 0.0);
        spmv_scalar_csr(L, x.data(), y.data(), nullptr, p);
      });
      sweep.point("spmv_vector_csr", t, flops, [&](ThreadPool* p) {
        std::fill(y.begin(), y.end(), 0.0);
        spmv_vector_csr(L, x.data(), y.data(), nullptr, p);
      });
      sweep.point("spmv_scalar_dcsr", t, flops, [&](ThreadPool* p) {
        std::fill(y.begin(), y.end(), 0.0);
        spmv_scalar_dcsr(D, x.data(), y.data(), nullptr, p);
      });
      sweep.point("spmv_vector_dcsr", t, flops, [&](ThreadPool* p) {
        std::fill(y.begin(), y.end(), 0.0);
        spmv_vector_dcsr(D, x.data(), y.data(), nullptr, p);
      });

      // Full BlockSolver: preprocessing (construction) + executor solve.
      BlockSolver<double>::Options opt;
      opt.planner.stop_rows = std::max<index_t>(1024, n / 16);
      opt.threads = t;
      opt.verify.enabled = false;
      Stopwatch pre;
      const BlockSolver<double> solver(L, opt);
      recs.push_back(
          {c.name, "pre_blocksolver", t, pre.milliseconds(), 0.0, 0.0});
      sweep.point("blocksolver_solve", t, flops,
                  [&](ThreadPool*) { x = solver.solve(b); });
    }
  }

  write_json(out_path, recs, threads);
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());
  return 0;
}
