// Tables 1 and 2 reproduction: the number of items updated to the right-hand
// side b (Table 1) and loaded from the solution vector x (Table 2) for the
// three block algorithms, as a function of the number of triangular parts.
//
// Two columns are shown per cell: the paper's closed form and the count
// measured from an actual partition plan (they must agree; the dense model
// is exact for the uniform splits used here).
//
//   ./bench/table1_2_traffic
#include <cmath>
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

int main(int, char**) {
  const index_t n = 65536 * 4;  // divisible by every part count below
  const index_t part_counts[4] = {4, 16, 256, 65536};

  auto measured = [&](BlockScheme scheme, index_t parts, bool b_items) {
    BlockPlan plan;
    if (scheme == BlockScheme::kColumn) {
      plan = plan_column(n, parts);
    } else if (scheme == BlockScheme::kRow) {
      plan = plan_row(n, parts);
    } else {
      PlannerOptions opt;
      opt.reorder = false;
      opt.stop_rows = 1;
      opt.max_depth = static_cast<int>(std::lround(std::log2(parts)));
      Csr<double> permuted;
      const auto L = gen::diagonal(n, 1);
      plan = plan_recursive(L, opt, &permuted);
    }
    return static_cast<double>(b_items ? plan.b_items_updated()
                                       : plan.x_items_loaded()) /
           static_cast<double>(n);
  };

  auto row_for = [&](const char* name, auto formula, BlockScheme scheme,
                     bool b_items) {
    std::vector<std::string> row = {name};
    for (const index_t p : part_counts) {
      const double x = std::log2(static_cast<double>(p));
      row.push_back(fmt_compact(formula(x)) + "n (meas " +
                    fmt_compact(measured(scheme, p, b_items)) + "n)");
    }
    return row;
  };

  std::printf("Table 1 — items updated to right-hand side b "
              "(formula vs measured, units of n):\n\n");
  TextTable t1({"method", "4 parts", "16 parts", "256 parts", "65536 parts"});
  t1.add_row(row_for("col. block",
                     [](double x) { return std::pow(2.0, x - 1) + 0.5; },
                     BlockScheme::kColumn, true));
  t1.add_row(row_for("row block",
                     [](double x) { return 2.0 - std::pow(2.0, -x); },
                     BlockScheme::kRow, true));
  t1.add_row(row_for("rec. block", [](double x) { return 0.5 * x + 1.0; },
                     BlockScheme::kRecursive, true));
  std::printf("%s\n", t1.to_string().c_str());

  std::printf("Table 2 — items loaded from solution vector x:\n\n");
  TextTable t2({"method", "4 parts", "16 parts", "256 parts", "65536 parts"});
  t2.add_row(row_for("col. block",
                     [](double x) { return 1.0 - std::pow(2.0, -x); },
                     BlockScheme::kColumn, false));
  t2.add_row(row_for("row block",
                     [](double x) { return std::pow(2.0, x - 1) - 0.5; },
                     BlockScheme::kRow, false));
  t2.add_row(row_for("rec. block", [](double x) { return 0.5 * x; },
                     BlockScheme::kRecursive, false));
  std::printf("%s\n", t2.to_string().c_str());

  std::printf(
      "Shape: the column scheme's b-updates and the row scheme's x-loads grow\n"
      "like 2^(x-1); the recursive scheme grows only linearly in x = log2(parts)\n"
      "— the trade-off that makes it the best of the three (paper §3.2).\n");
  return 0;
}
