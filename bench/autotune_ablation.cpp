// Autotuner ablation (ISSUE 7): on the Fig. 6 dataset, how do cost-model
// tuned plans compare against the default adaptive planner and against the
// two single-kernel baselines (everything level-set / everything sync-free)?
//
// All four variants are measured with the same warm-cache simulated-solve
// protocol as the other harnesses (bench::measure_block), which is also the
// oracle the tuner's search minimises — so "tuned never slower than default"
// is the property under test, not a lucky draw. Acceptance (ISSUE 7):
// geomean tuned/default <= 1.00 and no matrix regressing by more than 2%.
//
//   ./bench/autotune_ablation [--limit=159] [--out=BENCH_autotune.json]
//                             [--tiny] [--verbose]
//
// --tiny is the CI smoke mode: two matrices, a short annealing budget, the
// acceptance gate still evaluated per record but the geomean summary is
// informational only.
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "tune/cost_model.hpp"

using namespace blocktri;
using namespace blocktri::bench;

namespace {

struct Record {
  std::string matrix;
  std::string family;
  index_t n = 0;
  offset_t nnz = 0;
  double default_ms = 0.0;
  double tuned_ms = 0.0;
  double levelset_ms = 0.0;
  double syncfree_ms = 0.0;
  double tuned_vs_default = 0.0;
  bool fell_back = false;
};

void write_json(const std::string& path, const std::vector<Record>& recs,
                double geomean, std::uint64_t calibrations) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"autotune_ablation\",\n");
  std::fprintf(f, "  \"geomean_tuned_vs_default\": %.6f,\n", geomean);
  std::fprintf(f, "  \"calibration_runs\": %llu,\n",
               static_cast<unsigned long long>(calibrations));
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"matrix\": \"%s\", \"family\": \"%s\", \"n\": %lld, "
        "\"nnz\": %lld, \"default_ms\": %.6f, \"tuned_ms\": %.6f, "
        "\"levelset_ms\": %.6f, \"syncfree_ms\": %.6f, "
        "\"tuned_vs_default\": %.4f, \"fell_back\": %s}%s\n",
        r.matrix.c_str(), r.family.c_str(), static_cast<long long>(r.n),
        static_cast<long long>(r.nnz), r.default_ms, r.tuned_ms,
        r.levelset_ms, r.syncfree_ms, r.tuned_vs_default,
        r.fell_back ? "true" : "false", i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const auto limit =
      static_cast<std::size_t>(cli.get_int("limit", tiny ? 2 : 159));
  const std::string out_path = cli.get("out", "BENCH_autotune.json");
  const bool verbose = cli.get_bool("verbose", true);
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }

  const sim::GpuSpec base = sim::titan_rtx();
  const auto suite = gen::paper_suite();

  TextTable table({"matrix", "family", "n", "default", "tuned", "lvlset",
                   "syncfree", "tuned/def"});

  std::vector<Record> recs;
  GeoMean gm;
  double worst = 0.0;
  std::string worst_name;
  int fallbacks = 0;

  std::size_t done = 0;
  for (const auto& entry : suite) {
    if (done >= limit) break;
    ++done;
    const Csr<double> L = entry.build();
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    const auto stop =
        static_cast<index_t>(sim::paper_stop_rows(base, entry.scale));
    const auto b = gen::random_rhs<double>(L.nrows, 7);

    Record r;
    r.matrix = entry.name;
    r.family = entry.family;
    r.n = L.nrows;
    r.nnz = L.nnz();

    {
      BlockSolver<double> s(L, bench_block_options<double>(stop));
      r.default_ms = measure_block(s, b, gpu).ms;
    }
    {
      auto opt = bench_block_options<double>(stop);
      opt.tune.enabled = true;
      opt.tune.gpu = gpu;
      opt.tune.sa_iterations = tiny ? 6 : 24;
      BlockSolver<double> s(L, opt);
      r.tuned_ms = measure_block(s, b, gpu).ms;
      r.fell_back = s.tune_stats().fell_back;
      if (r.fell_back) ++fallbacks;
    }
    {
      auto opt = bench_block_options<double>(stop);
      opt.adaptive = false;
      opt.forced_tri = TriKernelKind::kLevelSet;
      BlockSolver<double> s(L, opt);
      r.levelset_ms = measure_block(s, b, gpu).ms;
    }
    {
      auto opt = bench_block_options<double>(stop);
      opt.adaptive = false;
      opt.forced_tri = TriKernelKind::kSyncFree;
      BlockSolver<double> s(L, opt);
      r.syncfree_ms = measure_block(s, b, gpu).ms;
    }

    r.tuned_vs_default =
        r.default_ms > 0.0 ? r.tuned_ms / r.default_ms : 1.0;
    gm.add(r.tuned_vs_default);
    if (r.tuned_vs_default > worst) {
      worst = r.tuned_vs_default;
      worst_name = r.matrix;
    }

    table.add_row({r.matrix, r.family, fmt_count(r.n), fmt_fixed(r.default_ms, 4),
                   fmt_fixed(r.tuned_ms, 4), fmt_fixed(r.levelset_ms, 4),
                   fmt_fixed(r.syncfree_ms, 4),
                   fmt_fixed(r.tuned_vs_default, 3)});
    recs.push_back(r);
    if (verbose && done % 20 == 0)
      std::fprintf(stderr, "  ... %zu/%zu matrices\n", done,
                   std::min(limit, suite.size()));
  }

  std::printf("Autotune ablation — simulated ms per solve (warm cache):\n%s\n",
              table.to_string().c_str());
  std::printf(
      "geomean tuned/default %.4f over %d matrices; worst %.4f (%s); "
      "fell back to default plan on %d\n",
      gm.value(), gm.count(), worst, worst_name.c_str(), fallbacks);
  std::printf("cost-model calibrations this run: %llu\n",
              static_cast<unsigned long long>(tune::calibration_run_count()));

  write_json(out_path, recs, gm.value(), tune::calibration_run_count());
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());

  // Acceptance gate (ISSUE 7). Per-matrix: no regression beyond 2%. The
  // geomean bound is only meaningful over the full suite, so it is skipped
  // under --tiny / small --limit runs.
  for (const Record& r : recs)
    if (r.tuned_vs_default > 1.02) {
      std::fprintf(stderr, "ACCEPTANCE FAIL: %s tuned/default = %.4f > 1.02\n",
                   r.matrix.c_str(), r.tuned_vs_default);
      return 1;
    }
  if (!tiny && done >= suite.size() && !(gm.value() <= 1.0 + 1e-9)) {
    std::fprintf(stderr, "ACCEPTANCE FAIL: geomean tuned/default = %.4f > 1\n",
                 gm.value());
    return 1;
  }
  return 0;
}
