// SIMD speedup benchmark: what does the vectorised hot path buy over the
// pre-SIMD sequential loops?
//
// Measures, single-threaded, for each matrix case:
//
//   spmv_csr / spmv_dcsr    one host SpMV update sweep (y -= L·x), the
//                           square-block kernel of the blocked solve
//   spmv_csr_many           the batched (k-RHS) SpMV update
//   solve                   end-to-end recursive warm BlockSolver solve via
//                           the raw-pointer zero-allocation path
//   solve_many              the batched end-to-end counterpart
//
// under three lowerings: strict (BLOCKTRI_STRICT_SCALAR's sequential order,
// the pre-SIMD baseline), blocked (canonical 4-lane order, scalar
// instructions) and vector (AVX2/NEON). Speedups are vector vs strict — the
// committed scalar baseline of the PR that introduced this layer.
//
//   ./bench/simd_speedup [--n=200000] [--k=16] [--min-ms=40]
//                        [--out=BENCH_simd.json] [--tiny]
//
// Acceptance (skipped with --tiny, where timings are noise): the best SpMV
// micro-kernel speedup must reach 1.5x and the best end-to-end recursive
// warm-solve speedup 1.3x.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"
#include "common/simd.hpp"

using namespace blocktri;

namespace {

template <class Fn>
double time_ms(double min_ms, Fn&& fn) {
  fn();  // warmup
  Stopwatch sw;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (sw.milliseconds() < min_ms || reps < 2);
  return sw.milliseconds() / reps;
}

struct Record {
  std::string matrix;
  std::string kernel;
  double strict_ms = 0.0;
  double blocked_ms = 0.0;
  double vector_ms = 0.0;
  double vec_vs_strict = 0.0;
  double vec_vs_blocked = 0.0;
};

void emit(std::vector<Record>* out, Record r) {
  r.vec_vs_strict = r.vector_ms > 0.0 ? r.strict_ms / r.vector_ms : 0.0;
  r.vec_vs_blocked = r.vector_ms > 0.0 ? r.blocked_ms / r.vector_ms : 0.0;
  std::fprintf(stderr,
               "  %-10s %-14s strict %9.3f ms  blocked %9.3f ms  vector "
               "%9.3f ms  vec/strict %5.2fx  vec/blocked %5.2fx\n",
               r.matrix.c_str(), r.kernel.c_str(), r.strict_ms, r.blocked_ms,
               r.vector_ms, r.vec_vs_strict, r.vec_vs_blocked);
  out->push_back(r);
}

/// Times `fn` under each of the three lowerings.
template <class Fn>
Record sweep(const char* matrix, const char* kernel, double min_ms, Fn&& fn) {
  Record r;
  r.matrix = matrix;
  r.kernel = kernel;
  simd::force_path(simd::Path::kStrictScalar);
  r.strict_ms = time_ms(min_ms, fn);
  simd::force_path(simd::Path::kBlockedScalar);
  r.blocked_ms = time_ms(min_ms, fn);
  simd::force_path(simd::Path::kVector);
  r.vector_ms = time_ms(min_ms, fn);
  simd::clear_forced_path();
  return r;
}

void write_json(const std::string& path, const std::vector<Record>& recs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"simd_speedup\",\n");
  std::fprintf(f, "  \"vector_isa\": \"%s\",\n", simd::vector_isa_name());
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"matrix\": \"%s\", \"kernel\": \"%s\", \"strict_ms\": %.6f, "
        "\"blocked_ms\": %.6f, \"vector_ms\": %.6f, \"vec_vs_strict\": %.4f, "
        "\"vec_vs_blocked\": %.4f}%s\n",
        r.matrix.c_str(), r.kernel.c_str(), r.strict_ms, r.blocked_ms,
        r.vector_ms, r.vec_vs_strict, r.vec_vs_blocked,
        i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const double min_ms = cli.get_double("min-ms", tiny ? 2.0 : 40.0);
  const auto n = static_cast<index_t>(cli.get_int("n", tiny ? 10000 : 200000));
  const auto k = static_cast<index_t>(cli.get_int("k", 16));
  const std::string out_path = cli.get("out", "BENCH_simd.json");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }
  std::fprintf(stderr, "simd_speedup: vector_isa=%s\n",
               simd::vector_isa_name());
  if (!simd::vector_isa_available())
    std::fprintf(stderr,
                 "  (no vector ISA: the vector path lowers to blocked-scalar; "
                 "speedups measure the canonical-order rewrite only)\n");

  struct MatCase {
    const char* name;
    Csr<double> L;
  };
  std::vector<MatCase> mats;
  // Three regimes: a streaming banded case (wide-ish scattered rows), a
  // level-structured case whose short rows exercise the unrolled fast paths,
  // and a dense-block case (long contiguous rows, cache-resident x) — the
  // shape of the dense panels the blocked solve manufactures, and where the
  // strict baseline is bound by its one sequential FP-add chain.
  const auto nd = static_cast<index_t>(tiny ? 400 : 3000);
  mats.push_back({"banded", gen::banded(n, 48, 16.0, 11)});
  mats.push_back({"kkt", gen::kkt_structure(n, 17, 4.0, 42)});
  mats.push_back({"dense", gen::dense_lower(nd, 1.0, 13)});

  std::vector<Record> recs;
  for (const MatCase& mc : mats) {
    const Csr<double>& L = mc.L;
    const Dcsr<double> D = csr_to_dcsr(L);
    const auto x = gen::random_rhs<double>(L.ncols, 1);
    auto y = gen::random_rhs<double>(L.nrows, 2);

    emit(&recs, sweep(mc.name, "spmv_csr", min_ms, [&] {
           spmv_scalar_csr(L, x.data(), y.data(), nullptr);
         }));
    emit(&recs, sweep(mc.name, "spmv_dcsr", min_ms, [&] {
           spmv_scalar_dcsr(D, x.data(), y.data(), nullptr);
         }));

    std::vector<double> Xp, Yp;
    for (index_t c = 0; c < k; ++c) {
      const auto xc = gen::random_rhs<double>(L.ncols, 100 + static_cast<int>(c));
      const auto yc = gen::random_rhs<double>(L.nrows, 200 + static_cast<int>(c));
      Xp.insert(Xp.end(), xc.begin(), xc.end());
      Yp.insert(Yp.end(), yc.begin(), yc.end());
    }
    emit(&recs, sweep(mc.name, "spmv_csr_many", min_ms, [&] {
           spmv_scalar_csr_many(L, Xp.data(), Yp.data(), k, L.ncols, L.nrows,
                                nullptr);
         }));

    // End-to-end recursive warm solve through the zero-allocation raw path.
    BlockSolver<double>::Options opt;
    opt.planner.stop_rows = std::max<index_t>(512, L.nrows / 64);
    opt.verify.enabled = false;
    const BlockSolver<double> solver(L, opt);
    const auto b = gen::random_rhs<double>(L.nrows, 7);
    std::vector<double> xs(b.size());
    emit(&recs, sweep(mc.name, "solve", min_ms,
                      [&] { solver.solve(b.data(), xs.data()); }));

    std::vector<double> B, X;
    for (index_t c = 0; c < k; ++c) {
      const auto bc = gen::random_rhs<double>(L.nrows, 300 + static_cast<int>(c));
      B.insert(B.end(), bc.begin(), bc.end());
    }
    X.resize(B.size());
    emit(&recs, sweep(mc.name, "solve_many", min_ms,
                      [&] { solver.solve_many(B.data(), X.data(), k); }));
  }

  write_json(out_path, recs);
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());

  // Acceptance gates (full size only; --tiny timings are smoke-test noise):
  // the vector path must beat the pre-SIMD baseline by 1.5x on an SpMV
  // micro-kernel and by 1.3x on an end-to-end recursive warm solve.
  if (tiny) return 0;
  double best_spmv = 0.0, best_solve = 0.0;
  for (const Record& r : recs) {
    if (r.kernel.rfind("spmv", 0) == 0)
      best_spmv = std::max(best_spmv, r.vec_vs_strict);
    if (r.kernel == "solve")
      best_solve = std::max(best_solve, r.vec_vs_strict);
  }
  if (!(best_spmv >= 1.5)) {
    std::fprintf(stderr, "ACCEPTANCE FAIL: best spmv vec/strict = %.3f < 1.5\n",
                 best_spmv);
    return 1;
  }
  if (!(best_solve >= 1.3)) {
    std::fprintf(stderr,
                 "ACCEPTANCE FAIL: best solve vec/strict = %.3f < 1.3\n",
                 best_solve);
    return 1;
  }
  std::fprintf(stderr, "acceptance: spmv %.2fx (>=1.5), solve %.2fx (>=1.3)\n",
               best_spmv, best_solve);
  return 0;
}
