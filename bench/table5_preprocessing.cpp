// Table 5 reproduction: average preprocessing time, single-SpTRSV time, and
// total time for preprocessing + 100 / 500 / 1000 solves, for the three
// methods, on the (scaled) Titan RTX.
//
// Preprocessing times come from the host cost model (DESIGN.md §5): the
// block algorithm's recursive level analyses + permutations + block
// extraction are counted by the actual passes; the baselines' analyses are
// the standard ones (cuSPARSE: level analysis incl. the level-item
// bucketing; Sync-free: one in-degree counting pass).
//
//   ./bench/table5_preprocessing [--limit=40]
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto limit = static_cast<std::size_t>(cli.get_int("limit", 40));
  const sim::GpuSpec base = sim::titan_rtx();

  double pre_ms[3] = {0, 0, 0};
  double solve_ms[3] = {0, 0, 0};
  const char* names[3] = {"cuSPARSE-like", "Sync-free", "block algorithm"};

  const auto suite = gen::paper_suite();
  std::size_t done = 0;
  for (const auto& entry : suite) {
    if (done >= limit) break;
    ++done;
    const Csr<double> L = entry.build();
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    const auto stop =
        static_cast<index_t>(sim::paper_stop_rows(base, entry.scale));
    const auto b = gen::random_rhs<double>(L.nrows, 7);
    const auto nnz_bytes =
        L.nnz() * static_cast<std::int64_t>(sizeof(index_t) + sizeof(double));

    {
      // cuSPARSE-like preprocessing: level analysis = two passes over the
      // nonzeros (level assignment + item bucketing) plus per-row pointers.
      CusparseLikeSolver<double> s(L);
      sim::HostSim hs(sim::host_default());
      hs.ops(2 * L.nnz() + 2 * L.nrows);
      hs.bytes(2 * nnz_bytes);
      pre_ms[0] += hs.ms();
      solve_ms[0] += measure_baseline(s, L, b, gpu).ms;
    }
    {
      // Sync-free preprocessing: one atomic-increment pass over the nonzeros
      // (Alg. 3 lines 1–5) — the cheapest analysis of the three.
      SyncFreeSolver<double> s(L);
      sim::HostSim hs(sim::host_default());
      hs.ops(L.nnz());
      hs.bytes(nnz_bytes);
      pre_ms[1] += hs.ms();
      solve_ms[1] += measure_baseline(s, L, b, gpu).ms;
    }
    {
      BlockSolver<double> s(L, bench_block_options<double>(stop));
      pre_ms[2] += s.preprocess_stats().model_ms;
      solve_ms[2] += measure_block(s, b, gpu).ms;
    }
    if (done % 10 == 0)
      std::fprintf(stderr, "  ... %zu matrices\n", done);
  }

  std::printf("Table 5 — average times (ms) over %zu suite matrices, "
              "simulated Titan RTX:\n\n", done);
  TextTable t({"method", "preprocessing", "single SpTRSV", "100 iters",
               "500 iters", "1000 iters"});
  for (int m = 0; m < 3; ++m) {
    const double pre = pre_ms[m] / static_cast<double>(done);
    const double one = solve_ms[m] / static_cast<double>(done);
    t.add_row({names[m], fmt_fixed(pre, 3), fmt_fixed(one, 4),
               fmt_fixed(pre + 100 * one, 2), fmt_fixed(pre + 500 * one, 2),
               fmt_fixed(pre + 1000 * one, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  const double ratio =
      (pre_ms[2] / static_cast<double>(done)) /
      (solve_ms[2] / static_cast<double>(done));
  std::printf("block preprocessing / single solve = %.2fx "
              "(paper reports 9.16x on average)\n", ratio);
  std::printf(
      "\nPaper (ms): cuSPARSE 91.32 / 103.09 / 10400.71 / 51638.30 / "
      "103185.29;\n  Sync-free 2.34 / 94.79 / 9481.10 / 47396.15 / 94789.96;\n"
      "  block 104.44 / 11.40 / 1244.05 / 5802.48 / 11500.52.\n");
  return 0;
}
