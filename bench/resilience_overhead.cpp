// Cost of the resilience machinery on the hot path (ISSUE 6).
//
// The session layer threads an ExecControl through every executor: unarmed
// solves pay one relaxed atomic load per checkpoint, armed solves add a
// steady_clock read per step/wave (and chunked polling inside flat kernels).
// This bench prices both against the pre-session baseline the warm path
// must not regress:
//
//   baseline_ms   warm recursive solve, no controls attached (unarmed
//                 fast path — what every existing caller pays)
//   deadline_ms   same solve with a far-future deadline armed (clock reads
//                 at every poll point, none of them ever trip)
//   cancel_ms     same solve with a cancel token armed (atomic flag reads,
//                 no clock)
//
// Acceptance (ISSUE 6): deadline_ms / baseline_ms - 1 <= 2% on the warm
// recursive solve at full size. Timings interleave the variants and keep
// the median of several rounds, so the gate measures the machinery rather
// than scheduler noise.
//
//   ./bench/resilience_overhead [--n=120000] [--min-ms=40] [--rounds=5]
//                               [--out=BENCH_resilience.json] [--tiny]
//
// --tiny is the CI smoke mode: small matrix, short timings, gate reported
// but not enforced (too little work for a stable ratio).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"

using namespace blocktri;

namespace {

template <class Fn>
double time_ms(double min_ms, Fn&& fn) {
  fn();  // warmup
  Stopwatch sw;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (sw.milliseconds() < min_ms || reps < 2);
  return sw.milliseconds() / reps;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Record {
  std::string matrix;
  index_t n = 0;
  double baseline_ms = 0.0;
  double deadline_ms = 0.0;
  double cancel_ms = 0.0;
  double deadline_overhead = 0.0;  // deadline_ms / baseline_ms - 1
  double cancel_overhead = 0.0;
};

void write_json(const std::string& path, const std::vector<Record>& recs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"resilience_overhead\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"matrix\": \"%s\", \"n\": %lld, \"baseline_ms\": %.6f, "
        "\"deadline_ms\": %.6f, \"cancel_ms\": %.6f, "
        "\"deadline_overhead\": %.6f, \"cancel_overhead\": %.6f}%s\n",
        r.matrix.c_str(), static_cast<long long>(r.n), r.baseline_ms,
        r.deadline_ms, r.cancel_ms, r.deadline_overhead, r.cancel_overhead,
        i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const double min_ms = cli.get_double("min-ms", tiny ? 2.0 : 40.0);
  const int rounds = cli.get_int("rounds", tiny ? 3 : 5);
  const auto n =
      static_cast<index_t>(cli.get_int("n", tiny ? 10000 : 120000));
  const std::string out_path = cli.get("out", "BENCH_resilience.json");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }
  std::fprintf(stderr, "resilience_overhead: hardware_concurrency=%u\n",
               std::thread::hardware_concurrency());

  struct MatCase {
    const char* name;
    Csr<double> L;
  };
  std::vector<MatCase> mats;
  mats.push_back({"banded", gen::banded(n, 48, 16.0, 11)});
  mats.push_back({"rndlevels", gen::random_levels(n, n / 50, 4.0, 1.0, 8)});

  std::vector<Record> recs;
  for (const MatCase& mc : mats) {
    const Csr<double>& L = mc.L;
    BlockSolver<double>::Options opt;
    opt.scheme = BlockScheme::kRecursive;
    opt.planner.stop_rows = std::max<index_t>(512, n / 64);
    opt.planner.nseg = 8;
    opt.verify.enabled = false;

    std::unique_ptr<BlockSolver<double>> solver;
    if (!BlockSolver<double>::create(L, opt, &solver).ok()) return 1;

    const auto b = gen::random_rhs<double>(L.nrows, 7);
    std::vector<double> x(b.size());

    // A deadline the solve can never hit, and a token nobody fires: the
    // machinery is fully armed but every check passes.
    SolveControls with_deadline;
    with_deadline.deadline = Deadline::after_ms(1e9);
    CancelToken token;
    SolveControls with_cancel;
    with_cancel.cancel = &token;

    // Interleave the three variants each round so slow drift (thermal,
    // scheduler) hits them equally; keep the per-variant median.
    std::vector<double> base_ms, dl_ms, cn_ms;
    for (int r = 0; r < rounds; ++r) {
      base_ms.push_back(time_ms(
          min_ms, [&] { solver->solve(b.data(), x.data()); }));
      dl_ms.push_back(time_ms(min_ms, [&] {
        if (!solver->solve(b.data(), x.data(), with_deadline).ok())
          std::exit(1);
      }));
      cn_ms.push_back(time_ms(min_ms, [&] {
        if (!solver->solve(b.data(), x.data(), with_cancel).ok())
          std::exit(1);
      }));
    }

    Record r;
    r.matrix = mc.name;
    r.n = L.nrows;
    r.baseline_ms = median(base_ms);
    r.deadline_ms = median(dl_ms);
    r.cancel_ms = median(cn_ms);
    r.deadline_overhead = r.deadline_ms / r.baseline_ms - 1.0;
    r.cancel_overhead = r.cancel_ms / r.baseline_ms - 1.0;
    std::fprintf(stderr,
                 "  %-10s n=%lld  baseline %8.3f ms  deadline %8.3f ms "
                 "(%+6.2f%%)  cancel %8.3f ms (%+6.2f%%)\n",
                 r.matrix.c_str(), static_cast<long long>(r.n), r.baseline_ms,
                 r.deadline_ms, 100.0 * r.deadline_overhead, r.cancel_ms,
                 100.0 * r.cancel_overhead);
    recs.push_back(r);
  }

  write_json(out_path, recs);
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());

  // Acceptance gate (ISSUE 6): an armed deadline costs <= 2% on the warm
  // recursive solve. Only enforced at full size — tiny solves finish in
  // microseconds and the ratio is all noise.
  if (tiny) return 0;
  for (const Record& r : recs)
    if (!(r.deadline_overhead <= 0.02)) {
      std::fprintf(stderr,
                   "ACCEPTANCE FAIL: %s deadline overhead %.2f%% > 2%%\n",
                   r.matrix.c_str(), 100.0 * r.deadline_overhead);
      return 1;
    }
  return 0;
}
