// Figure 5 reproduction: the offline calibration that produced the adaptive
// selector's thresholds. Following §3.4's methodology, we generate
// sub-matrices spanning the (nnz/row, nlevels) plane, time all four SpTRSV
// kernels on each, and report the fastest kernel per cell (Fig. 5a); then
// the (nnz/row, emptyratio) plane with the four SpMV kernels (Fig. 5b).
//
// Legend (SpTRSV): L = level-set, S = sync-free, C = cuSPARSE-like,
//                  P = completely-parallel.
// Legend (SpMV):   s = scalar-CSR, d = scalar-DCSR, v = vector-CSR,
//                  w = vector-DCSR.
//
//   ./bench/fig5_adaptive_heatmap [--n=40000] [--scale=16]
#include <cstdio>

#include "harness.hpp"
#include "sparse/convert.hpp"

using namespace blocktri;
using namespace blocktri::bench;

namespace {

/// Times one SpTRSV kernel on a triangular block (warm cache).
double tri_kernel_ms(TriKernelKind kind, const Csr<double>& L,
                     const sim::GpuSpec& gpu) {
  const auto b = gen::random_rhs<double>(L.nrows, 3);
  std::vector<double> x(static_cast<std::size_t>(L.nrows));
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::AddressSpace as;
  TrsvSim ts;
  ts.gpu = &gpu;
  ts.cache = &cache;
  ts.fp64 = true;
  ts.x_base = as.reserve(static_cast<std::uint64_t>(L.nrows) * 8);
  ts.b_base = as.reserve(static_cast<std::uint64_t>(L.nrows) * 8);
  ts.aux_base = as.reserve(static_cast<std::uint64_t>(L.nrows) * 12);

  auto run = [&](auto& solver) {
    sim::SolveReport warm;
    ts.report = &warm;
    solver.solve(b.data(), x.data(), &ts);
    sim::SolveReport rep;
    ts.report = &rep;
    solver.solve(b.data(), x.data(), &ts);
    return rep.ms();
  };
  switch (kind) {
    case TriKernelKind::kCompletelyParallel: {
      StrictLowerSplit<double> split = split_diagonal(L);
      if (split.strict.nnz() != 0) return -1.0;  // not applicable
      DiagonalSolver<double> s(std::move(split.diag));
      return run(s);
    }
    case TriKernelKind::kLevelSet: {
      LevelSetSolver<double> s(L);
      return run(s);
    }
    case TriKernelKind::kSyncFree: {
      SyncFreeSolver<double> s(L);
      return run(s);
    }
    case TriKernelKind::kCusparseLike: {
      CusparseLikeSolver<double> s(L);
      return run(s);
    }
  }
  return -1.0;
}

double spmv_kernel_ms(SpmvKernelKind kind, const Csr<double>& a,
                      const sim::GpuSpec& gpu) {
  const auto x = gen::random_rhs<double>(a.ncols, 5);
  auto y = gen::random_rhs<double>(a.nrows, 6);
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  double ms = 0.0;
  for (int round = 0; round < 2; ++round) {  // round 0 warms the cache
    sim::KernelSim ks(gpu, &cache, true);
    SpmvSim s{&ks, 0, 1u << 26};
    spmv_update(kind, a, x.data(), y.data(), &s);
    ms = ks.finish().ns * 1e-6;
  }
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<index_t>(cli.get_int("n", 40000));
  const double scale = cli.get_double("scale", kDatasetScale);
  const sim::GpuSpec gpu = sim::scale_for_dataset(sim::titan_rtx(), scale);

  // ---- Fig. 5a: SpTRSV kernels over (nnz/row, nlevels). ----
  const double nnz_rows[8] = {1, 2, 4, 8, 15, 24, 48, 96};
  const index_t nlevels_axis[9] = {1,    5,    20,   100,  500,
                                   2000, 8000, 20000, 39000};
  std::printf("Figure 5(a) — fastest SpTRSV kernel per (off-diag nnz/row, "
              "nlevels) cell,\n%s, sub-matrices of n=%d:\n"
              "  P=completely-parallel L=level-set S=sync-free "
              "C=cuSPARSE-like\n\n", gpu.name.c_str(), n);
  std::printf("%10s", "nnz/row:");
  for (const double nr : nnz_rows) std::printf("%7.0f", nr);
  std::printf("\n");
  for (const index_t nl : nlevels_axis) {
    std::printf("nlev %-6d", nl);
    for (const double nr : nnz_rows) {
      const Csr<double> L =
          nl == 1 ? gen::diagonal(n, 11)
                  : gen::random_levels(n, std::min<index_t>(nl, n - 1),
                                       std::max(0.0, nr - 1.0), 1.0, 11);
      char best = '?';
      double best_ms = -1.0;
      const struct {
        TriKernelKind kind;
        char code;
      } kernels[4] = {{TriKernelKind::kCompletelyParallel, 'P'},
                      {TriKernelKind::kLevelSet, 'L'},
                      {TriKernelKind::kSyncFree, 'S'},
                      {TriKernelKind::kCusparseLike, 'C'}};
      for (const auto& k : kernels) {
        const double ms = tri_kernel_ms(k.kind, L, gpu);
        if (ms >= 0.0 && (best_ms < 0.0 || ms < best_ms)) {
          best_ms = ms;
          best = k.code;
        }
      }
      std::printf("%7c", best);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nPaper thresholds (Alg. 7): level-set when nnz/row<=15 and "
              "nlevels<=20 (or nnz/row==1, nlevels<=100);\ncuSPARSE when "
              "nlevels>20000; sync-free otherwise.\n\n");

  // ---- Fig. 5b: SpMV kernels over (nnz/row, emptyratio). ----
  const double empty_axis[7] = {0.0, 0.1, 0.25, 0.5, 0.7, 0.9, 0.97};
  std::printf("Figure 5(b) — fastest SpMV kernel per (nnz/row, emptyratio) "
              "cell:\n  s=scalar-CSR d=scalar-DCSR v=vector-CSR "
              "w=vector-DCSR\n\n");
  std::printf("%12s", "nnz/row:");
  for (const double nr : nnz_rows) std::printf("%7.0f", nr);
  std::printf("\n");
  Rng rng(99);
  for (const double er : empty_axis) {
    std::printf("empty %.2f  ", er);
    for (const double nr : nnz_rows) {
      // Rectangular block with the requested emptyratio and nnz/row over
      // the NON-empty rows (how blocks come out of the partitioner).
      Coo<double> coo;
      coo.nrows = n;
      coo.ncols = n;
      Rng local(rng.next_u64());
      for (index_t i = 0; i < n; ++i) {
        if (local.uniform() < er) continue;
        // Row lengths vary around the target mean (real blocks are not
        // uniform): geometric tail, so the scalar kernel's divergence shows.
        const auto deg = std::max<index_t>(
            1, static_cast<index_t>(local.geometric(1.0 / (nr + 1.0))));
        for (index_t k = 0; k < deg; ++k) {
          coo.row.push_back(i);
          coo.col.push_back(
              static_cast<index_t>(local.uniform_int(0, n - 1)));
          coo.val.push_back(1.0);
        }
      }
      const Csr<double> a = coo_to_csr(coo);
      char best = '?';
      double best_ms = -1.0;
      const struct {
        SpmvKernelKind kind;
        char code;
      } kernels[4] = {{SpmvKernelKind::kScalarCsr, 's'},
                      {SpmvKernelKind::kScalarDcsr, 'd'},
                      {SpmvKernelKind::kVectorCsr, 'v'},
                      {SpmvKernelKind::kVectorDcsr, 'w'}};
      for (const auto& k : kernels) {
        const double ms = spmv_kernel_ms(k.kind, a, gpu);
        if (best_ms < 0.0 || ms < best_ms) {
          best_ms = ms;
          best = k.code;
        }
      }
      std::printf("%7c", best);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\nPaper thresholds (Alg. 7): scalar kernels when nnz/row<=12 "
              "(DCSR beyond 50%% empty);\nvector kernels otherwise (DCSR "
              "beyond 15%% empty).\n");
  return 0;
}
