// Throughput of the solve service under concurrent single-RHS load
// (ISSUE 8).
//
// Sixteen closed-loop clients hammer one registered matrix with single
// right-hand sides. Uncoalesced, every request pays a full solve of its
// own; with the coalescing queue on, concurrent requests ride one
// solve_many panel and the plan/structure streaming is amortised across
// the panel (the interleaved panel layout runs the warm per-RHS cost at
// ~0.37–0.41x a warm single solve on this matrix). The responses are
// bitwise identical either way — asserted continuously here against
// per-seed references, and exhaustively in tests/test_service.cpp — so
// the entire difference is throughput:
//
//   uncoalesced   coalesce = false: requests served solo (the baseline)
//   coalesced     coalesce = true, max_panel = 16, a few-ms batch window
//   socket        coalesced, but every request crosses the Unix-socket
//                 front end (frame encode → server thread → demux → frame
//                 decode) — prices the transport on top
//
// Acceptance (ISSUE 8): coalesced throughput >= 3x uncoalesced with 16
// concurrent clients at full size.
//
// Besides the closed-loop modes above, an *open-loop* mode (ISSUE 9
// satellite) drives the coalesced service with a Poisson arrival process —
// arrivals scheduled up front at a fixed offered rate, latency measured from
// the scheduled arrival so queueing delay counts. Two rates are derived from
// the measured closed-loop coalesced throughput: 0.8x (below saturation —
// achieved tracks offered, the tail stays flat) and 1.5x (past saturation —
// achieved clamps at capacity and the backlog shows up in p99). An explicit
// --rate runs one open-loop record at that rate instead.
//
//   ./bench/service_load [--n=60000] [--clients=16] [--iters=12]
//                        [--panel=16] [--window-ms=15] [--rate=R]
//                        [--open-ms=3000] [--out=BENCH_service.json] [--tiny]
//
// --tiny is the CI smoke mode: small matrix, few iterations, gate reported
// but not enforced.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "blocktri.hpp"

using namespace blocktri;

namespace {

struct Record {
  std::string mode;
  int clients = 0;
  std::uint64_t requests = 0;
  double wall_ms = 0.0;
  double throughput_rps = 0.0;
  double offered_rps = 0.0;        // open-loop only: the Poisson arrival rate
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double coalesce_ratio = 0.0;     // requests per dispatched panel
  std::uint64_t max_panel_width = 0;
  std::uint64_t mismatches = 0;    // responses not bitwise-equal to reference
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

/// One measured run: `clients` threads, `iters` requests each, cycling
/// through a fixed set of right-hand sides whose reference solutions were
/// solved once up front (so bitwise verification is a memcmp, not a solve).
Record run_load(service::SolveService& svc, std::uint64_t id,
                const std::vector<std::vector<double>>& rhs,
                const std::vector<std::vector<double>>& ref,
                int clients, int iters, const std::string& mode,
                service::SolveServer* server) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> mismatches{0};

  // Requests are pre-built once and shared read-only across the clients
  // (solve() takes them by const reference): the bench measures service
  // throughput, not the cost of copying right-hand sides into request
  // structs. Each pooled right-hand side is one tenant.
  std::vector<service::Request> reqs(rhs.size());
  std::vector<service::WireRequest> wire_reqs(rhs.size());
  for (std::size_t s = 0; s < rhs.size(); ++s) {
    reqs[s].matrix_id = wire_reqs[s].matrix_id = id;
    reqs[s].tenant = wire_reqs[s].tenant = "tenant-" + std::to_string(s);
    reqs[s].b = wire_reqs[s].b = rhs[s];
  }

  Stopwatch wall;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      service::SolveClient wire_client;
      if (server != nullptr &&
          !wire_client.connect(server->socket_path()).ok()) {
        mismatches.fetch_add(static_cast<std::uint64_t>(iters));
        return;
      }
      latencies[c].reserve(static_cast<std::size_t>(iters));
      for (int i = 0; i < iters; ++i) {
        const std::size_t slot = (c + static_cast<std::size_t>(i) * 7) %
                                 rhs.size();
        Stopwatch sw;
        std::vector<double> got;
        bool ok = false;
        if (server == nullptr) {
          service::Response resp = svc.solve(reqs[slot]);
          ok = resp.status.ok();
          got = std::move(resp.x);
        } else {
          service::WireResponse resp;
          ok = wire_client.solve(wire_reqs[slot], &resp).ok() &&
               resp.code == StatusCode::kOk;
          got = std::move(resp.x);
        }
        latencies[c].push_back(sw.milliseconds());
        if (!ok || got.size() != ref[slot].size() ||
            std::memcmp(got.data(), ref[slot].data(),
                        got.size() * sizeof(double)) != 0)
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = wall.milliseconds();

  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());

  const service::ServiceStats st = svc.stats();
  Record r;
  r.mode = mode;
  r.clients = clients;
  r.requests = static_cast<std::uint64_t>(clients) *
               static_cast<std::uint64_t>(iters);
  r.wall_ms = wall_ms;
  r.throughput_rps = 1000.0 * static_cast<double>(r.requests) / wall_ms;
  r.p50_ms = percentile(all, 0.50);
  r.p99_ms = percentile(all, 0.99);
  r.coalesce_ratio = st.coalesce_ratio;
  r.max_panel_width = st.max_panel_width;
  r.mismatches = mismatches.load();
  return r;
}

/// Open-loop (arrival-rate) load: request arrivals follow a Poisson process
/// at `rate_rps`, independent of service completion — the load a real
/// front-end applies, where a slow service does not throttle its own
/// arrivals and queueing delay shows up in the latency tail instead of
/// hiding in the closed loop. Arrival times are drawn up front (exponential
/// inter-arrivals); `clients` worker threads claim arrivals from a shared
/// cursor, sleep until each scheduled instant, and measure latency from the
/// *scheduled arrival* — a late pickup is queueing delay and counts.
Record run_open_loop(service::SolveService& svc, std::uint64_t id,
                     const std::vector<std::vector<double>>& rhs,
                     const std::vector<std::vector<double>>& ref,
                     int clients, double rate_rps, double duration_ms,
                     const std::string& mode) {
  using Clock = std::chrono::steady_clock;

  std::mt19937_64 rng(1234567);
  std::exponential_distribution<double> gap_ms(rate_rps / 1000.0);
  std::vector<double> arrival_ms;
  for (double t = gap_ms(rng); t < duration_ms; t += gap_ms(rng))
    arrival_ms.push_back(t);

  std::vector<service::Request> reqs(rhs.size());
  for (std::size_t s = 0; s < rhs.size(); ++s) {
    reqs[s].matrix_id = id;
    reqs[s].tenant = "tenant-" + std::to_string(s);
    reqs[s].b = rhs[s];
  }

  std::vector<std::vector<double>> latencies(clients);
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::size_t> cursor{0};
  const auto start = Clock::now();

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (;;) {
        const std::size_t i = cursor.fetch_add(1);
        if (i >= arrival_ms.size()) return;
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            arrival_ms[i]));
        std::this_thread::sleep_until(due);
        const std::size_t slot = i % rhs.size();
        service::Response resp = svc.solve(reqs[slot]);
        const double lat_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - due)
                .count();
        latencies[c].push_back(lat_ms);
        if (!resp.status.ok() || resp.x.size() != ref[slot].size() ||
            std::memcmp(resp.x.data(), ref[slot].data(),
                        resp.x.size() * sizeof(double)) != 0)
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();

  std::vector<double> all;
  for (const auto& l : latencies) all.insert(all.end(), l.begin(), l.end());

  const service::ServiceStats st = svc.stats();
  Record r;
  r.mode = mode;
  r.clients = clients;
  r.requests = arrival_ms.size();
  r.wall_ms = wall_ms;
  r.offered_rps = rate_rps;
  r.throughput_rps = 1000.0 * static_cast<double>(r.requests) / wall_ms;
  r.p50_ms = percentile(all, 0.50);
  r.p99_ms = percentile(all, 0.99);
  r.coalesce_ratio = st.coalesce_ratio;
  r.max_panel_width = st.max_panel_width;
  r.mismatches = mismatches.load();
  return r;
}

void write_json(const std::string& path, index_t n,
                const std::vector<Record>& recs) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"service_load\",\n");
  std::fprintf(f, "  \"n\": %lld,\n", static_cast<long long>(n));
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"clients\": %d, \"requests\": %llu, "
        "\"wall_ms\": %.3f, \"throughput_rps\": %.3f, \"offered_rps\": %.3f, "
        "\"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"coalesce_ratio\": %.3f, "
        "\"max_panel_width\": %llu, \"mismatches\": %llu}%s\n",
        r.mode.c_str(), r.clients,
        static_cast<unsigned long long>(r.requests), r.wall_ms,
        r.throughput_rps, r.offered_rps, r.p50_ms, r.p99_ms, r.coalesce_ratio,
        static_cast<unsigned long long>(r.max_panel_width),
        static_cast<unsigned long long>(r.mismatches),
        i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const auto n = static_cast<index_t>(cli.get_int("n", tiny ? 5000 : 60000));
  const int clients = cli.get_int("clients", 16);
  const int iters = cli.get_int("iters", tiny ? 4 : 12);
  const int panel = cli.get_int("panel", 16);
  // The window must exceed the client-turnaround spread or panels run
  // half-full: on a single core, 16 clients re-arrive over ~10ms.
  const double window_ms = cli.get_double("window-ms", tiny ? 2.0 : 15.0);
  const double rate = cli.get_double("rate", 0.0);  // 0: derive from closed
  const double open_ms = cli.get_double("open-ms", tiny ? 400.0 : 3000.0);
  const std::string matrix = cli.get("matrix", "rndlevels");
  const std::string out_path = cli.get("out", "BENCH_service.json");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }
  std::fprintf(stderr, "service_load: n=%lld clients=%d iters=%d panel=%d\n",
               static_cast<long long>(n), clients, iters, panel);

  // The service's home turf is level-rich structure: a single solve there is
  // dominated by per-step scheduling and structure streaming, exactly the
  // costs one solve_many panel pays once for the whole batch. --matrix=banded
  // gives the bandwidth-bound contrast (weaker amortisation).
  Csr<double> L;
  if (matrix == "banded") {
    L = gen::banded(n, 48, 16.0, 11);
  } else if (matrix == "rndlevels") {
    L = gen::random_levels(n, n / 16, 2.0, 1.0, 8);
  } else {
    std::fprintf(stderr, "unknown --matrix=%s (banded|rndlevels)\n",
                 matrix.c_str());
    return 1;
  }
  BlockSolver<double>::Options opt;
  opt.scheme = BlockScheme::kRecursive;
  opt.planner.stop_rows =
      std::min<index_t>(1024, std::max<index_t>(512, n / 32));
  opt.planner.nseg = 8;
  opt.verify.enabled = false;

  // Fixed request pool + references, solved once on a private solver.
  std::unique_ptr<BlockSolver<double>> reference;
  if (!BlockSolver<double>::create(L, opt, &reference).ok()) return 1;
  std::vector<std::vector<double>> rhs, ref;
  for (int i = 0; i < clients; ++i) {
    rhs.push_back(gen::random_rhs<double>(L.nrows, 100 + i));
    ref.push_back(reference->solve(rhs.back()));
  }

  auto make_service = [&](bool coalesce) {
    service::ServiceOptions sopt;
    sopt.coalesce = coalesce;
    sopt.max_panel = panel;
    sopt.batch_window_ms = window_ms;
    return std::make_unique<service::SolveService>(sopt);
  };

  std::vector<Record> recs;

  {
    auto svc = make_service(false);
    std::uint64_t id = 0;
    if (!svc->register_matrix(L, opt, &id).ok()) return 1;
    recs.push_back(
        run_load(*svc, id, rhs, ref, clients, iters, "uncoalesced", nullptr));
  }
  {
    auto svc = make_service(true);
    std::uint64_t id = 0;
    if (!svc->register_matrix(L, opt, &id).ok()) return 1;
    recs.push_back(
        run_load(*svc, id, rhs, ref, clients, iters, "coalesced", nullptr));
  }
  {
    auto svc = make_service(true);
    std::uint64_t id = 0;
    if (!svc->register_matrix(L, opt, &id).ok()) return 1;
    const std::string path =
        "/tmp/blocktri_service_load_" + std::to_string(::getpid()) + ".sock";
    service::SolveServer server(*svc, path);
    if (Status st = server.start(); !st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.to_string().c_str());
      return 1;
    }
    recs.push_back(
        run_load(*svc, id, rhs, ref, clients, iters, "socket", &server));
    server.stop();
  }

  // Open-loop (Poisson arrival) records against a fresh coalesced service.
  {
    std::vector<std::pair<std::string, double>> rates;
    if (rate > 0.0) {
      rates.emplace_back("open-loop", rate);
    } else {
      const double capacity = recs[1].throughput_rps;  // closed coalesced
      rates.emplace_back("open-0.8x", 0.8 * capacity);
      rates.emplace_back("open-1.5x", 1.5 * capacity);
    }
    for (const auto& [mode, rps] : rates) {
      auto svc = make_service(true);
      std::uint64_t id = 0;
      if (!svc->register_matrix(L, opt, &id).ok()) return 1;
      recs.push_back(
          run_open_loop(*svc, id, rhs, ref, clients, rps, open_ms, mode));
    }
  }

  for (const Record& r : recs) {
    char offered[48] = "";
    if (r.offered_rps > 0.0)
      std::snprintf(offered, sizeof offered, " (offered %.0f)",
                    r.offered_rps);
    std::fprintf(stderr,
                 "  %-12s %6.1f req/s%s  wall %8.1f ms  p50 %7.2f ms  "
                 "p99 %7.2f ms  ratio %5.2f  widest %llu  mismatches %llu\n",
                 r.mode.c_str(), r.throughput_rps, offered, r.wall_ms,
                 r.p50_ms, r.p99_ms, r.coalesce_ratio,
                 static_cast<unsigned long long>(r.max_panel_width),
                 static_cast<unsigned long long>(r.mismatches));
  }

  write_json(out_path, n, recs);
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());

  // Correctness is non-negotiable in every mode, smoke runs included.
  for (const Record& r : recs)
    if (r.mismatches != 0) {
      std::fprintf(stderr, "FAIL: %s had %llu non-bitwise responses\n",
                   r.mode.c_str(),
                   static_cast<unsigned long long>(r.mismatches));
      return 1;
    }

  // Acceptance gate (ISSUE 8): coalescing buys >= 3x throughput under 16
  // concurrent single-RHS clients. Full size only — tiny solves are too
  // short for the panel amortisation to dominate scheduling noise.
  if (tiny) return 0;
  const double speedup = recs[1].throughput_rps / recs[0].throughput_rps;
  std::fprintf(stderr, "coalesced/uncoalesced speedup: %.2fx\n", speedup);
  if (!(speedup >= 3.0)) {
    std::fprintf(stderr, "ACCEPTANCE FAIL: speedup %.2fx < 3x\n", speedup);
    return 1;
  }
  return 0;
}
