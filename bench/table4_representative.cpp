// Table 4 reproduction: six representative matrices, their level-set counts
// and parallelism profiles, SpTRSV GFlops of the three algorithms, and the
// block algorithm's speedups over cuSPARSE-like and Sync-free, on the
// (scaled) Titan RTX.
//
//   ./bench/table4_representative [--scale=16] [--gpu=rtx|x]
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool use_rtx = cli.get("gpu", "rtx") == "rtx";
  const sim::GpuSpec base = use_rtx ? sim::titan_rtx() : sim::titan_x();

  std::printf("Table 4 — six representative matrices on simulated %s\n",
              base.name.c_str());
  std::printf("(synthetic stand-ins, each at its own documented scale; the\n"
              " device is scaled per matrix to match — see DESIGN.md)\n\n");

  TextTable t({"matrix (mimics)", "n", "nnz", "#levels", "par.min", "par.avg",
               "par.max", "cuSP.", "Sync.", "blk alg.", "vs cuSP.",
               "vs Sync."});

  for (const auto& entry : gen::representative_suite()) {
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    const auto stop_rows =
        static_cast<index_t>(sim::paper_stop_rows(base, entry.scale));
    const Csr<double> L = entry.build();
    const auto feat = compute_triangular_features(L);
    const ThreeWay r = run_three_methods(L, gpu, stop_rows);
    t.add_row({entry.name + " (" + entry.mimics + ")",
               fmt_count(L.nrows),
               fmt_count(L.nnz()),
               fmt_count(feat.nlevels),
               fmt_count(feat.parallelism.min_width),
               fmt_fixed(feat.parallelism.avg_width, 0),
               fmt_count(feat.parallelism.max_width),
               fmt_fixed(r.cusparse.gflops, 2),
               fmt_fixed(r.syncfree.gflops, 2),
               fmt_fixed(r.block.gflops, 2),
               fmt_fixed(r.block.gflops / r.cusparse.gflops, 2) + "x",
               fmt_fixed(r.block.gflops / r.syncfree.gflops, 2) + "x"});
    std::fflush(stdout);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Paper (real hardware, full-size matrices), GFlops cuSP/Sync/blk:\n"
              "  nlpkkt200 13.26/18.09/45.75, mawi 0.09/0.40/6.41,\n"
              "  kkt_power 3.67/5.81/23.77, FullChip 3.83/0.70/7.78,\n"
              "  vas_stokes_4M 15.39/0.28/17.35, tmt_sym 0.014/0.008/0.015\n");
  return 0;
}
