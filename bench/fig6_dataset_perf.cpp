// Figure 6 + Table 3 reproduction: SpTRSV performance (GFlops, double
// precision) of cuSPARSE-like, Sync-free and the recursive block algorithm
// on the 159-matrix suite, on both simulated GPUs, plus the speedup summary
// the paper headlines (mean 4.72x over cuSPARSE, 9.95x over Sync-free; best
// 72.03x / 61.08x).
//
//   ./bench/fig6_dataset_perf [--limit=159] [--gpu=both|rtx|x] [--verbose]
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

namespace {

struct GpuSummary {
  GeoMean vs_cusparse, vs_syncfree;
  double best_vs_cusparse = 0.0, best_vs_syncfree = 0.0;
  std::string best_cusp_name, best_sync_name;
  int block_slowest = 0;  // matrices where block is the slowest method
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto limit = static_cast<std::size_t>(cli.get_int("limit", 159));
  const std::string which_gpu = cli.get("gpu", "both");
  const bool verbose = cli.get_bool("verbose", true);

  // Table 3: platforms and algorithms.
  std::printf("Table 3 — platforms (simulated) and algorithms:\n");
  for (const auto& base : {sim::titan_x(), sim::titan_rtx()}) {
    std::printf("  %-22s %d CUDA cores @ %.0f MHz, B/W %.1f GB/s\n",
                base.name.c_str(), base.cores(), base.clock_ghz * 1e3,
                base.mem_bandwidth_gbps);
  }
  std::printf("  algorithms: (1) cuSPARSE-like level merge, (2) Sync-free, "
              "(3) recursive block (this work)\n\n");

  std::vector<sim::GpuSpec> gpus;
  if (which_gpu == "both" || which_gpu == "x") gpus.push_back(sim::titan_x());
  if (which_gpu == "both" || which_gpu == "rtx")
    gpus.push_back(sim::titan_rtx());

  const auto suite = gen::paper_suite();
  std::vector<GpuSummary> summary(gpus.size());

  TextTable table([&] {
    std::vector<std::string> h = {"matrix", "family", "n", "nnz"};
    for (const auto& g : gpus) {
      const std::string tag = g.cores() == 3072 ? "X" : "RTX";
      h.push_back("cuSP@" + tag);
      h.push_back("Sync@" + tag);
      h.push_back("blk@" + tag);
    }
    return h;
  }());

  std::size_t done = 0;
  for (const auto& entry : suite) {
    if (done >= limit) break;
    ++done;
    const Csr<double> L = entry.build();
    std::vector<std::string> row = {entry.name, entry.family,
                                    fmt_count(L.nrows), fmt_count(L.nnz())};
    for (std::size_t g = 0; g < gpus.size(); ++g) {
      const sim::GpuSpec gpu = sim::scale_for_dataset(gpus[g], entry.scale);
      const auto stop =
          static_cast<index_t>(sim::paper_stop_rows(gpus[g], entry.scale));
      const ThreeWay r = run_three_methods(L, gpu, stop);
      row.push_back(fmt_fixed(r.cusparse.gflops, 2));
      row.push_back(fmt_fixed(r.syncfree.gflops, 2));
      row.push_back(fmt_fixed(r.block.gflops, 2));

      GpuSummary& s = summary[g];
      const double su_c = r.block.gflops / r.cusparse.gflops;
      const double su_s = r.block.gflops / r.syncfree.gflops;
      s.vs_cusparse.add(su_c);
      s.vs_syncfree.add(su_s);
      if (su_c > s.best_vs_cusparse) {
        s.best_vs_cusparse = su_c;
        s.best_cusp_name = entry.name;
      }
      if (su_s > s.best_vs_syncfree) {
        s.best_vs_syncfree = su_s;
        s.best_sync_name = entry.name;
      }
      if (r.block.gflops < r.cusparse.gflops &&
          r.block.gflops < r.syncfree.gflops)
        ++s.block_slowest;
    }
    table.add_row(std::move(row));
    if (verbose && done % 20 == 0)
      std::fprintf(stderr, "  ... %zu/%zu matrices\n", done,
                   std::min(limit, suite.size()));
  }

  std::printf("Figure 6 — per-matrix GFlops (double precision):\n%s\n",
              table.to_string().c_str());

  std::printf("Speedup summary of the recursive block algorithm:\n");
  for (std::size_t g = 0; g < gpus.size(); ++g) {
    const GpuSummary& s = summary[g];
    std::printf(
        "  %-22s vs cuSPARSE-like: mean %.2fx, best %.2fx (%s)\n"
        "  %-22s vs Sync-free:     mean %.2fx, best %.2fx (%s)\n"
        "  %-22s block slowest of the three on %d/%d matrices\n",
        gpus[g].name.c_str(), s.vs_cusparse.value(), s.best_vs_cusparse,
        s.best_cusp_name.c_str(), "", s.vs_syncfree.value(),
        s.best_vs_syncfree, s.best_sync_name.c_str(), "", s.block_slowest,
        s.vs_cusparse.count());
  }
  std::printf(
      "\nPaper (full-size matrices, real GPUs): mean 4.72x / best 72.03x over\n"
      "cuSPARSE v2, mean 9.95x / best 61.08x over Sync-free; \"almost never\n"
      "slower\" than either.\n");
  return 0;
}
