// Scaling of the sharded multi-process solve (ISSUE 9).
//
// The shard pool exists for machines with more than one device (or NUMA
// domain) per solve; this container has ONE core, so the honest measurement
// here is *overhead*, not speedup: a sharded epoch pays the coordinator's
// scatter/gather, the control-pipe round trip and the watermark protocol on
// top of the same arithmetic, time-sliced onto one core. What the bench
// gates is the part that must hold on any machine:
//
//   * bitwise equality — every sharded epoch's panel is memcmp-identical to
//     the single-process solve_many, at every shard count,
//   * warm start — workers rehydrate their slices through the persisted
//     format-v3 artifacts with ZERO level-set re-analysis
//     (worker_level_analyses stays 0 across spawns and epochs),
//   * overlap — boundary squares flow through the halo_ready/halo_deferred
//     two-pass executor, not a global barrier.
//
// The multi-device projection uses the sim machine models (sim/machine.hpp):
// per-epoch halo bytes and unhidden watermark edges measured on the real
// shared-memory transport are priced on modelled dual/quad-GPU interconnects
// against the modelled single-device solve.
//
//   ./bench/shard_scaling [--n=40000] [--k=8] [--iters=6] [--shards=2,4,8]
//                         [--out=BENCH_shard.json] [--tiny]
//
// --tiny is the CI smoke mode: small matrix, two shards, one iteration;
// correctness gates still enforced.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "blocktri.hpp"

using namespace blocktri;

namespace {

struct Record {
  int shards = 0;
  double epoch_ms = 0.0;       // warm sharded epoch (best of iters)
  double overhead_x = 0.0;     // epoch_ms / base_ms — honest on one core
  bool bitwise_equal = false;
  std::uint64_t level_analyses = 0;  // worker re-analyses (must be 0)
  std::uint64_t halo_ready = 0;
  std::uint64_t halo_deferred = 0;
  double wait_ms = 0.0;
  double halo_kib_per_epoch = 0.0;   // boundary panel traffic, measured
};

struct Modeled {
  std::string machine;
  int devices = 0;
  double modeled_speedup = 0.0;
};

/// Per-epoch boundary traffic of a shard pool: for every square step that
/// waits on an upstream watermark, the foreign slice of its column range
/// crosses the boundary once per epoch (k panel columns wide).
double halo_bytes_per_epoch(const PlanArtifact<double>& art,
                            const std::vector<index_t>& bounds, index_t k) {
  double bytes = 0.0;
  const int count = static_cast<int>(bounds.size()) - 1;
  for (int i = 0; i < count; ++i) {
    const PlanArtifact<double> slice =
        shard::slice_shard_artifact(art, bounds, i, art.options);
    for (const auto& wave : shard::build_local_schedule(slice))
      for (const shard::LocalStep& ls : wave) {
        if (ls.waits.empty()) continue;
        const auto& ref =
            slice.squares[static_cast<std::size_t>(ls.step.index)].ref;
        const index_t lo = std::max(ref.c0, slice.shard_row_begin);
        const index_t hi = std::min(ref.c1, slice.shard_row_end);
        const index_t local = std::max<index_t>(0, hi - lo);
        const index_t foreign = (ref.c1 - ref.c0) - local;
        bytes += static_cast<double>(foreign) * static_cast<double>(k) *
                 sizeof(double);
      }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const auto n = static_cast<index_t>(cli.get_int("n", tiny ? 4000 : 40000));
  const auto k = static_cast<index_t>(cli.get_int("k", 8));
  const int iters = cli.get_int("iters", tiny ? 2 : 6);
  const std::string shards_arg = cli.get("shards", tiny ? "2" : "2,4,8");
  const std::string out_path = cli.get("out", "BENCH_shard.json");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }

  std::vector<int> shard_counts;
  for (std::size_t pos = 0; pos < shards_arg.size();) {
    const std::size_t comma = shards_arg.find(',', pos);
    shard_counts.push_back(
        std::atoi(shards_arg.substr(pos, comma - pos).c_str()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  std::fprintf(stderr, "shard_scaling: n=%lld k=%lld iters=%d shards=%s\n",
               static_cast<long long>(n), static_cast<long long>(k), iters,
               shards_arg.c_str());

  // Banded structure: every shard boundary carries real halo traffic, so the
  // watermark protocol is exercised on every epoch.
  const Csr<double> L = gen::banded(n, 32, 8.0, 11);
  BlockSolver<double>::Options opt;
  opt.scheme = BlockScheme::kRecursive;
  opt.planner.stop_rows =
      std::min<index_t>(1024, std::max<index_t>(256, n / 64));
  opt.planner.nseg = 8;
  opt.verify.enabled = false;
  opt.shard.max_panel = k;

  std::unique_ptr<BlockSolver<double>> solver;
  if (Status st = BlockSolver<double>::create(L, opt, &solver); !st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.to_string().c_str());
    return 1;
  }
  const PlanArtifact<double> art = solver->capture_artifact();

  const std::vector<double> B = gen::random_rhs<double>(n * k, 7);
  std::vector<double> want(B.size()), got(B.size());

  // Single-process baseline, warm (best of iters).
  double base_ms = 1e300;
  for (int it = 0; it < iters + 1; ++it) {  // +1: first solve warms the pool
    Stopwatch sw;
    if (!solver->solve_many(B.data(), want.data(), k, SolveControls{}).ok())
      return 1;
    if (it > 0) base_ms = std::min(base_ms, sw.milliseconds());
  }

  std::vector<Record> recs;
  std::vector<Modeled> modeled;
  for (int p : shard_counts) {
    BlockSolver<double>::Options sopt = opt;
    sopt.shard.processes = p;
    std::unique_ptr<shard::ShardCoordinator<double>> coord;
    if (Status st = shard::ShardCoordinator<double>::create(*solver, sopt,
                                                            &coord);
        !st.ok()) {
      std::fprintf(stderr, "coordinator(%d) failed: %s\n", p,
                   st.to_string().c_str());
      return 1;
    }

    Record r;
    r.shards = coord->shard_count();
    r.epoch_ms = 1e300;
    r.bitwise_equal = true;
    for (int it = 0; it < iters; ++it) {
      Stopwatch sw;
      if (Status st = coord->solve_many(B.data(), got.data(), k); !st.ok()) {
        std::fprintf(stderr, "epoch failed: %s\n", st.to_string().c_str());
        return 1;
      }
      r.epoch_ms = std::min(r.epoch_ms, sw.milliseconds());
      if (std::memcmp(got.data(), want.data(),
                      got.size() * sizeof(double)) != 0)
        r.bitwise_equal = false;
    }
    const shard::CoordinatorStats s = coord->stats();
    r.overhead_x = r.epoch_ms / base_ms;
    r.level_analyses = s.worker_level_analyses;
    r.halo_ready = s.halo_ready;
    r.halo_deferred = s.halo_deferred;
    r.wait_ms = s.wait_ms;
    r.halo_kib_per_epoch =
        halo_bytes_per_epoch(art, coord->bounds(), k) / 1024.0;
    recs.push_back(r);

    std::fprintf(stderr,
                 "  P=%d  epoch %8.3f ms  overhead %.2fx  bitwise %s  "
                 "analyses %llu  halo ready/deferred %llu/%llu  "
                 "halo %.1f KiB\n",
                 r.shards, r.epoch_ms, r.overhead_x,
                 r.bitwise_equal ? "yes" : "NO",
                 static_cast<unsigned long long>(r.level_analyses),
                 static_cast<unsigned long long>(r.halo_ready),
                 static_cast<unsigned long long>(r.halo_deferred),
                 r.halo_kib_per_epoch);

  }

  // Modeled projection uses the measured epochs per shard count. The modelled
  // single-device time is taken as the measured base solve (the model prices
  // only the *relative* exchange cost; EXPERIMENTS.md compares shape).
  for (const Record& r : recs) {
    for (const sim::MultiGpuSpec& m :
         {sim::dual_titan_rtx(), sim::quad_titan_rtx(),
          sim::dual_titan_x()}) {
      if (m.devices != r.shards) continue;
      const double stalled =
          static_cast<double>(r.halo_deferred) / static_cast<double>(iters);
      const double epoch_ns = sim::modeled_shard_epoch_ns(
          m, base_ms * 1e6, r.halo_kib_per_epoch * 1024.0, stalled);
      Modeled mr;
      mr.machine = m.device.name + " x" + std::to_string(m.devices) + " (" +
                   m.link.name + ")";
      mr.devices = m.devices;
      mr.modeled_speedup = base_ms * 1e6 / epoch_ns;
      modeled.push_back(mr);
      std::fprintf(stderr, "  modeled %-42s speedup %.2fx\n",
                   mr.machine.c_str(), mr.modeled_speedup);
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"shard_scaling\",\n");
  std::fprintf(f, "  \"n\": %lld,\n  \"k\": %lld,\n",
               static_cast<long long>(n), static_cast<long long>(k));
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"base_ms\": %.3f,\n", base_ms);
  std::fprintf(f, "  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"shards\": %d, \"epoch_ms\": %.3f, \"overhead_x\": %.3f, "
        "\"bitwise_equal\": %s, \"worker_level_analyses\": %llu, "
        "\"halo_ready\": %llu, \"halo_deferred\": %llu, \"wait_ms\": %.3f, "
        "\"halo_kib_per_epoch\": %.1f}%s\n",
        r.shards, r.epoch_ms, r.overhead_x,
        r.bitwise_equal ? "true" : "false",
        static_cast<unsigned long long>(r.level_analyses),
        static_cast<unsigned long long>(r.halo_ready),
        static_cast<unsigned long long>(r.halo_deferred), r.wait_ms,
        r.halo_kib_per_epoch, i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"modeled\": [\n");
  for (std::size_t i = 0; i < modeled.size(); ++i)
    std::fprintf(f,
                 "    {\"machine\": \"%s\", \"devices\": %d, "
                 "\"modeled_speedup\": %.2f}%s\n",
                 modeled[i].machine.c_str(), modeled[i].devices,
                 modeled[i].modeled_speedup,
                 i + 1 == modeled.size() ? "" : ",");
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s (%zu records)\n", out_path.c_str(),
               recs.size());

  // Gates: bitwise equality and the zero-re-analysis warm start are
  // correctness, enforced in every mode including --tiny.
  for (const Record& r : recs) {
    if (!r.bitwise_equal) {
      std::fprintf(stderr, "FAIL: P=%d not bitwise equal\n", r.shards);
      return 1;
    }
    if (r.level_analyses != 0) {
      std::fprintf(stderr, "FAIL: P=%d reran %llu level analyses\n",
                   r.shards,
                   static_cast<unsigned long long>(r.level_analyses));
      return 1;
    }
  }
  return 0;
}
