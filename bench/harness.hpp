// Shared helpers for the table/figure benchmark binaries.
//
// Conventions (EXPERIMENTS.md):
//   * Dataset scale: the synthetic suite reproduces the paper's matrices at
//     roughly 1/16 of their sizes, so every harness measures on the
//     sim::scale_for_dataset(gpu, kDatasetScale) device, which restores the
//     full-size overhead-to-work ratios (see sim/machine.hpp).
//   * Warm measurements: like the paper's 200-run averages, each timing is
//     taken with a cache warmed by one prior solve.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <optional>
#include <string>

#include "blocktri.hpp"

namespace blocktri::bench {

inline constexpr double kDatasetScale = 16.0;

/// Wall-clock timing policy for host-side measurements (plan build, artifact
/// save/load, refresh). The default is warmup + min-of-N: `warmup` discarded
/// runs, then `repeats` timed samples of which the minimum is reported —
/// the estimator least sensitive to scheduler noise for deterministic work.
/// When `min_ms > 0` each sample is itself an average over as many runs as
/// fit in `min_ms`, which keeps sub-millisecond operations above the clock
/// granularity without giving up the min-of-N outlier rejection.
/// `legacy_average = true` restores the pre-tuner estimator (one warmup,
/// single grand average over runs until `min_ms` elapses) for comparing
/// against historical BENCH_*.json numbers.
struct TimingOptions {
  int warmup = 1;
  int repeats = 5;
  double min_ms = 0.0;
  bool legacy_average = false;
};

template <class Fn>
double time_ms(Fn&& fn, const TimingOptions& opts = {}) {
  if (opts.legacy_average) {
    fn();  // warmup
    Stopwatch sw;
    int reps = 0;
    do {
      fn();
      ++reps;
    } while (sw.milliseconds() < opts.min_ms || reps < 2);
    return sw.milliseconds() / reps;
  }
  for (int i = 0; i < opts.warmup; ++i) fn();
  double best = std::numeric_limits<double>::infinity();
  const int samples = std::max(1, opts.repeats);
  for (int i = 0; i < samples; ++i) {
    Stopwatch sw;
    int reps = 0;
    do {
      fn();
      ++reps;
    } while (sw.milliseconds() < opts.min_ms);
    best = std::min(best, sw.milliseconds() / reps);
  }
  return best;
}

/// Simulated time/GFlops for one method on one matrix (warm cache).
struct MethodResult {
  double ms = 0.0;
  double gflops = 0.0;
  int kernel_launches = 0;
  sim::SolveReport report;
};

template <class T>
MethodResult measure_block(const BlockSolver<T>& solver,
                           const std::vector<T>& b, const sim::GpuSpec& gpu,
                           BlockSolveBreakdown* breakdown = nullptr) {
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::SolveReport warm;
  solver.solve_simulated(b, gpu, &cache, &warm);
  sim::SolveReport rep;
  solver.solve_simulated(b, gpu, &cache, &rep, breakdown);
  return {rep.ms(), rep.gflops(), rep.kernel_launches, rep};
}

/// Measures a baseline solver (LevelSetSolver / SyncFreeSolver /
/// CusparseLikeSolver) with its own warm cache and address space.
template <class Solver, class T>
MethodResult measure_baseline(const Solver& solver, const Csr<T>& L,
                              const std::vector<T>& b,
                              const sim::GpuSpec& gpu) {
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::AddressSpace as;
  const auto n = static_cast<std::uint64_t>(L.nrows);
  TrsvSim ts;
  ts.gpu = &gpu;
  ts.cache = &cache;
  ts.fp64 = sizeof(T) == 8;
  ts.x_base = as.reserve(n * sizeof(T));
  ts.b_base = as.reserve(n * sizeof(T));
  ts.aux_base = as.reserve(n * (sizeof(T) + 4));
  std::vector<T> x(static_cast<std::size_t>(L.nrows));
  sim::SolveReport warm;
  ts.report = &warm;
  solver.solve(b.data(), x.data(), &ts);
  sim::SolveReport rep;
  ts.report = &rep;
  solver.solve(b.data(), x.data(), &ts);
  return {rep.ms(), rep.gflops(), rep.kernel_launches, rep};
}

/// BlockSolver options used throughout the benchmark harnesses: the paper's
/// depth rule plus the thresholds fitted to this simulator by the Fig. 5
/// calibration (see core/adaptive.hpp).
template <class T>
typename BlockSolver<T>::Options bench_block_options(index_t stop_rows) {
  typename BlockSolver<T>::Options opt;
  opt.planner.stop_rows = stop_rows;
  opt.thresholds = simulator_fitted_thresholds();
  return opt;
}

/// All three methods of Table 3 on one matrix.
struct ThreeWay {
  MethodResult cusparse;
  MethodResult syncfree;
  MethodResult block;
};

template <class T>
ThreeWay run_three_methods(const Csr<T>& L, const sim::GpuSpec& gpu,
                           index_t stop_rows) {
  const auto b = gen::random_rhs<T>(L.nrows, 7);
  ThreeWay out;
  {
    CusparseLikeSolver<T> s(L);
    out.cusparse = measure_baseline(s, L, b, gpu);
  }
  {
    SyncFreeSolver<T> s(L);
    out.syncfree = measure_baseline(s, L, b, gpu);
  }
  {
    BlockSolver<T> s(L, bench_block_options<T>(stop_rows));
    out.block = measure_block(s, b, gpu);
  }
  return out;
}

/// Geometric mean helper for "average speedup" summaries.
class GeoMean {
 public:
  void add(double v) {
    if (v > 0.0) {
      log_sum_ += std::log(v);
      ++count_;
    }
  }
  double value() const {
    return count_ == 0 ? 0.0 : std::exp(log_sum_ / count_);
  }
  int count() const { return count_; }

 private:
  double log_sum_ = 0.0;
  int count_ = 0;
};

}  // namespace blocktri::bench
