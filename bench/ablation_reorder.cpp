// Ablation of the §3.3 recursive level-set reordering: with reordering on
// vs off, how many nonzeros land in the parallel-friendly square blocks, and
// what the solve performance becomes. Reproduces the Fig. 3 claim that
// reordering concentrates nonzeros in the square parts.
//
//   ./bench/ablation_reorder
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

int main(int, char**) {
  const sim::GpuSpec base = sim::titan_rtx();

  std::printf("Reordering ablation (recursive scheme, simulated Titan RTX):\n\n");
  TextTable t({"matrix", "sq-nnz (reorder off)", "sq-nnz (on)",
               "GFlops (off)", "GFlops (on)", "speedup"});
  for (const auto& entry : gen::representative_suite()) {
    // Our generators emit rows in level-coherent order; real matrices do
    // not. Renumber by a random topological order first, so the ablation
    // measures what §3.3's reordering recovers on collection-style inputs.
    const Csr<double> L =
        gen::random_topological_shuffle(entry.build(), 12345);
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    const auto stop =
        static_cast<index_t>(sim::paper_stop_rows(base, entry.scale));
    const auto b = gen::random_rhs<double>(L.nrows, 7);

    double gflops[2];
    offset_t sq_nnz[2];
    for (const bool reorder : {false, true}) {
      auto opt = bench_block_options<double>(stop);
      opt.planner.reorder = reorder;
      const BlockSolver<double> solver(L, opt);
      sq_nnz[reorder] = solver.nnz_in_squares();
      gflops[reorder] = measure_block(solver, b, gpu).gflops;
    }
    t.add_row({entry.name,
               fmt_count(sq_nnz[0]) + " (" +
                   fmt_fixed(100.0 * static_cast<double>(sq_nnz[0]) /
                                 static_cast<double>(L.nnz()), 0) + "%)",
               fmt_count(sq_nnz[1]) + " (" +
                   fmt_fixed(100.0 * static_cast<double>(sq_nnz[1]) /
                                 static_cast<double>(L.nnz()), 0) + "%)",
               fmt_fixed(gflops[0], 2), fmt_fixed(gflops[1], 2),
               fmt_fixed(gflops[1] / gflops[0], 2) + "x"});
    std::fflush(stdout);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected: reordering moves nonzeros into squares (Fig. 3's "
              "11 > 8 example)\nand never hurts solve performance much.\n");
  return 0;
}
