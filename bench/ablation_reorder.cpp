// Ordering ablation: the four blocking schemes (column, row, recursive,
// HBMC) side by side on wavefront-limited lower factors. For every
// (matrix, scheme) pair the bench reports the structural story — level
// count and maximum level width of the unordered factor, color count and
// executor sync steps (waves) of the built plan — and the measured one:
// warm solve milliseconds at each requested thread count with speedup
// against the scheme's own 1-thread run, the SIMD vector-vs-strict-scalar
// solve-time delta, and a residual check (solve_checked) on every matrix.
//
//   ./bench/ablation_reorder [--threads=1,2] [--out=BENCH_order.json]
//                            [--min-ms=25] [--tiny] [--no-fig3]
//
// The original Fig. 3 ablation (recursive §3.3 level-set reordering on vs
// off: nonzeros moved into square blocks, simulated solve speedup) is kept
// as a second section after the scheme sweep; --tiny and --no-fig3 skip it.
//
// The point of the comparison: level-scheduled schemes pay one sync step
// per level (O(depth) — thousands on a banded chain), while HBMC pays
// 2·colors − 1 steps with colors capped at hbmc_max_colors (DESIGN.md
// §16). --tiny is the CI smoke mode: small matrices, short repetitions,
// same code paths and JSON writer.
//
// Inputs are renumbered by a random topological order first — our
// generators emit rows in level-coherent order, real matrices do not, and
// the orderings under test should get collection-style inputs.
//
// The JSON records hardware_concurrency so readers can tell when the
// sweep ran on fewer cores than the requested thread counts (parallel
// speedups are then not expected; the numbers are still honest).
//
// Note: BLOCKTRI_THREADS overrides BlockSolver's Options::threads, which
// would pin every point of the sweep to one count — the bench refuses to
// run with it set.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/simd.hpp"
#include "harness.hpp"

using namespace blocktri;

namespace {

std::vector<int> parse_thread_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    out.push_back(std::atoi(s.substr(pos, comma - pos).c_str()));
    pos = comma + 1;
  }
  for (const int t : out) {
    if (t < 1) {
      std::fprintf(stderr, "bad --threads list '%s'\n", s.c_str());
      std::exit(1);
    }
  }
  return out;
}

/// Repeats fn until `min_ms` of wall-clock has elapsed (at least twice,
/// after one untimed warmup) and returns the per-call milliseconds.
template <class Fn>
double time_ms(double min_ms, Fn&& fn) {
  fn();  // warmup
  Stopwatch sw;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (sw.milliseconds() < min_ms || reps < 2);
  return sw.milliseconds() / reps;
}

struct Record {
  std::string matrix;
  std::string scheme;
  int threads = 1;
  double ms = 0.0;
  double speedup = 0.0;      // vs the 1-thread run of the same (matrix, scheme)
  long levels = 0;           // level count of the input factor
  long max_level_width = 0;  // widest level of the input factor
  long colors = 0;           // HBMC color count (0 for level-scheduled schemes)
  long waves = 0;            // executor sync steps
  double vector_ms = 0.0;    // 1-thread solve, SIMD path forced to kVector
  double strict_ms = 0.0;    // 1-thread solve, forced to kStrictScalar
  double simd_delta = 0.0;   // strict_ms / vector_ms (>1 → vector path wins)
  double residual = 0.0;     // solve_checked's verified relative residual
  bool residual_ok = false;
};

void write_json(const std::string& path, const std::vector<Record>& recs,
                const std::vector<int>& threads) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_reorder\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"simd_isa\": \"%s\",\n", simd::vector_isa_name());
  std::fprintf(f, "  \"threads\": [");
  for (std::size_t i = 0; i < threads.size(); ++i)
    std::fprintf(f, "%s%d", i == 0 ? "" : ", ", threads[i]);
  std::fprintf(f, "],\n  \"records\": [\n");
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const Record& r = recs[i];
    std::fprintf(
        f,
        "    {\"matrix\": \"%s\", \"scheme\": \"%s\", \"threads\": %d, "
        "\"ms\": %.6f, \"speedup\": %.4f, \"levels\": %ld, "
        "\"max_level_width\": %ld, \"colors\": %ld, \"waves\": %ld, "
        "\"vector_ms\": %.6f, \"strict_ms\": %.6f, \"simd_delta\": %.4f, "
        "\"residual\": %.3e, \"residual_ok\": %s}%s\n",
        r.matrix.c_str(), r.scheme.c_str(), r.threads, r.ms, r.speedup,
        r.levels, r.max_level_width, r.colors, r.waves, r.vector_ms,
        r.strict_ms, r.simd_delta, r.residual,
        r.residual_ok ? "true" : "false", i + 1 == recs.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

struct Case {
  std::string name;
  Csr<double> L;
};

std::vector<Case> build_suite(bool tiny) {
  std::vector<Case> out;
  if (tiny) {
    out.push_back({"laplace3d-6", gen::laplace3d(6, 6, 6, 31)});
    out.push_back({"chain-banded-800", gen::chain_banded(800, 4, 1.0, 12)});
    out.push_back({"grid2d-30x20", gen::grid2d(30, 20, 5)});
  } else {
    out.push_back({"laplace3d-20", gen::laplace3d(20, 20, 20, 31)});
    out.push_back({"chain-banded-8000", gen::chain_banded(8000, 8, 2.0, 12)});
    out.push_back({"grid2d-100x60", gen::grid2d(100, 60, 5)});
    out.push_back(
        {"random-levels-8000", gen::random_levels(8000, 160, 3.0, 1.0, 8)});
  }
  for (Case& c : out) c.L = gen::random_topological_shuffle(c.L, 12345);
  return out;
}

// Fig. 3's claim, measured (the original ablation): on shuffled inputs the
// §3.3 recursive level-set reordering concentrates nonzeros in the square
// blocks and never hurts the (simulated) solve much.
void run_fig3_ablation() {
  
  const sim::GpuSpec base = sim::titan_rtx();

  std::printf("\nReordering ablation (recursive scheme, simulated Titan "
              "RTX):\n\n");
  TextTable t({"matrix", "sq-nnz (reorder off)", "sq-nnz (on)",
               "GFlops (off)", "GFlops (on)", "speedup"});
  for (const auto& entry : gen::representative_suite()) {
    const Csr<double> L =
        gen::random_topological_shuffle(entry.build(), 12345);
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    const auto stop =
        static_cast<index_t>(sim::paper_stop_rows(base, entry.scale));
    const auto b = gen::random_rhs<double>(L.nrows, 7);

    double gflops[2];
    offset_t sq_nnz[2];
    for (const bool reorder : {false, true}) {
      auto opt = bench::bench_block_options<double>(stop);
      opt.planner.reorder = reorder;
      const BlockSolver<double> solver(L, opt);
      sq_nnz[reorder] = solver.nnz_in_squares();
      gflops[reorder] = bench::measure_block(solver, b, gpu).gflops;
    }
    t.add_row({entry.name,
               fmt_count(sq_nnz[0]) + " (" +
                   fmt_fixed(100.0 * static_cast<double>(sq_nnz[0]) /
                                        static_cast<double>(L.nnz()), 0) +
                   "%)",
               fmt_count(sq_nnz[1]) + " (" +
                   fmt_fixed(100.0 * static_cast<double>(sq_nnz[1]) /
                                        static_cast<double>(L.nnz()), 0) +
                   "%)",
               fmt_fixed(gflops[0], 2), fmt_fixed(gflops[1], 2),
               fmt_fixed(gflops[1] / gflops[0], 2) + "x"});
    std::fflush(stdout);
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("Expected: reordering moves nonzeros into squares (Fig. 3's "
              "11 > 8 example)\nand never hurts solve performance much.\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const bool tiny = cli.get_bool("tiny", false);
  const auto threads = parse_thread_list(cli.get("threads", "1,2"));
  const double min_ms = cli.get_double("min-ms", tiny ? 2.0 : 25.0);
  const bool fig3 = !cli.get_bool("no-fig3", false) && !tiny;
  const std::string out_path = cli.get("out", "BENCH_order.json");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }
  if (std::getenv("BLOCKTRI_THREADS") != nullptr) {
    std::fprintf(stderr,
                 "BLOCKTRI_THREADS is set; it would pin every point of the "
                 "sweep to one thread count. Unset it and rerun.\n");
    return 1;
  }

  const BlockScheme schemes[] = {BlockScheme::kColumn, BlockScheme::kRow,
                                 BlockScheme::kRecursive, BlockScheme::kHbmc};

  std::vector<Record> recs;
  int gate_failures = 0;

  for (const Case& c : build_suite(tiny)) {
    const index_t n = c.L.nrows;
    const LevelSets ls = compute_level_sets(c.L);
    const ParallelismStats ps = parallelism_stats(ls);
    std::vector<double> b(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i)
      b[static_cast<std::size_t>(i)] = 1.0 + 0.25 * (i % 7);

    std::printf("%-18s n=%-7lld nnz=%-8lld levels=%lld max_width=%lld\n",
                c.name.c_str(), static_cast<long long>(n),
                static_cast<long long>(c.L.nnz()),
                static_cast<long long>(ls.nlevels),
                static_cast<long long>(ps.max_width));

    // Best parallel warm-solve ms per scheme, for the cross-scheme summary.
    double hbmc_best = 0.0, others_best = 0.0;
    long hbmc_waves = 0;

    for (const BlockScheme scheme : schemes) {
      BlockSolver<double>::Options opt;
      opt.scheme = scheme;
      opt.planner.stop_rows = std::max<index_t>(64, n / 16);
      std::unique_ptr<BlockSolver<double>> probe;
      const Status st = BlockSolver<double>::create(c.L, opt, &probe);
      if (!st.ok()) {
        std::fprintf(stderr, "  %s: create failed: %s\n",
                     to_string(scheme).c_str(), st.message().c_str());
        ++gate_failures;
        continue;
      }

      const long waves = static_cast<long>(probe->step_waves().size());
      const long colors = scheme == BlockScheme::kHbmc
                              ? static_cast<long>(probe->plan().num_colors())
                              : 0;

      // Residual gate: the checked solve must pass on every matrix.
      const SolveResult<double> chk = probe->solve_checked(b);
      const bool res_ok = chk.ok() && chk.report.residual_checked;

      // SIMD vector-vs-strict delta on the 1-thread warm solve. Same plan,
      // same executor; only the kernel inner loops differ.
      double vec_ms = 0.0, strict_ms = 0.0;
      {
        simd::ScopedPathOverride force(simd::Path::kVector);
        vec_ms = time_ms(min_ms, [&] { (void)probe->solve(b); });
      }
      {
        simd::ScopedPathOverride force(simd::Path::kStrictScalar);
        strict_ms = time_ms(min_ms, [&] { (void)probe->solve(b); });
      }

      double t1_ms = 0.0;
      for (const int t : threads) {
        opt.threads = t;
        std::unique_ptr<BlockSolver<double>> s;
        if (!BlockSolver<double>::create(c.L, opt, &s).ok()) continue;
        const double ms = time_ms(min_ms, [&] { (void)s->solve(b); });
        if (t == 1) t1_ms = ms;

        Record r;
        r.matrix = c.name;
        r.scheme = to_string(scheme);
        r.threads = t;
        r.ms = ms;
        r.speedup = (t1_ms > 0.0 && ms > 0.0) ? t1_ms / ms : 0.0;
        r.levels = static_cast<long>(ls.nlevels);
        r.max_level_width = static_cast<long>(ps.max_width);
        r.colors = colors;
        r.waves = waves;
        r.vector_ms = vec_ms;
        r.strict_ms = strict_ms;
        r.simd_delta = vec_ms > 0.0 ? strict_ms / vec_ms : 0.0;
        r.residual = chk.report.residual;
        r.residual_ok = res_ok;
        recs.push_back(r);

        // The parallel point feeds the cross-scheme gate; with a single
        // thread count requested, that single point does.
        if (t > 1 || threads.size() == 1) {
          if (scheme == BlockScheme::kHbmc) {
            if (hbmc_best == 0.0 || ms < hbmc_best) hbmc_best = ms;
            hbmc_waves = waves;
          } else if (others_best == 0.0 || ms < others_best) {
            others_best = ms;
          }
        }

        std::printf(
            "  %-10s t=%d  %9.4f ms  x%-5.2f waves=%-6ld colors=%-3ld "
            "simd=%.2fx  resid=%.2e %s\n",
            to_string(scheme).c_str(), t, ms, r.speedup, waves, colors,
            r.simd_delta, chk.report.residual, res_ok ? "ok" : "FAIL");
      }
      if (!res_ok) ++gate_failures;
    }

    if (hbmc_best > 0.0 && others_best > 0.0) {
      std::printf(
          "  summary: hbmc %ld sync steps vs %lld levels; "
          "hbmc/best-other = %.3fx\n",
          hbmc_waves, static_cast<long long>(ls.nlevels),
          others_best / hbmc_best);
    }
  }

  write_json(out_path, recs, threads);
  std::printf("wrote %s (%zu records)\n", out_path.c_str(), recs.size());
  if (fig3) run_fig3_ablation();
  if (gate_failures != 0) {
    std::fprintf(stderr, "%d residual/build gate failure(s)\n", gate_failures);
    return 1;
  }
  return 0;
}
