// Figure 4 reproduction: execution time (ms) of the SpMV PART of the three
// block algorithms on two representative sparse matrices (the paper uses the
// third and fourth matrices of Table 4 — kkt_power and FullChip) as the
// number of triangular parts grows. The recursive scheme's SpMV time should
// stay low while the column scheme's b-update traffic and the row scheme's
// x-load traffic blow up (Tables 1–2).
//
//   ./bench/fig4_spmv_block [--parts=2,4,8,16,32,64]
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

namespace {

template <class T>
double spmv_part_ms(const Csr<T>& L, const sim::GpuSpec& gpu,
                    BlockScheme scheme, index_t parts) {
  typename BlockSolver<T>::Options opt;
  opt.scheme = scheme;
  opt.planner.nseg = parts;
  // Figure 4 compares the three §3.1 block algorithms BEFORE the §3.3/§3.4
  // improvements, so use the basic kernels: no adaptive selection and no
  // DCSR (which would mask the column scheme's all-remaining-rows b-update
  // cost that Table 1 analyses).
  opt.adaptive = false;
  opt.forced_tri = TriKernelKind::kSyncFree;
  opt.forced_square = SpmvKernelKind::kVectorCsr;
  opt.planner.reorder = false;
  if (scheme == BlockScheme::kRecursive) {
    // Exactly log2(parts) recursion levels.
    int depth = 0;
    while ((index_t{1} << (depth + 1)) <= parts) ++depth;
    opt.planner.max_depth = depth;
    opt.planner.stop_rows = 1;
  }
  const BlockSolver<T> solver(L, opt);
  const auto b = gen::random_rhs<T>(L.nrows, 7);

  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::SolveReport warm;
  solver.solve_simulated(b, gpu, &cache, &warm);
  sim::SolveReport rep;
  BlockSolveBreakdown bd;
  solver.solve_simulated(b, gpu, &cache, &rep, &bd);
  return bd.spmv_ns * 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  std::vector<index_t> parts;
  {
    const std::string spec = cli.get("parts", "2,4,8,16,32,64");
    index_t cur = 0;
    for (const char c : spec + ",") {
      if (c == ',') {
        if (cur > 0) parts.push_back(cur);
        cur = 0;
      } else {
        cur = cur * 10 + (c - '0');
      }
    }
  }
  const sim::GpuSpec base = sim::titan_rtx();

  std::printf("Figure 4 — SpMV-part time (ms) of the three block algorithms "
              "on the simulated Titan RTX:\n\n");
  for (const char* which : {"kkt_power-sim", "fullchip-sim"}) {
    const auto entry = gen::find_suite_entry(which);
    const Csr<double> L = entry.build();
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    std::printf("%s (mimics %s): n=%s nnz=%s\n", entry.name.c_str(),
                entry.mimics.c_str(), fmt_count(L.nrows).c_str(),
                fmt_count(L.nnz()).c_str());
    TextTable t({"#triangular parts", "column block", "row block",
                 "recursive block"});
    for (const index_t p : parts) {
      t.add_row({std::to_string(p),
                 fmt_fixed(spmv_part_ms(L, gpu, BlockScheme::kColumn, p), 4),
                 fmt_fixed(spmv_part_ms(L, gpu, BlockScheme::kRow, p), 4),
                 fmt_fixed(spmv_part_ms(L, gpu, BlockScheme::kRecursive, p),
                           4)});
    }
    std::printf("%s\n", t.to_string().c_str());
  }
  std::printf("Expected shape (paper, Fig. 4): the recursive scheme's SpMV "
              "time is almost always the lowest,\nand the column/row schemes "
              "deteriorate as the part count grows (Tables 1-2 traffic).\n");
  return 0;
}
