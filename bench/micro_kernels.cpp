// google-benchmark micro-benchmarks of the host-side kernels: real wall
// time of the SpMV kernels, the baseline SpTRSV solvers, the level-set
// analysis and the preprocessing pipeline. These measure the library's
// actual CPU throughput (not the simulated GPU model) — useful for keeping
// the implementation itself fast.
#include <benchmark/benchmark.h>

#include "blocktri.hpp"
#include "common/simd.hpp"

namespace blocktri {
namespace {

const Csr<double>& test_matrix() {
  static const Csr<double> L = gen::kkt_structure(200000, 17, 4.0, 42);
  return L;
}

const Dcsr<double>& test_matrix_dcsr() {
  static const Dcsr<double> D = csr_to_dcsr(test_matrix());
  return D;
}

/// Forces a simd lowering for the duration of one benchmark run; range(0)
/// selects the Path (0 strict, 1 blocked-scalar, 2 vector).
struct PathScope {
  explicit PathScope(benchmark::State& state) {
    simd::force_path(static_cast<simd::Path>(state.range(0)));
    state.SetLabel(simd::to_string(simd::active_path()));
  }
  ~PathScope() { simd::clear_forced_path(); }
};

void BM_SpmvScalarCsr(benchmark::State& state) {
  const auto& L = test_matrix();
  const auto x = gen::random_rhs<double>(L.ncols, 1);
  auto y = gen::random_rhs<double>(L.nrows, 2);
  for (auto _ : state) {
    spmv_scalar_csr(L, x.data(), y.data(), nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_SpmvScalarCsr);

void BM_SpmvVectorCsr(benchmark::State& state) {
  const auto& L = test_matrix();
  const auto x = gen::random_rhs<double>(L.ncols, 1);
  auto y = gen::random_rhs<double>(L.nrows, 2);
  for (auto _ : state) {
    spmv_vector_csr(L, x.data(), y.data(), nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_SpmvVectorCsr);

void BM_SpmvScalarDcsr(benchmark::State& state) {
  const auto& D = test_matrix_dcsr();
  const auto x = gen::random_rhs<double>(D.ncols, 1);
  auto y = gen::random_rhs<double>(D.nrows, 2);
  for (auto _ : state) {
    spmv_scalar_dcsr(D, x.data(), y.data(), nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * D.nnz());
}
BENCHMARK(BM_SpmvScalarDcsr);

void BM_SpmvVectorDcsr(benchmark::State& state) {
  const auto& D = test_matrix_dcsr();
  const auto x = gen::random_rhs<double>(D.ncols, 1);
  auto y = gen::random_rhs<double>(D.nrows, 2);
  for (auto _ : state) {
    spmv_vector_dcsr(D, x.data(), y.data(), nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * D.nnz());
}
BENCHMARK(BM_SpmvVectorDcsr);

// SIMD-vs-scalar sweep: the same host kernels under each forced lowering.
void BM_SpmvCsrPath(benchmark::State& state) {
  PathScope ps(state);
  const auto& L = test_matrix();
  const auto x = gen::random_rhs<double>(L.ncols, 1);
  auto y = gen::random_rhs<double>(L.nrows, 2);
  for (auto _ : state) {
    spmv_scalar_csr(L, x.data(), y.data(), nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_SpmvCsrPath)->Arg(0)->Arg(1)->Arg(2);

void BM_SpmvDcsrPath(benchmark::State& state) {
  PathScope ps(state);
  const auto& D = test_matrix_dcsr();
  const auto x = gen::random_rhs<double>(D.ncols, 1);
  auto y = gen::random_rhs<double>(D.nrows, 2);
  for (auto _ : state) {
    spmv_scalar_dcsr(D, x.data(), y.data(), nullptr);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * D.nnz());
}
BENCHMARK(BM_SpmvDcsrPath)->Arg(0)->Arg(1)->Arg(2);

void BM_SptrsvSerial(benchmark::State& state) {
  const auto& L = test_matrix();
  const auto b = gen::random_rhs<double>(L.nrows, 3);
  std::vector<double> x(static_cast<std::size_t>(L.nrows));
  for (auto _ : state) {
    sptrsv_serial_raw(L, b.data(), x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_SptrsvSerial);

void BM_SptrsvSyncFreeHost(benchmark::State& state) {
  const auto& L = test_matrix();
  const SyncFreeSolver<double> solver(L);
  const auto b = gen::random_rhs<double>(L.nrows, 3);
  std::vector<double> x(static_cast<std::size_t>(L.nrows));
  for (auto _ : state) {
    solver.solve(b.data(), x.data(), nullptr);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_SptrsvSyncFreeHost);

void BM_LevelSetAnalysis(benchmark::State& state) {
  const auto& L = test_matrix();
  for (auto _ : state) {
    const LevelSets ls = compute_level_sets(L);
    benchmark::DoNotOptimize(ls.nlevels);
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_LevelSetAnalysis);

void BM_CsrToCsc(benchmark::State& state) {
  const auto& L = test_matrix();
  for (auto _ : state) {
    const Csc<double> c = csr_to_csc(L);
    benchmark::DoNotOptimize(c.nnz());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_CsrToCsc);

void BM_BlockSolverPreprocess(benchmark::State& state) {
  const auto& L = test_matrix();
  for (auto _ : state) {
    BlockSolver<double>::Options opt;
    opt.planner.stop_rows = 5760;
    const BlockSolver<double> solver(L, opt);
    benchmark::DoNotOptimize(solver.nnz_in_squares());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_BlockSolverPreprocess);

void BM_BlockSolverSolveHost(benchmark::State& state) {
  const auto& L = test_matrix();
  BlockSolver<double>::Options opt;
  opt.planner.stop_rows = 5760;
  const BlockSolver<double> solver(L, opt);
  const auto b = gen::random_rhs<double>(L.nrows, 5);
  for (auto _ : state) {
    const auto x = solver.solve(b);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_BlockSolverSolveHost);

void BM_BlockSolverSolveWarmPath(benchmark::State& state) {
  PathScope ps(state);
  const auto& L = test_matrix();
  BlockSolver<double>::Options opt;
  opt.planner.stop_rows = 5760;
  const BlockSolver<double> solver(L, opt);
  const auto b = gen::random_rhs<double>(L.nrows, 5);
  std::vector<double> x(b.size());
  solver.solve(b.data(), x.data());  // warm the workspace
  for (auto _ : state) {
    solver.solve(b.data(), x.data());
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * L.nnz());
}
BENCHMARK(BM_BlockSolverSolveWarmPath)->Arg(0)->Arg(1)->Arg(2);

void BM_CacheModelProbe(benchmark::State& state) {
  sim::CacheModel cache(6u << 20, 128, 8);
  Rng rng(7);
  std::vector<std::uint64_t> addrs(1 << 16);
  for (auto& a : addrs)
    a = static_cast<std::uint64_t>(rng.uniform_int(0, (64 << 20) - 1));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i], 8));
    i = (i + 1) & (addrs.size() - 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheModelProbe);

}  // namespace
}  // namespace blocktri

BENCHMARK_MAIN();
