// Figure 7 reproduction: box plots of the double/single-precision
// performance ratio of the three methods on both GPUs across the suite.
//
// The paper's observation: because sparse kernels are dominated by structure
// traffic rather than arithmetic, the ratio sits far above the dense-compute
// 0.5 — around 0.9 for Sync-free, 0.8–0.9 for the block algorithm, 0.7–0.8
// for cuSPARSE.
//
//   ./bench/fig7_precision [--limit=159]
#include <algorithm>
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

namespace {

struct Box {
  std::vector<double> v;
  void add(double x) { v.push_back(x); }
  std::string render() {
    if (v.empty()) return "(no data)";
    std::sort(v.begin(), v.end());
    auto q = [&](double p) {
      const double idx = p * static_cast<double>(v.size() - 1);
      const auto lo = static_cast<std::size_t>(idx);
      const auto hi = std::min(lo + 1, v.size() - 1);
      return v[lo] + (idx - static_cast<double>(lo)) * (v[hi] - v[lo]);
    };
    return "min " + fmt_fixed(v.front(), 3) + " | q1 " + fmt_fixed(q(0.25), 3) +
           " | med " + fmt_fixed(q(0.5), 3) + " | q3 " + fmt_fixed(q(0.75), 3) +
           " | max " + fmt_fixed(v.back(), 3);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto limit = static_cast<std::size_t>(cli.get_int("limit", 159));

  const auto suite = gen::paper_suite();
  // boxes[gpu][method]
  Box boxes[2][3];
  const char* method_names[3] = {"cuSPARSE-like", "Sync-free",
                                 "block algorithm"};
  const sim::GpuSpec bases[2] = {sim::titan_x(), sim::titan_rtx()};

  std::size_t done = 0;
  for (const auto& entry : suite) {
    if (done >= limit) break;
    ++done;
    const Csr<double> Ld = entry.build();
    const Csr<float> Lf = gen::convert_values<float>(Ld);
    for (int g = 0; g < 2; ++g) {
      const sim::GpuSpec gpu = sim::scale_for_dataset(bases[g], entry.scale);
      const auto stop =
          static_cast<index_t>(sim::paper_stop_rows(bases[g], entry.scale));
      const ThreeWay rd = run_three_methods(Ld, gpu, stop);
      const ThreeWay rf = run_three_methods(Lf, gpu, stop);
      boxes[g][0].add(rd.cusparse.gflops / rf.cusparse.gflops);
      boxes[g][1].add(rd.syncfree.gflops / rf.syncfree.gflops);
      boxes[g][2].add(rd.block.gflops / rf.block.gflops);
    }
    if (done % 20 == 0)
      std::fprintf(stderr, "  ... %zu/%zu matrices\n", done,
                   std::min(limit, suite.size()));
  }

  std::printf("Figure 7 — double/single precision performance ratio "
              "(%zu matrices):\n\n", done);
  for (int g = 0; g < 2; ++g) {
    std::printf("%s:\n", bases[g].name.c_str());
    for (int m = 0; m < 3; ++m)
      std::printf("  %-16s %s\n", method_names[m], boxes[g][m].render().c_str());
  }
  std::printf(
      "\nPaper: Sync-free ratio ~0.9; block algorithm 0.8–0.9; cuSPARSE\n"
      "0.7–0.8 — all far above the dense-kernel 0.5 because structure\n"
      "traffic, not arithmetic, dominates.\n");
  return 0;
}
