// Ablation of the §3.4 recursion-depth rule: the paper stops splitting when
// the next block would drop below 20 x GPU core count. We sweep the stop
// threshold around that rule and show solve performance on representative
// matrices — too-fine blocks drown in kernel launches, too-coarse blocks
// give up locality and parallel SpMV work.
//
//   ./bench/ablation_depth
#include <cstdio>

#include "harness.hpp"

using namespace blocktri;
using namespace blocktri::bench;

int main(int, char**) {
  const sim::GpuSpec base = sim::titan_rtx();
  const double factors[6] = {0.125, 0.25, 0.5, 1.0, 2.0, 4.0};

  std::printf("Depth-rule ablation — block-algorithm GFlops vs stop_rows\n"
              "(1.0 = the paper's 20 x cores rule, scaled per matrix):\n\n");
  TextTable t({"matrix", "0.125x", "0.25x", "0.5x", "1x (paper)", "2x", "4x",
               "leaves @1x"});
  for (const auto& entry : gen::representative_suite()) {
    const Csr<double> L = entry.build();
    const sim::GpuSpec gpu = sim::scale_for_dataset(base, entry.scale);
    const auto rule =
        static_cast<index_t>(sim::paper_stop_rows(base, entry.scale));
    const auto b = gen::random_rhs<double>(L.nrows, 7);
    std::vector<std::string> row = {entry.name};
    index_t leaves_at_rule = 0;
    for (const double f : factors) {
      auto opt = bench_block_options<double>(std::max<index_t>(
          32, static_cast<index_t>(static_cast<double>(rule) * f)));
      const BlockSolver<double> solver(L, opt);
      if (f == 1.0) leaves_at_rule = solver.plan().num_tri_blocks();
      row.push_back(fmt_fixed(measure_block(solver, b, gpu).gflops, 2));
    }
    row.push_back(std::to_string(leaves_at_rule));
    t.add_row(std::move(row));
    std::fflush(stdout);
  }
  std::printf("%s\n", t.to_string().c_str());
  return 0;
}
