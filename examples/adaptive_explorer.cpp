// Adaptive-selection explorer: shows what the preprocessing stage decides
// for a given matrix — the block structure, per-block features, and which
// SpTRSV / SpMV kernel Algorithm 7 picks for every block.
//
//   ./examples/adaptive_explorer --suite=fullchip-sim
//   ./examples/adaptive_explorer --matrix=/path/to/matrix.mtx
//   ./examples/adaptive_explorer --threads=4   (0 = all hardware threads)
//   ./examples/adaptive_explorer            (default: kkt_power-sim)
#include <cstdio>

#include "blocktri.hpp"

using namespace blocktri;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);

  Csr<double> L;
  std::string name;
  if (cli.has("matrix")) {
    name = cli.get("matrix", "");
    std::printf("Reading %s...\n", name.c_str());
    Coo<double> coo;
    if (const Status s = try_read_matrix_market_file(name, &coo); !s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
      return 1;
    }
    L = lower_triangular_with_diag(coo_to_csr(coo));
  } else {
    name = cli.get("suite", "kkt_power-sim");
    L = gen::find_suite_entry(name).build();
  }

  const auto feat = compute_triangular_features(L);
  std::printf("\nMatrix %s: %s\n", name.c_str(), describe(feat.base).c_str());
  std::printf("level sets: %d (width min %d / avg %.1f / max %d)\n",
              feat.nlevels, feat.parallelism.min_width,
              feat.parallelism.avg_width, feat.parallelism.max_width);
  std::printf("\nSparsity pattern (downsampled):\n%s\n", spy(L, 48).c_str());

  BlockSolver<double>::Options opt;
  opt.planner.stop_rows = static_cast<index_t>(
      cli.get_int("stop_rows", std::max<index_t>(512, L.nrows / 32)));
  opt.threads = static_cast<int>(cli.get_int("threads", 1));
  const BlockSolver<double> solver(L, opt);

  std::printf("Recursive plan: %d triangular blocks, %zu squares, depth %d\n",
              solver.plan().num_tri_blocks(), solver.plan().squares.size(),
              solver.plan().depth_used);
  // The effective count can differ from --threads: 0 means all hardware
  // threads, and BLOCKTRI_THREADS overrides both.
  std::printf("host threads: %d effective (requested %d)\n", solver.threads(),
              opt.threads);
  if (solver.threads() > 1)
    std::printf("executor waves: %zu for %zu steps\n",
                solver.step_waves().size(), solver.plan().steps.size());
  std::printf("nnz in squares after reordering: %s / %s\n\n",
              fmt_count(solver.nnz_in_squares()).c_str(),
              fmt_count(L.nnz()).c_str());

  TextTable tri({"tri block", "rows", "nnz", "levels", "kernel (Alg. 7)"});
  for (std::size_t t = 0; t < solver.tri_info().size(); ++t) {
    const auto& info = solver.tri_info()[t];
    tri.add_row({std::to_string(t),
                 fmt_count(info.r1 - info.r0),
                 fmt_count(info.nnz),
                 fmt_count(info.nlevels),
                 to_string(info.kind)});
  }
  std::printf("%s\n", tri.to_string().c_str());

  TextTable sq({"square block", "shape", "nnz", "empty rows", "kernel"});
  for (std::size_t q = 0; q < solver.square_info().size(); ++q) {
    const auto& info = solver.square_info()[q];
    sq.add_row({std::to_string(q),
                fmt_count(info.ref.r1 - info.ref.r0) + " x " +
                    fmt_count(info.ref.c1 - info.ref.c0),
                fmt_count(info.nnz),
                fmt_fixed(100.0 * info.empty_ratio, 1) + "%",
                to_string(info.kind)});
  }
  std::printf("%s\n", sq.to_string().c_str());

  // Verify while we're here.
  const auto b = gen::random_rhs<double>(L.nrows, 1);
  const auto x = solver.solve(b);
  const auto x_ref = sptrsv_serial(L, b);
  double err = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    err = std::max(err, std::abs(x[i] - x_ref[i]));
  std::printf("solution check vs serial: max err = %.3e\n", err);
  return 0;
}
