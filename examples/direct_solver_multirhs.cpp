// Direct-solver scenario — the paper's other §1 motivation: the solve phase
// of a sparse direct factorisation applies L^{-1} to many right-hand sides,
// so preprocessing once and solving fast wins (Table 5's amortisation
// argument, shown here from the user's perspective).
//
// We mimic the triangular factor of a structured factorisation with a banded
// system, then solve a batch of right-hand sides with all three methods and
// report total (preprocess + k solves) simulated time.
//
//   ./examples/direct_solver_multirhs [--n=400000] [--rhs=64]
#include <algorithm>
#include <cstdio>

#include "blocktri.hpp"

using namespace blocktri;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<index_t>(cli.get_int("n", 300000));
  const int num_rhs = static_cast<int>(cli.get_int("rhs", 64));
  const sim::GpuSpec base = sim::titan_rtx();
  const double scale = 16.0;  // dataset-scale convention, DESIGN.md §2
  const sim::GpuSpec gpu = sim::scale_for_dataset(base, scale);

  // A factor with the kkt_power profile (Table 4 row 3): moderate level
  // count, wide parallelism, power-law row lengths — typical of triangular
  // factors from circuit/optimisation problems.
  const Csr<double> L = gen::power_law_levels(n, 17, 0.75, 1.8, 1500, 4.14,
                                              1.3, 0, 0.0, 2, 0.05,
                                              /*seed=*/5);
  std::printf("Triangular factor: n = %d, nnz = %s; solving %d rhs on %s\n\n",
              n, fmt_count(L.nnz()).c_str(), num_rhs, gpu.name.c_str());

  std::vector<std::vector<double>> rhs;
  rhs.reserve(static_cast<std::size_t>(num_rhs));
  for (int k = 0; k < num_rhs; ++k)
    rhs.push_back(gen::random_rhs<double>(n, 100 + static_cast<unsigned>(k)));

  TextTable table({"method", "preprocess (ms)", "per-solve (ms)",
                   "total for " + std::to_string(num_rhs) + " rhs (ms)"});

  // --- Recursive block algorithm (preprocess once, solve many). ---
  {
    BlockSolver<double>::Options opt;
    opt.planner.stop_rows =
        static_cast<index_t>(sim::paper_stop_rows(base, scale));
    const BlockSolver<double> solver(L, opt);
    const double pre_ms = solver.preprocess_stats().model_ms;

    sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                          gpu.cache_assoc);
    sim::SolveReport total;
    for (const auto& b : rhs) solver.solve_simulated(b, gpu, &cache, &total);
    table.add_row({"recursive block (this work)", fmt_fixed(pre_ms, 2),
                   fmt_fixed(total.ms() / num_rhs, 4),
                   fmt_fixed(pre_ms + total.ms(), 2)});
  }

  // --- Baselines. Their preprocessing is cheap (level analysis / in-degree
  // count); we model it as two passes over the nonzeros on the host.
  auto run_baseline = [&](auto& solver, const std::string& name,
                          std::int64_t pre_passes) {
    sim::HostSim hs(sim::host_default());
    hs.ops(pre_passes * L.nnz());
    hs.bytes(pre_passes * L.nnz() *
             static_cast<std::int64_t>(sizeof(index_t) + sizeof(double)));
    const double pre_ms = hs.ms();

    sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                          gpu.cache_assoc);
    sim::AddressSpace as;
    TrsvSim ts;
    ts.gpu = &gpu;
    ts.cache = &cache;
    ts.fp64 = true;
    ts.x_base = as.reserve(static_cast<std::uint64_t>(n) * 8);
    ts.b_base = as.reserve(static_cast<std::uint64_t>(n) * 8);
    ts.aux_base = as.reserve(static_cast<std::uint64_t>(n) * 12);
    sim::SolveReport total;
    ts.report = &total;
    std::vector<double> x(static_cast<std::size_t>(n));
    for (const auto& b : rhs) solver.solve(b.data(), x.data(), &ts);
    table.add_row({name, fmt_fixed(pre_ms, 2),
                   fmt_fixed(total.ms() / num_rhs, 4),
                   fmt_fixed(pre_ms + total.ms(), 2)});
  };
  CusparseLikeSolver<double> cusp(L);
  run_baseline(cusp, "cuSPARSE-like (level merge)", 2);
  SyncFreeSolver<double> sf(L);
  run_baseline(sf, "Sync-free", 1);

  std::printf("%s\n", table.to_string().c_str());
  std::printf("The blocked method pays more preprocessing but it amortises\n"
              "across the batch — the Table 5 effect.\n\n");

  // --- Host-measured batched solve: the same amortisation, for real. ------
  // solve_many streams each block's structure once per step for the whole
  // panel instead of once per right-hand side; with the plan reused too, the
  // per-RHS cost drops well below the solve-one-at-a-time workflow. (Bitwise
  // identical to the per-column solve() results — see bench/batched_rhs for
  // the full sweep.)
  {
    const index_t host_n = std::min<index_t>(n, 60000);
    const index_t k = static_cast<index_t>(std::min(num_rhs, 16));
    const Csr<double> Lh = gen::banded(host_n, 48, 16.0, 11);
    std::vector<double> B;
    B.reserve(static_cast<std::size_t>(host_n) * static_cast<std::size_t>(k));
    for (index_t c = 0; c < k; ++c) {
      const auto b = gen::random_rhs<double>(host_n,
                                             300 + static_cast<unsigned>(c));
      B.insert(B.end(), b.begin(), b.end());
    }
    BlockSolver<double>::Options opt;
    opt.planner.stop_rows = std::max<index_t>(512, host_n / 16);
    opt.verify.enabled = false;
    Stopwatch sw;
    const BlockSolver<double> solver(Lh, opt);
    const double pre_ms = sw.milliseconds();
    sw.reset();
    std::vector<double> x;
    for (index_t c = 0; c < k; ++c)
      x = solver.solve(std::vector<double>(
          B.begin() + static_cast<std::ptrdiff_t>(c) * host_n,
          B.begin() + static_cast<std::ptrdiff_t>(c + 1) * host_n));
    const double singles_ms = sw.milliseconds();
    sw.reset();
    const std::vector<double> X = solver.solve_many(B, k);
    const double batched_ms = sw.milliseconds();
    std::printf("Host wall-clock (n = %d, k = %d): analysis %.2f ms, "
                "%d x solve() %.2f ms, solve_many %.2f ms\n"
                "per-RHS with one-time analysis: %.3f ms batched vs %.3f ms "
                "re-analysed per solve\n",
                host_n, k, pre_ms, k, singles_ms, batched_ms,
                (pre_ms + batched_ms) / k, pre_ms + singles_ms / k);
  }
  return 0;
}
