// Solve service demo: the embeddable session API and the Unix-socket front
// end, end to end.
//
// The scenario is a long-lived solver process serving many lightweight
// callers, each with a single right-hand side. Registering the matrix once
// pays analysis once (into the service's shared PlanCache); concurrent
// single-RHS requests are then coalesced into solve_many panels, which is
// where the batched kernels' amortisation (BENCH_batched.json) turns into
// request throughput. Part 1 drives the in-process API from a handful of
// threads; part 2 serves the same service over a Unix socket and talks to
// it with SolveClient.
//
//   ./examples/service_demo [--n=20000] [--clients=8]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "blocktri.hpp"

using namespace blocktri;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<index_t>(cli.get_int("n", 20000));
  const int clients = cli.get_int("clients", 8);
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }

  const Csr<double> L = gen::banded(n, 32, 8.0, 3);
  BlockSolver<double>::Options opt;
  opt.planner.stop_rows = std::max<index_t>(256, n / 64);

  // --- Part 1: the embeddable API ------------------------------------------
  service::ServiceOptions sopt;
  sopt.max_panel = clients;
  sopt.batch_window_ms = 5.0;
  service::SolveService svc(sopt);

  std::uint64_t id = 0;
  if (Status st = svc.register_matrix(L, opt, &id); !st.ok()) {
    std::fprintf(stderr, "register failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("registered matrix id=%llu (n=%lld)\n",
              static_cast<unsigned long long>(id), static_cast<long long>(n));

  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      service::Request req;
      req.matrix_id = id;
      req.tenant = "team-" + std::to_string(c % 2);
      req.b = gen::random_rhs<double>(L.nrows, 10 + c);
      req.deadline_ms = 30000.0;
      const service::Response resp = svc.solve(req);
      std::printf("  client %d: %s, panel width %d, x[0]=%.6f\n", c,
                  status_code_name(resp.status.code()), resp.panel_width,
                  resp.x.empty() ? 0.0 : resp.x[0]);
    });
  }
  for (auto& t : threads) t.join();

  const service::ServiceStats st = svc.stats();
  std::printf("service: %llu requests in %llu panels (ratio %.2f, widest "
              "%llu), %llu deadline misses\n",
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.panels), st.coalesce_ratio,
              static_cast<unsigned long long>(st.max_panel_width),
              static_cast<unsigned long long>(st.deadline_misses));
  for (const char* tenant : {"team-0", "team-1"}) {
    const service::TenantStats ts = svc.tenant_stats(tenant);
    std::printf("  %s: %llu requests, %llu coalesced\n", tenant,
                static_cast<unsigned long long>(ts.requests),
                static_cast<unsigned long long>(ts.coalesced));
  }

  // --- Part 2: the socket front end ----------------------------------------
  const std::string path =
      "/tmp/blocktri_demo_" + std::to_string(::getpid()) + ".sock";
  service::SolveServer server(svc, path);
  if (Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("serving at %s\n", path.c_str());

  service::SolveClient client;
  if (!client.connect(path).ok()) return 1;
  service::WireRequest wreq;
  wreq.matrix_id = id;
  wreq.tenant = "remote";
  wreq.b = gen::random_rhs<double>(L.nrows, 99);
  service::WireResponse wresp;
  if (Status s = client.solve(wreq, &wresp); !s.ok()) {
    std::fprintf(stderr, "socket solve failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("socket round trip: %s, %zu entries, x[0]=%.6f\n",
              status_code_name(wresp.code), wresp.x.size(), wresp.x[0]);
  server.stop();
  return 0;
}
