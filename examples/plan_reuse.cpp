// Plan reuse: analyze a sparse triangular pattern once, then reuse the
// analyzed BlockPlan three ways — across factorizations of the same
// pattern (refresh_values), across solver instances in one process
// (PlanCache), and across processes (save_artifact / create_from_file).
//
// The scenario is a simulation loop: the matrix pattern is fixed by the
// mesh, the numeric values change every timestep, and the program restarts
// now and then. Table 5 of the paper prices the block algorithm's
// preprocessing at ~9 solves — reuse makes that a one-time cost.
//
//   ./examples/plan_reuse [--n=60000] [--steps=5] [--path=plan_reuse.btpa]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "blocktri.hpp"

using namespace blocktri;

namespace {

// The "next timestep": same pattern, perturbed values.
Csr<double> next_factorization(const Csr<double>& L, int step) {
  Csr<double> out = L;
  for (std::size_t i = 0; i < out.val.size(); ++i)
    out.val[i] *= 1.0 + 0.01 * static_cast<double>((step + 1) * (i % 7));
  return out;
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<index_t>(cli.get_int("n", 60000));
  const int steps = static_cast<int>(cli.get_int("steps", 5));
  const std::string path = cli.get("path", "plan_reuse.btpa");
  if (const auto bad = cli.unused(); !bad.empty()) {
    std::fprintf(stderr, "unknown flag --%s\n", bad.front().c_str());
    return 1;
  }

  const Csr<double> L = gen::banded(n, 32, 12.0, 5);
  const std::vector<double> b = gen::random_rhs<double>(n, 3);

  BlockSolver<double>::Options opt;
  opt.scheme = BlockScheme::kRecursive;
  opt.planner.stop_rows = std::max<index_t>(512, n / 32);

  // --- Cold analysis: pay for planning + level-set analyses once. ---
  std::unique_ptr<BlockSolver<double>> solver;
  Stopwatch cold;
  if (auto st = BlockSolver<double>::create(L, opt, &solver); !st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.to_string().c_str());
    return 1;
  }
  std::printf("cold analysis: %.1f ms (%d tri blocks, %zu squares, "
              "structure hash %016llx)\n",
              cold.milliseconds(), solver->plan().num_tri_blocks(),
              solver->plan().squares.size(),
              static_cast<unsigned long long>(solver->structure_hash()));
  const std::vector<double> x0 = solver->solve(b);

  // --- Reuse 1: new values, same pattern — no re-analysis. ---
  for (int s = 0; s < steps; ++s) {
    const Csr<double> Ls = next_factorization(L, s);
    Stopwatch sw;
    if (auto st = solver->refresh_values(Ls); !st.ok()) {
      std::fprintf(stderr, "refresh failed: %s\n", st.to_string().c_str());
      return 1;
    }
    const std::vector<double> x = solver->solve(b);
    std::printf("step %d: refresh_values %.1f ms, max |x - serial| = %.2e\n",
                s, sw.milliseconds(),
                max_abs_diff(x, sptrsv_serial(Ls, b)));
  }

  // --- Reuse 2: share the analyzed plan inside one process. ---
  PlanCache<double> cache;
  std::unique_ptr<BlockSolver<double>> a, c;
  if (!BlockSolver<double>::create(L, opt, &a, &cache).ok()) return 1;
  Stopwatch hit;
  if (!BlockSolver<double>::create(L, opt, &c, &cache).ok()) return 1;
  const auto st = cache.stats();
  std::printf("plan cache: warm create %.1f ms (hits %zu, misses %zu, "
              "%zu entries, %.1f MiB)\n",
              hit.milliseconds(), st.hits, st.misses, st.entries,
              static_cast<double>(st.bytes) / (1024.0 * 1024.0));

  // --- Reuse 3: persist to disk, reload in "the next process". ---
  if (auto s = solver->save_artifact(path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::unique_ptr<BlockSolver<double>> restored;
  Stopwatch load;
  if (auto s = BlockSolver<double>::create_from_file(path, L, opt, &restored);
      !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.to_string().c_str());
    return 1;
  }
  const std::vector<double> x1 = restored->solve(b);
  std::printf("artifact: saved + reloaded from %s, %.1f ms, "
              "max |x_restored - x_cold| = %.2e (bitwise: %s)\n",
              path.c_str(), load.milliseconds(), max_abs_diff(x1, x0),
              x1 == x0 ? "yes" : "no");
  std::remove(path.c_str());
  return 0;
}
