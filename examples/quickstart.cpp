// Quickstart: build a sparse lower-triangular system, preprocess it with the
// recursive block algorithm, solve, verify against serial substitution, and
// report the simulated GPU performance of the three SpTRSV methods.
//
//   ./examples/quickstart [--n=250000] [--levels=17] [--gpu=rtx|x]
#include <cstdio>
#include <cmath>

#include "blocktri.hpp"

using namespace blocktri;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto n = static_cast<index_t>(cli.get_int("n", 250000));
  const auto nlevels = static_cast<index_t>(cli.get_int("levels", 17));
  const bool use_rtx = cli.get("gpu", "rtx") == "rtx";
  // The benchmark convention (DESIGN.md §2): matrices mimic the paper's at
  // ~1/16 size, so measure on the device scaled to match.
  const double scale = cli.get_double("scale", 16.0);
  const sim::GpuSpec base = use_rtx ? sim::titan_rtx() : sim::titan_x();
  const sim::GpuSpec gpu = sim::scale_for_dataset(base, scale);

  // 1. A sparse lower-triangular system with a KKT-like structure.
  std::printf("Generating a %d x %d KKT-structured system...\n", n, n);
  const Csr<double> L = gen::kkt_structure(n, nlevels, 4.0, /*seed=*/42);
  const std::vector<double> b = gen::random_rhs<double>(n, 7);
  std::printf("  nnz = %s, levels = %d\n", fmt_count(L.nnz()).c_str(),
              compute_level_sets(L).nlevels);

  // 2. Preprocess once (partition + reorder + adaptive kernel selection).
  BlockSolver<double>::Options opt;
  opt.planner.stop_rows =
      static_cast<index_t>(sim::paper_stop_rows(base, scale));
  Stopwatch pre;
  const BlockSolver<double> solver(L, opt);
  std::printf("Preprocessing: %.0f ms wall (host-model %.2f ms)\n",
              pre.milliseconds(), solver.preprocess_stats().model_ms);
  std::printf("  %d triangular blocks, %zu square blocks, depth %d\n",
              solver.plan().num_tri_blocks(), solver.plan().squares.size(),
              solver.plan().depth_used);
  std::printf("  nonzeros moved into square (SpMV) blocks: %s of %s (%.0f%%)\n",
              fmt_count(solver.nnz_in_squares()).c_str(),
              fmt_count(L.nnz()).c_str(),
              100.0 * static_cast<double>(solver.nnz_in_squares()) /
                  static_cast<double>(L.nnz()));

  // 3. Solve and verify.
  const std::vector<double> x = solver.solve(b);
  const std::vector<double> x_ref = sptrsv_serial(L, b);
  double max_err = 0.0;
  for (index_t i = 0; i < n; ++i)
    max_err = std::max(max_err, std::fabs(x[static_cast<std::size_t>(i)] -
                                          x_ref[static_cast<std::size_t>(i)]));
  std::printf("Solved. max |x - x_serial| = %.3e\n", max_err);

  // 4. Simulated performance on the chosen GPU (warm cache, like the
  //    paper's 200-run averages).
  std::printf("\nSimulated SpTRSV on %s:\n", gpu.name.c_str());
  TextTable table({"method", "time (ms)", "GFlops", "kernel launches"});

  {
    sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                          gpu.cache_assoc);
    sim::SolveReport warm;
    solver.solve_simulated(b, gpu, &cache, &warm);
    sim::SolveReport rep;
    solver.solve_simulated(b, gpu, &cache, &rep);
    table.add_row({"recursive block (this work)", fmt_fixed(rep.ms(), 4),
                   fmt_fixed(rep.gflops(), 2),
                   std::to_string(rep.kernel_launches)});
  }
  auto baseline = [&](auto& s, const std::string& name) {
    sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                          gpu.cache_assoc);
    sim::AddressSpace as;
    TrsvSim ts;
    ts.gpu = &gpu;
    ts.cache = &cache;
    ts.fp64 = true;
    ts.x_base = as.reserve(static_cast<std::uint64_t>(n) * 8);
    ts.b_base = as.reserve(static_cast<std::uint64_t>(n) * 8);
    ts.aux_base = as.reserve(static_cast<std::uint64_t>(n) * 12);
    std::vector<double> xs(static_cast<std::size_t>(n));
    sim::SolveReport warm;
    ts.report = &warm;
    s.solve(b.data(), xs.data(), &ts);
    sim::SolveReport rep;
    ts.report = &rep;
    s.solve(b.data(), xs.data(), &ts);
    table.add_row({name, fmt_fixed(rep.ms(), 4), fmt_fixed(rep.gflops(), 2),
                   std::to_string(rep.kernel_launches)});
  };
  CusparseLikeSolver<double> cusp(L);
  baseline(cusp, "cuSPARSE-like (level merge)");
  SyncFreeSolver<double> sf(L);
  baseline(sf, "Sync-free");

  std::printf("%s\n", table.to_string().c_str());
  return 0;
}
