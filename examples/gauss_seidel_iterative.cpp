// Iterative-solver scenario — the paper's §1 motivation: preconditioned
// iterative methods call SpTRSV once (or twice) per iteration, so a method
// with moderate preprocessing cost and a fast solve phase wins end to end.
//
// This example solves the 2D Poisson problem A u = f (5-point Laplacian)
// with Gauss-Seidel iteration:
//
//     (D + L_A) u_{k+1} = f - U_A u_k
//
// where the forward substitution (D + L_A)^{-1} is carried out by the
// library's recursive block SpTRSV, preprocessed once and reused across all
// iterations. The simulated-GPU cost accounting shows how the preprocessing
// amortises (compare Table 5 of the paper).
//
//   ./examples/gauss_seidel_iterative [--nx=300] [--ny=300] [--tol=1e-8]
#include <cmath>
#include <cstdio>

#include "blocktri.hpp"

using namespace blocktri;

namespace {

/// 5-point reaction-diffusion operator on an nx*ny grid: 4 + shift on the
/// diagonal, -1 to each neighbour. The reaction term makes the matrix
/// strictly diagonally dominant, so Gauss-Seidel contracts geometrically
/// (plain Poisson would need O(n) sweeps — not what this example is about).
Csr<double> laplacian2d(index_t nx, index_t ny, double shift) {
  Coo<double> coo;
  coo.nrows = coo.ncols = nx * ny;
  auto put = [&coo](index_t r, index_t c, double v) {
    coo.row.push_back(r);
    coo.col.push_back(c);
    coo.val.push_back(v);
  };
  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nx; ++ix) {
      const index_t i = iy * nx + ix;
      put(i, i, 4.0 + shift);
      if (ix > 0) put(i, i - 1, -1.0);
      if (ix + 1 < nx) put(i, i + 1, -1.0);
      if (iy > 0) put(i, i - nx, -1.0);
      if (iy + 1 < ny) put(i, i + nx, -1.0);
    }
  }
  return coo_to_csr(coo);
}

/// Strict upper triangle of A (the U_A part of the splitting).
Csr<double> strict_upper(const Csr<double>& a) {
  Coo<double> coo;
  coo.nrows = a.nrows;
  coo.ncols = a.ncols;
  for (index_t i = 0; i < a.nrows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = a.col_idx[static_cast<std::size_t>(k)];
      if (j > i) {
        coo.row.push_back(i);
        coo.col.push_back(j);
        coo.val.push_back(a.val[static_cast<std::size_t>(k)]);
      }
    }
  return coo_to_csr(coo);
}

double residual_norm(const Csr<double>& a, const std::vector<double>& u,
                     const std::vector<double>& f) {
  const auto au = spmv_apply(a, u);
  double norm = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double r = f[i] - au[i];
    norm += r * r;
  }
  return std::sqrt(norm);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const auto nx = static_cast<index_t>(cli.get_int("nx", 300));
  const auto ny = static_cast<index_t>(cli.get_int("ny", 300));
  const double tol = cli.get_double("tol", 1e-10);
  const double shift = cli.get_double("shift", 1.0);
  const int max_iters = static_cast<int>(cli.get_int("max_iters", 500));

  const Csr<double> A = laplacian2d(nx, ny, shift);
  const index_t n = A.nrows;
  std::printf("2D Poisson, %d x %d grid (n = %d, nnz = %s)\n", nx, ny, n,
              fmt_count(A.nnz()).c_str());

  // Splitting A = (D + L_A) + U_A.
  const Csr<double> DL = lower_triangular_with_diag(A);
  const Csr<double> U = strict_upper(A);

  // Preprocess the forward-substitution operator ONCE.
  const sim::GpuSpec base = sim::titan_rtx();
  const double scale = 16.0;  // dataset-scale convention, see DESIGN.md §2
  BlockSolver<double>::Options opt;
  opt.planner.stop_rows =
      static_cast<index_t>(sim::paper_stop_rows(base, scale));
  Stopwatch pre;
  const BlockSolver<double> fwd(DL, opt);
  const double pre_ms = pre.milliseconds();

  // Manufactured solution: u* = 1, f = A u*.
  const std::vector<double> u_star(static_cast<std::size_t>(n), 1.0);
  const std::vector<double> f = spmv_apply(A, u_star);

  const sim::GpuSpec gpu = sim::scale_for_dataset(base, scale);
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);
  sim::SolveReport sim_total;

  std::vector<double> u(static_cast<std::size_t>(n), 0.0);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  const double f_norm = residual_norm(A, u, f);
  int iters = 0;
  double rel = 1.0;
  for (; iters < max_iters && rel > tol; ++iters) {
    // rhs = f - U u  (strict upper sweep), then forward substitution.
    rhs = f;
    spmv_scalar_csr(U, u.data(), rhs.data(), nullptr);
    u = fwd.solve_simulated(rhs, gpu, &cache, &sim_total);
    rel = residual_norm(A, u, f) / f_norm;
  }

  std::printf("Gauss-Seidel converged to rel. residual %.2e in %d iterations\n",
              rel, iters);
  double err = 0.0;
  for (index_t i = 0; i < n; ++i)
    err = std::max(err, std::fabs(u[static_cast<std::size_t>(i)] - 1.0));
  std::printf("max |u - u*| = %.2e\n", err);

  const double model_pre_ms = fwd.preprocess_stats().model_ms;
  std::printf("\nCost accounting (simulated %s):\n", gpu.name.c_str());
  std::printf("  preprocessing (host wall): %.0f ms; host model: %.2f ms\n",
              pre_ms, model_pre_ms);
  std::printf("  %d SpTRSV calls: %.2f ms simulated (%.4f ms each, %.2f GFlops)\n",
              iters, sim_total.ms(), sim_total.ms() / iters,
              sim_total.gflops());
  std::printf("  preprocessing / single-solve ratio: %.1fx (paper reports "
              "9.16x on average)\n",
              model_pre_ms / (sim_total.ms() / iters));
  return 0;
}
