#include "shard/control.hpp"

#include <algorithm>
#include <cstring>

namespace blocktri::shard {

namespace {

// Field-by-field little-endian packing, same discipline as service/wire.cpp.

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof v);
}
void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof v);
}
void put_i32(std::vector<std::uint8_t>* out, std::int32_t v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof v);
}
void put_f64(std::vector<std::uint8_t>* out, double v) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(&v);
  out->insert(out->end(), b, b + sizeof v);
}
void put_string(std::vector<std::uint8_t>* out, const std::string& s) {
  const auto len = static_cast<std::uint32_t>(
      std::min<std::size_t>(s.size(), 0xFFFF));
  put_u32(out, len);
  out->insert(out->end(), s.data(), s.data() + len);
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& buf) : buf_(buf) {}
  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i32(std::int32_t* v) { return raw(v, sizeof *v); }
  bool f64(double* v) { return raw(v, sizeof *v); }
  bool string(std::string* out) {
    std::uint32_t len = 0;
    if (!u32(&len) || buf_.size() - pos_ < len) return false;
    out->assign(reinterpret_cast<const char*>(buf_.data()) + pos_, len);
    pos_ += len;
    return true;
  }
  Status truncated(const char* what) const {
    return Status(StatusCode::kTruncated,
                  std::string("control frame ends inside ") + what,
                  static_cast<std::int64_t>(pos_), LocationKind::kLine);
  }

 private:
  bool raw(void* p, std::size_t n) {
    if (buf_.size() - pos_ < n) return false;
    std::memcpy(p, buf_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
};

Status send(int fd, ControlFrame type, const std::vector<std::uint8_t>& p) {
  return io::write_frame(fd, kControlSpec, static_cast<std::uint8_t>(type),
                         p.data(), p.size(), /*with_crc=*/true);
}

}  // namespace

Status write_hello(int fd, const HelloMsg& msg) {
  std::vector<std::uint8_t> p;
  put_i32(&p, msg.code);
  put_string(&p, msg.message);
  put_i32(&p, msg.shard_index);
  put_u64(&p, msg.level_analyses);
  return send(fd, ControlFrame::kHello, p);
}

Status write_solve_cmd(int fd, const SolveCmdMsg& msg) {
  std::vector<std::uint8_t> p;
  put_u64(&p, msg.seq);
  put_i32(&p, msg.k);
  return send(fd, ControlFrame::kSolveCmd, p);
}

Status write_report(int fd, const ReportMsg& msg) {
  std::vector<std::uint8_t> p;
  put_u64(&p, msg.seq);
  put_i32(&p, msg.code);
  put_string(&p, msg.message);
  put_u64(&p, msg.steps_run);
  put_u64(&p, msg.halo_deferred);
  put_u64(&p, msg.halo_ready);
  put_f64(&p, msg.wait_ms);
  put_u64(&p, msg.level_analyses);
  return send(fd, ControlFrame::kReport, p);
}

Status write_shutdown(int fd) {
  return send(fd, ControlFrame::kShutdown, {});
}

Status read_any_frame(int fd, std::uint8_t* type,
                      std::vector<std::uint8_t>* payload, bool* clean_eof) {
  return io::read_frame(fd, kControlSpec, type, payload, clean_eof);
}

Status decode_hello(const std::vector<std::uint8_t>& payload, HelloMsg* out) {
  Reader r(payload);
  if (!r.i32(&out->code)) return r.truncated("the hello status");
  if (!r.string(&out->message)) return r.truncated("the hello message");
  if (!r.i32(&out->shard_index)) return r.truncated("the shard index");
  if (!r.u64(&out->level_analyses)) return r.truncated("the analysis count");
  return Status::Ok();
}

Status decode_solve_cmd(const std::vector<std::uint8_t>& payload,
                        SolveCmdMsg* out) {
  Reader r(payload);
  if (!r.u64(&out->seq)) return r.truncated("the epoch sequence");
  std::int32_t k = 0;
  if (!r.i32(&k)) return r.truncated("the panel width");
  if (k < 1)
    return Status(StatusCode::kBadFormat,
                  "solve command carries non-positive panel width " +
                      std::to_string(k));
  out->k = static_cast<index_t>(k);
  return Status::Ok();
}

Status decode_report(const std::vector<std::uint8_t>& payload,
                     ReportMsg* out) {
  Reader r(payload);
  if (!r.u64(&out->seq)) return r.truncated("the epoch sequence");
  if (!r.i32(&out->code)) return r.truncated("the report status");
  if (!r.string(&out->message)) return r.truncated("the report message");
  if (!r.u64(&out->steps_run)) return r.truncated("the step count");
  if (!r.u64(&out->halo_deferred)) return r.truncated("the deferral count");
  if (!r.u64(&out->halo_ready)) return r.truncated("the ready count");
  if (!r.f64(&out->wait_ms)) return r.truncated("the wait time");
  if (!r.u64(&out->level_analyses)) return r.truncated("the analysis count");
  return Status::Ok();
}

}  // namespace blocktri::shard
