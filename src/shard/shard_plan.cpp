#include "shard/shard_plan.hpp"

#include <algorithm>

#include "common/status.hpp"

namespace blocktri::shard {

template <class T>
std::vector<index_t> compute_shard_cuts(const PlanArtifact<T>& art,
                                        int nshards) {
  const BlockPlan& p = art.plan;
  const auto nleaves = static_cast<std::size_t>(p.num_tri_blocks());
  BLOCKTRI_CHECK_MSG(nshards >= 1, "shard count must be positive");
  BLOCKTRI_CHECK(art.tri.size() == nleaves);

  // Per-leaf work weight: the triangle's nnz plus each overlapping square's
  // nnz apportioned by row share. Square row ranges are unions of leaves in
  // every scheme, but the proportional split keeps this correct (and
  // deterministic) even if that ever changes. +1 so empty leaves still
  // advance the prefix — a cut between two all-zero leaves stays strict.
  std::vector<double> weight(nleaves, 1.0);
  for (std::size_t t = 0; t < nleaves; ++t)
    weight[t] += static_cast<double>(art.tri[t].nnz);
  for (const SquareBlockArtifact<T>& q : art.squares) {
    const index_t rows = q.ref.r1 - q.ref.r0;
    if (rows <= 0 || q.nnz == 0) continue;
    const double per_row = static_cast<double>(q.nnz) / rows;
    for (std::size_t t = 0; t < nleaves; ++t) {
      const index_t lo = std::max(p.tri_bounds[t], q.ref.r0);
      const index_t hi = std::min(p.tri_bounds[t + 1], q.ref.r1);
      if (hi > lo) weight[t] += per_row * static_cast<double>(hi - lo);
    }
  }

  // Greedy prefix partition over leaves: advance each cut until the prefix
  // crosses the next 1/P share of the total. Forcing at least one leaf per
  // shard keeps the bounds strictly ascending; running out of leaves simply
  // yields fewer shards.
  std::vector<double> prefix(nleaves + 1, 0.0);
  for (std::size_t t = 0; t < nleaves; ++t)
    prefix[t + 1] = prefix[t] + weight[t];
  const double total = prefix.back();

  std::vector<index_t> bounds;
  bounds.push_back(0);
  std::size_t leaf = 0;
  const auto pshards = static_cast<std::size_t>(nshards);
  for (std::size_t s = 1; s < pshards && leaf + (pshards - s) < nleaves; ++s) {
    const double target = total * static_cast<double>(s) / nshards;
    std::size_t cut = leaf + 1;  // at least one leaf per shard
    while (cut < nleaves - (pshards - s - 1) && prefix[cut] < target) ++cut;
    // Snap to whichever neighbour is closer to the ideal share.
    if (cut > leaf + 1 &&
        target - prefix[cut - 1] < prefix[cut] - target)
      --cut;
    bounds.push_back(p.tri_bounds[cut]);
    leaf = cut;
  }
  bounds.push_back(p.n);
  return bounds;
}

namespace {

/// Row slice [a, b) of a block-local CSR (rows re-based so the slice's row 0
/// is `a`). Columns untouched: each kept row's entries are byte-identical.
template <class T>
Csr<T> slice_csr_rows(const Csr<T>& csr, index_t a, index_t b) {
  Csr<T> out;
  out.nrows = b - a;
  out.ncols = csr.ncols;
  const offset_t lo = csr.row_ptr[static_cast<std::size_t>(a)];
  const offset_t hi = csr.row_ptr[static_cast<std::size_t>(b)];
  out.row_ptr.resize(static_cast<std::size_t>(b - a) + 1);
  for (index_t r = a; r <= b; ++r)
    out.row_ptr[static_cast<std::size_t>(r - a)] =
        csr.row_ptr[static_cast<std::size_t>(r)] - lo;
  out.col_idx.assign(csr.col_idx.begin() + lo, csr.col_idx.begin() + hi);
  out.val.assign(csr.val.begin() + lo, csr.val.begin() + hi);
  return out;
}

/// Row slice [a, b) of a block-local DCSR: the kept rows are the contiguous
/// row_ids segment in [a, b), re-based like the CSR slice.
template <class T>
Dcsr<T> slice_dcsr_rows(const Dcsr<T>& dcsr, index_t a, index_t b) {
  Dcsr<T> out;
  out.nrows = b - a;
  out.ncols = dcsr.ncols;
  const auto first = std::lower_bound(dcsr.row_ids.begin(),
                                      dcsr.row_ids.end(), a) -
                     dcsr.row_ids.begin();
  const auto last = std::lower_bound(dcsr.row_ids.begin(),
                                     dcsr.row_ids.end(), b) -
                    dcsr.row_ids.begin();
  const offset_t lo = dcsr.row_ptr[static_cast<std::size_t>(first)];
  const offset_t hi = dcsr.row_ptr[static_cast<std::size_t>(last)];
  out.row_ids.reserve(static_cast<std::size_t>(last - first));
  for (auto i = first; i < last; ++i)
    out.row_ids.push_back(dcsr.row_ids[static_cast<std::size_t>(i)] - a);
  out.row_ptr.resize(static_cast<std::size_t>(last - first) + 1);
  for (auto i = first; i <= last; ++i)
    out.row_ptr[static_cast<std::size_t>(i - first)] =
        dcsr.row_ptr[static_cast<std::size_t>(i)] - lo;
  out.col_idx.assign(dcsr.col_idx.begin() + lo, dcsr.col_idx.begin() + hi);
  out.val.assign(dcsr.val.begin() + lo, dcsr.val.begin() + hi);
  return out;
}

}  // namespace

template <class T>
PlanArtifact<T> slice_shard_artifact(const PlanArtifact<T>& full,
                                     const std::vector<index_t>& bounds,
                                     int shard_index,
                                     std::uint64_t worker_options) {
  const auto count = static_cast<int>(bounds.size()) - 1;
  BLOCKTRI_CHECK(shard_index >= 0 && shard_index < count);
  const index_t row_begin = bounds[static_cast<std::size_t>(shard_index)];
  const index_t row_end = bounds[static_cast<std::size_t>(shard_index) + 1];

  PlanArtifact<T> out;
  out.structure = full.structure;
  out.options = worker_options;
  out.plan = full.plan;
  out.waves = full.waves;
  out.nnz = full.nnz;
  // Workers never run the checked path: verify payloads are dead weight in a
  // slice, and validate_artifact rejects a shard slice that carries them.
  out.verify_captured = false;
  out.build_ops = full.build_ops;
  out.build_bytes = full.build_bytes;
  out.tuned = full.tuned;
  out.merge_width = full.merge_width;
  out.tune_fell_back = full.tune_fell_back;
  out.tune_device = full.tune_device;
  out.oracle_default_ns = full.oracle_default_ns;
  out.oracle_tuned_ns = full.oracle_tuned_ns;

  out.shard = true;
  out.shard_index = static_cast<std::uint32_t>(shard_index);
  out.shard_count = static_cast<std::uint32_t>(count);
  out.shard_row_begin = row_begin;
  out.shard_row_end = row_end;
  out.shard_bounds = bounds;

  out.tri.reserve(full.tri.size());
  for (const TriBlockArtifact<T>& t : full.tri) {
    if (t.r0 >= row_begin && t.r1 <= row_end) {
      TriBlockArtifact<T> local = t;
      local.populated = true;
      local.has_csr = false;  // verify payload, stripped with the rest
      local.csr = Csr<T>{};
      out.tri.push_back(std::move(local));
    } else {
      TriBlockArtifact<T> foreign;
      foreign.r0 = t.r0;
      foreign.r1 = t.r1;
      foreign.kind = t.kind;
      foreign.nlevels = t.nlevels;
      foreign.nnz = t.nnz;
      foreign.populated = false;
      out.tri.push_back(std::move(foreign));
    }
  }

  out.squares.reserve(full.squares.size());
  for (const SquareBlockArtifact<T>& q : full.squares) {
    SquareBlockArtifact<T> s;
    s.ref = q.ref;
    s.kind = q.kind;
    s.empty_ratio = q.empty_ratio;
    const index_t a = std::max(q.ref.r0, row_begin);
    const index_t b = std::min(q.ref.r1, row_end);
    const bool dcsr = q.kind == SpmvKernelKind::kScalarDcsr ||
                      q.kind == SpmvKernelKind::kVectorDcsr;
    if (b > a && q.nnz != 0) {
      if (a == q.ref.r0 && b == q.ref.r1) {
        // Fully owned: keep the payload verbatim (bitwise the cheap way).
        s.csr = q.csr;
        s.dcsr = q.dcsr;
        s.nnz = q.nnz;
      } else if (dcsr) {
        s.dcsr = slice_dcsr_rows(q.dcsr, a - q.ref.r0, b - q.ref.r0);
        s.nnz = s.dcsr.nnz();
      } else {
        s.csr = slice_csr_rows(q.csr, a - q.ref.r0, b - q.ref.r0);
        s.nnz = s.csr.nnz();
      }
      if (s.nnz != 0) {
        s.populated = true;
        s.ref = SquareBlockRef{a, b, q.ref.c0, q.ref.c1};
      }
    }
    if (s.nnz == 0) {
      // No rows (or no nonzeros) in this shard: metadata-only, the plan's
      // original ref, never executed.
      s.populated = false;
      s.ref = q.ref;
      s.csr = Csr<T>{};
      s.dcsr = Dcsr<T>{};
    }
    out.squares.push_back(std::move(s));
  }
  return out;
}

template <class T>
std::vector<std::vector<LocalStep>> build_local_schedule(
    const PlanArtifact<T>& slice) {
  BLOCKTRI_CHECK_MSG(slice.shard, "schedule requires a shard slice");
  const std::vector<index_t>& bounds = slice.shard_bounds;
  const auto count = static_cast<int>(bounds.size()) - 1;
  const auto self = static_cast<int>(slice.shard_index);

  // Shard owning permuted row r: bounds are few, a linear scan is fine.
  const auto owner_of = [&](index_t r) {
    for (int s = 0; s < count; ++s)
      if (r < bounds[static_cast<std::size_t>(s) + 1]) return s;
    return count - 1;
  };

  std::vector<std::vector<LocalStep>> sched;
  for (const std::vector<ExecStep>& wave : slice.waves) {
    std::vector<LocalStep> local;
    for (const ExecStep& step : wave) {
      if (step.kind == ExecStep::Kind::kTri) {
        const TriBlockArtifact<T>& t =
            slice.tri[static_cast<std::size_t>(step.index)];
        if (!t.populated) continue;
        LocalStep ls;
        ls.step = step;
        ls.publish = t.r1;
        local.push_back(std::move(ls));
      } else {
        const SquareBlockArtifact<T>& q =
            slice.squares[static_cast<std::size_t>(step.index)];
        if (!q.populated) continue;
        LocalStep ls;
        ls.step = step;
        // The slice reads x[c0, c1): each upstream shard overlapping that
        // column range must have published up to its end of the overlap.
        // The own-shard portion needs no wait — local steps run in plan
        // order, so the local watermark already covers it.
        index_t c = q.ref.c0;
        while (c < q.ref.c1) {
          const int up = owner_of(c);
          const index_t up_end = bounds[static_cast<std::size_t>(up) + 1];
          const index_t need = std::min(q.ref.c1, up_end);
          if (up != self) ls.waits.push_back({up, need});
          c = need;
        }
        local.push_back(std::move(ls));
      }
    }
    if (!local.empty()) sched.push_back(std::move(local));
  }
  return sched;
}

#define BLOCKTRI_SHARD_PLAN_INSTANTIATE(T)                                   \
  template std::vector<index_t> compute_shard_cuts(const PlanArtifact<T>&,   \
                                                   int);                     \
  template PlanArtifact<T> slice_shard_artifact(                             \
      const PlanArtifact<T>&, const std::vector<index_t>&, int,              \
      std::uint64_t);                                                        \
  template std::vector<std::vector<LocalStep>> build_local_schedule(         \
      const PlanArtifact<T>&);

BLOCKTRI_SHARD_PLAN_INSTANTIATE(float)
BLOCKTRI_SHARD_PLAN_INSTANTIATE(double)

}  // namespace blocktri::shard
