// Shared-memory exchange region for the sharded solve (DESIGN.md §15).
//
// One POSIX shm segment per coordinator holds the interleaved x and b panels
// plus the epoch/watermark header through which workers exchange boundary
// values. The segment is created with shm_open(O_CREAT | O_EXCL), mapped,
// and *immediately* shm_unlinked — workers inherit the mapping across
// fork(), so the name only ever exists for the microseconds between create
// and unlink. A crashed coordinator or SIGKILLed worker can therefore never
// leak a named segment: leak-freedom by construction, not by cleanup code.
//
// Watermark protocol (the boundary exchange):
//   * progress[p] is an absolute permuted row index: rows
//     [shard p's begin, progress[p]) of the x panel are final.
//   * The owning worker release-stores progress[p] after each of its
//     triangular leaves completes. Local leaves run in ascending row order,
//     so the watermark is monotone within an epoch.
//   * A consumer acquire-loads progress[q] and may read the covered x rows
//     once its step's watermark is reached — acquire/release over the same
//     shared mapping makes the panel writes visible.
//   * Exactly one writer per watermark and per x row; b rows are likewise
//     single-writer (a shard's squares only read-modify-write its own rows).
//   * solve_seq (release-stored by the coordinator after the b panel and
//     watermark resets are in place) opens an epoch; abort (set on worker
//     loss or shutdown) makes every halo wait unwind promptly.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "sparse/formats.hpp"

namespace blocktri::shard {

inline constexpr std::uint32_t kShmMagic = 0x42545348;  // "BTSH"
inline constexpr std::uint32_t kShmVersion = 1;
inline constexpr int kMaxShards = 64;

/// One cache line per watermark so publishing shards never false-share.
struct alignas(64) ProgressSlot {
  std::atomic<std::int64_t> rows{0};
};

struct ShmHeader {
  std::uint32_t magic = kShmMagic;
  std::uint32_t version = kShmVersion;
  index_t n = 0;
  index_t k_max = 0;
  std::int32_t nshards = 0;
  std::uint32_t pad0 = 0;
  /// Epoch counter: bumped (release) by the coordinator once an epoch's b
  /// panel and watermark resets are in place.
  std::atomic<std::uint64_t> solve_seq{0};
  /// Nonzero ends the current epoch early: every halo spin re-checks it.
  std::atomic<std::uint32_t> abort{0};
  std::uint32_t pad1 = 0;
  ProgressSlot progress[kMaxShards];
};

static_assert(std::atomic<std::int64_t>::is_always_lock_free &&
                  std::atomic<std::uint64_t>::is_always_lock_free &&
                  std::atomic<std::uint32_t>::is_always_lock_free,
              "the cross-process watermark protocol requires address-free "
              "lock-free atomics");

/// RAII owner of the mapped segment. Movable, not copyable; the mapping is
/// valid in the creating process and, via fork inheritance, in every worker.
template <class T>
class SharedRegion {
 public:
  SharedRegion() = default;
  ~SharedRegion();
  SharedRegion(SharedRegion&& other) noexcept { *this = std::move(other); }
  SharedRegion& operator=(SharedRegion&& other) noexcept;
  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;

  /// Creates, maps and immediately unlinks a fresh segment sized for
  /// `nshards` watermarks and two interleaved n × k_max panels. The name is
  /// salted with the pid and a random suffix, so concurrent coordinators
  /// (parallel test runs included) can never collide even within the
  /// create-to-unlink window.
  static Status create(index_t n, index_t k_max, int nshards,
                       SharedRegion* out);

  ShmHeader* header() const { return header_; }
  T* x_panel() const { return x_; }
  T* b_panel() const { return b_; }
  index_t n() const { return header_ != nullptr ? header_->n : 0; }
  index_t k_max() const { return header_ != nullptr ? header_->k_max : 0; }
  bool valid() const { return header_ != nullptr; }
  /// The (already unlinked) shm name — tests assert it absent in /dev/shm.
  const std::string& name() const { return name_; }

 private:
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  ShmHeader* header_ = nullptr;
  T* x_ = nullptr;
  T* b_ = nullptr;
  std::string name_;
};

}  // namespace blocktri::shard
