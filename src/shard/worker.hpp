// Shard worker process body (DESIGN.md §15).
//
// A worker is forked by ShardCoordinator::create, inherits the shared-memory
// mapping and one end of its control socketpair, rehydrates its shard slice
// from the per-shard .btpa through a worker-local PlanCache (zero level-set
// re-analysis — the warm-start contract, reported in its Hello), and then
// serves solve epochs: scatter-free (the panels live in shared memory), each
// epoch executes the shard's local schedule with the two-pass overlap
// executor — halo-ready steps first, deferred boundary squares waited on and
// run second — publishing its x watermark after every triangular leaf.
//
// The worker never returns: every exit path is _exit() (no atexit handlers,
// no double-flushed stdio inherited from the parent). It installs no signal
// handlers — a SIGKILL fault-injection test must see the untouched default
// disposition.
#pragma once

#include <string>

#include "core/solver.hpp"
#include "shard/shm.hpp"

namespace blocktri::shard {

template <class T>
struct WorkerConfig {
  int control_fd = -1;  // worker end of the control socketpair
  int shard_index = 0;
  std::string artifact_path;  // this shard's .btpa slice
  typename BlockSolver<T>::Options options;  // verify off, threads = 1
  ShmHeader* header = nullptr;  // inherited shm mapping
  T* x_panel = nullptr;
  T* b_panel = nullptr;
};

/// The forked child's whole life. Calls _exit — never returns.
template <class T>
[[noreturn]] void run_worker(const WorkerConfig<T>& cfg);

}  // namespace blocktri::shard
