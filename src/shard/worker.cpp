#include "shard/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/levels.hpp"
#include "persist/plan_cache.hpp"
#include "shard/control.hpp"
#include "shard/shard_plan.hpp"

namespace blocktri::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// True once every upstream watermark a step needs has been published.
/// Acquire loads: a satisfied wait also makes the covered x rows visible.
bool halo_ready(const ShmHeader* hdr, const LocalStep& ls) {
  for (const LocalStep::HaloWait& w : ls.waits) {
    if (hdr->progress[w.upstream].rows.load(std::memory_order_acquire) <
        static_cast<std::int64_t>(w.watermark))
      return false;
  }
  return true;
}

}  // namespace

template <class T>
void run_worker(const WorkerConfig<T>& cfg) {
  const std::uint64_t analyses_at_start = level_analysis_count();

  // Rehydrate the slice through a worker-local PlanCache — the same code
  // path a warm service restart takes, and what a respawned worker reruns.
  PlanCache<T> cache;
  std::unique_ptr<BlockSolver<T>> solver;
  std::vector<std::vector<LocalStep>> schedule;
  HelloMsg hello;
  hello.shard_index = cfg.shard_index;
  {
    auto art = std::make_shared<PlanArtifact<T>>();
    Status st = load_artifact(cfg.artifact_path, art.get());
    if (st.ok()) {
      std::shared_ptr<const PlanArtifact<T>> shared =
          cache.insert(std::move(art));
      schedule = build_local_schedule(*shared);
      st = BlockSolver<T>::create_from_artifact(shared, cfg.options, &solver);
    }
    hello.code = static_cast<std::int32_t>(st.code());
    hello.message = st.message();
  }
  hello.level_analyses = level_analysis_count() - analyses_at_start;
  if (!write_hello(cfg.control_fd, hello).ok() || hello.code != 0) _exit(1);

  ShmHeader* hdr = cfg.header;
  const auto self = cfg.shard_index;
  std::vector<T> tri_scratch(solver->tri_scratch_len());
  const auto& fault = cfg.options.shard.fault;
  const double epoch_timeout_ms =
      cfg.options.shard.epoch_timeout_ms > 0
          ? static_cast<double>(cfg.options.shard.epoch_timeout_ms)
          : 10000.0;

  for (;;) {
    std::uint8_t type = 0;
    std::vector<std::uint8_t> payload;
    bool clean_eof = false;
    if (!read_any_frame(cfg.control_fd, &type, &payload, &clean_eof).ok() ||
        clean_eof)
      _exit(0);  // coordinator went away: quiet, orderly exit
    if (type == static_cast<std::uint8_t>(ControlFrame::kShutdown)) _exit(0);
    if (type != static_cast<std::uint8_t>(ControlFrame::kSolveCmd)) _exit(1);

    SolveCmdMsg cmd;
    if (!decode_solve_cmd(payload, &cmd).ok()) _exit(1);
    if (cmd.k > hdr->k_max) _exit(1);
    // The coordinator release-stored the epoch after staging the b panel
    // and resetting the watermarks; this acquire pairs with it.
    if (hdr->solve_seq.load(std::memory_order_acquire) != cmd.seq) _exit(1);

    ReportMsg report;
    report.seq = cmd.seq;
    const std::uint64_t analyses_at_epoch = level_analysis_count();
    const index_t k = cmd.k;
    T* xw = cfg.x_panel;
    T* bw = cfg.b_panel;
    std::uint64_t steps_run = 0;
    double wait_ms = 0.0;
    Status epoch_status;

    const auto maybe_fault = [&]() {
      if (fault.kill_worker == self &&
          steps_run >= static_cast<std::uint64_t>(fault.after_steps))
        raise(SIGKILL);
      if (fault.hang_worker == self &&
          steps_run >= static_cast<std::uint64_t>(fault.after_steps)) {
        // Unresponsive but alive: the epoch-timeout detector's other case.
        for (;;) std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    };

    const auto run_step = [&](const LocalStep& ls) {
      solver->exec_plan_step_many(ls.step, bw, xw, k, tri_scratch.data());
      ++steps_run;
      if (ls.publish > 0)
        hdr->progress[self].rows.store(static_cast<std::int64_t>(ls.publish),
                                       std::memory_order_release);
      maybe_fault();
    };

    std::vector<const LocalStep*> deferred;
    for (const std::vector<LocalStep>& wave : schedule) {
      if (!epoch_status.ok()) break;
      // Pass 1 — overlap: run everything whose halo is already in, defer
      // boundary squares still waiting on an upstream shard. Wave members
      // are mutually independent, so this reordering is bitwise-neutral.
      deferred.clear();
      for (const LocalStep& ls : wave) {
        if (ls.waits.empty() || halo_ready(hdr, ls)) {
          run_step(ls);
          if (!ls.waits.empty()) ++report.halo_ready;
        } else {
          ++report.halo_deferred;
          deferred.push_back(&ls);
        }
      }
      // Pass 2 — bounded wait on the stragglers, in wave order.
      for (const LocalStep* ls : deferred) {
        const auto wait_begin = Clock::now();
        bool aborted = false;
        while (!halo_ready(hdr, *ls)) {
          if (hdr->abort.load(std::memory_order_acquire) != 0) {
            aborted = true;
            break;
          }
          const double waited =
              std::chrono::duration<double, std::milli>(Clock::now() -
                                                        wait_begin)
                  .count();
          if (waited > epoch_timeout_ms) {
            epoch_status = Status(
                StatusCode::kSpinTimeout,
                "halo wait for an upstream shard exceeded the epoch timeout");
            break;
          }
          std::this_thread::yield();
        }
        wait_ms += std::chrono::duration<double, std::milli>(Clock::now() -
                                                             wait_begin)
                       .count();
        if (aborted) {
          epoch_status = Status(StatusCode::kCancelled,
                                "epoch aborted by the coordinator");
          break;
        }
        if (!epoch_status.ok()) break;
        run_step(*ls);
      }
    }

    report.code = static_cast<std::int32_t>(epoch_status.code());
    report.message = epoch_status.message();
    report.steps_run = steps_run;
    report.wait_ms = wait_ms;
    report.level_analyses = level_analysis_count() - analyses_at_epoch;
    if (!write_report(cfg.control_fd, report).ok()) _exit(1);
  }
}

template void run_worker(const WorkerConfig<float>&);
template void run_worker(const WorkerConfig<double>&);

}  // namespace blocktri::shard
