// Shard planning — cutting one BlockSolver plan into per-process slices.
//
// The sharded backend (DESIGN.md §15) distributes a single solve over a pool
// of worker processes. Each worker owns a contiguous range of the permuted
// rows: the triangular leaves inside the range plus row slices of every
// square block whose rows fall in it. Because cuts are only ever placed at
// plan.tri_bounds (a triangle is never split) and an SpMV's rows are
// arithmetically independent, the union of the shards executes exactly the
// arithmetic of the single-process plan — the sharded solution is bitwise
// identical to BlockSolver::solve_many on one process.
//
// This header is pure planning: no processes, no shared memory. The three
// stages are
//
//   compute_shard_cuts    nnz-balanced cut rows, snapped to tri_bounds
//   slice_shard_artifact  one worker's PlanArtifact (format v3 shard slice)
//   build_local_schedule  the worker's wave-structured step subsequence with
//                         halo watermarks (what to wait for, what to publish)
#pragma once

#include <cstdint>
#include <vector>

#include "persist/artifact.hpp"

namespace blocktri::shard {

/// nnz-balanced cut rows for `nshards` workers, snapped to the plan's
/// triangular leaf boundaries. Each leaf is weighted by its triangle's nnz
/// plus the row-proportional share of every square overlapping it, then the
/// leaves are partitioned greedily by prefix weight (the same discipline as
/// balanced_row_partition). Returns strictly ascending bounds
/// {0, ..., plan.n}; when the plan has fewer leaves than requested shards the
/// result simply has fewer cuts — bounds.size() - 1 is the effective shard
/// count, never 0 for a non-empty plan.
template <class T>
std::vector<index_t> compute_shard_cuts(const PlanArtifact<T>& art,
                                        int nshards);

/// Extracts shard `shard_index`'s slice of a captured artifact:
///   * the *global* plan, waves and permutation are retained verbatim (the
///     worker derives its local schedule and halo dependencies from them),
///   * triangular leaves inside [bounds[i], bounds[i+1]) keep their kernel
///     payloads; foreign leaves become metadata-only (!populated),
///   * squares are row-sliced to the shard's interval (CSR rows re-based,
///     DCSR row_ids segment re-based); slices with no remaining nonzeros
///     become !populated with the plan's original ref,
///   * verify payloads are stripped (shard workers never run the checked
///     path) and `options` is restamped with `worker_options` — the
///     fingerprint of the Options the worker will rehydrate under.
/// The result passes validate_artifact and round-trips through
/// save_artifact/load_artifact as a format-v3 file.
template <class T>
PlanArtifact<T> slice_shard_artifact(const PlanArtifact<T>& full,
                                     const std::vector<index_t>& bounds,
                                     int shard_index,
                                     std::uint64_t worker_options);

/// One plan step a shard executes locally, with its halo bookkeeping.
struct LocalStep {
  ExecStep step;
  /// For a square step: the x-row watermark each upstream shard must have
  /// published before this step may run (progress[upstream] >= watermark).
  /// Empty for tri steps and for squares whose columns are entirely local.
  struct HaloWait {
    int upstream = 0;
    index_t watermark = 0;
  };
  std::vector<HaloWait> waits;
  /// For a tri step: the watermark to release-publish after it completes
  /// (the leaf's r1 — rows [shard begin, publish) are then final). 0 for
  /// square steps.
  index_t publish = 0;
};

/// The worker's execution schedule: the global waves filtered down to the
/// steps shard `shard_index` owns, preserving wave structure (steps of one
/// wave are mutually independent, so the worker may reorder within a wave —
/// the compute/communication overlap runs halo-ready steps first).
template <class T>
std::vector<std::vector<LocalStep>> build_local_schedule(
    const PlanArtifact<T>& slice);

}  // namespace blocktri::shard
