// Sharded multi-process solve coordinator (DESIGN.md §15).
//
// ShardCoordinator::create cuts a BlockSolver's plan into P contiguous row
// shards (compute_shard_cuts), writes one format-v3 .btpa slice per shard,
// maps a shared-memory panel region, and forks P worker processes that
// rehydrate their slices with zero re-analysis. Each solve is an *epoch*:
// the coordinator scatters the permuted right-hand sides into the shared b
// panel, resets the watermarks, bumps the epoch sequence (release), and
// sends every worker a SolveCmd; workers execute their local schedules with
// compute/communication overlap and report over their control pipes; the
// coordinator gathers the shared x panel back. The sharded result is bitwise
// identical to the base solver's solve_many at any shard count.
//
// Failure containment: a worker that dies (waitpid) or stops making progress
// within shard.epoch_timeout_ms turns the epoch into a typed kWorkerLost —
// never a hang. The shared segment is unlinked at creation (workers inherit
// the mapping), so no crash can leak a named segment; dead workers are
// reaped with targeted waitpid and respawned from their persisted slices
// before the next epoch (a respawn re-runs the warm path: zero re-analysis).
// With shard.fallback_inprocess the lost epoch is transparently re-run on
// the base solver in process.
#pragma once

#include <sys/types.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "shard/shm.hpp"

namespace blocktri::shard {

/// Cumulative coordinator telemetry (monotonic; returned by value).
struct CoordinatorStats {
  std::uint64_t epochs = 0;          // solve epochs attempted
  std::uint64_t workers_lost = 0;    // dead or hung workers detected
  std::uint64_t fallbacks = 0;       // epochs re-run on the base solver
  std::uint64_t respawns = 0;        // workers re-forked from their slices
  std::uint64_t halo_ready = 0;      // boundary squares ready in pass 1
  std::uint64_t halo_deferred = 0;   // boundary squares deferred to pass 2
  double wait_ms = 0.0;              // total worker watermark-wait time
  /// Level-set analyses performed by workers across rehydrations and
  /// epochs — the warm-start proof is that this stays 0.
  std::uint64_t worker_level_analyses = 0;
};

template <class T>
class ShardCoordinator {
 public:
  using Options = typename BlockSolver<T>::Options;

  /// Builds the shard pool for `base` (which must stay alive and unchanged
  /// for the coordinator's lifetime — it provides the captured plan and the
  /// in-process fallback). `opt.shard.processes` must be >= 1; the effective
  /// shard count may be lower when the plan has fewer leaves
  /// (shard_count()). Failure leaves *out untouched with every child
  /// process, file and mapping cleaned up.
  static Status create(const BlockSolver<T>& base, const Options& opt,
                       std::unique_ptr<ShardCoordinator<T>>* out);

  /// Shuts the pool down: Shutdown frames (EOF works too), bounded waitpid,
  /// SIGKILL for stragglers, targeted reaps, slice files unlinked.
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Sharded solve of L x = b. Bitwise identical to base.solve(b, x).
  Status solve(const T* b, T* x, const SolveControls& controls = {},
               SolveReport* rep = nullptr);

  /// Sharded batched solve of an n × k column-major panel. Bitwise identical
  /// to base.solve_many(B, X, k). k must be <= max_panel().
  Status solve_many(const T* B, T* X, index_t k,
                    const SolveControls& controls = {},
                    SolveReport* rep = nullptr);

  /// Gather/scatter form: column c read from Bs[c], written to Xs[c] — the
  /// solve service's coalescing front end feeds panels this way.
  Status solve_many(const T* const* Bs, T* const* Xs, index_t k,
                    const SolveControls& controls = {},
                    SolveReport* rep = nullptr);

  index_t n() const { return base_->n(); }
  index_t max_panel() const { return k_max_; }
  /// Effective shard count (may be below shard.processes on shallow plans).
  int shard_count() const { return count_; }
  const std::vector<index_t>& bounds() const { return bounds_; }
  /// The (already unlinked) shared segment name, for leak tests.
  const std::string& shm_name() const { return shm_.name(); }
  /// Worker pids, for fault-injection tests (dead entries are -1).
  std::vector<pid_t> worker_pids() const;
  CoordinatorStats stats() const;

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;  // coordinator end of the control socketpair
    bool alive = false;
  };

  ShardCoordinator() = default;

  /// Forks worker `i` from its slice file and awaits its Hello.
  Status spawn_worker(int i);
  /// Re-forks every dead worker; Ok when the full pool is alive again.
  Status respawn_dead_locked();
  /// Marks `w` dead, reaps it (targeted waitpid), closes its fd.
  void retire_worker_locked(Worker& w, bool kill_first);
  /// One epoch over panels delivered via either contiguous or pointer form.
  Status run_epoch_locked(const T* B, const T* const* Bs, T* X, T* const* Xs,
                          index_t k, const SolveControls& controls,
                          SolveReport* rep);

  const BlockSolver<T>* base_ = nullptr;
  Options opt_;
  typename BlockSolver<T>::Options worker_opt_;
  std::vector<index_t> bounds_;
  int count_ = 0;
  index_t k_max_ = 1;
  SharedRegion<T> shm_;
  std::vector<Worker> workers_;
  std::vector<std::string> slice_paths_;
  std::uint64_t seq_ = 0;
  mutable std::mutex mu_;  // one epoch at a time; stats reads
  CoordinatorStats stats_;
};

}  // namespace blocktri::shard
