#include "shard/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>

#include "shard/control.hpp"
#include "shard/shard_plan.hpp"
#include "shard/worker.hpp"

namespace blocktri::shard {

namespace {

using Clock = std::chrono::steady_clock;

std::string slice_dir(const std::string& configured) {
  if (!configured.empty()) return configured;
  if (const char* tmp = std::getenv("TMPDIR"); tmp != nullptr && *tmp != '\0')
    return tmp;
  return "/tmp";
}

Status worker_lost(const std::string& what) {
  return Status(StatusCode::kWorkerLost, what);
}

/// Targeted, WNOHANG-first reap. Never waitpid(-1): the embedding process
/// (the solve service, a test harness) may own children of its own, and a
/// wildcard wait would steal their exit statuses.
void reap(pid_t pid) {
  if (pid <= 0) return;
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid || (r < 0 && errno != EINTR)) return;
  }
}

bool exited(pid_t pid) {
  if (pid <= 0) return true;
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  return r == pid || (r < 0 && errno == ECHILD);
}

}  // namespace

template <class T>
Status ShardCoordinator<T>::create(const BlockSolver<T>& base,
                                   const Options& opt,
                                   std::unique_ptr<ShardCoordinator<T>>* out) {
  BLOCKTRI_CHECK(out != nullptr);
  if (opt.shard.processes < 1)
    return Status(StatusCode::kInvalidArgument,
                  "shard.processes must be >= 1 for a sharded coordinator");
  if (opt.shard.processes > kMaxShards)
    return Status(StatusCode::kInvalidArgument,
                  "shard.processes exceeds the supported maximum of " +
                      std::to_string(kMaxShards));

  std::unique_ptr<ShardCoordinator<T>> coord(new ShardCoordinator<T>());
  coord->base_ = &base;
  coord->opt_ = opt;
  coord->k_max_ = std::max<index_t>(1, opt.shard.max_panel);

  // Workers rehydrate under runtime options of their own: single-threaded,
  // no verify payloads (a slice never carries them), no in-process fault
  // hooks, and of course no nested sharding. None of these fields are in
  // the fingerprint except verify.enabled — which is why the slice is
  // restamped with this fingerprint.
  coord->worker_opt_ = opt;
  coord->worker_opt_.verify.enabled = false;
  coord->worker_opt_.threads = 1;
  coord->worker_opt_.collect_stats = false;
  coord->worker_opt_.fault = {};
  coord->worker_opt_.shard.processes = 0;

  const PlanArtifact<T> art = base.capture_artifact();
  coord->bounds_ = compute_shard_cuts(art, opt.shard.processes);
  coord->count_ = static_cast<int>(coord->bounds_.size()) - 1;
  if (coord->count_ < 1)
    return Status(StatusCode::kInvalidArgument,
                  "the plan yields no shardable leaves");

  // Persist the per-shard slices. The salted stem keeps concurrent
  // coordinators (parallel test shards included) from colliding.
  const std::uint64_t worker_fp =
      BlockSolver<T>::options_fingerprint(coord->worker_opt_);
  std::string stem;
  {
    std::random_device rd;
    const std::uint64_t salt = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    char buf[96];
    std::snprintf(buf, sizeof buf, "%s/bt-shard-%ld-%016llx",
                  slice_dir(opt.shard.artifact_dir).c_str(),
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(salt));
    stem = buf;
  }
  for (int i = 0; i < coord->count_; ++i) {
    const PlanArtifact<T> slice =
        slice_shard_artifact(art, coord->bounds_, i, worker_fp);
    const std::string path = stem + "-" + std::to_string(i) + ".btpa";
    if (Status st = save_artifact(path, slice); !st.ok()) return st;
    coord->slice_paths_.push_back(path);
  }

  if (Status st = SharedRegion<T>::create(base.n(), coord->k_max_,
                                          coord->count_, &coord->shm_);
      !st.ok())
    return st;

  coord->workers_.resize(static_cast<std::size_t>(coord->count_));
  for (int i = 0; i < coord->count_; ++i)
    if (Status st = coord->spawn_worker(i); !st.ok()) return st;

  *out = std::move(coord);
  return Status::Ok();
}

template <class T>
Status ShardCoordinator<T>::spawn_worker(int i) {
  Worker& w = workers_[static_cast<std::size_t>(i)];
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    return Status(StatusCode::kIoError,
                  std::string("socketpair: ") + std::strerror(errno));

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Status(StatusCode::kIoError,
                  std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Drop every coordinator-side fd inherited across the fork —
    // holding a sibling's coordinator end would keep that sibling's channel
    // half-open after the coordinator exits.
    ::close(fds[0]);
    for (const Worker& other : workers_)
      if (other.fd >= 0) ::close(other.fd);
    WorkerConfig<T> cfg;
    cfg.control_fd = fds[1];
    cfg.shard_index = i;
    cfg.artifact_path = slice_paths_[static_cast<std::size_t>(i)];
    cfg.options = worker_opt_;
    cfg.header = shm_.header();
    cfg.x_panel = shm_.x_panel();
    cfg.b_panel = shm_.b_panel();
    run_worker(cfg);  // _exits, never returns
  }
  ::close(fds[1]);
  w.pid = pid;
  w.fd = fds[0];
  w.alive = true;

  // Await the Hello: the worker is either ready, failed typed (it said
  // why), or dead/silent (bounded by the epoch timeout — never a hang).
  struct pollfd pfd = {w.fd, POLLIN, 0};
  const int timeout_ms = std::max(1, opt_.shard.epoch_timeout_ms);
  int pr;
  do {
    pr = ::poll(&pfd, 1, timeout_ms);
  } while (pr < 0 && errno == EINTR);
  if (pr <= 0) {
    retire_worker_locked(w, /*kill_first=*/true);
    return worker_lost("shard worker " + std::to_string(i) +
                       " sent no hello within the epoch timeout");
  }
  std::uint8_t type = 0;
  std::vector<std::uint8_t> payload;
  bool eof = false;
  Status st = read_any_frame(w.fd, &type, &payload, &eof);
  HelloMsg hello;
  if (st.ok() && !eof &&
      type == static_cast<std::uint8_t>(ControlFrame::kHello))
    st = decode_hello(payload, &hello);
  else if (st.ok())
    st = worker_lost("shard worker " + std::to_string(i) +
                     " exited before its hello");
  if (st.ok() && hello.code != 0)
    st = Status(static_cast<StatusCode>(hello.code),
                "shard worker " + std::to_string(i) +
                    " failed to start: " + hello.message);
  if (!st.ok()) {
    retire_worker_locked(w, /*kill_first=*/true);
    return st;
  }
  stats_.worker_level_analyses += hello.level_analyses;
  return Status::Ok();
}

template <class T>
void ShardCoordinator<T>::retire_worker_locked(Worker& w, bool kill_first) {
  if (w.fd >= 0) {
    ::close(w.fd);
    w.fd = -1;
  }
  if (w.pid > 0) {
    if (kill_first) ::kill(w.pid, SIGKILL);
    reap(w.pid);
    w.pid = -1;
  }
  w.alive = false;
}

template <class T>
Status ShardCoordinator<T>::respawn_dead_locked() {
  for (int i = 0; i < count_; ++i) {
    Worker& w = workers_[static_cast<std::size_t>(i)];
    if (w.alive && !exited(w.pid)) continue;
    if (w.alive) retire_worker_locked(w, /*kill_first=*/false);
    ++stats_.respawns;
    if (Status st = spawn_worker(i); !st.ok()) return st;
  }
  return Status::Ok();
}

template <class T>
ShardCoordinator<T>::~ShardCoordinator() {
  for (Worker& w : workers_) {
    if (!w.alive) continue;
    if (w.fd >= 0) {
      (void)write_shutdown(w.fd);  // EOF below is the backstop
      ::close(w.fd);
      w.fd = -1;
    }
  }
  // Grace period for orderly exits, then SIGKILL the stragglers. Every
  // reap is a targeted waitpid — no zombies, no stolen statuses.
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  for (Worker& w : workers_) {
    if (w.pid <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(w.pid, &status, WNOHANG);
      if (r == w.pid || (r < 0 && errno == ECHILD)) break;
      if (Clock::now() >= deadline) {
        ::kill(w.pid, SIGKILL);
        reap(w.pid);
        break;
      }
      ::usleep(2000);
    }
    w.pid = -1;
    w.alive = false;
  }
  for (const std::string& path : slice_paths_) ::unlink(path.c_str());
}

template <class T>
Status ShardCoordinator<T>::solve(const T* b, T* x,
                                  const SolveControls& controls,
                                  SolveReport* rep) {
  return solve_many(b, x, 1, controls, rep);
}

template <class T>
Status ShardCoordinator<T>::solve_many(const T* B, T* X, index_t k,
                                       const SolveControls& controls,
                                       SolveReport* rep) {
  std::lock_guard<std::mutex> lock(mu_);
  return run_epoch_locked(B, nullptr, X, nullptr, k, controls, rep);
}

template <class T>
Status ShardCoordinator<T>::solve_many(const T* const* Bs, T* const* Xs,
                                       index_t k,
                                       const SolveControls& controls,
                                       SolveReport* rep) {
  std::lock_guard<std::mutex> lock(mu_);
  return run_epoch_locked(nullptr, Bs, nullptr, Xs, k, controls, rep);
}

template <class T>
Status ShardCoordinator<T>::run_epoch_locked(const T* B, const T* const* Bs,
                                             T* X, T* const* Xs, index_t k,
                                             const SolveControls& controls,
                                             SolveReport* rep) {
  if (k < 1 || k > k_max_)
    return Status(StatusCode::kInvalidArgument,
                  "panel width " + std::to_string(k) +
                      " outside [1, " + std::to_string(k_max_) +
                      "] (shard.max_panel)");
  ++stats_.epochs;

  const auto fall_back = [&](const Status& why) -> Status {
    if (!opt_.shard.fallback_inprocess) return why;
    ++stats_.fallbacks;
    return B != nullptr ? base_->solve_many(B, X, k, controls, rep)
                        : base_->solve_many(Bs, Xs, k, controls, rep);
  };

  // A worker lost in an earlier epoch is respawned here, before the new
  // epoch starts — its slice file is still on disk, so the respawn re-runs
  // the zero-analysis warm path.
  if (Status st = respawn_dead_locked(); !st.ok()) {
    ++stats_.workers_lost;
    return fall_back(worker_lost("shard worker respawn failed: " +
                                 st.message()));
  }

  // Stage the epoch: permuted scatter of the right-hand sides into the
  // shared b panel (interleaved, ld = k), watermark reset, then the
  // release-store of the epoch sequence that workers acquire.
  ShmHeader* hdr = shm_.header();
  const std::vector<index_t>& perm = base_->plan().new_of_old;
  const index_t n = base_->n();
  T* bw = shm_.b_panel();
  for (index_t c = 0; c < k; ++c) {
    const T* src = B != nullptr ? B + static_cast<std::size_t>(c) * n : Bs[c];
    for (index_t i = 0; i < n; ++i)
      bw[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * k + c] =
          src[i];
  }
  for (int p = 0; p < count_; ++p)
    hdr->progress[p].rows.store(
        static_cast<std::int64_t>(bounds_[static_cast<std::size_t>(p)]),
        std::memory_order_relaxed);
  hdr->abort.store(0, std::memory_order_relaxed);
  ++seq_;
  hdr->solve_seq.store(seq_, std::memory_order_release);

  bool lost = false;
  std::vector<bool> reported(static_cast<std::size_t>(count_), false);
  int pending = 0;
  for (int i = 0; i < count_; ++i) {
    Worker& w = workers_[static_cast<std::size_t>(i)];
    if (write_solve_cmd(w.fd, {seq_, k}).ok()) {
      ++pending;
    } else {
      // Write failure means the peer is gone (EPIPE under MSG_NOSIGNAL).
      // The epoch is lost, but the peers that did get the command must
      // still be drained below — their reports must not leak into the
      // next epoch's socket buffers.
      retire_worker_locked(w, /*kill_first=*/true);
      reported[static_cast<std::size_t>(i)] = true;
      lost = true;
      hdr->abort.store(1, std::memory_order_release);
    }
  }

  // Collect reports. Liveness is judged on *progress*: any watermark
  // advance or report within epoch_timeout_ms resets the clock; a silent,
  // motionless pool past the timeout is a hung worker. Dead processes are
  // detected eagerly through EOF on their control fds.
  Status epoch_status;
  bool deadline_tripped = false;
  std::int64_t last_water = -1;
  auto last_motion = Clock::now();
  const int timeout_ms = std::max(1, opt_.shard.epoch_timeout_ms);
  std::vector<ReportMsg> reports(static_cast<std::size_t>(count_));

  while (pending > 0) {
    std::vector<struct pollfd> pfds;
    std::vector<int> idx;
    for (int i = 0; i < count_; ++i) {
      const Worker& w = workers_[static_cast<std::size_t>(i)];
      if (w.alive && !reported[static_cast<std::size_t>(i)]) {
        pfds.push_back({w.fd, POLLIN, 0});
        idx.push_back(i);
      }
    }
    if (pfds.empty()) break;
    int pr = ::poll(pfds.data(), pfds.size(), 50);
    if (pr < 0 && errno == EINTR) continue;

    // Watermark motion counts as liveness even when no report arrived.
    std::int64_t water = 0;
    for (int p = 0; p < count_; ++p)
      water += hdr->progress[p].rows.load(std::memory_order_relaxed);
    if (water != last_water || pr > 0) {
      last_water = water;
      last_motion = Clock::now();
    }

    for (std::size_t j = 0; j < pfds.size(); ++j) {
      if (pfds[j].revents == 0) continue;
      const int i = idx[j];
      Worker& w = workers_[static_cast<std::size_t>(i)];
      std::uint8_t type = 0;
      std::vector<std::uint8_t> payload;
      bool eof = false;
      Status st = read_any_frame(w.fd, &type, &payload, &eof);
      ReportMsg& msg = reports[static_cast<std::size_t>(i)];
      if (st.ok() && !eof &&
          type == static_cast<std::uint8_t>(ControlFrame::kReport))
        st = decode_report(payload, &msg);
      else if (st.ok())
        st = worker_lost("shard worker " + std::to_string(i) +
                         " hung up mid-epoch");
      if (!st.ok() || msg.seq != seq_) {
        retire_worker_locked(w, /*kill_first=*/true);
        lost = true;
        reported[static_cast<std::size_t>(i)] = true;
        --pending;
        // Unblock everyone still spinning on this shard's watermark.
        hdr->abort.store(1, std::memory_order_release);
        continue;
      }
      reported[static_cast<std::size_t>(i)] = true;
      --pending;
      if (msg.code != 0 && epoch_status.ok())
        epoch_status = Status(static_cast<StatusCode>(msg.code),
                              "shard worker " + std::to_string(i) + ": " +
                                  msg.message);
    }

    // Honour the caller's deadline/cancel: abort the epoch (workers unwind
    // at their next halo wait or finish their current wave) but keep
    // draining reports so no stale frame leaks into the next epoch.
    if (!deadline_tripped &&
        (controls.deadline.expired() ||
         (controls.cancel != nullptr && controls.cancel->cancelled()))) {
      deadline_tripped = true;
      hdr->abort.store(1, std::memory_order_release);
      if (epoch_status.ok())
        epoch_status =
            controls.deadline.expired()
                ? Status(StatusCode::kDeadlineExceeded,
                         "deadline exceeded during the sharded epoch")
                : Status(StatusCode::kCancelled,
                         "sharded epoch cancelled by the caller");
    }

    const double silent_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - last_motion)
            .count();
    if (pending > 0 && silent_ms > timeout_ms) {
      // Hung epoch: abort, SIGKILL every unreported worker, reap, typed loss.
      hdr->abort.store(1, std::memory_order_release);
      for (int i = 0; i < count_; ++i) {
        if (reported[static_cast<std::size_t>(i)]) continue;
        retire_worker_locked(workers_[static_cast<std::size_t>(i)],
                             /*kill_first=*/true);
        reported[static_cast<std::size_t>(i)] = true;
        --pending;
      }
      lost = true;
    }
  }

  if (deadline_tripped) return epoch_status;  // a retry cannot beat the clock
  if (lost) {
    ++stats_.workers_lost;
    return fall_back(
        worker_lost("a shard worker died or stalled mid-epoch (epoch " +
                    std::to_string(seq_) + ")"));
  }
  if (!epoch_status.ok()) {
    // A worker refused the epoch (spin timeout, abort echo). Its peers may
    // have been cancelled too; the epoch is not recoverable in place.
    return fall_back(epoch_status);
  }

  // Success: permuted gather of the shared x panel into the caller's form.
  const T* xw = shm_.x_panel();
  for (index_t c = 0; c < k; ++c) {
    T* dst = X != nullptr ? X + static_cast<std::size_t>(c) * n : Xs[c];
    for (index_t i = 0; i < n; ++i)
      dst[i] =
          xw[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)]) * k +
             c];
  }
  for (int i = 0; i < count_; ++i) {
    const ReportMsg& msg = reports[static_cast<std::size_t>(i)];
    stats_.halo_ready += msg.halo_ready;
    stats_.halo_deferred += msg.halo_deferred;
    stats_.wait_ms += msg.wait_ms;
    stats_.worker_level_analyses += msg.level_analyses;
  }
  if (rep != nullptr) {
    rep->steps_total = static_cast<index_t>(base_->plan().steps.size());
    index_t steps = 0;
    for (const ReportMsg& msg : reports)
      steps += static_cast<index_t>(msg.steps_run);
    rep->steps_completed = steps;
  }
  return Status::Ok();
}

template <class T>
std::vector<pid_t> ShardCoordinator<T>::worker_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pid_t> pids;
  for (const Worker& w : workers_) pids.push_back(w.alive ? w.pid : -1);
  return pids;
}

template <class T>
CoordinatorStats ShardCoordinator<T>::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

template class ShardCoordinator<float>;
template class ShardCoordinator<double>;

}  // namespace blocktri::shard
