#include "shard/shm.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <random>

namespace blocktri::shard {

namespace {

/// Pid + 64 random bits: two coordinators — even forked twins racing inside
/// the create-to-unlink window — never pick the same name.
std::string fresh_shm_name() {
  std::random_device rd;
  std::uint64_t salt = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  char buf[64];
  std::snprintf(buf, sizeof buf, "/bt-shard-%ld-%016llx",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(salt));
  return buf;
}

Status shm_error(const std::string& what, int err) {
  return Status(StatusCode::kIoError,
                what + ": " + std::strerror(err));
}

}  // namespace

template <class T>
SharedRegion<T>::~SharedRegion() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

template <class T>
SharedRegion<T>& SharedRegion<T>::operator=(SharedRegion&& other) noexcept {
  if (this == &other) return *this;
  if (base_ != nullptr) ::munmap(base_, bytes_);
  base_ = other.base_;
  bytes_ = other.bytes_;
  header_ = other.header_;
  x_ = other.x_;
  b_ = other.b_;
  name_ = std::move(other.name_);
  other.base_ = nullptr;
  other.bytes_ = 0;
  other.header_ = nullptr;
  other.x_ = nullptr;
  other.b_ = nullptr;
  return *this;
}

template <class T>
Status SharedRegion<T>::create(index_t n, index_t k_max, int nshards,
                               SharedRegion* out) {
  if (n < 0 || k_max < 1 || nshards < 1 || nshards > kMaxShards)
    return Status(StatusCode::kInvalidArgument,
                  "shared region needs n >= 0, k_max >= 1 and 1 <= shards <= " +
                      std::to_string(kMaxShards));

  const std::size_t panel =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(k_max) *
      sizeof(T);
  // Header, then the x panel on a cache-line boundary, then the b panel.
  const std::size_t x_off = (sizeof(ShmHeader) + 63) & ~std::size_t(63);
  const std::size_t b_off = (x_off + panel + 63) & ~std::size_t(63);
  const std::size_t total = b_off + panel;

  std::string name = fresh_shm_name();
  int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) return shm_error("shm_open(" + name + ")", errno);

  if (::ftruncate(fd, static_cast<off_t>(total)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    return shm_error("ftruncate(" + name + ")", err);
  }
  void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                      0);
  const int map_err = errno;
  // The fd and the name are both dead weight once the mapping exists: the
  // mapping itself keeps the segment alive, workers inherit it via fork,
  // and unlinking here makes a leaked name impossible under any crash.
  ::close(fd);
  ::shm_unlink(name.c_str());
  if (base == MAP_FAILED)
    return shm_error("mmap(" + name + ")", map_err);

  SharedRegion region;
  region.base_ = base;
  region.bytes_ = total;
  region.name_ = std::move(name);
  region.header_ = new (base) ShmHeader();
  region.header_->n = n;
  region.header_->k_max = k_max;
  region.header_->nshards = nshards;
  region.x_ = reinterpret_cast<T*>(static_cast<char*>(base) + x_off);
  region.b_ = reinterpret_cast<T*>(static_cast<char*>(base) + b_off);
  *out = std::move(region);
  return Status::Ok();
}

template class SharedRegion<float>;
template class SharedRegion<double>;

}  // namespace blocktri::shard
