// Control-channel protocol between the shard coordinator and its workers.
//
// One socketpair(AF_UNIX, SOCK_STREAM) per worker carries small CRC-flagged
// frames (common/io.hpp framing, magic "BTSC"): a Hello when the worker is
// ready, a SolveCmd per epoch, a Report per epoch result, and a Shutdown for
// orderly exit (EOF works too — a worker whose peer closes simply _exits).
// The bulk data — the x/b panels — never touches this channel; it lives in
// the shared-memory region (shm.hpp). Every frame carries a CRC trailer:
// a torn or corrupted control message must surface as kChecksumMismatch,
// never as a command executed with a garbled width.
#pragma once

#include <cstdint>
#include <string>

#include "common/io.hpp"
#include "sparse/formats.hpp"

namespace blocktri::shard {

inline constexpr io::FrameSpec kControlSpec = {
    /*magic=*/0x43535442u,  // "BTSC"
    /*version=*/1,
    /*max_payload=*/std::uint64_t(1) << 20,  // control frames are tiny
};

enum class ControlFrame : std::uint8_t {
  kHello = 1,     // worker -> coordinator: ready (or failed to start)
  kSolveCmd = 2,  // coordinator -> worker: run epoch {seq} at width k
  kReport = 3,    // worker -> coordinator: epoch {seq} outcome + metrics
  kShutdown = 4,  // coordinator -> worker: exit cleanly
};

/// Worker startup outcome. A worker that fails to rehydrate its slice says
/// so explicitly (typed code + message) before exiting, so the coordinator
/// can distinguish "artifact rejected" from "process died".
struct HelloMsg {
  std::int32_t code = 0;  // StatusCode
  std::string message;
  std::int32_t shard_index = 0;
  /// level_analysis_count() delta across the worker's rehydration — the
  /// warm-start proof: a worker must perform zero level-set re-analysis.
  std::uint64_t level_analyses = 0;
};

struct SolveCmdMsg {
  std::uint64_t seq = 0;
  index_t k = 0;
};

/// Per-epoch, per-shard result. The overlap metrics expose how much
/// boundary communication the two-pass wave executor actually hid.
struct ReportMsg {
  std::uint64_t seq = 0;
  std::int32_t code = 0;  // StatusCode
  std::string message;
  std::uint64_t steps_run = 0;        // local steps executed
  std::uint64_t halo_deferred = 0;    // square steps deferred past pass 1
  std::uint64_t halo_ready = 0;       // boundary squares ready on first try
  double wait_ms = 0.0;               // time spent spinning on watermarks
  std::uint64_t level_analyses = 0;   // re-analyses this epoch (must be 0)
};

Status write_hello(int fd, const HelloMsg& msg);
Status write_solve_cmd(int fd, const SolveCmdMsg& msg);
Status write_report(int fd, const ReportMsg& msg);
Status write_shutdown(int fd);

/// Reads one frame and decodes it as `T`; kBadFormat when the frame type
/// differs. read_any_frame returns the raw type + payload for dispatch
/// loops. clean_eof (when non-null) reports an orderly peer close.
Status read_any_frame(int fd, std::uint8_t* type,
                      std::vector<std::uint8_t>* payload,
                      bool* clean_eof = nullptr);
Status decode_hello(const std::vector<std::uint8_t>& payload, HelloMsg* out);
Status decode_solve_cmd(const std::vector<std::uint8_t>& payload,
                        SolveCmdMsg* out);
Status decode_report(const std::vector<std::uint8_t>& payload, ReportMsg* out);

}  // namespace blocktri::shard
