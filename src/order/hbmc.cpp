#include "order/hbmc.hpp"

#include <algorithm>
#include <utility>

#include "analysis/levels.hpp"
#include "common/status.hpp"
#include "sparse/permute.hpp"

namespace blocktri::order {

namespace {

/// One greedy aggregation pass at width W, visiting rows in ascending
/// (topological) order. Each row joins the block of its deepest parent when
/// that parent's color is unique among its parents and the block has room;
/// otherwise it opens (or extends) the filling block of the next color.
///
/// Invariant maintained — and relied on by the plan layout: every parent of
/// a row outside the row's own block sits in a strictly smaller color, so
/// the blocks of one color are mutually independent and all cross-block
/// coupling of color c lands in columns of colors < c.
struct Aggregation {
  index_t nblocks = 0;
  index_t ncolors = 0;
  std::vector<index_t> block_of;        // size n
  std::vector<index_t> color_of_block;  // size nblocks
};

Aggregation aggregate(index_t n, const std::vector<offset_t>& row_ptr,
                      const std::vector<index_t>& col_idx, index_t W) {
  Aggregation agg;
  agg.block_of.assign(static_cast<std::size_t>(n), 0);
  std::vector<index_t>& colors = agg.color_of_block;
  std::vector<index_t> block_count;  // rows per block so far
  std::vector<index_t> open_block;   // per color: the block still filling

  for (index_t i = 0; i < n; ++i) {
    index_t cmax = -1;   // deepest parent color
    index_t top = -1;    // the block holding it
    bool multi = false;  // two distinct parent blocks at cmax
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_idx[static_cast<std::size_t>(k)];
      BLOCKTRI_CHECK_MSG(j <= i,
                         "hbmc_partition: matrix is not lower triangular");
      if (j == i) continue;  // diagonal is not a dependency
      const index_t b = agg.block_of[static_cast<std::size_t>(j)];
      const index_t c = colors[static_cast<std::size_t>(b)];
      if (c > cmax) {
        cmax = c;
        top = b;
        multi = false;
      } else if (c == cmax && b != top) {
        multi = true;
      }
    }
    if (cmax >= 0 && !multi &&
        block_count[static_cast<std::size_t>(top)] < W) {
      // Chain collapse: ride the deepest parent's block, keeping its color.
      agg.block_of[static_cast<std::size_t>(i)] = top;
      ++block_count[static_cast<std::size_t>(top)];
      continue;
    }
    const index_t c = cmax + 1;
    if (static_cast<std::size_t>(c) >= open_block.size())
      open_block.resize(static_cast<std::size_t>(c) + 1, -1);
    index_t b = open_block[static_cast<std::size_t>(c)];
    if (b < 0 || block_count[static_cast<std::size_t>(b)] >= W) {
      b = static_cast<index_t>(colors.size());
      colors.push_back(c);
      block_count.push_back(0);
      open_block[static_cast<std::size_t>(c)] = b;
    }
    agg.block_of[static_cast<std::size_t>(i)] = b;
    ++block_count[static_cast<std::size_t>(b)];
  }
  agg.nblocks = static_cast<index_t>(colors.size());
  agg.ncolors = static_cast<index_t>(open_block.size());
  return agg;
}

}  // namespace

HbmcPartition hbmc_partition(index_t n, const std::vector<offset_t>& row_ptr,
                             const std::vector<index_t>& col_idx,
                             index_t block_rows, index_t max_colors,
                             index_t merge_width) {
  BLOCKTRI_CHECK(row_ptr.size() == static_cast<std::size_t>(n) + 1);
  HbmcPartition part;
  part.n = n;
  if (n == 0) {
    // One empty block / color, matching the other planners' degenerate
    // single-segment shape.
    part.block_rows = std::max<index_t>(1, block_rows);
    part.ncolors = 1;
    part.color_bounds = {0, 0};
    part.block_bounds = {0, 0};
    part.passes = 0;
    return part;
  }

  index_t W = std::max<index_t>(1, block_rows);
  const index_t cap = std::max<index_t>(1, max_colors);
  Aggregation agg;
  for (;;) {
    agg = aggregate(n, row_ptr, col_idx, W);
    ++part.passes;
    // Doubling W folds deeper chains into bigger blocks; W == n cannot be
    // beaten, so irreducible patterns degrade to honest extra colors.
    if (agg.ncolors <= cap || W >= n) break;
    W *= 2;
  }
  part.block_rows = W;

  // Quotient node order: blocks by (color, creation id). Cross-block edges
  // always go from a strictly smaller color (the aggregation invariant), so
  // the quotient is strictly lower triangular in this order.
  const auto nb = static_cast<std::size_t>(agg.nblocks);
  std::vector<index_t> qb_of_block(nb);
  {
    std::vector<index_t> cursor(static_cast<std::size_t>(agg.ncolors) + 1, 0);
    for (std::size_t b = 0; b < nb; ++b)
      ++cursor[static_cast<std::size_t>(agg.color_of_block[b]) + 1];
    for (std::size_t c = 1; c < cursor.size(); ++c) cursor[c] += cursor[c - 1];
    for (std::size_t b = 0; b < nb; ++b)
      qb_of_block[b] =
          cursor[static_cast<std::size_t>(agg.color_of_block[b])]++;
  }
  std::vector<index_t> block_of_qb(nb);
  for (std::size_t b = 0; b < nb; ++b)
    block_of_qb[static_cast<std::size_t>(qb_of_block[b])] =
        static_cast<index_t>(b);

  // Deduplicated quotient edges (child qb, parent qb).
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t i = 0; i < n; ++i) {
    const index_t bi = agg.block_of[static_cast<std::size_t>(i)];
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_idx[static_cast<std::size_t>(k)];
      if (j == i) continue;
      const index_t bj = agg.block_of[static_cast<std::size_t>(j)];
      if (bj != bi)
        edges.emplace_back(qb_of_block[static_cast<std::size_t>(bi)],
                           qb_of_block[static_cast<std::size_t>(bj)]);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::vector<offset_t> q_ptr(nb + 1, 0);
  std::vector<index_t> q_col(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    ++q_ptr[static_cast<std::size_t>(edges[e].first) + 1];
    q_col[e] = edges[e].second;
  }
  for (std::size_t b = 0; b < nb; ++b) q_ptr[b + 1] += q_ptr[b];
  part.quotient_nodes = agg.nblocks;
  part.quotient_edges = static_cast<offset_t>(edges.size());

  // Quotient levels reproduce the aggregation colors exactly when
  // merge_width == 0; with merging on, adjacent straggly colors fuse.
  // merge_width is calibrated in ORIGINAL MATRIX ROWS (it is the solver's
  // level-merge width), but a quotient "row" is a whole block of up to W
  // rows — convert, so fusion only ever targets colors thinner than the
  // merge budget instead of serialising every W-row block it can reach.
  const index_t qmerge = merge_width / W;
  const LevelSets qls = compute_level_sets(agg.nblocks, q_ptr, q_col, nullptr,
                                           qmerge);
  part.ncolors = qls.nlevels;

  // Member rows per block, ascending original index (the scatter below
  // visits rows in ascending order, so each bucket stays sorted).
  std::vector<offset_t> bptr(nb + 1, 0);
  for (index_t i = 0; i < n; ++i)
    ++bptr[static_cast<std::size_t>(agg.block_of[static_cast<std::size_t>(i)]) +
           1];
  for (std::size_t b = 0; b < nb; ++b) bptr[b + 1] += bptr[b];
  std::vector<index_t> members(static_cast<std::size_t>(n));
  {
    std::vector<offset_t> cur(bptr.begin(), bptr.end() - 1);
    for (index_t i = 0; i < n; ++i) {
      const auto b = static_cast<std::size_t>(
          agg.block_of[static_cast<std::size_t>(i)]);
      members[static_cast<std::size_t>(cur[b]++)] = i;
    }
  }

  // Assemble: colors outer, blocks inner, rows ascending inside a block.
  // A fused color (blocks from more than one aggregation color, so it HAS
  // internal cross-block dependencies) collapses into one serial block;
  // ascending original index keeps it topological.
  std::vector<index_t> old_of_new;
  old_of_new.reserve(static_cast<std::size_t>(n));
  part.block_bounds.push_back(0);
  part.color_bounds.push_back(0);
  for (index_t l = 0; l < qls.nlevels; ++l) {
    const auto lo = static_cast<std::size_t>(qls.level_ptr[l]);
    const auto hi = static_cast<std::size_t>(qls.level_ptr[l + 1]);
    bool fused = false;
    for (std::size_t q = lo; !fused && q < hi; ++q)
      fused = agg.color_of_block[static_cast<std::size_t>(
                  block_of_qb[static_cast<std::size_t>(qls.level_item[q])])] !=
              agg.color_of_block[static_cast<std::size_t>(
                  block_of_qb[static_cast<std::size_t>(qls.level_item[lo])])];
    const std::size_t level_row0 = old_of_new.size();
    for (std::size_t q = lo; q < hi; ++q) {
      const auto b = static_cast<std::size_t>(
          block_of_qb[static_cast<std::size_t>(qls.level_item[q])]);
      old_of_new.insert(old_of_new.end(),
                        members.begin() + bptr[b], members.begin() + bptr[b + 1]);
      if (!fused)
        part.block_bounds.push_back(static_cast<index_t>(old_of_new.size()));
    }
    if (fused) {
      std::sort(old_of_new.begin() + static_cast<std::ptrdiff_t>(level_row0),
                old_of_new.end());
      part.block_bounds.push_back(static_cast<index_t>(old_of_new.size()));
    }
    part.color_bounds.push_back(static_cast<index_t>(old_of_new.size()));
  }

  part.new_of_old.resize(static_cast<std::size_t>(n));
  for (index_t p = 0; p < n; ++p)
    part.new_of_old[static_cast<std::size_t>(
        old_of_new[static_cast<std::size_t>(p)])] = p;
  return part;
}

template <class T>
BlockPlan plan_hbmc(const Csr<T>& lower, const PlannerOptions& opt,
                    index_t merge_width, Csr<T>* permuted, ThreadPool* pool) {
  BLOCKTRI_CHECK(lower.nrows == lower.ncols);
  HbmcPartition part = hbmc_partition(lower.nrows, lower.row_ptr,
                                      lower.col_idx, opt.hbmc_block_rows,
                                      opt.hbmc_max_colors, merge_width);
  BlockPlan p;
  p.scheme = BlockScheme::kHbmc;
  p.n = lower.nrows;
  if (part.new_of_old.empty()) {
    p.new_of_old.resize(static_cast<std::size_t>(p.n));
    for (index_t i = 0; i < p.n; ++i)
      p.new_of_old[static_cast<std::size_t>(i)] = i;
  } else {
    p.new_of_old = std::move(part.new_of_old);
  }
  p.tri_bounds = part.block_bounds;
  p.color_bounds = part.color_bounds;
  p.hbmc_block_rows = part.block_rows;

  // Color-stepped layout: per color one square over ALL previously solved
  // columns (the inter-color update), then the color's block-diagonal
  // triangles. compute_step_waves groups each color's triangles into a
  // single wave: exactly 2·ncolors − 1 barriers, executor unchanged.
  index_t t = 0;
  const auto nblocks = p.num_tri_blocks();
  for (index_t c = 0; c < part.ncolors; ++c) {
    const index_t c0 = p.color_bounds[static_cast<std::size_t>(c)];
    const index_t c1 = p.color_bounds[static_cast<std::size_t>(c) + 1];
    if (c > 0) {
      p.squares.push_back({c0, c1, 0, c0});
      p.steps.push_back({ExecStep::Kind::kSquare,
                         static_cast<index_t>(p.squares.size()) - 1});
    }
    while (t < nblocks && p.tri_bounds[static_cast<std::size_t>(t) + 1] <= c1) {
      p.steps.push_back({ExecStep::Kind::kTri, t});
      ++t;
    }
  }
  BLOCKTRI_CHECK(t == nblocks);

  // Host-model preprocessing: one pattern visit per aggregation pass, the
  // quotient level analysis, and the final whole-matrix permutation (same
  // accounting as the recursive planner's reorder passes).
  const std::int64_t nnz = lower.nnz();
  p.host_ops = part.passes * (nnz + p.n) +
               (part.quotient_edges + part.quotient_nodes) +
               (p.n > 0 ? 2 * nnz + p.n : 0);
  p.host_bytes = (part.passes * nnz + 2 * nnz) *
                 static_cast<std::int64_t>(sizeof(index_t) + sizeof(T));

  Csr<T> work = permute_symmetric(lower, p.new_of_old);

  // The layout drops nothing only because of the aggregation invariant:
  // every nonzero of a row must be in a prior color (covered by the square)
  // or at/after the row's own block start (covered by the triangle).
  {
    index_t blk = 0, col = 0;
    for (index_t r = 0; r < p.n; ++r) {
      while (p.tri_bounds[static_cast<std::size_t>(blk) + 1] <= r) ++blk;
      while (p.color_bounds[static_cast<std::size_t>(col) + 1] <= r) ++col;
      const index_t color_begin = p.color_bounds[static_cast<std::size_t>(col)];
      const index_t block_begin = p.tri_bounds[static_cast<std::size_t>(blk)];
      for (offset_t k = work.row_ptr[static_cast<std::size_t>(r)];
           k < work.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        const index_t q = work.col_idx[static_cast<std::size_t>(k)];
        BLOCKTRI_CHECK_MSG(q <= r && (q < color_begin || q >= block_begin),
                           "hbmc plan would drop a nonzero: aggregation "
                           "invariant violated");
      }
    }
  }
  if (permuted != nullptr) *permuted = std::move(work);
  (void)pool;  // ordering is a serial recurrence; kept for signature symmetry
  return p;
}

template BlockPlan plan_hbmc(const Csr<float>&, const PlannerOptions&,
                             index_t, Csr<float>*, ThreadPool*);
template BlockPlan plan_hbmc(const Csr<double>&, const PlannerOptions&,
                             index_t, Csr<double>*, ThreadPool*);

}  // namespace blocktri::order
