// Hierarchical block multi-color ordering (HBMC) — a parallelism-CREATING
// reordering in the spirit of Iwashita, Li & Fukaya (arXiv:1908.00741),
// adapted to exact triangular solves (DESIGN.md §16).
//
// The paper's three schemes only expose the parallelism the sparsity pattern
// already has: a dependency chain of depth d needs d synchronisation steps no
// matter how the rows are blocked. HBMC manufactures parallelism instead:
//
//   1. Rows are greedily aggregated into BLOCKS of at most W rows, each row
//      preferring the block of its deepest parent — dependency chains
//      collapse into single blocks that one task solves serially (no
//      cross-task spin for an in-cache substitution run).
//   2. Blocks are COLORED by their quotient-graph level. The aggregation
//      maintains the invariant that blocks sharing a color are mutually
//      independent, so all triangles of one color run embarrassingly
//      parallel, and all cross-color coupling is an ordinary SpMV square.
//   3. If the color count exceeds the bound, W doubles and the aggregation
//      reruns: deeper chains fold into bigger blocks until the solve fits a
//      FIXED number of sync steps (2·colors − 1 waves).
//
// Unlike classic point multi-coloring, the permutation is topological: the
// reordered system is the SAME system (summation order changes, values do
// not), so residual checks and iterative refinement hold unchanged.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "core/plan.hpp"
#include "sparse/formats.hpp"

namespace blocktri::order {

/// The two-level hierarchical partition: colors outer, blocks inner, rows
/// within a block in ascending original index (topological for triangular
/// input). All bounds are in permuted row space; every color boundary is
/// also a block boundary.
struct HbmcPartition {
  index_t n = 0;
  index_t block_rows = 0;  // effective W after the doubling loop
  index_t ncolors = 0;
  std::vector<index_t> new_of_old;    // symmetric permutation
  std::vector<index_t> color_bounds;  // ncolors + 1
  std::vector<index_t> block_bounds;  // nblocks + 1 (superset of colors)
  // Aggregation passes run (W doublings + 1); quotient nodes/edges of the
  // accepted pass — the bench reports these as preprocessing detail.
  int passes = 0;
  index_t quotient_nodes = 0;
  offset_t quotient_edges = 0;
};

/// Greedy block multi-coloring of a lower-triangular pattern. `block_rows`
/// is the initial aggregation width W (≥ 1); W doubles until the color count
/// is at most `max_colors` or W reaches n, so pathological patterns
/// degrade to honest extra colors rather than looping. `merge_width > 0`
/// additionally fuses adjacent tiny colors into single serial blocks via the
/// Böhnlein-style grouping fix in compute_level_sets — fewer, fatter sync
/// steps on straggly tails. The width is in ORIGINAL MATRIX ROWS (the
/// solver's calibrated level-merge width); internally it becomes a budget of
/// merge_width / W quotient blocks, so fusion never touches colors already
/// wider than the merge budget.
HbmcPartition hbmc_partition(index_t n, const std::vector<offset_t>& row_ptr,
                             const std::vector<index_t>& col_idx,
                             index_t block_rows, index_t max_colors,
                             index_t merge_width = 0);

template <class T>
HbmcPartition hbmc_partition(const Csr<T>& lower, index_t block_rows,
                             index_t max_colors, index_t merge_width = 0) {
  return hbmc_partition(lower.nrows, lower.row_ptr, lower.col_idx, block_rows,
                        max_colors, merge_width);
}

/// BlockScheme::kHbmc planner: partitions, permutes the matrix (returned
/// through `permuted`, like plan_recursive), and lays out the color-stepped
/// plan — per color one SpMV square over all previously solved columns, then
/// that color's block-diagonal triangles. tri_bounds are the block bounds
/// (so the shard planner cuts at them for free) and color_bounds annotate
/// the colors; compute_step_waves groups each color's triangles into one
/// wave, giving exactly 2·ncolors − 1 barriers with the executor unchanged.
/// `merge_width` is the solver's calibrated run-merge width, reused here as
/// the color-fusion bound.
template <class T>
BlockPlan plan_hbmc(const Csr<T>& lower, const PlannerOptions& opt,
                    index_t merge_width, Csr<T>* permuted,
                    ThreadPool* pool = nullptr);

}  // namespace blocktri::order
