// Umbrella header for the blocktri library — block algorithms for parallel
// sparse triangular solve (reproduction of Lu, Niu & Liu, ICPP 2020).
//
// Quick start:
//
//   #include "blocktri.hpp"
//   using namespace blocktri;
//
//   Csr<double> L = gen::grid2d(300, 300, /*seed=*/1);   // lower triangular
//   BlockSolver<double>::Options opt;
//   opt.planner.stop_rows = 4096;
//   BlockSolver<double> solver(L, opt);                  // preprocess once
//   std::vector<double> x = solver.solve(b);             // solve many rhs
//
// See README.md for the module map and examples/ for runnable programs.
#pragma once

#include "common/cli.hpp"            // IWYU pragma: export
#include "common/deadline.hpp"       // IWYU pragma: export
#include "common/status.hpp"         // IWYU pragma: export
#include "common/rng.hpp"            // IWYU pragma: export
#include "common/table.hpp"          // IWYU pragma: export
#include "common/timer.hpp"          // IWYU pragma: export
#include "common/workspace_pool.hpp" // IWYU pragma: export

#include "analysis/features.hpp"   // IWYU pragma: export
#include "analysis/levels.hpp"     // IWYU pragma: export
#include "core/adaptive.hpp"       // IWYU pragma: export
#include "core/plan.hpp"           // IWYU pragma: export
#include "core/solver.hpp"         // IWYU pragma: export
#include "gen/generators.hpp"      // IWYU pragma: export
#include "gen/suite.hpp"           // IWYU pragma: export
#include "persist/artifact.hpp"    // IWYU pragma: export
#include "persist/plan_cache.hpp"  // IWYU pragma: export
#include "service/client.hpp"        // IWYU pragma: export
#include "service/server.hpp"        // IWYU pragma: export
#include "service/solve_service.hpp" // IWYU pragma: export
#include "service/wire.hpp"          // IWYU pragma: export
#include "shard/coordinator.hpp"   // IWYU pragma: export
#include "shard/shard_plan.hpp"    // IWYU pragma: export
#include "sim/cache.hpp"           // IWYU pragma: export
#include "sim/host_sim.hpp"        // IWYU pragma: export
#include "sim/kernel_sim.hpp"      // IWYU pragma: export
#include "sim/machine.hpp"         // IWYU pragma: export
#include "sim/report.hpp"          // IWYU pragma: export
#include "sparse/convert.hpp"      // IWYU pragma: export
#include "sparse/dense.hpp"        // IWYU pragma: export
#include "sparse/formats.hpp"      // IWYU pragma: export
#include "sparse/mm_io.hpp"        // IWYU pragma: export
#include "sparse/permute.hpp"      // IWYU pragma: export
#include "sparse/sanitize.hpp"     // IWYU pragma: export
#include "sparse/triangular.hpp"   // IWYU pragma: export
#include "spmv/kernels.hpp"        // IWYU pragma: export
#include "sptrsv/cusparse_like.hpp" // IWYU pragma: export
#include "sptrsv/diagonal.hpp"     // IWYU pragma: export
#include "sptrsv/levelset.hpp"     // IWYU pragma: export
#include "sptrsv/serial.hpp"       // IWYU pragma: export
#include "sptrsv/syncfree.hpp"     // IWYU pragma: export
#include "sptrsv/upper.hpp"        // IWYU pragma: export
