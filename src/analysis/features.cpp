#include "analysis/features.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace blocktri {

template <class T>
MatrixFeatures compute_features(const Csr<T>& a) {
  MatrixFeatures f;
  f.nrows = a.nrows;
  f.ncols = a.ncols;
  f.nnz = a.nnz();
  if (a.nrows == 0) return f;

  f.nnz_per_row = static_cast<double>(f.nnz) / static_cast<double>(f.nrows);
  f.min_row_nnz = a.row_nnz(0);
  double sq_sum = 0.0;
  index_t empty = 0;
  bool diag_only = a.nrows == a.ncols;
  for (index_t i = 0; i < a.nrows; ++i) {
    const offset_t r = a.row_nnz(i);
    f.max_row_nnz = std::max(f.max_row_nnz, r);
    f.min_row_nnz = std::min(f.min_row_nnz, r);
    const double d = static_cast<double>(r) - f.nnz_per_row;
    sq_sum += d * d;
    if (r == 0) ++empty;
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = a.col_idx[static_cast<std::size_t>(k)];
      f.bandwidth = std::max(f.bandwidth, index_distance(i, j));
      if (j != i) diag_only = false;
    }
  }
  f.empty_ratio = static_cast<double>(empty) / static_cast<double>(f.nrows);
  f.row_nnz_stddev = std::sqrt(sq_sum / static_cast<double>(f.nrows));
  f.diagonal_only = diag_only && f.nnz == f.nrows;
  return f;
}

template <class T>
TriangularFeatures compute_triangular_features(const Csr<T>& lower) {
  TriangularFeatures tf;
  tf.base = compute_features(lower);
  const LevelSets ls = compute_level_sets(lower);
  tf.nlevels = ls.nlevels;
  tf.parallelism = parallelism_stats(ls);
  return tf;
}

namespace {
inline void fnv1a_u64(std::uint64_t* h, std::uint64_t v) {
  // One FNV-1a step per byte of v; fixed 8-byte width keeps the hash
  // independent of the platform's index_t/offset_t sizes.
  for (int b = 0; b < 8; ++b) {
    *h ^= (v >> (8 * b)) & 0xffu;
    *h *= 0x100000001b3ULL;
  }
}
}  // namespace

std::uint64_t structure_hash(index_t nrows, index_t ncols,
                             const std::vector<offset_t>& row_ptr,
                             const std::vector<index_t>& col_idx) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  fnv1a_u64(&h, static_cast<std::uint64_t>(nrows));
  fnv1a_u64(&h, static_cast<std::uint64_t>(ncols));
  for (const offset_t p : row_ptr)
    fnv1a_u64(&h, static_cast<std::uint64_t>(p));
  for (const index_t j : col_idx)
    fnv1a_u64(&h, static_cast<std::uint64_t>(j));
  return h;
}

std::string describe(const MatrixFeatures& f) {
  std::ostringstream os;
  os << f.nrows << "x" << f.ncols << ", nnz=" << f.nnz
     << ", nnz/row=" << f.nnz_per_row << ", emptyratio=" << f.empty_ratio
     << ", max_row=" << f.max_row_nnz << ", bandwidth=" << f.bandwidth;
  return os.str();
}

#define BLOCKTRI_INSTANTIATE(T)                          \
  template MatrixFeatures compute_features(const Csr<T>&); \
  template TriangularFeatures compute_triangular_features(const Csr<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
