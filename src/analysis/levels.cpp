#include "analysis/levels.hpp"

#include <algorithm>

#include "common/prefix.hpp"

namespace blocktri {

LevelSets compute_level_sets(index_t n, const std::vector<offset_t>& row_ptr,
                             const std::vector<index_t>& col_idx) {
  BLOCKTRI_CHECK(row_ptr.size() == static_cast<std::size_t>(n) + 1);
  LevelSets ls;
  ls.level_of.assign(static_cast<std::size_t>(n), 0);

  index_t max_level = -1;
  for (index_t i = 0; i < n; ++i) {
    index_t lvl = 0;
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_idx[static_cast<std::size_t>(k)];
      BLOCKTRI_CHECK_MSG(j <= i, "compute_level_sets: matrix is not lower "
                                 "triangular");
      if (j == i) continue;  // diagonal is not a dependency
      lvl = std::max(lvl,
                     ls.level_of[static_cast<std::size_t>(j)] + index_t{1});
    }
    ls.level_of[static_cast<std::size_t>(i)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  ls.nlevels = n == 0 ? 0 : max_level + 1;

  ls.level_ptr.assign(static_cast<std::size_t>(ls.nlevels) + 1, 0);
  for (const index_t l : ls.level_of)
    ++ls.level_ptr[static_cast<std::size_t>(l)];
  exclusive_scan_in_place(ls.level_ptr);
  ls.level_item.resize(static_cast<std::size_t>(n));
  {
    std::vector<offset_t> cursor(ls.level_ptr.begin(), ls.level_ptr.end() - 1);
    for (index_t i = 0; i < n; ++i) {
      const auto l = static_cast<std::size_t>(
          ls.level_of[static_cast<std::size_t>(i)]);
      ls.level_item[static_cast<std::size_t>(cursor[l]++)] = i;
    }
  }
  return ls;
}

ParallelismStats parallelism_stats(const LevelSets& ls) {
  ParallelismStats st;
  if (ls.nlevels == 0) return st;
  st.min_width = ls.level_width(0);
  double total = 0.0;
  for (index_t l = 0; l < ls.nlevels; ++l) {
    const index_t w = ls.level_width(l);
    st.min_width = std::min(st.min_width, w);
    st.max_width = std::max(st.max_width, w);
    total += static_cast<double>(w);
  }
  st.avg_width = total / static_cast<double>(ls.nlevels);
  return st;
}

std::vector<index_t> level_order_permutation(const LevelSets& ls) {
  // level_item already lists components by (level, original index); the
  // permutation sends old index level_item[p] to new position p.
  return invert_permutation(ls.level_item);
}

}  // namespace blocktri
