#include "analysis/levels.hpp"

#include <algorithm>
#include <atomic>

#include "common/prefix.hpp"

namespace blocktri {

namespace {

std::atomic<std::uint64_t> g_level_analysis_count{0};


/// Parallel grouping passes over contiguous row chunks, each with a private
/// per-level histogram; the combine step converts counts into per-chunk
/// starting cursors. Ascending chunks preserve the within-level ascending
/// original-index order the reordering relies on.
void group_levels_parallel(LevelSets& ls, index_t n, ThreadPool* pool) {
  const auto nlevels = static_cast<std::size_t>(ls.nlevels);
  const int nchunks = pool->size();
  std::vector<offset_t> cursor(static_cast<std::size_t>(nchunks) * nlevels, 0);

  pool->parallel_for(0, n, [&](index_t r0, index_t r1, int chunk) {
    offset_t* counts =
        cursor.data() + static_cast<std::size_t>(chunk) * nlevels;
    for (index_t i = r0; i < r1; ++i)
      ++counts[static_cast<std::size_t>(
          ls.level_of[static_cast<std::size_t>(i)])];
  });

  ls.level_ptr.assign(nlevels + 1, 0);
  offset_t running = 0;
  for (std::size_t l = 0; l < nlevels; ++l) {
    ls.level_ptr[l] = running;
    for (int ch = 0; ch < nchunks; ++ch) {
      offset_t& slot = cursor[static_cast<std::size_t>(ch) * nlevels + l];
      const offset_t count = slot;
      slot = running;
      running += count;
    }
  }
  ls.level_ptr[nlevels] = running;

  ls.level_item.resize(static_cast<std::size_t>(n));
  pool->parallel_for(0, n, [&](index_t r0, index_t r1, int chunk) {
    offset_t* cur = cursor.data() + static_cast<std::size_t>(chunk) * nlevels;
    for (index_t i = r0; i < r1; ++i) {
      const auto l = static_cast<std::size_t>(
          ls.level_of[static_cast<std::size_t>(i)]);
      ls.level_item[static_cast<std::size_t>(cur[l]++)] = i;
    }
  });
}

}  // namespace

namespace {

/// Böhnlein-style partition fix: fuse adjacent raw levels while the combined
/// component count stays at or under merge_width, relabelling level_of in
/// place so the grouping passes below build the fused partition directly.
/// The raw counts pass is O(n); the relabel map is O(nlevels).
void merge_adjacent_levels(LevelSets& ls, index_t n, index_t merge_width) {
  if (merge_width <= 0 || ls.nlevels <= 1) return;
  const auto nraw = static_cast<std::size_t>(ls.nlevels);
  std::vector<offset_t> raw_count(nraw, 0);
  for (index_t i = 0; i < n; ++i)
    ++raw_count[static_cast<std::size_t>(ls.level_of[static_cast<std::size_t>(i)])];

  std::vector<index_t> fused_of_raw(nraw, 0);
  index_t fused = 0;
  offset_t run = raw_count[0];
  for (std::size_t l = 1; l < nraw; ++l) {
    if (run + raw_count[l] <= static_cast<offset_t>(merge_width)) {
      run += raw_count[l];  // fuse into the current run
    } else {
      ++fused;
      run = raw_count[l];
    }
    fused_of_raw[l] = fused;
  }
  if (fused + 1 == ls.nlevels) return;  // nothing fused: keep raw labels
  for (index_t i = 0; i < n; ++i) {
    auto& l = ls.level_of[static_cast<std::size_t>(i)];
    l = fused_of_raw[static_cast<std::size_t>(l)];
  }
  ls.nlevels = fused + 1;
}

}  // namespace

LevelSets compute_level_sets(index_t n, const std::vector<offset_t>& row_ptr,
                             const std::vector<index_t>& col_idx,
                             ThreadPool* pool, index_t merge_width) {
  BLOCKTRI_CHECK(row_ptr.size() == static_cast<std::size_t>(n) + 1);
  g_level_analysis_count.fetch_add(1, std::memory_order_relaxed);
  LevelSets ls;
  ls.level_of.assign(static_cast<std::size_t>(n), 0);

  // Loop-carried dependence (level[i] needs level[j] for all j < i with a
  // nonzero): inherently serial.
  index_t max_level = -1;
  for (index_t i = 0; i < n; ++i) {
    index_t lvl = 0;
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_idx[static_cast<std::size_t>(k)];
      BLOCKTRI_CHECK_MSG(j <= i, "compute_level_sets: matrix is not lower "
                                 "triangular");
      if (j == i) continue;  // diagonal is not a dependency
      lvl = std::max(lvl,
                     ls.level_of[static_cast<std::size_t>(j)] + index_t{1});
    }
    ls.level_of[static_cast<std::size_t>(i)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  ls.nlevels = n == 0 ? 0 : max_level + 1;

  merge_adjacent_levels(ls, n, merge_width);

  // Parallel grouping pays off only when levels are much shorter than rows
  // (the histogram is nchunks × nlevels); chains fall back to serial.
  if (parallel_enabled(pool) && n >= 2 * kHostParallelMinNnz &&
      ls.nlevels <= n / 4) {
    group_levels_parallel(ls, n, pool);
    return ls;
  }

  ls.level_ptr.assign(static_cast<std::size_t>(ls.nlevels) + 1, 0);
  for (const index_t l : ls.level_of)
    ++ls.level_ptr[static_cast<std::size_t>(l)];
  exclusive_scan_in_place(ls.level_ptr);
  ls.level_item.resize(static_cast<std::size_t>(n));
  {
    std::vector<offset_t> cursor(ls.level_ptr.begin(), ls.level_ptr.end() - 1);
    for (index_t i = 0; i < n; ++i) {
      const auto l = static_cast<std::size_t>(
          ls.level_of[static_cast<std::size_t>(i)]);
      ls.level_item[static_cast<std::size_t>(cursor[l]++)] = i;
    }
  }
  return ls;
}

std::uint64_t level_analysis_count() {
  return g_level_analysis_count.load(std::memory_order_relaxed);
}

ParallelismStats parallelism_stats(const LevelSets& ls) {
  ParallelismStats st;
  if (ls.nlevels == 0) return st;
  st.min_width = ls.level_width(0);
  double total = 0.0;
  for (index_t l = 0; l < ls.nlevels; ++l) {
    const index_t w = ls.level_width(l);
    st.min_width = std::min(st.min_width, w);
    st.max_width = std::max(st.max_width, w);
    total += static_cast<double>(w);
  }
  st.avg_width = total / static_cast<double>(ls.nlevels);
  return st;
}

std::vector<index_t> level_order_permutation(const LevelSets& ls) {
  // level_item already lists components by (level, original index); the
  // permutation sends old index level_item[p] to new position p.
  return invert_permutation(ls.level_item);
}

}  // namespace blocktri
