// Level-set analysis (Anderson & Saad / Saltz): partition the components of
// a lower-triangular system into levels such that components within a level
// have no mutual dependencies and can be solved in parallel (§2.1.2).
//
// Used three ways in this repo, mirroring the paper:
//   1. the level-set and cuSPARSE-like baseline solvers schedule by level,
//   2. the improved recursive layout reorders every triangular part by its
//      level-set order (§3.3, Fig. 3),
//   3. `nlevels` is one of the two features the adaptive SpTRSV selector
//      keys on (§3.4, Fig. 5a), and Table 4 reports per-matrix level counts
//      and level-width (parallelism) statistics.
#pragma once

#include <vector>

#include "common/thread_pool.hpp"
#include "sparse/formats.hpp"

namespace blocktri {

struct LevelSets {
  index_t nlevels = 0;
  std::vector<index_t> level_of;    // level of each component, size n
  std::vector<offset_t> level_ptr;  // size nlevels + 1
  std::vector<index_t> level_item;  // components grouped by level; within a
                                    // level, ascending original index (the
                                    // stable order §3.3's reordering relies on)

  index_t level_width(index_t l) const {
    return static_cast<index_t>(level_ptr[static_cast<std::size_t>(l) + 1] -
                                level_ptr[static_cast<std::size_t>(l)]);
  }
};

/// Level analysis of a lower-triangular CSR matrix (diagonal entries may be
/// present or absent; self-edges are ignored). level[i] = 1 + max over
/// strictly-lower neighbours, so a diagonal-only matrix has one level.
/// O(n + nnz), single pass thanks to the triangular ordering.
///
/// The level_of recurrence is loop-carried and stays serial; with a pool the
/// grouping passes (per-level counting and the level_item scatter) run over
/// contiguous row chunks with per-chunk level histograms, producing the
/// identical LevelSets. Matrices whose level count is a large fraction of n
/// (near-serial chains) fall back to the serial path — the histograms would
/// cost more than they save.
///
/// `merge_width > 0` applies the Böhnlein-style partition fix during the
/// grouping itself (not just in the executor): adjacent raw levels are fused
/// while their combined component count stays at or under `merge_width`, and
/// `level_of`/`level_ptr`/`level_item` all describe the fused partition.
/// A fused level may contain internal dependencies (component order within a
/// level is ascending index, which stays topological for triangular input),
/// so merged LevelSets are for ORDERING AND PARTITIONING consumers only —
/// the level-scheduled kernels, which assume levels are dependency-free,
/// must keep merge_width == 0 and rely on the executor's run merging.
/// merge_width == 0 (the default) is bit-identical to the historical output.
LevelSets compute_level_sets(index_t n, const std::vector<offset_t>& row_ptr,
                             const std::vector<index_t>& col_idx,
                             ThreadPool* pool = nullptr,
                             index_t merge_width = 0);

/// Process-wide count of compute_level_sets invocations (atomic). Level
/// analysis is the dominant preprocessing cost (Table 5), so the plan
/// persistence contract — a warm PlanCache hit or a loaded artifact performs
/// *zero* level-set analysis — is asserted by diffing this counter around the
/// warm path (tests/test_persist.cpp).
std::uint64_t level_analysis_count();

template <class T>
LevelSets compute_level_sets(const Csr<T>& lower, ThreadPool* pool = nullptr,
                             index_t merge_width = 0) {
  return compute_level_sets(lower.nrows, lower.row_ptr, lower.col_idx, pool,
                            merge_width);
}

/// Level-width statistics: the "Parallelism min/ave./max" columns of Table 4.
struct ParallelismStats {
  index_t min_width = 0;
  double avg_width = 0.0;
  index_t max_width = 0;
};

ParallelismStats parallelism_stats(const LevelSets& ls);

/// The level-set permutation of §3.3: new_of_old ordering components by
/// (level, original index). Applying it with permute_symmetric keeps the
/// matrix lower triangular and makes each level a contiguous row range whose
/// diagonal block is diagonal-only.
std::vector<index_t> level_order_permutation(const LevelSets& ls);

}  // namespace blocktri
