// Sparsity-structure feature extraction. These are exactly the quantities the
// paper's adaptive selector and evaluation tables consume: nnz/row and
// nlevels for triangular blocks (Fig. 5a), nnz/row and emptyratio for square
// blocks (Fig. 5b), and the row-length distribution that explains the
// power-law load-imbalance pathology (§2.2).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/levels.hpp"
#include "sparse/formats.hpp"

namespace blocktri {

struct MatrixFeatures {
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
  double nnz_per_row = 0.0;    // nnz / nrows (the paper's "nnz/row")
  double empty_ratio = 0.0;    // empty rows / nrows (the paper's emptyratio)
  offset_t max_row_nnz = 0;
  offset_t min_row_nnz = 0;
  double row_nnz_stddev = 0.0;
  index_t bandwidth = 0;       // max |i - j| over nonzeros
  bool diagonal_only = false;  // triangular block with perfect parallelism
};

/// |i - j| computed in 64-bit. `long` is 32-bit on LLP64 platforms, where
/// `std::abs(long(i) - j)` overflows for index pairs spanning more than
/// INT32_MAX rows/columns; widening each operand first keeps the difference
/// exact for every representable index pair.
inline index_t index_distance(index_t i, index_t j) {
  const std::int64_t d =
      static_cast<std::int64_t>(i) - static_cast<std::int64_t>(j);
  return static_cast<index_t>(d < 0 ? -d : d);
}

template <class T>
MatrixFeatures compute_features(const Csr<T>& a);

/// Features of a triangular block including its level count — the SpTRSV
/// selector's inputs.
struct TriangularFeatures {
  MatrixFeatures base;
  index_t nlevels = 0;
  ParallelismStats parallelism;
};

template <class T>
TriangularFeatures compute_triangular_features(const Csr<T>& lower);

std::string describe(const MatrixFeatures& f);

}  // namespace blocktri
