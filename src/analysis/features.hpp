// Sparsity-structure feature extraction. These are exactly the quantities the
// paper's adaptive selector and evaluation tables consume: nnz/row and
// nlevels for triangular blocks (Fig. 5a), nnz/row and emptyratio for square
// blocks (Fig. 5b), and the row-length distribution that explains the
// power-law load-imbalance pathology (§2.2).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/levels.hpp"
#include "sparse/formats.hpp"

namespace blocktri {

struct MatrixFeatures {
  index_t nrows = 0;
  index_t ncols = 0;
  offset_t nnz = 0;
  double nnz_per_row = 0.0;    // nnz / nrows (the paper's "nnz/row")
  double empty_ratio = 0.0;    // empty rows / nrows (the paper's emptyratio)
  offset_t max_row_nnz = 0;
  offset_t min_row_nnz = 0;
  double row_nnz_stddev = 0.0;
  index_t bandwidth = 0;       // max |i - j| over nonzeros
  bool diagonal_only = false;  // triangular block with perfect parallelism
};

/// |i - j| computed in 64-bit. `long` is 32-bit on LLP64 platforms, where
/// `std::abs(long(i) - j)` overflows for index pairs spanning more than
/// INT32_MAX rows/columns; widening each operand first keeps the difference
/// exact for every representable index pair.
inline index_t index_distance(index_t i, index_t j) {
  const std::int64_t d =
      static_cast<std::int64_t>(i) - static_cast<std::int64_t>(j);
  return static_cast<index_t>(d < 0 ? -d : d);
}

template <class T>
MatrixFeatures compute_features(const Csr<T>& a);

/// Canonical 64-bit hash of a sparsity pattern: (nrows, ncols, row_ptr,
/// col_idx) folded through FNV-1a, values excluded. Two matrices share a
/// hash iff (modulo the usual 2^-64 collision odds) they have identical
/// structure — the key under which analyzed BlockPlans are persisted and
/// cached, and the gate BlockSolver::refresh_values checks before writing
/// new values into existing block structures.
std::uint64_t structure_hash(index_t nrows, index_t ncols,
                             const std::vector<offset_t>& row_ptr,
                             const std::vector<index_t>& col_idx);

template <class T>
std::uint64_t structure_hash(const Csr<T>& a) {
  return structure_hash(a.nrows, a.ncols, a.row_ptr, a.col_idx);
}

/// Order-dependent 64-bit combine for building composite keys (e.g. the
/// structure hash + planner-option fingerprint of a cached plan).
inline std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  // splitmix64 finalizer over seed ^ v, so combine(a, b) != combine(b, a).
  std::uint64_t z = seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Features of a triangular block including its level count — the SpTRSV
/// selector's inputs.
struct TriangularFeatures {
  MatrixFeatures base;
  index_t nlevels = 0;
  ParallelismStats parallelism;
};

template <class T>
TriangularFeatures compute_triangular_features(const Csr<T>& lower);

std::string describe(const MatrixFeatures& f);

}  // namespace blocktri
