#include "spmv/kernels.hpp"

#include <algorithm>

#include "common/simd.hpp"
#include "sparse/convert.hpp"

namespace blocktri {

namespace {

// One-thread-per-row kernels walk val/col_idx at per-row strides, so
// consecutive lanes read non-adjacent addresses: each 8B access occupies a
// 32B memory sector, ~4x traffic amplification vs the coalesced streams of
// the warp-per-row kernels.
constexpr double kUncoalescedFactor = 4.0;

inline std::uint64_t elem_addr(std::uint64_t base, index_t i, int elem) {
  return base + static_cast<std::uint64_t>(i) * static_cast<std::uint64_t>(elem);
}

/// Cost model shared by the scalar kernels: one thread per (listed) row, a
/// warp handles 32 consecutive rows and runs for the longest row in the
/// group (branch divergence). Iteration k gathers the k-th nonzero's x entry
/// for every lane that still has work.
template <class T>
void account_scalar(sim::KernelSim& ks, const std::vector<offset_t>& row_ptr,
                    const std::vector<index_t>& col_idx, std::size_t nrows_listed,
                    std::uint64_t x_base, std::uint64_t y_base,
                    const index_t* row_ids, std::int64_t ptr_entry_bytes) {
  const int elem = static_cast<int>(sizeof(T));
  std::uint64_t addrs[kWarp];
  for (std::size_t g = 0; g < nrows_listed; g += kWarp) {
    const std::size_t lanes = std::min<std::size_t>(kWarp, nrows_listed - g);
    ks.begin_task();
    offset_t max_len = 0;
    std::int64_t group_nnz = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      const offset_t len = row_ptr[g + l + 1] - row_ptr[g + l];
      max_len = std::max(max_len, len);
      group_nnz += len;
    }
    // Streamed structure traffic: pointers (+ row ids for DCSR), indices and
    // values of the group's nonzeros — uncoalesced in a scalar kernel.
    ks.stream_bytes(static_cast<std::int64_t>(lanes) * ptr_entry_bytes +
                    static_cast<std::int64_t>(
                        kUncoalescedFactor *
                        static_cast<double>(group_nnz) *
                        (sizeof(index_t) + elem)));
    for (offset_t it = 0; it < max_len; ++it) {
      int n = 0;
      for (std::size_t l = 0; l < lanes; ++l) {
        const offset_t k = row_ptr[g + l] + it;
        if (k < row_ptr[g + l + 1]) {
          addrs[n++] = elem_addr(x_base, col_idx[static_cast<std::size_t>(k)],
                                 elem);
        }
      }
      ks.gather(addrs, n, elem);
    }
    ks.flops(2 * group_nnz);
    // Read-modify-write of the y entries (contiguous rows for CSR, scattered
    // for DCSR — the row_ids indirection makes them potentially sparse).
    int n = 0;
    for (std::size_t l = 0; l < lanes; ++l) {
      const index_t row = row_ids == nullptr
                              ? static_cast<index_t>(g + l)
                              : row_ids[g + l];
      addrs[n++] = elem_addr(y_base, row, elem);
    }
    ks.gather(addrs, n, elem);
    ks.end_task();
  }
}

/// Host execution shared by all four kernels: y[row] -= Σ val·x[col] over
/// the listed rows. With a pool, the rows are split into contiguous chunks
/// balanced by nonzero count; each row writes only its own y entry, so the
/// result is bitwise identical at any thread count.
template <class T>
void host_update(const std::vector<offset_t>& row_ptr,
                 const std::vector<index_t>& col_idx, const std::vector<T>& val,
                 const index_t* row_ids, index_t nrows_listed, const T* x,
                 T* y, ThreadPool* pool) {
  auto run_range = [&](index_t r0, index_t r1) {
    simd::spmv_update_rows(row_ptr.data(), col_idx.data(), val.data(), row_ids,
                           r0, r1, x, y);
  };
  const offset_t nnz = row_ptr[static_cast<std::size_t>(nrows_listed)];
  if (parallel_enabled(pool) && nnz >= kHostParallelMinNnz &&
      nrows_listed >= 2) {
    const std::vector<index_t> bounds =
        balanced_row_partition(row_ptr, nrows_listed, pool->size());
    pool->run_partition(bounds,
                        [&](index_t r0, index_t r1, int) { run_range(r0, r1); });
  } else {
    run_range(0, nrows_listed);
  }
}

/// Batched host execution shared by all four *_many kernels:
/// y[row + c·ldy] -= Σ val·x[col + c·ldx] for every panel column c. Rows are
/// partitioned exactly like host_update (nnz-balanced contiguous chunks) and
/// each row owns its y entries in every column, so the result is bitwise
/// identical at any thread count; per column the accumulation order equals
/// the single-RHS kernel's.
template <class T>
void host_update_many(const std::vector<offset_t>& row_ptr,
                      const std::vector<index_t>& col_idx,
                      const std::vector<T>& val, const index_t* row_ids,
                      index_t nrows_listed, const T* x, T* y, index_t k,
                      index_t ldx, index_t ldy, ThreadPool* pool,
                      PanelLayout layout) {
  if (k <= 0 || nrows_listed <= 0) return;
  auto run_range = [&](index_t r0, index_t r1) {
    if (layout == PanelLayout::kInterleaved)
      simd::spmv_update_rows_many_ilv(row_ptr.data(), col_idx.data(),
                                      val.data(), row_ids, r0, r1, x, y, 0, k,
                                      ldx, ldy);
    else
      simd::spmv_update_rows_many(row_ptr.data(), col_idx.data(), val.data(),
                                  row_ids, r0, r1, x, y, 0, k, ldx, ldy);
  };
  const offset_t nnz = row_ptr[static_cast<std::size_t>(nrows_listed)];
  if (parallel_enabled(pool) && nnz * k >= kHostParallelMinNnz &&
      nrows_listed >= 2) {
    const std::vector<index_t> bounds =
        balanced_row_partition(row_ptr, nrows_listed, pool->size());
    pool->run_partition(bounds,
                        [&](index_t r0, index_t r1, int) { run_range(r0, r1); });
  } else {
    run_range(0, nrows_listed);
  }
}

/// Cost model shared by the vector kernels: one warp per (listed) row,
/// gathering x in 32-lane groups and reducing with warp shuffles.
template <class T>
void account_vector(sim::KernelSim& ks, const std::vector<offset_t>& row_ptr,
                    const std::vector<index_t>& col_idx,
                    std::size_t nrows_listed, std::uint64_t x_base,
                    std::uint64_t y_base, const index_t* row_ids,
                    std::int64_t ptr_entry_bytes) {
  const double shuffle_reduce_ns = ks.gpu().shuffle_reduce_ns;
  const int elem = static_cast<int>(sizeof(T));
  std::uint64_t addrs[kWarp];
  for (std::size_t r = 0; r < nrows_listed; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t hi = row_ptr[r + 1];
    ks.begin_task();
    ks.stream_bytes(ptr_entry_bytes +
                    (hi - lo) * (static_cast<std::int64_t>(sizeof(index_t)) +
                                 elem));
    for (offset_t k = lo; k < hi; k += kWarp) {
      const int n = static_cast<int>(std::min<offset_t>(kWarp, hi - k));
      for (int l = 0; l < n; ++l)
        addrs[l] = elem_addr(x_base,
                             col_idx[static_cast<std::size_t>(k + l)], elem);
      ks.gather(addrs, n, elem);
    }
    ks.flops(2 * (hi - lo));
    ks.serial_ns(shuffle_reduce_ns);  // 5-step warp shuffle reduction
    const index_t row =
        row_ids == nullptr ? static_cast<index_t>(r) : row_ids[r];
    ks.touch(elem_addr(y_base, row, elem), elem);
    ks.end_task();
  }
}

}  // namespace

std::string to_string(SpmvKernelKind k) {
  switch (k) {
    case SpmvKernelKind::kScalarCsr: return "scalar-CSR";
    case SpmvKernelKind::kVectorCsr: return "vector-CSR";
    case SpmvKernelKind::kScalarDcsr: return "scalar-DCSR";
    case SpmvKernelKind::kVectorDcsr: return "vector-DCSR";
  }
  return "?";
}

template <class T>
void spmv_scalar_csr(const Csr<T>& a, const T* x, T* y, const SpmvSim* s,
                     ThreadPool* pool) {
  host_update(a.row_ptr, a.col_idx, a.val, nullptr, a.nrows, x, y, pool);
  if (s != nullptr && s->ks != nullptr) {
    account_scalar<T>(*s->ks, a.row_ptr, a.col_idx,
                      static_cast<std::size_t>(a.nrows), s->x_base, s->y_base,
                      nullptr, sizeof(offset_t));
  }
}

template <class T>
void spmv_vector_csr(const Csr<T>& a, const T* x, T* y, const SpmvSim* s,
                     ThreadPool* pool) {
  host_update(a.row_ptr, a.col_idx, a.val, nullptr, a.nrows, x, y, pool);
  if (s != nullptr && s->ks != nullptr) {
    account_vector<T>(*s->ks, a.row_ptr, a.col_idx,
                      static_cast<std::size_t>(a.nrows), s->x_base, s->y_base,
                      nullptr, sizeof(offset_t));
  }
}

template <class T>
void spmv_scalar_dcsr(const Dcsr<T>& a, const T* x, T* y, const SpmvSim* s,
                      ThreadPool* pool) {
  host_update(a.row_ptr, a.col_idx, a.val, a.row_ids.data(), a.nnz_rows(), x,
              y, pool);
  if (s != nullptr && s->ks != nullptr) {
    account_scalar<T>(*s->ks, a.row_ptr, a.col_idx, a.row_ids.size(),
                      s->x_base, s->y_base, a.row_ids.data(),
                      sizeof(offset_t) + sizeof(index_t));
  }
}

template <class T>
void spmv_vector_dcsr(const Dcsr<T>& a, const T* x, T* y, const SpmvSim* s,
                      ThreadPool* pool) {
  host_update(a.row_ptr, a.col_idx, a.val, a.row_ids.data(), a.nnz_rows(), x,
              y, pool);
  if (s != nullptr && s->ks != nullptr) {
    account_vector<T>(*s->ks, a.row_ptr, a.col_idx, a.row_ids.size(),
                      s->x_base, s->y_base, a.row_ids.data(),
                      sizeof(offset_t) + sizeof(index_t));
  }
}

template <class T>
void spmv_update(SpmvKernelKind kind, const Csr<T>& a, const T* x, T* y,
                 const SpmvSim* s, ThreadPool* pool) {
  switch (kind) {
    case SpmvKernelKind::kScalarCsr:
      spmv_scalar_csr(a, x, y, s, pool);
      return;
    case SpmvKernelKind::kVectorCsr:
      spmv_vector_csr(a, x, y, s, pool);
      return;
    case SpmvKernelKind::kScalarDcsr: {
      const Dcsr<T> d = csr_to_dcsr(a);
      spmv_scalar_dcsr(d, x, y, s, pool);
      return;
    }
    case SpmvKernelKind::kVectorDcsr: {
      const Dcsr<T> d = csr_to_dcsr(a);
      spmv_vector_dcsr(d, x, y, s, pool);
      return;
    }
  }
  BLOCKTRI_CHECK_MSG(false, "unknown SpMV kernel kind");
}

template <class T>
void spmv_scalar_csr_many(const Csr<T>& a, const T* x, T* y, index_t k,
                          index_t ldx, index_t ldy, ThreadPool* pool,
                          PanelLayout layout) {
  host_update_many(a.row_ptr, a.col_idx, a.val, nullptr, a.nrows, x, y, k,
                   ldx, ldy, pool, layout);
}

template <class T>
void spmv_vector_csr_many(const Csr<T>& a, const T* x, T* y, index_t k,
                          index_t ldx, index_t ldy, ThreadPool* pool,
                          PanelLayout layout) {
  host_update_many(a.row_ptr, a.col_idx, a.val, nullptr, a.nrows, x, y, k,
                   ldx, ldy, pool, layout);
}

template <class T>
void spmv_scalar_dcsr_many(const Dcsr<T>& a, const T* x, T* y, index_t k,
                           index_t ldx, index_t ldy, ThreadPool* pool,
                           PanelLayout layout) {
  host_update_many(a.row_ptr, a.col_idx, a.val, a.row_ids.data(),
                   a.nnz_rows(), x, y, k, ldx, ldy, pool, layout);
}

template <class T>
void spmv_vector_dcsr_many(const Dcsr<T>& a, const T* x, T* y, index_t k,
                           index_t ldx, index_t ldy, ThreadPool* pool,
                           PanelLayout layout) {
  host_update_many(a.row_ptr, a.col_idx, a.val, a.row_ids.data(),
                   a.nnz_rows(), x, y, k, ldx, ldy, pool, layout);
}

template <class T>
void spmv_update_many(SpmvKernelKind kind, const Csr<T>& a, const T* x, T* y,
                      index_t k, index_t ldx, index_t ldy, ThreadPool* pool) {
  switch (kind) {
    case SpmvKernelKind::kScalarCsr:
      spmv_scalar_csr_many(a, x, y, k, ldx, ldy, pool);
      return;
    case SpmvKernelKind::kVectorCsr:
      spmv_vector_csr_many(a, x, y, k, ldx, ldy, pool);
      return;
    case SpmvKernelKind::kScalarDcsr: {
      const Dcsr<T> d = csr_to_dcsr(a);
      spmv_scalar_dcsr_many(d, x, y, k, ldx, ldy, pool);
      return;
    }
    case SpmvKernelKind::kVectorDcsr: {
      const Dcsr<T> d = csr_to_dcsr(a);
      spmv_vector_dcsr_many(d, x, y, k, ldx, ldy, pool);
      return;
    }
  }
  BLOCKTRI_CHECK_MSG(false, "unknown SpMV kernel kind");
}

template <class T>
std::vector<T> spmv_apply(const Csr<T>& a, const std::vector<T>& x) {
  BLOCKTRI_CHECK(x.size() == static_cast<std::size_t>(a.ncols));
  std::vector<T> y(static_cast<std::size_t>(a.nrows), T(0));
  // spmv kernels compute y -= A x; negate to get y = A x.
  spmv_scalar_csr(a, x.data(), y.data(), nullptr);
  for (auto& v : y) v = -v;
  return y;
}

#define BLOCKTRI_INSTANTIATE(T)                                               \
  template void spmv_scalar_csr(const Csr<T>&, const T*, T*, const SpmvSim*,  \
                                ThreadPool*);                                 \
  template void spmv_vector_csr(const Csr<T>&, const T*, T*, const SpmvSim*,  \
                                ThreadPool*);                                 \
  template void spmv_scalar_dcsr(const Dcsr<T>&, const T*, T*,                \
                                 const SpmvSim*, ThreadPool*);                \
  template void spmv_vector_dcsr(const Dcsr<T>&, const T*, T*,                \
                                 const SpmvSim*, ThreadPool*);                \
  template void spmv_update(SpmvKernelKind, const Csr<T>&, const T*, T*,      \
                            const SpmvSim*, ThreadPool*);                     \
  template void spmv_scalar_csr_many(const Csr<T>&, const T*, T*, index_t,    \
                                     index_t, index_t, ThreadPool*,           \
                                     PanelLayout);                            \
  template void spmv_vector_csr_many(const Csr<T>&, const T*, T*, index_t,    \
                                     index_t, index_t, ThreadPool*,           \
                                     PanelLayout);                            \
  template void spmv_scalar_dcsr_many(const Dcsr<T>&, const T*, T*, index_t,  \
                                      index_t, index_t, ThreadPool*,          \
                                      PanelLayout);                           \
  template void spmv_vector_dcsr_many(const Dcsr<T>&, const T*, T*, index_t,  \
                                      index_t, index_t, ThreadPool*,          \
                                      PanelLayout);                           \
  template void spmv_update_many(SpmvKernelKind, const Csr<T>&, const T*,     \
                                 T*, index_t, index_t, index_t, ThreadPool*); \
  template std::vector<T> spmv_apply(const Csr<T>&, const std::vector<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
