// The four SpMV kernels of §3.4, used for the square/rectangular blocks of
// the block algorithms:
//
//   * scalar-CSR  — one thread per row. Best for short rows; a warp covers 32
//                   consecutive rows and diverges to the longest row in the
//                   group (modelled).
//   * vector-CSR  — one 32-lane warp per row. Best for long rows.
//   * scalar-DCSR / vector-DCSR — same, but iterating only the non-empty
//                   rows of a doubly-compressed block (§3.3); wins when
//                   emptyratio is high because no threads are wasted on
//                   empty rows.
//
// All kernels compute the *update* form the block algorithms need
// (Algorithms 4–6):   y ← y − A·x
// over the block's local index space. Each function optionally accounts its
// cost into a sim::KernelSim; the caller composes kernels into launches.
#pragma once

#include <cstdint>
#include <string>

#include "common/thread_pool.hpp"
#include "sim/kernel_sim.hpp"
#include "sparse/formats.hpp"

namespace blocktri {

enum class SpmvKernelKind {
  kScalarCsr,
  kVectorCsr,
  kScalarDcsr,
  kVectorDcsr,
};

std::string to_string(SpmvKernelKind k);

/// Simulation context for one SpMV call: where the x and y segments live in
/// the simulator's address space. Null `ks` disables cost accounting.
struct SpmvSim {
  sim::KernelSim* ks = nullptr;
  std::uint64_t x_base = 0;
  std::uint64_t y_base = 0;
};

// Host execution of every kernel accepts an optional thread pool: the rows
// (listed rows for DCSR) are partitioned into contiguous nnz-balanced chunks
// (balanced_row_partition), one per thread. Each row writes its own y entry,
// so the parallel result is bitwise identical to the serial one, at any
// thread count. A null pool — or a block below kHostParallelMinNnz — takes
// the untouched serial path.

template <class T>
void spmv_scalar_csr(const Csr<T>& a, const T* x, T* y, const SpmvSim* s,
                     ThreadPool* pool = nullptr);

template <class T>
void spmv_vector_csr(const Csr<T>& a, const T* x, T* y, const SpmvSim* s,
                     ThreadPool* pool = nullptr);

template <class T>
void spmv_scalar_dcsr(const Dcsr<T>& a, const T* x, T* y, const SpmvSim* s,
                      ThreadPool* pool = nullptr);

template <class T>
void spmv_vector_dcsr(const Dcsr<T>& a, const T* x, T* y, const SpmvSim* s,
                      ThreadPool* pool = nullptr);

/// Dispatch by kind on a CSR block (DCSR kinds convert on the fly — only used
/// by the calibration harness; the production path stores DCSR blocks
/// natively in BlockedMatrix).
template <class T>
void spmv_update(SpmvKernelKind kind, const Csr<T>& a, const T* x, T* y,
                 const SpmvSim* s, ThreadPool* pool = nullptr);

// --- Batched (multi-RHS) update kernels -------------------------------------
//
// SpMM-style Y ← Y − A·X over multi-RHS panels: X has k columns with
// leading dimension `ldx`, Y with `ldy`; `layout` selects column-major
// (element (i, c) at base[i + c·ld]) or row-interleaved (base[i·ld + c])
// storage, with identical per-column operation order either way. Each (listed) row streams its
// structure once and updates all k columns in kRhsTile-wide stack-accumulated
// groups, so the CSR/DCSR arrays are read once per solve step instead of once
// per RHS. Host only (no simulation context — the batched path is the
// wall-clock execution backend). Every row writes only its own y entries
// across every column, so the result is bitwise identical to k single-RHS
// calls at any thread count.

template <class T>
void spmv_scalar_csr_many(const Csr<T>& a, const T* x, T* y, index_t k,
                          index_t ldx, index_t ldy,
                          ThreadPool* pool = nullptr,
                          PanelLayout layout = PanelLayout::kColMajor);

template <class T>
void spmv_vector_csr_many(const Csr<T>& a, const T* x, T* y, index_t k,
                          index_t ldx, index_t ldy,
                          ThreadPool* pool = nullptr,
                          PanelLayout layout = PanelLayout::kColMajor);

template <class T>
void spmv_scalar_dcsr_many(const Dcsr<T>& a, const T* x, T* y, index_t k,
                           index_t ldx, index_t ldy,
                           ThreadPool* pool = nullptr,
                           PanelLayout layout = PanelLayout::kColMajor);

template <class T>
void spmv_vector_dcsr_many(const Dcsr<T>& a, const T* x, T* y, index_t k,
                           index_t ldx, index_t ldy,
                           ThreadPool* pool = nullptr,
                           PanelLayout layout = PanelLayout::kColMajor);

/// Dispatch by kind on a pre-built CSR block (DCSR kinds convert on the fly,
/// mirroring spmv_update — production callers hold native DCSR blocks and
/// call spmv_*_dcsr_many directly).
template <class T>
void spmv_update_many(SpmvKernelKind kind, const Csr<T>& a, const T* x, T* y,
                      index_t k, index_t ldx, index_t ldy,
                      ThreadPool* pool = nullptr);

/// Plain y = A·x convenience used by examples/tests (no simulation).
template <class T>
std::vector<T> spmv_apply(const Csr<T>& a, const std::vector<T>& x);

}  // namespace blocktri
