#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace blocktri {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

struct Header {
  bool pattern = false;
  bool symmetric = false;
};

Header parse_header(const std::string& line) {
  std::istringstream hs(line);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  BLOCKTRI_CHECK_MSG(banner == "%%MatrixMarket",
                     "not a MatrixMarket file: bad banner");
  BLOCKTRI_CHECK_MSG(lower(object) == "matrix",
                     "unsupported MatrixMarket object: " + object);
  BLOCKTRI_CHECK_MSG(lower(format) == "coordinate",
                     "only coordinate MatrixMarket files are supported");
  Header h;
  const std::string f = lower(field);
  if (f == "pattern") {
    h.pattern = true;
  } else {
    BLOCKTRI_CHECK_MSG(f == "real" || f == "integer",
                       "unsupported MatrixMarket field: " + field);
  }
  const std::string s = lower(symmetry);
  if (s == "symmetric" || s == "skew-symmetric") {
    h.symmetric = true;
  } else {
    BLOCKTRI_CHECK_MSG(s == "general",
                       "unsupported MatrixMarket symmetry: " + symmetry);
  }
  return h;
}

}  // namespace

template <class T>
Coo<T> read_matrix_market(std::istream& in) {
  std::string line;
  BLOCKTRI_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                     "empty MatrixMarket stream");
  const Header h = parse_header(line);

  // Skip comments, read the size line.
  long long nrows = 0, ncols = 0, nnz = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ss(line);
    BLOCKTRI_CHECK_MSG(static_cast<bool>(ss >> nrows >> ncols >> nnz),
                       "bad MatrixMarket size line");
    break;
  }
  BLOCKTRI_CHECK(nrows >= 0 && ncols >= 0 && nnz >= 0);

  Coo<T> out;
  out.nrows = static_cast<index_t>(nrows);
  out.ncols = static_cast<index_t>(ncols);
  out.row.reserve(static_cast<std::size_t>(nnz));
  out.col.reserve(static_cast<std::size_t>(nnz));
  out.val.reserve(static_cast<std::size_t>(nnz));
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ss(line);
    long long r, c;
    double v = 1.0;
    BLOCKTRI_CHECK_MSG(static_cast<bool>(ss >> r >> c),
                       "bad MatrixMarket entry line");
    if (!h.pattern) BLOCKTRI_CHECK_MSG(static_cast<bool>(ss >> v),
                                       "missing MatrixMarket value");
    BLOCKTRI_CHECK_MSG(r >= 1 && r <= nrows && c >= 1 && c <= ncols,
                       "MatrixMarket entry out of bounds");
    out.row.push_back(static_cast<index_t>(r - 1));
    out.col.push_back(static_cast<index_t>(c - 1));
    out.val.push_back(static_cast<T>(v));
    if (h.symmetric && r != c) {
      out.row.push_back(static_cast<index_t>(c - 1));
      out.col.push_back(static_cast<index_t>(r - 1));
      out.val.push_back(static_cast<T>(v));
    }
    ++seen;
  }
  BLOCKTRI_CHECK_MSG(seen == nnz, "MatrixMarket file truncated");
  return out;
}

template <class T>
Coo<T> read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  BLOCKTRI_CHECK_MSG(in.good(), "cannot open " + path);
  return read_matrix_market<T>(in);
}

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.nrows << ' ' << a.ncols << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.nrows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      out << (i + 1) << ' '
          << (a.col_idx[static_cast<std::size_t>(k)] + 1) << ' '
          << static_cast<double>(a.val[static_cast<std::size_t>(k)]) << '\n';
}

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a) {
  std::ofstream out(path);
  BLOCKTRI_CHECK_MSG(out.good(), "cannot open " + path + " for writing");
  write_matrix_market(out, a);
}

#define BLOCKTRI_INSTANTIATE(T)                                      \
  template Coo<T> read_matrix_market(std::istream&);                 \
  template Coo<T> read_matrix_market_file(const std::string&);      \
  template void write_matrix_market(std::ostream&, const Csr<T>&);  \
  template void write_matrix_market_file(const std::string&, const Csr<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
