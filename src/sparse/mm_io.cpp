#include "sparse/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace blocktri {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

Status bad_format(long long line, const std::string& msg) {
  return Status(StatusCode::kBadFormat, msg + " (line " + std::to_string(line) + ")",
                line);
}

Status parse_error(long long line, const std::string& msg) {
  return Status(StatusCode::kParseError,
                msg + " (line " + std::to_string(line) + ")", line);
}

struct Header {
  bool pattern = false;
  bool symmetric = false;  // mirror off-diagonal entries
  bool skew = false;       // ... with negated value
};

Status parse_header(const std::string& line, Header* h) {
  std::istringstream hs(line);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    return bad_format(1, "not a MatrixMarket file: bad banner");
  if (lower(object) != "matrix")
    return bad_format(1, "unsupported MatrixMarket object: " + object);
  if (lower(format) != "coordinate")
    return bad_format(1, "only coordinate MatrixMarket files are supported");
  const std::string f = lower(field);
  if (f == "pattern") {
    h->pattern = true;
  } else if (f != "real" && f != "integer") {
    return bad_format(1, "unsupported MatrixMarket field: " + field);
  }
  const std::string s = lower(symmetry);
  if (s == "symmetric" || s == "skew-symmetric") {
    h->symmetric = true;
    h->skew = (s == "skew-symmetric");
  } else if (s != "general") {
    return bad_format(1, "unsupported MatrixMarket symmetry: " + symmetry);
  }
  return Status::Ok();
}

// strtoll/strtod-based field scanners: unlike istream extraction they accept
// "nan"/"inf" tokens (which we then reject as typed kNonFinite errors rather
// than unhelpful parse failures) and let us report the offending line.
bool scan_ll(const char*& p, long long* out) {
  char* end = nullptr;
  const long long v = std::strtoll(p, &end, 10);
  if (end == p) return false;
  p = end;
  *out = v;
  return true;
}

bool scan_double(const char*& p, double* out) {
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p) return false;
  p = end;
  *out = v;
  return true;
}

bool only_blanks(const char* p) {
  for (; *p; ++p)
    if (!std::isspace(static_cast<unsigned char>(*p))) return false;
  return true;
}

}  // namespace

template <class T>
Status try_read_matrix_market(std::istream& in, Coo<T>* out) {
  BLOCKTRI_CHECK(out != nullptr);
  std::string line;
  long long lineno = 0;

  if (!std::getline(in, line))
    return bad_format(1, "empty MatrixMarket stream");
  ++lineno;
  Header h;
  if (Status st = parse_header(line, &h); !st.ok()) return st;

  // Skip comments, read the size line.
  long long nrows = 0, ncols = 0, nnz = 0;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    const char* p = line.c_str();
    if (!scan_ll(p, &nrows) || !scan_ll(p, &ncols) || !scan_ll(p, &nnz) ||
        !only_blanks(p))
      return parse_error(lineno, "bad MatrixMarket size line");
    have_size = true;
    break;
  }
  if (!have_size)
    return parse_error(lineno + 1, "missing MatrixMarket size line");
  if (nrows < 0 || ncols < 0 || nnz < 0)
    return bad_format(lineno, "negative MatrixMarket dimensions");

  Coo<T> coo;
  coo.nrows = static_cast<index_t>(nrows);
  coo.ncols = static_cast<index_t>(ncols);
  coo.row.reserve(static_cast<std::size_t>(nnz));
  coo.col.reserve(static_cast<std::size_t>(nnz));
  coo.val.reserve(static_cast<std::size_t>(nnz));
  long long seen = 0;
  while (seen < nnz && std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '%') continue;
    const char* p = line.c_str();
    long long r = 0, c = 0;
    double v = 1.0;
    if (!scan_ll(p, &r) || !scan_ll(p, &c))
      return parse_error(lineno, "bad MatrixMarket entry line");
    if (!h.pattern && !scan_double(p, &v))
      return parse_error(lineno, "missing or malformed MatrixMarket value");
    if (!only_blanks(p))
      return parse_error(lineno, "trailing garbage on MatrixMarket entry line");
    if (r < 1 || r > nrows || c < 1 || c > ncols)
      return Status(StatusCode::kOutOfBounds,
                    "MatrixMarket entry (" + std::to_string(r) + ", " +
                        std::to_string(c) + ") outside " +
                        std::to_string(nrows) + " x " + std::to_string(ncols) +
                        " (line " + std::to_string(lineno) + ")",
                    lineno);
    if (!std::isfinite(v))
      return Status(StatusCode::kNonFinite,
                    "non-finite MatrixMarket value (line " +
                        std::to_string(lineno) + ")",
                    lineno, LocationKind::kLine);
    coo.row.push_back(static_cast<index_t>(r - 1));
    coo.col.push_back(static_cast<index_t>(c - 1));
    coo.val.push_back(static_cast<T>(v));
    if (h.symmetric && r != c) {
      // The mirrored entry of a skew-symmetric matrix is negated: a(j,i) =
      // -a(i,j). (Plain symmetric copies the value.)
      coo.row.push_back(static_cast<index_t>(c - 1));
      coo.col.push_back(static_cast<index_t>(r - 1));
      coo.val.push_back(h.skew ? static_cast<T>(-v) : static_cast<T>(v));
    }
    ++seen;
  }
  if (seen != nnz)
    return parse_error(lineno + 1,
                       "MatrixMarket file truncated: expected " +
                           std::to_string(nnz) + " entries, got " +
                           std::to_string(seen));
  *out = std::move(coo);
  return Status::Ok();
}

template <class T>
Coo<T> read_matrix_market(std::istream& in) {
  Coo<T> coo;
  throw_if_error(try_read_matrix_market(in, &coo));
  return coo;
}

template <class T>
Status try_read_matrix_market_file(const std::string& path, Coo<T>* out) {
  std::ifstream in(path);
  if (!in.good())
    return Status(StatusCode::kBadFormat, "cannot open " + path);
  return try_read_matrix_market(in, out);
}

template <class T>
Coo<T> read_matrix_market_file(const std::string& path) {
  Coo<T> coo;
  throw_if_error(try_read_matrix_market_file(path, &coo));
  return coo;
}

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.nrows << ' ' << a.ncols << ' ' << a.nnz() << '\n';
  out.precision(17);
  for (index_t i = 0; i < a.nrows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      out << (i + 1) << ' '
          << (a.col_idx[static_cast<std::size_t>(k)] + 1) << ' '
          << static_cast<double>(a.val[static_cast<std::size_t>(k)]) << '\n';
}

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a) {
  std::ofstream out(path);
  if (!out.good())
    throw Error(
        Status(StatusCode::kBadFormat, "cannot open " + path + " for writing"));
  write_matrix_market(out, a);
}

#define BLOCKTRI_INSTANTIATE(T)                                          \
  template Status try_read_matrix_market(std::istream&, Coo<T>*);        \
  template Status try_read_matrix_market_file(const std::string&,        \
                                              Coo<T>*);                  \
  template Coo<T> read_matrix_market(std::istream&);                     \
  template Coo<T> read_matrix_market_file(const std::string&);           \
  template void write_matrix_market(std::ostream&, const Csr<T>&);  \
  template void write_matrix_market_file(const std::string&, const Csr<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
