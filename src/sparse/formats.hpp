// Sparse matrix containers used throughout blocktri.
//
// Four formats appear in the paper:
//   * CSR  — serial SpTRSV (Alg. 1), level-set SpTRSV (Alg. 2), square-block
//            SpMV kernels (scalar-CSR / vector-CSR).
//   * CSC  — sync-free SpTRSV (Alg. 3) and the triangular sub-blocks of the
//            improved recursive layout (§3.3, Fig. 3d).
//   * DCSR — doubly-compressed CSR for very sparse square blocks (§3.3): a
//            row pointer over the non-empty rows only, plus an array of the
//            actual row indices (after Buluç & Gilbert's DCSC).
//   * COO  — construction/interchange format for the generators and I/O.
//
// Containers are aggregates templated on the value type (float/double for
// Fig. 7); all structural algorithms live in convert/permute/triangular.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace blocktri {

template <class T>
struct Coo {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<T> val;

  offset_t nnz() const { return static_cast<offset_t>(val.size()); }
};

template <class T>
struct Csr {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<offset_t> row_ptr;  // size nrows + 1
  std::vector<index_t> col_idx;   // size nnz, sorted within each row
  std::vector<T> val;             // size nnz

  offset_t nnz() const { return static_cast<offset_t>(val.size()); }
  offset_t row_nnz(index_t i) const {
    return row_ptr[static_cast<std::size_t>(i) + 1] -
           row_ptr[static_cast<std::size_t>(i)];
  }
};

template <class T>
struct Csc {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<offset_t> col_ptr;  // size ncols + 1
  std::vector<index_t> row_idx;   // size nnz, sorted within each column
  std::vector<T> val;             // size nnz

  offset_t nnz() const { return static_cast<offset_t>(val.size()); }
  offset_t col_nnz(index_t j) const {
    return col_ptr[static_cast<std::size_t>(j) + 1] -
           col_ptr[static_cast<std::size_t>(j)];
  }
};

template <class T>
struct Dcsr {
  index_t nrows = 0;  // logical row count (including empty rows)
  index_t ncols = 0;
  std::vector<index_t> row_ids;   // indices of the non-empty rows, ascending
  std::vector<offset_t> row_ptr;  // size row_ids.size() + 1
  std::vector<index_t> col_idx;
  std::vector<T> val;

  offset_t nnz() const { return static_cast<offset_t>(val.size()); }
  index_t nnz_rows() const { return static_cast<index_t>(row_ids.size()); }
};

/// Throws blocktri::Error unless the structure is well-formed: monotone
/// pointers, in-range sorted indices, no duplicates within a row/column.
template <class T>
void validate(const Csr<T>& a);
template <class T>
void validate(const Csc<T>& a);
template <class T>
void validate(const Dcsr<T>& a);
template <class T>
void validate(const Coo<T>& a);

/// Structural + numerical equality (exact value comparison; used by tests on
/// conversion round-trips, which must be lossless).
template <class T>
bool equals(const Csr<T>& a, const Csr<T>& b);
template <class T>
bool equals(const Csc<T>& a, const Csc<T>& b);
template <class T>
bool equals(const Dcsr<T>& a, const Dcsr<T>& b);

}  // namespace blocktri
