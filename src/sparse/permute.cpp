#include "sparse/permute.hpp"

#include <algorithm>

#include "common/prefix.hpp"

namespace blocktri {

template <class T>
Csr<T> permute_symmetric(const Csr<T>& a,
                         const std::vector<index_t>& new_of_old) {
  BLOCKTRI_CHECK(a.nrows == a.ncols);
  BLOCKTRI_CHECK(new_of_old.size() == static_cast<std::size_t>(a.nrows));
  BLOCKTRI_CHECK_MSG(is_permutation_of_iota(new_of_old),
                     "new_of_old is not a permutation");
  const std::vector<index_t> old_of_new = invert_permutation(new_of_old);

  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_ptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  for (index_t ni = 0; ni < a.nrows; ++ni) {
    const index_t oi = old_of_new[static_cast<std::size_t>(ni)];
    out.row_ptr[static_cast<std::size_t>(ni) + 1] = a.row_nnz(oi);
  }
  for (std::size_t i = 1; i < out.row_ptr.size(); ++i)
    out.row_ptr[i] += out.row_ptr[i - 1];

  out.col_idx.resize(static_cast<std::size_t>(a.nnz()));
  out.val.resize(static_cast<std::size_t>(a.nnz()));
  std::vector<std::pair<index_t, T>> rowbuf;
  for (index_t ni = 0; ni < a.nrows; ++ni) {
    const index_t oi = old_of_new[static_cast<std::size_t>(ni)];
    rowbuf.clear();
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(oi)];
         k < a.row_ptr[static_cast<std::size_t>(oi) + 1]; ++k) {
      const index_t oc = a.col_idx[static_cast<std::size_t>(k)];
      rowbuf.emplace_back(new_of_old[static_cast<std::size_t>(oc)],
                          a.val[static_cast<std::size_t>(k)]);
    }
    std::sort(rowbuf.begin(), rowbuf.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    offset_t at = out.row_ptr[static_cast<std::size_t>(ni)];
    for (const auto& [c, v] : rowbuf) {
      out.col_idx[static_cast<std::size_t>(at)] = c;
      out.val[static_cast<std::size_t>(at)] = v;
      ++at;
    }
  }
  return out;
}

template <class T>
std::vector<T> permute_vector(const std::vector<T>& v,
                              const std::vector<index_t>& new_of_old) {
  BLOCKTRI_CHECK(v.size() == new_of_old.size());
  std::vector<T> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[static_cast<std::size_t>(new_of_old[i])] = v[i];
  return out;
}

template <class T>
std::vector<T> unpermute_vector(const std::vector<T>& v,
                                const std::vector<index_t>& new_of_old) {
  BLOCKTRI_CHECK(v.size() == new_of_old.size());
  std::vector<T> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    out[i] = v[static_cast<std::size_t>(new_of_old[i])];
  return out;
}

#define BLOCKTRI_INSTANTIATE(T)                                           \
  template Csr<T> permute_symmetric(const Csr<T>&,                        \
                                    const std::vector<index_t>&);         \
  template std::vector<T> permute_vector(const std::vector<T>&,           \
                                         const std::vector<index_t>&);    \
  template std::vector<T> unpermute_vector(const std::vector<T>&,         \
                                           const std::vector<index_t>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
