#include "sparse/dense.hpp"

#include <algorithm>

namespace blocktri {

template <class T>
std::vector<T> to_dense(const Csr<T>& a) {
  std::vector<T> d(static_cast<std::size_t>(a.nrows) *
                       static_cast<std::size_t>(a.ncols),
                   T(0));
  for (index_t i = 0; i < a.nrows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      d[static_cast<std::size_t>(i) * static_cast<std::size_t>(a.ncols) +
        static_cast<std::size_t>(a.col_idx[static_cast<std::size_t>(k)])] =
          a.val[static_cast<std::size_t>(k)];
  return d;
}

template <class T>
std::vector<T> dense_lower_solve(const std::vector<T>& dense, index_t n,
                                 const std::vector<T>& b) {
  BLOCKTRI_CHECK(dense.size() ==
                 static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  BLOCKTRI_CHECK(b.size() == static_cast<std::size_t>(n));
  std::vector<T> x(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    T sum = b[static_cast<std::size_t>(i)];
    const std::size_t row =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(n);
    for (index_t j = 0; j < i; ++j)
      sum -= dense[row + static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    const T d = dense[row + static_cast<std::size_t>(i)];
    BLOCKTRI_CHECK_MSG(d != T(0), "singular diagonal in dense oracle");
    x[static_cast<std::size_t>(i)] = sum / d;
  }
  return x;
}

template <class T>
std::vector<T> dense_matvec(const std::vector<T>& dense, index_t nrows,
                            index_t ncols, const std::vector<T>& x) {
  BLOCKTRI_CHECK(dense.size() == static_cast<std::size_t>(nrows) *
                                     static_cast<std::size_t>(ncols));
  BLOCKTRI_CHECK(x.size() == static_cast<std::size_t>(ncols));
  std::vector<T> y(static_cast<std::size_t>(nrows), T(0));
  for (index_t i = 0; i < nrows; ++i) {
    T sum = T(0);
    const std::size_t row =
        static_cast<std::size_t>(i) * static_cast<std::size_t>(ncols);
    for (index_t j = 0; j < ncols; ++j)
      sum += dense[row + static_cast<std::size_t>(j)] *
             x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = sum;
  }
  return y;
}

template <class T>
std::string spy(const Csr<T>& a, index_t max_dim) {
  BLOCKTRI_CHECK(max_dim > 0);
  const index_t h = std::min(a.nrows, max_dim);
  const index_t w = std::min(a.ncols, max_dim);
  if (h == 0 || w == 0) return "(empty)\n";
  std::vector<char> grid(static_cast<std::size_t>(h) *
                             static_cast<std::size_t>(w),
                         '.');
  for (index_t i = 0; i < a.nrows; ++i) {
    const index_t gi = static_cast<index_t>(
        static_cast<std::int64_t>(i) * h / std::max<index_t>(a.nrows, 1));
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = a.col_idx[static_cast<std::size_t>(k)];
      const index_t gj = static_cast<index_t>(
          static_cast<std::int64_t>(j) * w / std::max<index_t>(a.ncols, 1));
      grid[static_cast<std::size_t>(gi) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(gj)] = '*';
    }
  }
  std::string out;
  out.reserve(static_cast<std::size_t>(h) * (static_cast<std::size_t>(w) + 1));
  for (index_t r = 0; r < h; ++r) {
    out.append(grid.begin() + static_cast<std::ptrdiff_t>(r) * w,
               grid.begin() + static_cast<std::ptrdiff_t>(r + 1) * w);
    out.push_back('\n');
  }
  return out;
}

#define BLOCKTRI_INSTANTIATE(T)                                             \
  template std::vector<T> to_dense(const Csr<T>&);                          \
  template std::vector<T> dense_lower_solve(const std::vector<T>&, index_t, \
                                            const std::vector<T>&);         \
  template std::vector<T> dense_matvec(const std::vector<T>&, index_t,      \
                                       index_t, const std::vector<T>&);     \
  template std::string spy(const Csr<T>&, index_t);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
