// Lossless structural conversions between the sparse formats. All functions
// produce sorted, duplicate-free outputs (duplicates in COO input are summed,
// the usual assembly convention).
#pragma once

#include "common/thread_pool.hpp"
#include "sparse/formats.hpp"

namespace blocktri {

/// COO -> CSR. Duplicate (row, col) entries are summed. O(nnz + nrows).
template <class T>
Csr<T> coo_to_csr(const Coo<T>& a);

/// CSR -> COO, entries emitted in row-major order.
template <class T>
Coo<T> csr_to_coo(const Csr<T>& a);

/// CSR -> CSC of the same matrix (i.e. a layout change, not a transpose).
/// With a pool (and a matrix above the parallel cutoff), the count and
/// scatter passes are parallelised over contiguous row chunks using
/// per-chunk column histograms; the output is identical to the serial one
/// (within-column row order is preserved because chunks are ascending).
template <class T>
Csc<T> csr_to_csc(const Csr<T>& a, ThreadPool* pool = nullptr);

/// CSC -> CSR of the same matrix.
template <class T>
Csr<T> csc_to_csr(const Csc<T>& a);

/// Explicit transpose: returns B = A^T in CSR.
template <class T>
Csr<T> transpose(const Csr<T>& a);

/// CSR -> DCSR: drops empty rows from the pointer array (§3.3). Lossless.
template <class T>
Dcsr<T> csr_to_dcsr(const Csr<T>& a);

/// DCSR -> CSR: reinstates empty rows.
template <class T>
Csr<T> dcsr_to_csr(const Dcsr<T>& a);

/// Fraction of rows with no nonzero entry — the `emptyratio` feature the
/// adaptive SpMV selector keys on (§3.4).
template <class T>
double empty_row_ratio(const Csr<T>& a);

}  // namespace blocktri
