// Triangular-matrix utilities: extraction of the benchmark systems (the
// paper tests "lower triangular parts plus a diagonal to avoid singular",
// §4.1), diagonal splitting (the improved layout stores the diagonal
// separately, §3.3), and sub-block extraction used by the partition planners.
#pragma once

#include "sparse/formats.hpp"

namespace blocktri {

/// Returns the lower-triangular part of `a` (entries with col <= row).
/// Any missing diagonal entry is inserted with value `diag_fill` so the
/// system is non-singular — the paper's dataset construction rule.
template <class T>
Csr<T> lower_triangular_with_diag(const Csr<T>& a, T diag_fill = T(1));

/// Typed verdict on whether `a` is a solvable lower triangle. Returns, in
/// order of detection per row: kInvalidArgument (not square),
/// kNotTriangular (entry above the diagonal), kSingularRow (row without a
/// diagonal entry, including empty rows), kZeroPivot (diagonal present but
/// zero or subnormal — a subnormal pivot overflows the substitution just
/// like an exact zero), kNonFinite (NaN/Inf entry). The offending row is in
/// Status::location().
template <class T>
Status check_lower_triangular(const Csr<T>& a);

/// True iff every entry satisfies col <= row and every diagonal entry is
/// present, nonzero, normal and finite — check_lower_triangular().ok().
template <class T>
bool is_lower_triangular_nonsingular(const Csr<T>& a);

/// Splits a lower-triangular matrix into its strictly-lower part and a dense
/// diagonal vector. The improved recursive layout keeps the diagonal apart
/// ("for brevity, we assume the diagonal is saved separately", §3.3).
template <class T>
struct StrictLowerSplit {
  Csr<T> strict;        // strictly lower triangular, n x n
  std::vector<T> diag;  // size n, all nonzero
};
template <class T>
StrictLowerSplit<T> split_diagonal(const Csr<T>& lower);

/// Extracts the sub-matrix a[r0:r1, c0:c1) with indices rebased to the block
/// origin. O(nnz of the covered rows). Used by the block partitioners to cut
/// triangular, rectangular and square sub-matrices (Fig. 2).
template <class T>
Csr<T> extract_block(const Csr<T>& a, index_t r0, index_t r1, index_t c0,
                     index_t c1);

/// Sum of |row range| nonzeros that fall inside [c0, c1): cheap nnz counting
/// used by planners to reason about block sizes without materialising them.
template <class T>
offset_t count_block_nnz(const Csr<T>& a, index_t r0, index_t r1, index_t c0,
                         index_t c1);

}  // namespace blocktri
