// Dense helpers used as test oracles: dense conversion, dense forward
// substitution, and dense mat-vec. Quadratic/cubic — for small matrices in
// unit tests only, never in benchmark paths.
#pragma once

#include <string>
#include <vector>

#include "sparse/formats.hpp"

namespace blocktri {

/// Row-major dense copy, size nrows*ncols.
template <class T>
std::vector<T> to_dense(const Csr<T>& a);

/// Dense forward substitution oracle for L x = b (L lower triangular with
/// nonzero diagonal, passed densely row-major).
template <class T>
std::vector<T> dense_lower_solve(const std::vector<T>& dense, index_t n,
                                 const std::vector<T>& b);

/// Dense y = A x.
template <class T>
std::vector<T> dense_matvec(const std::vector<T>& dense, index_t nrows,
                            index_t ncols, const std::vector<T>& x);

/// ASCII "spy" plot of the sparsity pattern, at most max_dim rows/cols
/// (down-sampled beyond that). Handy in examples and failure messages.
template <class T>
std::string spy(const Csr<T>& a, index_t max_dim = 64);

}  // namespace blocktri
