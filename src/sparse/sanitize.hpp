// Input sanitization for real-world matrices.
//
// The paper's pipeline assumes clean SuiteSparse triangles; production
// inputs are not. This pass sits between I/O (COO) and the solver (CSR) and
// repairs the defects that are safe to repair — duplicate entries, explicit
// zeros, upper-triangle entries in a matrix destined for a lower solve,
// missing diagonals — while turning the ones that are not (out-of-bounds
// indices, NaN/Inf under the reject policy) into typed Status errors. A
// SanitizeReport records exactly what was changed so callers can log or
// refuse repaired inputs.
#pragma once

#include <string>

#include "sparse/formats.hpp"

namespace blocktri {

/// What sanitize() is allowed to repair. The defaults match the common
/// assembly convention (sum duplicates, drop stored zeros) and reject
/// anything numerical-looking; opt in to the structural repairs when
/// preparing a general matrix for a triangular solve.
struct SanitizePolicy {
  /// Sum entries with equal (row, col). When false, duplicates are a
  /// kBadFormat error instead.
  bool coalesce_duplicates = true;
  /// Drop entries whose (possibly coalesced) value is exactly zero. Note a
  /// dropped zero diagonal later counts as missing, not as a zero pivot.
  bool drop_explicit_zeros = true;
  /// Strip entries above the diagonal — extracting the lower triangle of a
  /// general matrix, the paper's §4.1 dataset rule.
  bool strip_upper = false;
  /// Insert `diag_fill` on rows with no (surviving) diagonal entry. Only
  /// meaningful for square matrices.
  bool fill_missing_diagonal = false;
  double diag_fill = 1.0;

  /// NaN/Inf handling: reject with kNonFinite (default), drop the entry, or
  /// replace its value with zero (which drop_explicit_zeros may then remove).
  enum class NonFinite { kReject, kDrop, kZero };
  NonFinite nonfinite = NonFinite::kReject;
};

/// Tally of every repair sanitize() performed.
struct SanitizeReport {
  offset_t duplicates_coalesced = 0;  // entries merged into a survivor
  offset_t zeros_dropped = 0;
  offset_t upper_dropped = 0;
  offset_t nonfinite_repaired = 0;    // dropped or zeroed per policy
  index_t diagonals_filled = 0;

  bool changed() const {
    return duplicates_coalesced || zeros_dropped || upper_dropped ||
           nonfinite_repaired || diagonals_filled;
  }
  /// One-line human-readable summary, e.g.
  /// "coalesced 3 duplicates, dropped 1 zero, filled 2 diagonals".
  std::string summary() const;
};

/// Sanitizes `in` under `policy` into a sorted, duplicate-free CSR. Returns
/// a non-ok Status (and leaves *out unspecified) on defects the policy does
/// not repair: kOutOfBounds for indices outside the declared dimensions
/// (location = entry position), kNonFinite under NonFinite::kReject
/// (location = row), kBadFormat for duplicates when coalescing is off or for
/// mismatched array lengths. `report` may be null.
template <class T>
Status sanitize(const Coo<T>& in, const SanitizePolicy& policy, Csr<T>* out,
                SanitizeReport* report = nullptr);

}  // namespace blocktri
