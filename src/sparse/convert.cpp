#include "sparse/convert.hpp"

#include <algorithm>
#include <numeric>

#include "common/prefix.hpp"

namespace blocktri {

template <class T>
Csr<T> coo_to_csr(const Coo<T>& a) {
  validate(a);
  const std::size_t n = static_cast<std::size_t>(a.nrows);

  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_ptr.assign(n + 1, 0);
  for (const index_t r : a.row) ++out.row_ptr[static_cast<std::size_t>(r)];
  exclusive_scan_in_place(out.row_ptr);

  // Scatter into row buckets, then sort each row by column and fold
  // duplicates. Sorting per row keeps peak memory at one extra nnz array.
  std::vector<index_t> cols(a.val.size());
  std::vector<T> vals(a.val.size());
  {
    std::vector<offset_t> cursor(out.row_ptr.begin(), out.row_ptr.end() - 1);
    for (std::size_t k = 0; k < a.val.size(); ++k) {
      const auto at = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(a.row[k])]++);
      cols[at] = a.col[k];
      vals[at] = a.val[k];
    }
  }

  out.col_idx.reserve(a.val.size());
  out.val.reserve(a.val.size());
  std::vector<offset_t> new_ptr(n + 1, 0);
  std::vector<std::pair<index_t, T>> rowbuf;
  for (std::size_t i = 0; i < n; ++i) {
    rowbuf.clear();
    for (offset_t k = out.row_ptr[i]; k < out.row_ptr[i + 1]; ++k)
      rowbuf.emplace_back(cols[static_cast<std::size_t>(k)],
                          vals[static_cast<std::size_t>(k)]);
    std::sort(rowbuf.begin(), rowbuf.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    for (std::size_t k = 0; k < rowbuf.size(); ++k) {
      if (k > 0 && rowbuf[k].first == rowbuf[k - 1].first) {
        out.val.back() += rowbuf[k].second;  // assembly: sum duplicates
      } else {
        out.col_idx.push_back(rowbuf[k].first);
        out.val.push_back(rowbuf[k].second);
      }
    }
    new_ptr[i + 1] = static_cast<offset_t>(out.val.size());
  }
  out.row_ptr = std::move(new_ptr);
  return out;
}

template <class T>
Coo<T> csr_to_coo(const Csr<T>& a) {
  Coo<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row.reserve(static_cast<std::size_t>(a.nnz()));
  out.col = a.col_idx;
  out.val = a.val;
  for (index_t i = 0; i < a.nrows; ++i)
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
      out.row.push_back(i);
  return out;
}

namespace {

/// Parallel CSR→CSC: per-chunk column histograms make both the count and the
/// scatter pass independent across contiguous row chunks. Chunk-major cursor
/// layout keeps each chunk's writes on its own cache lines.
template <class T>
Csc<T> csr_to_csc_parallel(const Csr<T>& a, ThreadPool* pool) {
  Csc<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  const auto ncols = static_cast<std::size_t>(a.ncols);
  const int nchunks = pool->size();
  const std::vector<index_t> bounds =
      balanced_row_partition(a.row_ptr, a.nrows, nchunks);

  // Pass 1: per-chunk column counts.
  std::vector<offset_t> cursor(static_cast<std::size_t>(nchunks) * ncols, 0);
  pool->run_partition(bounds, [&](index_t r0, index_t r1, int chunk) {
    offset_t* counts = cursor.data() + static_cast<std::size_t>(chunk) * ncols;
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(r0)];
         k < a.row_ptr[static_cast<std::size_t>(r1)]; ++k)
      ++counts[a.col_idx[static_cast<std::size_t>(k)]];
  });

  // Combine: col_ptr prefix over columns, and per-chunk starting cursors
  // (chunk ch of column c starts after all earlier chunks' entries of c).
  out.col_ptr.assign(ncols + 1, 0);
  offset_t running = 0;
  for (std::size_t c = 0; c < ncols; ++c) {
    out.col_ptr[c] = running;
    for (int ch = 0; ch < nchunks; ++ch) {
      offset_t& slot = cursor[static_cast<std::size_t>(ch) * ncols + c];
      const offset_t count = slot;
      slot = running;
      running += count;
    }
  }
  out.col_ptr[ncols] = running;

  // Pass 2: scatter. Chunks are ascending row ranges, so each column's rows
  // land sorted, exactly as in the serial conversion.
  out.row_idx.resize(a.col_idx.size());
  out.val.resize(a.val.size());
  pool->run_partition(bounds, [&](index_t r0, index_t r1, int chunk) {
    offset_t* cur = cursor.data() + static_cast<std::size_t>(chunk) * ncols;
    for (index_t i = r0; i < r1; ++i) {
      for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
           k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const auto c = static_cast<std::size_t>(
            a.col_idx[static_cast<std::size_t>(k)]);
        const auto at = static_cast<std::size_t>(cur[c]++);
        out.row_idx[at] = i;
        out.val[at] = a.val[static_cast<std::size_t>(k)];
      }
    }
  });
  return out;
}

}  // namespace

template <class T>
Csc<T> csr_to_csc(const Csr<T>& a, ThreadPool* pool) {
  if (parallel_enabled(pool) && a.nnz() >= 4 * kHostParallelMinNnz &&
      a.ncols > 0)
    return csr_to_csc_parallel(a, pool);

  Csc<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.col_ptr.assign(static_cast<std::size_t>(a.ncols) + 1, 0);
  for (const index_t c : a.col_idx) ++out.col_ptr[static_cast<std::size_t>(c)];
  exclusive_scan_in_place(out.col_ptr);

  out.row_idx.resize(a.col_idx.size());
  out.val.resize(a.val.size());
  std::vector<offset_t> cursor(out.col_ptr.begin(), out.col_ptr.end() - 1);
  // Row-major traversal writes each column's rows in ascending order, so the
  // output is sorted without a second pass.
  for (index_t i = 0; i < a.nrows; ++i) {
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto c = static_cast<std::size_t>(
          a.col_idx[static_cast<std::size_t>(k)]);
      const auto at = static_cast<std::size_t>(cursor[c]++);
      out.row_idx[at] = i;
      out.val[at] = a.val[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

template <class T>
Csr<T> csc_to_csr(const Csc<T>& a) {
  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_ptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  for (const index_t r : a.row_idx) ++out.row_ptr[static_cast<std::size_t>(r)];
  exclusive_scan_in_place(out.row_ptr);

  out.col_idx.resize(a.row_idx.size());
  out.val.resize(a.val.size());
  std::vector<offset_t> cursor(out.row_ptr.begin(), out.row_ptr.end() - 1);
  for (index_t j = 0; j < a.ncols; ++j) {
    for (offset_t k = a.col_ptr[static_cast<std::size_t>(j)];
         k < a.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      const auto r = static_cast<std::size_t>(
          a.row_idx[static_cast<std::size_t>(k)]);
      const auto at = static_cast<std::size_t>(cursor[r]++);
      out.col_idx[at] = j;
      out.val[at] = a.val[static_cast<std::size_t>(k)];
    }
  }
  return out;
}

template <class T>
Csr<T> transpose(const Csr<T>& a) {
  // A^T in CSR has the same arrays as A in CSC.
  Csc<T> csc = csr_to_csc(a);
  Csr<T> out;
  out.nrows = a.ncols;
  out.ncols = a.nrows;
  out.row_ptr = std::move(csc.col_ptr);
  out.col_idx = std::move(csc.row_idx);
  out.val = std::move(csc.val);
  return out;
}

template <class T>
Dcsr<T> csr_to_dcsr(const Csr<T>& a) {
  Dcsr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.col_idx = a.col_idx;
  out.val = a.val;
  out.row_ptr.push_back(0);
  for (index_t i = 0; i < a.nrows; ++i) {
    if (a.row_nnz(i) > 0) {
      out.row_ids.push_back(i);
      out.row_ptr.push_back(a.row_ptr[static_cast<std::size_t>(i) + 1]);
    }
  }
  return out;
}

template <class T>
Csr<T> dcsr_to_csr(const Dcsr<T>& a) {
  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.col_idx = a.col_idx;
  out.val = a.val;
  out.row_ptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  for (std::size_t r = 0; r < a.row_ids.size(); ++r) {
    out.row_ptr[static_cast<std::size_t>(a.row_ids[r]) + 1] =
        a.row_ptr[r + 1] - a.row_ptr[r];
  }
  for (std::size_t i = 1; i < out.row_ptr.size(); ++i)
    out.row_ptr[i] += out.row_ptr[i - 1];
  return out;
}

template <class T>
double empty_row_ratio(const Csr<T>& a) {
  if (a.nrows == 0) return 0.0;
  index_t empty = 0;
  for (index_t i = 0; i < a.nrows; ++i)
    if (a.row_nnz(i) == 0) ++empty;
  return static_cast<double>(empty) / static_cast<double>(a.nrows);
}

#define BLOCKTRI_INSTANTIATE(T)                   \
  template Csr<T> coo_to_csr(const Coo<T>&);      \
  template Coo<T> csr_to_coo(const Csr<T>&);      \
  template Csc<T> csr_to_csc(const Csr<T>&, ThreadPool*); \
  template Csr<T> csc_to_csr(const Csc<T>&);      \
  template Csr<T> transpose(const Csr<T>&);       \
  template Dcsr<T> csr_to_dcsr(const Csr<T>&);    \
  template Csr<T> dcsr_to_csr(const Dcsr<T>&);    \
  template double empty_row_ratio(const Csr<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
