// Matrix Market (coordinate) I/O. The paper's dataset is the SuiteSparse
// Matrix Collection, distributed in this format; when real .mtx files are
// available they can be dropped into any bench with --matrix=path, otherwise
// the synthetic suite stands in (DESIGN.md §2).
//
// Supported: `%%MatrixMarket matrix coordinate (real|integer|pattern)
// (general|symmetric)`. Pattern entries get value 1. Symmetric files are
// expanded to both triangles.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/formats.hpp"

namespace blocktri {

template <class T>
Coo<T> read_matrix_market(std::istream& in);

template <class T>
Coo<T> read_matrix_market_file(const std::string& path);

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a);

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a);

}  // namespace blocktri
