// Matrix Market (coordinate) I/O. The paper's dataset is the SuiteSparse
// Matrix Collection, distributed in this format; when real .mtx files are
// available they can be dropped into any bench with --matrix=path, otherwise
// the synthetic suite stands in (DESIGN.md §2).
//
// Supported: `%%MatrixMarket matrix coordinate (real|integer|pattern)
// (general|symmetric|skew-symmetric)`. Pattern entries get value 1.
// Symmetric files are expanded to both triangles; skew-symmetric mirrors
// carry the negated value.
//
// Errors are typed (common/status.hpp) and every parse failure reports the
// 1-based line number it occurred on: try_read_matrix_market returns the
// Status, read_matrix_market throws it wrapped in blocktri::Error.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/formats.hpp"

namespace blocktri {

/// Parses a MatrixMarket coordinate stream into *out. Non-throwing: returns
/// kBadFormat (unsupported banner/object/format/field/symmetry), kParseError
/// (malformed or truncated size/entry lines), kOutOfBounds (entry outside
/// the declared dimensions) or kNonFinite (NaN/Inf value), each with the
/// 1-based line number in Status::location() and in the message.
template <class T>
Status try_read_matrix_market(std::istream& in, Coo<T>* out);

/// File variant; adds kBadFormat when the file cannot be opened.
template <class T>
Status try_read_matrix_market_file(const std::string& path, Coo<T>* out);

/// Throwing wrapper: returns the matrix or throws blocktri::Error carrying
/// the Status above.
template <class T>
Coo<T> read_matrix_market(std::istream& in);

template <class T>
Coo<T> read_matrix_market_file(const std::string& path);

template <class T>
void write_matrix_market(std::ostream& out, const Csr<T>& a);

template <class T>
void write_matrix_market_file(const std::string& path, const Csr<T>& a);

}  // namespace blocktri
