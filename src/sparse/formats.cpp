#include "sparse/formats.hpp"

namespace blocktri {

namespace {

void check_ptr_monotone(const std::vector<offset_t>& ptr, offset_t nnz,
                        const char* what) {
  BLOCKTRI_CHECK_MSG(!ptr.empty(), std::string(what) + ": empty pointer array");
  BLOCKTRI_CHECK_MSG(ptr.front() == 0, std::string(what) + ": ptr[0] != 0");
  for (std::size_t i = 1; i < ptr.size(); ++i)
    BLOCKTRI_CHECK_MSG(ptr[i - 1] <= ptr[i],
                       std::string(what) + ": non-monotone pointer array");
  BLOCKTRI_CHECK_MSG(ptr.back() == nnz,
                     std::string(what) + ": ptr back != nnz");
}

void check_sorted_indices(const std::vector<offset_t>& ptr,
                          const std::vector<index_t>& idx, index_t bound,
                          const char* what) {
  for (std::size_t seg = 0; seg + 1 < ptr.size(); ++seg) {
    for (offset_t k = ptr[seg]; k < ptr[seg + 1]; ++k) {
      const index_t v = idx[static_cast<std::size_t>(k)];
      BLOCKTRI_CHECK_MSG(v >= 0 && v < bound,
                         std::string(what) + ": index out of range");
      if (k > ptr[seg])
        BLOCKTRI_CHECK_MSG(idx[static_cast<std::size_t>(k - 1)] < v,
                           std::string(what) +
                               ": indices not strictly ascending (duplicate?)");
    }
  }
}

}  // namespace

template <class T>
void validate(const Csr<T>& a) {
  BLOCKTRI_CHECK(a.nrows >= 0 && a.ncols >= 0);
  BLOCKTRI_CHECK(a.row_ptr.size() == static_cast<std::size_t>(a.nrows) + 1);
  BLOCKTRI_CHECK(a.col_idx.size() == a.val.size());
  check_ptr_monotone(a.row_ptr, a.nnz(), "csr");
  check_sorted_indices(a.row_ptr, a.col_idx, a.ncols, "csr");
}

template <class T>
void validate(const Csc<T>& a) {
  BLOCKTRI_CHECK(a.nrows >= 0 && a.ncols >= 0);
  BLOCKTRI_CHECK(a.col_ptr.size() == static_cast<std::size_t>(a.ncols) + 1);
  BLOCKTRI_CHECK(a.row_idx.size() == a.val.size());
  check_ptr_monotone(a.col_ptr, a.nnz(), "csc");
  check_sorted_indices(a.col_ptr, a.row_idx, a.nrows, "csc");
}

template <class T>
void validate(const Dcsr<T>& a) {
  BLOCKTRI_CHECK(a.nrows >= 0 && a.ncols >= 0);
  BLOCKTRI_CHECK(a.row_ptr.size() == a.row_ids.size() + 1);
  BLOCKTRI_CHECK(a.col_idx.size() == a.val.size());
  check_ptr_monotone(a.row_ptr, a.nnz(), "dcsr");
  check_sorted_indices(a.row_ptr, a.col_idx, a.ncols, "dcsr");
  for (std::size_t i = 0; i < a.row_ids.size(); ++i) {
    BLOCKTRI_CHECK_MSG(a.row_ids[i] >= 0 && a.row_ids[i] < a.nrows,
                       "dcsr: row id out of range");
    if (i > 0)
      BLOCKTRI_CHECK_MSG(a.row_ids[i - 1] < a.row_ids[i],
                         "dcsr: row ids not strictly ascending");
    // DCSR's reason to exist is skipping empty rows; an empty row entry is
    // legal but indicates a conversion bug upstream, so reject it.
    BLOCKTRI_CHECK_MSG(a.row_ptr[i] < a.row_ptr[i + 1],
                       "dcsr: empty row stored explicitly");
  }
}

template <class T>
void validate(const Coo<T>& a) {
  BLOCKTRI_CHECK(a.nrows >= 0 && a.ncols >= 0);
  BLOCKTRI_CHECK(a.row.size() == a.val.size() && a.col.size() == a.val.size());
  for (std::size_t k = 0; k < a.val.size(); ++k) {
    BLOCKTRI_CHECK_MSG(a.row[k] >= 0 && a.row[k] < a.nrows,
                       "coo: row index out of range");
    BLOCKTRI_CHECK_MSG(a.col[k] >= 0 && a.col[k] < a.ncols,
                       "coo: col index out of range");
  }
}

template <class T>
bool equals(const Csr<T>& a, const Csr<T>& b) {
  return a.nrows == b.nrows && a.ncols == b.ncols && a.row_ptr == b.row_ptr &&
         a.col_idx == b.col_idx && a.val == b.val;
}

template <class T>
bool equals(const Csc<T>& a, const Csc<T>& b) {
  return a.nrows == b.nrows && a.ncols == b.ncols && a.col_ptr == b.col_ptr &&
         a.row_idx == b.row_idx && a.val == b.val;
}

template <class T>
bool equals(const Dcsr<T>& a, const Dcsr<T>& b) {
  return a.nrows == b.nrows && a.ncols == b.ncols && a.row_ids == b.row_ids &&
         a.row_ptr == b.row_ptr && a.col_idx == b.col_idx && a.val == b.val;
}

#define BLOCKTRI_INSTANTIATE(T)            \
  template void validate(const Csr<T>&);   \
  template void validate(const Csc<T>&);   \
  template void validate(const Dcsr<T>&);  \
  template void validate(const Coo<T>&);   \
  template bool equals(const Csr<T>&, const Csr<T>&); \
  template bool equals(const Csc<T>&, const Csc<T>&); \
  template bool equals(const Dcsr<T>&, const Dcsr<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
