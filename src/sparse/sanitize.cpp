#include "sparse/sanitize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

namespace blocktri {

std::string SanitizeReport::summary() const {
  if (!changed()) return "no changes";
  std::ostringstream os;
  const char* sep = "";
  auto item = [&os, &sep](std::int64_t n, const char* what) {
    if (n == 0) return;
    os << sep << what << ' ' << n;
    sep = ", ";
  };
  item(duplicates_coalesced, "coalesced duplicates:");
  item(zeros_dropped, "dropped zeros:");
  item(upper_dropped, "dropped upper entries:");
  item(nonfinite_repaired, "repaired non-finite:");
  item(diagonals_filled, "filled diagonals:");
  return os.str();
}

template <class T>
Status sanitize(const Coo<T>& in, const SanitizePolicy& policy, Csr<T>* out,
                SanitizeReport* report) {
  BLOCKTRI_CHECK(out != nullptr);
  SanitizeReport local;
  SanitizeReport& rep = report != nullptr ? *report : local;
  rep = SanitizeReport{};

  if (in.nrows < 0 || in.ncols < 0)
    return Status(StatusCode::kBadFormat, "negative matrix dimensions");
  if (in.row.size() != in.val.size() || in.col.size() != in.val.size())
    return Status(StatusCode::kBadFormat,
                  "COO row/col/val arrays have mismatched lengths");

  // Pass 1: per-entry filtering under the policy.
  std::vector<index_t> row, col;
  std::vector<T> val;
  row.reserve(in.row.size());
  col.reserve(in.col.size());
  val.reserve(in.val.size());
  for (std::size_t k = 0; k < in.val.size(); ++k) {
    const index_t r = in.row[k];
    const index_t c = in.col[k];
    if (r < 0 || r >= in.nrows || c < 0 || c >= in.ncols)
      return Status(StatusCode::kOutOfBounds,
                    "entry " + std::to_string(k) + " at (" +
                        std::to_string(r) + ", " + std::to_string(c) +
                        ") outside " + std::to_string(in.nrows) + " x " +
                        std::to_string(in.ncols));
    T v = in.val[k];
    if (!std::isfinite(static_cast<double>(v))) {
      switch (policy.nonfinite) {
        case SanitizePolicy::NonFinite::kReject:
          return Status(StatusCode::kNonFinite,
                        "non-finite value at (" + std::to_string(r) + ", " +
                            std::to_string(c) + ")",
                        r);
        case SanitizePolicy::NonFinite::kDrop:
          ++rep.nonfinite_repaired;
          continue;
        case SanitizePolicy::NonFinite::kZero:
          ++rep.nonfinite_repaired;
          v = T(0);
          break;
      }
    }
    if (policy.strip_upper && c > r) {
      ++rep.upper_dropped;
      continue;
    }
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }

  // Pass 2: stable sort by (row, col), then coalesce runs of equal keys.
  std::vector<std::size_t> order(val.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&row, &col](std::size_t a, std::size_t b) {
                     return row[a] != row[b] ? row[a] < row[b]
                                             : col[a] < col[b];
                   });

  Csr<T> result;
  result.nrows = in.nrows;
  result.ncols = in.ncols;
  result.row_ptr.assign(static_cast<std::size_t>(in.nrows) + 1, 0);
  result.col_idx.reserve(val.size());
  result.val.reserve(val.size());

  const bool square = in.nrows == in.ncols;
  const bool fill_diag = policy.fill_missing_diagonal && square;
  index_t cur_row = 0;
  bool cur_has_diag = false;

  auto close_rows_through = [&](index_t next_row) {
    // Finalise rows [cur_row, next_row): fill missing diagonals and record
    // row_ptr boundaries.
    for (; cur_row < next_row; ++cur_row) {
      if (fill_diag && !cur_has_diag) {
        result.col_idx.push_back(cur_row);
        result.val.push_back(static_cast<T>(policy.diag_fill));
        ++rep.diagonals_filled;
      }
      cur_has_diag = false;
      result.row_ptr[static_cast<std::size_t>(cur_row) + 1] =
          static_cast<offset_t>(result.val.size());
    }
  };

  for (std::size_t p = 0; p < order.size();) {
    const index_t r = row[order[p]];
    const index_t c = col[order[p]];
    T v = val[order[p]];
    std::size_t q = p + 1;
    while (q < order.size() && row[order[q]] == r && col[order[q]] == c) {
      if (!policy.coalesce_duplicates)
        return Status(StatusCode::kBadFormat,
                      "duplicate entry at (" + std::to_string(r) + ", " +
                          std::to_string(c) + ")");
      v += val[order[q]];
      ++rep.duplicates_coalesced;
      ++q;
    }
    p = q;
    if (policy.drop_explicit_zeros && v == T(0)) {
      ++rep.zeros_dropped;
      continue;
    }
    close_rows_through(r);
    // A filled diagonal must precede the sorted columns > r of its own row;
    // fill before appending the first entry past the diagonal.
    if (fill_diag && !cur_has_diag && c >= r) {
      if (c == r) {
        cur_has_diag = true;
      } else {
        result.col_idx.push_back(r);
        result.val.push_back(static_cast<T>(policy.diag_fill));
        ++rep.diagonals_filled;
        cur_has_diag = true;
      }
    }
    result.col_idx.push_back(c);
    result.val.push_back(v);
  }
  close_rows_through(in.nrows);

  *out = std::move(result);
  return Status::Ok();
}

#define BLOCKTRI_INSTANTIATE(T)                                        \
  template Status sanitize(const Coo<T>&, const SanitizePolicy&,       \
                           Csr<T>*, SanitizeReport*);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
