// Symmetric permutation P·A·Pᵀ — the structural core of the improved
// recursive block layout (§3.3): every triangular part is reordered by its
// level-set order, rows and columns together, so the matrix stays lower
// triangular and dependencies stay "behind" each component.
#pragma once

#include "sparse/formats.hpp"

namespace blocktri {

/// Applies the symmetric permutation described by `new_of_old`:
/// entry (i, j) of `a` lands at (new_of_old[i], new_of_old[j]).
/// Output rows/columns are sorted. O(nnz + n).
template <class T>
Csr<T> permute_symmetric(const Csr<T>& a, const std::vector<index_t>& new_of_old);

/// Permutes a dense vector to match permute_symmetric:
/// out[new_of_old[i]] = v[i].
template <class T>
std::vector<T> permute_vector(const std::vector<T>& v,
                              const std::vector<index_t>& new_of_old);

/// Inverse of permute_vector: out[i] = v[new_of_old[i]].
template <class T>
std::vector<T> unpermute_vector(const std::vector<T>& v,
                                const std::vector<index_t>& new_of_old);

}  // namespace blocktri
