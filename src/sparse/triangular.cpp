#include "sparse/triangular.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace blocktri {

template <class T>
Csr<T> lower_triangular_with_diag(const Csr<T>& a, T diag_fill) {
  BLOCKTRI_CHECK(a.nrows == a.ncols);
  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_ptr.reserve(static_cast<std::size_t>(a.nrows) + 1);
  out.row_ptr.push_back(0);
  for (index_t i = 0; i < a.nrows; ++i) {
    bool saw_diag = false;
    for (offset_t k = a.row_ptr[static_cast<std::size_t>(i)];
         k < a.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t c = a.col_idx[static_cast<std::size_t>(k)];
      if (c > i) break;  // columns sorted: the rest of the row is upper
      T v = a.val[static_cast<std::size_t>(k)];
      if (c == i) {
        saw_diag = true;
        if (v == T(0)) v = diag_fill;  // zero diagonal would be singular
      }
      out.col_idx.push_back(c);
      out.val.push_back(v);
    }
    if (!saw_diag) {
      out.col_idx.push_back(i);
      out.val.push_back(diag_fill);
    }
    out.row_ptr.push_back(static_cast<offset_t>(out.val.size()));
  }
  return out;
}

template <class T>
Status check_lower_triangular(const Csr<T>& a) {
  if (a.nrows != a.ncols)
    return Status(StatusCode::kInvalidArgument,
                  "matrix is not square: " + std::to_string(a.nrows) + " x " +
                      std::to_string(a.ncols));
  for (index_t i = 0; i < a.nrows; ++i) {
    const offset_t lo = a.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    if (lo == hi)
      return Status(StatusCode::kSingularRow,
                    "row " + std::to_string(i) +
                        " is empty: structurally singular",
                    i);
    // Sorted row: the diagonal, if present, is the last entry <= i; an entry
    // after it sits above the diagonal.
    const index_t last = a.col_idx[static_cast<std::size_t>(hi - 1)];
    if (last > i)
      return Status(StatusCode::kNotTriangular,
                    "row " + std::to_string(i) + " has entry in column " +
                        std::to_string(last) + " above the diagonal",
                    i);
    if (last != i)
      return Status(StatusCode::kSingularRow,
                    "row " + std::to_string(i) +
                        " has no diagonal entry: structurally singular",
                    i);
    const T d = a.val[static_cast<std::size_t>(hi - 1)];
    if (!std::isfinite(static_cast<double>(d)))
      return Status(StatusCode::kNonFinite,
                    "diagonal of row " + std::to_string(i) + " is not finite",
                    i);
    if (d == T(0) || std::fabs(static_cast<double>(d)) <
                         static_cast<double>(std::numeric_limits<T>::min()))
      return Status(StatusCode::kZeroPivot,
                    "diagonal of row " + std::to_string(i) +
                        " is zero or subnormal",
                    i);
    for (offset_t k = lo; k < hi - 1; ++k)
      if (!std::isfinite(
              static_cast<double>(a.val[static_cast<std::size_t>(k)])))
        return Status(StatusCode::kNonFinite,
                      "row " + std::to_string(i) + ", column " +
                          std::to_string(
                              a.col_idx[static_cast<std::size_t>(k)]) +
                          " is not finite",
                      i);
  }
  return Status::Ok();
}

template <class T>
bool is_lower_triangular_nonsingular(const Csr<T>& a) {
  return check_lower_triangular(a).ok();
}

template <class T>
StrictLowerSplit<T> split_diagonal(const Csr<T>& lower) {
  BLOCKTRI_CHECK_MSG(is_lower_triangular_nonsingular(lower),
                     "split_diagonal requires a nonsingular lower triangle");
  StrictLowerSplit<T> out;
  out.diag.resize(static_cast<std::size_t>(lower.nrows));
  out.strict.nrows = lower.nrows;
  out.strict.ncols = lower.ncols;
  out.strict.row_ptr.reserve(static_cast<std::size_t>(lower.nrows) + 1);
  out.strict.row_ptr.push_back(0);
  for (index_t i = 0; i < lower.nrows; ++i) {
    const offset_t lo = lower.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = lower.row_ptr[static_cast<std::size_t>(i) + 1];
    for (offset_t k = lo; k < hi - 1; ++k) {
      out.strict.col_idx.push_back(lower.col_idx[static_cast<std::size_t>(k)]);
      out.strict.val.push_back(lower.val[static_cast<std::size_t>(k)]);
    }
    out.diag[static_cast<std::size_t>(i)] =
        lower.val[static_cast<std::size_t>(hi - 1)];
    out.strict.row_ptr.push_back(static_cast<offset_t>(out.strict.val.size()));
  }
  return out;
}

template <class T>
Csr<T> extract_block(const Csr<T>& a, index_t r0, index_t r1, index_t c0,
                     index_t c1) {
  BLOCKTRI_CHECK(0 <= r0 && r0 <= r1 && r1 <= a.nrows);
  BLOCKTRI_CHECK(0 <= c0 && c0 <= c1 && c1 <= a.ncols);
  Csr<T> out;
  out.nrows = r1 - r0;
  out.ncols = c1 - c0;
  out.row_ptr.reserve(static_cast<std::size_t>(out.nrows) + 1);
  out.row_ptr.push_back(0);
  for (index_t i = r0; i < r1; ++i) {
    const offset_t lo = a.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    // Binary search the sorted row for the [c0, c1) window.
    const auto* base = a.col_idx.data();
    const auto* first = std::lower_bound(base + lo, base + hi, c0);
    const auto* last = std::lower_bound(first, base + hi, c1);
    for (const auto* p = first; p != last; ++p) {
      const auto k = static_cast<std::size_t>(p - base);
      out.col_idx.push_back(*p - c0);
      out.val.push_back(a.val[k]);
    }
    out.row_ptr.push_back(static_cast<offset_t>(out.val.size()));
  }
  return out;
}

template <class T>
offset_t count_block_nnz(const Csr<T>& a, index_t r0, index_t r1, index_t c0,
                         index_t c1) {
  BLOCKTRI_CHECK(0 <= r0 && r0 <= r1 && r1 <= a.nrows);
  BLOCKTRI_CHECK(0 <= c0 && c0 <= c1 && c1 <= a.ncols);
  offset_t total = 0;
  for (index_t i = r0; i < r1; ++i) {
    const offset_t lo = a.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    const auto* base = a.col_idx.data();
    const auto* first = std::lower_bound(base + lo, base + hi, c0);
    const auto* last = std::lower_bound(first, base + hi, c1);
    total += static_cast<offset_t>(last - first);
  }
  return total;
}

#define BLOCKTRI_INSTANTIATE(T)                                              \
  template Csr<T> lower_triangular_with_diag(const Csr<T>&, T);              \
  template Status check_lower_triangular(const Csr<T>&);                     \
  template bool is_lower_triangular_nonsingular(const Csr<T>&);              \
  template StrictLowerSplit<T> split_diagonal(const Csr<T>&);                \
  template Csr<T> extract_block(const Csr<T>&, index_t, index_t, index_t,    \
                                index_t);                                    \
  template offset_t count_block_nnz(const Csr<T>&, index_t, index_t,         \
                                    index_t, index_t);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
