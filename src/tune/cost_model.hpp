// Per-host calibrated kernel cost model — the measured replacement for the
// paper's offline-fitted constants (ROADMAP item 2, DESIGN.md §13).
//
// The adaptive selector of §3.4 keys fixed thresholds (nnz/row, nlevels,
// emptyratio) that were fitted to the authors' GPUs. This module instead
// *measures* each kernel's cost curve on the configured device model: a
// calibration microbench runs every SpTRSV kernel (completely-parallel,
// level-set, sync-free, cuSPARSE-like) and every SpMV kernel (scalar/vector ×
// CSR/DCSR) through the execution simulator over synthetic blocks from
// src/gen spanning the structural axes that matter (level count, row length,
// empty ratio, density), then least-squares-fits an affine model
//
//   cost_ns ≈ setup + per_row·rows + per_nnz·nnz + per_level·nlevels
//
// per kernel. Every sample is cross-checked against the exact collect_stats
// flop counters (2·nnz per block) so a drifting simulator invalidates the
// model instead of silently mis-tuning. A host microbench additionally picks
// the level-merge width that minimises real wall-clock on deep chains.
//
// Calibration is paid once per device description: models are cached
// in-process (keyed by the device fingerprint) and optionally on disk in a
// versioned, CRC-checked ".btcm" file.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "common/types.hpp"
#include "core/adaptive.hpp"
#include "sim/machine.hpp"
#include "spmv/kernels.hpp"
#include "sptrsv/levelset.hpp"

namespace blocktri::tune {

/// Bumped whenever the model form or the calibration protocol changes; a
/// cached model with a different version is discarded and refitted.
inline constexpr std::uint32_t kCostModelVersion = 1;

/// One kernel's fitted affine cost curve (nanoseconds). `per_level_ns` is
/// meaningful for the SpTRSV kernels (per-level barrier/launch cost) and
/// fitted to ~0 for the single-launch ones; SpMV kernels do not use it.
struct KernelCost {
  double setup_ns = 0.0;
  double per_row_ns = 0.0;
  double per_nnz_ns = 0.0;
  double per_level_ns = 0.0;
};

struct CostModel {
  std::uint32_t version = kCostModelVersion;
  std::uint64_t device = 0;  // device_fingerprint of the calibrated GpuSpec
  KernelCost tri[4];         // indexed by static_cast<int>(TriKernelKind)
  KernelCost sq[4];          // indexed by static_cast<int>(SpmvKernelKind)
  /// Host-measured level-merge width (the LevelSetSolver execution-group
  /// bound) that minimised wall-clock on a deep serial chain.
  offset_t preferred_merge_width = kLevelMergeMaxWidth;
  /// False when the flops cross-check against the collect_stats counters
  /// failed or a fit degenerated — the plan search then keeps the paper's
  /// Alg. 7 heuristics for kernel choice and only searches the partition.
  bool valid = false;

  /// Predicted solve cost of one triangular leaf under kernel `k`.
  double predict_tri(TriKernelKind k, index_t rows, offset_t nnz,
                     index_t nlevels) const;

  /// Predicted update cost of one square block under kernel `k`.
  /// `stored_rows` is the number of rows the kernel iterates: all rows for
  /// the CSR kinds, only the non-empty rows for the DCSR kinds.
  double predict_square(SpmvKernelKind k, index_t stored_rows,
                        offset_t nnz) const;
};

/// Order-dependent hash of every GpuSpec field that affects simulated cost.
/// Two specs with the same fingerprint produce identical simulated timings,
/// so they can share a calibrated model.
std::uint64_t device_fingerprint(const sim::GpuSpec& gpu);

/// Runs the full calibration microbench against `gpu` and fits the model.
/// Deterministic in `gpu` (all synthetic blocks are seeded).
CostModel calibrate_cost_model(const sim::GpuSpec& gpu);

/// Versioned CRC-checked cost-model file ("BTCM"). Atomic write (tmp +
/// rename), same durability contract as the .btpa artifacts.
Status save_cost_model(const std::string& path, const CostModel& m);

/// Typed failures: kBadFormat / kChecksumMismatch / kVersionMismatch /
/// kTruncated / kIoError, mirroring the artifact reader.
Status load_cost_model(const std::string& path, CostModel* out);

/// The "fit once per host" entry point: returns a model for `gpu` from the
/// in-process cache, else from `path` (when non-empty and the file matches
/// this device and version), else calibrates — and then persists to `path`
/// (best effort) and caches in-process. The returned reference stays valid
/// for the life of the process. Thread-safe.
const CostModel& ensure_cost_model(const sim::GpuSpec& gpu,
                                   const std::string& path = "");

/// Process-wide count of calibrate_cost_model runs (atomic) — the
/// "calibration is paid once per host" contract is asserted by diffing this
/// counter around warm ensure_cost_model calls.
std::uint64_t calibration_run_count();

}  // namespace blocktri::tune
