// Cost-model-driven plan search for the recursive scheme (DESIGN.md §13).
//
// The search space is the set of *cuts* of a deeper-than-default recursion
// tree: plan_recursive's tree is pure midpoint arithmetic, and its §3.3
// reordering permutes the whole matrix once per depth, so any antichain of
// leaves of a deeper tree — under that tree's permutation, with the in-order
// square interleaving — is a correct plan. The tuner therefore:
//
//   1. builds the default plan D (the paper's stop rule) and a maximal plan M
//      (stop rule tightened ~8×, a few extra depths),
//   2. runs a greedy bottom-up DP over M's tree with the calibrated CostModel
//      choosing split-vs-leaf and the per-block kernel at each node,
//   3. refines with bounded simulated annealing (SET's PartEngine/sa.h
//      style): collapse/expand moves on the cut plus kernel flips, scored by
//      the exact execution-simulator oracle — the same fresh-cache,
//      warm-pass-then-measure protocol solve_simulated and the fig6 bench
//      use, with per-(block, kernel) sub-solvers memoized across candidates,
//   4. picks the oracle-argmin among {D with the paper's Alg. 7 kernels,
//      D with model-chosen kernels, the annealed cut}. D-with-heuristics wins
//      ties, so a tuned solver is never worse than the default under the
//      oracle, and falling back reproduces today's plan bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/adaptive.hpp"
#include "core/plan.hpp"
#include "sim/machine.hpp"
#include "sparse/formats.hpp"
#include "spmv/kernels.hpp"
#include "sptrsv/levelset.hpp"
#include "tune/cost_model.hpp"

namespace blocktri::tune {

struct TuneOptions {
  /// Master switch (Options::tune.enabled). Off = the planner and adaptive
  /// selector run exactly as today; plans are byte-for-byte unchanged.
  bool enabled = false;
  /// Device model the oracle scores candidates on — must match the device
  /// the solve will be simulated/executed against for the tuning to help.
  sim::GpuSpec gpu = sim::titan_rtx();
  /// On-disk cost-model cache (.btcm); empty = in-process cache only.
  std::string model_path;
  /// Simulated-annealing budget (moves). 0 disables the refinement pass and
  /// keeps the greedy model-driven cut.
  int sa_iterations = 24;
  /// Seed of the annealer's deterministic Rng.
  std::uint64_t seed = 0x73612d736565ULL;
  /// Let the search price a BlockScheme::kHbmc candidate (DESIGN.md §16)
  /// when the matrix's level depth clears the depth-vs-colors gate
  /// (ThresholdTable::hbmc_depth_per_color); the oracle then decides whether
  /// its fixed sync-step count beats every recursive candidate.
  bool consider_hbmc = true;
};

struct TuneStats {
  /// True when the default plan with the paper's heuristics won the final
  /// comparison — the tuned solver is then bitwise identical to an untuned
  /// one (modulo the host-only level-merge width).
  bool fell_back = false;
  double model_default_ns = 0.0;  // CostModel prediction of the default plan
  double model_tuned_ns = 0.0;    // CostModel prediction of the chosen plan
  double oracle_default_ns = 0.0; // exact-sim time of the default plan
  double oracle_tuned_ns = 0.0;   // exact-sim time of the chosen plan
  int sa_moves = 0;
  int sa_accepted = 0;
  offset_t merge_width = kLevelMergeMaxWidth;
};

/// Everything BlockSolver's cold constructor needs to adopt a tuned plan
/// without re-deriving any of it: the plan, the permuted matrix it was built
/// against, and the per-block kernel decisions (with the features the solver
/// would otherwise recompute).
template <class T>
struct TunedPlan {
  BlockPlan plan;
  Csr<T> stored;  // lower permuted by plan.new_of_old
  std::vector<TriKernelKind> tri_kinds;      // per tri leaf, plan order
  std::vector<index_t> tri_nlevels;          // level count of each tri leaf
  std::vector<SpmvKernelKind> square_kinds;  // per square, plan order
  std::vector<double> square_empty_ratio;
  offset_t merge_width = kLevelMergeMaxWidth;
  TuneStats stats;
};

/// Process-wide count of autotune_recursive runs (atomic) — the "tuning is
/// paid once per matrix" contract is asserted by diffing this counter around
/// warm create_from_file / PlanCache paths.
std::uint64_t tuning_run_count();

/// Tunes a recursive-scheme plan for `lower`. Deterministic in (matrix,
/// planner, thresholds, model, topt). `pool` parallelises the planner's
/// per-depth level analyses, exactly as in the untuned path.
template <class T>
TunedPlan<T> autotune_recursive(const Csr<T>& lower,
                                const PlannerOptions& planner,
                                const ThresholdTable& thresholds,
                                const CostModel& model,
                                const TuneOptions& topt,
                                ThreadPool* pool = nullptr);

}  // namespace blocktri::tune
