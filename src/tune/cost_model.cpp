#include "tune/cost_model.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

#include "analysis/features.hpp"
#include "analysis/levels.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "gen/generators.hpp"
#include "sim/cache.hpp"
#include "sim/kernel_sim.hpp"
#include "sim/report.hpp"
#include "sparse/convert.hpp"
#include "sparse/triangular.hpp"
#include "sptrsv/cusparse_like.hpp"
#include "sptrsv/diagonal.hpp"
#include "sptrsv/sim_ctx.hpp"
#include "sptrsv/syncfree.hpp"

namespace blocktri::tune {

namespace {

std::atomic<std::uint64_t> g_calibration_runs{0};

// ---------------------------------------------------------------------------
// Least squares.

/// One calibration observation: `feat[0..k)` regressors, `ns` the measured
/// simulated time.
struct Sample {
  double feat[4] = {0, 0, 0, 0};
  double ns = 0.0;
};

/// Fits ns ≈ Σ c_j·feat_j by normal equations (tiny ridge term keeps
/// rank-deficient designs solvable); negative coefficients are clamped to
/// zero — the model is a monotone cost surrogate, not an interpolant.
/// Returns false when the system is degenerate even with the ridge.
bool fit_affine(const std::vector<Sample>& samples, int k, double* coeff) {
  double ata[4][4] = {};
  double aty[4] = {};
  for (const Sample& s : samples) {
    for (int i = 0; i < k; ++i) {
      aty[i] += s.feat[i] * s.ns;
      for (int j = 0; j < k; ++j) ata[i][j] += s.feat[i] * s.feat[j];
    }
  }
  double ridge = 0.0;
  for (int i = 0; i < k; ++i) ridge = std::max(ridge, ata[i][i]);
  ridge = ridge > 0.0 ? ridge * 1e-10 : 1e-10;
  for (int i = 0; i < k; ++i) ata[i][i] += ridge;

  // Gaussian elimination with partial pivoting on the k×k system.
  int piv[4] = {0, 1, 2, 3};
  for (int col = 0; col < k; ++col) {
    int best = col;
    for (int r = col + 1; r < k; ++r)
      if (std::fabs(ata[piv[r]][col]) > std::fabs(ata[piv[best]][col]))
        best = r;
    std::swap(piv[col], piv[best]);
    const double p = ata[piv[col]][col];
    if (!(std::fabs(p) > 0.0) || !std::isfinite(p)) return false;
    for (int r = col + 1; r < k; ++r) {
      const double f = ata[piv[r]][col] / p;
      for (int c = col; c < k; ++c) ata[piv[r]][c] -= f * ata[piv[col]][c];
      aty[piv[r]] -= f * aty[piv[col]];
    }
  }
  for (int col = k - 1; col >= 0; --col) {
    double acc = aty[piv[col]];
    for (int c = col + 1; c < k; ++c) acc -= ata[piv[col]][c] * coeff[c];
    coeff[col] = acc / ata[piv[col]][col];
    if (!std::isfinite(coeff[col])) return false;
  }
  for (int c = 0; c < k; ++c) coeff[c] = std::max(0.0, coeff[c]);
  return true;
}

// ---------------------------------------------------------------------------
// Simulated measurements. The protocol matches measure_block /
// solve_simulated: fresh cache per kernel-kind measurement, one warm pass,
// then the measured pass — so the model predicts exactly the quantity the
// plan search's oracle (and the fig6 bench) scores.

struct TriSample {
  Csr<double> a;
  index_t nlevels = 0;
  bool diagonal_only = false;
};

/// Simulated ns of solving `s.a` with kernel `kind`; also flop-checks the
/// measured report against the collect_stats accounting (2·nnz per block).
/// Returns a negative value when the kernel is inapplicable.
double measure_tri(TriKernelKind kind, const TriSample& s,
                   const sim::GpuSpec& gpu, bool* flops_ok) {
  const index_t n = s.a.nrows;
  if (kind == TriKernelKind::kCompletelyParallel && !s.diagonal_only)
    return -1.0;

  sim::AddressSpace as;
  const auto n_u = static_cast<std::uint64_t>(n);
  const std::uint64_t x_base = as.reserve(n_u * sizeof(double));
  const std::uint64_t b_base = as.reserve(n_u * sizeof(double));
  const std::uint64_t aux_base = as.reserve(n_u * (sizeof(double) + 4));
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);

  std::vector<double> b(static_cast<std::size_t>(n), 1.0);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);

  auto run = [&](sim::SolveReport* rep) {
    TrsvSim ts{&gpu, &cache, true, x_base, b_base, aux_base, rep};
    switch (kind) {
      case TriKernelKind::kCompletelyParallel: {
        StrictLowerSplit<double> split = split_diagonal(s.a);
        const DiagonalSolver<double> solver(std::move(split.diag));
        solver.solve(b.data(), x.data(), &ts);
        break;
      }
      case TriKernelKind::kLevelSet: {
        const LevelSetSolver<double> solver(s.a);
        solver.solve(b.data(), x.data(), &ts);
        break;
      }
      case TriKernelKind::kSyncFree: {
        const SyncFreeSolver<double> solver(s.a);
        solver.solve(b.data(), x.data(), &ts);
        break;
      }
      case TriKernelKind::kCusparseLike: {
        const CusparseLikeSolver<double> solver(s.a);
        solver.solve(b.data(), x.data(), &ts);
        break;
      }
    }
  };

  sim::SolveReport warm;
  run(&warm);
  sim::SolveReport rep;
  run(&rep);
  if (rep.flops != 2 * s.a.nnz()) *flops_ok = false;
  return rep.ns;
}

/// Deterministic square/rectangular SpMV calibration block: `rows`×`rows`,
/// a (1-empty_ratio) fraction of rows populated with ~nnz_per_row entries.
Csr<double> make_square_block(index_t rows, double nnz_per_row,
                              double empty_ratio, std::uint64_t seed) {
  Rng rng(seed);
  Csr<double> a;
  a.nrows = rows;
  a.ncols = rows;
  a.row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (index_t i = 0; i < rows; ++i) {
    a.row_ptr[static_cast<std::size_t>(i)] =
        static_cast<offset_t>(a.col_idx.size());
    if (rng.uniform() < empty_ratio) continue;
    const auto want = static_cast<index_t>(std::max<std::int64_t>(
        1, rng.uniform_int(1, std::max<std::int64_t>(
                                  1, 2 * static_cast<std::int64_t>(
                                             nnz_per_row) - 1))));
    std::vector<index_t> cols;
    cols.reserve(static_cast<std::size_t>(want));
    for (index_t k = 0; k < want; ++k)
      cols.push_back(static_cast<index_t>(rng.uniform_int(0, rows - 1)));
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    for (index_t c : cols) {
      a.col_idx.push_back(c);
      a.val.push_back(rng.uniform(-1.0, 1.0));
    }
  }
  a.row_ptr[static_cast<std::size_t>(rows)] =
      static_cast<offset_t>(a.col_idx.size());
  return a;
}

/// Simulated ns of one y ← y − A·x launch with kernel `kind` (launch
/// overhead included — this is the quantity solve_simulated charges per
/// square step). DCSR kinds run the native DCSR kernels, like the executor.
double measure_square(SpmvKernelKind kind, const Csr<double>& a,
                      const Dcsr<double>& d, const sim::GpuSpec& gpu,
                      bool* flops_ok) {
  sim::AddressSpace as;
  const std::uint64_t x_base =
      as.reserve(static_cast<std::uint64_t>(a.ncols) * sizeof(double));
  const std::uint64_t y_base =
      as.reserve(static_cast<std::uint64_t>(a.nrows) * sizeof(double));
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);

  std::vector<double> x(static_cast<std::size_t>(a.ncols), 1.0);
  std::vector<double> y(static_cast<std::size_t>(a.nrows), 0.0);

  sim::KernelSim ks(gpu, &cache, true);
  SpmvSim s{&ks, x_base, y_base};
  auto run = [&] {
    switch (kind) {
      case SpmvKernelKind::kScalarCsr:
        spmv_scalar_csr(a, x.data(), y.data(), &s);
        break;
      case SpmvKernelKind::kVectorCsr:
        spmv_vector_csr(a, x.data(), y.data(), &s);
        break;
      case SpmvKernelKind::kScalarDcsr:
        spmv_scalar_dcsr(d, x.data(), y.data(), &s);
        break;
      case SpmvKernelKind::kVectorDcsr:
        spmv_vector_dcsr(d, x.data(), y.data(), &s);
        break;
    }
    return ks.finish();
  };
  run();  // warm (finish() clears tasks, keeps the shared cache state)
  const sim::KernelReport kr = run();
  if (kr.flops != 2 * a.nnz()) *flops_ok = false;
  return gpu.kernel_launch_ns + kr.ns;
}

/// Host wall-clock pick of the level-merge width: a deep near-serial chain
/// (where merging is the whole game) solved at each candidate width, warmup +
/// min-of-N. Scanning order puts the compiled-in default first so it wins
/// ties.
offset_t pick_merge_width() {
  const Csr<double> a = gen::chain_banded(4096, 8, 1.0, 0x6d657267ULL);
  const std::vector<double> b = gen::random_rhs<double>(a.nrows, 7);
  std::vector<double> x(static_cast<std::size_t>(a.nrows), 0.0);
  const offset_t widths[] = {kLevelMergeMaxWidth, 1, 4, 8, 32, 64};
  offset_t best_w = kLevelMergeMaxWidth;
  double best_ms = -1.0;
  for (offset_t w : widths) {
    const LevelSetSolver<double> solver(a, nullptr, w);
    for (int i = 0; i < 2; ++i) solver.solve(b.data(), x.data());
    double ms = -1.0;
    for (int i = 0; i < 5; ++i) {
      Stopwatch sw;
      solver.solve(b.data(), x.data());
      const double t = sw.milliseconds();
      if (ms < 0.0 || t < ms) ms = t;
    }
    if (best_ms < 0.0 || ms < best_ms) {
      best_ms = ms;
      best_w = w;
    }
  }
  return best_w;
}

// ---------------------------------------------------------------------------
// BTCM file codec (local framing + CRC, mirroring the .btpa conventions).

constexpr char kMagic[4] = {'B', 'T', 'C', 'M'};
constexpr std::uint32_t kEndianMark = 0x01020304u;

std::uint32_t crc32(const unsigned char* p, std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

template <class V>
void put(std::vector<unsigned char>& buf, V v) {
  unsigned char raw[sizeof(V)];
  std::memcpy(raw, &v, sizeof(V));
  buf.insert(buf.end(), raw, raw + sizeof(V));
}

template <class V>
bool get(const std::vector<unsigned char>& buf, std::size_t* pos, V* v) {
  if (*pos + sizeof(V) > buf.size()) return false;
  std::memcpy(v, buf.data() + *pos, sizeof(V));
  *pos += sizeof(V);
  return true;
}

void put_cost(std::vector<unsigned char>& buf, const KernelCost& c) {
  put(buf, c.setup_ns);
  put(buf, c.per_row_ns);
  put(buf, c.per_nnz_ns);
  put(buf, c.per_level_ns);
}

bool get_cost(const std::vector<unsigned char>& buf, std::size_t* pos,
              KernelCost* c) {
  return get(buf, pos, &c->setup_ns) && get(buf, pos, &c->per_row_ns) &&
         get(buf, pos, &c->per_nnz_ns) && get(buf, pos, &c->per_level_ns);
}

}  // namespace

std::uint64_t calibration_run_count() {
  return g_calibration_runs.load(std::memory_order_relaxed);
}

double CostModel::predict_tri(TriKernelKind k, index_t rows, offset_t nnz,
                              index_t nlevels) const {
  const KernelCost& c = tri[static_cast<int>(k)];
  return c.setup_ns + c.per_row_ns * static_cast<double>(rows) +
         c.per_nnz_ns * static_cast<double>(nnz) +
         c.per_level_ns * static_cast<double>(nlevels);
}

double CostModel::predict_square(SpmvKernelKind k, index_t stored_rows,
                                 offset_t nnz) const {
  const KernelCost& c = sq[static_cast<int>(k)];
  return c.setup_ns + c.per_row_ns * static_cast<double>(stored_rows) +
         c.per_nnz_ns * static_cast<double>(nnz);
}

std::uint64_t device_fingerprint(const sim::GpuSpec& gpu) {
  const auto f64 = [](double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };
  std::uint64_t h = 0x6274636d76303101ULL;  // "btcmv01" | fingerprint version
  h = hash_combine(h, static_cast<std::uint64_t>(gpu.num_sms));
  h = hash_combine(h, static_cast<std::uint64_t>(gpu.cores_per_sm));
  h = hash_combine(h, static_cast<std::uint64_t>(gpu.warp_size));
  h = hash_combine(h, static_cast<std::uint64_t>(gpu.max_warps_per_sm));
  h = hash_combine(h, f64(gpu.clock_ghz));
  h = hash_combine(h, f64(gpu.mem_bandwidth_gbps));
  h = hash_combine(h, f64(gpu.fp32_flops_per_core_per_cycle));
  h = hash_combine(h, f64(gpu.fp64_rate));
  h = hash_combine(h, f64(gpu.dram_latency_ns));
  h = hash_combine(h, f64(gpu.cache_hit_latency_ns));
  h = hash_combine(h, f64(gpu.atomic_op_ns));
  h = hash_combine(h, f64(gpu.atomic_rmw_ns));
  h = hash_combine(h, f64(gpu.atomic_propagate_ns));
  h = hash_combine(h, f64(gpu.spin_poll_ns));
  h = hash_combine(h, f64(gpu.kernel_launch_ns));
  h = hash_combine(h, f64(gpu.grid_sync_ns));
  h = hash_combine(h, f64(gpu.warp_start_ns));
  h = hash_combine(h, f64(gpu.divide_ns));
  h = hash_combine(h, f64(gpu.shuffle_reduce_ns));
  h = hash_combine(h, static_cast<std::uint64_t>(gpu.cache_bytes));
  h = hash_combine(h, static_cast<std::uint64_t>(gpu.cache_line_bytes));
  h = hash_combine(h, static_cast<std::uint64_t>(gpu.cache_assoc));
  return h;
}

CostModel calibrate_cost_model(const sim::GpuSpec& gpu) {
  g_calibration_runs.fetch_add(1, std::memory_order_relaxed);
  CostModel m;
  m.device = device_fingerprint(gpu);

  // --- Triangular kernels: synthetic blocks spanning the level-count /
  // row-length axes of Fig. 5a. Sizes are deliberately modest: the samples
  // only need to spread the regressors, and calibration also runs under the
  // sanitizer CI lanes.
  std::vector<TriSample> tri_samples;
  auto add_tri = [&](Csr<double> a) {
    TriSample s;
    const LevelSets ls = compute_level_sets(a);
    s.nlevels = ls.nlevels;
    s.diagonal_only = a.nnz() == static_cast<offset_t>(a.nrows);
    s.a = std::move(a);
    tri_samples.push_back(std::move(s));
  };
  std::uint64_t seed = 0x63616c6962ULL;  // "calib"
  for (index_t n : {256, 1024, 4096}) add_tri(gen::diagonal(n, ++seed));
  for (index_t n : {512, 2048})
    for (index_t lv : {4, 16, 128})
      for (double deg : {2.0, 6.0})
        add_tri(gen::random_levels(n, lv, deg, 1.0, ++seed));
  for (index_t n : {512, 2048}) add_tri(gen::chain_banded(n, 8, 1.0, ++seed));
  add_tri(gen::dense_lower(256, 0.25, ++seed));

  bool flops_ok = true;
  bool fits_ok = true;
  for (int k = 0; k < 4; ++k) {
    const auto kind = static_cast<TriKernelKind>(k);
    std::vector<Sample> obs;
    for (const TriSample& ts : tri_samples) {
      const double ns = measure_tri(kind, ts, gpu, &flops_ok);
      if (ns < 0.0) continue;
      Sample s;
      s.feat[0] = 1.0;
      s.feat[1] = static_cast<double>(ts.a.nrows);
      s.feat[2] = static_cast<double>(ts.a.nnz());
      s.feat[3] = static_cast<double>(ts.nlevels);
      s.ns = ns;
      obs.push_back(s);
    }
    double coeff[4] = {0, 0, 0, 0};
    // The diagonal kernel only ever sees nlevels == 1 blocks; its level term
    // is unidentifiable and folded into setup by the ridge.
    if (obs.empty() || !fit_affine(obs, 4, coeff)) fits_ok = false;
    m.tri[k] = {coeff[0], coeff[1], coeff[2], coeff[3]};
  }

  // --- SpMV kernels: blocks spanning the nnz/row × emptyratio plane of
  // Fig. 5b. stored_rows (the row count a kernel iterates) is the row
  // regressor: all rows for CSR, listed rows for DCSR.
  std::vector<Csr<double>> sq_blocks;
  for (index_t rows : {256, 1024})
    for (double npr : {2.0, 8.0, 24.0})
      for (double er : {0.0, 0.5, 0.9})
        sq_blocks.push_back(make_square_block(rows, npr, er, ++seed));

  for (int k = 0; k < 4; ++k) {
    const auto kind = static_cast<SpmvKernelKind>(k);
    const bool dcsr = kind == SpmvKernelKind::kScalarDcsr ||
                      kind == SpmvKernelKind::kVectorDcsr;
    std::vector<Sample> obs;
    for (const Csr<double>& a : sq_blocks) {
      if (a.nnz() == 0 && dcsr) continue;
      const Dcsr<double> d = csr_to_dcsr(a);
      const double ns = measure_square(kind, a, d, gpu, &flops_ok);
      Sample s;
      s.feat[0] = 1.0;
      s.feat[1] = static_cast<double>(dcsr ? d.nnz_rows() : a.nrows);
      s.feat[2] = static_cast<double>(a.nnz());
      s.ns = ns;
      obs.push_back(s);
    }
    double coeff[4] = {0, 0, 0, 0};
    if (obs.empty() || !fit_affine(obs, 3, coeff)) fits_ok = false;
    m.sq[k] = {coeff[0], coeff[1], coeff[2], 0.0};
  }

  m.preferred_merge_width = pick_merge_width();
  m.valid = flops_ok && fits_ok;
  return m;
}

Status save_cost_model(const std::string& path, const CostModel& m) {
  std::vector<unsigned char> payload;
  put(payload, m.version);
  put(payload, kEndianMark);
  put(payload, m.device);
  put(payload, static_cast<std::int64_t>(m.preferred_merge_width));
  put(payload, static_cast<std::uint32_t>(m.valid ? 1 : 0));
  for (int k = 0; k < 4; ++k) put_cost(payload, m.tri[k]);
  for (int k = 0; k < 4; ++k) put_cost(payload, m.sq[k]);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status(StatusCode::kIoError, "cannot open '" + tmp + "' for write");
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4;
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  const auto size = static_cast<std::uint64_t>(payload.size());
  ok = ok && std::fwrite(&crc, sizeof crc, 1, f) == 1;
  ok = ok && std::fwrite(&size, sizeof size, 1, f) == 1;
  ok = ok && std::fwrite(payload.data(), 1, payload.size(), f) ==
                 payload.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError, "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kIoError,
                  "cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::Ok();
}

Status load_cost_model(const std::string& path, CostModel* out) {
  BLOCKTRI_CHECK(out != nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status(StatusCode::kIoError, "cannot open '" + path + "'");
  char magic[4];
  std::uint32_t crc = 0;
  std::uint64_t size = 0;
  const bool header_ok = std::fread(magic, 1, 4, f) == 4 &&
                         std::fread(&crc, sizeof crc, 1, f) == 1 &&
                         std::fread(&size, sizeof size, 1, f) == 1;
  if (!header_ok) {
    std::fclose(f);
    return Status(StatusCode::kTruncated,
                  "'" + path + "' ends mid-header");
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    std::fclose(f);
    return Status(StatusCode::kBadFormat,
                  "'" + path + "' is not a cost-model file");
  }
  if (size > (1u << 20)) {
    std::fclose(f);
    return Status(StatusCode::kBadFormat,
                  "'" + path + "' declares an implausible payload size");
  }
  std::vector<unsigned char> payload(static_cast<std::size_t>(size));
  const bool body_ok =
      std::fread(payload.data(), 1, payload.size(), f) == payload.size();
  std::fclose(f);
  if (!body_ok)
    return Status(StatusCode::kTruncated, "'" + path + "' ends mid-payload");
  if (crc32(payload.data(), payload.size()) != crc)
    return Status(StatusCode::kChecksumMismatch,
                  "cost-model payload CRC mismatch in '" + path + "'");

  CostModel m;
  std::size_t pos = 0;
  std::uint32_t endian = 0, valid = 0;
  std::int64_t mw = 0;
  bool ok = get(payload, &pos, &m.version) && get(payload, &pos, &endian) &&
            get(payload, &pos, &m.device) && get(payload, &pos, &mw) &&
            get(payload, &pos, &valid);
  for (int k = 0; ok && k < 4; ++k) ok = get_cost(payload, &pos, &m.tri[k]);
  for (int k = 0; ok && k < 4; ++k) ok = get_cost(payload, &pos, &m.sq[k]);
  if (!ok)
    return Status(StatusCode::kTruncated, "'" + path + "' payload too short");
  if (endian != kEndianMark)
    return Status(StatusCode::kBadFormat,
                  "'" + path + "' was written on an incompatible platform");
  if (m.version != kCostModelVersion)
    return Status(StatusCode::kVersionMismatch,
                  "cost-model version " + std::to_string(m.version) +
                      " in '" + path + "', expected " +
                      std::to_string(kCostModelVersion));
  if (mw < 0)
    return Status(StatusCode::kBadFormat,
                  "'" + path + "' carries a negative merge width");
  m.preferred_merge_width = static_cast<offset_t>(mw);
  m.valid = valid != 0;
  *out = m;
  return Status::Ok();
}

const CostModel& ensure_cost_model(const sim::GpuSpec& gpu,
                                   const std::string& path) {
  static std::mutex mu;
  // std::map: node-based, so references stay valid across later insertions.
  static std::map<std::uint64_t, CostModel> models;
  const std::uint64_t key = device_fingerprint(gpu);
  std::lock_guard<std::mutex> lock(mu);
  auto it = models.find(key);
  if (it != models.end()) return it->second;

  CostModel m;
  bool loaded = false;
  if (!path.empty()) {
    CostModel disk;
    if (load_cost_model(path, &disk).ok() && disk.device == key) {
      m = disk;
      loaded = true;
    }
  }
  if (!loaded) {
    m = calibrate_cost_model(gpu);
    if (!path.empty()) save_cost_model(path, m);  // best effort
  }
  return models.emplace(key, std::move(m)).first->second;
}

}  // namespace blocktri::tune
