#include "tune/search.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <tuple>
#include <utility>

#include "analysis/features.hpp"
#include "analysis/levels.hpp"
#include "common/rng.hpp"
#include "order/hbmc.hpp"
#include "sim/cache.hpp"
#include "sim/kernel_sim.hpp"
#include "sim/report.hpp"
#include "sparse/convert.hpp"
#include "sparse/triangular.hpp"
#include "sptrsv/cusparse_like.hpp"
#include "sptrsv/diagonal.hpp"
#include "sptrsv/sim_ctx.hpp"
#include "sptrsv/syncfree.hpp"

namespace blocktri::tune {

namespace {

std::atomic<std::uint64_t> g_tuning_runs{0};

// ---------------------------------------------------------------------------
// The search tree: plan_recursive's midpoint arithmetic, rebuilt locally so
// cuts can be enumerated without re-running the planner. Node 0 is the root;
// children of internal nodes are built left before right, so an in-order walk
// visits leaf ranges in ascending row order.

struct Node {
  index_t r0 = 0, r1 = 0;
  index_t mid = 0;  // split point (internal nodes only)
  int depth = 0;
  int left = -1, right = -1;  // -1 = leaf of the maximal tree

  // Features of the diagonal block [r0,r1) on the deep plan's stored matrix.
  offset_t tri_nnz = 0;
  index_t nlevels = 0;
  bool diagonal_only = false;
  TriKernelKind heur_tri = TriKernelKind::kSyncFree;

  // Features of the square block rows [mid,r1) × cols [r0,mid) (internal
  // nodes only).
  offset_t sq_nnz = 0;
  index_t sq_stored_rows = 0;  // non-empty rows (the DCSR iteration count)
  double sq_empty_ratio = 0.0;
  SpmvKernelKind heur_sq = SpmvKernelKind::kScalarCsr;
};

int build_tree(std::vector<Node>& nodes, index_t r0, index_t r1, int depth,
               const PlannerOptions& opt) {
  const int id = static_cast<int>(nodes.size());
  nodes.push_back({});
  nodes[id].r0 = r0;
  nodes[id].r1 = r1;
  nodes[id].depth = depth;
  const index_t rows = r1 - r0;
  if (rows / 2 < opt.stop_rows || depth >= opt.max_depth) return id;
  const index_t mid = r0 + rows / 2;
  nodes[id].mid = mid;
  const int l = build_tree(nodes, r0, mid, depth + 1, opt);
  nodes[id].left = l;  // assign after: the recursive call may reallocate
  const int r = build_tree(nodes, mid, r1, depth + 1, opt);
  nodes[id].right = r;
  return id;
}

/// The paper's Alg. 7 selection with the solver's diagonal demotion guard —
/// the exact kind the untuned cold constructor would pick for this block.
TriKernelKind heuristic_tri(const TriangularFeatures& feat,
                            const ThresholdTable& th) {
  TriKernelKind kind = select_tri_kernel(feat, th);
  if (kind == TriKernelKind::kCompletelyParallel && feat.nlevels > 1)
    kind = TriKernelKind::kSyncFree;
  return kind;
}

bool tri_kind_valid(const Node& nd, TriKernelKind k) {
  return k != TriKernelKind::kCompletelyParallel || nd.diagonal_only;
}

bool is_dcsr(SpmvKernelKind k) {
  return k == SpmvKernelKind::kScalarDcsr || k == SpmvKernelKind::kVectorDcsr;
}

double model_tri_cost(const CostModel& m, const Node& nd, TriKernelKind k) {
  return m.predict_tri(k, nd.r1 - nd.r0, nd.tri_nnz, nd.nlevels);
}

double model_sq_cost(const CostModel& m, const Node& nd, SpmvKernelKind k,
                     double launch_ns) {
  if (nd.sq_nnz == 0) return launch_ns;  // the sim still charges the launch
  const index_t rows =
      is_dcsr(k) ? nd.sq_stored_rows : nd.r1 - nd.mid;
  return m.predict_square(k, rows, nd.sq_nnz);
}

TriKernelKind model_best_tri(const CostModel& m, const Node& nd) {
  TriKernelKind best = nd.heur_tri;
  double best_c = model_tri_cost(m, nd, best);
  for (int k = 0; k < 4; ++k) {
    const auto kind = static_cast<TriKernelKind>(k);
    if (!tri_kind_valid(nd, kind)) continue;
    const double c = model_tri_cost(m, nd, kind);
    if (c < best_c) {
      best_c = c;
      best = kind;
    }
  }
  return best;
}

SpmvKernelKind model_best_sq(const CostModel& m, const Node& nd,
                             double launch_ns) {
  if (nd.sq_nnz == 0) return SpmvKernelKind::kScalarCsr;
  SpmvKernelKind best = nd.heur_sq;
  double best_c = model_sq_cost(m, nd, best, launch_ns);
  for (int k = 0; k < 4; ++k) {
    const auto kind = static_cast<SpmvKernelKind>(k);
    const double c = model_sq_cost(m, nd, kind, launch_ns);
    if (c < best_c) {
      best_c = c;
      best = kind;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// Oracle: exact replication of BlockSolver::solve_simulated — same address
// layout, same per-step TrsvSim/KernelSim construction, same
// launch-per-square accounting (including empty squares), one warm pass then
// the measured pass against a fresh cache. Sub-solvers are memoized per
// (block range, kernel) so an annealing move only pays for the blocks it
// exposed.

template <class T>
struct TriEntry {
  std::unique_ptr<DiagonalSolver<T>> diag;
  std::unique_ptr<LevelSetSolver<T>> levelset;
  std::unique_ptr<SyncFreeSolver<T>> syncfree;
  std::unique_ptr<CusparseLikeSolver<T>> cusparse;
};

template <class T>
struct SqEntry {
  Csr<T> csr;
  Dcsr<T> dcsr;
};

/// One step of a candidate plan, resolved to global ranges + kernel choice.
struct SimStep {
  bool tri = false;
  index_t r0 = 0, r1 = 0;  // tri: diagonal range; square: row range
  index_t c0 = 0, c1 = 0;  // square: column range
  int kind = 0;            // TriKernelKind or SpmvKernelKind
};

template <class T>
class OracleContext {
 public:
  OracleContext(const Csr<T>* stored, ThreadPool* pool)
      : stored_(stored), pool_(pool) {}

  const TriEntry<T>& tri(index_t r0, index_t r1, TriKernelKind kind) {
    const auto key = std::make_tuple(r0, r1, static_cast<int>(kind));
    auto it = tri_.find(key);
    if (it != tri_.end()) return it->second;
    Csr<T> blk = extract_block(*stored_, r0, r1, r0, r1);
    TriEntry<T> e;
    switch (kind) {
      case TriKernelKind::kCompletelyParallel: {
        StrictLowerSplit<T> split = split_diagonal(blk);
        BLOCKTRI_CHECK(split.strict.nnz() == 0);
        e.diag = std::make_unique<DiagonalSolver<T>>(std::move(split.diag));
        break;
      }
      case TriKernelKind::kLevelSet:
        e.levelset =
            std::make_unique<LevelSetSolver<T>>(std::move(blk), pool_);
        break;
      case TriKernelKind::kSyncFree:
        e.syncfree = std::make_unique<SyncFreeSolver<T>>(blk, pool_);
        break;
      case TriKernelKind::kCusparseLike:
        e.cusparse = std::make_unique<CusparseLikeSolver<T>>(std::move(blk));
        break;
    }
    return tri_.emplace(key, std::move(e)).first->second;
  }

  const SqEntry<T>& sq(index_t r0, index_t r1, index_t c0, index_t c1,
                       SpmvKernelKind kind) {
    const auto key = std::make_tuple(r0, r1, c0, static_cast<int>(kind));
    auto it = sq_.find(key);
    if (it != sq_.end()) return it->second;
    Csr<T> blk = extract_block(*stored_, r0, r1, c0, c1);
    SqEntry<T> e;
    if (is_dcsr(kind) && blk.nnz() > 0)
      e.dcsr = csr_to_dcsr(blk);
    else
      e.csr = std::move(blk);
    return sq_.emplace(key, std::move(e)).first->second;
  }

 private:
  const Csr<T>* stored_;
  ThreadPool* pool_;
  std::map<std::tuple<index_t, index_t, int>, TriEntry<T>> tri_;
  std::map<std::tuple<index_t, index_t, index_t, int>, SqEntry<T>> sq_;
};

template <class T>
double simulate_candidate(OracleContext<T>& ctx,
                          const std::vector<SimStep>& steps, index_t n,
                          const sim::GpuSpec& gpu) {
  const int elem = static_cast<int>(sizeof(T));
  const bool fp64 = sizeof(T) == 8;
  sim::AddressSpace as;
  const auto n_u = static_cast<std::uint64_t>(n);
  const std::uint64_t x_base = as.reserve(n_u * sizeof(T));
  const std::uint64_t b_base = as.reserve(n_u * sizeof(T));
  const std::uint64_t aux_base = as.reserve(n_u * (sizeof(T) + 4));
  sim::CacheModel cache(gpu.cache_bytes, gpu.cache_line_bytes,
                        gpu.cache_assoc);

  std::vector<T> bw(static_cast<std::size_t>(n));
  std::vector<T> xw(static_cast<std::size_t>(n));
  double measured = 0.0;
  for (int pass = 0; pass < 2; ++pass) {
    std::fill(bw.begin(), bw.end(), T(1));
    std::fill(xw.begin(), xw.end(), T(0));
    sim::SolveReport rep;
    for (const SimStep& st : steps) {
      if (st.tri) {
        const auto kind = static_cast<TriKernelKind>(st.kind);
        const TriEntry<T>& e = ctx.tri(st.r0, st.r1, kind);
        TrsvSim ts;
        ts.gpu = &gpu;
        ts.cache = &cache;
        ts.fp64 = fp64;
        ts.x_base = x_base + static_cast<std::uint64_t>(st.r0) * elem;
        ts.b_base = b_base + static_cast<std::uint64_t>(st.r0) * elem;
        ts.aux_base =
            aux_base + static_cast<std::uint64_t>(st.r0) * (elem + 4);
        ts.report = &rep;
        const T* b = bw.data() + st.r0;
        T* x = xw.data() + st.r0;
        switch (kind) {
          case TriKernelKind::kCompletelyParallel:
            e.diag->solve(b, x, &ts);
            break;
          case TriKernelKind::kLevelSet:
            e.levelset->solve(b, x, &ts);
            break;
          case TriKernelKind::kSyncFree:
            e.syncfree->solve(b, x, &ts);
            break;
          case TriKernelKind::kCusparseLike:
            e.cusparse->solve(b, x, &ts);
            break;
        }
      } else {
        const auto kind = static_cast<SpmvKernelKind>(st.kind);
        const SqEntry<T>& e = ctx.sq(st.r0, st.r1, st.c0, st.c1, kind);
        sim::KernelSim ks(gpu, &cache, fp64);
        SpmvSim ss;
        ss.ks = &ks;
        ss.x_base = x_base + static_cast<std::uint64_t>(st.c0) * elem;
        ss.y_base = b_base + static_cast<std::uint64_t>(st.r0) * elem;
        const T* x = xw.data() + st.c0;
        T* y = bw.data() + st.r0;
        switch (kind) {
          case SpmvKernelKind::kScalarCsr:
            spmv_scalar_csr(e.csr, x, y, &ss);
            break;
          case SpmvKernelKind::kVectorCsr:
            spmv_vector_csr(e.csr, x, y, &ss);
            break;
          case SpmvKernelKind::kScalarDcsr:
            spmv_scalar_dcsr(e.dcsr, x, y, &ss);
            break;
          case SpmvKernelKind::kVectorDcsr:
            spmv_vector_dcsr(e.dcsr, x, y, &ss);
            break;
        }
        rep.add_kernel_launch(ks.finish(), gpu.kernel_launch_ns);
      }
    }
    measured = rep.ns;  // the second (cache-warm) pass survives the loop
  }
  return measured;
}

// ---------------------------------------------------------------------------
// Cut manipulation.

/// In-order walk of the cut: tri step per cut leaf, square step between the
/// halves of every internal node above the cut.
void cut_steps(const std::vector<Node>& nodes,
               const std::vector<char>& in_cut,
               const std::vector<TriKernelKind>& tri_kind,
               const std::vector<SpmvKernelKind>& sq_kind, int id,
               std::vector<SimStep>* out) {
  const Node& nd = nodes[static_cast<std::size_t>(id)];
  if (in_cut[static_cast<std::size_t>(id)]) {
    SimStep st;
    st.tri = true;
    st.r0 = nd.r0;
    st.r1 = nd.r1;
    st.kind = static_cast<int>(tri_kind[static_cast<std::size_t>(id)]);
    out->push_back(st);
    return;
  }
  cut_steps(nodes, in_cut, tri_kind, sq_kind, nd.left, out);
  SimStep st;
  st.tri = false;
  st.r0 = nd.mid;
  st.r1 = nd.r1;
  st.c0 = nd.r0;
  st.c1 = nd.mid;
  st.kind = static_cast<int>(sq_kind[static_cast<std::size_t>(id)]);
  out->push_back(st);
  cut_steps(nodes, in_cut, tri_kind, sq_kind, nd.right, out);
}

double model_steps_cost(const CostModel& m, const std::vector<Node>& nodes,
                        const std::vector<SimStep>& steps, double launch_ns) {
  // Only used for the reported model_*_ns stats; finds each step's node by
  // range (the node list is tiny).
  double total = 0.0;
  for (const SimStep& st : steps) {
    for (const Node& nd : nodes) {
      if (st.tri && nd.r0 == st.r0 && nd.r1 == st.r1) {
        total += model_tri_cost(m, nd, static_cast<TriKernelKind>(st.kind));
        break;
      }
      if (!st.tri && nd.left >= 0 && nd.mid == st.r0 && nd.r1 == st.r1 &&
          nd.r0 == st.c0) {
        total +=
            model_sq_cost(m, nd, static_cast<SpmvKernelKind>(st.kind),
                          launch_ns);
        break;
      }
    }
  }
  return total;
}

}  // namespace

std::uint64_t tuning_run_count() {
  return g_tuning_runs.load(std::memory_order_relaxed);
}

template <class T>
TunedPlan<T> autotune_recursive(const Csr<T>& lower,
                                const PlannerOptions& planner,
                                const ThresholdTable& thresholds,
                                const CostModel& model,
                                const TuneOptions& topt, ThreadPool* pool) {
  g_tuning_runs.fetch_add(1, std::memory_order_relaxed);
  const index_t n = lower.nrows;
  const double launch_ns = topt.gpu.kernel_launch_ns;

  TunedPlan<T> tp;
  tp.merge_width =
      model.valid ? model.preferred_merge_width : kLevelMergeMaxWidth;
  tp.stats.merge_width = tp.merge_width;

  // --- Candidate D: today's plan under today's heuristics. Computed first
  // and replicated exactly, so falling back reproduces the untuned solver
  // bit for bit.
  Csr<T> dstored;
  BlockPlan dplan = plan_recursive(lower, planner, &dstored, pool);

  std::vector<TriKernelKind> d_heur_tri, d_model_tri;
  std::vector<index_t> d_nlevels;
  std::vector<SpmvKernelKind> d_heur_sq, d_model_sq;
  std::vector<double> d_empty;
  for (index_t t = 0; t < dplan.num_tri_blocks(); ++t) {
    const index_t r0 = dplan.tri_bounds[static_cast<std::size_t>(t)];
    const index_t r1 = dplan.tri_bounds[static_cast<std::size_t>(t) + 1];
    const Csr<T> blk = extract_block(dstored, r0, r1, r0, r1);
    const TriangularFeatures feat = compute_triangular_features(blk);
    d_nlevels.push_back(feat.nlevels);
    d_heur_tri.push_back(heuristic_tri(feat, thresholds));
    if (model.valid) {
      Node nd;
      nd.r0 = r0;
      nd.r1 = r1;
      nd.tri_nnz = blk.nnz();
      nd.nlevels = feat.nlevels;
      nd.diagonal_only = feat.base.diagonal_only;
      nd.heur_tri = d_heur_tri.back();
      d_model_tri.push_back(model_best_tri(model, nd));
    } else {
      d_model_tri.push_back(d_heur_tri.back());
    }
  }
  for (const SquareBlockRef& ref : dplan.squares) {
    const Csr<T> blk = extract_block(dstored, ref.r0, ref.r1, ref.c0, ref.c1);
    if (blk.nnz() == 0) {
      d_heur_sq.push_back(SpmvKernelKind::kScalarCsr);
      d_model_sq.push_back(SpmvKernelKind::kScalarCsr);
      d_empty.push_back(ref.r1 > ref.r0 ? 1.0 : 0.0);
      continue;
    }
    const MatrixFeatures feat = compute_features(blk);
    d_heur_sq.push_back(select_square_kernel(feat, thresholds));
    d_empty.push_back(feat.empty_ratio);
    if (model.valid) {
      Node nd;
      nd.r0 = ref.c0;
      nd.mid = ref.r0;
      nd.r1 = ref.r1;
      nd.left = 0;  // mark internal so model_sq_cost sees a square
      nd.sq_nnz = blk.nnz();
      nd.sq_stored_rows = static_cast<index_t>(
          std::lround((1.0 - feat.empty_ratio) *
                      static_cast<double>(ref.r1 - ref.r0)));
      nd.heur_sq = d_heur_sq.back();
      d_model_sq.push_back(model_best_sq(model, nd, launch_ns));
    } else {
      d_model_sq.push_back(d_heur_sq.back());
    }
  }

  auto d_steps = [&](const std::vector<TriKernelKind>& tk,
                     const std::vector<SpmvKernelKind>& sk) {
    std::vector<SimStep> steps;
    for (const ExecStep& es : dplan.steps) {
      SimStep st;
      if (es.kind == ExecStep::Kind::kTri) {
        st.tri = true;
        st.r0 = dplan.tri_bounds[static_cast<std::size_t>(es.index)];
        st.r1 = dplan.tri_bounds[static_cast<std::size_t>(es.index) + 1];
        st.kind = static_cast<int>(tk[static_cast<std::size_t>(es.index)]);
      } else {
        const SquareBlockRef& ref =
            dplan.squares[static_cast<std::size_t>(es.index)];
        st.r0 = ref.r0;
        st.r1 = ref.r1;
        st.c0 = ref.c0;
        st.c1 = ref.c1;
        st.kind = static_cast<int>(sk[static_cast<std::size_t>(es.index)]);
      }
      steps.push_back(st);
    }
    return steps;
  };

  OracleContext<T> dctx(&dstored, pool);
  const std::vector<SimStep> d_heur_steps = d_steps(d_heur_tri, d_heur_sq);
  const double ns_d_heur = simulate_candidate(dctx, d_heur_steps, n, topt.gpu);
  const bool d_model_differs =
      d_model_tri != d_heur_tri || d_model_sq != d_heur_sq;
  const std::vector<SimStep> d_model_steps = d_steps(d_model_tri, d_model_sq);
  const double ns_d_model =
      d_model_differs ? simulate_candidate(dctx, d_model_steps, n, topt.gpu)
                      : ns_d_heur;

  // --- Candidates from the deeper tree M. Tightening the stop rule ~8×
  // (floor 64 rows so leaves stay meaningful) adds up to 3 depths; D's tree
  // is an arithmetic prefix of M's, so the "D rule" cut of M has D's bounds —
  // under M's (deeper) permutation.
  PlannerOptions pm = planner;
  pm.stop_rows = std::min(
      planner.stop_rows,
      std::max<index_t>(64, planner.stop_rows / 8));
  pm.max_depth = planner.max_depth + 3;
  Csr<T> mstored;
  BlockPlan mplan = plan_recursive(lower, pm, &mstored, pool);

  std::vector<Node> nodes;
  build_tree(nodes, 0, n, 0, pm);
  {
    // The local tree must reproduce the planner's leaves exactly.
    std::vector<index_t> bounds;
    bounds.push_back(0);
    for (std::size_t i = 0; i < nodes.size(); ++i)
      if (nodes[i].left < 0) bounds.push_back(nodes[i].r1);
    std::sort(bounds.begin(), bounds.end());
    BLOCKTRI_CHECK_MSG(bounds == mplan.tri_bounds,
                       "tuner tree disagrees with plan_recursive");
  }

  std::vector<TriKernelKind> tri_kind(nodes.size());
  std::vector<SpmvKernelKind> sq_kind(nodes.size(),
                                      SpmvKernelKind::kScalarCsr);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    Node& nd = nodes[i];
    const Csr<T> blk = extract_block(mstored, nd.r0, nd.r1, nd.r0, nd.r1);
    const TriangularFeatures feat = compute_triangular_features(blk);
    nd.tri_nnz = blk.nnz();
    nd.nlevels = feat.nlevels;
    nd.diagonal_only = feat.base.diagonal_only;
    nd.heur_tri = heuristic_tri(feat, thresholds);
    tri_kind[i] = model.valid ? model_best_tri(model, nd) : nd.heur_tri;
    if (nd.left >= 0) {
      const Csr<T> sq = extract_block(mstored, nd.mid, nd.r1, nd.r0, nd.mid);
      nd.sq_nnz = sq.nnz();
      if (sq.nnz() > 0) {
        const MatrixFeatures sf = compute_features(sq);
        nd.sq_empty_ratio = sf.empty_ratio;
        nd.sq_stored_rows = static_cast<index_t>(
            std::lround((1.0 - sf.empty_ratio) *
                        static_cast<double>(nd.r1 - nd.mid)));
        nd.heur_sq = select_square_kernel(sf, thresholds);
      } else {
        nd.sq_empty_ratio = nd.r1 > nd.mid ? 1.0 : 0.0;
        nd.sq_stored_rows = 0;
        nd.heur_sq = SpmvKernelKind::kScalarCsr;
      }
      sq_kind[i] = model.valid ? model_best_sq(model, nd, launch_ns)
                               : nd.heur_sq;
    }
  }

  // --- Initial cut: bottom-up DP on the model when it is valid (leaf cost
  // vs. children + square), else the D-rule cut of M's tree.
  std::vector<char> in_cut(nodes.size(), 0);
  if (model.valid) {
    std::vector<double> dp(nodes.size(), 0.0);
    std::vector<char> split(nodes.size(), 0);
    for (std::size_t i = nodes.size(); i-- > 0;) {
      const Node& nd = nodes[i];
      const double leaf_c = model_tri_cost(model, nd, tri_kind[i]);
      dp[i] = leaf_c;
      if (nd.left >= 0) {
        const double split_c =
            dp[static_cast<std::size_t>(nd.left)] +
            model_sq_cost(model, nd, sq_kind[i], launch_ns) +
            dp[static_cast<std::size_t>(nd.right)];
        if (split_c < leaf_c) {
          dp[i] = split_c;
          split[i] = 1;
        }
      }
    }
    // Children of unsplit nodes are unreachable; mark the frontier.
    std::vector<int> stack{0};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      if (split[static_cast<std::size_t>(id)]) {
        stack.push_back(nodes[static_cast<std::size_t>(id)].left);
        stack.push_back(nodes[static_cast<std::size_t>(id)].right);
      } else {
        in_cut[static_cast<std::size_t>(id)] = 1;
      }
    }
  } else {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Node& nd = nodes[i];
      const bool d_leaf = (nd.r1 - nd.r0) / 2 < planner.stop_rows ||
                          nd.depth >= planner.max_depth;
      // A node is in the D-rule cut when it is a leaf by D's rule and none
      // of its ancestors is (ancestors of a D-leaf are never D-leaves, so
      // marking every D-leaf whose range is not inside another D-leaf's
      // range reduces to: shallowest D-leaf on each root-to-leaf path).
      if (d_leaf) in_cut[i] = 1;
    }
    // Keep only the shallowest cut node on each path.
    std::vector<int> stack{0};
    while (!stack.empty()) {
      const int id = stack.back();
      stack.pop_back();
      const Node& nd = nodes[static_cast<std::size_t>(id)];
      if (in_cut[static_cast<std::size_t>(id)]) {
        // Clear any marked descendants.
        std::vector<int> sub;
        if (nd.left >= 0) sub = {nd.left, nd.right};
        while (!sub.empty()) {
          const int s = sub.back();
          sub.pop_back();
          in_cut[static_cast<std::size_t>(s)] = 0;
          const Node& sn = nodes[static_cast<std::size_t>(s)];
          if (sn.left >= 0) {
            sub.push_back(sn.left);
            sub.push_back(sn.right);
          }
        }
        continue;
      }
      if (nd.left >= 0) {
        stack.push_back(nd.left);
        stack.push_back(nd.right);
      } else {
        in_cut[static_cast<std::size_t>(id)] = 1;  // M-leaf fallback
      }
    }
  }

  OracleContext<T> mctx(&mstored, pool);
  auto eval_cut = [&] {
    std::vector<SimStep> steps;
    cut_steps(nodes, in_cut, tri_kind, sq_kind, 0, &steps);
    return simulate_candidate(mctx, steps, n, topt.gpu);
  };
  double cur_ns = eval_cut();

  std::vector<char> best_cut = in_cut;
  std::vector<TriKernelKind> best_tri = tri_kind;
  std::vector<SpmvKernelKind> best_sq = sq_kind;
  double best_ns = cur_ns;

  // --- Bounded simulated annealing over the cut and kernel choices.
  const int iters = std::max(0, topt.sa_iterations);
  if (iters > 0 && nodes.size() > 1) {
    Rng rng(topt.seed);
    double temp = std::max(1.0, 0.05 * cur_ns);
    const double alpha =
        std::pow(0.01, 1.0 / static_cast<double>(iters));
    for (int it = 0; it < iters; ++it, temp *= alpha) {
      // Applicable moves: 0 = collapse two sibling cut leaves, 1 = expand a
      // cut leaf, 2 = flip a tri kernel, 3 = flip a square kernel.
      const int want = static_cast<int>(rng.uniform_int(0, 3));
      int applied = -1;
      int touched = -1;
      TriKernelKind saved_tri{};
      SpmvKernelKind saved_sq{};
      // Internal nodes above the cut — the ones whose square step the
      // current candidate actually executes. in_cut is an antichain, so
      // moves 0–2 can test membership directly; move 3 needs reachability.
      std::vector<char> above(nodes.size(), 0);
      {
        std::vector<int> stack{0};
        while (!stack.empty()) {
          const int id = stack.back();
          stack.pop_back();
          if (in_cut[static_cast<std::size_t>(id)]) continue;
          above[static_cast<std::size_t>(id)] = 1;
          stack.push_back(nodes[static_cast<std::size_t>(id)].left);
          stack.push_back(nodes[static_cast<std::size_t>(id)].right);
        }
      }
      for (int attempt = 0; attempt < 4 && applied < 0; ++attempt) {
        const int move = (want + attempt) % 4;
        std::vector<int> options;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
          const Node& nd = nodes[i];
          switch (move) {
            case 0:
              if (nd.left >= 0 &&
                  in_cut[static_cast<std::size_t>(nd.left)] &&
                  in_cut[static_cast<std::size_t>(nd.right)])
                options.push_back(static_cast<int>(i));
              break;
            case 1:
              if (in_cut[i] && nd.left >= 0)
                options.push_back(static_cast<int>(i));
              break;
            case 2:
              if (in_cut[i]) options.push_back(static_cast<int>(i));
              break;
            case 3:
              if (above[i] && nd.sq_nnz > 0)
                options.push_back(static_cast<int>(i));
              break;
          }
        }
        if (options.empty()) continue;
        const int pick = options[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(options.size()) - 1))];
        touched = pick;
        const Node& nd = nodes[static_cast<std::size_t>(pick)];
        switch (move) {
          case 0:
            in_cut[static_cast<std::size_t>(nd.left)] = 0;
            in_cut[static_cast<std::size_t>(nd.right)] = 0;
            in_cut[static_cast<std::size_t>(pick)] = 1;
            break;
          case 1:
            in_cut[static_cast<std::size_t>(pick)] = 0;
            in_cut[static_cast<std::size_t>(nd.left)] = 1;
            in_cut[static_cast<std::size_t>(nd.right)] = 1;
            break;
          case 2: {
            saved_tri = tri_kind[static_cast<std::size_t>(pick)];
            TriKernelKind alt = saved_tri;
            for (int spin = 0; spin < 8 && alt == saved_tri; ++spin) {
              const auto cand =
                  static_cast<TriKernelKind>(rng.uniform_int(0, 3));
              if (tri_kind_valid(nd, cand)) alt = cand;
            }
            if (alt == saved_tri) {
              touched = -1;
              continue;
            }
            tri_kind[static_cast<std::size_t>(pick)] = alt;
            break;
          }
          case 3: {
            saved_sq = sq_kind[static_cast<std::size_t>(pick)];
            SpmvKernelKind alt = saved_sq;
            for (int spin = 0; spin < 8 && alt == saved_sq; ++spin)
              alt = static_cast<SpmvKernelKind>(rng.uniform_int(0, 3));
            if (alt == saved_sq) {
              touched = -1;
              continue;
            }
            sq_kind[static_cast<std::size_t>(pick)] = alt;
            break;
          }
        }
        applied = move;
      }
      if (applied < 0) break;  // no applicable move anywhere
      ++tp.stats.sa_moves;

      const double ns = eval_cut();
      const double d = ns - cur_ns;
      const bool accept =
          d < 0.0 || rng.uniform() < std::exp(-d / std::max(temp, 1e-9));
      if (accept) {
        ++tp.stats.sa_accepted;
        cur_ns = ns;
        if (ns < best_ns) {
          best_ns = ns;
          best_cut = in_cut;
          best_tri = tri_kind;
          best_sq = sq_kind;
        }
      } else {
        // Revert.
        const Node& nd = nodes[static_cast<std::size_t>(touched)];
        switch (applied) {
          case 0:
            in_cut[static_cast<std::size_t>(touched)] = 0;
            in_cut[static_cast<std::size_t>(nd.left)] = 1;
            in_cut[static_cast<std::size_t>(nd.right)] = 1;
            break;
          case 1:
            in_cut[static_cast<std::size_t>(nd.left)] = 0;
            in_cut[static_cast<std::size_t>(nd.right)] = 0;
            in_cut[static_cast<std::size_t>(touched)] = 1;
            break;
          case 2:
            tri_kind[static_cast<std::size_t>(touched)] = saved_tri;
            break;
          case 3:
            sq_kind[static_cast<std::size_t>(touched)] = saved_sq;
            break;
        }
      }
    }
  }

  // --- Candidate H: the HBMC scheme (DESIGN.md §16), priced only when the
  // depth-vs-colors gate says the matrix is deep enough that trading
  // locality for a fixed sync-step count could pay. The cost model's fixed
  // per-step launch price is exactly what a small color count amortises, so
  // the oracle comparison below is where "search may pick kHbmc" happens.
  bool hbmc_built = false;
  double ns_hbmc = 0.0;
  BlockPlan hplan;
  Csr<T> hstored;
  std::vector<TriKernelKind> h_tri;
  std::vector<index_t> h_nlevels;
  std::vector<SpmvKernelKind> h_sq;
  std::vector<double> h_empty;
  std::vector<SimStep> h_steps;
  if (topt.consider_hbmc &&
      prefer_hbmc(compute_level_sets(lower, pool).nlevels,
                  planner.hbmc_max_colors, thresholds)) {
    hplan = order::plan_hbmc(lower, planner,
                             static_cast<index_t>(tp.merge_width), &hstored,
                             pool);
    for (index_t t = 0; t < hplan.num_tri_blocks(); ++t) {
      const index_t r0 = hplan.tri_bounds[static_cast<std::size_t>(t)];
      const index_t r1 = hplan.tri_bounds[static_cast<std::size_t>(t) + 1];
      const Csr<T> blk = extract_block(hstored, r0, r1, r0, r1);
      const TriangularFeatures feat = compute_triangular_features(blk);
      h_nlevels.push_back(feat.nlevels);
      TriKernelKind kind = heuristic_tri(feat, thresholds);
      if (model.valid) {
        Node nd;
        nd.r0 = r0;
        nd.r1 = r1;
        nd.tri_nnz = blk.nnz();
        nd.nlevels = feat.nlevels;
        nd.diagonal_only = feat.base.diagonal_only;
        nd.heur_tri = kind;
        kind = model_best_tri(model, nd);
      }
      h_tri.push_back(kind);
    }
    for (const SquareBlockRef& ref : hplan.squares) {
      const Csr<T> blk =
          extract_block(hstored, ref.r0, ref.r1, ref.c0, ref.c1);
      if (blk.nnz() == 0) {
        h_sq.push_back(SpmvKernelKind::kScalarCsr);
        h_empty.push_back(ref.r1 > ref.r0 ? 1.0 : 0.0);
        continue;
      }
      const MatrixFeatures feat = compute_features(blk);
      h_empty.push_back(feat.empty_ratio);
      SpmvKernelKind kind = select_square_kernel(feat, thresholds);
      if (model.valid) {
        Node nd;
        nd.r0 = ref.c0;
        nd.mid = ref.r0;
        nd.r1 = ref.r1;
        nd.left = 0;
        nd.sq_nnz = blk.nnz();
        nd.sq_stored_rows = static_cast<index_t>(
            std::lround((1.0 - feat.empty_ratio) *
                        static_cast<double>(ref.r1 - ref.r0)));
        nd.heur_sq = kind;
        kind = model_best_sq(model, nd, launch_ns);
      }
      h_sq.push_back(kind);
    }
    for (const ExecStep& es : hplan.steps) {
      SimStep st;
      if (es.kind == ExecStep::Kind::kTri) {
        st.tri = true;
        st.r0 = hplan.tri_bounds[static_cast<std::size_t>(es.index)];
        st.r1 = hplan.tri_bounds[static_cast<std::size_t>(es.index) + 1];
        st.kind = static_cast<int>(h_tri[static_cast<std::size_t>(es.index)]);
      } else {
        const SquareBlockRef& ref =
            hplan.squares[static_cast<std::size_t>(es.index)];
        st.r0 = ref.r0;
        st.r1 = ref.r1;
        st.c0 = ref.c0;
        st.c1 = ref.c1;
        st.kind = static_cast<int>(h_sq[static_cast<std::size_t>(es.index)]);
      }
      h_steps.push_back(st);
    }
    OracleContext<T> hctx(&hstored, pool);
    ns_hbmc = simulate_candidate(hctx, h_steps, n, topt.gpu);
    hbmc_built = true;
  }

  // --- Final selection: ties go to the earliest candidate, so D with the
  // paper's heuristics wins unless something is strictly better under the
  // oracle.
  tp.stats.oracle_default_ns = ns_d_heur;
  tp.stats.model_default_ns =
      model_steps_cost(model, nodes, d_heur_steps, launch_ns);

  enum class Winner { kDefaultHeur, kDefaultModel, kCut, kHbmc };
  Winner winner = Winner::kDefaultHeur;
  double winner_ns = ns_d_heur;
  if (d_model_differs && ns_d_model < winner_ns) {
    winner = Winner::kDefaultModel;
    winner_ns = ns_d_model;
  }
  if (best_ns < winner_ns) {
    winner = Winner::kCut;
    winner_ns = best_ns;
  }
  if (hbmc_built && ns_hbmc < winner_ns) {
    winner = Winner::kHbmc;
    winner_ns = ns_hbmc;
  }
  tp.stats.oracle_tuned_ns = winner_ns;
  tp.stats.fell_back = winner == Winner::kDefaultHeur;

  if (winner == Winner::kHbmc) {
    tp.plan = std::move(hplan);
    tp.stored = std::move(hstored);
    tp.tri_kinds = std::move(h_tri);
    tp.tri_nlevels = std::move(h_nlevels);
    tp.square_kinds = std::move(h_sq);
    tp.square_empty_ratio = std::move(h_empty);
    // The M-tree node list cannot price HBMC's blocks; report the oracle
    // number so the stats stay meaningful.
    tp.stats.model_tuned_ns = ns_hbmc;
    return tp;
  }

  if (winner == Winner::kDefaultHeur || winner == Winner::kDefaultModel) {
    const bool heur = winner == Winner::kDefaultHeur;
    tp.plan = std::move(dplan);
    tp.stored = std::move(dstored);
    tp.tri_kinds = heur ? d_heur_tri : d_model_tri;
    tp.tri_nlevels = d_nlevels;
    tp.square_kinds = heur ? d_heur_sq : d_model_sq;
    tp.square_empty_ratio = d_empty;
    tp.stats.model_tuned_ns = model_steps_cost(
        model, nodes, heur ? d_heur_steps : d_model_steps, launch_ns);
    return tp;
  }

  // --- Materialize the winning cut as a BlockPlan under M's permutation.
  BlockPlan p;
  p.scheme = BlockScheme::kRecursive;
  p.n = n;
  p.new_of_old = mplan.new_of_old;
  p.host_ops = mplan.host_ops;
  p.host_bytes = mplan.host_bytes;
  std::vector<SimStep> steps;
  cut_steps(nodes, best_cut, best_tri, best_sq, 0, &steps);
  p.tri_bounds.push_back(0);
  for (const SimStep& st : steps) {
    if (st.tri) {
      p.tri_bounds.push_back(st.r1);
      p.steps.push_back(
          {ExecStep::Kind::kTri,
           static_cast<index_t>(p.tri_bounds.size()) - 2});
      tp.tri_kinds.push_back(static_cast<TriKernelKind>(st.kind));
    } else {
      p.squares.push_back({st.r0, st.r1, st.c0, st.c1});
      p.steps.push_back(
          {ExecStep::Kind::kSquare,
           static_cast<index_t>(p.squares.size()) - 1});
      tp.square_kinds.push_back(static_cast<SpmvKernelKind>(st.kind));
    }
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (best_cut[i])
      p.depth_used = std::max(p.depth_used, nodes[i].depth);
  }
  // Per-block metadata in plan order, from the tree features.
  for (const SimStep& st : steps) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const Node& nd = nodes[i];
      if (st.tri && best_cut[i] && nd.r0 == st.r0 && nd.r1 == st.r1) {
        tp.tri_nlevels.push_back(nd.nlevels);
        break;
      }
      if (!st.tri && !best_cut[i] && nd.left >= 0 && nd.mid == st.r0 &&
          nd.r1 == st.r1 && nd.r0 == st.c0) {
        tp.square_empty_ratio.push_back(
            nd.sq_nnz > 0 ? nd.sq_empty_ratio
                          : (nd.r1 > nd.mid ? 1.0 : 0.0));
        break;
      }
    }
  }
  tp.stats.model_tuned_ns = model_steps_cost(model, nodes, steps, launch_ns);
  tp.plan = std::move(p);
  tp.stored = std::move(mstored);
  return tp;
}

template TunedPlan<float> autotune_recursive<float>(
    const Csr<float>&, const PlannerOptions&, const ThresholdTable&,
    const CostModel&, const TuneOptions&, ThreadPool*);
template TunedPlan<double> autotune_recursive<double>(
    const Csr<double>&, const PlannerOptions&, const ThresholdTable&,
    const CostModel&, const TuneOptions&, ThreadPool*);

}  // namespace blocktri::tune
