#include "gen/suite.hpp"

#include <string>

#include "common/types.hpp"
#include "gen/generators.hpp"

namespace blocktri::gen {

namespace {

std::uint64_t suite_seed(std::size_t idx) {
  // Distinct, stable seeds per entry: the suite must be the same matrices
  // on every machine and every run.
  return 0x0b1ec7715eedULL + 0x9e3779b97f4a7c15ULL * (idx + 1);
}

void add(std::vector<SuiteEntry>& out, std::string family,
         std::function<Csr<double>()> build) {
  SuiteEntry e;
  e.family = std::move(family);
  e.name = e.family + "_" + std::to_string(out.size());
  e.build = std::move(build);
  out.push_back(std::move(e));
}

}  // namespace

std::vector<SuiteEntry> paper_suite() {
  std::vector<SuiteEntry> out;
  out.reserve(159);

  // 24 structured 2D grids (wavefront levels, regular rows).
  {
    const index_t dims[12][2] = {{100, 100},  {150, 100}, {200, 150},
                                 {200, 200},  {300, 200}, {300, 300},
                                 {400, 250},  {400, 400}, {500, 300},
                                 {500, 500},  {600, 400}, {640, 480}};
    for (int rep = 0; rep < 2; ++rep)
      for (const auto& d : dims) {
        const index_t nx = d[0], ny = d[1];
        add(out, "grid2d", [nx, ny, s = suite_seed(out.size() + rep)] {
          return grid2d(nx, ny, s);
        });
      }
  }

  // 12 structured 3D grids.
  {
    const index_t dims[12] = {20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60, 64};
    for (const index_t d : dims)
      add(out, "grid3d",
          [d, s = suite_seed(out.size())] { return grid3d(d, d, d, s); });
  }

  // 20 banded systems (bandwidth x size sweep).
  {
    const index_t ns[4] = {20000, 50000, 100000, 150000};
    const index_t bws[5] = {4, 16, 64, 256, 1024};
    for (const index_t n : ns)
      for (const index_t bw : bws)
        add(out, "banded", [n, bw, s = suite_seed(out.size())] {
          return banded(n, bw, 3.0, s);
        });
  }

  // 24 power-law circuit/network graphs (hub columns, load imbalance).
  {
    const index_t ns[3] = {30000, 60000, 120000};
    const double alphas[4] = {1.8, 2.2, 2.6, 3.0};
    const double degs[2] = {4.0, 16.0};
    for (const index_t n : ns)
      for (const double a : alphas)
        for (const double deg : degs)
          add(out, "powerlaw", [n, a, deg, s = suite_seed(out.size())] {
            return power_law(n, a, 4096, deg, s);
          });
  }

  // 24 level-controlled random DAGs (the nlevels axis).
  {
    const index_t ns[2] = {40000, 100000};
    const index_t levels[6] = {4, 32, 256, 2048, 16384, 32768};
    const double extras[2] = {2.0, 8.0};
    for (const index_t n : ns)
      for (const index_t nl : levels)
        for (const double ex : extras)
          add(out, "rndlevels", [n, nl, ex, s = suite_seed(out.size())] {
            return random_levels(n, std::min<index_t>(nl, n / 2), ex, 1.0, s);
          });
  }

  // 10 two-level saddle-point systems (nlpkkt-like extreme parallelism).
  {
    const index_t ns[5] = {50000, 80000, 100000, 150000, 200000};
    const double couples[2] = {8.0, 24.0};
    for (const index_t n : ns)
      for (const double c : couples)
        add(out, "twolevel", [n, c, s = suite_seed(out.size())] {
          return two_level_kkt(n, n / 2, c, s);
        });
  }

  // 15 KKT/optimisation structures (moderate levels, mixed spans).
  {
    const index_t ns[3] = {50000, 100000, 150000};
    const index_t levels[5] = {10, 20, 40, 80, 160};
    for (const index_t n : ns)
      for (const index_t nl : levels)
        add(out, "kkt", [n, nl, s = suite_seed(out.size())] {
          return kkt_structure(n, nl, 3.0, s);
        });
  }

  // 12 network traces (few huge levels, hubbed).
  {
    const index_t ns[2] = {80000, 150000};
    const index_t levels[3] = {8, 19, 45};
    const double alphas[2] = {1.6, 2.0};
    for (const index_t n : ns)
      for (const index_t nl : levels)
        for (const double a : alphas)
          add(out, "trace", [n, nl, a, s = suite_seed(out.size())] {
            return trace_network(n, nl, a, 0.45, s);
          });
  }

  // 12 near-serial chains (tmt-like worst case for everyone).
  {
    const index_t ns[4] = {10000, 30000, 80000, 150000};
    const index_t bws[3] = {2, 8, 32};
    for (const index_t n : ns)
      for (const index_t bw : bws)
        add(out, "chain", [n, bw, s = suite_seed(out.size())] {
          return chain_banded(n, bw, 2.0, s);
        });
  }

  // 3 diagonal systems (the perfectly parallel endpoint).
  for (const index_t n : {50000, 100000, 200000})
    add(out, "diag", [n, s = suite_seed(out.size())] { return diagonal(n, s); });

  // 3 dense-ish lower triangles (blocking upper bound).
  for (const index_t n : {1500, 2500, 4000})
    add(out, "denselow",
        [n, s = suite_seed(out.size())] { return dense_lower(n, 0.15, s); });

  BLOCKTRI_CHECK_MSG(out.size() == 159,
                     "paper_suite must contain exactly 159 matrices, got " +
                         std::to_string(out.size()));
  return out;
}

std::vector<SuiteEntry> representative_suite() {
  std::vector<SuiteEntry> out;
  auto push = [&out](std::string name, std::string family, std::string mimics,
                     double scale, std::function<Csr<double>()> build) {
    SuiteEntry e;
    e.name = std::move(name);
    e.family = std::move(family);
    e.mimics = std::move(mimics);
    e.scale = scale;
    e.build = std::move(build);
    out.push_back(std::move(e));
  };

  // Table 4 row 1: nlpkkt200 — n=16.24M, nnz=232M (nnz/row 14.3), 2 levels
  // of enormous width (8.0M / 8.24M). At 1/64: n=254k, same nnz/row.
  push("nlpkkt-sim", "twolevel", "nlpkkt200", 64.0,
       [] { return two_level_kkt(254000, 127000, 26.6, 11); });

  // Row 2: mawi_201512020030 — n=68.86M, nnz/row 2.04, 19 levels of widths
  // 11..34.5M, extreme power-law hubs (network trace). At 1/256.
  push("mawi-sim", "plevels", "mawi_201512020030", 256.0, [] {
    return power_law_levels(269000, 19, 0.45, 1.5, 2000, 2.04, 1.3,
                            /*hub_rows=*/5, /*hub_row_fill=*/0.3,
                            /*hub_cols=*/3, /*hub_col_fill=*/0.25, 22);
  });

  // Row 3: kkt_power — n=2.06M, nnz/row 4.14, 17 levels (1090..626k wide),
  // power-law optimisation structure. At 1/16.
  push("kkt_power-sim", "plevels", "kkt_power", 16.0, [] {
    return power_law_levels(129000, 17, 0.75, 1.8, 1500, 4.14, 1.3,
                            /*hub_rows=*/0, 0.0, /*hub_cols=*/2,
                            /*hub_col_fill=*/0.05, 33);
  });

  // Row 4: FullChip — n=2.99M, nnz/row 4.96, 324 levels (1..468k wide),
  // circuit power-law with huge hubs (power/ground nets). At 1/16.
  push("fullchip-sim", "plevels", "FullChip", 16.0, [] {
    return power_law_levels(187000, 324, 0.985, 1.9, 2000, 4.96, 1.08,
                            /*hub_rows=*/0, 0.0, /*hub_cols=*/2,
                            /*hub_col_fill=*/0.75, 44);
  });

  // Row 5: vas_stokes_4M — n=4.38M, nnz/row 22.1, 2815 levels of avg width
  // 1556 (min 1), long rows/columns per the paper's §4.2 analysis. At 1/32.
  push("vas_stokes-sim", "plevels", "vas_stokes_4M", 32.0, [] {
    return power_law_levels(137000, 2815, 0.9995, 3.5, 200, 22.1, 1.15,
                            /*hub_rows=*/0, 0.0, /*hub_cols=*/3,
                            /*hub_col_fill=*/0.4, 55);
  });

  // Row 6: tmt_sym — n=727k, nnz/row 4.0, 726k levels: a serial chain. 1/8.
  push("tmt-sim", "chain", "tmt_sym", 8.0,
       [] { return chain_banded(90800, 5, 3.0, 66); });

  return out;
}

SuiteEntry find_suite_entry(const std::string& name) {
  for (auto& e : representative_suite())
    if (e.name == name) return e;
  for (auto& e : paper_suite())
    if (e.name == name) return e;
  BLOCKTRI_CHECK_MSG(false, "no suite entry named " + name);
  return {};
}

}  // namespace blocktri::gen
