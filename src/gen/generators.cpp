#include "gen/generators.hpp"

#include <algorithm>
#include <cmath>

#include "common/prefix.hpp"
#include "common/rng.hpp"
#include "sparse/convert.hpp"
#include "sparse/permute.hpp"
#include "sparse/triangular.hpp"

#include <queue>
#include <utility>

namespace blocktri::gen {

namespace {

/// Incrementally assembles a lower-triangular CSR matrix row by row:
/// deduplicates and sorts the strictly-lower columns, draws values, and
/// appends a dominant diagonal.
class LowerBuilder {
 public:
  LowerBuilder(index_t n, Rng& rng) : rng_(rng) {
    a_.nrows = n;
    a_.ncols = n;
    a_.row_ptr.reserve(static_cast<std::size_t>(n) + 1);
    a_.row_ptr.push_back(0);
  }

  /// `cols` may be unsorted and contain duplicates/out-of-range hints; they
  /// are clamped to [0, i) and deduplicated.
  void add_row(index_t i, std::vector<index_t>& cols) {
    BLOCKTRI_CHECK(static_cast<index_t>(a_.row_ptr.size()) - 1 == i);
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
    double abs_sum = 0.0;
    for (const index_t c : cols) {
      if (c < 0 || c >= i) continue;
      const double v = rng_.uniform(-1.0, 1.0);
      a_.col_idx.push_back(c);
      a_.val.push_back(v);
      abs_sum += std::fabs(v);
    }
    a_.col_idx.push_back(i);
    a_.val.push_back(1.0 + abs_sum);  // diagonal dominance
    a_.row_ptr.push_back(static_cast<offset_t>(a_.val.size()));
  }

  Csr<double> take() {
    BLOCKTRI_CHECK_MSG(a_.row_ptr.size() ==
                           static_cast<std::size_t>(a_.nrows) + 1,
                       "not all rows added");
    return std::move(a_);
  }

 private:
  Rng& rng_;
  Csr<double> a_;
};

/// Level widths following a geometric profile w_{l+1} = ratio * w_l,
/// normalised to sum to n with every level at least one row.
std::vector<index_t> geometric_widths(index_t n, index_t nlevels,
                                      double ratio) {
  BLOCKTRI_CHECK(nlevels >= 1 && n >= nlevels);
  std::vector<double> raw(static_cast<std::size_t>(nlevels));
  double w = 1.0, total = 0.0;
  for (auto& r : raw) {
    r = w;
    total += w;
    w *= ratio;
  }
  std::vector<index_t> widths(static_cast<std::size_t>(nlevels), 1);
  index_t assigned = nlevels;
  for (std::size_t l = 0; l < raw.size() && assigned < n; ++l) {
    const auto want = static_cast<index_t>(
        raw[l] / total * static_cast<double>(n - nlevels));
    const index_t give = std::min<index_t>(want, n - assigned);
    widths[l] += give;
    assigned += give;
  }
  // Distribute rounding remainder to the widest levels from the front.
  for (std::size_t l = 0; assigned < n; l = (l + 1) % raw.size()) {
    ++widths[l];
    ++assigned;
  }
  return widths;
}

std::vector<offset_t> widths_to_ptr(const std::vector<index_t>& widths) {
  std::vector<offset_t> ptr(widths.size() + 1, 0);
  for (std::size_t l = 0; l < widths.size(); ++l)
    ptr[l + 1] = ptr[l] + widths[l];
  return ptr;
}

/// Samples an integer count with the given (possibly fractional) mean.
index_t fractional_count(Rng& rng, double mean) {
  const double fl = std::floor(mean);
  auto c = static_cast<index_t>(fl);
  if (rng.bernoulli(mean - fl)) ++c;
  return c;
}

}  // namespace

Csr<double> diagonal(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  LowerBuilder b(n, rng);
  std::vector<index_t> none;
  for (index_t i = 0; i < n; ++i) {
    none.clear();
    b.add_row(i, none);
  }
  return b.take();
}

Csr<double> tridiag_chain(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    if (i > 0) cols.push_back(i - 1);
    b.add_row(i, cols);
  }
  return b.take();
}

Csr<double> banded(index_t n, index_t bandwidth, double avg_in_band,
                   std::uint64_t seed) {
  BLOCKTRI_CHECK(bandwidth >= 1);
  Rng rng(seed);
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    const index_t bw = std::min(bandwidth, i);
    const index_t want = std::min(bw, fractional_count(rng, avg_in_band));
    for (index_t k = 0; k < want; ++k)
      cols.push_back(i - 1 -
                     static_cast<index_t>(rng.uniform_int(0, bw - 1)));
    b.add_row(i, cols);
  }
  return b.take();
}

Csr<double> grid2d(index_t nx, index_t ny, std::uint64_t seed) {
  Rng rng(seed);
  const index_t n = nx * ny;
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t iy = 0; iy < ny; ++iy) {
    for (index_t ix = 0; ix < nx; ++ix) {
      const index_t i = iy * nx + ix;
      cols.clear();
      if (ix > 0) cols.push_back(i - 1);
      if (iy > 0) cols.push_back(i - nx);
      b.add_row(i, cols);
    }
  }
  return b.take();
}

Csr<double> grid3d(index_t nx, index_t ny, index_t nz, std::uint64_t seed) {
  Rng rng(seed);
  const index_t n = nx * ny * nz;
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t i = (iz * ny + iy) * nx + ix;
        cols.clear();
        if (ix > 0) cols.push_back(i - 1);
        if (iy > 0) cols.push_back(i - nx);
        if (iz > 0) cols.push_back(i - nx * ny);
        b.add_row(i, cols);
      }
    }
  }
  return b.take();
}

Csr<double> laplace3d(index_t nx, index_t ny, index_t nz,
                      std::uint64_t seed) {
  BLOCKTRI_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  Rng rng(seed);
  const index_t n = nx * ny * nz;
  // Built directly (not via LowerBuilder): the Laplacian's values are fixed
  // by the stencil, not drawn from [-1, 1], and its diagonal is the full
  // 7-point 6 rather than the 1 + Σ|off-diag| convention.
  Csr<double> a;
  a.nrows = n;
  a.ncols = n;
  a.row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  a.row_ptr.push_back(0);
  for (index_t iz = 0; iz < nz; ++iz) {
    for (index_t iy = 0; iy < ny; ++iy) {
      for (index_t ix = 0; ix < nx; ++ix) {
        const index_t i = (iz * ny + iy) * nx + ix;
        const auto push = [&](index_t c) {
          a.col_idx.push_back(c);
          a.val.push_back(-1.0 + 1e-6 * rng.uniform(-1.0, 1.0));
        };
        // Emitted in ascending column order: -nx*ny < -nx < -1 < 0.
        if (iz > 0) push(i - nx * ny);
        if (iy > 0) push(i - nx);
        if (ix > 0) push(i - 1);
        a.col_idx.push_back(i);
        a.val.push_back(6.0);
        a.row_ptr.push_back(static_cast<offset_t>(a.val.size()));
      }
    }
  }
  return a;
}

Csr<double> power_law(index_t n, double alpha, index_t max_degree,
                      double avg_degree, std::uint64_t seed) {
  BLOCKTRI_CHECK(max_degree >= 1);
  Rng rng(seed);
  // Estimate the truncated power-law mean empirically (deterministically) so
  // avg_degree can rescale the samples.
  Rng est(seed ^ 0x5bd1e995u);
  double mean = 0.0;
  for (int k = 0; k < 2048; ++k)
    mean += static_cast<double>(est.power_law(alpha, max_degree));
  mean /= 2048.0;

  LowerBuilder b(n, rng);
  // Preferential attachment via the repeated-endpoints trick: sampling a
  // uniform element of `endpoints` picks column j with probability
  // proportional to its current in-degree (+1 for its own appearance).
  std::vector<index_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(
      std::min<double>(static_cast<double>(n) * avg_degree * 2.0, 3e7)));
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    if (i > 0) {
      const double s = static_cast<double>(rng.power_law(alpha, max_degree));
      const auto deg = std::min<index_t>(
          i, std::max<index_t>(1, static_cast<index_t>(
                                      std::lround(s / mean * avg_degree))));
      for (index_t k = 0; k < deg; ++k) {
        index_t c;
        if (!endpoints.empty() && rng.bernoulli(0.7)) {
          c = endpoints[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(endpoints.size()) - 1))];
          if (c >= i)  // endpoint from this row; fall back to uniform
            c = static_cast<index_t>(rng.uniform_int(0, i - 1));
        } else {
          c = static_cast<index_t>(rng.uniform_int(0, i - 1));
        }
        cols.push_back(c);
        endpoints.push_back(c);
      }
    }
    endpoints.push_back(i);
    b.add_row(i, cols);
  }
  return b.take();
}

Csr<double> random_levels(index_t n, index_t nlevels, double extra_degree,
                          double width_ratio, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<index_t> widths = geometric_widths(n, nlevels, width_ratio);
  const std::vector<offset_t> lvl_ptr = widths_to_ptr(widths);

  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t l = 0; l < nlevels; ++l) {
    for (offset_t p = lvl_ptr[static_cast<std::size_t>(l)];
         p < lvl_ptr[static_cast<std::size_t>(l) + 1]; ++p) {
      const auto i = static_cast<index_t>(p);
      cols.clear();
      if (l > 0) {
        // One parent in the previous level pins the row's level exactly.
        cols.push_back(static_cast<index_t>(rng.uniform_int(
            lvl_ptr[static_cast<std::size_t>(l) - 1],
            lvl_ptr[static_cast<std::size_t>(l)] - 1)));
        // Extra parents anywhere before this level (same-level parents would
        // push the row deeper).
        const index_t extra = fractional_count(rng, extra_degree);
        for (index_t k = 0; k < extra; ++k)
          cols.push_back(static_cast<index_t>(rng.uniform_int(
              0, lvl_ptr[static_cast<std::size_t>(l)] - 1)));
      }
      b.add_row(i, cols);
    }
  }
  return b.take();
}

Csr<double> two_level_kkt(index_t n, index_t m, double couple_degree,
                          std::uint64_t seed) {
  BLOCKTRI_CHECK(m >= 1 && m < n);
  Rng rng(seed);
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    if (i >= m) {
      // PDE-constrained-KKT locality: the coupling block is near-diagonal —
      // row m+k couples to a stencil neighbourhood of column k. Nearby rows
      // therefore share x cache lines, the structure blocking exploits.
      const index_t deg =
          std::max<index_t>(1, fractional_count(rng, couple_degree));
      const double frac = static_cast<double>(i - m) /
                          static_cast<double>(n - m);
      const auto base = static_cast<index_t>(frac * (m - 1));
      for (index_t k = 0; k < deg; ++k) {
        const auto off = static_cast<index_t>(rng.geometric(0.004));
        const index_t c = rng.bernoulli(0.5)
                              ? base + off
                              : base - off;
        cols.push_back(std::clamp<index_t>(c, 0, m - 1));
      }
    }
    b.add_row(i, cols);
  }
  return b.take();
}

Csr<double> kkt_structure(index_t n, index_t nlevels, double couple_degree,
                          std::uint64_t seed) {
  Rng rng(seed);
  // Uniform level widths with long-range couplings into the first quarter —
  // the optimisation-matrix profile: moderate level count, wide levels,
  // mixed short/long dependency spans.
  const std::vector<index_t> widths = geometric_widths(n, nlevels, 1.0);
  const std::vector<offset_t> lvl_ptr = widths_to_ptr(widths);
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  const index_t quarter = std::max<index_t>(1, n / 4);
  for (index_t l = 0; l < nlevels; ++l) {
    for (offset_t p = lvl_ptr[static_cast<std::size_t>(l)];
         p < lvl_ptr[static_cast<std::size_t>(l) + 1]; ++p) {
      const auto i = static_cast<index_t>(p);
      cols.clear();
      if (l > 0) {
        cols.push_back(static_cast<index_t>(rng.uniform_int(
            lvl_ptr[static_cast<std::size_t>(l) - 1],
            lvl_ptr[static_cast<std::size_t>(l)] - 1)));
        const index_t extra = fractional_count(rng, couple_degree);
        for (index_t k = 0; k < extra; ++k) {
          // Half the couplings go far back (saddle-point block), half local.
          // Both stay strictly below this level's first row so the assigned
          // level count is exact.
          const auto lvl_lo = static_cast<index_t>(
              lvl_ptr[static_cast<std::size_t>(l)]);
          const index_t c =
              rng.bernoulli(0.5)
                  ? static_cast<index_t>(rng.uniform_int(
                        0, std::min<index_t>(quarter, lvl_lo) - 1))
                  : static_cast<index_t>(rng.uniform_int(0, lvl_lo - 1));
          if (c < i) cols.push_back(c);
        }
      }
      b.add_row(i, cols);
    }
  }
  return b.take();
}

Csr<double> trace_network(index_t n, index_t nlevels, double alpha,
                          double width_ratio, std::uint64_t seed) {
  Rng rng(seed);
  // Decaying widths: a huge first level, then a thinning tail — the
  // mawi-style profile (19 levels spanning widths 11 .. 34.5M) at ratio
  // ~0.45, or a FullChip-like even-width hubbed profile near ratio 1.
  const std::vector<index_t> widths =
      geometric_widths(n, nlevels, width_ratio);
  const std::vector<offset_t> lvl_ptr = widths_to_ptr(widths);
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t l = 0; l < nlevels; ++l) {
    const offset_t prev_lo = l > 0 ? lvl_ptr[static_cast<std::size_t>(l) - 1]
                                   : 0;
    const offset_t prev_hi = l > 0 ? lvl_ptr[static_cast<std::size_t>(l)] : 0;
    const offset_t prev_w = prev_hi - prev_lo;
    for (offset_t p = lvl_ptr[static_cast<std::size_t>(l)];
         p < lvl_ptr[static_cast<std::size_t>(l) + 1]; ++p) {
      const auto i = static_cast<index_t>(p);
      cols.clear();
      if (l > 0) {
        // Hub bias: parents cluster at the front of the previous level, so a
        // handful of columns fan out to most of the next level.
        const std::int64_t hub =
            rng.power_law(alpha, static_cast<std::int64_t>(prev_w)) - 1;
        cols.push_back(static_cast<index_t>(prev_lo + hub));
        const auto extra = static_cast<index_t>(rng.power_law(alpha, 32) - 1);
        for (index_t k = 0; k < extra; ++k) {
          const std::int64_t h2 =
              rng.power_law(alpha, static_cast<std::int64_t>(
                                       lvl_ptr[static_cast<std::size_t>(l)])) -
              1;
          cols.push_back(static_cast<index_t>(h2));
        }
      }
      b.add_row(i, cols);
    }
  }
  return b.take();
}

Csr<double> power_law_levels(index_t n, index_t nlevels, double width_ratio,
                             double alpha_row, index_t max_row,
                             double avg_row, double hub_alpha,
                             index_t hub_rows, double hub_row_fill,
                             index_t hub_cols, double hub_col_fill,
                             std::uint64_t seed) {
  BLOCKTRI_CHECK(max_row >= 1);
  Rng rng(seed);
  const std::vector<index_t> widths =
      geometric_widths(n, nlevels, width_ratio);
  const std::vector<offset_t> lvl_ptr = widths_to_ptr(widths);

  // Deterministic estimate of the truncated power-law mean so avg_row can
  // rescale the samples (same trick as power_law()).
  Rng est(seed ^ 0x5bd1e995u);
  double mean = 0.0;
  for (int k = 0; k < 2048; ++k)
    mean += static_cast<double>(est.power_law(alpha_row, max_row));
  mean /= 2048.0;

  // Super-hub rows live at the start of the last `hub_rows` levels, so each
  // can connect to almost the whole matrix without changing the level count.
  std::vector<char> is_hub(static_cast<std::size_t>(n), 0);
  for (index_t h = 0; h < hub_rows && h + 1 < nlevels; ++h)
    is_hub[static_cast<std::size_t>(
        lvl_ptr[static_cast<std::size_t>(nlevels - 1 - h)])] = 1;

  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t l = 0; l < nlevels; ++l) {
    const offset_t prev_lo =
        l > 0 ? lvl_ptr[static_cast<std::size_t>(l) - 1] : 0;
    const offset_t lvl_lo = lvl_ptr[static_cast<std::size_t>(l)];
    const offset_t prev_w = lvl_lo - prev_lo;
    for (offset_t p = lvl_lo; p < lvl_ptr[static_cast<std::size_t>(l) + 1];
         ++p) {
      const auto i = static_cast<index_t>(p);
      cols.clear();
      if (l > 0 && is_hub[static_cast<std::size_t>(i)]) {
        // Hub row: connects to hub_row_fill of everything before its level.
        cols.push_back(static_cast<index_t>(
            prev_lo + rng.uniform_int(0, prev_w - 1)));  // pin the level
        const auto want = static_cast<index_t>(
            hub_row_fill * static_cast<double>(lvl_lo));
        for (const auto c : rng.sample_distinct(0, lvl_lo - 1,
                                                std::min<offset_t>(want,
                                                                   lvl_lo)))
          cols.push_back(static_cast<index_t>(c));
        b.add_row(i, cols);
        continue;
      }
      if (l > 0 && hub_cols > 0 && rng.bernoulli(hub_col_fill)) {
        // Attach to one of the designated hub columns (front of level 0).
        cols.push_back(static_cast<index_t>(rng.uniform_int(
            0, std::min<offset_t>(hub_cols, lvl_ptr[1]) - 1)));
      }
      if (l > 0) {
        // Pinned parent in the previous level, hub-biased to its front.
        cols.push_back(static_cast<index_t>(
            prev_lo + rng.power_law(hub_alpha,
                                    static_cast<std::int64_t>(prev_w)) -
            1));
        // Power-law extra degree, parents hub-biased over all earlier
        // levels (front rows of the matrix collect huge in-degrees).
        const double s =
            static_cast<double>(rng.power_law(alpha_row, max_row));
        const auto deg = static_cast<index_t>(
            std::lround(s / mean * (avg_row - 1.0)));
        for (index_t k = 0; k + 1 < deg; ++k) {
          // Half hub-biased (long columns), half uniform (so very long rows
          // survive deduplication and stay long).
          const index_t c =
              rng.bernoulli(0.5)
                  ? static_cast<index_t>(
                        rng.power_law(hub_alpha,
                                      static_cast<std::int64_t>(lvl_lo)) -
                        1)
                  : static_cast<index_t>(rng.uniform_int(0, lvl_lo - 1));
          cols.push_back(c);
        }
      }
      b.add_row(i, cols);
    }
  }
  return b.take();
}

Csr<double> chain_banded(index_t n, index_t bandwidth, double extra_avg,
                         std::uint64_t seed) {
  BLOCKTRI_CHECK(bandwidth >= 1);
  Rng rng(seed);
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    if (i > 0) {
      cols.push_back(i - 1);  // the chain: forces nlevels == n
      const index_t bw = std::min(bandwidth, i);
      const index_t extra = fractional_count(rng, extra_avg);
      for (index_t k = 0; k < extra; ++k)
        cols.push_back(i - 1 -
                       static_cast<index_t>(rng.uniform_int(0, bw - 1)));
    }
    b.add_row(i, cols);
  }
  return b.take();
}

Csr<double> dense_lower(index_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  LowerBuilder b(n, rng);
  std::vector<index_t> cols;
  for (index_t i = 0; i < n; ++i) {
    cols.clear();
    for (index_t j = 0; j < i; ++j)
      if (rng.bernoulli(density)) cols.push_back(j);
    b.add_row(i, cols);
  }
  return b.take();
}

Csr<double> random_topological_shuffle(const Csr<double>& lower,
                                       std::uint64_t seed) {
  const index_t n = lower.nrows;
  Rng rng(seed);
  // Kahn's algorithm with random priorities: any pop order is a valid
  // topological order; random priorities make it a uniform-ish shuffle.
  const Csc<double> csc = csr_to_csc(lower);
  std::vector<index_t> indeg(static_cast<std::size_t>(n), 0);
  for (index_t i = 0; i < n; ++i)
    indeg[static_cast<std::size_t>(i)] =
        static_cast<index_t>(lower.row_nnz(i)) - 1;  // minus the diagonal
  using Entry = std::pair<std::uint64_t, index_t>;  // (priority, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (index_t i = 0; i < n; ++i)
    if (indeg[static_cast<std::size_t>(i)] == 0)
      ready.push({rng.next_u64(), i});

  std::vector<index_t> new_of_old(static_cast<std::size_t>(n));
  index_t next = 0;
  while (!ready.empty()) {
    const index_t j = ready.top().second;
    ready.pop();
    new_of_old[static_cast<std::size_t>(j)] = next++;
    for (offset_t k = csc.col_ptr[static_cast<std::size_t>(j)];
         k < csc.col_ptr[static_cast<std::size_t>(j) + 1]; ++k) {
      const index_t r = csc.row_idx[static_cast<std::size_t>(k)];
      if (r == j) continue;
      if (--indeg[static_cast<std::size_t>(r)] == 0)
        ready.push({rng.next_u64(), r});
    }
  }
  BLOCKTRI_CHECK_MSG(next == n, "dependency graph is not a DAG");
  return permute_symmetric(lower, new_of_old);
}

template <class T>
Csr<T> convert_values(const Csr<double>& a) {
  Csr<T> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.row_ptr = a.row_ptr;
  out.col_idx = a.col_idx;
  out.val.reserve(a.val.size());
  for (const double v : a.val) out.val.push_back(static_cast<T>(v));
  return out;
}

template <class T>
std::vector<T> random_rhs(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<T> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = static_cast<T>(rng.uniform(-1.0, 1.0));
  return b;
}

template Csr<float> convert_values<float>(const Csr<double>&);
template Csr<double> convert_values<double>(const Csr<double>&);
template std::vector<float> random_rhs<float>(index_t, std::uint64_t);
template std::vector<double> random_rhs<double>(index_t, std::uint64_t);

}  // namespace blocktri::gen
