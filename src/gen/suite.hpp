// The benchmark dataset registries (DESIGN.md §2).
//
//   * paper_suite()          — 159 synthetic matrices standing in for the 159
//     SuiteSparse matrices of §4.1, spanning the same structural families:
//     structured grids, banded systems, power-law circuit/network graphs,
//     saddle-point/KKT patterns, level-controlled DAGs, traces and
//     near-serial chains. Sizes are scaled down (DESIGN.md documents why
//     structure, not raw size, is the discriminating variable).
//   * representative_suite() — six matrices mimicking the structural
//     fingerprints of Table 4's representatives (nlpkkt200,
//     mawi_201512020030, kkt_power, FullChip, vas_stokes_4M, tmt_sym).
//
// Entries carry a builder rather than a matrix so harnesses can generate,
// measure and discard one matrix at a time (the whole suite would not be
// RAM-friendly materialised at once).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sparse/formats.hpp"

namespace blocktri::gen {

struct SuiteEntry {
  std::string name;
  std::string family;      // generator family, for grouping in reports
  std::string mimics;      // for representatives: the Table 4 matrix name
  /// Dataset scale factor: this matrix mimics its real counterpart at
  /// roughly 1/scale of the row count. Harnesses measure it on
  /// sim::scale_for_dataset(gpu, scale) so overhead-to-work ratios match
  /// the full-size run (see sim/machine.hpp).
  double scale = 16.0;
  std::function<Csr<double>()> build;
};

std::vector<SuiteEntry> paper_suite();

std::vector<SuiteEntry> representative_suite();

/// Lookup by name in either suite; throws if absent.
SuiteEntry find_suite_entry(const std::string& name);

}  // namespace blocktri::gen
