// Synthetic sparse lower-triangular system generators.
//
// The paper's dataset is 159 SuiteSparse matrices chosen by size filters
// (§4.1); what discriminates SpTRSV algorithms on them is *structure*: level
// count, level widths (parallelism), row-length distribution (power-law long
// rows/columns), bandwidth, and density. Each generator here produces a
// lower-triangular matrix (diagonal included, stored last in each row) with
// one of those structural fingerprints dialled in directly (DESIGN.md §2).
//
// All generators:
//   * are deterministic in (parameters, seed),
//   * emit strictly ascending columns per row with the diagonal present,
//   * fill values with off-diagonal entries in [-1, 1] and the diagonal set
//     to 1 + Σ|off-diag| (diagonal dominance), so forward substitution is
//     well-conditioned even for chains hundreds of thousands deep — the
//     float/double comparison of Fig. 7 needs both precisions to converge.
#pragma once

#include <cstdint>

#include "sparse/formats.hpp"

namespace blocktri::gen {

/// Diagonal-only system: one level, perfect parallelism (§3.4 case 1).
Csr<double> diagonal(index_t n, std::uint64_t seed);

/// First-order chain (x_i depends on x_{i-1}): n levels of width 1 — the
/// tmt_sym-like "almost no parallelism" extreme of Table 4.
Csr<double> tridiag_chain(index_t n, std::uint64_t seed);

/// Random entries within a band of the given width; `avg_in_band` entries
/// per row on average. Moderate levels, regular rows.
Csr<double> banded(index_t n, index_t bandwidth, double avg_in_band,
                   std::uint64_t seed);

/// 5-point-stencil lower part on an nx*ny grid: nx+ny-1 wavefront levels of
/// width up to min(nx, ny) — the classic structured-problem profile.
Csr<double> grid2d(index_t nx, index_t ny, std::uint64_t seed);

/// 7-point-stencil lower part on an nx*ny*nz grid.
Csr<double> grid3d(index_t nx, index_t ny, index_t nz, std::uint64_t seed);

/// True 3D 7-point Laplacian lower part on an nx*ny*nz grid: unlike grid3d
/// (random values in the stencil pattern), every off-diagonal is the
/// stencil's -1 — perturbed by a seeded jitter of at most 1e-6 so distinct
/// seeds give distinct systems — and the diagonal is the full stencil's 6,
/// which keeps each lower row strictly dominant (|6| > 3·|-1|). The
/// structural profile matches grid3d exactly: nx+ny+nz-2 wavefront levels,
/// natural (x-fastest) ordering, ascending columns with the diagonal last.
Csr<double> laplace3d(index_t nx, index_t ny, index_t nz, std::uint64_t seed);

/// Power-law matrix with preferential attachment: row degrees follow
/// P(k) ∝ k^-alpha (capped) and columns are chosen preferentially, creating
/// the hub columns that break sync-free load balance (§2.2, FullChip-like).
Csr<double> power_law(index_t n, double alpha, index_t max_degree,
                      double avg_degree, std::uint64_t seed);

/// Exact level structure: `nlevels` levels whose widths follow a geometric
/// profile (ratio 1 = uniform). Each row takes one parent in the previous
/// level (pinning its level) plus `extra_degree` parents anywhere earlier.
/// The workhorse for the Fig. 5 calibration sweeps where nlevels is an axis.
Csr<double> random_levels(index_t n, index_t nlevels, double extra_degree,
                          double width_ratio, std::uint64_t seed);

/// Two-level saddle-point profile (nlpkkt-like): the first `m` rows are
/// diagonal-only; the remaining rows couple into the first half with
/// `couple_degree` entries each. Exactly 2 levels, huge widths.
Csr<double> two_level_kkt(index_t n, index_t m, double couple_degree,
                          std::uint64_t seed);

/// Optimisation-KKT profile (kkt_power-like): a banded leading segment plus
/// a trailing segment with random couplings into the leading one — a few
/// tens of levels with wide parallelism.
Csr<double> kkt_structure(index_t n, index_t nlevels, double couple_degree,
                          std::uint64_t seed);

/// Network-trace profile (mawi-like): very few levels, enormous and wildly
/// uneven widths, power-law degrees concentrated on hub columns.
/// `width_ratio` shapes the geometric level-width decay (0.45 = front-loaded
/// mawi profile; ~1 = even widths with hubs, the FullChip-like profile).
Csr<double> trace_network(index_t n, index_t nlevels, double alpha,
                          double width_ratio, std::uint64_t seed);

/// The most faithful stand-in for the paper's hard matrices: an exact level
/// structure combined with power-law row lengths and hub columns.
///
///   * widths follow a geometric profile (`width_ratio`, as random_levels),
///   * row degrees are power-law: deg ~ avg_row * PL(alpha_row)/mean,
///     capped at max_row — the long rows that break one-thread-per-row
///     kernels (§2.2),
///   * parents are chosen with power-law position bias toward the front of
///     the eligible range, concentrating in-degree on hub columns — the
///     long columns that break sync-free load balance (§2.2).
///
/// `hub_rows` / `hub_row_fill`: number of explicit super-hub rows (the
/// power/ground-net or trace-aggregator rows of the paper's FullChip and
/// mawi matrices) and the fraction of all earlier rows each one connects
/// to. Hub rows are placed at the starts of the deepest levels so the level
/// count stays exact.
///
/// `hub_cols` / `hub_col_fill`: number of explicit super-hub COLUMNS (the
/// first rows of the matrix) and the probability that any later row depends
/// on one. A hub column makes the CSC sync-free kernel's warp issue a
/// serialised atomic storm over an enormous fan-out — the §4.2 load
/// imbalance that blocking cuts into segments.
Csr<double> power_law_levels(index_t n, index_t nlevels, double width_ratio,
                             double alpha_row, index_t max_row,
                             double avg_row, double hub_alpha,
                             index_t hub_rows, double hub_row_fill,
                             index_t hub_cols, double hub_col_fill,
                             std::uint64_t seed);

/// Serial-dominated banded profile (tmt_sym-like): every row depends on its
/// predecessor (so nlevels == n) plus `extra_avg` extra entries within the
/// band. Near-zero parallelism regardless of width.
Csr<double> chain_banded(index_t n, index_t bandwidth, double extra_avg,
                         std::uint64_t seed);

/// Dense-ish lower triangle with the given fill fraction (for the Table 1/2
/// traffic measurements, whose closed forms assume dense blocks).
Csr<double> dense_lower(index_t n, double density, std::uint64_t seed);

/// Renumbers the system by a RANDOM topological order of its dependency DAG
/// (random-priority Kahn): the result is still lower triangular and
/// represents the same system, but rows are no longer level-coherent —
/// the state real collection matrices arrive in, and the input on which the
/// §3.3 level-set reordering earns its keep (bench/ablation_reorder).
Csr<double> random_topological_shuffle(const Csr<double>& lower,
                                       std::uint64_t seed);

/// Value-type conversion for the Fig. 7 float/double comparison.
template <class T>
Csr<T> convert_values(const Csr<double>& a);

/// Deterministic right-hand side in [-1, 1].
template <class T>
std::vector<T> random_rhs(index_t n, std::uint64_t seed);

}  // namespace blocktri::gen
