// Upper-triangular solves: U x = b via backward substitution.
//
// The paper's opening sentence defines SpTRSV for "L x = b (or U x = b)";
// the solve phase of an LU factorisation needs both. The block machinery in
// core/ operates on lower triangles; upper systems are handled either
// directly (serial backward substitution below) or through the index
// reversal J (i -> n-1-i): J·U·J is lower triangular and
//   U x = b  <=>  (J U J)(J x) = (J b),
// so the full BlockSolver pipeline — preprocessing included — applies to
// upper factors too (solve_upper_with).
#pragma once

#include <vector>

#include "sparse/formats.hpp"

namespace blocktri {

/// True iff every entry satisfies col >= row and every diagonal entry is
/// present (first entry of each sorted row) and nonzero.
template <class T>
bool is_upper_triangular_nonsingular(const Csr<T>& a);

/// Serial backward substitution for U x = b. O(nnz).
template <class T>
std::vector<T> sptrsv_upper_serial(const Csr<T>& upper,
                                   const std::vector<T>& b);

/// The index-reversal mirror J·U·J (entry (i,j) = U[n-1-i][n-1-j]): lower
/// triangular whenever U is upper triangular, with sorted rows and the
/// diagonal last — ready for every lower solver in this library.
template <class T>
Csr<T> lower_mirror_of_upper(const Csr<T>& upper);

/// Solves U x = b with any lower-triangular solver: `lower_solver` is a
/// callable taking (const Csr<T>& lower, const std::vector<T>& rhs) and
/// returning the solution vector. Used by tests and examples to run the
/// recursive block algorithm on upper factors.
template <class T, class Solver>
std::vector<T> solve_upper_with(const Csr<T>& upper, const std::vector<T>& b,
                                Solver&& lower_solver) {
  // U x = b  <=>  (J U J) (J x) = (J b), and J U J is lower triangular.
  const Csr<T> mirrored = lower_mirror_of_upper(upper);
  std::vector<T> rb(b.rbegin(), b.rend());
  std::vector<T> rx = lower_solver(mirrored, rb);
  return {rx.rbegin(), rx.rend()};
}

}  // namespace blocktri
