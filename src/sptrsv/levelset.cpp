#include "sptrsv/levelset.hpp"

#include <algorithm>
#include <optional>

#include "sim/kernel_sim.hpp"
#include "sparse/triangular.hpp"
#include "sptrsv/batched.hpp"

namespace blocktri {

namespace {
constexpr double kDivideNs = 15.0;  // fp divide at the end of each component
}  // namespace

template <class T>
LevelSetSolver<T>::LevelSetSolver(Csr<T> lower, ThreadPool* pool)
    : a_(std::move(lower)) {
  BLOCKTRI_CHECK_MSG(is_lower_triangular_nonsingular(a_),
                     "LevelSetSolver requires a nonsingular lower triangle");
  ls_ = compute_level_sets(a_.nrows, a_.row_ptr, a_.col_idx, pool);
}

template <class T>
LevelSetSolver<T>::LevelSetSolver(Csr<T> lower, LevelSets levels)
    : a_(std::move(lower)), ls_(std::move(levels)) {
  BLOCKTRI_CHECK_MSG(
      ls_.level_of.size() == static_cast<std::size_t>(a_.nrows) &&
          ls_.level_item.size() == static_cast<std::size_t>(a_.nrows) &&
          ls_.level_ptr.size() == static_cast<std::size_t>(ls_.nlevels) + 1,
      "LevelSetSolver: adopted level analysis does not match the matrix");
}

template <class T>
void LevelSetSolver<T>::refresh_values(const Csr<T>& lower) {
  BLOCKTRI_CHECK_MSG(lower.nrows == a_.nrows && lower.row_ptr == a_.row_ptr &&
                         lower.col_idx == a_.col_idx,
                     "LevelSetSolver::refresh_values: structure differs");
  a_.val = lower.val;
}

template <class T>
void LevelSetSolver<T>::solve_many(const T* b, T* x, index_t k, index_t ld,
                                   ThreadPool* pool) const {
  if (k <= 0) return;
  const bool parallel = parallel_enabled(pool);
  for (index_t lvl = 0; lvl < ls_.nlevels; ++lvl) {
    const offset_t lo = ls_.level_ptr[static_cast<std::size_t>(lvl)];
    const offset_t hi = ls_.level_ptr[static_cast<std::size_t>(lvl) + 1];
    if (parallel && hi - lo >= 2 * pool->size()) {
      // Wide level: split the rows (each row owns its x entries in every
      // column), barrier at return.
      pool->parallel_for(
          static_cast<index_t>(lo), static_cast<index_t>(hi),
          [&](index_t cb, index_t ce, int) {
            for (index_t p = cb; p < ce; ++p)
              sptrsv_row_many(a_, ls_.level_item[static_cast<std::size_t>(p)],
                              b, x, 0, k, ld);
          });
    } else if (parallel && k >= 2 * pool->size()) {
      // Narrow level, many columns: split the columns instead; each chunk
      // walks the level's rows serially over its own column range.
      pool->parallel_for(0, k, [&](index_t c0, index_t c1, int) {
        for (offset_t p = lo; p < hi; ++p)
          sptrsv_row_many(a_, ls_.level_item[static_cast<std::size_t>(p)], b,
                          x, c0, c1, ld);
      });
    } else {
      for (offset_t p = lo; p < hi; ++p)
        sptrsv_row_many(a_, ls_.level_item[static_cast<std::size_t>(p)], b, x,
                        0, k, ld);
    }
  }
}

template <class T>
void LevelSetSolver<T>::solve(const T* b, T* x, const TrsvSim* s,
                              ThreadPool* pool) const {
  const int elem = static_cast<int>(sizeof(T));
  const bool simulate = s != nullptr && s->active();
  std::uint64_t addrs[kWarp];

  // Rows within a level write distinct x entries and read x only from
  // earlier levels, so any per-level partition is race-free; parallel_for's
  // deterministic chunking makes it bitwise reproducible too.
  const bool parallel = !simulate && parallel_enabled(pool);
  auto solve_row = [this, b, x](index_t i) {
    const offset_t lo = a_.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = a_.row_ptr[static_cast<std::size_t>(i) + 1];
    T left_sum = T(0);
    for (offset_t k = lo; k < hi - 1; ++k)
      left_sum += a_.val[static_cast<std::size_t>(k)] *
                  x[a_.col_idx[static_cast<std::size_t>(k)]];
    x[i] = (b[i] - left_sum) / a_.val[static_cast<std::size_t>(hi - 1)];
  };

  if (parallel) {
    for (index_t lvl = 0; lvl < ls_.nlevels; ++lvl) {
      const offset_t lo = ls_.level_ptr[static_cast<std::size_t>(lvl)];
      const offset_t hi = ls_.level_ptr[static_cast<std::size_t>(lvl) + 1];
      if (hi - lo < 2 * pool->size()) {
        // Narrow level: the fork/join barrier would dominate.
        for (offset_t p = lo; p < hi; ++p)
          solve_row(ls_.level_item[static_cast<std::size_t>(p)]);
        continue;
      }
      pool->parallel_for(
          static_cast<index_t>(lo), static_cast<index_t>(hi),
          [&](index_t cb, index_t ce, int) {
            for (index_t p = cb; p < ce; ++p)
              solve_row(ls_.level_item[static_cast<std::size_t>(p)]);
          });  // parallel_for returns = the per-level barrier (Alg. 2 l. 20)
    }
    return;
  }

  std::optional<sim::KernelSim> ks;
  if (simulate) ks.emplace(*s->gpu, s->cache, s->fp64);

  for (index_t lvl = 0; lvl < ls_.nlevels; ++lvl) {
    for (offset_t p = ls_.level_ptr[static_cast<std::size_t>(lvl)];
         p < ls_.level_ptr[static_cast<std::size_t>(lvl) + 1]; ++p) {
      const index_t i = ls_.level_item[static_cast<std::size_t>(p)];
      const offset_t lo = a_.row_ptr[static_cast<std::size_t>(i)];
      const offset_t hi = a_.row_ptr[static_cast<std::size_t>(i) + 1];

      // Host execution: components within a level are independent, so the
      // sequential order here matches any parallel order numerically
      // (distinct x entries are written).
      solve_row(i);

      if (simulate) {
        // One warp per component: gather the solved x entries of the row in
        // 32-lane groups, stream the row's structure, divide, write x[i].
        ks->begin_task();
        // Scattered row_ptr lookup (rows of a level are not contiguous).
        ks->touch(s->aux_base + static_cast<std::uint64_t>(i) * 8u, 8);
        ks->stream_bytes(static_cast<std::int64_t>(sizeof(offset_t)) +
                        (hi - lo) * (static_cast<std::int64_t>(
                                         sizeof(index_t)) +
                                     elem));
        for (offset_t k = lo; k < hi - 1; k += kWarp) {
          const int n = static_cast<int>(std::min<offset_t>(kWarp, hi - 1 - k));
          for (int l = 0; l < n; ++l)
            addrs[l] = s->x_base +
                       static_cast<std::uint64_t>(
                           a_.col_idx[static_cast<std::size_t>(k + l)]) *
                           static_cast<std::uint64_t>(elem);
          ks->gather(addrs, n, elem);
        }
        ks->touch(s->b_base + static_cast<std::uint64_t>(i) *
                                 static_cast<std::uint64_t>(elem),
                 elem);
        ks->flops(2 * (hi - lo));
        ks->serial_ns(s->gpu->divide_ns);
        ks->touch(s->x_base + static_cast<std::uint64_t>(i) *
                                 static_cast<std::uint64_t>(elem),
                 elem);
        ks->end_task();
      }
    }
    if (simulate) {
      // Barrier between levels = one kernel launch per level (Alg. 2 line 20).
      s->report->add_kernel_launch(ks->finish(), s->gpu->kernel_launch_ns);
    }
  }
}

template class LevelSetSolver<float>;
template class LevelSetSolver<double>;

}  // namespace blocktri
