#include "sptrsv/levelset.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "common/simd.hpp"
#include "sim/kernel_sim.hpp"
#include "sparse/triangular.hpp"
#include "sptrsv/batched.hpp"

namespace blocktri {

namespace {
constexpr double kDivideNs = 15.0;  // fp divide at the end of each component

bool level_merge_disabled() {
  const char* e = std::getenv("BLOCKTRI_NO_LEVEL_MERGE");
  return e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0;
}
}  // namespace

template <class T>
void LevelSetSolver<T>::compute_exec_groups() {
  group_lvl_.clear();
  group_lvl_.push_back(0);
  const bool merge = !level_merge_disabled();
  bool open_run = false;  // the last group is a run of mergeable levels
  for (index_t lvl = 0; lvl < ls_.nlevels; ++lvl) {
    const offset_t width = ls_.level_ptr[static_cast<std::size_t>(lvl) + 1] -
                           ls_.level_ptr[static_cast<std::size_t>(lvl)];
    const bool mergeable = merge && width <= merge_max_width_;
    if (mergeable && open_run) {
      group_lvl_.back() = lvl + 1;  // extend the open run
    } else {
      group_lvl_.push_back(lvl + 1);
      open_run = mergeable;
    }
  }
}

template <class T>
LevelSetSolver<T>::LevelSetSolver(Csr<T> lower, ThreadPool* pool,
                                  offset_t merge_max_width)
    : a_(std::move(lower)), merge_max_width_(merge_max_width) {
  BLOCKTRI_CHECK_MSG(is_lower_triangular_nonsingular(a_),
                     "LevelSetSolver requires a nonsingular lower triangle");
  ls_ = compute_level_sets(a_.nrows, a_.row_ptr, a_.col_idx, pool);
  compute_exec_groups();
}

template <class T>
LevelSetSolver<T>::LevelSetSolver(Csr<T> lower, LevelSets levels,
                                  offset_t merge_max_width)
    : a_(std::move(lower)),
      ls_(std::move(levels)),
      merge_max_width_(merge_max_width) {
  BLOCKTRI_CHECK_MSG(
      ls_.level_of.size() == static_cast<std::size_t>(a_.nrows) &&
          ls_.level_item.size() == static_cast<std::size_t>(a_.nrows) &&
          ls_.level_ptr.size() == static_cast<std::size_t>(ls_.nlevels) + 1,
      "LevelSetSolver: adopted level analysis does not match the matrix");
  compute_exec_groups();
}

template <class T>
void LevelSetSolver<T>::refresh_values(const Csr<T>& lower) {
  BLOCKTRI_CHECK_MSG(lower.nrows == a_.nrows && lower.row_ptr == a_.row_ptr &&
                         lower.col_idx == a_.col_idx,
                     "LevelSetSolver::refresh_values: structure differs");
  a_.val = lower.val;
}

template <class T>
void LevelSetSolver<T>::solve_many(const T* b, T* x, index_t k, index_t ld,
                                   ThreadPool* pool, const ExecControl* ctl,
                                   PanelLayout layout) const {
  if (k <= 0) return;
  // Both layouts share the level/group schedule; only the inner kernel
  // differs (identical per-column operation order either way).
  const auto rows_many = [&](offset_t p0, offset_t p1, index_t c0,
                             index_t c1) {
    if (layout == PanelLayout::kInterleaved)
      simd::sptrsv_rows_many_ilv(a_.row_ptr.data(), a_.col_idx.data(),
                                 a_.val.data(), ls_.level_item.data(), p0, p1,
                                 b, x, c0, c1, ld);
    else
      simd::sptrsv_rows_many(a_.row_ptr.data(), a_.col_idx.data(),
                             a_.val.data(), ls_.level_item.data(), p0, p1, b,
                             x, c0, c1, ld);
  };
  const bool parallel = parallel_enabled(pool);
  const index_t ngroups = exec_groups();
  for (index_t g = 0; g < ngroups; ++g) {
    if (ctl != nullptr && !ctl->check()) return;
    const index_t g_lo = group_lvl_[static_cast<std::size_t>(g)];
    const index_t g_hi = group_lvl_[static_cast<std::size_t>(g) + 1];
    const offset_t lo = ls_.level_ptr[static_cast<std::size_t>(g_lo)];
    const offset_t hi = ls_.level_ptr[static_cast<std::size_t>(g_hi)];
    const bool single_level = g_hi - g_lo == 1;
    if (parallel && single_level && hi - lo >= 2 * pool->size()) {
      // Wide level: split the rows (each row owns its x entries in every
      // column), barrier at return.
      pool->parallel_for(static_cast<index_t>(lo), static_cast<index_t>(hi),
                         [&](index_t cb, index_t ce, int) {
                           rows_many(cb, ce, 0, k);
                         });
    } else if (parallel && k >= 2 * pool->size()) {
      // Narrow/merged group, many columns: split the columns instead; each
      // chunk walks the group's rows serially (level order → dependencies
      // satisfied) over its own column range.
      pool->parallel_for(0, k, [&](index_t c0, index_t c1, int) {
        rows_many(lo, hi, c0, c1);
      });
    } else {
      rows_many(lo, hi, 0, k);
    }
  }
}

template <class T>
void LevelSetSolver<T>::solve(const T* b, T* x, const TrsvSim* s,
                              ThreadPool* pool,
                              const ExecControl* ctl) const {
  const int elem = static_cast<int>(sizeof(T));
  const bool simulate = s != nullptr && s->active();
  std::uint64_t addrs[kWarp];

  // Rows within a level write distinct x entries and read x only from
  // earlier levels, so any per-level partition is race-free; parallel_for's
  // deterministic chunking makes it bitwise reproducible too. Items inside a
  // merged group are in level order, so one flat in-order pass over the
  // group respects every dependency.
  const bool parallel = !simulate && parallel_enabled(pool);
  const auto* rp = a_.row_ptr.data();
  const auto* ci = a_.col_idx.data();
  const auto* av = a_.val.data();
  const auto* items = ls_.level_item.data();

  if (!simulate) {
    const index_t ngroups = exec_groups();
    for (index_t g = 0; g < ngroups; ++g) {
      // Deadline/cancel checkpoint at the group boundary — between the same
      // barriers Alg. 2 already pays for, so the poll costs one relaxed load.
      if (ctl != nullptr && !ctl->check()) return;
      const index_t g_lo = group_lvl_[static_cast<std::size_t>(g)];
      const index_t g_hi = group_lvl_[static_cast<std::size_t>(g) + 1];
      const offset_t lo = ls_.level_ptr[static_cast<std::size_t>(g_lo)];
      const offset_t hi = ls_.level_ptr[static_cast<std::size_t>(g_hi)];
      if (parallel && g_hi - g_lo == 1 && hi - lo >= 2 * pool->size()) {
        pool->parallel_for(
            static_cast<index_t>(lo), static_cast<index_t>(hi),
            [&](index_t cb, index_t ce, int) {
              simd::sptrsv_rows(rp, ci, av, items, cb, ce, b, x);
            });  // parallel_for returns = the per-level barrier (Alg. 2 l. 20)
      } else {
        // Narrow level or merged run of tiny levels: one flat in-order pass.
        simd::sptrsv_rows(rp, ci, av, items, lo, hi, b, x);
      }
    }
    return;
  }

  std::optional<sim::KernelSim> ks;
  ks.emplace(*s->gpu, s->cache, s->fp64);

  for (index_t lvl = 0; lvl < ls_.nlevels; ++lvl) {
    for (offset_t p = ls_.level_ptr[static_cast<std::size_t>(lvl)];
         p < ls_.level_ptr[static_cast<std::size_t>(lvl) + 1]; ++p) {
      const index_t i = ls_.level_item[static_cast<std::size_t>(p)];
      const offset_t lo = a_.row_ptr[static_cast<std::size_t>(i)];
      const offset_t hi = a_.row_ptr[static_cast<std::size_t>(i) + 1];

      // Host execution: components within a level are independent, so the
      // sequential order here matches any parallel order numerically
      // (distinct x entries are written). The single-row simd call keeps the
      // simulated branch bitwise identical to the host branch above.
      simd::sptrsv_rows(rp, ci, av, &i, 0, 1, b, x);

      // One warp per component: gather the solved x entries of the row in
      // 32-lane groups, stream the row's structure, divide, write x[i].
      ks->begin_task();
      // Scattered row_ptr lookup (rows of a level are not contiguous).
      ks->touch(s->aux_base + static_cast<std::uint64_t>(i) * 8u, 8);
      ks->stream_bytes(static_cast<std::int64_t>(sizeof(offset_t)) +
                       (hi - lo) * (static_cast<std::int64_t>(
                                        sizeof(index_t)) +
                                    elem));
      for (offset_t k = lo; k < hi - 1; k += kWarp) {
        const int n = static_cast<int>(std::min<offset_t>(kWarp, hi - 1 - k));
        for (int l = 0; l < n; ++l)
          addrs[l] = s->x_base +
                     static_cast<std::uint64_t>(
                         a_.col_idx[static_cast<std::size_t>(k + l)]) *
                         static_cast<std::uint64_t>(elem);
        ks->gather(addrs, n, elem);
      }
      ks->touch(s->b_base + static_cast<std::uint64_t>(i) *
                                static_cast<std::uint64_t>(elem),
                elem);
      ks->flops(2 * (hi - lo));
      ks->serial_ns(s->gpu->divide_ns);
      ks->touch(s->x_base + static_cast<std::uint64_t>(i) *
                                static_cast<std::uint64_t>(elem),
                elem);
      ks->end_task();
    }
    // Barrier between levels = one kernel launch per level (Alg. 2 line 20).
    s->report->add_kernel_launch(ks->finish(), s->gpu->kernel_launch_ns);
  }
}

template class LevelSetSolver<float>;
template class LevelSetSolver<double>;

}  // namespace blocktri
