// Serial CSR forward substitution — Algorithm 1 of the paper. This is the
// correctness oracle every parallel solver is tested against, and the
// reference implementation of the left_sum formulation.
#pragma once

#include <vector>

#include "sparse/formats.hpp"

namespace blocktri {

/// Solves L x = b where `lower` is lower triangular with a nonzero diagonal
/// stored as the last entry of each row. O(nnz).
template <class T>
std::vector<T> sptrsv_serial(const Csr<T>& lower, const std::vector<T>& b);

/// In-place variant over raw pointers (used by the block executor's
/// sub-solves and by tests on block-local segments).
template <class T>
void sptrsv_serial_raw(const Csr<T>& lower, const T* b, T* x);

}  // namespace blocktri
