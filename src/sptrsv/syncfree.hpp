// Synchronisation-free SpTRSV — Algorithm 3 of the paper (Liu et al.,
// Euro-Par'16 / CCPE'17). One kernel for the whole solve: each component is
// assigned a warp which busy-waits on its in-degree counter, computes its x
// entry, then pushes val*x products into the dependent components' left_sum
// accumulators with atomics and decrements their in-degree counters.
//
// Preprocessing is a single parallel pass counting in-degrees (Alg. 3 lines
// 1–5) — the cheapest analysis of the three baselines (Table 5: 2.34 ms).
//
// Cost drivers reproduced by the simulation (and called out in §2.2/§4.2):
//   * dependency chains serialise through the atomic visibility latency,
//   * long columns make a single warp issue many atomics (power-law load
//     imbalance — FullChip, vas_stokes_4M),
//   * spinning warps hold SM residency: components deep in the launch order
//     cannot even start until a slot frees (modelled by slot-holding tasks).
#pragma once

#include <vector>

#include "common/deadline.hpp"
#include "common/thread_pool.hpp"
#include "sparse/formats.hpp"
#include "sptrsv/sim_ctx.hpp"

namespace blocktri {

template <class T>
class SyncFreeSolver {
 public:
  /// Builds the CSC execution structure and the in-degree counts. The input
  /// is the lower triangle in CSR (diagonal last in each row). A pool
  /// parallelises the CSC conversion and in-degree pass; it is not retained.
  explicit SyncFreeSolver(const Csr<T>& lower, ThreadPool* pool = nullptr);

  /// Rehydration constructor for the plan-persistence subsystem: adopts the
  /// previously built CSC execution structure, strict-lower dependency rows
  /// and in-degree counts instead of recomputing them.
  SyncFreeSolver(Csc<T> csc, Csr<T> strict_rows,
                 std::vector<index_t> in_degree);

  /// Installs the values of `lower` — which must have the matrix's exact
  /// sparsity structure (CSR, diagonal last in each row) — rewriting the CSC
  /// and strict-row value arrays in place without re-deriving structure.
  void refresh_values(const Csr<T>& lower);

  /// Host solve. With a pool (and no simulation) this runs the CPU analogue
  /// of Alg. 3: components are dealt round-robin to threads (component i to
  /// thread i mod nthreads, mirroring the GPU's warp dispatch), each thread
  /// spin-waits on its component's atomic in-degree counter, solves, then
  /// pushes val·x products into the dependents' atomic left_sum slots and
  /// decrements their counters with release ordering. Accumulation order
  /// into left_sum is timing-dependent, so parallel results match the serial
  /// ones to rounding (not bitwise) — the same caveat the GPU kernel has.
  ///
  /// `scratch` (≥ n elements) lets the caller provide the serial path's
  /// left_sum accumulator so warm solves allocate nothing; nullptr falls back
  /// to a local vector. The parallel path ignores it (it needs atomics).
  ///
  /// The busy-wait is *bounded*: every spin loop carries a wall-clock budget
  /// (ctl->spin_timeout_ms(), or kDefaultSpinTimeoutMs for direct calls), so
  /// corrupted or cyclic in-degree counters time out instead of livelocking.
  /// With `ctl` attached, a timeout trips the control with kSpinTimeout and
  /// the caller observes it (x is partial); a deadline/cancel trip likewise
  /// abandons the solve mid-flight. Without `ctl`, a tripped spin budget
  /// self-heals: the block is re-solved on the serial path, which never
  /// consults the in-degree counters — slower, but correct and bounded.
  void solve(const T* b, T* x, const TrsvSim* s = nullptr,
             ThreadPool* pool = nullptr, T* scratch = nullptr,
             const ExecControl* ctl = nullptr) const;

  /// Batched solve of k right-hand sides (column-major panel, leading
  /// dimension `ld`): each column visit streams the CSC structure once and
  /// pushes val·x products for all k columns. Host only. Unlike solve()'s
  /// parallel path, the batched path never races on accumulators: a pool
  /// splits the *columns of the panel* and every chunk runs the serial
  /// ascending-order algorithm on its own left_sum scratch, so the result is
  /// bitwise identical to k independent serial solves at any thread count.
  ///
  /// `scratch` (≥ n·min(kRhsTile, k) elements) plays solve()'s role for the
  /// serial path's accumulator panel; the parallel column-split ignores it
  /// (each chunk needs its own panel and allocates locally).
  void solve_many(const T* b, T* x, index_t k, index_t ld,
                  ThreadPool* pool = nullptr, T* scratch = nullptr,
                  const ExecControl* ctl = nullptr,
                  PanelLayout layout = PanelLayout::kColMajor) const;

  const Csc<T>& matrix_csc() const { return csc_; }
  const Csr<T>& strict_rows() const { return strict_rows_; }
  const std::vector<index_t>& in_degree() const { return in_degree_; }

  /// TESTING ONLY: adds `delta` to one row's in-degree counter, simulating
  /// the corrupted dependency metadata the bounded spin-wait defends
  /// against — the parallel path then waits on a count that can never drain.
  /// The serial and batched paths ignore in-degree entirely, so a poisoned
  /// solver still produces correct results on every spin-free rung.
  void poison_in_degree_for_testing(index_t row, index_t delta) {
    in_degree_.at(static_cast<std::size_t>(row)) += delta;
  }

 private:
  Csc<T> csc_;                      // execution format (Alg. 3 is CSC)
  Csr<T> strict_rows_;              // row lists = dependency edges for the sim
  std::vector<index_t> in_degree_;  // off-diagonal nnz per row
};

}  // namespace blocktri
