#include "sptrsv/diagonal.hpp"

#include <algorithm>
#include <optional>

#include "common/simd.hpp"
#include "sim/kernel_sim.hpp"

namespace blocktri {

template <class T>
DiagonalSolver<T>::DiagonalSolver(std::vector<T> diag)
    : diag_(std::move(diag)) {
  for (const T d : diag_)
    BLOCKTRI_CHECK_MSG(d != T(0), "DiagonalSolver: zero diagonal entry");
}

template <class T>
void DiagonalSolver<T>::solve_many(const T* b, T* x, index_t k, index_t ld,
                                   ThreadPool* pool, const ExecControl* ctl,
                                   PanelLayout layout) const {
  if (ctl != nullptr && !ctl->check()) return;
  const index_t count = n();
  auto rows = [this, b, x, k, ld, layout](index_t r0, index_t r1) {
    if (layout == PanelLayout::kInterleaved) {
      // One row's k panel entries are contiguous and share the divisor —
      // the same element-wise divides, in a layout the compiler vectorises.
      for (index_t i = r0; i < r1; ++i) {
        const T d = diag_[static_cast<std::size_t>(i)];
        const T* bi =
            b + static_cast<std::size_t>(i) * static_cast<std::size_t>(ld);
        T* xi =
            x + static_cast<std::size_t>(i) * static_cast<std::size_t>(ld);
        for (index_t c = 0; c < k; ++c) xi[c] = bi[c] / d;
      }
      return;
    }
    // Element-wise divides — column order is irrelevant, so each column runs
    // through the vectorised div_rows on its contiguous row range.
    for (index_t c = 0; c < k; ++c)
      simd::div_rows(b + r0 + c * ld, diag_.data() + r0, x + r0 + c * ld,
                     r1 - r0);
  };
  if (parallel_enabled(pool) &&
      static_cast<offset_t>(count) * k >= kHostParallelMinNnz && count >= 2) {
    pool->parallel_for(0, count,
                       [&](index_t r0, index_t r1, int) { rows(r0, r1); });
    return;
  }
  rows(0, count);
}

template <class T>
void DiagonalSolver<T>::solve(const T* b, T* x, const TrsvSim* s,
                              ThreadPool* pool,
                              const ExecControl* ctl) const {
  if (ctl != nullptr && !ctl->check()) return;
  const index_t count = n();
  const int elem = static_cast<int>(sizeof(T));
  const bool simulate = s != nullptr && s->active();

  if (!simulate && parallel_enabled(pool) && count >= kHostParallelMinNnz) {
    pool->parallel_for(0, count, [&](index_t r0, index_t r1, int) {
      simd::div_rows(b + r0, diag_.data() + r0, x + r0, r1 - r0);
    });
    return;
  }

  simd::div_rows(b, diag_.data(), x, count);

  if (!simulate) return;
  std::optional<sim::KernelSim> ks;
  ks.emplace(*s->gpu, s->cache, s->fp64);
  std::uint64_t addrs[kWarp];
  for (index_t g = 0; g < count; g += kWarp) {
    const int lanes = static_cast<int>(
        std::min<index_t>(kWarp, count - g));
    ks->begin_task();
    ks->stream_bytes(static_cast<std::int64_t>(lanes) * elem);  // diag values
    for (int l = 0; l < lanes; ++l)
      addrs[l] = s->b_base + static_cast<std::uint64_t>(g + l) *
                                 static_cast<std::uint64_t>(elem);
    ks->gather(addrs, lanes, elem);
    for (int l = 0; l < lanes; ++l)
      addrs[l] = s->x_base + static_cast<std::uint64_t>(g + l) *
                                 static_cast<std::uint64_t>(elem);
    ks->gather(addrs, lanes, elem);
    // GFlops convention as in the paper: 2 flops per nonzero (a diagonal
    // block has one nonzero per row).
    ks->flops(2 * lanes);
    ks->serial_ns(s->gpu->divide_ns);
    ks->end_task();
  }
  s->report->add_kernel_launch(ks->finish(), s->gpu->kernel_launch_ns);
}

template class DiagonalSolver<float>;
template class DiagonalSolver<double>;

}  // namespace blocktri
