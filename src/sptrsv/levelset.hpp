// Level-set parallel SpTRSV — Algorithm 2 of the paper (Anderson & Saad,
// Saltz). Preprocessing groups components into levels; the solve phase
// launches one GPU kernel per level (a barrier between levels), each level
// solving its components in parallel with one warp per component.
//
// This is also the "level-set" kernel of the adaptive selector (§3.4): the
// paper finds it best for blocks with few levels and short rows (Fig. 5a).
//
// Host execution detail: long runs of tiny levels (the common shape for
// strongly sequential blocks) are merged into execution groups at
// construction. A merged group is solved as one flat pass in level order —
// dependencies inside a group only ever point at earlier items — which
// removes the per-level loop/barrier overhead without changing any
// floating-point operation or its order. Merging is a host execution detail:
// it is recomputed from the level analysis on every construction (including
// plan rehydration) and never persisted.
#pragma once

#include <vector>

#include "analysis/levels.hpp"
#include "common/deadline.hpp"
#include "common/thread_pool.hpp"
#include "sparse/formats.hpp"
#include "sptrsv/sim_ctx.hpp"

namespace blocktri {

/// Levels at most this wide are candidates for merging into one execution
/// group; wider levels stay their own group so the parallel path can still
/// split their rows.
inline constexpr offset_t kLevelMergeMaxWidth = 16;

template <class T>
class LevelSetSolver {
 public:
  /// Preprocessing (Alg. 2 lines 1–11): level analysis of the lower
  /// triangular matrix. The matrix is copied in; diagonal must be present.
  /// A pool parallelises the level-set construction (the analysis itself);
  /// it is not retained. `merge_max_width` bounds the level widths eligible
  /// for merging into one execution group (the autotuner overrides the
  /// default with a host-calibrated value; values < 1 disable merging).
  explicit LevelSetSolver(Csr<T> lower, ThreadPool* pool = nullptr,
                          offset_t merge_max_width = kLevelMergeMaxWidth);

  /// Rehydration constructor for the plan-persistence subsystem: adopts a
  /// previously computed level analysis instead of re-running it. `levels`
  /// must be the LevelSets of `lower` (checked structurally, not recomputed).
  LevelSetSolver(Csr<T> lower, LevelSets levels,
                 offset_t merge_max_width = kLevelMergeMaxWidth);

  /// Installs the values of `lower` — which must have the matrix's exact
  /// sparsity structure — without touching the level analysis. The hot path
  /// for repeated factorizations with a fixed pattern.
  void refresh_values(const Csr<T>& lower);

  /// Solve phase (Alg. 2 lines 12–22). One kernel launch per level when
  /// simulation is active. With a pool (and no simulation), the rows of each
  /// level are solved across threads with a barrier per level — the CPU
  /// realisation of Alg. 2's per-level kernel launches. Distinct x entries
  /// are written by distinct rows and chunk assignment is deterministic, so
  /// the parallel result is bitwise identical to the serial one.
  ///
  /// `ctl` is the solve session's cooperative control, polled once per
  /// execution group (the natural barrier granularity); a tripped control
  /// abandons the remaining groups, leaving x partially written.
  void solve(const T* b, T* x, const TrsvSim* s = nullptr,
             ThreadPool* pool = nullptr,
             const ExecControl* ctl = nullptr) const;

  /// Batched solve of k right-hand sides with leading dimension `ld` (panel
  /// element (i, c) at b[i + c·ld] for kColMajor, b[i·ld + c] for
  /// kInterleaved): every row visit streams the row's structure once and
  /// updates all k columns in kRhsTile-wide groups. Host only. A pool splits
  /// a level's rows (wide levels) or the columns (narrow levels, many
  /// columns); both partitions write disjoint x entries with the single-RHS
  /// operation order per column, so the result is bitwise identical to k
  /// independent serial solves at any thread count and either layout.
  void solve_many(const T* b, T* x, index_t k, index_t ld,
                  ThreadPool* pool = nullptr,
                  const ExecControl* ctl = nullptr,
                  PanelLayout layout = PanelLayout::kColMajor) const;

  const Csr<T>& matrix() const { return a_; }
  const LevelSets& levels() const { return ls_; }

  /// Number of execution groups after merging tiny adjacent levels
  /// (== nlevels when merging is disabled or nothing merged). Feeds the
  /// SolveReport levels_executed/levels_merged counters.
  index_t exec_groups() const {
    return static_cast<index_t>(group_lvl_.size()) - 1;
  }

  /// The merge-width bound this instance was built with.
  offset_t merge_max_width() const { return merge_max_width_; }

 private:
  void compute_exec_groups();

  Csr<T> a_;
  LevelSets ls_;
  offset_t merge_max_width_ = kLevelMergeMaxWidth;
  // Level-index boundaries of the execution groups: group g covers levels
  // [group_lvl_[g], group_lvl_[g+1]). Derived, never persisted.
  std::vector<index_t> group_lvl_;
};

}  // namespace blocktri
