// Shared simulation context for the SpTRSV kernels. The block executor calls
// these kernels on sub-matrices, handing each call the global simulated
// addresses of its x / b segments and scratch arrays, so cache locality is
// modelled across block boundaries exactly as the paper argues it behaves
// (§2.2: small blocks keep the live parts of x and b resident).
#pragma once

#include <cstdint>

#include "sim/cache.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"

namespace blocktri {

struct TrsvSim {
  const sim::GpuSpec* gpu = nullptr;
  sim::CacheModel* cache = nullptr;  // shared across the kernels of a solve
  bool fp64 = true;
  std::uint64_t x_base = 0;    // address of this block's x segment
  std::uint64_t b_base = 0;    // address of this block's b segment
  std::uint64_t aux_base = 0;  // left_sum / in_degree scratch for this block
  sim::SolveReport* report = nullptr;

  bool active() const { return gpu != nullptr && report != nullptr; }
};

}  // namespace blocktri
