// Shared row-visit helper for the batched (multi-RHS) SpTRSV host kernels.
//
// The batched solvers stream each row's structure (row_ptr/col_idx/val) once
// and solve every right-hand side of a column-major panel at that visit,
// instead of re-walking the structure once per RHS. Columns are processed in
// kRhsTile-wide groups accumulated on the stack; within one column the
// floating-point operation order is exactly the single-RHS kernel's
// (ascending nonzero order, then one divide), so batched results are bitwise
// identical to k independent serial solves.
#pragma once

#include "sparse/formats.hpp"

namespace blocktri {

/// Solves row `i` of the CSR lower triangle for panel columns [c0, c1):
/// x[i + c·ld] = (b[i + c·ld] − Σ_j L(i,j)·x[j + c·ld]) / L(i,i).
/// The diagonal is the last entry of the row.
template <class T>
inline void sptrsv_row_many(const Csr<T>& a, index_t i, const T* b, T* x,
                            index_t c0, index_t c1, index_t ld) {
  const offset_t lo = a.row_ptr[static_cast<std::size_t>(i)];
  const offset_t hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
  const T d = a.val[static_cast<std::size_t>(hi - 1)];
  for (index_t ct = c0; ct < c1; ct += kRhsTile) {
    const int nt = static_cast<int>(
        ct + kRhsTile <= c1 ? kRhsTile : c1 - ct);
    T acc[kRhsTile] = {};
    for (offset_t p = lo; p < hi - 1; ++p) {
      const T v = a.val[static_cast<std::size_t>(p)];
      const T* xc = x + a.col_idx[static_cast<std::size_t>(p)];
      for (int c = 0; c < nt; ++c)
        acc[c] += v * xc[static_cast<std::size_t>((ct + c)) *
                         static_cast<std::size_t>(ld)];
    }
    for (int c = 0; c < nt; ++c) {
      const std::size_t off = static_cast<std::size_t>(i) +
                              static_cast<std::size_t>(ct + c) *
                                  static_cast<std::size_t>(ld);
      x[off] = (b[off] - acc[c]) / d;
    }
  }
}

}  // namespace blocktri
