// Shared row-visit helper for the batched (multi-RHS) SpTRSV host kernels.
//
// The batched solvers stream each row's structure (row_ptr/col_idx/val) once
// and solve every right-hand side of a column-major panel at that visit,
// instead of re-walking the structure once per RHS. Columns are processed in
// kRhsTile-wide groups accumulated on the stack; within one column the
// floating-point operation order is exactly the single-RHS kernel's (the
// canonical order of common/simd.hpp, shared by every path), so batched
// results are bitwise identical to k independent serial solves.
#pragma once

#include "common/simd.hpp"
#include "sparse/formats.hpp"

namespace blocktri {

/// Solves row `i` of the CSR lower triangle for panel columns [c0, c1):
/// x[i + c·ld] = (b[i + c·ld] − Σ_j L(i,j)·x[j + c·ld]) / L(i,i).
/// The diagonal is the last entry of the row.
template <class T>
inline void sptrsv_row_many(const Csr<T>& a, index_t i, const T* b, T* x,
                            index_t c0, index_t c1, index_t ld) {
  simd::sptrsv_rows_many(a.row_ptr.data(), a.col_idx.data(), a.val.data(), &i,
                         0, 1, b, x, c0, c1, ld);
}

}  // namespace blocktri
