#include "sptrsv/cusparse_like.hpp"

#include <algorithm>
#include <optional>

#include "common/simd.hpp"
#include "sim/kernel_sim.hpp"
#include "sparse/triangular.hpp"
#include "sptrsv/batched.hpp"

namespace blocktri {

namespace {
// One thread per row: val/col_idx reads are strided per lane, not coalesced
// (same factor as the scalar SpMV kernels — see spmv/kernels.cpp).
constexpr double kUncoalescedFactor = 4.0;

// Items per deadline poll when a control is armed: large enough that the
// check disappears against the memory traffic of a chunk, small enough that
// a deadline fires promptly even on huge flat blocks.
constexpr offset_t kCtlChunkItems = 8192;
}  // namespace

template <class T>
CusparseLikeSolver<T>::CusparseLikeSolver(Csr<T> lower,
                                          index_t merge_component_budget)
    : a_(std::move(lower)) {
  BLOCKTRI_CHECK_MSG(is_lower_triangular_nonsingular(a_),
                     "CusparseLikeSolver requires a nonsingular lower triangle");
  BLOCKTRI_CHECK(merge_component_budget > 0);
  ls_ = compute_level_sets(a_);

  // Pack consecutive levels into kernels until the component budget fills —
  // Naumov's small-level merging. Wide levels get kernels of their own.
  index_t in_kernel = 0;
  for (index_t lvl = 0; lvl < ls_.nlevels; ++lvl) {
    const index_t w = ls_.level_width(lvl);
    if (kernel_first_level_.empty() || in_kernel + w > merge_component_budget) {
      kernel_first_level_.push_back(lvl);
      in_kernel = 0;
    }
    in_kernel += w;
  }
}

template <class T>
CusparseLikeSolver<T>::CusparseLikeSolver(
    Csr<T> lower, LevelSets levels, std::vector<index_t> kernel_first_level)
    : a_(std::move(lower)),
      ls_(std::move(levels)),
      kernel_first_level_(std::move(kernel_first_level)) {
  BLOCKTRI_CHECK_MSG(
      ls_.level_of.size() == static_cast<std::size_t>(a_.nrows) &&
          ls_.level_item.size() == static_cast<std::size_t>(a_.nrows) &&
          ls_.level_ptr.size() == static_cast<std::size_t>(ls_.nlevels) + 1 &&
          (ls_.nlevels == 0 || !kernel_first_level_.empty()),
      "CusparseLikeSolver: adopted schedule does not match the matrix");
}

template <class T>
void CusparseLikeSolver<T>::refresh_values(const Csr<T>& lower) {
  BLOCKTRI_CHECK_MSG(lower.nrows == a_.nrows && lower.row_ptr == a_.row_ptr &&
                         lower.col_idx == a_.col_idx,
                     "CusparseLikeSolver::refresh_values: structure differs");
  a_.val = lower.val;
}

template <class T>
void CusparseLikeSolver<T>::solve_many(const T* b, T* x, index_t k, index_t ld,
                                       const ExecControl* ctl,
                                       PanelLayout layout) const {
  if (k <= 0) return;
  const auto rows_many = [&](offset_t p0, offset_t p1) {
    if (layout == PanelLayout::kInterleaved)
      simd::sptrsv_rows_many_ilv(a_.row_ptr.data(), a_.col_idx.data(),
                                 a_.val.data(), ls_.level_item.data(), p0, p1,
                                 b, x, 0, k, ld);
    else
      simd::sptrsv_rows_many(a_.row_ptr.data(), a_.col_idx.data(),
                             a_.val.data(), ls_.level_item.data(), p0, p1, b,
                             x, 0, k, ld);
  };
  // One flat pass over the level-ordered item list — in-order processing
  // satisfies every dependency, and the barriers only matter to the cost
  // model, not to host execution. With an armed control the pass is chunked
  // (identical item order, so identical results) to create poll points.
  const offset_t end = ls_.level_ptr[static_cast<std::size_t>(ls_.nlevels)];
  if (ctl != nullptr && ctl->armed()) {
    for (offset_t p = 0; p < end; p += kCtlChunkItems) {
      if (!ctl->check()) return;
      rows_many(p, std::min<offset_t>(p + kCtlChunkItems, end));
    }
    return;
  }
  if (ctl != nullptr && !ctl->check()) return;
  rows_many(0, end);
}

template <class T>
void CusparseLikeSolver<T>::solve(const T* b, T* x, const TrsvSim* s,
                                  const ExecControl* ctl) const {
  const int elem = static_cast<int>(sizeof(T));
  const bool simulate = s != nullptr && s->active();
  std::uint64_t addrs[kWarp];

  if (!simulate) {
    // Host execution: one flat in-order pass over the level-ordered items
    // (the per-level structure only matters to the simulated cost model).
    // With an armed control the pass is chunked — identical item order, so
    // identical results — to create deadline/cancel poll points.
    const offset_t end = ls_.level_ptr[static_cast<std::size_t>(ls_.nlevels)];
    if (ctl != nullptr && ctl->armed()) {
      for (offset_t p = 0; p < end; p += kCtlChunkItems) {
        if (!ctl->check()) return;
        simd::sptrsv_rows(a_.row_ptr.data(), a_.col_idx.data(), a_.val.data(),
                          ls_.level_item.data(), p,
                          std::min<offset_t>(p + kCtlChunkItems, end), b, x);
      }
      return;
    }
    if (ctl != nullptr && !ctl->check()) return;
    simd::sptrsv_rows(a_.row_ptr.data(), a_.col_idx.data(), a_.val.data(),
                      ls_.level_item.data(), 0, end, b, x);
    return;
  }

  std::optional<sim::KernelSim> ks;
  ks.emplace(*s->gpu, s->cache, s->fp64);

  std::size_t next_kernel = 0;
  for (index_t lvl = 0; lvl < ls_.nlevels; ++lvl) {
    const bool starts_kernel =
        next_kernel < kernel_first_level_.size() &&
        kernel_first_level_[next_kernel] == lvl;
    if (starts_kernel) ++next_kernel;

    const offset_t lvl_lo = ls_.level_ptr[static_cast<std::size_t>(lvl)];
    const offset_t lvl_hi = ls_.level_ptr[static_cast<std::size_t>(lvl) + 1];

    // Host execution (same order and simd path as the non-simulated branch,
    // so simulated solves stay bitwise identical to host solves).
    simd::sptrsv_rows(a_.row_ptr.data(), a_.col_idx.data(), a_.val.data(),
                      ls_.level_item.data(), lvl_lo, lvl_hi, b, x);

    if (simulate) {
      // Cost model: ONE THREAD per component (Naumov's csrsv-style kernel),
      // so a warp covers 32 components of the level and diverges to the
      // longest row among them — the scalar-kernel pathology on irregular
      // rows that §3.4 contrasts with warp-per-row processing.
      for (offset_t g = lvl_lo; g < lvl_hi; g += kWarp) {
        const int lanes = static_cast<int>(std::min<offset_t>(kWarp,
                                                              lvl_hi - g));
        ks->begin_task();
        offset_t max_len = 0;
        std::int64_t group_nnz = 0;
        for (int l = 0; l < lanes; ++l) {
          const index_t i = ls_.level_item[static_cast<std::size_t>(g + l)];
          const offset_t len = a_.row_nnz(i);
          max_len = std::max(max_len, len);
          group_nnz += len;
          // Rows of a level are scattered through the matrix, so each lane's
          // row_ptr lookup is a random access (modelled in the aux region) —
          // a real cost of level-scheduled execution that natural-order
          // kernels do not pay.
          addrs[l] = s->aux_base + static_cast<std::uint64_t>(i) * 8u;
        }
        ks->gather(addrs, lanes, 8);
        ks->stream_bytes(
            static_cast<std::int64_t>(lanes) *
                static_cast<std::int64_t>(sizeof(offset_t) +
                                          sizeof(index_t)) +
            static_cast<std::int64_t>(kUncoalescedFactor *
                                      static_cast<double>(group_nnz) *
                                      (sizeof(index_t) + elem)));
        for (offset_t it = 0; it + 1 < max_len; ++it) {
          int n = 0;
          for (int l = 0; l < lanes; ++l) {
            const index_t i = ls_.level_item[static_cast<std::size_t>(g + l)];
            const offset_t k = a_.row_ptr[static_cast<std::size_t>(i)] + it;
            if (k < a_.row_ptr[static_cast<std::size_t>(i) + 1] - 1)
              addrs[n++] =
                  s->x_base +
                  static_cast<std::uint64_t>(
                      a_.col_idx[static_cast<std::size_t>(k)]) *
                      static_cast<std::uint64_t>(elem);
          }
          if (n > 0) ks->gather(addrs, n, elem);
        }
        ks->flops(2 * group_nnz);
        ks->serial_ns(s->gpu->divide_ns);
        int n = 0;
        for (int l = 0; l < lanes; ++l)
          addrs[n++] = s->b_base +
                       static_cast<std::uint64_t>(ls_.level_item[
                           static_cast<std::size_t>(g + l)]) *
                           static_cast<std::uint64_t>(elem);
        ks->gather(addrs, n, elem);
        n = 0;
        for (int l = 0; l < lanes; ++l)
          addrs[n++] = s->x_base +
                       static_cast<std::uint64_t>(ls_.level_item[
                           static_cast<std::size_t>(g + l)]) *
                           static_cast<std::uint64_t>(elem);
        ks->gather(addrs, n, elem);
        ks->end_task();
      }

      // Every level ends at a synchronisation point, but only the first
      // level of a merged group pays a kernel launch; the following levels
      // of the group pay the cheaper intra-kernel device-wide barrier.
      const sim::KernelReport rep = ks->finish();
      if (starts_kernel) {
        s->report->add_kernel_launch(rep, s->gpu->kernel_launch_ns);
      } else {
        s->report->add_kernel_grid_sync(rep, s->gpu->grid_sync_ns);
      }
    }
  }
}

template class CusparseLikeSolver<float>;
template class CusparseLikeSolver<double>;

}  // namespace blocktri
