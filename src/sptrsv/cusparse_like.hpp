// cuSPARSE-v2-style SpTRSV stand-in (see DESIGN.md §2).
//
// cuSPARSE's csrsv2 is closed source; its public description (Naumov,
// "Parallel Solution of Sparse Triangular Linear Systems in the
// Preconditioned Iterative Methods on the GPU", NVIDIA TR 2011 — the paper's
// [58]) is a level-scheduling method that merges consecutive *small* levels
// into a single kernel to amortise launch overhead, synchronising the merged
// levels with a cheap intra-kernel device-wide barrier instead of a fresh
// launch. That merging is why cuSPARSE stays usable on matrices with
// thousands of levels (Table 4: vas_stokes_4M, 2815 levels, 15.39 GFlops)
// where a naive one-launch-per-level scheme would drown in launches — and
// why the paper routes "nlevels > 20000" blocks to cuSPARSE (Alg. 7).
#pragma once

#include <vector>

#include "analysis/levels.hpp"
#include "common/deadline.hpp"
#include "sparse/formats.hpp"
#include "sptrsv/sim_ctx.hpp"

namespace blocktri {

template <class T>
class CusparseLikeSolver {
 public:
  /// `merge_component_budget`: consecutive levels are packed into one kernel
  /// until their combined component count reaches this budget (default: one
  /// full wave of resident warps on the Titan RTX preset). A level bigger
  /// than the budget gets a kernel of its own.
  explicit CusparseLikeSolver(Csr<T> lower,
                              index_t merge_component_budget = 2304);

  /// Rehydration constructor for the plan-persistence subsystem: adopts a
  /// previously computed level analysis and merged-kernel schedule instead
  /// of re-deriving them.
  CusparseLikeSolver(Csr<T> lower, LevelSets levels,
                     std::vector<index_t> kernel_first_level);

  /// Installs the values of `lower` — which must have the matrix's exact
  /// sparsity structure — without touching the schedule.
  void refresh_values(const Csr<T>& lower);

  /// `ctl` is the solve session's cooperative control. The host path is one
  /// flat pass with no natural barriers, so when a deadline or cancel token
  /// is actually armed the pass is chunked (same item order — bitwise
  /// identical) with a poll between chunks; unarmed solves keep the single
  /// flat call.
  void solve(const T* b, T* x, const TrsvSim* s = nullptr,
             const ExecControl* ctl = nullptr) const;

  /// Batched solve of k right-hand sides (column-major panel, leading
  /// dimension `ld`): the merged level schedule is walked once and every row
  /// visit solves all k columns. Host only; like solve(), the host path is
  /// intentionally serial, and per column it is bitwise identical to k
  /// single solves.
  void solve_many(const T* b, T* x, index_t k, index_t ld,
                  const ExecControl* ctl = nullptr,
                  PanelLayout layout = PanelLayout::kColMajor) const;

  const Csr<T>& matrix() const { return a_; }
  const LevelSets& levels() const { return ls_; }

  /// Number of kernel launches the merged schedule issues (<= nlevels).
  index_t num_merged_kernels() const {
    return static_cast<index_t>(kernel_first_level_.size());
  }

  /// The merged schedule itself (first level of each kernel) — captured by
  /// the plan-persistence subsystem.
  const std::vector<index_t>& kernel_first_levels() const {
    return kernel_first_level_;
  }

 private:
  Csr<T> a_;
  LevelSets ls_;
  // kernel_first_level_[k] = first level of merged kernel k; levels
  // [kernel_first_level_[k], kernel_first_level_[k+1]) share one launch.
  std::vector<index_t> kernel_first_level_;
};

}  // namespace blocktri
