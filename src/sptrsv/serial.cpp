#include "sptrsv/serial.hpp"

#include "sparse/triangular.hpp"

namespace blocktri {

template <class T>
void sptrsv_serial_raw(const Csr<T>& lower, const T* b, T* x) {
  for (index_t i = 0; i < lower.nrows; ++i) {
    const offset_t lo = lower.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = lower.row_ptr[static_cast<std::size_t>(i) + 1];
    // Algorithm 1: accumulate left_sum over the already-solved components,
    // then divide by the diagonal (last entry of the sorted row).
    T left_sum = T(0);
    for (offset_t k = lo; k < hi - 1; ++k)
      left_sum += lower.val[static_cast<std::size_t>(k)] *
                  x[lower.col_idx[static_cast<std::size_t>(k)]];
    x[i] = (b[i] - left_sum) / lower.val[static_cast<std::size_t>(hi - 1)];
  }
}

template <class T>
std::vector<T> sptrsv_serial(const Csr<T>& lower, const std::vector<T>& b) {
  BLOCKTRI_CHECK_MSG(is_lower_triangular_nonsingular(lower),
                     "sptrsv_serial requires a nonsingular lower triangle");
  BLOCKTRI_CHECK(b.size() == static_cast<std::size_t>(lower.nrows));
  std::vector<T> x(static_cast<std::size_t>(lower.nrows));
  sptrsv_serial_raw(lower, b.data(), x.data());
  return x;
}

#define BLOCKTRI_INSTANTIATE(T)                                        \
  template void sptrsv_serial_raw(const Csr<T>&, const T*, T*);        \
  template std::vector<T> sptrsv_serial(const Csr<T>&, const std::vector<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
