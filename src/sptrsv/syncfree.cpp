#include "sptrsv/syncfree.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include "sim/kernel_sim.hpp"
#include "sparse/convert.hpp"
#include "sparse/triangular.hpp"

namespace blocktri {

template <class T>
SyncFreeSolver<T>::SyncFreeSolver(const Csr<T>& lower, ThreadPool* pool) {
  BLOCKTRI_CHECK_MSG(is_lower_triangular_nonsingular(lower),
                     "SyncFreeSolver requires a nonsingular lower triangle");
  csc_ = csr_to_csc(lower, pool);
  // Dependency edges for the simulator: component i waits for every j < i
  // with L[i,j] != 0, i.e. the strictly-lower entries of row i.
  StrictLowerSplit<T> split = split_diagonal(lower);
  strict_rows_ = std::move(split.strict);
  in_degree_.assign(static_cast<std::size_t>(lower.nrows), 0);
  auto fill_degrees = [this](index_t r0, index_t r1) {
    for (index_t i = r0; i < r1; ++i)
      in_degree_[static_cast<std::size_t>(i)] =
          static_cast<index_t>(strict_rows_.row_nnz(i));
  };
  if (parallel_enabled(pool) && lower.nrows >= kHostParallelMinNnz) {
    pool->parallel_for(0, lower.nrows,
                       [&](index_t r0, index_t r1, int) {
                         fill_degrees(r0, r1);
                       });
  } else {
    fill_degrees(0, lower.nrows);
  }
}

template <class T>
SyncFreeSolver<T>::SyncFreeSolver(Csc<T> csc, Csr<T> strict_rows,
                                  std::vector<index_t> in_degree)
    : csc_(std::move(csc)),
      strict_rows_(std::move(strict_rows)),
      in_degree_(std::move(in_degree)) {
  BLOCKTRI_CHECK_MSG(
      csc_.nrows == csc_.ncols &&
          strict_rows_.nrows == csc_.nrows &&
          in_degree_.size() == static_cast<std::size_t>(csc_.nrows),
      "SyncFreeSolver: adopted execution structure is inconsistent");
}

template <class T>
void SyncFreeSolver<T>::refresh_values(const Csr<T>& lower) {
  BLOCKTRI_CHECK_MSG(lower.nrows == csc_.nrows && lower.nnz() == csc_.nnz(),
                     "SyncFreeSolver::refresh_values: structure differs");
  // CSC values via a cursor pass over the fixed column-pointer structure —
  // the value-scatter half of csr_to_csc, with the counting half skipped.
  std::vector<offset_t> cursor(csc_.col_ptr.begin(), csc_.col_ptr.end() - 1);
  offset_t strict_pos = 0;
  for (index_t i = 0; i < lower.nrows; ++i) {
    for (offset_t k = lower.row_ptr[static_cast<std::size_t>(i)];
         k < lower.row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto j =
          static_cast<std::size_t>(lower.col_idx[static_cast<std::size_t>(k)]);
      const auto pos = static_cast<std::size_t>(cursor[j]++);
      BLOCKTRI_CHECK_MSG(csc_.row_idx[pos] == i,
                         "SyncFreeSolver::refresh_values: structure differs");
      csc_.val[pos] = lower.val[static_cast<std::size_t>(k)];
      if (lower.col_idx[static_cast<std::size_t>(k)] != i) {
        // Strictly-lower entries appear in the same row-major order in the
        // dependency-edge CSR built by split_diagonal.
        BLOCKTRI_CHECK_MSG(
            strict_pos < strict_rows_.nnz() &&
                strict_rows_.col_idx[static_cast<std::size_t>(strict_pos)] ==
                    lower.col_idx[static_cast<std::size_t>(k)],
            "SyncFreeSolver::refresh_values: structure differs");
        strict_rows_.val[static_cast<std::size_t>(strict_pos++)] =
            lower.val[static_cast<std::size_t>(k)];
      }
    }
  }
  BLOCKTRI_CHECK(strict_pos == strict_rows_.nnz());
}

namespace {

/// Parallel host solve: Algorithm 3 on CPU threads. Each component owns one
/// atomic in-degree counter and one atomic left_sum accumulator; producers
/// fetch_add the product then fetch_sub(1, release) the counter, and the
/// consumer's acquire load of 0 pairs with every decrement in the release
/// sequence, making all contributions visible before x_i is computed.
///
/// `ctl` is never null here: the spin-waits are *bounded* by its wall-clock
/// budget (a healthy matrix drains every counter long before the budget; a
/// corrupted one trips kSpinTimeout instead of livelocking), and a tripped
/// control — spin timeout, deadline or cancel, from any thread — makes every
/// thread abandon its remaining components. x is partial after a trip.
template <class T>
void syncfree_parallel(const Csc<T>& csc, const T* b, T* x,
                       const std::vector<index_t>& in_degree,
                       ThreadPool* pool, const ExecControl* ctl) {
  const index_t n = csc.ncols;
  const std::unique_ptr<std::atomic<T>[]> left(new std::atomic<T>[
      static_cast<std::size_t>(n)]);
  const std::unique_ptr<std::atomic<index_t>[]> deg(new std::atomic<index_t>[
      static_cast<std::size_t>(n)]);
  // The pool's fork/join barrier orders this initialisation before any
  // solving thread starts.
  pool->parallel_for(0, n, [&](index_t r0, index_t r1, int) {
    for (index_t i = r0; i < r1; ++i) {
      left[i].store(T(0), std::memory_order_relaxed);
      deg[i].store(in_degree[static_cast<std::size_t>(i)],
                   std::memory_order_relaxed);
    }
  });

  using Clock = std::chrono::steady_clock;
  const Clock::time_point spin_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double, std::milli>(
                             ctl->spin_timeout_ms()));

  const int nthreads = pool->size();
  pool->run(nthreads, [&](int tid) {
    for (index_t i = tid; i < n; i += static_cast<index_t>(nthreads)) {
      if (ctl->tripped()) return;
      // Busy-wait until every dependency has published its contribution.
      // Deadlock-free on healthy inputs: each thread walks its components in
      // ascending order and dependencies only point to smaller indices, so
      // the smallest unsolved component is always runnable. yield() keeps
      // the spin honest when threads are oversubscribed on few cores, and
      // the wall-clock budget keeps it *bounded* when the counters are
      // corrupt — the escalation ladder is: 64 spins → yield, 1024 yields →
      // read the clock + poll deadline/cancel, budget exceeded → trip
      // kSpinTimeout so every thread (including the ones spinning on other
      // components) bails.
      int spins = 0;
      int yields = 0;
      while (deg[i].load(std::memory_order_acquire) != 0) {
        if (ctl->tripped()) return;
        if (++spins > 64) {
          std::this_thread::yield();
          spins = 0;
          if (++yields >= 1024) {
            yields = 0;
            if (!ctl->check()) return;
            if (Clock::now() >= spin_deadline) {
              ctl->trip(StatusCode::kSpinTimeout);
              return;
            }
          }
        }
      }
      const offset_t clo = csc.col_ptr[static_cast<std::size_t>(i)];
      const offset_t chi = csc.col_ptr[static_cast<std::size_t>(i) + 1];
      const T xi = (b[i] - left[i].load(std::memory_order_relaxed)) /
                   csc.val[static_cast<std::size_t>(clo)];
      x[i] = xi;
      for (offset_t k = clo + 1; k < chi; ++k) {
        const auto row = static_cast<std::size_t>(
            csc.row_idx[static_cast<std::size_t>(k)]);
        left[row].fetch_add(csc.val[static_cast<std::size_t>(k)] * xi,
                            std::memory_order_relaxed);
        deg[row].fetch_sub(1, std::memory_order_release);
      }
    }
  });
}

}  // namespace

namespace {

/// Serial batched solve over panel columns [c0, c1): ascending column order
/// of Alg. 3's linearisation, one kRhsTile-wide accumulator panel reused per
/// tile so the CSC structure is streamed once per tile instead of once per
/// RHS.
template <class T>
void syncfree_columns_many(const Csc<T>& csc, const T* b, T* x, index_t c0,
                           index_t c1, index_t ld, T* scratch,
                           const ExecControl* ctl) {
  const index_t n = csc.ncols;
  const auto nu = static_cast<std::size_t>(n);
  std::vector<T> local;
  T* left_buf = scratch;
  if (left_buf == nullptr) {
    local.resize(nu * static_cast<std::size_t>(
                          std::min<index_t>(kRhsTile, c1 - c0)));
    left_buf = local.data();
  }
  for (index_t ct = c0; ct < c1; ct += kRhsTile) {
    if (ctl != nullptr && !ctl->check()) return;
    const int nt = static_cast<int>(
        ct + kRhsTile <= c1 ? kRhsTile : c1 - ct);
    std::fill(left_buf, left_buf + nu * static_cast<std::size_t>(nt), T(0));
    for (index_t i = 0; i < n; ++i) {
      const offset_t clo = csc.col_ptr[static_cast<std::size_t>(i)];
      const offset_t chi = csc.col_ptr[static_cast<std::size_t>(i) + 1];
      const T d = csc.val[static_cast<std::size_t>(clo)];
      T xi[kRhsTile];
      for (int c = 0; c < nt; ++c) {
        const std::size_t off = static_cast<std::size_t>(i) +
                                static_cast<std::size_t>(ct + c) *
                                    static_cast<std::size_t>(ld);
        xi[c] = (b[off] - left_buf[static_cast<std::size_t>(i) + nu * c]) / d;
        x[off] = xi[c];
      }
      for (offset_t p = clo + 1; p < chi; ++p) {
        const auto row = static_cast<std::size_t>(
            csc.row_idx[static_cast<std::size_t>(p)]);
        const T v = csc.val[static_cast<std::size_t>(p)];
        for (int c = 0; c < nt; ++c) left_buf[row + nu * c] += v * xi[c];
      }
    }
  }
}

/// Interleaved-panel counterpart of syncfree_columns_many: panel element
/// (i, c) at b[i·ld + c], and the accumulator panel keeps one row's tile
/// entries adjacent (left_buf[i·nt + c]) so both the x/b traffic and the
/// scatter updates are unit-stride across the tile. Per column the
/// accumulation order is identical (ascending components, ascending rows
/// within a column), so results stay bitwise equal to the column-major path.
template <class T>
void syncfree_columns_many_ilv(const Csc<T>& csc, const T* b, T* x, index_t c0,
                               index_t c1, index_t ld, T* scratch,
                               const ExecControl* ctl) {
  const index_t n = csc.ncols;
  const auto nu = static_cast<std::size_t>(n);
  std::vector<T> local;
  T* left_buf = scratch;
  if (left_buf == nullptr) {
    local.resize(nu * static_cast<std::size_t>(
                          std::min<index_t>(kRhsTile, c1 - c0)));
    left_buf = local.data();
  }
  for (index_t ct = c0; ct < c1; ct += kRhsTile) {
    if (ctl != nullptr && !ctl->check()) return;
    const int nt = static_cast<int>(
        ct + kRhsTile <= c1 ? kRhsTile : c1 - ct);
    const auto ntu = static_cast<std::size_t>(nt);
    std::fill(left_buf, left_buf + nu * ntu, T(0));
    for (index_t i = 0; i < n; ++i) {
      const offset_t clo = csc.col_ptr[static_cast<std::size_t>(i)];
      const offset_t chi = csc.col_ptr[static_cast<std::size_t>(i) + 1];
      const T d = csc.val[static_cast<std::size_t>(clo)];
      const T* bi = b + static_cast<std::size_t>(i) *
                            static_cast<std::size_t>(ld) +
                    ct;
      T* xi = x + static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(ld) +
              ct;
      T* li = left_buf + static_cast<std::size_t>(i) * ntu;
      T xi_loc[kRhsTile];
      for (int c = 0; c < nt; ++c) {
        xi_loc[c] = (bi[c] - li[c]) / d;
        xi[c] = xi_loc[c];
      }
      for (offset_t p = clo + 1; p < chi; ++p) {
        T* lr = left_buf + static_cast<std::size_t>(
                               csc.row_idx[static_cast<std::size_t>(p)]) *
                               ntu;
        const T v = csc.val[static_cast<std::size_t>(p)];
        for (int c = 0; c < nt; ++c) lr[c] += v * xi_loc[c];
      }
    }
  }
}

}  // namespace

template <class T>
void SyncFreeSolver<T>::solve_many(const T* b, T* x, index_t k, index_t ld,
                                   ThreadPool* pool, T* scratch,
                                   const ExecControl* ctl,
                                   PanelLayout layout) const {
  if (k <= 0) return;
  if (ctl != nullptr && !ctl->check()) return;
  const bool ilv = layout == PanelLayout::kInterleaved;
  if (parallel_enabled(pool) && k >= 2 &&
      static_cast<offset_t>(k) * csc_.nnz() >= kHostParallelMinNnz) {
    // Column chunks run concurrently, each needing its own accumulator
    // panel — the shared scratch would race, so chunks allocate locally.
    // Each chunk polls the control per tile (check() is thread-safe).
    pool->parallel_for(0, k, [&](index_t c0, index_t c1, int) {
      if (ilv)
        syncfree_columns_many_ilv(csc_, b, x, c0, c1, ld,
                                  static_cast<T*>(nullptr), ctl);
      else
        syncfree_columns_many(csc_, b, x, c0, c1, ld,
                              static_cast<T*>(nullptr), ctl);
    });
    return;
  }
  if (ilv)
    syncfree_columns_many_ilv(csc_, b, x, 0, k, ld, scratch, ctl);
  else
    syncfree_columns_many(csc_, b, x, 0, k, ld, scratch, ctl);
}

template <class T>
void SyncFreeSolver<T>::solve(const T* b, T* x, const TrsvSim* s,
                              ThreadPool* pool, T* scratch,
                              const ExecControl* ctl) const {
  const index_t n = csc_.ncols;
  const int elem = static_cast<int>(sizeof(T));
  const bool simulate = s != nullptr && s->active();

  if (!simulate && parallel_enabled(pool) && n >= 2 * pool->size()) {
    if (ctl != nullptr) {
      if (!ctl->check()) return;
      // The trip (spin timeout, deadline, cancel) is the caller's to
      // observe; x is partial after one.
      syncfree_parallel(csc_, b, x, in_degree_, pool, ctl);
      return;
    }
    // Direct kernel call with no status channel: bound the spin with a local
    // control and self-heal on a trip by falling through to the serial path
    // below, which never consults the in-degree counters — a corrupted
    // counter costs the spin budget once, not a livelock.
    const ExecControl local;
    syncfree_parallel(csc_, b, x, in_degree_, pool, &local);
    if (!local.tripped()) return;
  }

  if (ctl != nullptr && !ctl->check()) return;

  // Host execution, faithful to Algorithm 3's data flow: a left_sum
  // accumulator per component, updated column by column. Processing
  // components in ascending order is a valid linearisation of the
  // dependency partial order (the matrix is lower triangular).
  std::vector<T> left_local;
  T* left_sum = scratch;
  if (left_sum == nullptr) {
    left_local.assign(static_cast<std::size_t>(n), T(0));
    left_sum = left_local.data();
  } else {
    std::fill(left_sum, left_sum + n, T(0));
  }

  std::optional<sim::KernelSim> ks;
  if (simulate) ks.emplace(*s->gpu, s->cache, s->fp64);
  std::uint64_t addrs[kWarp];
  if (simulate) {
    // Reset kernel: left_sum must be zeroed and in_degree restored before
    // every solve (Alg. 3's counters are consumed by the previous run) — a
    // real extra launch the level-set methods do not pay.
    ks->begin_task();
    ks->stream_bytes(static_cast<std::int64_t>(n) * (elem + 4));
    ks->end_task();
    s->report->add_kernel_launch(ks->finish(), s->gpu->kernel_launch_ns);
  }
  // Scratch address layout: left_sum[i] then in_degree[i] per component.
  const std::uint64_t ls_base = simulate ? s->aux_base : 0;
  const std::uint64_t deg_base =
      simulate ? s->aux_base + static_cast<std::uint64_t>(n) *
                                   static_cast<std::uint64_t>(elem)
               : 0;

  for (index_t i = 0; i < n; ++i) {
    // Armed controls are polled every 8192 components — the same chunk
    // granularity the flat level-ordered kernels use.
    if (ctl != nullptr && (i & 8191) == 0 && !ctl->check()) return;
    const offset_t clo = csc_.col_ptr[static_cast<std::size_t>(i)];
    const offset_t chi = csc_.col_ptr[static_cast<std::size_t>(i) + 1];
    // Diagonal-first within the column: rows are sorted ascending and the
    // diagonal is the smallest row index in a lower triangle's column.
    BLOCKTRI_DCHECK(csc_.row_idx[static_cast<std::size_t>(clo)] == i);
    x[i] = (b[i] - left_sum[static_cast<std::size_t>(i)]) /
           csc_.val[static_cast<std::size_t>(clo)];
    for (offset_t k = clo + 1; k < chi; ++k)
      left_sum[static_cast<std::size_t>(
          csc_.row_idx[static_cast<std::size_t>(k)])] +=
          csc_.val[static_cast<std::size_t>(k)] * x[i];

    if (simulate) {
      ks->begin_task();
      // Busy-wait: at minimum one read of the in-degree counter; the real
      // waiting time is produced by the scheduler through the dependency
      // edges below (and the slot is held while waiting).
      for (offset_t k = strict_rows_.row_ptr[static_cast<std::size_t>(i)];
           k < strict_rows_.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        ks->dep(strict_rows_.col_idx[static_cast<std::size_t>(k)]);
      ks->touch(deg_base + static_cast<std::uint64_t>(i) * 4u, 4);

      // Compute x_i: read b_i and left_sum_i, stream the diagonal value,
      // divide, write x_i.
      ks->touch(s->b_base + static_cast<std::uint64_t>(i) *
                                static_cast<std::uint64_t>(elem),
                elem);
      ks->touch(ls_base + static_cast<std::uint64_t>(i) *
                              static_cast<std::uint64_t>(elem),
                elem);
      ks->stream_bytes(static_cast<std::int64_t>(sizeof(offset_t)) + elem);
      ks->serial_ns(s->gpu->divide_ns);
      ks->touch(s->x_base + static_cast<std::uint64_t>(i) *
                                static_cast<std::uint64_t>(elem),
                elem);

      // Notify dependents: stream the column structure, one atomic add on
      // left_sum and one atomic decrement on in_degree per entry (Alg. 3
      // lines 12–15), issued by the warp's lanes in 32-wide groups.
      const offset_t col_len = chi - (clo + 1);
      ks->stream_bytes(col_len * (static_cast<std::int64_t>(sizeof(index_t)) +
                                  elem));
      ks->flops(2 * col_len + 2);
      for (offset_t k = clo + 1; k < chi; k += kWarp) {
        const int g = static_cast<int>(std::min<offset_t>(kWarp, chi - k));
        for (int l = 0; l < g; ++l)
          addrs[l] = ls_base +
                     static_cast<std::uint64_t>(
                         csc_.row_idx[static_cast<std::size_t>(k + l)]) *
                         static_cast<std::uint64_t>(elem);
        ks->atomic(addrs, g, elem);
        for (int l = 0; l < g; ++l)
          addrs[l] = deg_base +
                     static_cast<std::uint64_t>(
                         csc_.row_idx[static_cast<std::size_t>(k + l)]) *
                         4u;
        ks->atomic(addrs, g, 4);
      }
      ks->end_task();
    }
  }

  if (simulate) {
    // The whole solve is one kernel launch — the algorithm's selling point.
    s->report->add_kernel_launch(ks->finish(), s->gpu->kernel_launch_ns);
  }
}

template class SyncFreeSolver<float>;
template class SyncFreeSolver<double>;

}  // namespace blocktri
