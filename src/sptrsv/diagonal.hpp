// Completely-parallel SpTRSV for diagonal-only blocks (§3.4 case 1): after
// the level-set reordering, many leaf triangular blocks of the recursive
// layout contain nothing but their diagonal, so x_i = b_i / d_i with perfect
// parallelism — one kernel, no dependencies at all.
#pragma once

#include <vector>

#include "common/deadline.hpp"
#include "common/thread_pool.hpp"
#include "sparse/formats.hpp"
#include "sptrsv/sim_ctx.hpp"

namespace blocktri {

template <class T>
class DiagonalSolver {
 public:
  /// `diag` is the dense diagonal of the block (all entries nonzero).
  explicit DiagonalSolver(std::vector<T> diag);

  /// Embarrassingly parallel on the host: a pool splits the range into
  /// contiguous chunks (bitwise deterministic — disjoint writes). `ctl` is
  /// the solve session's cooperative control — one elementwise pass is the
  /// natural check granularity here, so it is polled once on entry.
  void solve(const T* b, T* x, const TrsvSim* s = nullptr,
             ThreadPool* pool = nullptr,
             const ExecControl* ctl = nullptr) const;

  /// Batched solve of k right-hand sides with leading dimension `ld` (panel
  /// element (i, c) at b[i + c·ld] for kColMajor, b[i·ld + c] for
  /// kInterleaved): the diagonal is streamed once and divides all k columns
  /// per row. Host only; bitwise identical to k single solves at any thread
  /// count and either layout (disjoint writes, element-wise divides).
  void solve_many(const T* b, T* x, index_t k, index_t ld,
                  ThreadPool* pool = nullptr,
                  const ExecControl* ctl = nullptr,
                  PanelLayout layout = PanelLayout::kColMajor) const;

  index_t n() const { return static_cast<index_t>(diag_.size()); }

  /// The dense diagonal — captured by the plan-persistence subsystem.
  const std::vector<T>& diag() const { return diag_; }

  /// Installs a new diagonal of the same length (value refresh for repeated
  /// factorizations with a fixed pattern).
  void refresh_values(std::vector<T> diag) {
    BLOCKTRI_CHECK_MSG(diag.size() == diag_.size(),
                       "DiagonalSolver::refresh_values: length differs");
    diag_ = std::move(diag);
  }

 private:
  std::vector<T> diag_;
};

}  // namespace blocktri
