#include "sptrsv/upper.hpp"

#include <algorithm>

namespace blocktri {

template <class T>
bool is_upper_triangular_nonsingular(const Csr<T>& a) {
  if (a.nrows != a.ncols) return false;
  for (index_t i = 0; i < a.nrows; ++i) {
    const offset_t lo = a.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    if (lo == hi) return false;  // empty row: no diagonal
    // Sorted row of an upper triangle starts at the diagonal.
    if (a.col_idx[static_cast<std::size_t>(lo)] != i) return false;
    if (a.val[static_cast<std::size_t>(lo)] == T(0)) return false;
  }
  return true;
}

template <class T>
std::vector<T> sptrsv_upper_serial(const Csr<T>& upper,
                                   const std::vector<T>& b) {
  BLOCKTRI_CHECK_MSG(is_upper_triangular_nonsingular(upper),
                     "sptrsv_upper_serial requires a nonsingular upper "
                     "triangle");
  BLOCKTRI_CHECK(b.size() == static_cast<std::size_t>(upper.nrows));
  std::vector<T> x(static_cast<std::size_t>(upper.nrows));
  for (index_t i = upper.nrows - 1; i >= 0; --i) {
    const offset_t lo = upper.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = upper.row_ptr[static_cast<std::size_t>(i) + 1];
    T sum = b[static_cast<std::size_t>(i)];
    for (offset_t k = lo + 1; k < hi; ++k)  // entries right of the diagonal
      sum -= upper.val[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(
                 upper.col_idx[static_cast<std::size_t>(k)])];
    x[static_cast<std::size_t>(i)] = sum / upper.val[static_cast<std::size_t>(lo)];
    if (i == 0) break;  // index_t is signed, but avoid relying on wrap
  }
  return x;
}

template <class T>
Csr<T> lower_mirror_of_upper(const Csr<T>& upper) {
  BLOCKTRI_CHECK(upper.nrows == upper.ncols);
  const index_t n = upper.nrows;
  Csr<T> out;
  out.nrows = out.ncols = n;
  out.row_ptr.reserve(static_cast<std::size_t>(n) + 1);
  out.row_ptr.push_back(0);
  out.col_idx.reserve(upper.col_idx.size());
  out.val.reserve(upper.val.size());
  // Mirrored row i comes from original row n-1-i with columns reversed;
  // reversing a sorted ascending row yields a sorted ascending mirrored row
  // with the diagonal last — the lower-solver convention.
  for (index_t i = 0; i < n; ++i) {
    const index_t r = n - 1 - i;
    const offset_t lo = upper.row_ptr[static_cast<std::size_t>(r)];
    const offset_t hi = upper.row_ptr[static_cast<std::size_t>(r) + 1];
    for (offset_t k = hi; k > lo; --k) {
      out.col_idx.push_back(
          n - 1 - upper.col_idx[static_cast<std::size_t>(k - 1)]);
      out.val.push_back(upper.val[static_cast<std::size_t>(k - 1)]);
    }
    out.row_ptr.push_back(static_cast<offset_t>(out.val.size()));
  }
  return out;
}

#define BLOCKTRI_INSTANTIATE(T)                                      \
  template bool is_upper_triangular_nonsingular(const Csr<T>&);      \
  template std::vector<T> sptrsv_upper_serial(const Csr<T>&,         \
                                              const std::vector<T>&); \
  template Csr<T> lower_mirror_of_upper(const Csr<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
