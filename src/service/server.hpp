// SolveServer — the Unix-domain-socket front end of the solve service
// (ISSUE 8).
//
// The server is a thin transport shim: it owns the listening socket, one
// accept thread, and one thread per connection; all solve semantics
// (admission, coalescing, demux, tenancy) live in the SolveService it
// wraps, which remains fully usable as an embedded API without any server.
// A connection thread blocking in SolveService::solve is exactly what feeds
// the coalescer — sixteen concurrent clients become one sixteen-wide panel.
//
// Error policy per connection (exercised by tests/test_service.cpp):
//   clean EOF between frames     normal hang-up; close quietly
//   header damage / truncation   framing is lost and cannot be resynced:
//                                count a decode error, close
//   payload decode failure       framing intact: reply with a typed error
//                                response frame and keep serving
//   write failure (peer died     typed kIoError from write_exact
//   mid-solve)                   (MSG_NOSIGNAL, never SIGPIPE); count an
//                                io error, close — no crash, no hang
//
// stop() wakes the accept loop through a self-pipe and shuts down every
// live connection socket, so threads blocked in recv return immediately;
// it never calls SolveService::shutdown — the service outlives its
// transport.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "service/solve_service.hpp"

namespace blocktri::service {

/// Transport-level telemetry (all monotonic).
struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t frames_served = 0;  // solve responses successfully written
  std::uint64_t decode_errors = 0;  // malformed frames (either severity)
  std::uint64_t io_errors = 0;      // kIoError / kTruncated on the socket
};

class SolveServer {
 public:
  /// Serves `service` (not owned; must outlive the server) at
  /// `socket_path`. Nothing is bound until start().
  SolveServer(SolveService& service, std::string socket_path);
  ~SolveServer();

  SolveServer(const SolveServer&) = delete;
  SolveServer& operator=(const SolveServer&) = delete;

  /// Binds the socket (unlinking any stale file at the path), listens, and
  /// spawns the accept loop. kIoError on any socket-layer failure;
  /// kInvalidArgument when the path does not fit sockaddr_un.
  Status start();

  /// Stops accepting, shuts down live connections, joins every thread, and
  /// unlinks the socket file. Idempotent; called by the destructor.
  void stop();

  const std::string& socket_path() const { return path_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  ServerStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
  };

  void accept_loop();
  /// Runs one connection to completion, then closes its socket (so a peer
  /// blocked on a reply after a framing error sees EOF, not a hang).
  void serve_connection(Connection* conn);
  /// Handles one decoded request end to end; false ⇒ close the connection.
  bool serve_frame(int fd, const std::vector<std::uint8_t>& frame);

  SolveService& service_;
  std::string path_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  /// Deque for reference stability: each connection thread holds a pointer
  /// to its own entry and nulls the fd when it self-closes.
  std::deque<Connection> conns_;  // guarded by conn_mu_

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> frames_served_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> io_errors_{0};
};

}  // namespace blocktri::service
