// SolveClient — blocking Unix-socket client of the solve server (ISSUE 8).
//
// One connection, one outstanding request at a time: solve() writes a
// request frame and blocks until the response frame arrives. Concurrency is
// achieved with one client per thread — that is precisely the traffic shape
// the server's coalescer batches (bench/service_load drives sixteen of
// these at once).
//
// All socket I/O goes through the shared wire helpers, so EINTR restarts,
// short reads/writes, and SIGPIPE suppression are inherited; a server that
// disappears mid-call surfaces as a typed kIoError/kTruncated, never a hang
// or a signal.
#pragma once

#include <string>

#include "common/status.hpp"
#include "service/wire.hpp"

namespace blocktri::service {

class SolveClient {
 public:
  SolveClient() = default;
  ~SolveClient();

  SolveClient(const SolveClient&) = delete;
  SolveClient& operator=(const SolveClient&) = delete;
  SolveClient(SolveClient&& other) noexcept;
  SolveClient& operator=(SolveClient&& other) noexcept;

  /// Connects to a server at `socket_path`. kIoError when the server is not
  /// listening; kInvalidArgument for an oversize path or an already-connected
  /// client.
  Status connect(const std::string& socket_path);

  /// One round trip: sends `req`, blocks for the response. The transport
  /// outcome is the returned Status; the *solve* outcome is resp->code (a
  /// transport failure leaves *resp untouched).
  Status solve(const WireRequest& req, WireResponse* resp);

  bool connected() const { return fd_ >= 0; }
  void close();

  /// The raw connection fd — for fault-injection tests that write damaged
  /// bytes directly. -1 when not connected.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace blocktri::service
