// SolveService — the embeddable, multi-tenant solve session API (ISSUE 8).
//
// The session substrate (leased workspaces, deadlines/cancellation,
// kPoolExhausted backpressure, the degradation ladder, plan-cache
// quarantine — DESIGN.md §12) made every BlockSolver entry point safe to
// share; this layer makes sharing *profitable*. BENCH_batched.json shows
// per-RHS cost collapsing to 0.03–0.10× at panel widths 16–64, so the
// service turns concurrent single-RHS traffic into exactly those panels:
//
//   admission   requests name a registered matrix; size and deadline are
//               checked before anything is queued — an already-expired
//               deadline is a typed kDeadlineExceeded that never touches
//               the solver or the shared PlanCache.
//   coalesce    per-matrix group commit: the first queued request becomes
//               the batch *leader* and lingers up to batch_window_ms (or
//               until max_panel requests are queued); followers park on the
//               entry's condition variable. The leader snapshots the front
//               of the queue into one n × k panel.
//   solve       one solve_many call per panel. Every batched kernel is
//               deterministic, so the panel is bitwise identical to k
//               serial solve calls — coalescing is invisible to callers
//               except in latency and throughput.
//   demux       per-column solutions (and, in checked mode, per-column
//               SolveReports) are copied back into each member's Response;
//               done flags flip under the entry mutex and the followers
//               wake. Remaining queued requests elect the next leader, so
//               panel formation pipelines with the in-flight solve.
//
// Tenancy is a label on the request: per-tenant counters (requests,
// coalesced requests, deadline misses, degrade events, failures) ride the
// same telemetry style as WorkspacePoolStats/PlanCacheStats and are
// snapshotted by stats(). The service owns one shared PlanCache, so every
// registered matrix with a recurring pattern pays analysis once.
//
// Thread safety: everything is callable from any thread. solve() blocks the
// calling thread until its response is ready — the server front end
// (service/server.hpp) gives each connection a thread, which is what feeds
// the coalescer its concurrency.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/solver.hpp"
#include "persist/plan_cache.hpp"
#include "shard/coordinator.hpp"

namespace blocktri::service {

struct ServiceOptions {
  /// Max coalesced panel width k. 1 (or coalesce = false) serves every
  /// request as a lone solve — the bench baseline.
  int max_panel = 16;
  /// How long a batch leader lingers for co-travellers before dispatching a
  /// partial panel. The latency cost of coalescing is bounded by this; it
  /// is also capped by the leader's own deadline.
  double batch_window_ms = 2.0;
  bool coalesce = true;
  /// true: panels run solve_many_checked (residual-verified, per-column
  /// SolveReports, degradation ladder). false (default): panels run the raw
  /// allocation-free solve_many fast path — the serving configuration; the
  /// panel's single report is mirrored to every member.
  bool checked = false;
  /// Limits of the service-owned shared PlanCache.
  PlanCache<double>::Limits cache_limits;
};

/// One solve request against a registered matrix.
struct Request {
  std::uint64_t matrix_id = 0;
  std::string tenant = "default";
  std::vector<double> b;
  /// Per-request budget in milliseconds; <= 0 means unlimited. Armed at
  /// submission: queueing time counts against it.
  double deadline_ms = 0.0;
};

/// The demuxed outcome of one request.
struct Response {
  Status status;
  std::vector<double> x;
  SolveReport report;
  /// Width of the coalesced panel this request was served in (1 = solo;
  /// 0 = rejected before any panel formed).
  int panel_width = 0;
};

/// Per-tenant telemetry (all monotonic).
struct TenantStats {
  std::uint64_t requests = 0;
  std::uint64_t coalesced = 0;        // served in a panel of width > 1
  std::uint64_t deadline_misses = 0;  // rejected or tripped on deadline
  std::uint64_t degrade_events = 0;   // DegradeEvents across this tenant's
                                      // checked responses
  std::uint64_t failures = 0;         // non-ok responses other than misses
};

/// Service-wide telemetry: the coalescer's own counters plus the shared
/// cache's stats (with workspace lease waits folded in, DESIGN.md §12).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t panels = 0;             // solve dispatches (any width)
  std::uint64_t coalesced_requests = 0; // members of width > 1 panels
  std::uint64_t deadline_misses = 0;
  std::uint64_t max_panel_width = 0;
  /// Requests per panel — the amortisation the coalescer achieved.
  double coalesce_ratio = 0.0;
  PlanCacheStats cache;
  /// Aggregated over every matrix registered with a sharded backend
  /// (shard.processes > 0); all zero when sharding is off.
  shard::CoordinatorStats shard;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions opt = {});
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Builds (or rehydrates from the shared cache) a solver for `lower` and
  /// registers it under the returned id. Thread safe; registration is
  /// expected to be rare next to solves.
  Status register_matrix(const Csr<double>& lower,
                         const BlockSolver<double>::Options& solver_opt,
                         std::uint64_t* id);

  /// Solves one request, blocking until the response is ready. The calling
  /// thread may become the batch leader and run the panel solve itself.
  Response solve(const Request& req);

  /// Cancels in-flight panels (via the service CancelToken wired into every
  /// dispatch) and fails new and queued requests with kCancelled. Idempotent.
  void shutdown();

  ServiceStats stats() const;
  TenantStats tenant_stats(const std::string& tenant) const;

  /// The registered solver (nullptr for an unknown id) — introspection for
  /// tests and telemetry (workspace_stats), not a bypass of the coalescer.
  const BlockSolver<double>* solver(std::uint64_t id) const;

  /// The matrix's sharded backend (nullptr when the matrix was registered
  /// without shard.processes, or the id is unknown) — test introspection.
  const shard::ShardCoordinator<double>* shard_backend(std::uint64_t id) const;

  /// The shared plan cache, for telemetry and test assertions.
  PlanCache<double>& cache() { return cache_; }

  const ServiceOptions& options() const { return opt_; }

 private:
  /// One queued request: completion state lives on the submitting thread's
  /// stack; the entry's mutex guards it, the entry's condition variable
  /// announces it.
  struct Pending {
    const std::vector<double>* b = nullptr;
    const std::string* tenant = nullptr;
    Deadline deadline;
    Response resp;
    bool done = false;
  };

  /// Per-matrix coalescing state. Entries are created by register_matrix
  /// and never destroyed before the service, so pointers are stable.
  struct MatrixEntry {
    std::uint64_t id = 0;
    std::unique_ptr<BlockSolver<double>> solver;
    /// Optional multi-process backend. Declared after `solver` so it is
    /// destroyed first — the coordinator borrows the solver as its base.
    std::unique_ptr<shard::ShardCoordinator<double>> shard;
    index_t n = 0;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Pending*> queue;
    bool leader_active = false;
  };

  MatrixEntry* find_entry(std::uint64_t id) const;
  /// Solves one snapshotted batch and completes every member (the leader
  /// calls this outside the entry mutex; completion re-takes it).
  void dispatch(MatrixEntry* e, std::vector<Pending*>& batch);
  /// Folds one finished response into the tenant/service counters.
  void account(const std::string& tenant, const Response& resp);

  ServiceOptions opt_;
  mutable PlanCache<double> cache_;
  CancelToken stop_token_;
  bool stopping_ = false;  // guarded by reg_mu_

  mutable std::mutex reg_mu_;
  std::unordered_map<std::uint64_t, std::unique_ptr<MatrixEntry>> matrices_;
  std::uint64_t next_id_ = 1;

  mutable std::mutex stats_mu_;
  std::unordered_map<std::string, TenantStats> tenants_;
  std::uint64_t requests_ = 0;
  std::uint64_t panels_ = 0;
  std::uint64_t coalesced_requests_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t max_panel_width_ = 0;
};

}  // namespace blocktri::service
