#include "service/wire.hpp"

#include "common/io.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace blocktri::service {
namespace {

// --- Bounded little-endian writer/reader ------------------------------------
// The same field-by-field discipline as persist/artifact.cpp, minus the CRC
// (the kernel delivers stream-socket bytes intact; what the protocol guards
// against is truncation and hostile lengths, both typed by the reader).

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>* out) : out_(out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void bytes(const void* p, std::size_t n) { raw(p, n); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    out_->insert(out_->end(), b, b + n);
  }
  std::vector<std::uint8_t>* out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t len) : data_(data), len_(len) {}

  bool u8(std::uint8_t* v) { return raw(v, sizeof *v); }
  bool u16(std::uint16_t* v) { return raw(v, sizeof *v); }
  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i32(std::int32_t* v) { return raw(v, sizeof *v); }
  bool f64(double* v) { return raw(v, sizeof *v); }
  bool bytes(void* p, std::size_t n) { return raw(p, n); }

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return len_ - pos_; }

  Status truncated(const char* what) const {
    return Status(StatusCode::kTruncated,
                  std::string("frame ends inside ") + what,
                  static_cast<std::int64_t>(pos_), LocationKind::kLine);
  }

 private:
  bool raw(void* p, std::size_t n) {
    if (len_ - pos_ < n) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const std::uint8_t* data_;
  std::size_t len_;
  std::size_t pos_ = 0;
};

void write_header(Writer* w, FrameType type, std::uint64_t payload_len) {
  w->u32(kWireMagic);
  w->u8(kWireVersion);
  w->u8(static_cast<std::uint8_t>(type));
  w->u16(0);  // reserved
  w->u64(payload_len);
}

// Reads a length-prefixed string whose declared size must fit the buffer.
Status read_string(Reader* r, std::string* out, const char* what) {
  std::uint16_t len = 0;
  if (!r->u16(&len)) return r->truncated(what);
  if (r->remaining() < len) return r->truncated(what);
  out->resize(len);
  if (len > 0) r->bytes(out->data(), len);
  return Status::Ok();
}

// Reads a length-prefixed f64 vector, validating the declared count against
// the bytes actually present before any resize — a corrupt count must fail
// typed, not drive a huge allocation.
Status read_doubles(Reader* r, std::vector<double>* out, const char* what) {
  std::uint64_t n = 0;
  if (!r->u64(&n)) return r->truncated(what);
  if (n > r->remaining() / sizeof(double)) return r->truncated(what);
  out->resize(static_cast<std::size_t>(n));
  if (n > 0) r->bytes(out->data(), static_cast<std::size_t>(n) * sizeof(double));
  return Status::Ok();
}

}  // namespace

std::vector<std::uint8_t> encode_request(const WireRequest& req) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> payload;
  Writer p(&payload);
  p.u16(kWireCanary);
  p.u64(req.matrix_id);
  p.f64(req.deadline_ms);
  const std::size_t tenant_len = std::min<std::size_t>(req.tenant.size(),
                                                       0xFFFF);
  p.u16(static_cast<std::uint16_t>(tenant_len));
  p.bytes(req.tenant.data(), tenant_len);
  p.u64(req.b.size());
  p.bytes(req.b.data(), req.b.size() * sizeof(double));

  out.reserve(kFrameHeaderBytes + payload.size());
  Writer h(&out);
  write_header(&h, FrameType::kSolveRequest, payload.size());
  h.bytes(payload.data(), payload.size());
  return out;
}

std::vector<std::uint8_t> encode_response(const WireResponse& resp) {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> payload;
  Writer p(&payload);
  p.i32(static_cast<std::int32_t>(resp.code));
  const std::size_t msg_len = std::min<std::size_t>(resp.message.size(),
                                                    0xFFFF);
  p.u16(static_cast<std::uint16_t>(msg_len));
  p.bytes(resp.message.data(), msg_len);
  p.u32(resp.panel_width);
  p.f64(resp.residual);
  p.u32(resp.refinements);
  p.u32(resp.attempts);
  p.u32(resp.degrades);
  p.u64(resp.x.size());
  p.bytes(resp.x.data(), resp.x.size() * sizeof(double));

  out.reserve(kFrameHeaderBytes + payload.size());
  Writer h(&out);
  write_header(&h, FrameType::kSolveResponse, payload.size());
  h.bytes(payload.data(), payload.size());
  return out;
}

Status decode_header(const std::uint8_t* data, std::size_t len,
                     FrameHeader* out) {
  Reader r(data, len);
  std::uint16_t reserved = 0;
  if (!r.u32(&out->magic) || !r.u8(&out->version) || !r.u8(&out->type) ||
      !r.u16(&reserved) || !r.u64(&out->payload_len))
    return r.truncated("the frame header");
  if (out->magic != kWireMagic)
    return Status(StatusCode::kBadFormat,
                  "bad frame magic (not a blocktri service frame)");
  if (out->version != kWireVersion)
    return Status(StatusCode::kVersionMismatch,
                  "frame protocol version " + std::to_string(out->version) +
                      ", this build speaks " + std::to_string(kWireVersion));
  if (out->type != static_cast<std::uint8_t>(FrameType::kSolveRequest) &&
      out->type != static_cast<std::uint8_t>(FrameType::kSolveResponse))
    return Status(StatusCode::kBadFormat,
                  "unknown frame type " + std::to_string(out->type));
  if (out->payload_len > kMaxFramePayload)
    return Status(StatusCode::kBadFormat,
                  "frame payload length " + std::to_string(out->payload_len) +
                      " exceeds the " + std::to_string(kMaxFramePayload) +
                      "-byte bound");
  return Status::Ok();
}

namespace {

// Shared prologue of the whole-frame decoders: header checks + the
// declared-vs-present payload length cross-check.
Status check_frame(const std::uint8_t* data, std::size_t len,
                   FrameType expect, FrameHeader* hdr) {
  if (len < kFrameHeaderBytes)
    return Status(StatusCode::kTruncated, "frame ends inside the header",
                  static_cast<std::int64_t>(len), LocationKind::kLine);
  if (Status st = decode_header(data, len, hdr); !st.ok()) return st;
  if (hdr->type != static_cast<std::uint8_t>(expect))
    return Status(StatusCode::kBadFormat,
                  "unexpected frame type " + std::to_string(hdr->type));
  if (len - kFrameHeaderBytes < hdr->payload_len)
    return Status(StatusCode::kTruncated, "frame ends inside the payload",
                  static_cast<std::int64_t>(len), LocationKind::kLine);
  return Status::Ok();
}

}  // namespace

Status decode_request(const std::uint8_t* data, std::size_t len,
                      WireRequest* out) {
  FrameHeader hdr;
  if (Status st = check_frame(data, len, FrameType::kSolveRequest, &hdr);
      !st.ok())
    return st;
  Reader r(data + kFrameHeaderBytes, static_cast<std::size_t>(hdr.payload_len));
  std::uint16_t canary = 0;
  if (!r.u16(&canary)) return r.truncated("the request canary");
  if (canary != kWireCanary)
    return Status(StatusCode::kBadFormat,
                  "request endianness canary mismatch (frame written by an "
                  "incompatible host)");
  if (!r.u64(&out->matrix_id)) return r.truncated("the matrix id");
  if (!r.f64(&out->deadline_ms)) return r.truncated("the deadline");
  if (Status st = read_string(&r, &out->tenant, "the tenant name"); !st.ok())
    return st;
  if (Status st = read_doubles(&r, &out->b, "the right-hand side"); !st.ok())
    return st;
  return Status::Ok();
}

Status decode_response(const std::uint8_t* data, std::size_t len,
                       WireResponse* out) {
  FrameHeader hdr;
  if (Status st = check_frame(data, len, FrameType::kSolveResponse, &hdr);
      !st.ok())
    return st;
  Reader r(data + kFrameHeaderBytes, static_cast<std::size_t>(hdr.payload_len));
  std::int32_t code = 0;
  if (!r.i32(&code)) return r.truncated("the status code");
  if (code < 0 || code > static_cast<std::int32_t>(StatusCode::kWorkerLost))
    return Status(StatusCode::kBadFormat,
                  "response status code " + std::to_string(code) +
                      " out of range");
  out->code = static_cast<StatusCode>(code);
  if (Status st = read_string(&r, &out->message, "the status message");
      !st.ok())
    return st;
  if (!r.u32(&out->panel_width)) return r.truncated("the panel width");
  if (!r.f64(&out->residual)) return r.truncated("the residual");
  if (!r.u32(&out->refinements)) return r.truncated("the refinement count");
  if (!r.u32(&out->attempts)) return r.truncated("the attempt count");
  if (!r.u32(&out->degrades)) return r.truncated("the degrade count");
  if (Status st = read_doubles(&r, &out->x, "the solution"); !st.ok())
    return st;
  return Status::Ok();
}

// --- EINTR-safe fd I/O ------------------------------------------------------
// One implementation for every process boundary: these are thin forwards to
// common/io.hpp (shared with the shard control channels) so the POSIX sharp
// edges — EINTR restarts, short transfers, MSG_NOSIGNAL — are handled once.

Status read_exact(int fd, void* buf, std::size_t len, bool* clean_eof) {
  return io::read_exact(fd, buf, len, clean_eof);
}

Status write_exact(int fd, const void* buf, std::size_t len) {
  return io::write_exact(fd, buf, len);
}

Status read_frame(int fd, std::vector<std::uint8_t>* frame, bool* clean_eof) {
  frame->resize(kFrameHeaderBytes);
  if (Status st = read_exact(fd, frame->data(), kFrameHeaderBytes, clean_eof);
      !st.ok() || (clean_eof != nullptr && *clean_eof))
    return st;
  FrameHeader hdr;
  if (Status st = decode_header(frame->data(), frame->size(), &hdr); !st.ok())
    return st;
  frame->resize(kFrameHeaderBytes + static_cast<std::size_t>(hdr.payload_len));
  return read_exact(fd, frame->data() + kFrameHeaderBytes,
                    static_cast<std::size_t>(hdr.payload_len));
}

}  // namespace blocktri::service
