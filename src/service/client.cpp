#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace blocktri::service {

SolveClient::~SolveClient() { close(); }

SolveClient::SolveClient(SolveClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

SolveClient& SolveClient::operator=(SolveClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void SolveClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status SolveClient::connect(const std::string& socket_path) {
  if (fd_ >= 0)
    return Status(StatusCode::kInvalidArgument, "client already connected");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path))
    return Status(StatusCode::kInvalidArgument,
                  "socket path longer than sockaddr_un allows: " +
                      socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    return Status(StatusCode::kIoError,
                  std::string("socket: ") + std::strerror(errno));
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st(StatusCode::kIoError, "connect to '" + socket_path +
                                              "': " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  fd_ = fd;
  return Status::Ok();
}

Status SolveClient::solve(const WireRequest& req, WireResponse* resp) {
  BLOCKTRI_CHECK(resp != nullptr);
  if (fd_ < 0)
    return Status(StatusCode::kInvalidArgument, "client is not connected");

  const std::vector<std::uint8_t> out = encode_request(req);
  if (Status st = write_exact(fd_, out.data(), out.size()); !st.ok())
    return st;

  std::vector<std::uint8_t> frame;
  bool clean_eof = false;
  if (Status st = read_frame(fd_, &frame, &clean_eof); !st.ok()) return st;
  if (clean_eof)
    return Status(StatusCode::kIoError,
                  "server closed the connection before responding");
  return decode_response(frame.data(), frame.size(), resp);
}

}  // namespace blocktri::service
