#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "service/wire.hpp"

namespace blocktri::service {

namespace {

Status io_error(const char* what) {
  return Status(StatusCode::kIoError,
                std::string(what) + ": " + std::strerror(errno));
}

void close_quietly(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

SolveServer::SolveServer(SolveService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

SolveServer::~SolveServer() { stop(); }

Status SolveServer::start() {
  if (running_.load(std::memory_order_acquire))
    return Status(StatusCode::kInvalidArgument, "server already started");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path))
    return Status(StatusCode::kInvalidArgument,
                  "socket path longer than sockaddr_un allows: " + path_);
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

  if (::pipe(wake_pipe_) != 0) return io_error("pipe");

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    Status st = io_error("socket");
    close_quietly(wake_pipe_[0]);
    close_quietly(wake_pipe_[1]);
    return st;
  }
  ::unlink(path_.c_str());  // a stale file from a dead server blocks bind
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    Status st = io_error("bind/listen");
    close_quietly(listen_fd_);
    close_quietly(wake_pipe_[0]);
    close_quietly(wake_pipe_[1]);
    return st;
  }

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return Status::Ok();
}

void SolveServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // Wake the accept loop's poll, then shut down every live connection so
  // threads blocked in recv see EOF immediately.
  const char byte = 'x';
  while (::write(wake_pipe_[1], &byte, 1) < 0 && errno == EINTR) {
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (Connection& c : conns_)
      if (c.fd >= 0) ::shutdown(c.fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::deque<Connection> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conns_);
  }
  for (Connection& c : conns) {
    if (c.thread.joinable()) c.thread.join();
    close_quietly(c.fd);  // threads that exited early already closed theirs
  }

  close_quietly(listen_fd_);
  close_quietly(wake_pipe_[0]);
  close_quietly(wake_pipe_[1]);
  ::unlink(path_.c_str());
}

void SolveServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // stop() wrote the wake byte
    if ((fds[0].revents & POLLIN) == 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    conns_.push_back(Connection{fd, {}});
    Connection* c = &conns_.back();  // deque: stable across later push_backs
    c->thread = std::thread([this, c] { serve_connection(c); });
  }
}

void SolveServer::serve_connection(Connection* conn) {
  const int fd = conn->fd;
  while (running_.load(std::memory_order_acquire)) {
    std::vector<std::uint8_t> frame;
    bool clean_eof = false;
    const Status st = read_frame(fd, &frame, &clean_eof);
    if (clean_eof) break;  // normal hang-up between frames
    if (!st.ok()) {
      // Header damage or truncation mid-frame: framing is lost, the byte
      // stream cannot be resynced. Count and close.
      if (st.code() == StatusCode::kBadFormat ||
          st.code() == StatusCode::kVersionMismatch)
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
      else
        io_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (!serve_frame(fd, frame)) break;
  }
  // Self-close so a peer still reading sees EOF immediately (any buffered
  // response bytes are delivered first). stop() skips fds nulled here.
  std::lock_guard<std::mutex> lock(conn_mu_);
  close_quietly(conn->fd);
}

bool SolveServer::serve_frame(int fd, const std::vector<std::uint8_t>& frame) {
  WireRequest wreq;
  WireResponse wresp;
  const Status dec = decode_request(frame.data(), frame.size(), &wreq);
  if (!dec.ok()) {
    // Framing was intact (read_frame validated the header and delivered a
    // complete payload), so the connection is still usable: answer with a
    // typed error and keep serving.
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    wresp.code = dec.code();
    wresp.message = dec.to_string();
  } else {
    Request req;
    req.matrix_id = wreq.matrix_id;
    req.tenant = std::move(wreq.tenant);
    req.deadline_ms = wreq.deadline_ms;
    req.b = std::move(wreq.b);
    Response resp = service_.solve(req);

    wresp.code = resp.status.code();
    wresp.message = resp.status.ok() ? std::string() : resp.status.to_string();
    wresp.panel_width = static_cast<std::uint32_t>(resp.panel_width);
    wresp.residual = resp.report.residual;
    wresp.refinements = static_cast<std::uint32_t>(resp.report.refinements);
    wresp.attempts = static_cast<std::uint32_t>(resp.report.attempts);
    wresp.degrades = static_cast<std::uint32_t>(resp.report.degrades.size());
    wresp.x = std::move(resp.x);
  }

  const std::vector<std::uint8_t> out = encode_response(wresp);
  if (Status wr = write_exact(fd, out.data(), out.size()); !wr.ok()) {
    // The client disconnected mid-solve. write_exact already turned the
    // EPIPE into a typed kIoError (MSG_NOSIGNAL — no signal was raised).
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  frames_served_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ServerStats SolveServer::stats() const {
  ServerStats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.frames_served = frames_served_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.io_errors = io_errors_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace blocktri::service
