// Wire protocol of the solve service (ISSUE 8): length-prefixed binary
// frames over a local stream socket, plus the EINTR-safe fd I/O the server
// and client share.
//
// A frame is a fixed 16-byte header followed by `payload_len` payload bytes:
//
//   u32  magic        'BTSV' (0x56535442)
//   u8   version      kWireVersion
//   u8   type         FrameType
//   u16  reserved     0
//   u64  payload_len  <= kMaxFramePayload (hostile lengths are rejected
//                     before any allocation)
//
// Payloads are little-endian plain-old-data written field by field — the
// same discipline as persist/artifact.cpp. The protocol is host-local (Unix
// domain sockets), so no cross-endian translation is attempted; a u16
// endianness canary in the request payload makes a mismatch a typed
// kBadFormat instead of silent garbage.
//
// Everything decodable is decodable from a plain byte buffer with no socket
// attached, so the fault-injection tests can truncate and corrupt frames
// byte by byte (mirroring tests/test_fault_injection.cpp) without a live
// server. Typed failures, never a crash:
//   kBadFormat        bad magic, unknown type, oversize length, bad canary
//   kVersionMismatch  frame written by an incompatible protocol version
//   kTruncated        buffer ends mid-field; location = byte offset
//
// The fd helpers handle the classic POSIX sharp edges once, for every
// caller: EINTR restarts, short reads/writes, SIGPIPE (suppressed via
// MSG_NOSIGNAL — a dead peer is a typed kIoError, not a process kill).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "core/solver.hpp"

namespace blocktri::service {

inline constexpr std::uint32_t kWireMagic = 0x56535442u;  // "BTSV"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Hard bound on a frame payload: a hostile or corrupt length field must
/// fail typed, not drive a multi-gigabyte allocation. 1 GiB comfortably
/// holds the largest single-RHS request the solver itself could accept.
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t(1) << 30;
/// Value of the endianness canary as written (see header comment).
inline constexpr std::uint16_t kWireCanary = 0x0102;

enum class FrameType : std::uint8_t {
  kSolveRequest = 1,
  kSolveResponse = 2,
};

struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint64_t payload_len = 0;
};

/// One client solve call as it travels the wire.
struct WireRequest {
  std::uint64_t matrix_id = 0;
  double deadline_ms = 0.0;  // <= 0 → unlimited
  std::string tenant;
  std::vector<double> b;
};

/// The demuxed outcome for one request: its solution column, the panel
/// width it rode in, and the SolveReport fields worth shipping.
struct WireResponse {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::uint32_t panel_width = 0;
  double residual = 0.0;
  std::uint32_t refinements = 0;
  std::uint32_t attempts = 0;
  std::uint32_t degrades = 0;
  std::vector<double> x;
};

/// Serializes a complete frame (header + payload).
std::vector<std::uint8_t> encode_request(const WireRequest& req);
std::vector<std::uint8_t> encode_response(const WireResponse& resp);

/// Validates the fixed header at `data` (magic, version, known type, sane
/// payload length). `len` is how many bytes are available.
Status decode_header(const std::uint8_t* data, std::size_t len,
                     FrameHeader* out);

/// Decodes a complete frame produced by the matching encode_*. Any
/// truncation or corruption yields a typed Status (see header comment).
Status decode_request(const std::uint8_t* data, std::size_t len,
                      WireRequest* out);
Status decode_response(const std::uint8_t* data, std::size_t len,
                       WireResponse* out);

// --- EINTR-safe fd I/O ------------------------------------------------------

/// Reads exactly `len` bytes into `buf`, restarting on EINTR and continuing
/// across short reads. EOF before the first byte: when `clean_eof` is
/// non-null it is set and Ok is returned (the caller is between frames and
/// a peer hanging up there is normal); otherwise kIoError. EOF mid-buffer
/// is always kTruncated with the byte count read as the location.
Status read_exact(int fd, void* buf, std::size_t len,
                  bool* clean_eof = nullptr);

/// Writes exactly `len` bytes, restarting on EINTR, continuing across short
/// writes, and suppressing SIGPIPE (MSG_NOSIGNAL): a peer that disconnected
/// mid-solve surfaces as kIoError, never a signal or a hang.
Status write_exact(int fd, const void* buf, std::size_t len);

/// Reads one frame (header + payload) into `*frame` — the whole buffer, so
/// decode_request/decode_response run on it directly. Validates the header
/// before allocating for the payload. `*clean_eof` is set when the peer
/// hung up between frames.
Status read_frame(int fd, std::vector<std::uint8_t>* frame, bool* clean_eof);

}  // namespace blocktri::service
