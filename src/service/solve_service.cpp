#include "service/solve_service.hpp"

#include <algorithm>
#include <cstring>

namespace blocktri::service {

SolveService::SolveService(ServiceOptions opt)
    : opt_(opt), cache_(opt.cache_limits) {
  if (opt_.max_panel < 1) opt_.max_panel = 1;
}

SolveService::~SolveService() { shutdown(); }

Status SolveService::register_matrix(
    const Csr<double>& lower, const BlockSolver<double>::Options& solver_opt,
    std::uint64_t* id) {
  BLOCKTRI_CHECK(id != nullptr);
  std::unique_ptr<BlockSolver<double>> solver;
  if (Status st = BlockSolver<double>::create(lower, solver_opt, &solver,
                                              &cache_);
      !st.ok())
    return st;
  auto e = std::make_unique<MatrixEntry>();
  e->solver = std::move(solver);
  e->n = e->solver->n();
  if (solver_opt.shard.processes > 0) {
    // The coordinator's shared panels must fit the widest panel the
    // coalescer can form for this matrix.
    BlockSolver<double>::Options shard_opt = solver_opt;
    shard_opt.shard.max_panel = std::max<index_t>(
        shard_opt.shard.max_panel, static_cast<index_t>(opt_.max_panel));
    if (Status st = shard::ShardCoordinator<double>::create(
            *e->solver, shard_opt, &e->shard);
        !st.ok())
      return st;
  }
  std::lock_guard<std::mutex> lock(reg_mu_);
  if (stopping_)
    return Status(StatusCode::kCancelled,
                  "the solve service is shutting down");
  e->id = next_id_++;
  *id = e->id;
  matrices_[e->id] = std::move(e);
  return Status::Ok();
}

SolveService::MatrixEntry* SolveService::find_entry(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(reg_mu_);
  auto it = matrices_.find(id);
  return it == matrices_.end() ? nullptr : it->second.get();
}

const BlockSolver<double>* SolveService::solver(std::uint64_t id) const {
  const MatrixEntry* e = find_entry(id);
  return e == nullptr ? nullptr : e->solver.get();
}

const shard::ShardCoordinator<double>* SolveService::shard_backend(
    std::uint64_t id) const {
  const MatrixEntry* e = find_entry(id);
  return e == nullptr ? nullptr : e->shard.get();
}

void SolveService::account(const std::string& tenant, const Response& resp) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  TenantStats& t = tenants_[tenant];
  if (resp.panel_width > 1) ++t.coalesced;
  t.degrade_events += resp.report.degrades.size();
  if (!resp.status.ok()) {
    if (resp.status.code() == StatusCode::kDeadlineExceeded) {
      ++t.deadline_misses;
      ++deadline_misses_;
    } else {
      ++t.failures;
    }
  }
}

namespace {

Response reject(StatusCode code, std::string message) {
  Response r;
  r.status = Status(code, std::move(message));
  return r;
}

/// Per-column verdict of a checked panel. Session faults (deadline, cancel,
/// backpressure) hit the whole panel; numeric verdicts are per column — a
/// column whose verified residual met its tolerance is Ok even when a
/// sibling broke down.
Status column_status(const Status& panel, const SolveReport& rep) {
  if (panel.ok()) return Status::Ok();
  switch (panel.code()) {
    case StatusCode::kResidualTooLarge:
    case StatusCode::kNumericalBreakdown:
      if (rep.residual_checked && rep.residual <= rep.tolerance)
        return Status::Ok();
      return panel;
    default:
      return panel;
  }
}

}  // namespace

Response SolveService::solve(const Request& req) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++requests_;
    ++tenants_[req.tenant].requests;
  }

  MatrixEntry* e = find_entry(req.matrix_id);
  if (e == nullptr) {
    Response r = reject(StatusCode::kInvalidArgument,
                        "unknown matrix id " + std::to_string(req.matrix_id));
    account(req.tenant, r);
    return r;
  }
  if (req.b.size() != static_cast<std::size_t>(e->n)) {
    Response r = reject(StatusCode::kInvalidArgument,
                        "rhs has " + std::to_string(req.b.size()) +
                            " entries, matrix " +
                            std::to_string(req.matrix_id) + " needs " +
                            std::to_string(e->n));
    account(req.tenant, r);
    return r;
  }
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    if (stopping_) {
      Response r = reject(StatusCode::kCancelled,
                          "the solve service is shutting down");
      account(req.tenant, r);
      return r;
    }
  }

  Pending p;
  p.b = &req.b;
  p.tenant = &req.tenant;
  p.deadline = req.deadline_ms > 0.0 ? Deadline::after_ms(req.deadline_ms)
                                     : Deadline::unlimited();
  if (p.deadline.expired()) {
    // Typed rejection at admission: no queueing, no solver call, no shared
    // cache traffic — a request that arrives dead cannot poison anything.
    Response r = reject(StatusCode::kDeadlineExceeded,
                        "request deadline expired before admission");
    account(req.tenant, r);
    return r;
  }

  std::unique_lock<std::mutex> lk(e->mu);
  e->queue.push_back(&p);
  e->cv.notify_all();  // a lingering leader re-checks its panel width

  while (!p.done) {
    // Group commit: while a leader is forming or solving a panel, park.
    // Wake on panel completion (p.done) or leadership handover. Claiming
    // leadership requires a non-empty queue — our own request may already
    // be riding another leader's in-flight panel.
    if (e->leader_active || e->queue.empty()) {
      e->cv.wait(lk);
      continue;
    }
    e->leader_active = true;

    // Linger for co-travellers, bounded by the batch window and by our own
    // deadline — a leader never idles past the point its own request dies.
    if (opt_.coalesce && opt_.max_panel > 1 && opt_.batch_window_ms > 0.0) {
      auto give_up = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<std::chrono::steady_clock::
                                                    duration>(
                         std::chrono::duration<double, std::milli>(
                             opt_.batch_window_ms));
      if (!p.deadline.unlimited_deadline())
        give_up = std::min(give_up, p.deadline.time_point());
      while (static_cast<int>(e->queue.size()) < opt_.max_panel &&
             !stop_token_.cancelled()) {
        if (e->cv.wait_until(lk, give_up) == std::cv_status::timeout) break;
      }
    }

    // Snapshot the panel: the oldest max_panel requests.
    const int width = opt_.coalesce ? opt_.max_panel : 1;
    std::vector<Pending*> batch;
    batch.reserve(static_cast<std::size_t>(width));
    while (!e->queue.empty() && static_cast<int>(batch.size()) < width) {
      batch.push_back(e->queue.front());
      e->queue.pop_front();
    }
    e->leader_active = false;
    lk.unlock();
    e->cv.notify_all();  // remaining queued requests elect the next leader

    dispatch(e, batch);
    lk.lock();
  }
  lk.unlock();

  account(req.tenant, p.resp);
  return std::move(p.resp);
}

void SolveService::dispatch(MatrixEntry* e, std::vector<Pending*>& batch) {
  if (batch.empty()) return;

  // Admission at dispatch: members whose deadline expired while queued are
  // rejected typed and never ride the panel.
  std::vector<Pending*> live;
  live.reserve(batch.size());
  for (Pending* p : batch) {
    if (stop_token_.cancelled()) {
      p->resp.status = Status(StatusCode::kCancelled,
                              "the solve service is shutting down");
    } else if (p->deadline.expired()) {
      p->resp.status = Status(StatusCode::kDeadlineExceeded,
                              "request deadline expired while queued");
    } else {
      live.push_back(p);
    }
  }

  const index_t k = static_cast<index_t>(live.size());
  if (k > 0) {
    const std::size_t n = static_cast<std::size_t>(e->n);

    SolveControls controls;
    controls.cancel = &stop_token_;
    // The panel runs under the *latest* member deadline: it must not
    // outlive every member, and a panel killed by that deadline means every
    // member's own budget is gone too. Unlimited if any member is.
    bool unlimited = false;
    Deadline::Clock::time_point latest = Deadline::Clock::time_point::min();
    for (const Pending* p : live) {
      if (p->deadline.unlimited_deadline()) {
        unlimited = true;
        break;
      }
      latest = std::max(latest, p->deadline.time_point());
    }
    if (!unlimited) controls.deadline = Deadline::at(latest);

    if (opt_.checked) {
      std::vector<double> B(n * static_cast<std::size_t>(k));
      for (index_t c = 0; c < k; ++c)
        std::memcpy(B.data() + static_cast<std::size_t>(c) * n,
                    live[static_cast<std::size_t>(c)]->b->data(),
                    n * sizeof(double));
      SolveManyResult<double> res =
          e->solver->solve_many_checked(B, k, controls);
      for (index_t c = 0; c < k; ++c) {
        Pending* p = live[static_cast<std::size_t>(c)];
        const auto* col = res.X.data() + static_cast<std::size_t>(c) * n;
        p->resp.x.assign(col, col + n);
        p->resp.report = res.reports[static_cast<std::size_t>(c)];
        p->resp.status = column_status(res.status, p->resp.report);
      }
    } else {
      // Gather/scatter panel: the members' rhs vectors are the panel columns
      // and their response vectors the destinations — no panel assembly, no
      // demux copy (the solver's entry/exit permutations do the routing).
      std::vector<const double*> bs(static_cast<std::size_t>(k));
      std::vector<double*> xs(static_cast<std::size_t>(k));
      for (index_t c = 0; c < k; ++c) {
        Pending* p = live[static_cast<std::size_t>(c)];
        p->resp.x.resize(n);
        bs[static_cast<std::size_t>(c)] = p->b->data();
        xs[static_cast<std::size_t>(c)] = p->resp.x.data();
      }
      SolveReport rep;
      const Status st =
          e->shard != nullptr
              ? e->shard->solve_many(bs.data(), xs.data(), k, controls, &rep)
              : e->solver->solve_many(bs.data(), xs.data(), k, controls,
                                      &rep);
      for (index_t c = 0; c < k; ++c) {
        Pending* p = live[static_cast<std::size_t>(c)];
        if (!st.ok()) p->resp.x.clear();  // partial panels are not results
        p->resp.report = rep;  // one raw-path report, mirrored to members
        p->resp.status = st;
      }
    }

    std::lock_guard<std::mutex> lock(stats_mu_);
    ++panels_;
    max_panel_width_ =
        std::max(max_panel_width_, static_cast<std::uint64_t>(k));
    if (k > 1) coalesced_requests_ += static_cast<std::uint64_t>(k);
  }

  // Complete every member — the rejected ones too — under the entry mutex,
  // then wake the followers.
  {
    std::lock_guard<std::mutex> lock(e->mu);
    for (Pending* p : batch) {
      if (p->resp.status.ok() || !p->resp.x.empty())
        p->resp.panel_width = static_cast<int>(k);
      p->done = true;
    }
  }
  e->cv.notify_all();
}

void SolveService::shutdown() {
  std::vector<MatrixEntry*> entries;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    stopping_ = true;
    entries.reserve(matrices_.size());
    for (auto& [id, entry] : matrices_) entries.push_back(entry.get());
  }
  stop_token_.cancel();
  // Wake every parked follower/leader: queued requests drain through
  // dispatch, which rejects them with kCancelled under the tripped token.
  for (MatrixEntry* e : entries) {
    std::lock_guard<std::mutex> lock(e->mu);
    e->cv.notify_all();
  }
}

ServiceStats SolveService::stats() const {
  // Fold the registered solvers' workspace lease waits into the shared
  // cache telemetry first (DESIGN.md §12 wiring), then snapshot.
  std::uint64_t waits = 0;
  shard::CoordinatorStats shard_total;
  {
    std::lock_guard<std::mutex> lock(reg_mu_);
    for (const auto& [id, entry] : matrices_) {
      waits += entry->solver->workspace_stats().lease_waits;
      if (entry->shard != nullptr) {
        const shard::CoordinatorStats cs = entry->shard->stats();
        shard_total.epochs += cs.epochs;
        shard_total.workers_lost += cs.workers_lost;
        shard_total.fallbacks += cs.fallbacks;
        shard_total.respawns += cs.respawns;
        shard_total.halo_ready += cs.halo_ready;
        shard_total.halo_deferred += cs.halo_deferred;
        shard_total.wait_ms += cs.wait_ms;
        shard_total.worker_level_analyses += cs.worker_level_analyses;
      }
    }
  }
  ServiceStats s;
  s.shard = shard_total;
  s.cache = cache_.stats();
  if (waits > s.cache.lease_waits) {
    cache_.note_lease_waits(waits - s.cache.lease_waits);
    s.cache.lease_waits = waits;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  s.requests = requests_;
  s.panels = panels_;
  s.coalesced_requests = coalesced_requests_;
  s.deadline_misses = deadline_misses_;
  s.max_panel_width = max_panel_width_;
  s.coalesce_ratio =
      panels_ > 0 ? static_cast<double>(requests_ - deadline_misses_) /
                        static_cast<double>(panels_)
                  : 0.0;
  return s;
}

TenantStats SolveService::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second;
}

}  // namespace blocktri::service
