#include "persist/artifact.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <type_traits>

#include "common/io.hpp"
#include "common/prefix.hpp"

namespace blocktri {

namespace {

// CRC32 shared with the framed-I/O layer (one table for the whole repo).
using io::crc32;

// --- Byte-buffer writer/reader --------------------------------------------
//
// Scalars and vectors of trivially-copyable scalar types are written in the
// host's native byte order; the header's endianness tag lets a
// foreign-endian reader reject the file instead of misreading it. Structs
// are always encoded field by field (never memcpy'd) so padding and enum
// representation cannot leak into the format.

class Writer {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i32(std::int32_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  template <class V>
  void vec(const std::vector<V>& v) {
    static_assert(std::is_arithmetic_v<V>, "field-encode structs explicitly");
    u64(v.size());
    if (!v.empty()) raw(v.data(), v.size() * sizeof(V));
  }

  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  const std::vector<unsigned char>& bytes() const { return buf_; }

 private:
  std::vector<unsigned char> buf_;
};

/// Bounds-checked reader over a byte span. The first failed read latches a
/// kTruncated status carrying the absolute byte offset; later reads become
/// no-ops so decode functions can check once at the end.
class Reader {
 public:
  Reader(const unsigned char* data, std::size_t size, std::size_t base)
      : data_(data), size_(size), base_(base) {}

  bool u32(std::uint32_t* v) { return raw(v, sizeof *v); }
  bool u64(std::uint64_t* v) { return raw(v, sizeof *v); }
  bool i32(std::int32_t* v) { return raw(v, sizeof *v); }
  bool i64(std::int64_t* v) { return raw(v, sizeof *v); }
  bool f64(double* v) { return raw(v, sizeof *v); }

  template <class V>
  bool vec(std::vector<V>* out) {
    static_assert(std::is_arithmetic_v<V>, "field-decode structs explicitly");
    std::uint64_t count = 0;
    if (!u64(&count)) return false;
    if (count > (size_ - pos_) / sizeof(V)) return fail();
    out->resize(static_cast<std::size_t>(count));
    if (count != 0) return raw(out->data(), out->size() * sizeof(V));
    return true;
  }

  bool raw(void* p, std::size_t n) {
    if (n > size_ - pos_) return fail();
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  /// Guards resize() of struct vectors: a legitimate count of items, each at
  /// least `min_item` encoded bytes, cannot exceed the remaining payload —
  /// anything bigger is corruption and must not reach the allocator.
  bool count_ok(std::uint64_t count, std::size_t min_item) {
    if (count > (size_ - pos_) / min_item) return fail();
    return true;
  }

  bool done() const { return pos_ == size_; }
  std::size_t offset() const { return base_ + pos_; }
  const Status& status() const { return status_; }
  bool ok() const { return status_.ok(); }

  /// Latches a kBadFormat status for a value that decoded cleanly but is
  /// not a legal encoding (e.g. an out-of-range enum), then poisons the
  /// reader like fail(). Always returns false so decoders can `return
  /// r.corrupt(...)`.
  bool corrupt(const std::string& what) {
    if (status_.ok())
      status_ = Status(StatusCode::kBadFormat, "artifact invalid: " + what);
    pos_ = size_;
    return false;
  }

 private:
  bool fail() {
    if (status_.ok())
      status_ = Status(StatusCode::kTruncated,
                       "artifact ends before the encoded data does",
                       static_cast<std::int64_t>(base_ + pos_));
    pos_ = size_;  // poison: every later read fails too
    return false;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t base_;
  std::size_t pos_ = 0;
  Status status_;
};

// --- Field-by-field codecs for the composite types ------------------------

template <class T>
void put_csr(Writer& w, const Csr<T>& a) {
  w.i32(a.nrows);
  w.i32(a.ncols);
  w.vec(a.row_ptr);
  w.vec(a.col_idx);
  w.vec(a.val);
}

template <class T>
bool get_csr(Reader& r, Csr<T>* a) {
  return r.i32(&a->nrows) && r.i32(&a->ncols) && r.vec(&a->row_ptr) &&
         r.vec(&a->col_idx) && r.vec(&a->val);
}

template <class T>
void put_csc(Writer& w, const Csc<T>& a) {
  w.i32(a.nrows);
  w.i32(a.ncols);
  w.vec(a.col_ptr);
  w.vec(a.row_idx);
  w.vec(a.val);
}

template <class T>
bool get_csc(Reader& r, Csc<T>* a) {
  return r.i32(&a->nrows) && r.i32(&a->ncols) && r.vec(&a->col_ptr) &&
         r.vec(&a->row_idx) && r.vec(&a->val);
}

template <class T>
void put_dcsr(Writer& w, const Dcsr<T>& a) {
  w.i32(a.nrows);
  w.i32(a.ncols);
  w.vec(a.row_ids);
  w.vec(a.row_ptr);
  w.vec(a.col_idx);
  w.vec(a.val);
}

template <class T>
bool get_dcsr(Reader& r, Dcsr<T>* a) {
  return r.i32(&a->nrows) && r.i32(&a->ncols) && r.vec(&a->row_ids) &&
         r.vec(&a->row_ptr) && r.vec(&a->col_idx) && r.vec(&a->val);
}

void put_levels(Writer& w, const LevelSets& ls) {
  w.i32(ls.nlevels);
  w.vec(ls.level_of);
  w.vec(ls.level_ptr);
  w.vec(ls.level_item);
}

bool get_levels(Reader& r, LevelSets* ls) {
  return r.i32(&ls->nlevels) && r.vec(&ls->level_of) &&
         r.vec(&ls->level_ptr) && r.vec(&ls->level_item);
}

// --- Section payloads ------------------------------------------------------

enum : std::uint32_t {
  kSectionPlan = 1,
  kSectionStored = 2,
  kSectionTri = 3,
  kSectionSquares = 4,
  kSectionTuning = 5,  // optional (format version 2, tuned plans only)
  kSectionShard = 6,   // optional (format version 3, shard slices only)
  kSectionColor = 7,   // optional (format version 4, HBMC plans only)
};

template <class T>
void encode_plan(Writer& w, const PlanArtifact<T>& art) {
  const BlockPlan& p = art.plan;
  w.u32(static_cast<std::uint32_t>(p.scheme));
  w.i32(p.n);
  w.vec(p.new_of_old);
  w.vec(p.tri_bounds);
  w.u64(p.squares.size());
  for (const SquareBlockRef& s : p.squares) {
    w.i32(s.r0);
    w.i32(s.r1);
    w.i32(s.c0);
    w.i32(s.c1);
  }
  w.u64(p.steps.size());
  for (const ExecStep& s : p.steps) {
    w.u32(static_cast<std::uint32_t>(s.kind));
    w.i32(s.index);
  }
  w.i32(p.depth_used);
  w.i64(p.host_ops);
  w.i64(p.host_bytes);

  w.u64(art.waves.size());
  for (const std::vector<ExecStep>& wave : art.waves) {
    w.u64(wave.size());
    for (const ExecStep& s : wave) {
      w.u32(static_cast<std::uint32_t>(s.kind));
      w.i32(s.index);
    }
  }
  w.i64(art.nnz);
  w.i64(art.build_ops);
  w.i64(art.build_bytes);
}

// Enums are encoded as u32; anything beyond the last enumerator is a
// corrupt file, rejected at decode so a bogus value can never reach an
// executor switch (whose default paths only fire on programmer error).

bool get_step(Reader& r, ExecStep* s) {
  std::uint32_t kind = 0;
  if (!r.u32(&kind) || !r.i32(&s->index)) return false;
  if (kind > static_cast<std::uint32_t>(ExecStep::Kind::kSquare))
    return r.corrupt("execution step kind out of range");
  s->kind = static_cast<ExecStep::Kind>(kind);
  return true;
}

template <class T>
bool decode_plan(Reader& r, PlanArtifact<T>* art) {
  BlockPlan& p = art->plan;
  std::uint32_t scheme = 0;
  if (!r.u32(&scheme)) return false;
  if (scheme > static_cast<std::uint32_t>(BlockScheme::kHbmc))
    return r.corrupt("block scheme out of range");
  p.scheme = static_cast<BlockScheme>(scheme);
  if (!r.i32(&p.n) || !r.vec(&p.new_of_old) || !r.vec(&p.tri_bounds))
    return false;
  std::uint64_t count = 0;
  if (!r.u64(&count) || !r.count_ok(count, 16)) return false;
  p.squares.resize(static_cast<std::size_t>(count));
  for (SquareBlockRef& s : p.squares)
    if (!r.i32(&s.r0) || !r.i32(&s.r1) || !r.i32(&s.c0) || !r.i32(&s.c1))
      return false;
  if (!r.u64(&count) || !r.count_ok(count, 8)) return false;
  p.steps.resize(static_cast<std::size_t>(count));
  for (ExecStep& s : p.steps)
    if (!get_step(r, &s)) return false;
  if (!r.i32(&p.depth_used) || !r.i64(&p.host_ops) || !r.i64(&p.host_bytes))
    return false;

  if (!r.u64(&count) || !r.count_ok(count, 8)) return false;
  art->waves.resize(static_cast<std::size_t>(count));
  for (std::vector<ExecStep>& wave : art->waves) {
    std::uint64_t len = 0;
    if (!r.u64(&len) || !r.count_ok(len, 8)) return false;
    wave.resize(static_cast<std::size_t>(len));
    for (ExecStep& s : wave)
      if (!get_step(r, &s)) return false;
  }
  return r.i64(&art->nnz) && r.i64(&art->build_ops) &&
         r.i64(&art->build_bytes);
}

template <class T>
void encode_stored(Writer& w, const PlanArtifact<T>& art) {
  w.u32(art.verify_captured ? 1 : 0);
  if (art.verify_captured) {
    put_csr(w, art.stored);
    w.f64(art.norm_inf);
  }
}

template <class T>
bool decode_stored(Reader& r, PlanArtifact<T>* art) {
  std::uint32_t captured = 0;
  if (!r.u32(&captured)) return false;
  art->verify_captured = captured != 0;
  if (!art->verify_captured) return true;
  return get_csr(r, &art->stored) && r.f64(&art->norm_inf);
}

template <class T>
void encode_tri(Writer& w, const PlanArtifact<T>& art) {
  w.u64(art.tri.size());
  for (const TriBlockArtifact<T>& t : art.tri) {
    w.i32(t.r0);
    w.i32(t.r1);
    w.u32(static_cast<std::uint32_t>(t.kind));
    w.i32(t.nlevels);
    w.i64(t.nnz);
    w.u32(t.has_csr ? 1 : 0);
    if (t.has_csr) put_csr(w, t.csr);
    switch (t.kind) {
      case TriKernelKind::kCompletelyParallel:
        w.vec(t.diag);
        break;
      case TriKernelKind::kLevelSet:
        put_csr(w, t.kernel_csr);
        put_levels(w, t.levels);
        break;
      case TriKernelKind::kSyncFree:
        put_csc(w, t.csc);
        put_csr(w, t.strict_rows);
        w.vec(t.in_degree);
        break;
      case TriKernelKind::kCusparseLike:
        put_csr(w, t.kernel_csr);
        put_levels(w, t.levels);
        w.vec(t.kernel_first_level);
        break;
    }
  }
}

template <class T>
bool decode_tri(Reader& r, PlanArtifact<T>* art) {
  std::uint64_t count = 0;
  if (!r.u64(&count) || !r.count_ok(count, 24)) return false;
  art->tri.resize(static_cast<std::size_t>(count));
  for (TriBlockArtifact<T>& t : art->tri) {
    std::uint32_t kind = 0, has_csr = 0;
    if (!r.i32(&t.r0) || !r.i32(&t.r1) || !r.u32(&kind) ||
        !r.i32(&t.nlevels) || !r.i64(&t.nnz) || !r.u32(&has_csr))
      return false;
    if (kind > static_cast<std::uint32_t>(TriKernelKind::kCusparseLike))
      return r.corrupt("triangular kernel kind out of range");
    t.kind = static_cast<TriKernelKind>(kind);
    t.has_csr = has_csr != 0;
    if (t.has_csr && !get_csr(r, &t.csr)) return false;
    switch (t.kind) {
      case TriKernelKind::kCompletelyParallel:
        if (!r.vec(&t.diag)) return false;
        break;
      case TriKernelKind::kLevelSet:
        if (!get_csr(r, &t.kernel_csr) || !get_levels(r, &t.levels))
          return false;
        break;
      case TriKernelKind::kSyncFree:
        if (!get_csc(r, &t.csc) || !get_csr(r, &t.strict_rows) ||
            !r.vec(&t.in_degree))
          return false;
        break;
      case TriKernelKind::kCusparseLike:
        if (!get_csr(r, &t.kernel_csr) || !get_levels(r, &t.levels) ||
            !r.vec(&t.kernel_first_level))
          return false;
        break;
    }
  }
  return true;
}

template <class T>
void encode_squares(Writer& w, const PlanArtifact<T>& art) {
  w.u64(art.squares.size());
  for (const SquareBlockArtifact<T>& q : art.squares) {
    w.i32(q.ref.r0);
    w.i32(q.ref.r1);
    w.i32(q.ref.c0);
    w.i32(q.ref.c1);
    w.u32(static_cast<std::uint32_t>(q.kind));
    w.i64(q.nnz);
    w.f64(q.empty_ratio);
    const bool dcsr = q.kind == SpmvKernelKind::kScalarDcsr ||
                      q.kind == SpmvKernelKind::kVectorDcsr;
    if (dcsr && q.nnz != 0)
      put_dcsr(w, q.dcsr);
    else
      put_csr(w, q.csr);
  }
}

template <class T>
bool decode_squares(Reader& r, PlanArtifact<T>* art) {
  std::uint64_t count = 0;
  if (!r.u64(&count) || !r.count_ok(count, 36)) return false;
  art->squares.resize(static_cast<std::size_t>(count));
  for (SquareBlockArtifact<T>& q : art->squares) {
    std::uint32_t kind = 0;
    if (!r.i32(&q.ref.r0) || !r.i32(&q.ref.r1) || !r.i32(&q.ref.c0) ||
        !r.i32(&q.ref.c1) || !r.u32(&kind) || !r.i64(&q.nnz) ||
        !r.f64(&q.empty_ratio))
      return false;
    if (kind > static_cast<std::uint32_t>(SpmvKernelKind::kVectorDcsr))
      return r.corrupt("square kernel kind out of range");
    q.kind = static_cast<SpmvKernelKind>(kind);
    const bool dcsr = q.kind == SpmvKernelKind::kScalarDcsr ||
                      q.kind == SpmvKernelKind::kVectorDcsr;
    if (dcsr && q.nnz != 0) {
      if (!get_dcsr(r, &q.dcsr)) return false;
    } else {
      if (!get_csr(r, &q.csr)) return false;
    }
  }
  return true;
}

template <class T>
void encode_tuning(Writer& w, const PlanArtifact<T>& art) {
  w.u32(art.tuned ? 1 : 0);
  w.i64(static_cast<std::int64_t>(art.merge_width));
  w.u32(art.tune_fell_back ? 1 : 0);
  w.u64(art.tune_device);
  w.f64(art.oracle_default_ns);
  w.f64(art.oracle_tuned_ns);
}

template <class T>
bool decode_tuning(Reader& r, PlanArtifact<T>* art) {
  std::uint32_t tuned = 0, fell_back = 0;
  std::int64_t merge_width = 0;
  if (!r.u32(&tuned) || !r.i64(&merge_width) || !r.u32(&fell_back) ||
      !r.u64(&art->tune_device) || !r.f64(&art->oracle_default_ns) ||
      !r.f64(&art->oracle_tuned_ns))
    return false;
  if (merge_width < 1)
    return r.corrupt("tuning section carries a non-positive merge width");
  art->tuned = tuned != 0;
  art->tune_fell_back = fell_back != 0;
  art->merge_width = static_cast<offset_t>(merge_width);
  return true;
}

template <class T>
void encode_shard(Writer& w, const PlanArtifact<T>& art) {
  w.u32(art.shard_index);
  w.u32(art.shard_count);
  w.i32(art.shard_row_begin);
  w.i32(art.shard_row_end);
  w.vec(art.shard_bounds);
  std::vector<std::uint8_t> tri_pop(art.tri.size()), sq_pop(art.squares.size());
  for (std::size_t t = 0; t < art.tri.size(); ++t)
    tri_pop[t] = art.tri[t].populated ? 1 : 0;
  for (std::size_t q = 0; q < art.squares.size(); ++q)
    sq_pop[q] = art.squares[q].populated ? 1 : 0;
  w.vec(tri_pop);
  w.vec(sq_pop);
}

/// The shard section references the tri/square arrays, so it can only be
/// applied after those sections decoded; save_artifact writes it last and a
/// reordered (crafted) file fails the size cross-checks here.
template <class T>
bool decode_shard(Reader& r, PlanArtifact<T>* art) {
  std::vector<std::uint8_t> tri_pop, sq_pop;
  if (!r.u32(&art->shard_index) || !r.u32(&art->shard_count) ||
      !r.i32(&art->shard_row_begin) || !r.i32(&art->shard_row_end) ||
      !r.vec(&art->shard_bounds) || !r.vec(&tri_pop) || !r.vec(&sq_pop))
    return false;
  if (tri_pop.size() != art->tri.size() || sq_pop.size() != art->squares.size())
    return r.corrupt("shard section does not match the block sections");
  art->shard = true;
  for (std::size_t t = 0; t < tri_pop.size(); ++t)
    art->tri[t].populated = tri_pop[t] != 0;
  for (std::size_t q = 0; q < sq_pop.size(); ++q)
    art->squares[q].populated = sq_pop[q] != 0;
  return true;
}

/// HBMC color record (DESIGN.md §16). The fields live inside the BlockPlan;
/// they get their own section (instead of extending kSectionPlan) so every
/// non-HBMC artifact's plan bytes stay identical to format versions 1-3.
template <class T>
void encode_color(Writer& w, const PlanArtifact<T>& art) {
  w.vec(art.plan.color_bounds);
  w.i32(art.plan.hbmc_block_rows);
}

template <class T>
bool decode_color(Reader& r, PlanArtifact<T>* art) {
  if (!r.vec(&art->plan.color_bounds) || !r.i32(&art->plan.hbmc_block_rows))
    return false;
  if (art->plan.color_bounds.empty())
    return r.corrupt("color section carries no color bounds");
  if (art->plan.hbmc_block_rows < 1)
    return r.corrupt("color section carries a non-positive block size");
  return true;
}

// --- File framing -----------------------------------------------------------

constexpr char kMagic[4] = {'B', 'T', 'P', 'A'};
constexpr std::uint32_t kEndianTag = 0x01020304u;

struct SectionSpec {
  std::uint32_t id;
  std::vector<unsigned char> payload;
};

template <class T>
std::size_t csr_bytes(const Csr<T>& a) {
  return a.row_ptr.size() * sizeof(offset_t) +
         a.col_idx.size() * sizeof(index_t) + a.val.size() * sizeof(T);
}

}  // namespace

template <class T>
std::size_t artifact_bytes(const PlanArtifact<T>& art) {
  std::size_t b = sizeof(PlanArtifact<T>);
  b += art.plan.new_of_old.size() * sizeof(index_t);
  b += art.plan.tri_bounds.size() * sizeof(index_t);
  b += art.plan.squares.size() * sizeof(SquareBlockRef);
  b += art.plan.steps.size() * sizeof(ExecStep);
  for (const auto& wave : art.waves) b += wave.size() * sizeof(ExecStep);
  b += csr_bytes(art.stored);
  for (const TriBlockArtifact<T>& t : art.tri) {
    b += sizeof(TriBlockArtifact<T>);
    b += csr_bytes(t.csr) + csr_bytes(t.kernel_csr) + csr_bytes(t.strict_rows);
    b += t.diag.size() * sizeof(T);
    b += t.csc.col_ptr.size() * sizeof(offset_t) +
         t.csc.row_idx.size() * sizeof(index_t) + t.csc.val.size() * sizeof(T);
    b += t.levels.level_of.size() * sizeof(index_t) +
         t.levels.level_ptr.size() * sizeof(offset_t) +
         t.levels.level_item.size() * sizeof(index_t);
    b += (t.kernel_first_level.size() + t.in_degree.size()) * sizeof(index_t);
  }
  for (const SquareBlockArtifact<T>& q : art.squares) {
    b += sizeof(SquareBlockArtifact<T>);
    b += csr_bytes(q.csr);
    b += (q.dcsr.row_ids.size() + q.dcsr.col_idx.size()) * sizeof(index_t) +
         q.dcsr.row_ptr.size() * sizeof(offset_t) +
         q.dcsr.val.size() * sizeof(T);
  }
  return b;
}

template <class T>
Status save_artifact(const std::string& path, const PlanArtifact<T>& art) {
  if (Status st = validate_artifact(art); !st.ok()) return st;

  std::vector<SectionSpec> sections;
  {
    Writer w;
    encode_plan(w, art);
    sections.push_back({kSectionPlan, w.bytes()});
  }
  {
    Writer w;
    encode_stored(w, art);
    sections.push_back({kSectionStored, w.bytes()});
  }
  {
    Writer w;
    encode_tri(w, art);
    sections.push_back({kSectionTri, w.bytes()});
  }
  {
    Writer w;
    encode_squares(w, art);
    sections.push_back({kSectionSquares, w.bytes()});
  }
  if (art.tuned) {
    Writer w;
    encode_tuning(w, art);
    sections.push_back({kSectionTuning, w.bytes()});
  }
  if (art.shard) {
    Writer w;
    encode_shard(w, art);
    sections.push_back({kSectionShard, w.bytes()});
  }
  const bool color = !art.plan.color_bounds.empty();
  if (color) {
    Writer w;
    encode_color(w, art);
    sections.push_back({kSectionColor, w.bytes()});
  }

  Writer file;
  file.raw(kMagic, sizeof kMagic);
  // Each file claims the oldest version that can describe it, so plain
  // artifacts stay byte-identical to (and loadable by) pre-tuner builds:
  // version 1 untuned, version 2 tuned, version 3 shard slices, version 4
  // only for HBMC plans (the color section).
  file.u32(color ? kArtifactFormatVersion
                 : (art.shard ? 3u : (art.tuned ? 2u : 1u)));
  file.u32(kEndianTag);
  file.u32(static_cast<std::uint32_t>(sizeof(T)));
  file.u64(art.structure);
  file.u64(art.options);
  file.i64(static_cast<std::int64_t>(art.plan.n));
  file.i64(static_cast<std::int64_t>(art.nnz));
  file.u32(static_cast<std::uint32_t>(sections.size()));
  for (const SectionSpec& s : sections) {
    file.u32(s.id);
    file.u64(s.payload.size());
    file.u32(crc32(s.payload.data(), s.payload.size()));
    file.raw(s.payload.data(), s.payload.size());
  }

  // Write to a side file and rename into place so a crashed writer leaves
  // either the old artifact or none — never a truncated new one.
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr)
    return Status(StatusCode::kBadFormat,
                  "cannot open '" + tmp + "' for writing");
  const std::vector<unsigned char>& bytes = file.bytes();
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kBadFormat, "short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(StatusCode::kBadFormat,
                  "cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::Ok();
}

namespace persist_testing {

namespace {
std::atomic<int> g_forced_io_failures{0};
}  // namespace

void force_io_failures(int n) {
  g_forced_io_failures.store(n, std::memory_order_relaxed);
}

int pending_io_failures() {
  return g_forced_io_failures.load(std::memory_order_relaxed);
}

}  // namespace persist_testing

template <class T>
Status load_artifact(const std::string& path, PlanArtifact<T>* out) {
  BLOCKTRI_CHECK(out != nullptr);
  // Transient-I/O fault hook: each armed failure consumes one load attempt,
  // so tests can prove the retry-with-backoff path end to end.
  for (int n = persist_testing::g_forced_io_failures.load(
           std::memory_order_relaxed);
       n > 0;) {
    if (persist_testing::g_forced_io_failures.compare_exchange_weak(
            n, n - 1, std::memory_order_relaxed))
      return Status(StatusCode::kIoError,
                    "injected transient read failure loading '" + path + "'");
  }
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    return Status(StatusCode::kBadFormat, "cannot open '" + path + "'");
  std::vector<unsigned char> bytes;
  {
    unsigned char chunk[1 << 16];
    std::size_t got = 0;
    while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
      bytes.insert(bytes.end(), chunk, chunk + got);
    // fread stops on both EOF and error; only ferror distinguishes a
    // mid-file I/O failure from a genuinely short file, and the two must
    // not be conflated — a read error says nothing about the file's bytes.
    const bool io_error = std::ferror(f) != 0;
    std::fclose(f);
    if (io_error)
      return Status(StatusCode::kIoError,
                    "read error while loading '" + path + "'");
  }

  Reader header(bytes.data(), bytes.size(), 0);
  char magic[4] = {};
  std::uint32_t version = 0, endian = 0, width = 0, nsections = 0;
  PlanArtifact<T> art;
  std::int64_t n_header = 0, nnz_header = 0;
  if (!header.raw(magic, sizeof magic)) return header.status();
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    return Status(StatusCode::kBadFormat,
                  "'" + path + "' is not a blocktri plan artifact (bad magic)");
  if (!header.u32(&version)) return header.status();
  if (version < 1 || version > kArtifactFormatVersion)
    return Status(StatusCode::kVersionMismatch,
                  "artifact format version " + std::to_string(version) +
                      ", this build reads versions 1-" +
                      std::to_string(kArtifactFormatVersion));
  if (!header.u32(&endian)) return header.status();
  if (endian != kEndianTag)
    return Status(StatusCode::kBadFormat,
                  "artifact written on a foreign-endian host");
  if (!header.u32(&width)) return header.status();
  if (width != sizeof(T))
    return Status(StatusCode::kBadFormat,
                  "artifact holds " + std::to_string(width * 8) +
                      "-bit values, loader expects " +
                      std::to_string(sizeof(T) * 8) + "-bit");
  if (!header.u64(&art.structure) || !header.u64(&art.options) ||
      !header.i64(&n_header) || !header.i64(&nnz_header) ||
      !header.u32(&nsections))
    return header.status();

  std::size_t offset = header.offset();
  bool have[kSectionColor + 1] = {};
  for (std::uint32_t s = 0; s < nsections; ++s) {
    Reader frame(bytes.data() + offset, bytes.size() - offset, offset);
    std::uint32_t id = 0, crc = 0;
    std::uint64_t size = 0;
    if (!frame.u32(&id) || !frame.u64(&size) || !frame.u32(&crc))
      return frame.status();
    const std::size_t payload_off = frame.offset();
    if (size > bytes.size() - payload_off)
      return Status(StatusCode::kTruncated,
                    "section " + std::to_string(id) + " claims " +
                        std::to_string(size) + " bytes past end of file",
                    static_cast<std::int64_t>(payload_off));
    const unsigned char* payload = bytes.data() + payload_off;
    if (crc32(payload, static_cast<std::size_t>(size)) != crc)
      return Status(StatusCode::kChecksumMismatch,
                    "section " + std::to_string(id) +
                        " payload does not match its CRC32",
                    static_cast<std::int64_t>(payload_off));
    Reader r(payload, static_cast<std::size_t>(size), payload_off);
    bool ok = false;
    switch (id) {
      case kSectionPlan: ok = decode_plan(r, &art); break;
      case kSectionStored: ok = decode_stored(r, &art); break;
      case kSectionTri: ok = decode_tri(r, &art); break;
      case kSectionSquares: ok = decode_squares(r, &art); break;
      case kSectionTuning: ok = decode_tuning(r, &art); break;
      case kSectionShard: ok = decode_shard(r, &art); break;
      case kSectionColor: ok = decode_color(r, &art); break;
      default:
        return Status(StatusCode::kBadFormat,
                      "unknown artifact section id " + std::to_string(id));
    }
    if (!ok || !r.done())
      return r.ok() ? Status(StatusCode::kBadFormat,
                             "section " + std::to_string(id) +
                                 " has trailing or missing bytes")
                    : r.status();
    if (id <= kSectionColor) have[id] = true;
    offset = payload_off + static_cast<std::size_t>(size);
  }
  for (std::uint32_t id : {kSectionPlan, kSectionStored, kSectionTri,
                           kSectionSquares})
    if (!have[id])
      return Status(StatusCode::kTruncated,
                    "artifact is missing section " + std::to_string(id),
                    static_cast<std::int64_t>(offset));

  if (art.plan.n != static_cast<index_t>(n_header) || art.nnz != nnz_header)
    return Status(StatusCode::kBadFormat,
                  "artifact header (n, nnz) disagrees with the plan section");
  if (Status st = validate_artifact(art); !st.ok()) return st;
  *out = std::move(art);
  return Status::Ok();
}

namespace {
Status bad(const std::string& what) {
  return Status(StatusCode::kBadFormat, "artifact invalid: " + what);
}

// The executors index with artifact contents unchecked (permute_vector
// writes out[new_of_old[i]], spmv writes y[row_ids[r]], kernels read
// x[col_idx[k]]), so validation must prove every stored index in-bounds —
// a CRC-valid but crafted file has to be rejected here, not crash later.

bool indices_in_range(const std::vector<index_t>& idx, index_t limit) {
  for (const index_t v : idx)
    if (v < 0 || v >= limit) return false;
  return true;
}

/// front == 0, monotonically non-decreasing, back == nnz — the shape every
/// compressed pointer array (row_ptr / col_ptr / level_ptr) must have for
/// `ptr[i]..ptr[i+1]` loops to stay inside the payload arrays.
bool ptr_consistent(const std::vector<offset_t>& ptr, std::size_t nnz) {
  if (ptr.empty() || ptr.front() != 0 ||
      ptr.back() != static_cast<offset_t>(nnz))
    return false;
  for (std::size_t i = 1; i < ptr.size(); ++i)
    if (ptr[i] < ptr[i - 1]) return false;
  return true;
}

template <class T>
Status check_csr_shape(const Csr<T>& a, index_t nrows, index_t ncols,
                       const char* what) {
  if (a.nrows != nrows || a.ncols != ncols ||
      a.row_ptr.size() != static_cast<std::size_t>(nrows) + 1 ||
      a.col_idx.size() != a.val.size())
    return bad(std::string(what) + " CSR shape is inconsistent");
  if (!ptr_consistent(a.row_ptr, a.val.size()))
    return bad(std::string(what) + " CSR pointers are inconsistent");
  if (!indices_in_range(a.col_idx, ncols))
    return bad(std::string(what) + " CSR column index out of range");
  return Status::Ok();
}

/// A triangular kernel CSR additionally needs every row non-empty with the
/// diagonal as its last entry and nothing above the diagonal — the solvers
/// divide by val[row_ptr[i+1] - 1] and gather x from the preceding entries.
template <class T>
Status check_tri_csr(const Csr<T>& a, const char* what) {
  for (index_t i = 0; i < a.nrows; ++i) {
    const offset_t lo = a.row_ptr[static_cast<std::size_t>(i)];
    const offset_t hi = a.row_ptr[static_cast<std::size_t>(i) + 1];
    if (hi <= lo ||
        a.col_idx[static_cast<std::size_t>(hi) - 1] != i)
      return bad(std::string(what) + " row lacks a trailing diagonal entry");
    for (offset_t k = lo; k < hi; ++k)
      if (a.col_idx[static_cast<std::size_t>(k)] > i)
        return bad(std::string(what) + " has an entry above the diagonal");
  }
  return Status::Ok();
}

Status check_level_sets(const LevelSets& ls, index_t len, const char* what) {
  if (ls.nlevels < 0 ||
      ls.level_of.size() != static_cast<std::size_t>(len) ||
      ls.level_item.size() != static_cast<std::size_t>(len) ||
      ls.level_ptr.size() != static_cast<std::size_t>(ls.nlevels) + 1)
    return bad(std::string(what) + " level analysis does not match the block");
  if (!ptr_consistent(ls.level_ptr, static_cast<std::size_t>(len)))
    return bad(std::string(what) + " level pointers do not cover the block");
  if (!indices_in_range(ls.level_item, len))
    return bad(std::string(what) + " level item out of range");
  if (!indices_in_range(ls.level_of, ls.nlevels))
    return bad(std::string(what) + " level assignment out of range");
  return Status::Ok();
}
}  // namespace

template <class T>
Status validate_artifact(const PlanArtifact<T>& art) {
  const BlockPlan& p = art.plan;
  if (p.n < 0) return bad("negative dimension");
  if (static_cast<std::uint32_t>(p.scheme) >
      static_cast<std::uint32_t>(BlockScheme::kHbmc))
    return bad("block scheme out of range");
  if (p.new_of_old.size() != static_cast<std::size_t>(p.n))
    return bad("permutation length != n");
  if (!is_permutation_of_iota(p.new_of_old))
    return bad("new_of_old is not a permutation of [0, n)");
  if (p.tri_bounds.size() < 2 || p.tri_bounds.front() != 0 ||
      p.tri_bounds.back() != p.n)
    return bad("triangular bounds do not cover [0, n)");
  for (std::size_t i = 1; i < p.tri_bounds.size(); ++i)
    if (p.tri_bounds[i] < p.tri_bounds[i - 1])
      return bad("triangular bounds are not ascending");
  if ((p.scheme == BlockScheme::kHbmc) != !p.color_bounds.empty())
    return bad("color bounds must be present exactly for the hbmc scheme");
  if (!p.color_bounds.empty()) {
    if (p.hbmc_block_rows < 1)
      return bad("hbmc aggregation block size is not positive");
    if (p.color_bounds.front() != 0 || p.color_bounds.back() != p.n)
      return bad("color bounds do not cover [0, n)");
    for (std::size_t i = 1; i < p.color_bounds.size(); ++i)
      if (p.color_bounds[i] < p.color_bounds[i - 1])
        return bad("color bounds are not ascending");
    // Every color boundary must be a triangular leaf boundary — the wave
    // builder and the shard planner only ever cut at tri_bounds, so a color
    // bound off the leaf grid would break the per-color independence the
    // scheme's 2C-1-wave schedule relies on.
    for (const index_t c : p.color_bounds) {
      bool on_leaf = false;
      for (const index_t b : p.tri_bounds)
        if (b == c) { on_leaf = true; break; }
      if (!on_leaf)
        return bad("color bound does not land on a triangular leaf bound");
    }
  }
  if (art.tri.size() != p.tri_bounds.size() - 1)
    return bad("triangular block count != plan leaves");
  if (art.squares.size() != p.squares.size())
    return bad("square block count != plan squares");
  const auto ntri = static_cast<index_t>(art.tri.size());
  const auto nsq = static_cast<index_t>(art.squares.size());
  const auto check_step = [&](const ExecStep& s) {
    if (s.kind != ExecStep::Kind::kTri && s.kind != ExecStep::Kind::kSquare)
      return bad("execution step kind out of range");
    const index_t limit = s.kind == ExecStep::Kind::kTri ? ntri : nsq;
    if (s.index < 0 || s.index >= limit)
      return bad("execution step references a missing block");
    return Status::Ok();
  };
  for (const ExecStep& s : p.steps)
    if (Status st = check_step(s); !st.ok()) return st;
  for (const auto& wave : art.waves)
    for (const ExecStep& s : wave)
      if (Status st = check_step(s); !st.ok()) return st;

  if (art.shard) {
    // A shard slice is a restricted view: cuts must be actual recursion
    // boundaries (never through a triangle) and the populated row range must
    // be exactly the shard's interval of the cut.
    if (art.shard_count < 1 || art.shard_index >= art.shard_count)
      return bad("shard index outside the shard count");
    if (art.shard_bounds.size() !=
        static_cast<std::size_t>(art.shard_count) + 1)
      return bad("shard bound count != shard count + 1");
    if (art.shard_bounds.front() != 0 || art.shard_bounds.back() != p.n)
      return bad("shard bounds do not cover [0, n)");
    for (std::size_t i = 0; i < art.shard_bounds.size(); ++i) {
      if (i > 0 && art.shard_bounds[i] <= art.shard_bounds[i - 1])
        return bad("shard bounds are not strictly ascending");
      bool on_leaf = false;
      for (const index_t b : p.tri_bounds)
        if (b == art.shard_bounds[i]) { on_leaf = true; break; }
      if (!on_leaf)
        return bad("shard cut splits a triangular leaf");
    }
    if (art.shard_row_begin != art.shard_bounds[art.shard_index] ||
        art.shard_row_end != art.shard_bounds[art.shard_index + 1])
      return bad("shard row range disagrees with its bounds entry");
    if (art.verify_captured)
      return bad("shard slices never capture the verify payloads");
  }

  for (std::size_t t = 0; t < art.tri.size(); ++t) {
    const TriBlockArtifact<T>& b = art.tri[t];
    const index_t len = b.r1 - b.r0;
    if (b.r0 != p.tri_bounds[t] || b.r1 != p.tri_bounds[t + 1] || len < 0)
      return bad("triangular block range disagrees with the plan");
    const bool local_tri =
        !art.shard ||
        (b.r0 >= art.shard_row_begin && b.r1 <= art.shard_row_end);
    if (b.populated != local_tri)
      return bad(art.shard
                     ? "shard tri population disagrees with the row range"
                     : "unpopulated tri block outside a shard slice");
    if (!b.populated) {
      // Foreign leaf: metadata only, never executed by this shard's worker.
      if (b.has_csr || !b.csr.val.empty() || !b.diag.empty() ||
          !b.kernel_csr.val.empty() || !b.levels.level_item.empty() ||
          !b.kernel_first_level.empty() || !b.csc.val.empty() ||
          !b.strict_rows.val.empty() || !b.in_degree.empty())
        return bad("foreign shard tri block carries payloads");
      if (static_cast<std::uint32_t>(b.kind) >
          static_cast<std::uint32_t>(TriKernelKind::kCusparseLike))
        return bad("unknown triangular kernel kind");
      continue;
    }
    if (b.has_csr != art.verify_captured)
      return bad("per-block CSR retention disagrees with verify flag");
    if (b.has_csr) {
      // The fallback ladder feeds this CSR straight into the level-set and
      // serial solvers, so it must be a well-formed lower triangle itself.
      if (Status st = check_csr_shape(b.csr, len, len, "tri block");
          !st.ok())
        return st;
      if (Status st = check_tri_csr(b.csr, "tri block"); !st.ok()) return st;
    }
    switch (b.kind) {
      case TriKernelKind::kCompletelyParallel:
        if (b.diag.size() != static_cast<std::size_t>(len))
          return bad("diagonal block length != rows");
        break;
      case TriKernelKind::kLevelSet:
      case TriKernelKind::kCusparseLike: {
        if (Status st = check_csr_shape(b.kernel_csr, len, len, "tri block");
            !st.ok())
          return st;
        if (Status st = check_tri_csr(b.kernel_csr, "tri block"); !st.ok())
          return st;
        if (Status st = check_level_sets(b.levels, len, "tri block");
            !st.ok())
          return st;
        if (b.kind == TriKernelKind::kCusparseLike) {
          if (b.levels.nlevels > 0 && b.kernel_first_level.empty())
            return bad("cusparse-like block has no merged schedule");
          if (!indices_in_range(b.kernel_first_level, b.levels.nlevels))
            return bad("cusparse-like merged schedule level out of range");
        }
        break;
      }
      case TriKernelKind::kSyncFree: {
        if (b.csc.nrows != len || b.csc.ncols != len ||
            b.csc.col_ptr.size() != static_cast<std::size_t>(len) + 1 ||
            b.csc.row_idx.size() != b.csc.val.size())
          return bad("sync-free CSC does not match the block");
        if (!ptr_consistent(b.csc.col_ptr, b.csc.val.size()))
          return bad("sync-free CSC pointers are inconsistent");
        if (!indices_in_range(b.csc.row_idx, len))
          return bad("sync-free CSC row index out of range");
        // The kernel divides by the first entry of each column (the
        // diagonal) and expects everything below it strictly lower — also
        // what makes the busy-wait scheme deadlock-free (dependencies only
        // point at earlier components).
        for (index_t j = 0; j < len; ++j) {
          const offset_t lo = b.csc.col_ptr[static_cast<std::size_t>(j)];
          const offset_t hi = b.csc.col_ptr[static_cast<std::size_t>(j) + 1];
          if (hi <= lo || b.csc.row_idx[static_cast<std::size_t>(lo)] != j)
            return bad("sync-free CSC column lacks a leading diagonal entry");
          for (offset_t k = lo + 1; k < hi; ++k)
            if (b.csc.row_idx[static_cast<std::size_t>(k)] <= j)
              return bad("sync-free CSC column is not strictly lower");
        }
        if (Status st = check_csr_shape(b.strict_rows, len, len,
                                        "strict rows");
            !st.ok())
          return st;
        if (b.in_degree.size() != static_cast<std::size_t>(len))
          return bad("in-degree length != rows");
        for (index_t i = 0; i < len; ++i) {
          for (offset_t k =
                   b.strict_rows.row_ptr[static_cast<std::size_t>(i)];
               k < b.strict_rows.row_ptr[static_cast<std::size_t>(i) + 1];
               ++k)
            if (b.strict_rows.col_idx[static_cast<std::size_t>(k)] >= i)
              return bad("strict rows are not strictly lower");
          if (b.in_degree[static_cast<std::size_t>(i)] !=
              static_cast<index_t>(b.strict_rows.row_nnz(i)))
            return bad("in-degree disagrees with the strict rows");
        }
        break;
      }
      default:
        return bad("unknown triangular kernel kind");
    }
  }

  for (std::size_t q = 0; q < art.squares.size(); ++q) {
    const SquareBlockArtifact<T>& b = art.squares[q];
    const SquareBlockRef& ref = p.squares[q];
    if (ref.r0 < 0 || ref.r0 > ref.r1 || ref.r1 > p.n || ref.c0 < 0 ||
        ref.c0 > ref.c1 || ref.c1 > p.n)
      return bad("square block range is outside the matrix");
    if (static_cast<std::uint32_t>(b.kind) >
        static_cast<std::uint32_t>(SpmvKernelKind::kVectorDcsr))
      return bad("unknown square kernel kind");
    if (b.populated && art.shard) {
      // A shard's slice of a boundary square keeps the plan's columns but may
      // narrow the rows to the shard's interval — SpMV rows are independent,
      // so the slice computes the identical values for the rows it keeps.
      if (b.ref.c0 != ref.c0 || b.ref.c1 != ref.c1 || b.ref.r0 < ref.r0 ||
          b.ref.r1 > ref.r1 || b.ref.r0 > b.ref.r1)
        return bad("shard square slice is not a row sub-range of the plan");
      if (b.ref.r0 < art.shard_row_begin || b.ref.r1 > art.shard_row_end)
        return bad("shard square slice leaves the shard's rows");
    } else if (b.ref.r0 != ref.r0 || b.ref.r1 != ref.r1 ||
               b.ref.c0 != ref.c0 || b.ref.c1 != ref.c1) {
      return bad("square block range disagrees with the plan");
    }
    if (!b.populated) {
      if (!art.shard)
        return bad("unpopulated square block outside a shard slice");
      if (b.nnz != 0 || !b.csr.val.empty() || !b.dcsr.val.empty())
        return bad("foreign shard square block carries payloads");
      continue;
    }
    const index_t rows = b.ref.r1 - b.ref.r0;
    const index_t cols = b.ref.c1 - b.ref.c0;
    const bool dcsr = b.kind == SpmvKernelKind::kScalarDcsr ||
                      b.kind == SpmvKernelKind::kVectorDcsr;
    if (dcsr && b.nnz != 0) {
      if (b.dcsr.nrows != rows || b.dcsr.ncols != cols ||
          b.dcsr.row_ptr.size() != b.dcsr.row_ids.size() + 1 ||
          b.dcsr.col_idx.size() != b.dcsr.val.size() ||
          static_cast<offset_t>(b.dcsr.val.size()) != b.nnz)
        return bad("square DCSR does not match the block");
      if (!ptr_consistent(b.dcsr.row_ptr, b.dcsr.val.size()))
        return bad("square DCSR pointers are inconsistent");
      if (!indices_in_range(b.dcsr.row_ids, rows))
        return bad("square DCSR row id out of range");
      if (!indices_in_range(b.dcsr.col_idx, cols))
        return bad("square DCSR column index out of range");
    } else {
      if (Status st = check_csr_shape(b.csr, rows, cols, "square block");
          !st.ok())
        return st;
      if (static_cast<offset_t>(b.csr.val.size()) != b.nnz)
        return bad("square CSR nnz disagrees with metadata");
    }
  }

  if (art.verify_captured) {
    if (Status st = check_csr_shape(art.stored, p.n, p.n, "stored matrix");
        !st.ok())
      return st;
    if (Status st = check_tri_csr(art.stored, "stored matrix"); !st.ok())
      return st;
  }

  if (art.merge_width < 1) return bad("non-positive level-merge width");
  if (art.tuned && (!std::isfinite(art.oracle_default_ns) ||
                    !std::isfinite(art.oracle_tuned_ns) ||
                    art.oracle_default_ns < 0.0 || art.oracle_tuned_ns < 0.0))
    return bad("tuning record carries invalid oracle timings");
  return Status::Ok();
}

#define BLOCKTRI_INSTANTIATE(T)                                             \
  template std::size_t artifact_bytes(const PlanArtifact<T>&);              \
  template Status save_artifact(const std::string&, const PlanArtifact<T>&); \
  template Status load_artifact(const std::string&, PlanArtifact<T>*);      \
  template Status validate_artifact(const PlanArtifact<T>&);

BLOCKTRI_INSTANTIATE(float)
BLOCKTRI_INSTANTIATE(double)
#undef BLOCKTRI_INSTANTIATE

}  // namespace blocktri
