#include "persist/plan_cache.hpp"

#include <limits>

namespace blocktri {

template <class T>
bool PlanCache<T>::tombstoned_locked(const PlanCacheKey& key) {
  auto ts = tombstones_.find(key);
  if (ts == tombstones_.end()) return false;
  if (counters_.inserts >= ts->second) {
    tombstones_.erase(ts);  // TTL lapsed — the key may be cached again
    return false;
  }
  return true;
}

template <class T>
std::shared_ptr<const PlanArtifact<T>> PlanCache<T>::find(
    const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tombstoned_locked(key)) {
    ++counters_.misses;
    return nullptr;
  }
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recently used
  return it->second->art;
}

template <class T>
std::shared_ptr<const PlanArtifact<T>> PlanCache<T>::insert(
    std::shared_ptr<const PlanArtifact<T>> art, bool overwrite) {
  BLOCKTRI_CHECK(art != nullptr);
  const PlanCacheKey key{art->structure, art->options};
  const std::size_t bytes = artifact_bytes(*art);

  std::lock_guard<std::mutex> lock(mu_);
  if (tombstoned_locked(key)) {
    // The key is serving a quarantine sentence: hand the artifact back
    // uncached (it is still perfectly usable by this caller) rather than
    // re-admitting a pattern whose cached form keeps failing.
    return art;
  }
  if (auto it = index_.find(key); it != index_.end()) {
    if (!overwrite) {
      // First writer wins: identical (structure, options) builds produce
      // identical artifacts, so keep the one concurrent readers already
      // share.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->art;
    }
    // The caller vouches the cached entry is bad (it failed the warm path);
    // drop it so the replacement below becomes authoritative. Readers still
    // holding the old shared_ptr are unaffected.
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (bytes > limits_.max_bytes || limits_.max_entries == 0) {
    // Too big for the cache no matter what we evict — hand it back uncached.
    return art;
  }
  evict_until_fits_locked(bytes);
  lru_.push_front(Entry{key, art, bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  ++counters_.inserts;
  return art;
}

template <class T>
void PlanCache<T>::evict_until_fits_locked(std::size_t incoming_bytes) {
  while (!lru_.empty() && (bytes_ + incoming_bytes > limits_.max_bytes ||
                           lru_.size() + 1 > limits_.max_entries)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

template <class T>
void PlanCache<T>::report_hit_failure(const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tombstoned_locked(key)) return;  // already quarantined
  const int failures = ++failures_[key];
  if (limits_.quarantine_failures <= 0 ||
      failures < limits_.quarantine_failures)
    return;
  // Threshold reached: evict the entry (if still cached) and tombstone the
  // key until quarantine_ttl_inserts further inserts have happened.
  if (auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    ++counters_.evictions;
  }
  failures_.erase(key);
  // Saturating add: a huge TTL (UINT64_MAX as "quarantine forever") or a
  // generation counter near the top must pin the tombstone at the far end
  // of the generation clock, not wrap past it — a wrapped expiry generation
  // would be <= counters_.inserts and the tombstone would die at its very
  // first check, re-admitting the poisoned key immediately.
  const std::uint64_t g = counters_.inserts;
  const std::uint64_t ttl = limits_.quarantine_ttl_inserts;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  tombstones_[key] = g > kMax - ttl ? kMax : g + ttl;
  ++counters_.quarantined;
}

template <class T>
void PlanCache<T>::report_hit_success(const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  failures_.erase(key);  // quarantine counts *consecutive* failures
}

template <class T>
void PlanCache<T>::note_retry_success() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.retry_successes;
}

template <class T>
void PlanCache<T>::note_lease_waits(std::uint64_t waits) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.lease_waits += waits;
}

template <class T>
bool PlanCache<T>::quarantined(const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  return tombstoned_locked(key);
}

template <class T>
PlanCacheStats PlanCache<T>::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s = counters_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  s.tombstones = tombstones_.size();
  return s;
}

template <class T>
void PlanCache<T>::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  failures_.clear();
  tombstones_.clear();
  bytes_ = 0;
}

template class PlanCache<float>;
template class PlanCache<double>;

}  // namespace blocktri
