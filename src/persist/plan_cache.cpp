#include "persist/plan_cache.hpp"

namespace blocktri {

template <class T>
std::shared_ptr<const PlanArtifact<T>> PlanCache<T>::find(
    const PlanCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to most recently used
  return it->second->art;
}

template <class T>
std::shared_ptr<const PlanArtifact<T>> PlanCache<T>::insert(
    std::shared_ptr<const PlanArtifact<T>> art, bool overwrite) {
  BLOCKTRI_CHECK(art != nullptr);
  const PlanCacheKey key{art->structure, art->options};
  const std::size_t bytes = artifact_bytes(*art);

  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = index_.find(key); it != index_.end()) {
    if (!overwrite) {
      // First writer wins: identical (structure, options) builds produce
      // identical artifacts, so keep the one concurrent readers already
      // share.
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->art;
    }
    // The caller vouches the cached entry is bad (it failed the warm path);
    // drop it so the replacement below becomes authoritative. Readers still
    // holding the old shared_ptr are unaffected.
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (bytes > limits_.max_bytes || limits_.max_entries == 0) {
    // Too big for the cache no matter what we evict — hand it back uncached.
    return art;
  }
  evict_until_fits_locked(bytes);
  lru_.push_front(Entry{key, art, bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
  ++counters_.inserts;
  return art;
}

template <class T>
void PlanCache<T>::evict_until_fits_locked(std::size_t incoming_bytes) {
  while (!lru_.empty() && (bytes_ + incoming_bytes > limits_.max_bytes ||
                           lru_.size() + 1 > limits_.max_entries)) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

template <class T>
PlanCacheStats PlanCache<T>::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s = counters_;
  s.entries = lru_.size();
  s.bytes = bytes_;
  return s;
}

template <class T>
void PlanCache<T>::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

template class PlanCache<float>;
template class PlanCache<double>;

}  // namespace blocktri
