// In-process plan cache (ISSUE 4 layer 3).
//
// A service solving many systems with a handful of recurring sparsity
// patterns should pay the BlockSolver analysis (Table 5's preprocessing
// cost) once per pattern, not once per solver. PlanCache keys immutable
// PlanArtifacts by (structure hash, options fingerprint) and hands them out
// as shared_ptr<const ...>, so any number of concurrent BlockSolvers can
// rehydrate from the same artifact while the cache evicts cold entries.
//
// Semantics:
//   * Thread safe: every operation takes an internal mutex; the artifacts
//     themselves are immutable after insert, so readers need no further
//     locking. Entries are ref-counted — eviction never invalidates an
//     artifact a solver still holds.
//   * Capacity bounded in BOTH bytes (artifact_bytes of each entry) and
//     entry count; least-recently-used entries are evicted first. An
//     artifact larger than the byte budget is handed back to the caller
//     uncached rather than wedging the cache.
//   * Observable: hit / miss / eviction / insert counters plus current
//     entries and bytes, for cache-sizing decisions and the zero-analysis
//     warm-path tests.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "persist/artifact.hpp"

namespace blocktri {

/// Cache identity of a plan: the canonical structure hash of the original
/// matrix plus the fingerprint of the plan-affecting Options. Two solvers
/// share a cached plan iff both match.
struct PlanCacheKey {
  std::uint64_t structure = 0;
  std::uint64_t options = 0;

  friend bool operator==(const PlanCacheKey& a, const PlanCacheKey& b) {
    return a.structure == b.structure && a.options == b.options;
  }
};

struct PlanCacheKeyHash {
  std::size_t operator()(const PlanCacheKey& k) const {
    return static_cast<std::size_t>(
        hash_combine(k.structure, k.options));
  }
};

/// Point-in-time cache statistics (monotonic counters + current occupancy).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

template <class T>
class PlanCache {
 public:
  struct Limits {
    std::size_t max_bytes = std::size_t(256) << 20;  // 256 MiB
    std::size_t max_entries = 64;
  };

  PlanCache() : PlanCache(Limits{}) {}
  explicit PlanCache(Limits limits) : limits_(limits) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached artifact for `key` and marks it most recently used,
  /// or nullptr (counted as a miss).
  std::shared_ptr<const PlanArtifact<T>> find(const PlanCacheKey& key);

  /// Inserts `art` under its own (structure, options) key, evicting LRU
  /// entries until both capacity bounds hold. If an entry with the key
  /// already exists it is kept (first writer wins — concurrent cold builds
  /// of the same pattern produce identical artifacts) and returned, unless
  /// `overwrite` is set, in which case `art` replaces it (outstanding
  /// shared_ptrs to the old artifact stay valid). Pass overwrite = true when
  /// the cached entry is known bad — e.g. a cached artifact that failed the
  /// warm rehydration path and forced a cold rebuild. Returns the artifact
  /// that is now authoritative for the key: the cached one, or `art` itself
  /// when it exceeds max_bytes alone and bypasses the cache.
  std::shared_ptr<const PlanArtifact<T>> insert(
      std::shared_ptr<const PlanArtifact<T>> art, bool overwrite = false);

  PlanCacheStats stats() const;

  /// Drops every entry (outstanding shared_ptrs stay valid) and resets the
  /// occupancy, keeping the monotonic counters.
  void clear();

  const Limits& limits() const { return limits_; }

 private:
  struct Entry {
    PlanCacheKey key;
    std::shared_ptr<const PlanArtifact<T>> art;
    std::size_t bytes = 0;
  };

  // Called with mu_ held.
  void evict_until_fits_locked(std::size_t incoming_bytes);

  Limits limits_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<PlanCacheKey, typename std::list<Entry>::iterator,
                     PlanCacheKeyHash>
      index_;
  std::size_t bytes_ = 0;
  PlanCacheStats counters_;
};

}  // namespace blocktri
