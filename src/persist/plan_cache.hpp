// In-process plan cache (ISSUE 4 layer 3).
//
// A service solving many systems with a handful of recurring sparsity
// patterns should pay the BlockSolver analysis (Table 5's preprocessing
// cost) once per pattern, not once per solver. PlanCache keys immutable
// PlanArtifacts by (structure hash, options fingerprint) and hands them out
// as shared_ptr<const ...>, so any number of concurrent BlockSolvers can
// rehydrate from the same artifact while the cache evicts cold entries.
//
// Semantics:
//   * Thread safe: every operation takes an internal mutex; the artifacts
//     themselves are immutable after insert, so readers need no further
//     locking. Entries are ref-counted — eviction never invalidates an
//     artifact a solver still holds.
//   * Capacity bounded in BOTH bytes (artifact_bytes of each entry) and
//     entry count; least-recently-used entries are evicted first. An
//     artifact larger than the byte budget is handed back to the caller
//     uncached rather than wedging the cache.
//   * Observable: hit / miss / eviction / insert counters plus current
//     entries and bytes, for cache-sizing decisions and the zero-analysis
//     warm-path tests.
//   * Quarantine: an entry whose *hit path* keeps failing (the cached
//     artifact rehydrates into a solver that breaks — stale values file,
//     corrupted mmap, miscompiled plan) is tombstoned after
//     Limits::quarantine_failures consecutive failures. While the tombstone
//     lives, find() misses and insert() hands artifacts back uncached, so a
//     poisoned pattern cannot ping-pong between warm failure and re-admission.
//     Tombstones age in insert-generation counts (cheap, monotonic, no
//     clock): one created at generation g expires once the cache has seen
//     Limits::quarantine_ttl_inserts further successful inserts.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "persist/artifact.hpp"

namespace blocktri {

/// Cache identity of a plan: the canonical structure hash of the original
/// matrix plus the fingerprint of the plan-affecting Options. Two solvers
/// share a cached plan iff both match.
struct PlanCacheKey {
  std::uint64_t structure = 0;
  std::uint64_t options = 0;

  friend bool operator==(const PlanCacheKey& a, const PlanCacheKey& b) {
    return a.structure == b.structure && a.options == b.options;
  }
};

struct PlanCacheKeyHash {
  std::size_t operator()(const PlanCacheKey& k) const {
    return static_cast<std::size_t>(
        hash_combine(k.structure, k.options));
  }
};

/// Point-in-time cache statistics (monotonic counters + current occupancy).
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  /// Keys tombstoned after repeated hit-path failures (monotonic).
  std::uint64_t quarantined = 0;
  /// Artifact loads that succeeded only after transient-I/O retries
  /// (fed by BlockSolver::create_from_file's backoff loop).
  std::uint64_t retry_successes = 0;
  /// Workspace-lease acquisitions that had to block on an exhausted pool
  /// (fed by callers wiring WorkspacePoolStats into their cache telemetry).
  std::uint64_t lease_waits = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
  /// Currently live (unexpired) quarantine tombstones.
  std::size_t tombstones = 0;
};

template <class T>
class PlanCache {
 public:
  struct Limits {
    std::size_t max_bytes = std::size_t(256) << 20;  // 256 MiB
    std::size_t max_entries = 64;
    /// Consecutive hit-path failures (report_hit_failure without an
    /// intervening report_hit_success) before a key is tombstoned.
    int quarantine_failures = 3;
    /// Tombstone lifetime, measured in successful inserts of *other* keys —
    /// a generation clock rather than wall time, so quarantine behaviour is
    /// deterministic under test and in replay. 0 makes tombstones expire at
    /// their first check (quarantine still evicts, but never blocks
    /// re-admission); UINT64_MAX quarantines forever (the expiry generation
    /// saturates instead of wrapping).
    std::uint64_t quarantine_ttl_inserts = 8;
  };

  PlanCache() : PlanCache(Limits{}) {}
  explicit PlanCache(Limits limits) : limits_(limits) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached artifact for `key` and marks it most recently used,
  /// or nullptr (counted as a miss).
  std::shared_ptr<const PlanArtifact<T>> find(const PlanCacheKey& key);

  /// Inserts `art` under its own (structure, options) key, evicting LRU
  /// entries until both capacity bounds hold. If an entry with the key
  /// already exists it is kept (first writer wins — concurrent cold builds
  /// of the same pattern produce identical artifacts) and returned, unless
  /// `overwrite` is set, in which case `art` replaces it (outstanding
  /// shared_ptrs to the old artifact stay valid). Pass overwrite = true when
  /// the cached entry is known bad — e.g. a cached artifact that failed the
  /// warm rehydration path and forced a cold rebuild. Returns the artifact
  /// that is now authoritative for the key: the cached one, or `art` itself
  /// when it exceeds max_bytes alone and bypasses the cache.
  std::shared_ptr<const PlanArtifact<T>> insert(
      std::shared_ptr<const PlanArtifact<T>> art, bool overwrite = false);

  PlanCacheStats stats() const;

  /// Records that a solver rehydrated from this key's cached artifact and
  /// the warm path *failed* (rehydration threw, refresh_values mismatched,
  /// warm verification rejected the plan). After
  /// Limits::quarantine_failures consecutive failures the key is evicted
  /// and tombstoned for Limits::quarantine_ttl_inserts insert generations.
  void report_hit_failure(const PlanCacheKey& key);

  /// Records a successful warm rehydration for `key`, resetting its
  /// consecutive-failure count (quarantine counts *consecutive* failures).
  void report_hit_success(const PlanCacheKey& key);

  /// Counts an artifact load that succeeded only after transient-I/O
  /// retries (BlockSolver::create_from_file's backoff loop reports here).
  void note_retry_success();

  /// Folds workspace-pool blocking-acquisition waits into the cache's
  /// telemetry, so one stats() call covers the whole resilience surface.
  void note_lease_waits(std::uint64_t waits);

  /// True while `key` is under an unexpired quarantine tombstone.
  bool quarantined(const PlanCacheKey& key);

  /// Drops every entry (outstanding shared_ptrs stay valid) and resets the
  /// occupancy, keeping the monotonic counters. Tombstones and failure
  /// counts are dropped too — a cleared cache starts from a clean slate.
  void clear();

  const Limits& limits() const { return limits_; }

 private:
  struct Entry {
    PlanCacheKey key;
    std::shared_ptr<const PlanArtifact<T>> art;
    std::size_t bytes = 0;
  };

  // Called with mu_ held.
  void evict_until_fits_locked(std::size_t incoming_bytes);
  // Called with mu_ held: drops `key`'s tombstone if its TTL has lapsed and
  // returns whether a live tombstone remains.
  bool tombstoned_locked(const PlanCacheKey& key);

  Limits limits_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<PlanCacheKey, typename std::list<Entry>::iterator,
                     PlanCacheKeyHash>
      index_;
  // Consecutive hit-path failures per key (erased on success/quarantine).
  std::unordered_map<PlanCacheKey, int, PlanCacheKeyHash> failures_;
  // key -> insert generation (counters_.inserts) at which the tombstone
  // expires.
  std::unordered_map<PlanCacheKey, std::uint64_t, PlanCacheKeyHash>
      tombstones_;
  std::size_t bytes_ = 0;
  PlanCacheStats counters_;
};

}  // namespace blocktri
