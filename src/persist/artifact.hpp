// Plan persistence — serialized BlockSolver preprocessing (ISSUE 4).
//
// Table 5 of the paper prices recursive-block preprocessing at many
// single-solve equivalents; in a service that solves the same sparsity
// pattern millions of times (a factorization reused across timesteps or
// requests), that analysis must be paid once, not per BlockSolver. A
// PlanArtifact captures *everything* BlockSolver::create computes —
// permutation, recursive BlockPlan (triangles, squares, step order, waves),
// per-block kernel selections, and the built CSC/CSR/DCSR block arrays — as
// plain data that can be
//
//   * saved to / loaded from a versioned binary file (save_artifact /
//     load_artifact below, format described in DESIGN.md §10),
//   * shared immutably between concurrent solvers through a PlanCache
//     (persist/plan_cache.hpp),
//   * rehydrated into a BlockSolver with zero re-analysis
//     (BlockSolver::create_from_artifact), bitwise-identical to the cold
//     build it was captured from.
//
// The artifact is keyed by the canonical structure hash of the *original*
// (unpermuted) matrix plus a fingerprint of the plan-affecting options, so a
// stale or mismatched artifact is rejected with a typed Status instead of
// producing a silently wrong solve.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/levels.hpp"
#include "common/status.hpp"
#include "core/adaptive.hpp"
#include "core/plan.hpp"
#include "sparse/formats.hpp"
#include "spmv/kernels.hpp"
#include "sptrsv/levelset.hpp"

namespace blocktri {

/// Newest on-disk format version this build writes and reads. Version 2
/// added the optional tuning section, version 3 the optional shard section
/// (per-shard slices for the multi-process worker pool, src/shard), and
/// version 4 the optional color section (HBMC color boundaries, DESIGN.md
/// §16). Plain untuned artifacts are still written as version 1 —
/// byte-identical to pre-tuner builds — tuned ones as version 2, shard
/// slices as version 3, and only HBMC plans need version 4, so every file
/// stays readable by the oldest build that could have produced it. Versions
/// outside [1, 4] are rejected with kVersionMismatch.
inline constexpr std::uint32_t kArtifactFormatVersion = 4;

/// Everything preprocessing derived for one triangular leaf block. Only the
/// fields of the selected kernel kind are populated (the rest stay empty),
/// mirroring what the live solver holds.
template <class T>
struct TriBlockArtifact {
  index_t r0 = 0, r1 = 0;
  TriKernelKind kind = TriKernelKind::kSyncFree;
  index_t nlevels = 0;
  offset_t nnz = 0;

  /// Shard slices (format v3) keep every leaf's metadata but only the
  /// payloads of the leaves the shard owns; a foreign leaf is `!populated`
  /// (empty payloads, never executed by that worker). Always true outside
  /// shard artifacts.
  bool populated = true;

  /// The block's CSR, retained iff the artifact was captured with
  /// verify.enabled — the fallback-ladder / refinement reference.
  bool has_csr = false;
  Csr<T> csr;

  std::vector<T> diag;                      // kCompletelyParallel
  Csr<T> kernel_csr;                        // kLevelSet / kCusparseLike
  LevelSets levels;                         // kLevelSet / kCusparseLike
  std::vector<index_t> kernel_first_level;  // kCusparseLike
  Csc<T> csc;                               // kSyncFree
  Csr<T> strict_rows;                       // kSyncFree
  std::vector<index_t> in_degree;           // kSyncFree
};

/// One square (SpMV) block: kernel selection plus the built storage (CSR for
/// the CSR kernel kinds, DCSR for the DCSR kinds).
template <class T>
struct SquareBlockArtifact {
  /// In a shard slice (format v3) this may be a *row sub-range* of the
  /// plan's square: a boundary square crossing a shard cut is row-sliced per
  /// shard (columns untouched — SpMV updates are row-independent, so the
  /// per-row arithmetic and therefore the bitwise result are unchanged).
  SquareBlockRef ref{};
  SpmvKernelKind kind = SpmvKernelKind::kScalarCsr;
  offset_t nnz = 0;
  double empty_ratio = 0.0;
  /// False in shard slices for squares the shard does not execute (foreign
  /// rows, or an empty row slice); payloads empty. Always true otherwise.
  bool populated = true;
  Csr<T> csr;
  Dcsr<T> dcsr;
};

/// The complete, immutable result of BlockSolver preprocessing.
template <class T>
struct PlanArtifact {
  /// structure_hash() of the original (unpermuted) input matrix — a loaded
  /// plan is only accepted for a matrix with this exact pattern.
  std::uint64_t structure = 0;
  /// Fingerprint of the plan-affecting Options fields (scheme, planner,
  /// adaptive/forced kernels, thresholds, verify.enabled) the artifact was
  /// captured under; create_from_artifact requires an exact match.
  std::uint64_t options = 0;

  BlockPlan plan;
  std::vector<std::vector<ExecStep>> waves;  // compute_step_waves output
  offset_t nnz = 0;

  bool verify_captured = false;  // stored + per-block CSRs retained
  Csr<T> stored;                 // permuted matrix (verify_captured only)
  double norm_inf = 0.0;         // ‖L‖∞ of stored (verify_captured only)

  std::int64_t build_ops = 0;  // preprocessing cost counters (Table 5)
  std::int64_t build_bytes = 0;

  /// Autotuning record (format version 2, optional section — absent in
  /// version-1 files, which load with these defaults). The tuned kernel
  /// *choices* live in the regular tri/square sections like any others; this
  /// section carries what cannot be reconstructed from them: that the plan
  /// came from the tuner (so rehydration must not expect the heuristic
  /// plan), the level-merge width the level-set blocks were built with, and
  /// the search's oracle verdict for diagnostics.
  bool tuned = false;
  offset_t merge_width = kLevelMergeMaxWidth;
  bool tune_fell_back = false;
  std::uint64_t tune_device = 0;     // device_fingerprint of the tuning GPU
  double oracle_default_ns = 0.0;    // exact-sim time of the default plan
  double oracle_tuned_ns = 0.0;      // exact-sim time of the captured plan

  /// Shard-slice record (format version 3, optional section — absent in
  /// v1/v2 files, which load with these defaults). A shard slice keeps the
  /// *global* plan (steps, waves, permutation) so a worker can derive its
  /// local schedule and halo dependencies, but populates only the blocks in
  /// [shard_row_begin, shard_row_end) — the executors of shard workers never
  /// touch a foreign block. shard_bounds holds all shard_count + 1 cut rows
  /// (values of plan.tri_bounds), identical across the slices of one cut.
  bool shard = false;
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 0;
  index_t shard_row_begin = 0;
  index_t shard_row_end = 0;
  std::vector<index_t> shard_bounds;

  // HBMC color record (format version 4, optional section — absent in
  // v1–v3 files). The payload itself lives inside the BlockPlan
  // (plan.color_bounds / plan.hbmc_block_rows); a separate CRC'd section
  // carries it so the kSectionPlan encoding — and with it every non-HBMC
  // artifact — stays byte-identical to the older format versions.

  std::vector<TriBlockArtifact<T>> tri;
  std::vector<SquareBlockArtifact<T>> squares;
};

/// Heap footprint of an artifact (all vector payloads + bookkeeping) — the
/// byte measure PlanCache's capacity bound uses.
template <class T>
std::size_t artifact_bytes(const PlanArtifact<T>& art);

/// Serializes `art` to `path` in the versioned binary format: a fixed header
/// (magic, format version, endianness tag, value-type width, structure hash,
/// options fingerprint, n, nnz) followed by CRC32-guarded sections. Returns
/// Ok or a typed Status (kBadFormat for an unopenable/unwritable path).
/// The write is atomic-ish: data goes to "<path>.tmp" and is renamed into
/// place only after a successful flush, so readers never observe a torn file.
template <class T>
Status save_artifact(const std::string& path, const PlanArtifact<T>& art);

/// TESTING ONLY: arms the next `n` load_artifact calls (process-wide, any
/// thread) to fail with a transient kIoError before touching the file —
/// the fault class BlockSolver::create_from_file's retry-with-backoff loop
/// exists to absorb. pending_io_failures() reads the remaining budget.
namespace persist_testing {
void force_io_failures(int n);
int pending_io_failures();
}  // namespace persist_testing

/// Loads an artifact written by save_artifact. Every defect class maps to a
/// typed Status: wrong magic / endianness / value width → kBadFormat, other
/// format version → kVersionMismatch, file ends early → kTruncated (location
/// = byte offset), section CRC32 disagrees → kChecksumMismatch (location =
/// section's byte offset), the OS reports a read error mid-stream →
/// kIoError (naming the path — distinct from kTruncated: the file may be
/// intact). On any failure *out is left untouched.
template <class T>
Status load_artifact(const std::string& path, PlanArtifact<T>* out);

/// Deep semantic check of a deserialized (or hand-built) artifact. The
/// executors index with artifact contents unchecked — permute_vector writes
/// out[new_of_old[i]], the DCSR spmv writes y[row_ids[r]], kernels read
/// x[col_idx[k]], the sync-free busy-wait counts down in_degree — so beyond
/// consistent plan bounds and array sizes this proves every stored index
/// in-bounds and every kernel precondition (pointer arrays monotone and
/// covering, new_of_old a permutation of [0, n), triangular CSRs non-empty
/// rows with a trailing diagonal, sync-free columns diagonal-first and
/// strictly lower with in_degree matching the strict rows, enum values in
/// range). Returns kBadFormat describing the first violation. load_artifact
/// runs this before handing the artifact out, so a CRC-valid but crafted or
/// semantically corrupt file is rejected here rather than corrupting memory
/// at solve time.
template <class T>
Status validate_artifact(const PlanArtifact<T>& art);

}  // namespace blocktri
