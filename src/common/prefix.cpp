#include "common/prefix.hpp"

#include <algorithm>

namespace blocktri {

std::vector<index_t> stable_counting_sort_perm(const std::vector<index_t>& keys,
                                               index_t nbuckets) {
  BLOCKTRI_CHECK(nbuckets >= 0);
  std::vector<offset_t> bucket_ptr(static_cast<std::size_t>(nbuckets) + 1, 0);
  for (const index_t k : keys) {
    BLOCKTRI_CHECK_MSG(k >= 0 && k < nbuckets, "sort key out of range");
    ++bucket_ptr[static_cast<std::size_t>(k)];
  }
  exclusive_scan_in_place(bucket_ptr);
  std::vector<index_t> perm(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    perm[static_cast<std::size_t>(
        bucket_ptr[static_cast<std::size_t>(keys[i])]++)] =
        static_cast<index_t>(i);
  }
  return perm;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const index_t p = perm[i];
    BLOCKTRI_CHECK(p >= 0 && static_cast<std::size_t>(p) < perm.size());
    inv[static_cast<std::size_t>(p)] = static_cast<index_t>(i);
  }
  return inv;
}

bool is_permutation_of_iota(const std::vector<index_t>& perm) {
  std::vector<char> seen(perm.size(), 0);
  for (const index_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= perm.size()) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

}  // namespace blocktri
