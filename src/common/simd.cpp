#include "common/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(BLOCKTRI_HAVE_NEON)
#include <arm_neon.h>
#endif

namespace blocktri::simd {

namespace {

bool cpu_has_vector_isa() {
#if defined(BLOCKTRI_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#elif defined(BLOCKTRI_HAVE_NEON)
  return true;  // NEON is architecturally guaranteed on aarch64
#else
  return false;
#endif
}

/// Environment + hardware decision, computed once. BLOCKTRI_STRICT_SCALAR
/// (set, non-empty, not "0") forces the pre-SIMD loops; BLOCKTRI_SIMD=0 or
/// =scalar keeps the canonical order but the scalar lowering; otherwise the
/// vector lowering is used whenever the CPU supports one.
Path resolve_default_path() {
  if (const char* e = std::getenv("BLOCKTRI_STRICT_SCALAR");
      e != nullptr && e[0] != '\0' && std::strcmp(e, "0") != 0)
    return Path::kStrictScalar;
  if (const char* e = std::getenv("BLOCKTRI_SIMD");
      e != nullptr && (std::strcmp(e, "0") == 0 ||
                       std::strcmp(e, "scalar") == 0 ||
                       std::strcmp(e, "off") == 0))
    return Path::kBlockedScalar;
  return cpu_has_vector_isa() ? Path::kVector : Path::kBlockedScalar;
}

// -1 = no override; otherwise the forced Path. Relaxed atomics keep the
// test/bench override TSan-clean without imposing ordering on the hot path.
std::atomic<int> g_forced{-1};

// Per-thread override, consulted before g_forced: the degradation ladder
// demotes the path for one retry attempt on one thread while concurrent
// solves on other threads keep their own (or the global) selection.
thread_local int t_forced = -1;

Path clamp_to_isa(Path p) {
  if (p == Path::kVector && !cpu_has_vector_isa()) return Path::kBlockedScalar;
  return p;
}

}  // namespace

Path active_path() {
  if (t_forced >= 0) return static_cast<Path>(t_forced);
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Path>(forced);
  static const Path def = resolve_default_path();
  return def;
}

void force_path(Path p) {
  g_forced.store(static_cast<int>(clamp_to_isa(p)), std::memory_order_relaxed);
}

void clear_forced_path() { g_forced.store(-1, std::memory_order_relaxed); }

void force_path_this_thread(Path p) {
  t_forced = static_cast<int>(clamp_to_isa(p));
}

void clear_forced_path_this_thread() { t_forced = -1; }

ScopedPathOverride::ScopedPathOverride(Path p) : prev_(t_forced) {
  force_path_this_thread(p);
}

ScopedPathOverride::~ScopedPathOverride() { t_forced = prev_; }

bool vector_isa_available() {
  static const bool avail = cpu_has_vector_isa();
  return avail;
}

const char* vector_isa_name() {
#if defined(BLOCKTRI_HAVE_AVX2)
  return vector_isa_available() ? "avx2" : "none";
#elif defined(BLOCKTRI_HAVE_NEON)
  return "neon";
#else
  return "none";
#endif
}

const char* to_string(Path p) {
  switch (p) {
    case Path::kStrictScalar: return "strict-scalar";
    case Path::kBlockedScalar: return "blocked-scalar";
    case Path::kVector: return "vector";
  }
  return "?";
}

#if defined(BLOCKTRI_HAVE_NEON)
namespace neon {

namespace {

/// Canonical 4-lane dot, double: lanes 0/1 in `a`, lanes 2/3 in `b`, reduced
/// a+b = [s0+s2, s1+s3] then lane0+lane1 — the fixed-order tree.
inline double dot4(const double* val, const index_t* col, const double* x,
                   offset_t len) {
  const offset_t nb = len & ~offset_t(3);
  float64x2_t a = vdupq_n_f64(0.0);  // lanes s0, s1
  float64x2_t b = vdupq_n_f64(0.0);  // lanes s2, s3
  for (offset_t q = 0; q < nb; q += 4) {
    const float64x2_t v01 = vld1q_f64(val + q);
    const float64x2_t v23 = vld1q_f64(val + q + 2);
    float64x2_t x01 = vdupq_n_f64(0.0), x23 = vdupq_n_f64(0.0);
    x01 = vsetq_lane_f64(x[col[q + 0]], x01, 0);
    x01 = vsetq_lane_f64(x[col[q + 1]], x01, 1);
    x23 = vsetq_lane_f64(x[col[q + 2]], x23, 0);
    x23 = vsetq_lane_f64(x[col[q + 3]], x23, 1);
    a = vaddq_f64(a, vmulq_f64(v01, x01));
    b = vaddq_f64(b, vmulq_f64(v23, x23));
  }
  const float64x2_t r = vaddq_f64(a, b);  // [s0+s2, s1+s3]
  double total = vgetq_lane_f64(r, 0) + vgetq_lane_f64(r, 1);
  for (offset_t p = nb; p < len; ++p) total += val[p] * x[col[p]];
  return total;
}

/// Canonical 4-lane dot, float: one 4-lane register, reduced
/// [s0+s2, s1+s3] then lane0+lane1.
inline float dot4(const float* val, const index_t* col, const float* x,
                  offset_t len) {
  const offset_t nb = len & ~offset_t(3);
  float32x4_t acc = vdupq_n_f32(0.0f);
  for (offset_t q = 0; q < nb; q += 4) {
    const float32x4_t v = vld1q_f32(val + q);
    float32x4_t xg = vdupq_n_f32(0.0f);
    xg = vsetq_lane_f32(x[col[q + 0]], xg, 0);
    xg = vsetq_lane_f32(x[col[q + 1]], xg, 1);
    xg = vsetq_lane_f32(x[col[q + 2]], xg, 2);
    xg = vsetq_lane_f32(x[col[q + 3]], xg, 3);
    acc = vaddq_f32(acc, vmulq_f32(v, xg));
  }
  const float32x2_t r =
      vadd_f32(vget_low_f32(acc), vget_high_f32(acc));  // [s0+s2, s1+s3]
  float total = vget_lane_f32(r, 0) + vget_lane_f32(r, 1);
  for (offset_t p = nb; p < len; ++p) total += val[p] * x[col[p]];
  return total;
}

template <class T>
void spmv_update_rows_impl(const offset_t* row_ptr, const index_t* col_idx,
                           const T* val, const index_t* row_ids, index_t r0,
                           index_t r1, const T* x, T* y) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t len = row_ptr[r + 1] - lo;
    const T sum = len <= 4 ? dot_blocked(val + lo, col_idx + lo, x, len)
                           : dot4(val + lo, col_idx + lo, x, len);
    y[row_ids == nullptr ? r : row_ids[r]] -= sum;
  }
}

template <class T>
void sptrsv_rows_impl(const offset_t* row_ptr, const index_t* col_idx,
                      const T* val, const index_t* items, offset_t p0,
                      offset_t p1, const T* b, T* x) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t len = row_ptr[i + 1] - 1 - lo;
    const T left = len <= 4 ? dot_blocked(val + lo, col_idx + lo, x, len)
                            : dot4(val + lo, col_idx + lo, x, len);
    x[i] = (b[i] - left) / val[lo + len];
  }
}

}  // namespace

void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const double* val, const index_t* row_ids, index_t r0,
                      index_t r1, const double* x, double* y) {
  spmv_update_rows_impl(row_ptr, col_idx, val, row_ids, r0, r1, x, y);
}
void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const float* val, const index_t* row_ids, index_t r0,
                      index_t r1, const float* x, float* y) {
  spmv_update_rows_impl(row_ptr, col_idx, val, row_ids, r0, r1, x, y);
}
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const double* val, const index_t* items, offset_t p0,
                 offset_t p1, const double* b, double* x) {
  sptrsv_rows_impl(row_ptr, col_idx, val, items, p0, p1, b, x);
}
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const float* val, const index_t* items, offset_t p0,
                 offset_t p1, const float* b, float* x) {
  sptrsv_rows_impl(row_ptr, col_idx, val, items, p0, p1, b, x);
}

}  // namespace neon
#endif  // BLOCKTRI_HAVE_NEON

}  // namespace blocktri::simd
