#include "common/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace blocktri {

ThreadPool::ThreadPool(int threads) : nthreads_(std::max(1, threads)) {
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int t = 1; t < nthreads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_tasks(int tid, int ntasks,
                           const std::function<void(int)>& fn) {
  for (int t = tid; t < ntasks; t += nthreads_) {
    try {
      fn(t);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

void ThreadPool::run(int ntasks, const std::function<void(int)>& fn) {
  if (ntasks <= 0) return;
  if (workers_.empty() || ntasks == 1) {
    for (int t = 0; t < ntasks; ++t) fn(t);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    job_ntasks_ = ntasks;
    pending_workers_ = static_cast<int>(workers_.size());
    ++epoch_;
  }
  work_cv_.notify_all();
  run_tasks(0, ntasks, fn);  // the caller is thread 0
  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return pending_workers_ == 0; });
    job_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    int ntasks = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = job_;
      ntasks = job_ntasks_;
    }
    run_tasks(tid, ntasks, *fn);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_workers_ == 0) done_cv_.notify_one();
    }
  }
}

int resolve_threads(int requested) {
  if (const char* env = std::getenv("BLOCKTRI_THREADS")) {
    // Hostile-env parsing: garbage, empty, negative, zero, and overflowing
    // values must fall back to `requested`, never wrap into a bogus thread
    // count. strtol saturates at LONG_MIN/LONG_MAX with errno = ERANGE, so
    // the range gate below already rejects overflow — the explicit errno
    // check additionally rejects values that saturate *inside* [1, 4096]
    // on exotic platforms where long is 32-bit.
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    bool parsed = end != env && errno != ERANGE;
    if (parsed) {
      while (*end == ' ' || *end == '\t') ++end;  // tolerate trailing blanks
      parsed = *end == '\0';
    }
    if (parsed && v >= 1 && v <= kMaxResolvedThreads)
      return static_cast<int>(v);
  }
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return std::max(1, requested);
}

std::vector<index_t> balanced_row_partition(
    const std::vector<offset_t>& row_ptr, index_t nrows, int nchunks) {
  nchunks = std::max(1, nchunks);
  std::vector<index_t> bounds(static_cast<std::size_t>(nchunks) + 1);
  bounds[0] = 0;
  bounds[static_cast<std::size_t>(nchunks)] = nrows;
  if (nrows <= 0) {
    std::fill(bounds.begin(), bounds.end(), 0);
    bounds[static_cast<std::size_t>(nchunks)] = std::max<index_t>(nrows, 0);
    return bounds;
  }
  const offset_t total = row_ptr[static_cast<std::size_t>(nrows)];
  const offset_t base = row_ptr[0];
  for (int c = 1; c < nchunks; ++c) {
    const offset_t target =
        base + (total - base) * c / nchunks;
    const auto it = std::lower_bound(row_ptr.begin(),
                                     row_ptr.begin() + nrows + 1, target);
    auto r = static_cast<index_t>(it - row_ptr.begin());
    r = std::clamp<index_t>(r, bounds[static_cast<std::size_t>(c) - 1], nrows);
    bounds[static_cast<std::size_t>(c)] = r;
  }
  return bounds;
}

}  // namespace blocktri
