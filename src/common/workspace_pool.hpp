// Bounded pool of leased per-call workspaces.
//
// PR 5 left every BlockSolver entry point non-reentrant: one shared
// SolveWorkspace meant two threads solving on the same warm solver silently
// raced on its buffers. The pool replaces the single workspace with leases —
// each solve call acquires a workspace for its duration and returns it on
// exit — which makes the entry points reentrant and doubles as the service
// layer's backpressure primitive: the pool is bounded, and when every
// workspace is out a new caller either blocks until one frees (admission
// control) or fails fast with kPoolExhausted (load shedding).
//
// Semantics:
//   * Never-shrinking: workspaces are created on demand up to `capacity` and
//     kept for the process lifetime. A released workspace keeps its grown
//     buffers, so the LIFO free list hands the warmest workspace to the next
//     caller and the zero-allocation warm-path contract survives — after one
//     warm-up solve per shape, acquire/release is a mutex and a pointer swap
//     (the free list's backing storage is reserved up front).
//   * Lease is RAII: it returns the workspace on destruction, so early
//     returns and exceptions cannot leak a slot.
//   * Stats are cheap monotonic counters under the same mutex — the service
//     layer reads them to size the pool (see DESIGN.md §12).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/deadline.hpp"
#include "common/status.hpp"

namespace blocktri {

/// Point-in-time pool statistics (all monotonic except in_use).
struct WorkspacePoolStats {
  std::uint64_t created = 0;      // workspaces built so far (<= capacity)
  std::uint64_t leases = 0;       // successful acquisitions
  std::uint64_t lease_waits = 0;  // acquisitions that had to block
  std::uint64_t exhausted = 0;    // failing-mode acquisitions denied
  int in_use = 0;                 // currently leased
};

template <class W>
class WorkspacePool {
 public:
  struct Options {
    /// Hard cap on workspaces ever created (the backpressure bound). < 1 is
    /// clamped to 1.
    int capacity = 8;
    /// true: acquire() blocks until a workspace frees (admission control);
    /// false: acquire() fails fast with an empty lease (load shedding).
    bool block_when_exhausted = true;
  };

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept : pool_(o.pool_), w_(o.w_) {
      o.pool_ = nullptr;
      o.w_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        w_ = o.w_;
        o.pool_ = nullptr;
        o.w_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    explicit operator bool() const { return w_ != nullptr; }
    W* get() const { return w_; }
    W& operator*() const { return *w_; }
    W* operator->() const { return w_; }

    /// Returns the workspace early (destruction does the same).
    void release() {
      if (w_ != nullptr) {
        pool_->put_back(w_);
        pool_ = nullptr;
        w_ = nullptr;
      }
    }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, W* w) : pool_(pool), w_(w) {}
    WorkspacePool* pool_ = nullptr;
    W* w_ = nullptr;
  };

  explicit WorkspacePool(Options opt = {}) : opt_(opt) {
    if (opt_.capacity < 1) opt_.capacity = 1;
    const auto cap = static_cast<std::size_t>(opt_.capacity);
    // Reserved up front so warm acquire/release never allocates.
    all_.reserve(cap);
    free_.reserve(cap);
  }

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Acquires a workspace, creating one (and running `init_new` on it) when
  /// the free list is empty and the pool is under capacity. At capacity:
  /// blocks until a lease returns (block_when_exhausted) or returns an empty
  /// Lease (the caller maps it to kPoolExhausted).
  template <class Init>
  Lease acquire(const Init& init_new) {
    return acquire(init_new, Deadline::unlimited(), nullptr, nullptr);
  }

  /// Cancellable acquisition: like acquire(init_new), but a blocked waiter
  /// wakes and gives up — with `*denial` telling the caller why — when
  /// `cancel` fires (kCancelled) or `deadline` expires (kDeadlineExceeded)
  /// while it is parked on the exhausted pool. A request that would
  /// otherwise sleep forever on a drained pool (its workspace holders
  /// themselves stuck, the service shutting down) unblocks in about a
  /// millisecond instead. Failing-mode denials still report kPoolExhausted.
  /// `denial` is written only when the returned Lease is empty.
  template <class Init>
  Lease acquire(const Init& init_new, const Deadline& deadline,
                const CancelToken* cancel, StatusCode* denial) {
    std::unique_lock<std::mutex> lock(mu_);
    bool counted_wait = false;
    for (;;) {
      if (!free_.empty()) {
        W* w = free_.back();
        free_.pop_back();  // LIFO: the warmest workspace goes out first
        ++stats_.leases;
        ++stats_.in_use;
        return Lease(this, w);
      }
      if (all_.size() < static_cast<std::size_t>(opt_.capacity)) {
        all_.push_back(std::make_unique<W>());
        W* w = all_.back().get();
        ++stats_.created;
        ++stats_.leases;
        ++stats_.in_use;
        lock.unlock();
        init_new(*w);  // sizing work happens outside the lock
        return Lease(this, w);
      }
      if (!opt_.block_when_exhausted) {
        ++stats_.exhausted;
        if (denial != nullptr) *denial = StatusCode::kPoolExhausted;
        return Lease();
      }
      if (cancel != nullptr && cancel->cancelled()) {
        if (denial != nullptr) *denial = StatusCode::kCancelled;
        return Lease();
      }
      if (deadline.expired()) {
        if (denial != nullptr) *denial = StatusCode::kDeadlineExceeded;
        return Lease();
      }
      if (!counted_wait) {  // one blocked acquisition, however many wakes
        ++stats_.lease_waits;
        counted_wait = true;
      }
      const auto have_free = [this] { return !free_.empty(); };
      if (cancel != nullptr) {
        // A CancelToken has no condition variable to signal, so a waiting
        // thread polls it: wake at least every millisecond, re-check, park
        // again. Cheap (the pool is already in its slow path) and bounded.
        cv_.wait_for(lock, std::chrono::milliseconds(1), have_free);
      } else if (!deadline.unlimited_deadline()) {
        cv_.wait_until(lock, deadline.time_point(), have_free);
      } else {
        cv_.wait(lock, have_free);
      }
    }
  }

  Lease acquire() {
    return acquire([](W&) {});
  }

  WorkspacePoolStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  int capacity() const { return opt_.capacity; }
  bool blocking() const { return opt_.block_when_exhausted; }

 private:
  void put_back(W* w) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      free_.push_back(w);
      --stats_.in_use;
    }
    cv_.notify_one();
  }

  Options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::unique_ptr<W>> all_;  // owns every workspace ever created
  std::vector<W*> free_;                 // LIFO free list
  WorkspacePoolStats stats_;
};

}  // namespace blocktri
