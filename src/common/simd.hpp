// Portable SIMD layer for the host kernels' inner loops.
//
// Every dense reduction in the hot path (SpMV row dots, SpTRSV left-sum
// dots, their multi-RHS variants) goes through this header so one canonical
// floating-point operation order is shared by every lowering:
//
//   canonical 4-lane blocked order (for a row of length len):
//     nb = len & ~3                      // the 4-lane-blocked prefix
//     s[l] = Σ_{q<nb, q≡l (mod 4)} val[q]·x[col[q]]   for l = 0..3
//     total = (s0 + s2) + (s1 + s3)      // fixed-order tree reduction
//     total += val[p]·x[col[p]]          for p = nb..len-1, in order
//
// The AVX2 lowering (simd_avx2.cpp) holds s0..s3 in the four lanes of a ymm
// register and reduces low128+high128 then lane0+lane1 — exactly the tree
// above — using explicit mul+add intrinsics (never FMA). The blocked-scalar
// lowering below computes the same order in plain code, and the whole build
// is compiled with -ffp-contract=off so the compiler cannot contract the
// mul+add pairs into FMAs either. Identical operations in identical order
// means bitwise-identical results across ISAs; the equivalence suite
// (tests/test_simd.cpp) enforces it.
//
// Short rows (len < 4) degenerate to the pure sequential order — the blocked
// prefix is empty and the tail starts from (0+0)+(0+0) = +0.0, exactly the
// zero-initialised accumulator of the classic loop — so the strict-scalar
// path and the canonical order agree bitwise on the unit/short rows that
// dominate level-set blocks.
//
// Path selection (cached after first use):
//   BLOCKTRI_STRICT_SCALAR=1   force the pre-SIMD sequential loops
//   BLOCKTRI_SIMD=0|scalar     canonical order, scalar lowering only
//   otherwise                  vector lowering when the CPU has AVX2/NEON,
//                              blocked-scalar fallback when it does not
// force_path()/clear_forced_path() override the environment in-process —
// the equivalence tests and the simd_speedup bench flip paths at runtime.
#pragma once

#include "common/types.hpp"

namespace blocktri::simd {

enum class Path {
  kStrictScalar = 0,  // pre-SIMD sequential accumulation (escape hatch)
  kBlockedScalar = 1, // canonical blocked order, scalar instructions
  kVector = 2,        // canonical blocked order, AVX2/NEON instructions
};

/// The lowering the kernels will use, after the environment and any
/// force_path() override (cached; reading the env once).
Path active_path();

/// In-process override for tests/benches comparing paths. Forcing kVector on
/// hardware without a vector ISA clamps to kBlockedScalar (same results).
void force_path(Path p);
void clear_forced_path();

/// Thread-local override — consulted before the process-global force_path()
/// state. This is how the degradation ladder demotes one retry attempt
/// (vector → blocked → strict) without perturbing solves running
/// concurrently on other threads. Demoted attempts execute serially on the
/// calling thread, so a thread-local override covers every kernel they run.
void force_path_this_thread(Path p);
void clear_forced_path_this_thread();

/// RAII scope for the thread-local override; restores the previous
/// thread-local state (including "none") on destruction.
class ScopedPathOverride {
 public:
  explicit ScopedPathOverride(Path p);
  ~ScopedPathOverride();
  ScopedPathOverride(const ScopedPathOverride&) = delete;
  ScopedPathOverride& operator=(const ScopedPathOverride&) = delete;

 private:
  int prev_;  // -1 = no previous thread-local override
};

/// True when a vector lowering is compiled in and the CPU supports it.
bool vector_isa_available();
/// "avx2", "neon" or "none" — for bench/report labelling.
const char* vector_isa_name();

const char* to_string(Path p);

// --- AVX2 entry points (separate TU compiled with -mavx2) -------------------
#if defined(BLOCKTRI_HAVE_AVX2)
namespace avx2 {
void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const double* val, const index_t* row_ids, index_t r0,
                      index_t r1, const double* x, double* y);
void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const float* val, const index_t* row_ids, index_t r0,
                      index_t r1, const float* x, float* y);
void spmv_update_rows_many(const offset_t* row_ptr, const index_t* col_idx,
                           const double* val, const index_t* row_ids,
                           index_t r0, index_t r1, const double* x, double* y,
                           index_t c0, index_t c1, index_t ldx, index_t ldy);
void spmv_update_rows_many(const offset_t* row_ptr, const index_t* col_idx,
                           const float* val, const index_t* row_ids,
                           index_t r0, index_t r1, const float* x, float* y,
                           index_t c0, index_t c1, index_t ldx, index_t ldy);
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const double* val, const index_t* items, offset_t p0,
                 offset_t p1, const double* b, double* x);
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const float* val, const index_t* items, offset_t p0,
                 offset_t p1, const float* b, float* x);
void div_rows(const double* b, const double* d, double* x, index_t n);
void div_rows(const float* b, const float* d, float* x, index_t n);
}  // namespace avx2
#endif

// --- NEON entry points (aarch64 builds; plain TU, NEON is baseline) ---------
#if defined(BLOCKTRI_HAVE_NEON)
namespace neon {
void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const double* val, const index_t* row_ids, index_t r0,
                      index_t r1, const double* x, double* y);
void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const float* val, const index_t* row_ids, index_t r0,
                      index_t r1, const float* x, float* y);
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const double* val, const index_t* items, offset_t p0,
                 offset_t p1, const double* b, double* x);
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const float* val, const index_t* items, offset_t p0,
                 offset_t p1, const float* b, float* x);
}  // namespace neon
#endif

// --- Canonical scalar lowerings ---------------------------------------------

/// Pre-SIMD sequential dot: the BLOCKTRI_STRICT_SCALAR reference order.
template <class T>
inline T dot_strict(const T* val, const index_t* col, const T* x,
                    offset_t len) {
  T sum = T(0);
  for (offset_t p = 0; p < len; ++p)
    sum += val[p] * x[static_cast<std::size_t>(col[p])];
  return sum;
}

/// Canonical blocked order, scalar instructions. Short rows (len <= 4) are
/// unrolled; their operation chains equal both the generic blocked code and
/// the strict-scalar loop (see the header comment).
template <class T>
inline T dot_blocked(const T* val, const index_t* col, const T* x,
                     offset_t len) {
  switch (len) {
    case 0:
      return T(0);
    case 1:
      return T(0) + val[0] * x[static_cast<std::size_t>(col[0])];
    case 2:
      return (T(0) + val[0] * x[static_cast<std::size_t>(col[0])]) +
             val[1] * x[static_cast<std::size_t>(col[1])];
    case 3:
      return ((T(0) + val[0] * x[static_cast<std::size_t>(col[0])]) +
              val[1] * x[static_cast<std::size_t>(col[1])]) +
             val[2] * x[static_cast<std::size_t>(col[2])];
    case 4: {
      const T s0 = T(0) + val[0] * x[static_cast<std::size_t>(col[0])];
      const T s1 = T(0) + val[1] * x[static_cast<std::size_t>(col[1])];
      const T s2 = T(0) + val[2] * x[static_cast<std::size_t>(col[2])];
      const T s3 = T(0) + val[3] * x[static_cast<std::size_t>(col[3])];
      return (s0 + s2) + (s1 + s3);
    }
    default:
      break;
  }
  const offset_t nb = len & ~offset_t(3);
  T s0 = T(0), s1 = T(0), s2 = T(0), s3 = T(0);
  for (offset_t q = 0; q < nb; q += 4) {
    s0 += val[q + 0] * x[static_cast<std::size_t>(col[q + 0])];
    s1 += val[q + 1] * x[static_cast<std::size_t>(col[q + 1])];
    s2 += val[q + 2] * x[static_cast<std::size_t>(col[q + 2])];
    s3 += val[q + 3] * x[static_cast<std::size_t>(col[q + 3])];
  }
  T total = (s0 + s2) + (s1 + s3);
  for (offset_t p = nb; p < len; ++p)
    total += val[p] * x[static_cast<std::size_t>(col[p])];
  return total;
}

namespace detail {

template <class T>
void spmv_update_rows_strict(const offset_t* row_ptr, const index_t* col_idx,
                             const T* val, const index_t* row_ids, index_t r0,
                             index_t r1, const T* x, T* y) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const T sum = dot_strict(val + lo, col_idx + lo, x, row_ptr[r + 1] - lo);
    y[row_ids == nullptr ? r : row_ids[r]] -= sum;
  }
}

template <class T>
void spmv_update_rows_blocked(const offset_t* row_ptr, const index_t* col_idx,
                              const T* val, const index_t* row_ids, index_t r0,
                              index_t r1, const T* x, T* y) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const T sum = dot_blocked(val + lo, col_idx + lo, x, row_ptr[r + 1] - lo);
    y[row_ids == nullptr ? r : row_ids[r]] -= sum;
  }
}

template <class T>
void sptrsv_rows_strict(const offset_t* row_ptr, const index_t* col_idx,
                        const T* val, const index_t* items, offset_t p0,
                        offset_t p1, const T* b, T* x) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t hi = row_ptr[i + 1];
    const T left = dot_strict(val + lo, col_idx + lo, x, hi - 1 - lo);
    x[i] = (b[i] - left) / val[hi - 1];
  }
}

template <class T>
void sptrsv_rows_blocked(const offset_t* row_ptr, const index_t* col_idx,
                         const T* val, const index_t* items, offset_t p0,
                         offset_t p1, const T* b, T* x) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t hi = row_ptr[i + 1];
    const T left = dot_blocked(val + lo, col_idx + lo, x, hi - 1 - lo);
    x[i] = (b[i] - left) / val[hi - 1];
  }
}

/// Multi-RHS update over panel columns [c0, c1) with the pre-SIMD sequential
/// per-column order (ascending nonzeros, kRhsTile-wide column groups).
template <class T>
void spmv_update_rows_many_strict(const offset_t* row_ptr,
                                  const index_t* col_idx, const T* val,
                                  const index_t* row_ids, index_t r0,
                                  index_t r1, const T* x, T* y, index_t c0,
                                  index_t c1, index_t ldx, index_t ldy) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t hi = row_ptr[r + 1];
    const index_t row = row_ids == nullptr ? r : row_ids[r];
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T acc[kRhsTile] = {};
      for (offset_t p = lo; p < hi; ++p) {
        const T v = val[p];
        const T* xc = x + col_idx[p];
        for (int c = 0; c < nt; ++c)
          acc[c] += v * xc[static_cast<std::size_t>(ct + c) *
                           static_cast<std::size_t>(ldx)];
      }
      for (int c = 0; c < nt; ++c)
        y[static_cast<std::size_t>(row) +
          static_cast<std::size_t>(ct + c) * static_cast<std::size_t>(ldy)] -=
            acc[c];
    }
  }
}

/// Multi-RHS update, canonical blocked order per column: each column's
/// accumulation chain equals dot_blocked's, so batched results stay bitwise
/// identical to the single-RHS kernels at every path.
template <class T>
void spmv_update_rows_many_blocked(const offset_t* row_ptr,
                                   const index_t* col_idx, const T* val,
                                   const index_t* row_ids, index_t r0,
                                   index_t r1, const T* x, T* y, index_t c0,
                                   index_t c1, index_t ldx, index_t ldy) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t len = row_ptr[r + 1] - lo;
    const offset_t nb = len & ~offset_t(3);
    if (nb == 0) {
      // len < 4: the canonical order degenerates to the sequential chain
      // (the blocked partials are all +0.0), so the strict inner body is
      // bitwise-identical and skips the 4×kRhsTile accumulator setup.
      spmv_update_rows_many_strict(row_ptr, col_idx, val, row_ids, r, r + 1,
                                   x, y, c0, c1, ldx, ldy);
      continue;
    }
    const index_t row = row_ids == nullptr ? r : row_ids[r];
    const T* v = val + lo;
    const index_t* ci = col_idx + lo;
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T s[4][kRhsTile] = {};
      for (offset_t q = 0; q < nb; q += 4) {
        for (int l = 0; l < 4; ++l) {
          const T vv = v[q + l];
          const T* xc = x + ci[q + l];
          for (int c = 0; c < nt; ++c)
            s[l][c] += vv * xc[static_cast<std::size_t>(ct + c) *
                               static_cast<std::size_t>(ldx)];
        }
      }
      T total[kRhsTile];
      for (int c = 0; c < nt; ++c)
        total[c] = (s[0][c] + s[2][c]) + (s[1][c] + s[3][c]);
      for (offset_t p = nb; p < len; ++p) {
        const T vv = v[p];
        const T* xc = x + ci[p];
        for (int c = 0; c < nt; ++c)
          total[c] += vv * xc[static_cast<std::size_t>(ct + c) *
                              static_cast<std::size_t>(ldx)];
      }
      for (int c = 0; c < nt; ++c)
        y[static_cast<std::size_t>(row) +
          static_cast<std::size_t>(ct + c) * static_cast<std::size_t>(ldy)] -=
            total[c];
    }
  }
}

template <class T>
void sptrsv_rows_many_strict(const offset_t* row_ptr, const index_t* col_idx,
                             const T* val, const index_t* items, offset_t p0,
                             offset_t p1, const T* b, T* x, index_t c0,
                             index_t c1, index_t ld) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t hi = row_ptr[i + 1];
    const T d = val[hi - 1];
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T acc[kRhsTile] = {};
      for (offset_t q = lo; q < hi - 1; ++q) {
        const T v = val[q];
        const T* xc = x + col_idx[q];
        for (int c = 0; c < nt; ++c)
          acc[c] += v * xc[static_cast<std::size_t>(ct + c) *
                           static_cast<std::size_t>(ld)];
      }
      for (int c = 0; c < nt; ++c) {
        const std::size_t off = static_cast<std::size_t>(i) +
                                static_cast<std::size_t>(ct + c) *
                                    static_cast<std::size_t>(ld);
        x[off] = (b[off] - acc[c]) / d;
      }
    }
  }
}

template <class T>
void sptrsv_rows_many_blocked(const offset_t* row_ptr, const index_t* col_idx,
                              const T* val, const index_t* items, offset_t p0,
                              offset_t p1, const T* b, T* x, index_t c0,
                              index_t c1, index_t ld) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t len = row_ptr[i + 1] - 1 - lo;
    const offset_t nb = len & ~offset_t(3);
    if (nb == 0) {
      // len < 4 degenerates to the sequential chain — run the strict body
      // (bitwise-identical) without the blocked accumulator setup.
      sptrsv_rows_many_strict(row_ptr, col_idx, val, items, p, p + 1, b, x,
                              c0, c1, ld);
      continue;
    }
    const T d = val[lo + len];
    const T* v = val + lo;
    const index_t* ci = col_idx + lo;
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T s[4][kRhsTile] = {};
      for (offset_t q = 0; q < nb; q += 4) {
        for (int l = 0; l < 4; ++l) {
          const T vv = v[q + l];
          const T* xc = x + ci[q + l];
          for (int c = 0; c < nt; ++c)
            s[l][c] += vv * xc[static_cast<std::size_t>(ct + c) *
                               static_cast<std::size_t>(ld)];
        }
      }
      T total[kRhsTile];
      for (int c = 0; c < nt; ++c)
        total[c] = (s[0][c] + s[2][c]) + (s[1][c] + s[3][c]);
      for (offset_t q = nb; q < len; ++q) {
        const T vv = v[q];
        const T* xc = x + ci[q];
        for (int c = 0; c < nt; ++c)
          total[c] += vv * xc[static_cast<std::size_t>(ct + c) *
                              static_cast<std::size_t>(ld)];
      }
      for (int c = 0; c < nt; ++c) {
        const std::size_t off = static_cast<std::size_t>(i) +
                                static_cast<std::size_t>(ct + c) *
                                    static_cast<std::size_t>(ld);
        x[off] = (b[off] - total[c]) / d;
      }
    }
  }
}

// --- Interleaved-panel (PanelLayout::kInterleaved) lowerings ----------------
//
// Same canonical per-column operation order as the column-major bodies above,
// over a panel stored row-interleaved: element (i, c) at base[i·ld + c],
// ld ≥ the panel width. A column tile's x reads (`xc[c]`) and writes are
// unit-stride, so the tile loop vectorises and one row visit touches one or
// two cache lines per nonzero instead of one per column.

template <class T>
void spmv_update_rows_many_ilv_strict(const offset_t* row_ptr,
                                      const index_t* col_idx, const T* val,
                                      const index_t* row_ids, index_t r0,
                                      index_t r1, const T* x, T* y, index_t c0,
                                      index_t c1, index_t ldx, index_t ldy) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t hi = row_ptr[r + 1];
    T* yr = y + static_cast<std::size_t>(row_ids == nullptr ? r : row_ids[r]) *
                    static_cast<std::size_t>(ldy);
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T acc[kRhsTile] = {};
      for (offset_t p = lo; p < hi; ++p) {
        const T v = val[p];
        const T* xc = x + static_cast<std::size_t>(col_idx[p]) *
                              static_cast<std::size_t>(ldx) +
                      ct;
        for (int c = 0; c < nt; ++c) acc[c] += v * xc[c];
      }
      for (int c = 0; c < nt; ++c) yr[ct + c] -= acc[c];
    }
  }
}

template <class T>
void spmv_update_rows_many_ilv_blocked(const offset_t* row_ptr,
                                       const index_t* col_idx, const T* val,
                                       const index_t* row_ids, index_t r0,
                                       index_t r1, const T* x, T* y,
                                       index_t c0, index_t c1, index_t ldx,
                                       index_t ldy) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t len = row_ptr[r + 1] - lo;
    const offset_t nb = len & ~offset_t(3);
    if (nb == 0) {
      // len < 4 degenerates to the sequential chain, as in the column-major
      // body — run the strict inner body (bitwise-identical).
      spmv_update_rows_many_ilv_strict(row_ptr, col_idx, val, row_ids, r,
                                       r + 1, x, y, c0, c1, ldx, ldy);
      continue;
    }
    T* yr = y + static_cast<std::size_t>(row_ids == nullptr ? r : row_ids[r]) *
                    static_cast<std::size_t>(ldy);
    const T* v = val + lo;
    const index_t* ci = col_idx + lo;
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T s[4][kRhsTile] = {};
      for (offset_t q = 0; q < nb; q += 4) {
        for (int l = 0; l < 4; ++l) {
          const T vv = v[q + l];
          const T* xc = x + static_cast<std::size_t>(ci[q + l]) *
                                static_cast<std::size_t>(ldx) +
                        ct;
          for (int c = 0; c < nt; ++c) s[l][c] += vv * xc[c];
        }
      }
      T total[kRhsTile];
      for (int c = 0; c < nt; ++c)
        total[c] = (s[0][c] + s[2][c]) + (s[1][c] + s[3][c]);
      for (offset_t q = nb; q < len; ++q) {
        const T vv = v[q];
        const T* xc = x + static_cast<std::size_t>(ci[q]) *
                              static_cast<std::size_t>(ldx) +
                      ct;
        for (int c = 0; c < nt; ++c) total[c] += vv * xc[c];
      }
      for (int c = 0; c < nt; ++c) yr[ct + c] -= total[c];
    }
  }
}

template <class T>
void sptrsv_rows_many_ilv_strict(const offset_t* row_ptr,
                                 const index_t* col_idx, const T* val,
                                 const index_t* items, offset_t p0,
                                 offset_t p1, const T* b, T* x, index_t c0,
                                 index_t c1, index_t ld) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t hi = row_ptr[i + 1];
    const T d = val[hi - 1];
    const T* bi =
        b + static_cast<std::size_t>(i) * static_cast<std::size_t>(ld);
    T* xi = x + static_cast<std::size_t>(i) * static_cast<std::size_t>(ld);
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T acc[kRhsTile] = {};
      for (offset_t q = lo; q < hi - 1; ++q) {
        const T v = val[q];
        const T* xc = x + static_cast<std::size_t>(col_idx[q]) *
                              static_cast<std::size_t>(ld) +
                      ct;
        for (int c = 0; c < nt; ++c) acc[c] += v * xc[c];
      }
      for (int c = 0; c < nt; ++c) xi[ct + c] = (bi[ct + c] - acc[c]) / d;
    }
  }
}

template <class T>
void sptrsv_rows_many_ilv_blocked(const offset_t* row_ptr,
                                  const index_t* col_idx, const T* val,
                                  const index_t* items, offset_t p0,
                                  offset_t p1, const T* b, T* x, index_t c0,
                                  index_t c1, index_t ld) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t len = row_ptr[i + 1] - 1 - lo;
    const offset_t nb = len & ~offset_t(3);
    if (nb == 0) {
      sptrsv_rows_many_ilv_strict(row_ptr, col_idx, val, items, p, p + 1, b,
                                  x, c0, c1, ld);
      continue;
    }
    const T d = val[lo + len];
    const T* v = val + lo;
    const index_t* ci = col_idx + lo;
    const T* bi =
        b + static_cast<std::size_t>(i) * static_cast<std::size_t>(ld);
    T* xi = x + static_cast<std::size_t>(i) * static_cast<std::size_t>(ld);
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      T s[4][kRhsTile] = {};
      for (offset_t q = 0; q < nb; q += 4) {
        for (int l = 0; l < 4; ++l) {
          const T vv = v[q + l];
          const T* xc = x + static_cast<std::size_t>(ci[q + l]) *
                                static_cast<std::size_t>(ld) +
                        ct;
          for (int c = 0; c < nt; ++c) s[l][c] += vv * xc[c];
        }
      }
      T total[kRhsTile];
      for (int c = 0; c < nt; ++c)
        total[c] = (s[0][c] + s[2][c]) + (s[1][c] + s[3][c]);
      for (offset_t q = nb; q < len; ++q) {
        const T vv = v[q];
        const T* xc = x + static_cast<std::size_t>(ci[q]) *
                              static_cast<std::size_t>(ld) +
                      ct;
        for (int c = 0; c < nt; ++c) total[c] += vv * xc[c];
      }
      for (int c = 0; c < nt; ++c) xi[ct + c] = (bi[ct + c] - total[c]) / d;
    }
  }
}

}  // namespace detail

// --- Dispatching kernels ----------------------------------------------------
//
// Each entry point dispatches once per call (one cached-path load), then runs
// the whole row/item range in the selected lowering. kVector lowers to the
// hand-written ISA code where one exists and to the blocked-scalar code
// (identical results, by the shared canonical order) where it does not.

/// y[row] -= Σ val·x[col] over listed rows [r0, r1). `row_ids` maps listed
/// row -> output row (nullptr = identity, the CSR case).
template <class T>
void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const T* val, const index_t* row_ids, index_t r0,
                      index_t r1, const T* x, T* y) {
  switch (active_path()) {
    case Path::kStrictScalar:
      detail::spmv_update_rows_strict(row_ptr, col_idx, val, row_ids, r0, r1,
                                      x, y);
      return;
    case Path::kVector:
#if defined(BLOCKTRI_HAVE_AVX2)
      avx2::spmv_update_rows(row_ptr, col_idx, val, row_ids, r0, r1, x, y);
      return;
#elif defined(BLOCKTRI_HAVE_NEON)
      neon::spmv_update_rows(row_ptr, col_idx, val, row_ids, r0, r1, x, y);
      return;
#else
      [[fallthrough]];
#endif
    case Path::kBlockedScalar:
      detail::spmv_update_rows_blocked(row_ptr, col_idx, val, row_ids, r0, r1,
                                       x, y);
      return;
  }
}

/// Batched counterpart over panel columns [c0, c1).
template <class T>
void spmv_update_rows_many(const offset_t* row_ptr, const index_t* col_idx,
                           const T* val, const index_t* row_ids, index_t r0,
                           index_t r1, const T* x, T* y, index_t c0,
                           index_t c1, index_t ldx, index_t ldy) {
  switch (active_path()) {
    case Path::kStrictScalar:
      detail::spmv_update_rows_many_strict(row_ptr, col_idx, val, row_ids, r0,
                                           r1, x, y, c0, c1, ldx, ldy);
      return;
    case Path::kVector:
#if defined(BLOCKTRI_HAVE_AVX2)
      avx2::spmv_update_rows_many(row_ptr, col_idx, val, row_ids, r0, r1, x,
                                  y, c0, c1, ldx, ldy);
      return;
#else
      [[fallthrough]];
#endif
    case Path::kBlockedScalar:
      detail::spmv_update_rows_many_blocked(row_ptr, col_idx, val, row_ids,
                                            r0, r1, x, y, c0, c1, ldx, ldy);
      return;
  }
}

/// Batched update over a row-interleaved panel (PanelLayout::kInterleaved;
/// element (i, c) at base[i·ld + c]). The vector lowering is the blocked
/// body: its unit-stride column loops are what the compiler vectorises, and
/// the canonical per-column order keeps it bitwise equal to every other
/// path and layout.
template <class T>
void spmv_update_rows_many_ilv(const offset_t* row_ptr,
                               const index_t* col_idx, const T* val,
                               const index_t* row_ids, index_t r0, index_t r1,
                               const T* x, T* y, index_t c0, index_t c1,
                               index_t ldx, index_t ldy) {
  if (active_path() == Path::kStrictScalar) {
    detail::spmv_update_rows_many_ilv_strict(row_ptr, col_idx, val, row_ids,
                                             r0, r1, x, y, c0, c1, ldx, ldy);
    return;
  }
  detail::spmv_update_rows_many_ilv_blocked(row_ptr, col_idx, val, row_ids,
                                            r0, r1, x, y, c0, c1, ldx, ldy);
}

/// Forward substitution over the listed rows, in list order: for each
/// p in [p0, p1), row i = items[p] gets x[i] = (b[i] − Σ val·x[col]) / diag
/// (diagonal stored last in the row). Valid for any dependency-respecting
/// item order — level-set executors pass level (or merged-group) slices,
/// serial executors the whole flat list.
template <class T>
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const T* val, const index_t* items, offset_t p0, offset_t p1,
                 const T* b, T* x) {
  switch (active_path()) {
    case Path::kStrictScalar:
      detail::sptrsv_rows_strict(row_ptr, col_idx, val, items, p0, p1, b, x);
      return;
    case Path::kVector:
#if defined(BLOCKTRI_HAVE_AVX2)
      avx2::sptrsv_rows(row_ptr, col_idx, val, items, p0, p1, b, x);
      return;
#elif defined(BLOCKTRI_HAVE_NEON)
      neon::sptrsv_rows(row_ptr, col_idx, val, items, p0, p1, b, x);
      return;
#else
      [[fallthrough]];
#endif
    case Path::kBlockedScalar:
      detail::sptrsv_rows_blocked(row_ptr, col_idx, val, items, p0, p1, b, x);
      return;
  }
}

/// Batched forward substitution over listed rows × panel columns [c0, c1).
/// The kVector lowering is the blocked-scalar code: the kRhsTile-wide column
/// groups already run kRhsTile independent accumulation chains, and the
/// canonical per-column order keeps it bitwise equal to the other paths.
template <class T>
void sptrsv_rows_many(const offset_t* row_ptr, const index_t* col_idx,
                      const T* val, const index_t* items, offset_t p0,
                      offset_t p1, const T* b, T* x, index_t c0, index_t c1,
                      index_t ld) {
  switch (active_path()) {
    case Path::kStrictScalar:
      detail::sptrsv_rows_many_strict(row_ptr, col_idx, val, items, p0, p1, b,
                                      x, c0, c1, ld);
      return;
    case Path::kVector:
    case Path::kBlockedScalar:
      detail::sptrsv_rows_many_blocked(row_ptr, col_idx, val, items, p0, p1,
                                       b, x, c0, c1, ld);
      return;
  }
}

/// Batched forward substitution over a row-interleaved panel
/// (PanelLayout::kInterleaved; element (i, c) at base[i·ld + c]).
template <class T>
void sptrsv_rows_many_ilv(const offset_t* row_ptr, const index_t* col_idx,
                          const T* val, const index_t* items, offset_t p0,
                          offset_t p1, const T* b, T* x, index_t c0,
                          index_t c1, index_t ld) {
  if (active_path() == Path::kStrictScalar) {
    detail::sptrsv_rows_many_ilv_strict(row_ptr, col_idx, val, items, p0, p1,
                                        b, x, c0, c1, ld);
    return;
  }
  detail::sptrsv_rows_many_ilv_blocked(row_ptr, col_idx, val, items, p0, p1,
                                       b, x, c0, c1, ld);
}

/// x[i] = b[i] / d[i] over [0, n) — the diagonal fast path. Element-wise, so
/// every lowering is trivially bitwise-identical.
template <class T>
void div_rows(const T* b, const T* d, T* x, index_t n) {
#if defined(BLOCKTRI_HAVE_AVX2)
  if (active_path() == Path::kVector) {
    avx2::div_rows(b, d, x, n);
    return;
  }
#endif
  for (index_t i = 0; i < n; ++i) x[i] = b[i] / d[i];
}

}  // namespace blocktri::simd
