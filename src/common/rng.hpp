// Deterministic pseudo-random number generation for the synthetic matrix
// generators and property tests.
//
// We implement xoshiro256** (Blackman & Vigna) rather than relying on
// std::mt19937 so that generated matrices are bit-identical across standard
// library implementations — the benchmark suite's "159 matrices" must be the
// same matrices everywhere.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace blocktri {

class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via splitmix64, the
  /// initialisation recommended by the xoshiro authors.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// True with probability p.
  bool bernoulli(double p);

  /// Power-law distributed integer in [1, max]: P(k) ∝ k^(-alpha).
  /// Used by the circuit/network generators to create the long-row
  /// distributions the paper identifies as the Sync-free pathology (§2.2).
  std::int64_t power_law(double alpha, std::int64_t max);

  /// Geometric distribution: number of Bernoulli(p) failures before success.
  std::int64_t geometric(double p);

  /// In-place Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct values sampled uniformly from [lo, hi] (Floyd's algorithm).
  std::vector<std::int64_t> sample_distinct(std::int64_t lo, std::int64_t hi,
                                            std::int64_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace blocktri
