// Plain-text table formatting for the benchmark harnesses. Every bench binary
// prints the same rows/series the paper reports (DESIGN.md §4), and this
// printer keeps those tables aligned and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace blocktri {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have the same number of cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  std::string to_string() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision float formatting ("12.34"), locale-independent.
std::string fmt_fixed(double v, int digits);

/// Scientific-ish compact formatting for values spanning many decades
/// ("1.23e-05" / "45.7").
std::string fmt_compact(double v);

/// Groups thousands for readability: 1234567 -> "1,234,567".
std::string fmt_count(long long v);

}  // namespace blocktri
