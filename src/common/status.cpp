#include "common/status.hpp"

#include <sstream>

namespace blocktri {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kBadFormat: return "bad-format";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kOutOfBounds: return "out-of-bounds";
    case StatusCode::kNotTriangular: return "not-triangular";
    case StatusCode::kSingularRow: return "singular-row";
    case StatusCode::kZeroPivot: return "zero-pivot";
    case StatusCode::kNonFinite: return "non-finite";
    case StatusCode::kResidualTooLarge: return "residual-too-large";
    case StatusCode::kNumericalBreakdown: return "numerical-breakdown";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kVersionMismatch: return "version-mismatch";
    case StatusCode::kChecksumMismatch: return "checksum-mismatch";
    case StatusCode::kTruncated: return "truncated";
    case StatusCode::kStructureMismatch: return "structure-mismatch";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kReentrantSolve: return "reentrant-solve";
    case StatusCode::kPoolExhausted: return "pool-exhausted";
    case StatusCode::kSpinTimeout: return "spin-timeout";
    case StatusCode::kWorkerLost: return "worker-lost";
  }
  return "unknown";
}

namespace {
// Parse-family codes locate a 1-based source line; the structural and
// numerical codes locate a matrix row.
bool location_is_line(StatusCode code) {
  return code == StatusCode::kBadFormat || code == StatusCode::kParseError ||
         code == StatusCode::kOutOfBounds;
}
}  // namespace

std::string Status::to_string() const {
  if (ok()) return "ok";
  const bool is_line = kind_ == LocationKind::kAuto
                           ? location_is_line(code_)
                           : kind_ == LocationKind::kLine;
  // The persistence codes locate a byte offset in the artifact stream.
  const bool is_byte = code_ == StatusCode::kTruncated ||
                       code_ == StatusCode::kChecksumMismatch;
  std::ostringstream os;
  os << '[' << status_code_name(code_);
  if (location_ >= 0)
    os << " @ " << (is_byte ? "byte " : is_line ? "line " : "row ")
       << location_;
  os << "] " << message_;
  return os.str();
}

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "blocktri check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace blocktri
