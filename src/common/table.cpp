#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/types.hpp"

namespace blocktri {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  BLOCKTRI_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  BLOCKTRI_CHECK_MSG(cells.size() == header_.size(),
                     "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string fmt_compact(double v) {
  if (v == 0.0) return "0";
  const double a = std::fabs(v);
  char buf[64];
  if (a >= 0.01 && a < 100000.0) {
    std::snprintf(buf, sizeof(buf), "%.4g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3e", v);
  }
  return buf;
}

std::string fmt_count(long long v) {
  const bool neg = v < 0;
  unsigned long long u =
      neg ? ~static_cast<unsigned long long>(v) + 1ULL
          : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(u);
  std::string out;
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run == 3) {
      out.push_back(',');
      run = 0;
    }
    out.push_back(*it);
    ++run;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace blocktri
