// Core scalar/index typedefs shared by every blocktri module. The error
// machinery (Status, Error, BLOCKTRI_CHECK) lives in common/status.hpp and is
// re-exported here so existing includes keep working.
//
// Conventions (see DESIGN.md §5):
//   * index_t  — row/column indices. 32-bit: the paper's dataset tops out at
//                ~69 M rows, far below 2^31.
//   * offset_t — positions into nonzero arrays (row_ptr / col_ptr). 64-bit so
//                matrices with more than 2^31 nonzeros remain representable.
//   * value_t  — templated per kernel as float or double (Fig. 7 compares the
//                two precisions), never hard-coded.
#pragma once

#include <cstdint>

#include "common/status.hpp"  // IWYU pragma: export

namespace blocktri {

using index_t = std::int32_t;
using offset_t = std::int64_t;

/// GPU warp width assumed by every simulated kernel's cost model (32-lane
/// gathers, warp-per-row processing, scalar-kernel divergence groups).
inline constexpr int kWarp = 32;

/// Column-tile width of the batched (multi-RHS) host kernels: each row visit
/// streams the row's structure once and updates up to this many right-hand
/// sides from a stack-resident accumulator before the next tile. Per column
/// the floating-point operation order equals the single-RHS kernel's, so the
/// batched results are bitwise identical to k independent solves.
inline constexpr int kRhsTile = 8;

}  // namespace blocktri
