// Core scalar/index typedefs and error-checking helpers shared by every
// blocktri module.
//
// Conventions (see DESIGN.md §5):
//   * index_t  — row/column indices. 32-bit: the paper's dataset tops out at
//                ~69 M rows, far below 2^31.
//   * offset_t — positions into nonzero arrays (row_ptr / col_ptr). 64-bit so
//                matrices with more than 2^31 nonzeros remain representable.
//   * value_t  — templated per kernel as float or double (Fig. 7 compares the
//                two precisions), never hard-coded.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace blocktri {

using index_t = std::int32_t;
using offset_t = std::int64_t;

/// Exception thrown by all blocktri precondition/invariant checks.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "blocktri check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace blocktri

/// Precondition/invariant check that is always on (cheap checks only; hot
/// loops use BLOCKTRI_DCHECK below). Throws blocktri::Error on failure.
#define BLOCKTRI_CHECK(expr)                                                  \
  do {                                                                        \
    if (!(expr))                                                              \
      ::blocktri::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define BLOCKTRI_CHECK_MSG(expr, msg)                                      \
  do {                                                                     \
    if (!(expr))                                                           \
      ::blocktri::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                              (msg));                      \
  } while (0)

/// Debug-only check, compiled out in release builds. Use in per-nonzero loops.
#ifndef NDEBUG
#define BLOCKTRI_DCHECK(expr) BLOCKTRI_CHECK(expr)
#else
#define BLOCKTRI_DCHECK(expr) ((void)0)
#endif
