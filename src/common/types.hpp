// Core scalar/index typedefs shared by every blocktri module. The error
// machinery (Status, Error, BLOCKTRI_CHECK) lives in common/status.hpp and is
// re-exported here so existing includes keep working.
//
// Conventions (see DESIGN.md §5):
//   * index_t  — row/column indices. 32-bit: the paper's dataset tops out at
//                ~69 M rows, far below 2^31.
//   * offset_t — positions into nonzero arrays (row_ptr / col_ptr). 64-bit so
//                matrices with more than 2^31 nonzeros remain representable.
//   * value_t  — templated per kernel as float or double (Fig. 7 compares the
//                two precisions), never hard-coded.
#pragma once

#include <cstdint>

#include "common/status.hpp"  // IWYU pragma: export

namespace blocktri {

using index_t = std::int32_t;
using offset_t = std::int64_t;

/// GPU warp width assumed by every simulated kernel's cost model (32-lane
/// gathers, warp-per-row processing, scalar-kernel divergence groups).
inline constexpr int kWarp = 32;

/// Column-tile width of the batched (multi-RHS) host kernels: each row visit
/// streams the row's structure once and updates up to this many right-hand
/// sides from a stack-resident accumulator before the next tile. Per column
/// the floating-point operation order equals the single-RHS kernel's, so the
/// batched results are bitwise identical to k independent solves. Wider
/// tiles stream the structure fewer times but spill the blocked kernels'
/// accumulator arrays out of registers; 8 measures fastest on the service
/// panel shapes (see bench/service_load.cpp).
inline constexpr int kRhsTile = 8;

/// Memory layout of a multi-RHS panel handed to the batched kernels.
/// Column-major is the user-facing layout (column c starts at base + c·ld,
/// ld ≥ block rows). Interleaved stores one row's k panel entries
/// contiguously (element (i, c) at base + i·ld + c, ld ≥ k): every x-gather
/// a row visit performs then lands on one or two cache lines for the whole
/// tile instead of one line per column, and the per-column accumulator loop
/// runs over unit-stride memory. The per-column floating-point operation
/// order is identical in both layouts, so results are bitwise equal.
enum class PanelLayout { kColMajor, kInterleaved };

}  // namespace blocktri
