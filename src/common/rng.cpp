#include "common/rng.hpp"

#include <cmath>
#include <unordered_set>

namespace blocktri {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
  // A zero state is a fixed point of xoshiro; splitmix64 cannot produce four
  // zero outputs from any seed, so no further guard is needed.
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  BLOCKTRI_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::uniform() {
  // 53 random mantissa bits, same construction as the xoshiro reference code.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box–Muller; discard the second variate to keep the generator stateless
  // beyond its xoshiro lanes (simpler reproducibility reasoning).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::int64_t Rng::power_law(double alpha, std::int64_t max) {
  BLOCKTRI_CHECK(max >= 1);
  BLOCKTRI_CHECK(alpha > 1.0);
  // Inverse-CDF sampling of a continuous Pareto truncated to [1, max+1),
  // floored to an integer. Gives P(k) ≈ k^(-alpha) for k in [1, max].
  const double xmax = static_cast<double>(max) + 1.0;
  const double one_minus_a = 1.0 - alpha;
  const double cdf_max = (std::pow(xmax, one_minus_a) - 1.0) / one_minus_a;
  const double u = uniform() * cdf_max;
  const double x = std::pow(1.0 + one_minus_a * u, 1.0 / one_minus_a);
  auto k = static_cast<std::int64_t>(x);
  if (k < 1) k = 1;
  if (k > max) k = max;
  return k;
}

std::int64_t Rng::geometric(double p) {
  BLOCKTRI_CHECK(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 0;
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return static_cast<std::int64_t>(std::log(u) / std::log1p(-p));
}

std::vector<std::int64_t> Rng::sample_distinct(std::int64_t lo, std::int64_t hi,
                                               std::int64_t k) {
  BLOCKTRI_CHECK(lo <= hi);
  const std::int64_t span = hi - lo + 1;
  BLOCKTRI_CHECK_MSG(k >= 0 && k <= span, "sample size exceeds range");
  // Floyd's algorithm: k iterations, expected O(k) hash operations.
  std::unordered_set<std::int64_t> chosen;
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = span - k; j < span; ++j) {
    const std::int64_t t = uniform_int(0, j);
    const std::int64_t pick = chosen.contains(lo + t) ? lo + j : lo + t;
    chosen.insert(pick);
    out.push_back(pick);
  }
  return out;
}

}  // namespace blocktri
