// AVX2 lowering of the canonical 4-lane blocked kernels (see simd.hpp for
// the operation-order contract). This TU is the only one compiled with
// -mavx2; callers reach it through the runtime dispatch in simd.hpp, which
// checks __builtin_cpu_supports("avx2") before selecting Path::kVector.
//
// Determinism notes:
//   * multiplies and adds are separate intrinsics — never FMA — so each
//     operation rounds exactly like the blocked-scalar lowering's;
//   * the ymm lanes hold the canonical partials s0..s3 and the reduction is
//     (low128 + high128) then (lane0 + lane1) = (s0+s2) + (s1+s3), the
//     fixed-order tree;
//   * rows shorter than the 4-lane block (and every tail) run the same
//     scalar code as dot_blocked, so short rows are bitwise-unchanged.
#include "common/simd.hpp"

#if defined(BLOCKTRI_HAVE_AVX2)

#include <immintrin.h>

// GCC's unmasked gather intrinsics expand through _mm256_undefined_pd(),
// which -Wmaybe-uninitialized flags (GCC PR 105593). The source lanes are
// fully overwritten by the all-ones mask, so the warning is a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace blocktri::simd::avx2 {

namespace {

// Rows shorter than this run the scalar canonical code instead: a gather
// costs several cycles of throughput, so it only pays off once a row has a
// few 4-lane blocks to amortise the vector setup. Any threshold is
// bitwise-safe — both sides compute the canonical order.
constexpr offset_t kMinVectorRowLen = 8;

inline double reduce4(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);     // [s0, s1]
  const __m128d hi = _mm256_extractf128_pd(acc, 1);   // [s2, s3]
  const __m128d r = _mm_add_pd(lo, hi);               // [s0+s2, s1+s3]
  return _mm_cvtsd_f64(r) + _mm_cvtsd_f64(_mm_unpackhi_pd(r, r));
}

inline float reduce4(__m128 acc) {
  const __m128 hi = _mm_movehl_ps(acc, acc);          // [s2, s3, ...]
  const __m128 r = _mm_add_ps(acc, hi);               // [s0+s2, s1+s3, ...]
  return _mm_cvtss_f32(r) +
         _mm_cvtss_f32(_mm_shuffle_ps(r, r, _MM_SHUFFLE(1, 1, 1, 1)));
}

/// True when the row's column run is one consecutive range. Columns are
/// sorted and duplicate-free (formats.hpp), so comparing the endpoints is
/// enough. A consecutive run lets plain vector loads replace gathers —
/// the same values land in the same lanes, bitwise-unchanged and several
/// cycles cheaper per block. Tested once per row (not per 4-block): dense
/// and supernodal rows take the load loop throughout, scattered rows the
/// gather loop, and the branch stays perfectly predictable either way.
inline bool contiguous_row(const index_t* col, offset_t len) {
  return col[len - 1] - col[0] == static_cast<index_t>(len - 1);
}

inline double dot4(const double* val, const index_t* col, const double* x,
                   offset_t len) {
  const offset_t nb = len & ~offset_t(3);
  __m256d acc = _mm256_setzero_pd();
  if (contiguous_row(col, len)) {
    const double* xr = x + col[0];
    for (offset_t q = 0; q < nb; q += 4)
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_loadu_pd(val + q), _mm256_loadu_pd(xr + q)));
  } else {
    for (offset_t q = 0; q < nb; q += 4) {
      const __m256d v = _mm256_loadu_pd(val + q);
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + q));
      const __m256d xg = _mm256_i32gather_pd(x, idx, sizeof(double));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(v, xg));
    }
  }
  double total = reduce4(acc);
  for (offset_t p = nb; p < len; ++p) total += val[p] * x[col[p]];
  return total;
}

inline float dot4(const float* val, const index_t* col, const float* x,
                  offset_t len) {
  const offset_t nb = len & ~offset_t(3);
  __m128 acc = _mm_setzero_ps();
  if (contiguous_row(col, len)) {
    const float* xr = x + col[0];
    for (offset_t q = 0; q < nb; q += 4)
      acc = _mm_add_ps(acc,
                       _mm_mul_ps(_mm_loadu_ps(val + q), _mm_loadu_ps(xr + q)));
  } else {
    for (offset_t q = 0; q < nb; q += 4) {
      const __m128 v = _mm_loadu_ps(val + q);
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + q));
      const __m128 xg = _mm_i32gather_ps(x, idx, sizeof(float));
      acc = _mm_add_ps(acc, _mm_mul_ps(v, xg));
    }
  }
  float total = reduce4(acc);
  for (offset_t p = nb; p < len; ++p) total += val[p] * x[col[p]];
  return total;
}

template <class T>
void spmv_update_rows_impl(const offset_t* row_ptr, const index_t* col_idx,
                           const T* val, const index_t* row_ids, index_t r0,
                           index_t r1, const T* x, T* y) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t len = row_ptr[r + 1] - lo;
    // Short rows skip the vector setup entirely — dot_blocked computes the
    // identical canonical chains in scalar code.
    const T sum = len < kMinVectorRowLen
                      ? dot_blocked(val + lo, col_idx + lo, x, len)
                      : dot4(val + lo, col_idx + lo, x, len);
    y[row_ids == nullptr ? r : row_ids[r]] -= sum;
  }
}

template <class T>
void sptrsv_rows_impl(const offset_t* row_ptr, const index_t* col_idx,
                      const T* val, const index_t* items, offset_t p0,
                      offset_t p1, const T* b, T* x) {
  for (offset_t p = p0; p < p1; ++p) {
    const index_t i = items[static_cast<std::size_t>(p)];
    const offset_t lo = row_ptr[i];
    const offset_t len = row_ptr[i + 1] - 1 - lo;  // excluding the diagonal
    const T left = len < kMinVectorRowLen
                       ? dot_blocked(val + lo, col_idx + lo, x, len)
                       : dot4(val + lo, col_idx + lo, x, len);
    x[i] = (b[i] - left) / val[lo + len];
  }
}

void spmv_update_rows_many_impl(const offset_t* row_ptr,
                                const index_t* col_idx, const double* val,
                                const index_t* row_ids, index_t r0,
                                index_t r1, const double* x, double* y,
                                index_t c0, index_t c1, index_t ldx,
                                index_t ldy) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t len = row_ptr[r + 1] - lo;
    // The multi-RHS strict/blocked code already runs kRhsTile independent
    // accumulation chains, so gathers have no latency to hide and lose on
    // throughput — the vector loop only pays off on contiguous rows where
    // plain loads replace them. Everything else takes the scalar canonical
    // code (identical chains, bitwise-equal).
    if (len < kMinVectorRowLen || !contiguous_row(col_idx + lo, len)) {
      detail::spmv_update_rows_many_blocked(row_ptr, col_idx, val, row_ids, r,
                                            r + 1, x, y, c0, c1, ldx, ldy);
      continue;
    }
    const offset_t nb = len & ~offset_t(3);
    const index_t row = row_ids == nullptr ? r : row_ids[r];
    const double* v = val + lo;
    const index_t* ci = col_idx + lo;
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      __m256d s[kRhsTile];
      for (int c = 0; c < nt; ++c) s[c] = _mm256_setzero_pd();
      const double* xr = x + ci[0];
      for (offset_t q = 0; q < nb; q += 4) {
        const __m256d vv = _mm256_loadu_pd(v + q);
        for (int c = 0; c < nt; ++c) {
          const __m256d xg =
              _mm256_loadu_pd(xr + q +
                              static_cast<std::size_t>(ct + c) *
                                  static_cast<std::size_t>(ldx));
          s[c] = _mm256_add_pd(s[c], _mm256_mul_pd(vv, xg));
        }
      }
      double total[kRhsTile];
      for (int c = 0; c < nt; ++c) total[c] = reduce4(s[c]);
      for (offset_t q = nb; q < len; ++q) {
        const double vv = v[q];
        const double* xc = x + ci[q];
        for (int c = 0; c < nt; ++c)
          total[c] += vv * xc[static_cast<std::size_t>(ct + c) *
                              static_cast<std::size_t>(ldx)];
      }
      for (int c = 0; c < nt; ++c)
        y[static_cast<std::size_t>(row) +
          static_cast<std::size_t>(ct + c) * static_cast<std::size_t>(ldy)] -=
            total[c];
    }
  }
}

void spmv_update_rows_many_impl(const offset_t* row_ptr,
                                const index_t* col_idx, const float* val,
                                const index_t* row_ids, index_t r0,
                                index_t r1, const float* x, float* y,
                                index_t c0, index_t c1, index_t ldx,
                                index_t ldy) {
  for (index_t r = r0; r < r1; ++r) {
    const offset_t lo = row_ptr[r];
    const offset_t len = row_ptr[r + 1] - lo;
    if (len < kMinVectorRowLen || !contiguous_row(col_idx + lo, len)) {
      detail::spmv_update_rows_many_blocked(row_ptr, col_idx, val, row_ids, r,
                                            r + 1, x, y, c0, c1, ldx, ldy);
      continue;
    }
    const offset_t nb = len & ~offset_t(3);
    const index_t row = row_ids == nullptr ? r : row_ids[r];
    const float* v = val + lo;
    const index_t* ci = col_idx + lo;
    for (index_t ct = c0; ct < c1; ct += kRhsTile) {
      const int nt = static_cast<int>(ct + kRhsTile <= c1 ? kRhsTile
                                                          : c1 - ct);
      __m128 s[kRhsTile];
      for (int c = 0; c < nt; ++c) s[c] = _mm_setzero_ps();
      const float* xr = x + ci[0];
      for (offset_t q = 0; q < nb; q += 4) {
        const __m128 vv = _mm_loadu_ps(v + q);
        for (int c = 0; c < nt; ++c) {
          const __m128 xg =
              _mm_loadu_ps(xr + q +
                           static_cast<std::size_t>(ct + c) *
                               static_cast<std::size_t>(ldx));
          s[c] = _mm_add_ps(s[c], _mm_mul_ps(vv, xg));
        }
      }
      float total[kRhsTile];
      for (int c = 0; c < nt; ++c) total[c] = reduce4(s[c]);
      for (offset_t q = nb; q < len; ++q) {
        const float vv = v[q];
        const float* xc = x + ci[q];
        for (int c = 0; c < nt; ++c)
          total[c] += vv * xc[static_cast<std::size_t>(ct + c) *
                              static_cast<std::size_t>(ldx)];
      }
      for (int c = 0; c < nt; ++c)
        y[static_cast<std::size_t>(row) +
          static_cast<std::size_t>(ct + c) * static_cast<std::size_t>(ldy)] -=
            total[c];
    }
  }
}

}  // namespace

void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const double* val, const index_t* row_ids, index_t r0,
                      index_t r1, const double* x, double* y) {
  spmv_update_rows_impl(row_ptr, col_idx, val, row_ids, r0, r1, x, y);
}
void spmv_update_rows(const offset_t* row_ptr, const index_t* col_idx,
                      const float* val, const index_t* row_ids, index_t r0,
                      index_t r1, const float* x, float* y) {
  spmv_update_rows_impl(row_ptr, col_idx, val, row_ids, r0, r1, x, y);
}

void spmv_update_rows_many(const offset_t* row_ptr, const index_t* col_idx,
                           const double* val, const index_t* row_ids,
                           index_t r0, index_t r1, const double* x, double* y,
                           index_t c0, index_t c1, index_t ldx, index_t ldy) {
  spmv_update_rows_many_impl(row_ptr, col_idx, val, row_ids, r0, r1, x, y,
                             c0, c1, ldx, ldy);
}
void spmv_update_rows_many(const offset_t* row_ptr, const index_t* col_idx,
                           const float* val, const index_t* row_ids,
                           index_t r0, index_t r1, const float* x, float* y,
                           index_t c0, index_t c1, index_t ldx, index_t ldy) {
  spmv_update_rows_many_impl(row_ptr, col_idx, val, row_ids, r0, r1, x, y,
                             c0, c1, ldx, ldy);
}

void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const double* val, const index_t* items, offset_t p0,
                 offset_t p1, const double* b, double* x) {
  sptrsv_rows_impl(row_ptr, col_idx, val, items, p0, p1, b, x);
}
void sptrsv_rows(const offset_t* row_ptr, const index_t* col_idx,
                 const float* val, const index_t* items, offset_t p0,
                 offset_t p1, const float* b, float* x) {
  sptrsv_rows_impl(row_ptr, col_idx, val, items, p0, p1, b, x);
}

void div_rows(const double* b, const double* d, double* x, index_t n) {
  const index_t nb = n & ~index_t(3);
  for (index_t i = 0; i < nb; i += 4)
    _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(b + i),
                                          _mm256_loadu_pd(d + i)));
  for (index_t i = nb; i < n; ++i) x[i] = b[i] / d[i];
}

void div_rows(const float* b, const float* d, float* x, index_t n) {
  const index_t nb = n & ~index_t(7);
  for (index_t i = 0; i < nb; i += 8)
    _mm256_storeu_ps(x + i, _mm256_div_ps(_mm256_loadu_ps(b + i),
                                          _mm256_loadu_ps(d + i)));
  for (index_t i = nb; i < n; ++i) x[i] = b[i] / d[i];
}

}  // namespace blocktri::simd::avx2

#endif  // BLOCKTRI_HAVE_AVX2
