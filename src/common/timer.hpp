// Wall-clock stopwatch for the host-side (real) timings reported next to the
// simulated GPU timings in the benchmark harnesses.
#pragma once

#include <chrono>

namespace blocktri {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace blocktri
