#include "common/io.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace blocktri::io {

namespace {

const std::uint32_t* crc32_table() {
  static const auto* table = [] {
    auto* t = new std::uint32_t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const std::uint32_t* t = crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i)
    c = t[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Status read_exact(int fd, void* buf, std::size_t len, bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  bool socket = true;  // optimistic; demoted once on ENOTSOCK
  while (got < len) {
    const ssize_t r = socket ? ::recv(fd, p + got, len - got, 0)
                             : ::read(fd, p + got, len - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {  // peer hung up
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::Ok();
      }
      return got == 0
                 ? Status(StatusCode::kIoError,
                          "peer closed the connection before a frame")
                 : Status(StatusCode::kTruncated,
                          "peer closed the connection mid-frame",
                          static_cast<std::int64_t>(got), LocationKind::kLine);
    }
    if (errno == EINTR) continue;  // signal delivery is not an error
    if (socket && errno == ENOTSOCK) {
      socket = false;  // plain pipe fd: same loop over read(2)
      continue;
    }
    return Status(StatusCode::kIoError,
                  std::string("read failed: ") + std::strerror(errno),
                  static_cast<std::int64_t>(got), LocationKind::kLine);
  }
  return Status::Ok();
}

Status write_exact(int fd, const void* buf, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t put = 0;
  bool socket = true;
  while (put < len) {
    // MSG_NOSIGNAL: a disconnected peer yields EPIPE here instead of a
    // process-wide SIGPIPE — the whole point of the typed kIoError contract.
    const ssize_t w = socket ? ::send(fd, p + put, len - put, MSG_NOSIGNAL)
                             : ::write(fd, p + put, len - put);
    if (w >= 0) {
      put += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    if (socket && errno == ENOTSOCK) {
      socket = false;
      continue;
    }
    return Status(StatusCode::kIoError,
                  std::string("write failed: ") + std::strerror(errno),
                  static_cast<std::int64_t>(put), LocationKind::kLine);
  }
  return Status::Ok();
}

void encode_frame_header(const FrameHeader& hdr,
                         std::uint8_t out[kFrameHeaderBytes]) {
  std::memcpy(out, &hdr.magic, 4);
  out[4] = hdr.version;
  out[5] = hdr.type;
  std::memcpy(out + 6, &hdr.flags, 2);
  std::memcpy(out + 8, &hdr.payload_len, 8);
}

Status decode_frame_header(const FrameSpec& spec, const std::uint8_t* data,
                           std::size_t len, FrameHeader* out) {
  BLOCKTRI_CHECK(out != nullptr);
  if (len < kFrameHeaderBytes)
    return Status(StatusCode::kTruncated, "frame header is incomplete",
                  static_cast<std::int64_t>(len), LocationKind::kLine);
  std::memcpy(&out->magic, data, 4);
  out->version = data[4];
  out->type = data[5];
  std::memcpy(&out->flags, data + 6, 2);
  std::memcpy(&out->payload_len, data + 8, 8);
  if (out->magic != spec.magic)
    return Status(StatusCode::kBadFormat, "frame has a foreign magic value");
  if (out->version != spec.version)
    return Status(StatusCode::kVersionMismatch,
                  "frame protocol version " + std::to_string(out->version) +
                      ", this build speaks version " +
                      std::to_string(spec.version));
  if ((out->flags & ~kFrameFlagCrc) != 0)
    return Status(StatusCode::kBadFormat, "frame carries unknown flag bits");
  if (out->payload_len > spec.max_payload)
    return Status(StatusCode::kBadFormat,
                  "frame claims " + std::to_string(out->payload_len) +
                      " payload bytes, above the protocol bound");
  return Status::Ok();
}

Status write_frame(int fd, const FrameSpec& spec, std::uint8_t type,
                   const void* payload, std::size_t len, bool with_crc) {
  FrameHeader hdr;
  hdr.magic = spec.magic;
  hdr.version = spec.version;
  hdr.type = type;
  hdr.flags = with_crc ? kFrameFlagCrc : 0;
  hdr.payload_len = len;
  std::vector<std::uint8_t> buf(kFrameHeaderBytes + len +
                                (with_crc ? 4 : 0));
  encode_frame_header(hdr, buf.data());
  if (len != 0) std::memcpy(buf.data() + kFrameHeaderBytes, payload, len);
  if (with_crc) {
    const std::uint32_t crc = crc32(payload, len);
    std::memcpy(buf.data() + kFrameHeaderBytes + len, &crc, 4);
  }
  return write_exact(fd, buf.data(), buf.size());
}

Status read_frame(int fd, const FrameSpec& spec, std::uint8_t* type,
                  std::vector<std::uint8_t>* payload, bool* clean_eof) {
  BLOCKTRI_CHECK(type != nullptr && payload != nullptr);
  std::uint8_t raw[kFrameHeaderBytes];
  if (Status st = read_exact(fd, raw, sizeof raw, clean_eof);
      !st.ok() || (clean_eof != nullptr && *clean_eof))
    return st;
  FrameHeader hdr;
  if (Status st = decode_frame_header(spec, raw, sizeof raw, &hdr); !st.ok())
    return st;
  *type = hdr.type;
  payload->resize(static_cast<std::size_t>(hdr.payload_len));
  if (hdr.payload_len != 0) {
    if (Status st = read_exact(fd, payload->data(), payload->size());
        !st.ok())
      return st;
  }
  if ((hdr.flags & kFrameFlagCrc) != 0) {
    std::uint32_t sent = 0;
    if (Status st = read_exact(fd, &sent, sizeof sent); !st.ok()) return st;
    if (crc32(payload->data(), payload->size()) != sent)
      return Status(StatusCode::kChecksumMismatch,
                    "frame payload does not match its CRC32 trailer");
  }
  return Status::Ok();
}

}  // namespace blocktri::io
