// Minimal --key=value flag parser for the bench/example binaries. No external
// dependencies; unknown flags are an error so typos fail fast in scripted
// benchmark runs.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace blocktri {

class Cli {
 public:
  /// Parses argv of the form: prog [--flag=value] [--switch] ...
  /// Positional arguments are collected in order.
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags seen but never queried — used by mains to reject typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace blocktri
