// Small scan/counting-sort helpers used throughout the sparse format
// conversions. Kept header-only: they are tiny templates on the index types.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace blocktri {

/// In-place exclusive prefix sum: v = [0, v0, v0+v1, ...]. The input vector
/// must have size n+1 with v[n] ignored on input; on output v[n] holds the
/// total. This matches the classic CSR row_ptr construction idiom.
template <class T>
void exclusive_scan_in_place(std::vector<T>& v) {
  T running{0};
  for (auto& x : v) {
    const T count = x;
    x = running;
    running += count;
  }
}

/// Stable counting sort of `keys` (values in [0, nbuckets)); returns the
/// permutation `perm` such that keys[perm[0..]] is sorted and equal keys keep
/// their original relative order. This is the core of the level-set
/// reordering in §3.3 of the paper: stability preserves within-level order.
std::vector<index_t> stable_counting_sort_perm(const std::vector<index_t>& keys,
                                               index_t nbuckets);

/// Inverse of a permutation: out[perm[i]] = i.
std::vector<index_t> invert_permutation(const std::vector<index_t>& perm);

/// True if `perm` is a permutation of [0, n).
bool is_permutation_of_iota(const std::vector<index_t>& perm);

}  // namespace blocktri
