// Static host thread pool for the multithreaded execution backend.
//
// Design (DESIGN.md §8 "Host-parallel execution"):
//   * Fixed worker count, no work stealing: task t of a run() always executes
//     on thread t % size(), so chunk-to-thread assignment is deterministic
//     run to run. Kernels that only partition *disjoint* output ranges
//     (level-set SpTRSV, all SpMV kernels) are therefore bitwise
//     reproducible at any thread count.
//   * The calling thread participates as thread 0; a pool of size N spawns
//     N-1 workers. size() == 1 spawns nothing and run() degenerates to a
//     plain serial loop, so the serial paths stay byte-for-byte identical.
//   * run() is a fork-join primitive with a full barrier at return. It is
//     NOT reentrant: a task must never call run() on the pool executing it
//     (the block executor enforces this by running multi-step waves with
//     serial kernels inside).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace blocktri {

class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the caller is thread 0). `threads < 1`
  /// is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return nthreads_; }

  /// Runs fn(task) for every task in [0, ntasks), task t on thread
  /// t % size(), and blocks until all tasks finished (full barrier). The
  /// first exception thrown by a task is rethrown here after the barrier.
  void run(int ntasks, const std::function<void(int task)>& fn);

  /// Splits [begin, end) into min(size(), end - begin) near-equal contiguous
  /// chunks and invokes body(chunk_begin, chunk_end, chunk_index) for each —
  /// the deterministic parallel-for used by the host kernels.
  template <class Fn>
  void parallel_for(index_t begin, index_t end, Fn&& body) {
    const index_t len = end - begin;
    if (len <= 0) return;
    const auto chunks =
        static_cast<int>(std::min<index_t>(static_cast<index_t>(nthreads_),
                                           len));
    if (chunks <= 1) {
      body(begin, end, 0);
      return;
    }
    run(chunks, [&](int c) {
      const auto b = begin + static_cast<index_t>(
          static_cast<std::int64_t>(len) * c / chunks);
      const auto e = begin + static_cast<index_t>(
          static_cast<std::int64_t>(len) * (c + 1) / chunks);
      if (b < e) body(b, e, c);
    });
  }

  /// Runs body(bounds[c], bounds[c+1], c) for every chunk of a precomputed
  /// partition (e.g. balanced_row_partition). Empty chunks are skipped.
  template <class Fn>
  void run_partition(const std::vector<index_t>& bounds, Fn&& body) {
    const auto chunks = static_cast<int>(bounds.size()) - 1;
    if (chunks <= 0) return;
    run(chunks, [&](int c) {
      const index_t b = bounds[static_cast<std::size_t>(c)];
      const index_t e = bounds[static_cast<std::size_t>(c) + 1];
      if (b < e) body(b, e, c);
    });
  }

 private:
  void worker_loop(int tid);
  void run_tasks(int tid, int ntasks, const std::function<void(int)>& fn);

  int nthreads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int)>* job_ = nullptr;  // guarded by mu_
  int job_ntasks_ = 0;                             // guarded by mu_
  std::uint64_t epoch_ = 0;                        // guarded by mu_
  int pending_workers_ = 0;                        // guarded by mu_
  bool stop_ = false;                              // guarded by mu_
  std::exception_ptr error_;                       // guarded by mu_
};

/// Upper bound on a BLOCKTRI_THREADS override — far above any real host,
/// low enough that a typo cannot oversubscribe the process into the ground.
inline constexpr long kMaxResolvedThreads = 4096;

/// The effective host thread count: the BLOCKTRI_THREADS environment
/// variable when set to a valid integer in [1, kMaxResolvedThreads],
/// otherwise `requested` (with 0 meaning
/// std::thread::hardware_concurrency). Garbage, empty, negative, zero and
/// overflowing env values are ignored — never wrapped. Always >= 1.
int resolve_threads(int requested);

/// True when `pool` would actually run anything concurrently.
inline bool parallel_enabled(const ThreadPool* pool) {
  return pool != nullptr && pool->size() > 1;
}

/// Work below this many nonzeros is not worth forking the pool for.
inline constexpr offset_t kHostParallelMinNnz = 2048;

/// nnz-balanced contiguous partition of the listed rows [0, nrows) into
/// `nchunks` chunks: chunk boundaries are placed where the running nonzero
/// count crosses multiples of nnz/nchunks, so a few heavy rows do not
/// serialise the whole kernel on one thread. `row_ptr` must have
/// nrows + 1 monotone entries (CSR or DCSR pointer array). Returns
/// nchunks + 1 non-decreasing boundaries.
std::vector<index_t> balanced_row_partition(
    const std::vector<offset_t>& row_ptr, index_t nrows, int nchunks);

}  // namespace blocktri
