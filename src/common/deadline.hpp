// Cooperative time bounds and cancellation for solve sessions.
//
// A production service cannot let one solve run forever: a caller times out,
// a request is abandoned, a corrupted plan livelocks a spin-wait. The solver
// has no preemption — kernels are plain loops — so bounding a solve means
// the executors *check* a shared control object at natural boundaries (wave,
// level-set group, sync-free spin) and unwind cooperatively, leaving partial
// results behind and a typed Status (kDeadlineExceeded / kCancelled /
// kSpinTimeout) in front.
//
// Three layers:
//   * Deadline / CancelToken — what the caller hands in (SolveControls).
//   * ExecControl — the per-solve object the executors poll. check() is the
//     hot-path primitive: one relaxed atomic load when nothing is armed, a
//     steady_clock read only when a deadline is actually set, so an
//     unarmed solve pays (almost) nothing for the machinery.
//   * trip() — first failure wins; every thread of a parallel kernel sees
//     the tripped flag and bails, so one expired deadline stops the whole
//     fork-join wave.
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "common/status.hpp"

namespace blocktri {

/// Absolute point in time after which a solve should stop. Default
/// constructed = unlimited (no clock is ever read for it).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  // unlimited

  static Deadline unlimited() { return Deadline(); }

  /// Deadline `ms` milliseconds from now. Non-positive and NaN budgets are
  /// already expired at arm (deterministically — no clock arithmetic, so a
  /// huge negative value cannot wrap into the far future), and budgets
  /// beyond the clock's representable range (including +inf) are pinned at
  /// time_point::max() — armed but effectively never expiring — instead of
  /// overflowing the integer duration_cast into the past.
  static Deadline after_ms(double ms) {
    Deadline d;
    d.armed_ = true;
    if (!(ms > 0.0)) {  // <= 0 or NaN: expired before the solve starts
      d.at_ = Clock::time_point::min();
      return d;
    }
    const auto now = Clock::now();
    const double headroom_ms =
        std::chrono::duration<double, std::milli>(Clock::time_point::max() -
                                                  now)
            .count();
    // Half the headroom (~146 years on a nanosecond steady_clock) keeps the
    // double → integer cast below clear of the 2^63 rounding boundary.
    if (!(ms < headroom_ms * 0.5)) {  // also catches +inf
      d.at_ = Clock::time_point::max();
      return d;
    }
    d.at_ = now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  static Deadline at(Clock::time_point tp) {
    Deadline d;
    d.armed_ = true;
    d.at_ = tp;
    return d;
  }

  bool unlimited_deadline() const { return !armed_; }
  bool expired() const { return armed_ && Clock::now() >= at_; }
  Clock::time_point time_point() const { return at_; }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
};

/// Cross-thread cancellation flag: one thread calls cancel(), the solving
/// thread observes it at the next executor checkpoint. Reusable — reset()
/// re-arms the token for the next solve.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }
  void reset() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Spin-waits give up after this long when the caller sets no explicit
/// budget — generous enough that no healthy matrix ever trips it, finite so
/// a corrupted in-degree counter cannot hang a thread forever.
inline constexpr double kDefaultSpinTimeoutMs = 10000.0;

/// Per-call controls a caller attaches to a solve. All fields optional; the
/// default is an unbounded, uncancellable solve with the default spin
/// budget — behaviourally identical to the pre-session API.
struct SolveControls {
  Deadline deadline;
  const CancelToken* cancel = nullptr;
  /// Bounded-wait budget for sync-free busy-waits; <= 0 selects
  /// kDefaultSpinTimeoutMs.
  double spin_timeout_ms = 0.0;
};

/// The object the executors poll. One per solve call, stack-allocated by the
/// solver; kernels receive `const ExecControl*` (nullptr = legacy direct
/// kernel call, nothing to check). Thread safe: parallel kernel bodies call
/// check()/tripped() concurrently and any of them may trip() first.
class ExecControl {
 public:
  ExecControl() : ExecControl(SolveControls{}) {}
  explicit ExecControl(const SolveControls& c)
      : deadline_(c.deadline),
        cancel_(c.cancel),
        spin_timeout_ms_(c.spin_timeout_ms > 0.0 ? c.spin_timeout_ms
                                                 : kDefaultSpinTimeoutMs) {}

  /// True while the solve may continue. Trips (and returns false) when the
  /// cancel token fired or the deadline expired. The unarmed fast path is a
  /// single relaxed load.
  bool check() const {
    if (tripped_.load(std::memory_order_relaxed) != 0) return false;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      trip(StatusCode::kCancelled);
      return false;
    }
    if (deadline_.expired()) {
      trip(StatusCode::kDeadlineExceeded);
      return false;
    }
    return true;
  }

  /// True when a deadline or cancel token is attached — executors that would
  /// restructure a loop (e.g. chunk a flat kernel pass) to poll more often
  /// only do so when something is actually armed.
  bool armed() const {
    return cancel_ != nullptr || !deadline_.unlimited_deadline();
  }

  /// Records the first failure; later trips are ignored (first wins).
  void trip(StatusCode code) const {
    int expected = 0;
    tripped_.compare_exchange_strong(expected, static_cast<int>(code),
                                     std::memory_order_relaxed);
  }

  bool tripped() const {
    return tripped_.load(std::memory_order_relaxed) != 0;
  }

  StatusCode reason() const {
    return static_cast<StatusCode>(tripped_.load(std::memory_order_relaxed));
  }

  /// Un-trips a kSpinTimeout so the degradation ladder can retry the block
  /// on a spin-free rung. Deadline/cancel trips are terminal and stay.
  /// Returns true when a spin trip was consumed.
  bool consume_spin_trip() const {
    int expected = static_cast<int>(StatusCode::kSpinTimeout);
    return tripped_.compare_exchange_strong(expected, 0,
                                            std::memory_order_relaxed);
  }

  double spin_timeout_ms() const { return spin_timeout_ms_; }

  /// The armed deadline/cancel token, for machinery that must wait *before*
  /// the solve runs (e.g. a blocking workspace acquisition) and still honour
  /// the caller's controls.
  const Deadline& deadline() const { return deadline_; }
  const CancelToken* cancel() const { return cancel_; }

  /// The tripped reason as a Status (kInternal if nothing tripped —
  /// callers only build a status after observing tripped()).
  Status to_status(const std::string& context) const {
    const StatusCode code = reason();
    switch (code) {
      case StatusCode::kCancelled:
        return Status(code, "solve cancelled " + context);
      case StatusCode::kDeadlineExceeded:
        return Status(code, "deadline exceeded " + context);
      case StatusCode::kSpinTimeout:
        return Status(code,
                      "sync-free spin-wait exceeded its bounded budget " +
                          context +
                          " (corrupt or cyclic in-degree counters?)");
      default:
        return Status(StatusCode::kInternal,
                      "ExecControl::to_status without a tripped reason " +
                          context);
    }
  }

 private:
  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  double spin_timeout_ms_ = kDefaultSpinTimeoutMs;
  // 0 = running; otherwise the StatusCode of the first failure.
  mutable std::atomic<int> tripped_{0};
};

}  // namespace blocktri
