#include "common/cli.hpp"

#include <cstdlib>

#include "common/types.hpp"

namespace blocktri {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "true";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const {
  queried_[key] = true;
  return flags_.contains(key);
}

std::string Cli::get(const std::string& key,
                     const std::string& fallback) const {
  queried_[key] = true;
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  BLOCKTRI_CHECK_MSG(end && *end == '\0', "--" + key + " expects an integer");
  return out;
}

double Cli::get_double(const std::string& key, double fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  BLOCKTRI_CHECK_MSG(end && *end == '\0', "--" + key + " expects a number");
  return out;
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const std::string v = get(key, "");
  if (v.empty()) return fallback;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  BLOCKTRI_CHECK_MSG(false, "--" + key + " expects a boolean");
  return fallback;
}

std::vector<std::string> Cli::unused() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : flags_) {
    (void)v;
    if (!queried_.contains(k)) out.push_back(k);
  }
  return out;
}

}  // namespace blocktri
