// Structured error reporting for the whole library.
//
// Production inputs are hostile: truncated .mtx files, out-of-bounds
// indices, missing or zero diagonals, NaN/Inf values. Every such defect maps
// to a typed StatusCode so callers can branch on *what* went wrong (and
// where) instead of string-matching exception text. Two styles coexist:
//
//   * Status-returning entry points (try_read_matrix_market, sanitize,
//     BlockSolver::create, BlockSolver::solve_checked) never throw on bad
//     input — they hand back a Status with a code, a message, and a location
//     (row index or 1-based source line, depending on the code).
//   * The historical throwing API is rebased on top: blocktri::Error now
//     carries a Status, and BLOCKTRI_CHECK failures throw an Error whose
//     status code is kInternal. Existing `catch (const Error&)` callers and
//     EXPECT_THROW tests keep working unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace blocktri {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,      // caller error: wrong sizes, unusable options
  kBadFormat,            // input not in a supported format (e.g. bad banner)
  kParseError,           // malformed text input; location = 1-based line
  kOutOfBounds,          // index outside the declared matrix dimensions
  kNotTriangular,        // entry above the diagonal; location = row
  kSingularRow,          // structurally singular: row has no diagonal entry
  kZeroPivot,            // diagonal present but zero/subnormal; location = row
  kNonFinite,            // NaN or Inf in matrix, rhs, or solution
  kResidualTooLarge,     // solve finished but failed residual verification
  kNumericalBreakdown,   // all fallback rungs produced non-finite output
  kInternal,             // invariant violation (BLOCKTRI_CHECK)

  // Plan-artifact persistence (src/persist). Artifacts are written by one
  // process and read by another, possibly after partial writes or bit rot,
  // so every defect class gets its own code:
  kVersionMismatch,      // artifact written by an incompatible format version
  kChecksumMismatch,     // a section's CRC32 does not match its payload
  kTruncated,            // artifact ends mid-header or mid-section;
                         // location = byte offset of the failed read
  kStructureMismatch,    // plan's structure hash does not match the matrix
  kIoError,              // the OS reported a read/write error mid-stream —
                         // distinct from kTruncated: the file may be intact

  // Solve-session resilience (common/deadline.hpp, core/solver.hpp). A solve
  // bounded in time or shared between callers can end for reasons that are
  // neither a caller error nor bad numerics:
  kCancelled,            // the caller's CancelToken fired mid-solve
  kDeadlineExceeded,     // the caller's Deadline expired mid-solve
  kReentrantSolve,       // strict-reentrancy mode: a solve overlapped another
                         // on the same solver
  kPoolExhausted,        // every leased workspace is in use and the session
                         // is configured to fail rather than block
  kSpinTimeout,          // a sync-free busy-wait exceeded its bounded spin
                         // budget (corrupt or cyclic in-degree counters)

  // Sharded multi-process execution (src/shard). A solve distributed over a
  // worker pool can lose a member outright — something no in-process code
  // path can experience:
  kWorkerLost,           // a shard worker process died (waitpid) or stopped
                         // responding within the epoch timeout mid-solve
};

/// Stable short name for a code, e.g. "zero-pivot".
const char* status_code_name(StatusCode code);

/// What a Status's location refers to. kAuto infers from the code (parse
/// family → line, everything else → row); pass kLine/kRow explicitly when a
/// code is used outside its usual context (e.g. a kNonFinite raised while
/// parsing locates a line, not a row).
enum class LocationKind { kAuto, kRow, kLine };

/// Outcome of a fallible operation: a code, a human-readable message and an
/// optional location whose meaning depends on the code (matrix row for the
/// structural/numerical codes, 1-based source line for parse codes).
class Status {
 public:
  Status() = default;  // ok
  Status(StatusCode code, std::string message, std::int64_t location = -1,
         LocationKind kind = LocationKind::kAuto)
      : code_(code), message_(std::move(message)), location_(location),
        kind_(kind) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  /// Row index or 1-based line number; -1 when not applicable.
  std::int64_t location() const { return location_; }

  /// "[zero-pivot @ row 7] diagonal of row 7 is zero" — the exception text
  /// when the throwing API surfaces this status.
  std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::int64_t location_ = -1;
  LocationKind kind_ = LocationKind::kAuto;
};

/// Exception thrown by the throwing API and by all blocktri
/// precondition/invariant checks. Carries the typed Status.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what)
      : std::runtime_error(what), status_(StatusCode::kInternal, what) {}
  explicit Error(const Status& s)
      : std::runtime_error(s.to_string()), status_(s) {}

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Throws Error(status) unless status.ok() — bridge from the Status-returning
/// core to the throwing convenience wrappers.
inline void throw_if_error(const Status& s) {
  if (!s.ok()) throw Error(s);
}

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace blocktri

/// Precondition/invariant check that is always on (cheap checks only; hot
/// loops use BLOCKTRI_DCHECK below). Throws blocktri::Error on failure.
#define BLOCKTRI_CHECK(expr)                                                  \
  do {                                                                        \
    if (!(expr))                                                              \
      ::blocktri::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define BLOCKTRI_CHECK_MSG(expr, msg)                                      \
  do {                                                                     \
    if (!(expr))                                                           \
      ::blocktri::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                              (msg));                      \
  } while (0)

/// Debug-only check, compiled out in release builds. Use in per-nonzero loops.
#ifndef NDEBUG
#define BLOCKTRI_DCHECK(expr) BLOCKTRI_CHECK(expr)
#else
#define BLOCKTRI_DCHECK(expr) ((void)0)
#endif
