// Framed, checksummed fd I/O shared by every process boundary in the repo
// (ISSUE 9 satellite). The solve service's wire protocol (service/wire.hpp)
// and the shard worker-pool's control pipes (shard/control.hpp) both need the
// same three things, and they must exist exactly once:
//
//   * EINTR-safe exact reads/writes over a stream fd — short transfers
//     restarted, signal delivery not an error, a dead peer a typed kIoError
//     (SIGPIPE suppressed via MSG_NOSIGNAL on sockets), never a hang or a
//     process kill,
//   * a fixed 16-byte frame header (magic, version, type, flags, payload
//     length) validated *before* any allocation so a hostile or corrupt
//     length field cannot drive a multi-gigabyte resize,
//   * optional CRC32 trailer per frame (kFrameFlagCrc) for channels whose
//     payloads cross a process boundary without the artifact loader's
//     section checksums — a flipped bit is a typed kChecksumMismatch, not a
//     silently wrong solve.
//
// The header layout is byte-compatible with the service's BTSV frames
// (whose reserved u16 is this module's flags field, always 0 there), so
// service/wire.cpp delegates here without changing its on-wire format.
//
// The CRC32 implementation (IEEE 802.3, table-driven) is also exported —
// persist/artifact.cpp guards its sections with the identical polynomial and
// now shares this table instead of owning a private copy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace blocktri::io {

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320, table-driven).
std::uint32_t crc32(const void* data, std::size_t n);

/// Reads exactly `len` bytes into `buf`, restarting on EINTR and continuing
/// across short reads. Works on sockets (recv) and plain pipe fds (read —
/// selected automatically on ENOTSOCK). EOF before the first byte: when
/// `clean_eof` is non-null it is set and Ok is returned (the caller is
/// between frames and a peer hanging up there is normal); otherwise
/// kIoError. EOF mid-buffer is always kTruncated with the byte count read
/// as the location.
Status read_exact(int fd, void* buf, std::size_t len,
                  bool* clean_eof = nullptr);

/// Writes exactly `len` bytes, restarting on EINTR and continuing across
/// short writes. On sockets SIGPIPE is suppressed (MSG_NOSIGNAL): a peer
/// that disconnected mid-frame surfaces as kIoError, never a signal. Pipe
/// writers should ignore SIGPIPE themselves (the shard channels are
/// socketpairs precisely so nobody has to install a process-wide handler).
Status write_exact(int fd, const void* buf, std::size_t len);

// --- Generic frame layer ----------------------------------------------------

inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Flags bit: a u32 CRC32 of the payload trails the payload bytes.
inline constexpr std::uint16_t kFrameFlagCrc = 0x1;

/// Per-protocol parameters: callers instantiate one constexpr spec (the
/// service's BTSV, the shard pool's BTSC) and every header is validated
/// against it before the payload is touched.
struct FrameSpec {
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint64_t max_payload = 0;
};

struct FrameHeader {
  std::uint32_t magic = 0;
  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;
  std::uint64_t payload_len = 0;
};

/// Encodes the fixed header into `out[0..16)`.
void encode_frame_header(const FrameHeader& hdr,
                         std::uint8_t out[kFrameHeaderBytes]);

/// Validates the fixed header at `data` against `spec` (magic, version,
/// payload bound, known flags). `len` is how many bytes are available.
/// Typed failures: kTruncated (short buffer), kBadFormat (wrong magic,
/// oversize length, unknown flag bits), kVersionMismatch.
Status decode_frame_header(const FrameSpec& spec, const std::uint8_t* data,
                           std::size_t len, FrameHeader* out);

/// Writes one frame: header, payload, and — when `with_crc` — the CRC32
/// trailer. A single contiguous buffer is assembled so the write is one
/// exact transfer (frames from concurrent writers on the same fd never
/// interleave mid-frame as long as each uses one write_frame call).
Status write_frame(int fd, const FrameSpec& spec, std::uint8_t type,
                   const void* payload, std::size_t len, bool with_crc);

/// Reads one frame into `*payload` (payload bytes only, CRC trailer
/// verified and stripped when the sender flagged one). `*type` receives the
/// frame type. `*clean_eof` (optional) is set when the peer hung up between
/// frames. CRC disagreement is kChecksumMismatch.
Status read_frame(int fd, const FrameSpec& spec, std::uint8_t* type,
                  std::vector<std::uint8_t>* payload,
                  bool* clean_eof = nullptr);

}  // namespace blocktri::io
