// Set-associative LRU cache model.
//
// The paper's central locality argument (§2.2) is that level-set / sync-free
// methods touch x and b "very randomly", while blocking keeps each kernel's
// working set small enough to cache. The simulator therefore routes every
// irregular access to x/b/left_sum through this model; streamed arrays
// (val, col_idx, row_ptr) are bandwidth-accounted instead, since hardware
// prefetches them perfectly.
#pragma once

#include <cstdint>
#include <vector>

namespace blocktri::sim {

class CacheModel {
 public:
  /// Geometry: total capacity, line size, associativity. Capacity is rounded
  /// down to a whole number of sets.
  CacheModel(std::size_t bytes, int line_bytes, int assoc);

  /// Touches `size` bytes at `addr`; returns the number of *missed* lines
  /// (0 = fully hit). Multi-line accesses are split per line.
  int access(std::uint64_t addr, int size);

  /// Forgets all cached lines (between independent measurements).
  void reset();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t capacity_bytes() const {
    return static_cast<std::size_t>(nsets_) * static_cast<std::size_t>(assoc_) *
           static_cast<std::size_t>(line_);
  }

 private:
  int probe_line(std::uint64_t line_addr);

  int line_;
  int assoc_;
  std::uint64_t nsets_;
  // Flat tag store: tags_[set * assoc + way]; 0 means empty (tag values are
  // stored +1 to avoid colliding with the empty marker).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> stamps_;
  std::uint32_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Simple bump allocator handing out non-overlapping address ranges for the
/// logical arrays a kernel touches, so distinct vectors never alias in the
/// cache model.
class AddressSpace {
 public:
  /// Reserves `bytes` and returns the base address (64-byte aligned).
  std::uint64_t reserve(std::uint64_t bytes);

 private:
  std::uint64_t next_ = 1u << 12;  // skip page zero, purely cosmetic
};

}  // namespace blocktri::sim
