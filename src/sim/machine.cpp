#include "sim/machine.hpp"

namespace blocktri::sim {

GpuSpec titan_x() {
  GpuSpec g;
  g.name = "Titan X (Pascal)";
  g.num_sms = 24;
  g.cores_per_sm = 128;  // 3072 CUDA cores total (Table 3)
  g.max_warps_per_sm = 32;
  g.clock_ghz = 1.075;
  g.mem_bandwidth_gbps = 336.5;
  g.cache_bytes = 3u << 20;  // 3 MB L2 (GP102)
  // Pascal: slightly slower atomics and launches than Turing.
  g.dram_latency_ns = 480.0;
  g.cache_hit_latency_ns = 80.0;
  g.atomic_op_ns = 40.0;
  g.atomic_rmw_ns = 35.0;
  g.atomic_propagate_ns = 420.0;
  g.spin_poll_ns = 300.0;
  g.kernel_launch_ns = 5000.0;
  g.grid_sync_ns = 900.0;
  return g;
}

GpuSpec titan_rtx() {
  GpuSpec g;
  g.name = "Titan RTX (Turing)";
  g.num_sms = 72;
  g.cores_per_sm = 64;  // 4608 CUDA cores total (Table 3)
  g.max_warps_per_sm = 32;
  g.clock_ghz = 1.770;
  g.mem_bandwidth_gbps = 672.0;
  g.cache_bytes = 6u << 20;  // 6 MB L2 (TU102)
  g.dram_latency_ns = 400.0;
  g.cache_hit_latency_ns = 60.0;
  g.atomic_op_ns = 30.0;
  g.atomic_rmw_ns = 25.0;
  g.atomic_propagate_ns = 350.0;
  g.spin_poll_ns = 250.0;
  g.kernel_launch_ns = 4000.0;
  g.grid_sync_ns = 700.0;
  return g;
}

GpuSpec scale_for_dataset(const GpuSpec& base, double factor) {
  GpuSpec g = base;
  if (factor <= 1.0) return g;
  g.name = base.name + " (1/" + std::to_string(static_cast<int>(factor)) +
           " dataset scale)";
  g.dram_latency_ns /= factor;
  g.cache_hit_latency_ns /= factor;
  g.atomic_op_ns /= factor;
  g.atomic_rmw_ns /= factor;
  g.atomic_propagate_ns /= factor;
  g.spin_poll_ns /= factor;
  g.kernel_launch_ns /= factor;
  g.grid_sync_ns /= factor;
  g.warp_start_ns /= factor;
  g.divide_ns /= factor;
  g.shuffle_reduce_ns /= factor;
  g.cache_bytes = static_cast<std::size_t>(
      static_cast<double>(base.cache_bytes) / factor);
  // Resident-warp count is deliberately NOT scaled: level widths and
  // wavefronts in the scaled matrices keep near-full-size magnitudes (level
  // depth is structural, only the row count shrinks), so shrinking the warp
  // pool would starve wavefronts that the real device runs concurrently.
  return g;
}

int paper_stop_rows(const GpuSpec& base, double factor) {
  const double rule = 20.0 * static_cast<double>(base.cores()) / factor;
  return rule < 256.0 ? 256 : static_cast<int>(rule);
}

InterconnectSpec pcie3_x16() {
  InterconnectSpec l;
  l.name = "PCIe 3.0 x16";
  l.bandwidth_gbps = 13.0;  // effective, not the 15.75 wire rate
  l.latency_ns = 1800.0;
  return l;
}

InterconnectSpec nvlink2() {
  InterconnectSpec l;
  l.name = "NVLink 2.0";
  l.bandwidth_gbps = 25.0;
  l.latency_ns = 1300.0;
  return l;
}

MultiGpuSpec dual_titan_rtx() { return {titan_rtx(), 2, nvlink2()}; }
MultiGpuSpec quad_titan_rtx() { return {titan_rtx(), 4, nvlink2()}; }
MultiGpuSpec dual_titan_x() { return {titan_x(), 2, pcie3_x16()}; }

double modeled_shard_epoch_ns(const MultiGpuSpec& machine, double single_ns,
                              double halo_bytes, double stalled_edges) {
  const int d = machine.devices > 0 ? machine.devices : 1;
  // Compute shrinks with the device count (the shard cuts are nnz-balanced);
  // the halo panel crosses the link once per epoch regardless, and each
  // unhidden watermark edge serialises one small-message latency — the same
  // decomposition the shard coordinator's halo_ready/halo_deferred telemetry
  // measures on the shared-memory transport.
  const double compute_ns = single_ns / static_cast<double>(d);
  const double transfer_ns = halo_bytes / machine.link.bandwidth_gbps;
  const double stall_ns = stalled_edges * machine.link.latency_ns;
  return compute_ns + transfer_ns + stall_ns;
}

HostSpec host_default() { return HostSpec{}; }

}  // namespace blocktri::sim
