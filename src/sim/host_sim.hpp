// Host-side cost model for the preprocessing stage (Table 5).
//
// Preprocessing (level analysis, stable sorts, block extraction, format
// conversion) runs on the host CPU in the paper's pipeline. The actual
// passes in core/ are instrumented with the operation and byte counts they
// perform, and this accumulator converts those counts into nanoseconds under
// a documented HostSpec, so preprocessing time and simulated GPU solve time
// share a single time base (DESIGN.md §5).
#pragma once

#include <cstdint>

#include "sim/machine.hpp"

namespace blocktri::sim {

class HostSim {
 public:
  explicit HostSim(const HostSpec& spec) : spec_(spec) {}

  /// Simple integer/compare/move operations (loop bodies).
  void ops(std::int64_t n) { ops_ += n; }

  /// Bytes moved through memory (reads + writes of array passes).
  void bytes(std::int64_t n) { bytes_ += n; }

  std::int64_t total_ops() const { return ops_; }
  std::int64_t total_bytes() const { return bytes_; }

  /// max(op-limited, bandwidth-limited) time — a two-term host roofline.
  double ns() const {
    const double op_ns = static_cast<double>(ops_) / spec_.ops_per_ns;
    const double mem_ns =
        static_cast<double>(bytes_) / spec_.mem_bandwidth_gbps;
    return op_ns > mem_ns ? op_ns : mem_ns;
  }
  double ms() const { return ns() * 1e-6; }

 private:
  HostSpec spec_;
  std::int64_t ops_ = 0;
  std::int64_t bytes_ = 0;
};

}  // namespace blocktri::sim
