#include "sim/cache.hpp"

#include "common/types.hpp"

namespace blocktri::sim {

CacheModel::CacheModel(std::size_t bytes, int line_bytes, int assoc)
    : line_(line_bytes), assoc_(assoc) {
  BLOCKTRI_CHECK(line_bytes > 0 && (line_bytes & (line_bytes - 1)) == 0);
  BLOCKTRI_CHECK(assoc > 0);
  nsets_ = bytes / (static_cast<std::size_t>(line_bytes) *
                    static_cast<std::size_t>(assoc));
  if (nsets_ == 0) nsets_ = 1;
  // Power-of-two set count so the index is a mask, keeping per-access cost
  // to a handful of instructions (the fig6 sweep makes ~10^9 probes).
  std::uint64_t p2 = 1;
  while (p2 * 2 <= nsets_) p2 *= 2;
  nsets_ = p2;
  tags_.assign(nsets_ * static_cast<std::uint64_t>(assoc_), 0);
  stamps_.assign(tags_.size(), 0);
}

int CacheModel::probe_line(std::uint64_t line_addr) {
  const std::uint64_t set = line_addr & (nsets_ - 1);
  const std::uint64_t tag = line_addr + 1;  // +1: 0 marks an empty way
  const std::size_t base = static_cast<std::size_t>(set) *
                           static_cast<std::size_t>(assoc_);
  ++tick_;
  int victim = 0;
  std::uint32_t oldest = stamps_[base];
  for (int w = 0; w < assoc_; ++w) {
    if (tags_[base + static_cast<std::size_t>(w)] == tag) {
      stamps_[base + static_cast<std::size_t>(w)] = tick_;
      ++hits_;
      return 0;
    }
    if (stamps_[base + static_cast<std::size_t>(w)] < oldest) {
      oldest = stamps_[base + static_cast<std::size_t>(w)];
      victim = w;
    }
  }
  tags_[base + static_cast<std::size_t>(victim)] = tag;
  stamps_[base + static_cast<std::size_t>(victim)] = tick_;
  ++misses_;
  return 1;
}

int CacheModel::access(std::uint64_t addr, int size) {
  BLOCKTRI_CHECK(size > 0);
  const std::uint64_t first = addr / static_cast<std::uint64_t>(line_);
  const std::uint64_t last =
      (addr + static_cast<std::uint64_t>(size) - 1) /
      static_cast<std::uint64_t>(line_);
  int missed = 0;
  for (std::uint64_t l = first; l <= last; ++l) missed += probe_line(l);
  return missed;
}

void CacheModel::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(stamps_.begin(), stamps_.end(), 0);
  tick_ = 0;
  hits_ = 0;
  misses_ = 0;
}

std::uint64_t AddressSpace::reserve(std::uint64_t bytes) {
  const std::uint64_t base = next_;
  next_ += (bytes + 63) & ~std::uint64_t{63};
  return base;
}

}  // namespace blocktri::sim
