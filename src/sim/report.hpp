// Result records produced by the simulator. A KernelReport covers one kernel
// launch; a SolveReport aggregates a whole SpTRSV (many kernels for the
// level-set and block methods, one for sync-free) and yields the GFlops
// figure the paper reports (2·nnz flops per solve / time).
#pragma once

#include <cstdint>

namespace blocktri::sim {

struct KernelReport {
  double ns = 0.0;           // kernel execution time, excluding launch cost
  double latency_ns = 0.0;   // roofline component: scheduled warp latency
  double bandwidth_ns = 0.0; // roofline component: DRAM bytes / bandwidth
  double compute_ns = 0.0;   // roofline component: flops / peak
  double contention_ns = 0.0; // roofline component: hottest-address atomics
  std::int64_t flops = 0;
  std::int64_t bytes = 0;    // DRAM traffic (streamed + missed lines)
  std::int64_t tasks = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

struct SolveReport {
  double ns = 0.0;  // end-to-end solve time including launches/syncs
  std::int64_t flops = 0;
  std::int64_t bytes = 0;
  int kernel_launches = 0;
  int grid_syncs = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  /// GFlops as the paper computes it; `ns` is nanoseconds so flops/ns is
  /// exactly 1e9 flops/s units.
  double gflops() const { return ns > 0.0 ? static_cast<double>(flops) / ns : 0.0; }
  double ms() const { return ns * 1e-6; }

  /// Appends one kernel preceded by a fresh launch.
  void add_kernel_launch(const KernelReport& k, double launch_ns) {
    ns += launch_ns + k.ns;
    ++kernel_launches;
    absorb(k);
  }

  /// Appends one kernel phase separated by an intra-kernel device-wide sync
  /// (the cuSPARSE-like merged-level path).
  void add_kernel_grid_sync(const KernelReport& k, double sync_ns) {
    ns += sync_ns + k.ns;
    ++grid_syncs;
    absorb(k);
  }

  void absorb(const KernelReport& k) {
    flops += k.flops;
    bytes += k.bytes;
    cache_hits += k.cache_hits;
    cache_misses += k.cache_misses;
  }
};

}  // namespace blocktri::sim
