// Per-kernel cost accounting and warp-level list scheduling.
//
// Execution model (DESIGN.md §2): a kernel is a set of warp tasks. Each task
// describes the work of one 32-lane warp — lane-parallel memory gathers that
// go through the cache model, streamed (perfectly coalesced/prefetched)
// bytes, lane-serial arithmetic iterations, atomics, and optional
// dependencies on earlier tasks of the same kernel (the sync-free busy-wait).
//
// Timing assembles three roofline components and takes their max:
//   * latency  — list schedule of the tasks onto the device's resident-warp
//                slots. A task OCCUPIES ITS SLOT FROM ACQUISITION, even while
//                waiting on dependencies: this reproduces the real sync-free
//                behaviour where spinning warps hold SM residency and deep
//                dependency chains starve the device.
//   * bandwidth— total DRAM bytes (streams + missed cache lines) divided by
//                the device bandwidth.
//   * compute  — total flops divided by peak (fp64 at the GeForce 1/32 rate).
//   * atomic contention — atomics to the SAME address serialise at the
//                memory partition: the kernel cannot finish faster than the
//                hottest address's RMW chain. This is what breaks sync-free
//                on matrices with very long rows (all producers of one
//                component hammer one left_sum entry — §2.2/§4.2).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/cache.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"

namespace blocktri::sim {

class KernelSim {
 public:
  /// `cache` may be shared across kernels of a solve so locality carries
  /// over; pass nullptr to model a cold, cache-less device (every irregular
  /// access is a miss).
  /// `fp64` selects the arithmetic throughput rate and is recorded so value
  /// sizes default sensibly.
  KernelSim(const GpuSpec& gpu, CacheModel* cache, bool fp64);

  // --- Task construction. Calls between begin_task/end_task accumulate into
  //     the current task; end_task returns the task id usable in dep().

  void begin_task();

  /// Declares that the current task must wait for `task_id` to finish plus
  /// the atomic visibility latency (producer writes → consumer observes).
  void dep(std::int64_t task_id);

  /// Lane-parallel gather/scatter of `n` irregular addresses (n <= 32 per
  /// group; larger n is split into ceil(n/32) groups internally). Each group
  /// costs one cache-hit latency, or one DRAM latency if any lane misses;
  /// missed lines are charged to DRAM traffic.
  void gather(const std::uint64_t* addrs, int n, int elem_bytes);

  /// Single irregular access (convenience for scalar kernels).
  void touch(std::uint64_t addr, int elem_bytes);

  /// Lane-parallel atomics on `n` addresses: atomic throughput cost plus the
  /// usual memory behaviour of a read-modify-write.
  void atomic(const std::uint64_t* addrs, int n, int elem_bytes);

  /// Perfectly-coalesced streaming traffic (val/col_idx/ptr arrays):
  /// bandwidth-accounted, no latency contribution.
  void stream_bytes(std::int64_t bytes);

  /// `n` lane-serial multiply-add iterations (also counts 2n flops).
  void fma_iters(std::int64_t n);

  /// Counts flops without latency (work already covered by gather costs).
  void flops(std::int64_t n);

  /// Extra serial latency inside the task (e.g. a division at the end of a
  /// triangular row).
  void serial_ns(double ns);

  std::int64_t end_task();

  const GpuSpec& gpu() const { return gpu_; }

  std::int64_t task_count() const {
    return static_cast<std::int64_t>(task_ns_.size());
  }

  /// Schedules all tasks and returns the kernel report. After finish() the
  /// object can be reused for a fresh kernel (tasks are cleared, the shared
  /// cache keeps its state).
  KernelReport finish();

 private:
  GpuSpec gpu_;  // by value: KernelSim must not outlive-depend on the caller
  CacheModel* cache_;
  bool fp64_;
  double fma_ns_per_iter_;

  // Current task accumulation.
  bool in_task_ = false;
  double cur_ns_ = 0.0;
  std::int64_t cur_flops_ = 0;

  // Finished tasks.
  std::vector<double> task_ns_;
  std::vector<std::int64_t> task_flops_;
  std::vector<std::size_t> task_dep_ptr_;  // size tasks+1
  std::vector<std::int64_t> deps_;

  // Kernel-wide totals.
  std::unordered_map<std::uint64_t, std::int64_t> atomic_counts_;
  std::int64_t streamed_bytes_ = 0;
  std::int64_t missed_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace blocktri::sim
