// Machine descriptions for the execution-model simulator.
//
// The paper evaluates on two real GPUs (Table 3):
//   * NVIDIA Titan X (Pascal), 3072 CUDA cores @ 1075 MHz, 12 GB, 336.5 GB/s
//   * NVIDIA Titan RTX (Turing), 4608 CUDA cores @ 1770 MHz, 24 GB, 672 GB/s
// This machine has no GPU, so those devices are modelled (DESIGN.md §2): the
// GpuSpec captures the architectural parameters that drive SpTRSV behaviour —
// concurrency (resident warps), memory bandwidth, cache capacity, random
// access latency, atomic cost/visibility latency, and kernel launch /
// device-sync overheads. Latency constants follow published microbenchmark
// studies of these architectures (Jia et al., "Dissecting the NVIDIA
// Volta/Turing GPU architecture via microbenchmarking") at order-of-magnitude
// fidelity; EXPERIMENTS.md compares result *shape*, not absolute numbers.
#pragma once

#include <cstddef>
#include <string>

namespace blocktri::sim {

struct GpuSpec {
  std::string name;

  // Parallelism.
  int num_sms = 0;
  int cores_per_sm = 0;
  int warp_size = 32;
  int max_warps_per_sm = 32;  // resident-warp limit (occupancy ceiling)

  // Rates.
  double clock_ghz = 1.0;
  double mem_bandwidth_gbps = 100.0;  // GB/s == bytes/ns
  double fp32_flops_per_core_per_cycle = 2.0;  // FMA
  double fp64_rate = 1.0 / 32.0;  // GeForce-class FP64 throughput ratio

  // Latencies (nanoseconds).
  double dram_latency_ns = 400.0;     // random access, cache miss
  double cache_hit_latency_ns = 40.0; // modelled unified L2-ish cache hit
  double atomic_op_ns = 30.0;         // per atomic issued by a warp lane
  double atomic_rmw_ns = 25.0;        // serialised read-modify-write on ONE
                                      // address (per-address contention)
  double atomic_propagate_ns = 350.0; // producer->consumer visibility
  double spin_poll_ns = 250.0;        // busy-wait detection latency once a
                                      // dependency actually stalls a warp
  double kernel_launch_ns = 4000.0;   // host-side kernel launch overhead
  double grid_sync_ns = 700.0;        // intra-kernel device-wide barrier
  double warp_start_ns = 10.0;        // per-warp scheduling overhead
  double divide_ns = 15.0;            // fp divide at the end of a component
  double shuffle_reduce_ns = 15.0;    // 5-step warp shuffle reduction

  // Modelled cache geometry (one unified level, sized like the L2).
  std::size_t cache_bytes = 4u << 20;
  int cache_line_bytes = 128;
  int cache_assoc = 8;

  int cores() const { return num_sms * cores_per_sm; }
  int warp_slots() const { return num_sms * max_warps_per_sm; }
  double peak_flops_per_ns(bool fp64) const {
    const double fp32 = static_cast<double>(cores()) * clock_ghz *
                        fp32_flops_per_core_per_cycle;
    return fp64 ? fp32 * fp64_rate : fp32;
  }
};

/// Table 3 row 1: Titan X (Pascal). 24 SMs x 128 cores.
GpuSpec titan_x();

/// Table 3 row 2: Titan RTX (Turing). 72 SMs x 64 cores, larger L2 (6 MB).
GpuSpec titan_rtx();

/// Scales a device description to match a dataset scaled down by `factor`.
///
/// The benchmark suite reproduces the paper's 159 matrices at roughly
/// 1/factor of their row/nonzero counts (DESIGN.md §2). On the real device,
/// solve time decomposes into work terms (∝ nnz / bandwidth, ∝ tasks /
/// warp-slots) and overhead terms (kernel launches, level barriers, atomic
/// visibility chains ∝ level depth). Shrinking the matrix shrinks only the
/// work terms, which would exaggerate every overhead 16-fold and distort the
/// algorithm comparison. Dividing all *latency* and *capacity* quantities
/// (launch, sync, DRAM latency, atomics, cache bytes, resident warps) by the
/// same factor — while keeping the *rates* (bandwidth, clock) — restores the
/// full-size overhead-to-work ratios exactly. EXPERIMENTS.md reports which
/// factor each experiment used.
GpuSpec scale_for_dataset(const GpuSpec& base, double factor);

/// The paper's recursion stop rule (§3.4): blocks no smaller than
/// 20 x core count, expressed on a dataset scaled down by `factor`.
int paper_stop_rows(const GpuSpec& base, double factor);

// --- Multi-device machines (ISSUE 9: sharded execution) ---------------------

/// The device-to-device link of a multi-GPU (or multi-socket) machine, the
/// modelled analogue of the shard pool's shared-memory boundary exchange.
/// A shard's halo traffic is (boundary rows) x (panel width) x sizeof(T)
/// bytes per epoch, paid at `bandwidth_gbps`, plus one `latency_ns` hop per
/// producer->consumer watermark edge that actually stalls (the overlap
/// executor hides the rest behind local triangles).
struct InterconnectSpec {
  std::string name;
  double bandwidth_gbps = 16.0;  // per-direction, bytes/ns
  double latency_ns = 1500.0;    // small-message one-way latency
};

/// PCIe 3.0 x16: the Pascal-era peer path (~13 GB/s effective).
InterconnectSpec pcie3_x16();
/// NVLink 2.0 (single brick, Turing NVLink bridge): ~25 GB/s effective.
InterconnectSpec nvlink2();

/// A machine of `devices` identical GPUs joined by one link class — what the
/// sharded solve (src/shard) targets when each worker process drives its own
/// accelerator instead of a CPU core.
struct MultiGpuSpec {
  GpuSpec device;
  int devices = 2;
  InterconnectSpec link;
};

/// Dual / quad Titan RTX over NVLink, and dual Titan X over PCIe — the
/// multi-device presets EXPERIMENTS.md's BENCH_shard.json models against.
MultiGpuSpec dual_titan_rtx();
MultiGpuSpec quad_titan_rtx();
MultiGpuSpec dual_titan_x();

/// Models one sharded epoch on `machine`: perfectly-parallel compute plus
/// the boundary exchange the watermark protocol serialises. `single_ns` is
/// the modelled single-device solve time, `halo_bytes` the total boundary
/// panel traffic of the epoch, and `stalled_edges` the producer->consumer
/// watermark waits the overlap executor could not hide (shard/coordinator's
/// halo_deferred is the measured counterpart). Returns the epoch time; the
/// speedup over `single_ns` degrades exactly as the exchange terms grow.
double modeled_shard_epoch_ns(const MultiGpuSpec& machine, double single_ns,
                              double halo_bytes, double stalled_edges);

/// Host CPU description used to model the preprocessing passes (Table 5).
/// Calibrated to a contemporary workstation with the analysis passes
/// parallelised over ~8 cores (counting sorts, permutation scatters and
/// block extraction are all embarrassingly parallel; production inspector
/// implementations run them threaded).
struct HostSpec {
  std::string name = "host-cpu (8 threads)";
  double ops_per_ns = 12.0;       // simple integer/compare ops
  double mem_bandwidth_gbps = 80; // bytes/ns streamed
};

HostSpec host_default();

}  // namespace blocktri::sim
