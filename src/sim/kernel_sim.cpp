#include "sim/kernel_sim.hpp"

#include <algorithm>
#include <queue>

#include "common/types.hpp"

namespace blocktri::sim {

KernelSim::KernelSim(const GpuSpec& gpu, CacheModel* cache, bool fp64)
    : gpu_(gpu), cache_(cache), fp64_(fp64) {
  // A dependent multiply-add iteration in a warp lane: ~4 cycles of issue +
  // address arithmetic for fp32; fp64 units on GeForce parts add latency
  // (but nowhere near the 1/32 *throughput* ratio, which is modelled in the
  // compute-roofline term instead).
  const double cycle_ns = 1.0 / gpu.clock_ghz;
  fma_ns_per_iter_ = (fp64 ? 8.0 : 4.0) * cycle_ns;
  if (cache_ != nullptr) {
    // Snapshot so per-kernel hit/miss stats exclude earlier kernels that
    // shared this cache.
    hits_ = cache_->hits();
    misses_ = cache_->misses();
  }
}

void KernelSim::begin_task() {
  BLOCKTRI_CHECK_MSG(!in_task_, "begin_task while a task is open");
  in_task_ = true;
  cur_ns_ = gpu_.warp_start_ns;
  cur_flops_ = 0;
}

void KernelSim::dep(std::int64_t task_id) {
  BLOCKTRI_CHECK(in_task_);
  BLOCKTRI_CHECK_MSG(task_id >= 0 && task_id < task_count(),
                     "dependency on a task that does not exist yet");
  deps_.push_back(task_id);
}

void KernelSim::gather(const std::uint64_t* addrs, int n, int elem_bytes) {
  BLOCKTRI_CHECK(in_task_);
  const int line = gpu_.cache_line_bytes;
  for (int g = 0; g < n; g += gpu_.warp_size) {
    const int lanes = std::min(gpu_.warp_size, n - g);
    int missed_lines = 0;
    if (cache_ != nullptr) {
      for (int l = 0; l < lanes; ++l)
        missed_lines += cache_->access(addrs[g + l], elem_bytes);
    } else {
      missed_lines = lanes;  // cold device: every lane is a transaction
    }
    cur_ns_ += missed_lines > 0 ? gpu_.dram_latency_ns
                                : gpu_.cache_hit_latency_ns;
    missed_bytes_ += static_cast<std::int64_t>(missed_lines) * line;
  }
}

void KernelSim::touch(std::uint64_t addr, int elem_bytes) {
  gather(&addr, 1, elem_bytes);
}

void KernelSim::atomic(const std::uint64_t* addrs, int n, int elem_bytes) {
  BLOCKTRI_CHECK(in_task_);
  const int line = gpu_.cache_line_bytes;
  for (int g = 0; g < n; g += gpu_.warp_size) {
    const int lanes = std::min(gpu_.warp_size, n - g);
    int missed_lines = 0;
    if (cache_ != nullptr) {
      for (int l = 0; l < lanes; ++l)
        missed_lines += cache_->access(addrs[g + l], elem_bytes);
    } else {
      missed_lines = lanes;
    }
    // Atomics funnel through the memory partitions and, for fp64, are far
    // slower than plain loads: issue cost per lane pair on top of the usual
    // read-modify-write memory behaviour.
    cur_ns_ += static_cast<double>(lanes) * gpu_.atomic_op_ns / 2.0 +
               (missed_lines > 0 ? gpu_.dram_latency_ns
                                 : gpu_.cache_hit_latency_ns);
    missed_bytes_ += static_cast<std::int64_t>(missed_lines) * line;
    for (int l = 0; l < lanes; ++l) ++atomic_counts_[addrs[g + l]];
  }
}

void KernelSim::stream_bytes(std::int64_t bytes) {
  BLOCKTRI_CHECK(in_task_);
  streamed_bytes_ += bytes;
}

void KernelSim::fma_iters(std::int64_t n) {
  BLOCKTRI_CHECK(in_task_);
  cur_ns_ += static_cast<double>(n) * fma_ns_per_iter_;
  cur_flops_ += 2 * n;
}

void KernelSim::flops(std::int64_t n) {
  BLOCKTRI_CHECK(in_task_);
  cur_flops_ += n;
}

void KernelSim::serial_ns(double ns) {
  BLOCKTRI_CHECK(in_task_);
  cur_ns_ += ns;
}

std::int64_t KernelSim::end_task() {
  BLOCKTRI_CHECK(in_task_);
  in_task_ = false;
  if (task_dep_ptr_.empty()) task_dep_ptr_.push_back(0);
  task_ns_.push_back(cur_ns_);
  task_flops_.push_back(cur_flops_);
  task_dep_ptr_.push_back(deps_.size());
  return task_count() - 1;
}

KernelReport KernelSim::finish() {
  BLOCKTRI_CHECK_MSG(!in_task_, "finish() with an open task");
  KernelReport rep;
  rep.tasks = task_count();
  for (const std::int64_t f : task_flops_) rep.flops += f;
  rep.bytes = streamed_bytes_ + missed_bytes_;

  // --- Latency roofline: list-schedule tasks, in issue order, onto the
  // resident-warp slots. A task holds its slot from acquisition (spinning on
  // dependencies included) until completion.
  const int slots = std::max(1, gpu_.warp_slots());
  double makespan = 0.0;
  if (!task_ns_.empty()) {
    std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
    // Lazily materialise slots: cheaper when tasks < slots.
    int unopened = slots;
    std::vector<double> finish_at(task_ns_.size());
    for (std::size_t t = 0; t < task_ns_.size(); ++t) {
      double slot_free = 0.0;
      if (unopened > 0) {
        --unopened;
      } else {
        slot_free = free_at.top();
        free_at.pop();
      }
      double ready = 0.0;
      for (std::size_t d = task_dep_ptr_[t]; d < task_dep_ptr_[t + 1]; ++d) {
        ready = std::max(
            ready, finish_at[static_cast<std::size_t>(
                       deps_[d])] + gpu_.atomic_propagate_ns);
      }
      double begin = std::max(slot_free, ready);
      // The warp was actually spinning: add one busy-wait detection delay
      // (the poll that finally observes the updated in-degree).
      if (ready > slot_free) begin += gpu_.spin_poll_ns;
      const double fin = begin + task_ns_[t];
      finish_at[t] = fin;
      free_at.push(fin);
      makespan = std::max(makespan, fin);
    }
  }
  rep.latency_ns = makespan;

  // --- Bandwidth and compute rooflines.
  rep.bandwidth_ns =
      static_cast<double>(rep.bytes) / gpu_.mem_bandwidth_gbps;
  rep.compute_ns =
      static_cast<double>(rep.flops) / gpu_.peak_flops_per_ns(fp64_);
  // Per-address atomic contention: the hottest address's serialised RMW
  // chain lower-bounds the kernel time.
  std::int64_t hottest = 0;
  for (const auto& [addr, count] : atomic_counts_) {
    (void)addr;
    if (count > hottest) hottest = count;
  }
  rep.contention_ns = static_cast<double>(hottest) * gpu_.atomic_rmw_ns;
  rep.ns = std::max(
      {rep.latency_ns, rep.bandwidth_ns, rep.compute_ns, rep.contention_ns});

  // Cache statistics for this kernel only.
  if (cache_ != nullptr) {
    rep.cache_hits = cache_->hits() - hits_;
    rep.cache_misses = cache_->misses() - misses_;
    hits_ = cache_->hits();
    misses_ = cache_->misses();
  }

  // Reset per-kernel state so the object can be reused.
  task_ns_.clear();
  task_flops_.clear();
  task_dep_ptr_.clear();
  deps_.clear();
  streamed_bytes_ = 0;
  missed_bytes_ = 0;
  atomic_counts_.clear();
  return rep;
}

}  // namespace blocktri::sim
