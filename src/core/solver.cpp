#include "core/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>
#include <string>
#include <thread>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "order/hbmc.hpp"
#include "persist/artifact.hpp"
#include "persist/plan_cache.hpp"
#include "sim/kernel_sim.hpp"
#include "sparse/convert.hpp"
#include "sparse/permute.hpp"
#include "sparse/triangular.hpp"
#include "sptrsv/serial.hpp"

namespace blocktri {

namespace {
template <class T>
bool all_finite(const T* v, index_t n) {
  for (index_t i = 0; i < n; ++i)
    if (!std::isfinite(static_cast<double>(v[i]))) return false;
  return true;
}

/// Fused entry permutation: scatters the caller's rhs straight into the
/// permuted workspace in one pass (the old path materialised a permuted
/// vector and copied it).
template <class T>
void scatter_permuted(const T* src, const std::vector<index_t>& new_of_old,
                      T* dst) {
  const std::size_t n = new_of_old.size();
  for (std::size_t i = 0; i < n; ++i)
    dst[static_cast<std::size_t>(new_of_old[i])] = src[i];
}

/// Fused exit permutation: gathers the permuted solution into the caller's
/// storage in one pass.
template <class T>
void gather_permuted(const T* src, const std::vector<index_t>& new_of_old,
                     T* dst) {
  const std::size_t n = new_of_old.size();
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = src[static_cast<std::size_t>(new_of_old[i])];
}

template <class T>
std::vector<T> unpermute_panel(const std::vector<T>& v,
                               const std::vector<index_t>& new_of_old,
                               index_t k) {
  const std::size_t n = new_of_old.size();
  std::vector<T> out(v.size());
  for (index_t c = 0; c < k; ++c) {
    const std::size_t off = static_cast<std::size_t>(c) * n;
    for (std::size_t i = 0; i < n; ++i)
      out[off + i] = v[off + static_cast<std::size_t>(new_of_old[i])];
  }
  return out;
}

/// Decrements the solver's in-flight counter on scope exit, so early returns
/// and exceptions cannot leave the strict-reentrancy guard stuck.
struct InFlightGuard {
  std::atomic<int>* counter;
  ~InFlightGuard() { counter->fetch_sub(1, std::memory_order_relaxed); }
};

/// One rung of the whole-solve degradation ladder: which executor pool the
/// attempt may use and which SIMD lowering it forces (-1 = leave the active
/// path alone). `entered_by` describes the demotion that leads *into* this
/// rung, recorded as a DegradeEvent when the ladder steps down.
struct LadderRung {
  bool use_pool = false;
  int forced_path = -1;
  DegradeEvent::Kind entered_by = DegradeEvent::Kind::kParallelToSerial;
};

/// Builds the rung list for one checked solve: the configured executor
/// first, then serial, then the demoted SIMD lowerings (each rung strictly
/// more conservative than the one before). Rungs that would not change
/// anything are skipped.
inline std::vector<LadderRung> build_ladder(bool have_pool, bool fallback) {
  std::vector<LadderRung> rungs;
  rungs.push_back({have_pool, -1, DegradeEvent::Kind::kParallelToSerial});
  if (!fallback) return rungs;
  if (have_pool)
    rungs.push_back({false, -1, DegradeEvent::Kind::kParallelToSerial});
  const simd::Path active = simd::active_path();
  if (active == simd::Path::kVector)
    rungs.push_back({false, static_cast<int>(simd::Path::kBlockedScalar),
                     DegradeEvent::Kind::kVectorToBlocked});
  if (active != simd::Path::kStrictScalar)
    rungs.push_back({false, static_cast<int>(simd::Path::kStrictScalar),
                     DegradeEvent::Kind::kBlockedToStrict});
  return rungs;
}
}  // namespace

template <class T>
BlockSolver<T>::BlockSolver(const Csr<T>& lower, const Options& opt)
    : opt_(opt) {
  throw_if_error(check_lower_triangular(lower));
  nnz_ = lower.nnz();
  structure_hash_ = blocktri::structure_hash(lower);

  // The pool exists before planning so preprocessing (per-node level
  // analyses, CSC conversions, in-degree counts) can use it too.
  threads_ = resolve_threads(opt.threads);
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);

  // --- Partition (and, for the recursive scheme, reorder). ---
  Csr<T> stored;
  // Per-block decisions adopted from the tuner (kRecursive + tune.enabled
  // only); the block loops below then skip the feature/selector work the
  // search already did.
  std::vector<TriKernelKind> tuned_tri;
  std::vector<index_t> tuned_nlevels;
  std::vector<SpmvKernelKind> tuned_sq;
  std::vector<double> tuned_empty;
  switch (opt.scheme) {
    case BlockScheme::kColumn:
      plan_ = plan_column(lower.nrows, opt.planner.nseg);
      stored = lower;
      break;
    case BlockScheme::kRow:
      plan_ = plan_row(lower.nrows, opt.planner.nseg);
      stored = lower;
      break;
    case BlockScheme::kRecursive:
      if (opt.tune.enabled) {
        // Cost-model-driven plan search (DESIGN.md §13): calibration is paid
        // once per device (in-process + on-disk cache), the search once per
        // (matrix, options) — warm artifact/PlanCache paths re-run neither.
        const tune::CostModel& model =
            tune::ensure_cost_model(opt.tune.gpu, opt.tune.model_path);
        tune::TunedPlan<T> tp = tune::autotune_recursive(
            lower, opt.planner, opt.thresholds, model, opt.tune, pool_.get());
        plan_ = std::move(tp.plan);
        stored = std::move(tp.stored);
        tuned_tri = std::move(tp.tri_kinds);
        tuned_nlevels = std::move(tp.tri_nlevels);
        tuned_sq = std::move(tp.square_kinds);
        tuned_empty = std::move(tp.square_empty_ratio);
        merge_width_ = tp.merge_width;
        tune_stats_ = tp.stats;
        tuned_ = true;
      } else {
        plan_ = plan_recursive(lower, opt.planner, &stored, pool_.get());
      }
      break;
    case BlockScheme::kHbmc:
      // The executor's calibrated run-merge width doubles as the HBMC
      // color-fusion bound (DESIGN.md §16); untuned it is the constant
      // kLevelMergeMaxWidth, so the plan stays a pure function of the
      // options fingerprint.
      plan_ = order::plan_hbmc(lower, opt.planner,
                               static_cast<index_t>(merge_width_), &stored,
                               pool_.get());
      break;
  }

  // --- Extract blocks, select kernels, build per-block structures. The
  // blocks are created in execution order, which is also the order their
  // simulated addresses would be laid out in the §3.3 contiguous arena.
  tri_.resize(static_cast<std::size_t>(plan_.num_tri_blocks()));
  squares_.resize(plan_.squares.size());

  for (index_t t = 0; t < plan_.num_tri_blocks(); ++t) {
    const index_t r0 = plan_.tri_bounds[static_cast<std::size_t>(t)];
    const index_t r1 = plan_.tri_bounds[static_cast<std::size_t>(t) + 1];
    Csr<T> blk = extract_block(stored, r0, r1, r0, r1);
    build_ops_ += blk.nnz() + (r1 - r0);
    build_bytes_ += blk.nnz() * static_cast<std::int64_t>(sizeof(index_t) +
                                                          sizeof(T));

    TriBlock& out = tri_[static_cast<std::size_t>(t)];
    out.info.r0 = r0;
    out.info.r1 = r1;
    out.info.nnz = blk.nnz();
    if (opt.verify.enabled) out.csr = blk;  // fallback/refinement reference

    TriKernelKind kind;
    if (tuned_) {
      out.info.nlevels = tuned_nlevels[static_cast<std::size_t>(t)];
      kind = tuned_tri[static_cast<std::size_t>(t)];
    } else {
      const TriangularFeatures feat = compute_triangular_features(blk);
      out.info.nlevels = feat.nlevels;
      kind = opt.adaptive ? select_tri_kernel(feat, opt.thresholds)
                          : opt.forced_tri;
    }
    // A forced kernel still degrades gracefully on a diagonal block: every
    // kernel handles it, so honour the forced choice except that the
    // diagonal fast path requires an actually-diagonal block.
    if (kind == TriKernelKind::kCompletelyParallel && out.info.nlevels > 1)
      kind = TriKernelKind::kSyncFree;
    out.info.kind = kind;

    switch (kind) {
      case TriKernelKind::kCompletelyParallel: {
        StrictLowerSplit<T> split = split_diagonal(blk);
        BLOCKTRI_CHECK(split.strict.nnz() == 0);
        out.diag = std::make_unique<DiagonalSolver<T>>(std::move(split.diag));
        break;
      }
      case TriKernelKind::kLevelSet:
        out.levelset = std::make_unique<LevelSetSolver<T>>(
            std::move(blk), pool_.get(), merge_width_);
        build_ops_ += out.info.nnz;  // level analysis in the sub-solver
        break;
      case TriKernelKind::kSyncFree:
        out.syncfree = std::make_unique<SyncFreeSolver<T>>(blk, pool_.get());
        build_ops_ += 2 * out.info.nnz;  // CSC conversion + in-degrees
        build_bytes_ += 2 * out.info.nnz *
                        static_cast<std::int64_t>(sizeof(index_t) + sizeof(T));
        break;
      case TriKernelKind::kCusparseLike:
        out.cusparse =
            std::make_unique<CusparseLikeSolver<T>>(std::move(blk));
        build_ops_ += out.info.nnz;
        break;
    }
    tri_info_.push_back(out.info);
  }

  for (std::size_t q = 0; q < plan_.squares.size(); ++q) {
    const SquareBlockRef ref = plan_.squares[q];
    Csr<T> blk = extract_block(stored, ref.r0, ref.r1, ref.c0, ref.c1);
    build_ops_ += blk.nnz() + (ref.r1 - ref.r0);
    build_bytes_ += blk.nnz() * static_cast<std::int64_t>(sizeof(index_t) +
                                                          sizeof(T));
    SquareBlock& out = squares_[q];
    out.info.ref = ref;
    out.info.nnz = blk.nnz();
    if (blk.nnz() == 0) {
      // Empty square: a no-op both executors skip (compute_step_waves drops
      // it from the waves, exec_step returns early), so adaptive selection
      // and a DCSR build would be pure waste. Mark it canonically as
      // scalar-CSR so serial, wave and introspection paths agree.
      out.info.kind = SpmvKernelKind::kScalarCsr;
      out.info.empty_ratio = ref.r1 > ref.r0 ? 1.0 : 0.0;
      out.csr = std::move(blk);
      square_info_.push_back(out.info);
      continue;
    }
    if (tuned_) {
      out.info.empty_ratio = tuned_empty[q];
      out.info.kind = tuned_sq[q];
    } else {
      const MatrixFeatures feat = compute_features(blk);
      out.info.empty_ratio = feat.empty_ratio;
      out.info.kind = opt.adaptive
                          ? select_square_kernel(feat, opt.thresholds)
                          : opt.forced_square;
    }
    if (out.info.kind == SpmvKernelKind::kScalarDcsr ||
        out.info.kind == SpmvKernelKind::kVectorDcsr) {
      out.dcsr = csr_to_dcsr(blk);
      build_ops_ += ref.r1 - ref.r0;
    } else {
      out.csr = std::move(blk);
    }
    square_info_.push_back(out.info);
  }

  // Wave analysis for the multithreaded executor; the empty-square list lets
  // independent triangles (block-diagonal structure) share a wave. Computed
  // at every thread count so capture_artifact always has the waves — a plan
  // captured at threads = 1 must replay bitwise at threads > 1.
  {
    std::vector<offset_t> square_nnz(squares_.size());
    for (std::size_t q = 0; q < squares_.size(); ++q)
      square_nnz[q] = squares_[q].info.nnz;
    waves_ = compute_step_waves(plan_, square_nnz);
  }

  if (opt.verify.enabled) {
    for (index_t i = 0; i < stored.nrows; ++i) {
      double s = 0.0;
      for (offset_t k = stored.row_ptr[static_cast<std::size_t>(i)];
           k < stored.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        s += std::fabs(
            static_cast<double>(stored.val[static_cast<std::size_t>(k)]));
      norm_inf_ = std::max(norm_inf_, s);
    }
    stored_ = std::move(stored);
  }

  // --- Simulated address layout: x | b | scratch (left_sum + in_degree). ---
  sim::AddressSpace as;
  const auto n_u = static_cast<std::uint64_t>(plan_.n);
  x_base_ = as.reserve(n_u * sizeof(T));
  b_base_ = as.reserve(n_u * sizeof(T));
  aux_base_ = as.reserve(n_u * (sizeof(T) + 4));

  size_tri_scratch();
  ws_pool_ = std::make_unique<WorkspacePool<SolveWorkspace>>(
      typename WorkspacePool<SolveWorkspace>::Options{
          opt_.session.max_workspaces, opt_.session.block_when_exhausted});

  // Deterministic fault hook: a poisoned in-degree counter makes the
  // sync-free parallel spin-wait undrainable, exercising the bounded-spin
  // timeout (the serial and batched paths never consult the counters).
  if (opt_.fault.stuck_spin && opt_.fault.tri_block >= 0 &&
      opt_.fault.tri_block < static_cast<index_t>(tri_.size())) {
    TriBlock& blk = tri_[static_cast<std::size_t>(opt_.fault.tri_block)];
    if (blk.syncfree != nullptr)
      blk.syncfree->poison_in_degree_for_testing(0, 1);
  }
}

template <class T>
void BlockSolver<T>::exec_tri(const TriBlock& blk, const T* b, T* x,
                              const TrsvSim* s, ThreadPool* pool,
                              T* tri_scratch, const ExecControl* ctl) const {
  switch (blk.info.kind) {
    case TriKernelKind::kCompletelyParallel:
      blk.diag->solve(b, x, s, pool, ctl);
      return;
    case TriKernelKind::kSyncFree:
      // `tri_scratch` is lent only by serial per-call executors (see the
      // declaration comment): concurrent wave steps share one workspace and
      // would race on it (the kernel then falls back to a local accumulator).
      blk.syncfree->solve(b, x, s, pool, tri_scratch, ctl);
      return;
    case TriKernelKind::kLevelSet:
      blk.levelset->solve(b, x, s, pool, ctl);
      return;
    case TriKernelKind::kCusparseLike:
      blk.cusparse->solve(b, x, s, ctl);  // host path intentionally serial
      return;
  }
  BLOCKTRI_CHECK_MSG(false, "unknown triangular kernel kind");
}

template <class T>
void BlockSolver<T>::exec_square(const SquareBlock& blk, const T* x, T* y,
                                 const SpmvSim* s, ThreadPool* pool) const {
  switch (blk.info.kind) {
    case SpmvKernelKind::kScalarCsr:
      spmv_scalar_csr(blk.csr, x, y, s, pool);
      return;
    case SpmvKernelKind::kVectorCsr:
      spmv_vector_csr(blk.csr, x, y, s, pool);
      return;
    case SpmvKernelKind::kScalarDcsr:
      spmv_scalar_dcsr(blk.dcsr, x, y, s, pool);
      return;
    case SpmvKernelKind::kVectorDcsr:
      spmv_vector_dcsr(blk.dcsr, x, y, s, pool);
      return;
  }
  BLOCKTRI_CHECK_MSG(false, "unknown square kernel kind");
}

template <class T>
void BlockSolver<T>::exec_step(const ExecStep& step, T* bw, T* xw,
                               ThreadPool* pool, T* tri_scratch,
                               const ExecControl* ctl) const {
  if (step.kind == ExecStep::Kind::kTri) {
    const TriBlock& blk = tri_[static_cast<std::size_t>(step.index)];
    exec_tri(blk, bw + blk.info.r0, xw + blk.info.r0, nullptr, pool,
             tri_scratch, ctl);
  } else {
    const SquareBlock& blk = squares_[static_cast<std::size_t>(step.index)];
    if (blk.info.nnz == 0) return;  // skipped, like the wave executor
    exec_square(blk, xw + blk.info.ref.c0, bw + blk.info.ref.r0, nullptr,
                pool);
  }
}

template <class T>
void BlockSolver<T>::exec_tri_many(const TriBlock& blk, const T* b, T* x,
                                   index_t k, ThreadPool* pool, T* tri_scratch,
                                   const ExecControl* ctl, index_t ld,
                                   PanelLayout layout) const {
  switch (blk.info.kind) {
    case TriKernelKind::kCompletelyParallel:
      blk.diag->solve_many(b, x, k, ld, pool, ctl, layout);
      return;
    case TriKernelKind::kLevelSet:
      blk.levelset->solve_many(b, x, k, ld, pool, ctl, layout);
      return;
    case TriKernelKind::kSyncFree:
      // Same scratch-lending rule as exec_tri (see the comment there).
      blk.syncfree->solve_many(b, x, k, ld, pool, tri_scratch, ctl, layout);
      return;
    case TriKernelKind::kCusparseLike:
      blk.cusparse->solve_many(b, x, k, ld, ctl, layout);
      return;
  }
  BLOCKTRI_CHECK_MSG(false, "unknown triangular kernel kind");
}

template <class T>
void BlockSolver<T>::exec_square_many(const SquareBlock& blk, const T* x,
                                      T* y, index_t k, ThreadPool* pool,
                                      index_t ld, PanelLayout layout) const {
  switch (blk.info.kind) {
    case SpmvKernelKind::kScalarCsr:
      spmv_scalar_csr_many(blk.csr, x, y, k, ld, ld, pool, layout);
      return;
    case SpmvKernelKind::kVectorCsr:
      spmv_vector_csr_many(blk.csr, x, y, k, ld, ld, pool, layout);
      return;
    case SpmvKernelKind::kScalarDcsr:
      spmv_scalar_dcsr_many(blk.dcsr, x, y, k, ld, ld, pool, layout);
      return;
    case SpmvKernelKind::kVectorDcsr:
      spmv_vector_dcsr_many(blk.dcsr, x, y, k, ld, ld, pool, layout);
      return;
  }
  BLOCKTRI_CHECK_MSG(false, "unknown square kernel kind");
}

template <class T>
void BlockSolver<T>::exec_step_many(const ExecStep& step, T* bw, T* xw,
                                    index_t c0, index_t c1, ThreadPool* pool,
                                    T* tri_scratch, const ExecControl* ctl,
                                    index_t ld, PanelLayout layout) const {
  const index_t k = c1 - c0;
  if (k <= 0) return;
  // Column-major: column c0 starts coff elements in, blocks offset by their
  // first row. Interleaved: the sub-panel [c0, c1) is base + c0 with the
  // same row stride, blocks offset by r0·ld.
  const bool ilv = layout == PanelLayout::kInterleaved;
  const std::size_t coff =
      ilv ? static_cast<std::size_t>(c0)
          : static_cast<std::size_t>(c0) * static_cast<std::size_t>(ld);
  const auto row_off = [&](index_t r) {
    return ilv ? static_cast<std::size_t>(r) * static_cast<std::size_t>(ld)
               : static_cast<std::size_t>(r);
  };
  if (step.kind == ExecStep::Kind::kTri) {
    const TriBlock& blk = tri_[static_cast<std::size_t>(step.index)];
    exec_tri_many(blk, bw + coff + row_off(blk.info.r0),
                  xw + coff + row_off(blk.info.r0), k, pool, tri_scratch, ctl,
                  ld, layout);
  } else {
    const SquareBlock& blk = squares_[static_cast<std::size_t>(step.index)];
    if (blk.info.nnz == 0) return;  // skipped, like the wave executor
    exec_square_many(blk, xw + coff + row_off(blk.info.ref.c0),
                     bw + coff + row_off(blk.info.ref.r0), k, pool, ld,
                     layout);
  }
}

template <class T>
std::vector<T> BlockSolver<T>::solve(const std::vector<T>& b) const {
  BLOCKTRI_CHECK(b.size() == static_cast<std::size_t>(plan_.n));
  std::vector<T> x(b.size());
  solve(b.data(), x.data());
  return x;
}

template <class T>
auto BlockSolver<T>::acquire_workspace(const ExecControl* ctl) const ->
    typename WorkspacePool<SolveWorkspace>::Lease {
  const auto init = [this](SolveWorkspace& w) {
    // A freshly created workspace gets its sync-free scratch sized once;
    // every other buffer grows on first use and never shrinks.
    w.tri_scratch.resize(tri_scratch_len_);
  };
  if (ctl == nullptr || !ctl->armed() || !ws_pool_->blocking())
    return ws_pool_->acquire(init);
  // Armed controls race the blocking acquisition: a waiter parked on the
  // exhausted pool wakes with the caller's kCancelled / kDeadlineExceeded
  // instead of sleeping until a workspace frees.
  StatusCode denial = StatusCode::kPoolExhausted;
  auto lease = ws_pool_->acquire(init, ctl->deadline(), ctl->cancel(),
                                 &denial);
  if (!lease && denial != StatusCode::kPoolExhausted) ctl->trip(denial);
  return lease;
}

template <class T>
Status BlockSolver<T>::pool_exhausted_status() const {
  return Status(StatusCode::kPoolExhausted,
                "all " + std::to_string(ws_pool_->capacity()) +
                    " solve workspaces are leased and "
                    "Options::session.block_when_exhausted is false");
}

template <class T>
void BlockSolver<T>::solve(const T* b, T* x) const {
  // The legacy entry point cannot report: session faults (pool exhaustion in
  // failing mode, strict-reentrancy violations, spin timeouts) surface as
  // thrown blocktri::Error. Default controls are unarmed, so a healthy solve
  // behaves exactly as before.
  throw_if_error(solve(b, x, SolveControls{}, nullptr));
}

template <class T>
Status BlockSolver<T>::solve(const T* b, T* x, const SolveControls& controls,
                             SolveReport* rep) const {
  const int prev = in_flight_.fetch_add(1, std::memory_order_relaxed);
  InFlightGuard in_flight_guard{&in_flight_};
  if (prev > 0 && opt_.session.strict_reentrancy)
    return Status(StatusCode::kReentrantSolve,
                  "another solve is in flight on this solver and "
                  "Options::session.strict_reentrancy is set");
  const ExecControl ctl(controls);
  SolveReport local_rep;
  SolveReport* r = rep != nullptr ? rep : &local_rep;
  r->steps_total = static_cast<index_t>(plan_.steps.size());
  r->steps_completed = 0;
  if (!ctl.check()) return ctl.to_status("before the solve started");

  auto lease = acquire_workspace(&ctl);
  if (!lease)
    return ctl.tripped() ? ctl.to_status("while waiting for a solve workspace")
                         : pool_exhausted_status();
  SolveWorkspace& ws = *lease;
  if (opt_.fault.hold_lease_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.fault.hold_lease_ms));

  const std::size_t n = static_cast<std::size_t>(plan_.n);
  // resize() never shrinks capacity, so after the first solve of each shape
  // these are no-ops and the whole path is allocation free.
  ws.bw.resize(n);
  ws.xw.resize(n);
  T* bw = ws.bw.data();
  T* xw = ws.xw.data();
  scatter_permuted(b, plan_.new_of_old, bw);
  // No zero fill of xw: the triangular blocks tile the diagonal, so every
  // entry is written before anything reads it.

  // Pool arbitration: the try_lock winner drives the wave executor; every
  // other concurrent caller (and any caller at threads = 1) runs serial —
  // the fork-join pool is not reentrant and must not be shared.
  std::unique_lock<std::mutex> pool_lk(exec_mu_, std::defer_lock);
  ThreadPool* epool =
      pool_ != nullptr && pool_lk.try_lock() ? pool_.get() : nullptr;

  if (epool == nullptr) {
    T* scratch = ws.tri_scratch.empty() ? nullptr : ws.tri_scratch.data();
    for (const ExecStep& step : plan_.steps) {
      if (!ctl.check()) break;
      exec_step(step, bw, xw, nullptr, scratch, &ctl);
      if (ctl.tripped()) break;  // e.g. a sync-free spin timeout mid-step
      ++r->steps_completed;
    }
  } else {
    // Threaded executor: a single-step wave parallelises inside the kernel;
    // a multi-step wave runs its (independent) steps concurrently with
    // serial kernels inside. Wave steps share this call's workspace, so the
    // sync-free scratch is never lent here (see exec_tri).
    for (const std::vector<ExecStep>& wave : waves_) {
      if (!ctl.check()) break;
      if (wave.size() == 1) {
        exec_step(wave[0], bw, xw, epool, nullptr, &ctl);
      } else {
        epool->run(static_cast<int>(wave.size()), [&](int s) {
          exec_step(wave[static_cast<std::size_t>(s)], bw, xw, nullptr,
                    nullptr, &ctl);
        });
      }
      if (ctl.tripped()) break;
      r->steps_completed += static_cast<index_t>(wave.size());
    }
  }
  // Partial progress is gathered back even on a trip — diagnostic only.
  gather_permuted(xw, plan_.new_of_old, x);
  if (ctl.tripped())
    return ctl.to_status("after " + std::to_string(r->steps_completed) +
                         " of " + std::to_string(r->steps_total) +
                         " plan steps");
  return Status::Ok();
}

template <class T>
std::vector<T> BlockSolver<T>::solve_many(const std::vector<T>& B,
                                          index_t k) const {
  BLOCKTRI_CHECK_MSG(k >= 0, "solve_many requires k >= 0");
  BLOCKTRI_CHECK_MSG(
      B.size() == static_cast<std::size_t>(plan_.n) *
                      static_cast<std::size_t>(k),
      "solve_many panel must hold n * k entries, column-major");
  if (k == 0) return {};
  std::vector<T> X(B.size());
  solve_many(B.data(), X.data(), k);
  return X;
}

template <class T>
void BlockSolver<T>::solve_many(const T* B, T* X, index_t k) const {
  // Same wrapper contract as the raw solve() above.
  throw_if_error(solve_many(B, X, k, SolveControls{}, nullptr));
}

template <class T>
Status BlockSolver<T>::solve_many(const T* B, T* X, index_t k,
                                  const SolveControls& controls,
                                  SolveReport* rep) const {
  return solve_many_impl(B, nullptr, X, nullptr, k, controls, rep);
}

template <class T>
Status BlockSolver<T>::solve_many(const T* const* Bs, T* const* Xs, index_t k,
                                  const SolveControls& controls,
                                  SolveReport* rep) const {
  return solve_many_impl(nullptr, Bs, nullptr, Xs, k, controls, rep);
}

template <class T>
Status BlockSolver<T>::solve_many_impl(const T* B, const T* const* Bs, T* X,
                                       T* const* Xs, index_t k,
                                       const SolveControls& controls,
                                       SolveReport* rep) const {
  if (k <= 0) return Status::Ok();
  const int prev = in_flight_.fetch_add(1, std::memory_order_relaxed);
  InFlightGuard in_flight_guard{&in_flight_};
  if (prev > 0 && opt_.session.strict_reentrancy)
    return Status(StatusCode::kReentrantSolve,
                  "another solve is in flight on this solver and "
                  "Options::session.strict_reentrancy is set");
  const ExecControl ctl(controls);
  SolveReport local_rep;
  SolveReport* r = rep != nullptr ? rep : &local_rep;
  r->steps_total = static_cast<index_t>(plan_.steps.size());
  r->steps_completed = 0;
  if (!ctl.check()) return ctl.to_status("before the solve started");

  auto lease = acquire_workspace(&ctl);
  if (!lease)
    return ctl.tripped() ? ctl.to_status("while waiting for a solve workspace")
                         : pool_exhausted_status();
  SolveWorkspace& ws = *lease;
  if (opt_.fault.hold_lease_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.fault.hold_lease_ms));

  const std::size_t n = static_cast<std::size_t>(plan_.n);
  const std::size_t total = n * static_cast<std::size_t>(k);
  // 64-byte-align the panel bases: when a row slab (k elements) is a
  // cache-line multiple, every tile-wide gather/update in the interleaved
  // kernels then touches exactly the lines it covers — an unaligned base
  // would spill each slab across one extra line.
  constexpr std::size_t kAlign = 64 / sizeof(T);
  ws.bw.resize(total + kAlign - 1);
  ws.xw.resize(total + kAlign - 1);
  const auto align64 = [](T* p) {
    const auto u = reinterpret_cast<std::uintptr_t>(p);
    return reinterpret_cast<T*>((u + 63u) & ~std::uintptr_t{63u});
  };
  T* bw = align64(ws.bw.data());
  T* xw = align64(ws.xw.data());
  // The workspace panel is row-interleaved (element (i, c) at i·k + c, see
  // PanelLayout): every row visit in the batched kernels then reads and
  // writes all k panel entries of a nonzero from one or two cache lines
  // instead of one line per column, which is where the per-RHS amortisation
  // beyond structure streaming comes from. The caller-facing layout stays
  // column-major; this fused entry permutation transposes on the way in.
  const auto ku = static_cast<std::size_t>(k);
  if (Bs != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      T* row = bw + static_cast<std::size_t>(plan_.new_of_old[i]) * ku;
      for (std::size_t c = 0; c < ku; ++c) row[c] = Bs[c][i];
    }
  } else {
    // Contiguous column-major panel: column c starts at B + c·n.
    for (std::size_t i = 0; i < n; ++i) {
      T* row = bw + static_cast<std::size_t>(plan_.new_of_old[i]) * ku;
      const T* bi = B + i;
      for (std::size_t c = 0; c < ku; ++c) row[c] = bi[c * n];
    }
  }

  // Pool arbitration: same contract as the single-RHS path above.
  std::unique_lock<std::mutex> pool_lk(exec_mu_, std::defer_lock);
  ThreadPool* epool =
      pool_ != nullptr && pool_lk.try_lock() ? pool_.get() : nullptr;

  if (epool == nullptr) {
    T* scratch = ws.tri_scratch.empty() ? nullptr : ws.tri_scratch.data();
    for (const ExecStep& step : plan_.steps) {
      if (!ctl.check()) break;
      exec_step_many(step, bw, xw, 0, k, nullptr, scratch, &ctl, k,
                     PanelLayout::kInterleaved);
      if (ctl.tripped()) break;
      ++r->steps_completed;
    }
  } else {
    // Threaded executor over steps × column chunks. A wave whose steps alone
    // can occupy the pool runs one task per step (each batched kernel serial
    // inside — the fork-join pool is not reentrant); a narrow wave
    // additionally splits the panel columns so idle threads get work. A
    // single-task wave instead hands the pool to the batched kernel itself.
    // All batched kernels are deterministic, so any shape gives the
    // bitwise-identical panel.
    for (const std::vector<ExecStep>& wave : waves_) {
      if (!ctl.check()) break;
      const int nsteps = static_cast<int>(wave.size());
      const int nchunks =
          (k > 1 && nsteps < threads_)
              ? static_cast<int>(std::min<index_t>(
                    k, static_cast<index_t>((threads_ + nsteps - 1) / nsteps)))
              : 1;
      if (nsteps * nchunks == 1) {
        exec_step_many(wave[0], bw, xw, 0, k, epool, nullptr, &ctl, k,
                       PanelLayout::kInterleaved);
      } else {
        epool->run(nsteps * nchunks, [&](int t) {
          const int s = t / nchunks;
          const int ch = t % nchunks;
          const index_t c0 = static_cast<index_t>(
              static_cast<std::int64_t>(k) * ch / nchunks);
          const index_t c1 = static_cast<index_t>(
              static_cast<std::int64_t>(k) * (ch + 1) / nchunks);
          exec_step_many(wave[static_cast<std::size_t>(s)], bw, xw, c0, c1,
                         nullptr, nullptr, &ctl, k,
                         PanelLayout::kInterleaved);
        });
      }
      if (ctl.tripped()) break;
      r->steps_completed += static_cast<index_t>(wave.size());
    }
  }
  // Fused exit permutation, scattering back to the caller's columns.
  if (Xs != nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      const T* row = xw + static_cast<std::size_t>(plan_.new_of_old[i]) * ku;
      for (std::size_t c = 0; c < ku; ++c) Xs[c][i] = row[c];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const T* row = xw + static_cast<std::size_t>(plan_.new_of_old[i]) * ku;
      T* xi = X + i;
      for (std::size_t c = 0; c < ku; ++c) xi[c * n] = row[c];
    }
  }
  if (ctl.tripped())
    return ctl.to_status("after " + std::to_string(r->steps_completed) +
                         " of " + std::to_string(r->steps_total) +
                         " plan steps");
  return Status::Ok();
}

template <class T>
std::vector<T> BlockSolver<T>::solve_simulated(
    const std::vector<T>& b, const sim::GpuSpec& gpu, sim::CacheModel* cache,
    sim::SolveReport* report, BlockSolveBreakdown* breakdown,
    bool fp64) const {
  BLOCKTRI_CHECK(b.size() == static_cast<std::size_t>(plan_.n));
  BLOCKTRI_CHECK(report != nullptr);
  const int elem = static_cast<int>(sizeof(T));
  std::vector<T> bw = permute_vector(b, plan_.new_of_old);
  std::vector<T> xw(static_cast<std::size_t>(plan_.n));

  for (const ExecStep& step : plan_.steps) {
    const double ns_before = report->ns;
    if (step.kind == ExecStep::Kind::kTri) {
      const TriBlock& blk = tri_[static_cast<std::size_t>(step.index)];
      TrsvSim ts;
      ts.gpu = &gpu;
      ts.cache = cache;
      ts.fp64 = fp64;
      ts.x_base = x_base_ + static_cast<std::uint64_t>(blk.info.r0) * elem;
      ts.b_base = b_base_ + static_cast<std::uint64_t>(blk.info.r0) * elem;
      ts.aux_base =
          aux_base_ + static_cast<std::uint64_t>(blk.info.r0) * (elem + 4);
      ts.report = report;
      const int launches_before = report->kernel_launches;
      exec_tri(blk, bw.data() + blk.info.r0, xw.data() + blk.info.r0, &ts);
      if (breakdown != nullptr) {
        breakdown->tri_ns += report->ns - ns_before;
        breakdown->tri_kernels += report->kernel_launches - launches_before;
      }
    } else {
      const SquareBlock& blk = squares_[static_cast<std::size_t>(step.index)];
      sim::KernelSim ks(gpu, cache, fp64);
      SpmvSim ss;
      ss.ks = &ks;
      ss.x_base = x_base_ + static_cast<std::uint64_t>(blk.info.ref.c0) * elem;
      ss.y_base = b_base_ + static_cast<std::uint64_t>(blk.info.ref.r0) * elem;
      exec_square(blk, xw.data() + blk.info.ref.c0,
                  bw.data() + blk.info.ref.r0, &ss);
      report->add_kernel_launch(ks.finish(), gpu.kernel_launch_ns);
      if (breakdown != nullptr) {
        breakdown->spmv_ns += report->ns - ns_before;
        ++breakdown->spmv_kernels;
      }
    }
  }
  return unpermute_vector(xw, plan_.new_of_old);
}

template <class T>
Status BlockSolver<T>::create(const Csr<T>& lower, const Options& opt,
                              std::unique_ptr<BlockSolver<T>>* out,
                              PlanCache<T>* cache) {
  BLOCKTRI_CHECK(out != nullptr);
  if (Status st = check_lower_triangular(lower); !st.ok()) return st;
  if (cache != nullptr) {
    const PlanCacheKey key{blocktri::structure_hash(lower),
                           options_fingerprint(opt)};
    bool hit_failed = false;
    if (std::shared_ptr<const PlanArtifact<T>> art = cache->find(key)) {
      std::unique_ptr<BlockSolver<T>> warm;
      if (create_from_artifact(std::move(art), opt, &warm).ok() &&
          warm->refresh_values(lower).ok()) {
        cache->report_hit_success(key);
        *out = std::move(warm);
        return Status::Ok();
      }
      // A mismatched entry (e.g. a hash collision) falls through to the
      // cold build — the cache is an accelerator, never a correctness gate.
      // Repeated failures on the same key tombstone it (quarantine), so a
      // poisoned entry stops being re-admitted every miss.
      hit_failed = true;
      cache->report_hit_failure(key);
    }
    out->reset(new BlockSolver<T>(lower, opt));
    // When the cached entry just failed the warm path, overwrite it: leaving
    // it in place would make every future create() for this key pay the
    // failed warm attempt plus a cold build forever. (A quarantined key
    // rejects the insert until its tombstone expires.)
    cache->insert(std::make_shared<PlanArtifact<T>>((*out)->capture_artifact()),
                  /*overwrite=*/hit_failed);
    return Status::Ok();
  }
  out->reset(new BlockSolver<T>(lower, opt));
  return Status::Ok();
}

template <class T>
std::uint64_t BlockSolver<T>::options_fingerprint(const Options& opt) {
  const auto f64 = [](double v) {
    std::uint64_t u = 0;
    std::memcpy(&u, &v, sizeof u);
    return u;
  };
  std::uint64_t h = 0x62706c616e763101ULL;  // "bplanv1" | fingerprint version
  h = hash_combine(h, static_cast<std::uint64_t>(opt.scheme));
  h = hash_combine(h, static_cast<std::uint64_t>(opt.planner.stop_rows));
  h = hash_combine(h, static_cast<std::uint64_t>(opt.planner.max_depth));
  h = hash_combine(h, opt.planner.reorder ? 1 : 0);
  h = hash_combine(h, static_cast<std::uint64_t>(opt.planner.nseg));
  h = hash_combine(h, opt.adaptive ? 1 : 0);
  h = hash_combine(h, static_cast<std::uint64_t>(opt.forced_tri));
  h = hash_combine(h, static_cast<std::uint64_t>(opt.forced_square));
  h = hash_combine(h, f64(opt.thresholds.tri_nnz_row_levelset));
  h = hash_combine(h, static_cast<std::uint64_t>(
                          opt.thresholds.tri_nlevels_levelset));
  h = hash_combine(h, static_cast<std::uint64_t>(
                          opt.thresholds.tri_nlevels_unit_row));
  h = hash_combine(h, static_cast<std::uint64_t>(
                          opt.thresholds.tri_nlevels_cusparse));
  h = hash_combine(h, f64(opt.thresholds.sq_nnz_row_scalar));
  h = hash_combine(h, f64(opt.thresholds.sq_empty_scalar));
  h = hash_combine(h, f64(opt.thresholds.sq_empty_vector));
  // verify.enabled changes what the artifact must retain (stored matrix,
  // per-block CSRs); the other verify knobs and all runtime-only fields
  // (threads, tolerances, fault injection) do not affect the plan.
  h = hash_combine(h, opt.verify.enabled ? 1 : 0);
  // Tuning fields join only when enabled, so untuned fingerprints (and every
  // pre-tuner artifact) are byte-identical to version 1 of this hash.
  if (opt.tune.enabled) {
    h = hash_combine(h, 0x74756e65u);  // "tune"
    h = hash_combine(h, tune::device_fingerprint(opt.tune.gpu));
    h = hash_combine(h, static_cast<std::uint64_t>(opt.tune.sa_iterations));
    h = hash_combine(h, opt.tune.seed);
    // The search may swap the whole scheme for kHbmc, so its gate and the
    // HBMC planner knobs shape tuned plans even under kRecursive.
    h = hash_combine(h, opt.tune.consider_hbmc ? 1 : 0);
    h = hash_combine(h,
                     static_cast<std::uint64_t>(opt.planner.hbmc_block_rows));
    h = hash_combine(h,
                     static_cast<std::uint64_t>(opt.planner.hbmc_max_colors));
    h = hash_combine(h, f64(opt.thresholds.hbmc_depth_per_color));
  }
  // HBMC-only fields join under the same rule: every pre-HBMC fingerprint
  // is unchanged.
  if (opt.scheme == BlockScheme::kHbmc) {
    h = hash_combine(h, 0x68626d63u);  // "hbmc"
    h = hash_combine(h,
                     static_cast<std::uint64_t>(opt.planner.hbmc_block_rows));
    h = hash_combine(h,
                     static_cast<std::uint64_t>(opt.planner.hbmc_max_colors));
  }
  return h;
}

template <class T>
PlanArtifact<T> BlockSolver<T>::capture_artifact() const {
  PlanArtifact<T> art;
  art.structure = structure_hash_;
  art.options = options_fingerprint(opt_);
  art.plan = plan_;
  art.waves = waves_;
  art.nnz = nnz_;
  art.verify_captured = opt_.verify.enabled;
  if (art.verify_captured) {
    art.stored = stored_;
    art.norm_inf = norm_inf_;
  }
  art.build_ops = build_ops_;
  art.build_bytes = build_bytes_;
  art.tuned = tuned_;
  art.merge_width = merge_width_;
  art.tune_fell_back = tune_stats_.fell_back;
  art.tune_device = tuned_ ? tune::device_fingerprint(opt_.tune.gpu) : 0;
  art.oracle_default_ns = tune_stats_.oracle_default_ns;
  art.oracle_tuned_ns = tune_stats_.oracle_tuned_ns;

  art.tri.reserve(tri_.size());
  for (const TriBlock& blk : tri_) {
    TriBlockArtifact<T> t;
    t.r0 = blk.info.r0;
    t.r1 = blk.info.r1;
    t.kind = blk.info.kind;
    t.nlevels = blk.info.nlevels;
    t.nnz = blk.info.nnz;
    t.has_csr = art.verify_captured;
    if (t.has_csr) t.csr = blk.csr;
    switch (blk.info.kind) {
      case TriKernelKind::kCompletelyParallel:
        t.diag = blk.diag->diag();
        break;
      case TriKernelKind::kLevelSet:
        t.kernel_csr = blk.levelset->matrix();
        t.levels = blk.levelset->levels();
        break;
      case TriKernelKind::kSyncFree:
        t.csc = blk.syncfree->matrix_csc();
        t.strict_rows = blk.syncfree->strict_rows();
        t.in_degree = blk.syncfree->in_degree();
        break;
      case TriKernelKind::kCusparseLike:
        t.kernel_csr = blk.cusparse->matrix();
        t.levels = blk.cusparse->levels();
        t.kernel_first_level = blk.cusparse->kernel_first_levels();
        break;
    }
    art.tri.push_back(std::move(t));
  }

  art.squares.reserve(squares_.size());
  for (const SquareBlock& blk : squares_) {
    SquareBlockArtifact<T> q;
    q.ref = blk.info.ref;
    q.kind = blk.info.kind;
    q.nnz = blk.info.nnz;
    q.empty_ratio = blk.info.empty_ratio;
    q.csr = blk.csr;
    q.dcsr = blk.dcsr;
    art.squares.push_back(std::move(q));
  }
  return art;
}

template <class T>
Status BlockSolver<T>::save_artifact(const std::string& path) const {
  return blocktri::save_artifact(path, capture_artifact());
}

template <class T>
BlockSolver<T>::BlockSolver(const PlanArtifact<T>& art, const Options& opt)
    : opt_(opt) {
  structure_hash_ = art.structure;
  threads_ = resolve_threads(opt.threads);
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);

  plan_ = art.plan;
  waves_ = art.waves;
  nnz_ = art.nnz;
  build_ops_ = art.build_ops;
  build_bytes_ = art.build_bytes;
  tuned_ = art.tuned;
  merge_width_ = art.merge_width;
  tune_stats_.fell_back = art.tune_fell_back;
  tune_stats_.merge_width = art.merge_width;
  tune_stats_.oracle_default_ns = art.oracle_default_ns;
  tune_stats_.oracle_tuned_ns = art.oracle_tuned_ns;

  tri_.resize(art.tri.size());
  for (std::size_t t = 0; t < art.tri.size(); ++t) {
    const TriBlockArtifact<T>& in = art.tri[t];
    TriBlock& out = tri_[t];
    out.info.r0 = in.r0;
    out.info.r1 = in.r1;
    out.info.kind = in.kind;
    out.info.nlevels = in.nlevels;
    out.info.nnz = in.nnz;
    if (!in.populated) {
      // Foreign leaf of a shard slice: metadata only. The shard worker's
      // local schedule never issues this block, so no kernel is built.
      tri_info_.push_back(out.info);
      continue;
    }
    if (opt.verify.enabled) out.csr = in.csr;
    switch (in.kind) {
      case TriKernelKind::kCompletelyParallel:
        out.diag = std::make_unique<DiagonalSolver<T>>(in.diag);
        break;
      case TriKernelKind::kLevelSet:
        out.levelset = std::make_unique<LevelSetSolver<T>>(
            in.kernel_csr, in.levels, merge_width_);
        break;
      case TriKernelKind::kSyncFree:
        out.syncfree = std::make_unique<SyncFreeSolver<T>>(
            in.csc, in.strict_rows, in.in_degree);
        break;
      case TriKernelKind::kCusparseLike:
        out.cusparse = std::make_unique<CusparseLikeSolver<T>>(
            in.kernel_csr, in.levels, in.kernel_first_level);
        break;
    }
    tri_info_.push_back(out.info);
  }

  squares_.resize(art.squares.size());
  for (std::size_t q = 0; q < art.squares.size(); ++q) {
    const SquareBlockArtifact<T>& in = art.squares[q];
    SquareBlock& out = squares_[q];
    out.info.ref = in.ref;
    out.info.kind = in.kind;
    out.info.nnz = in.nnz;
    out.info.empty_ratio = in.empty_ratio;
    out.csr = in.csr;
    out.dcsr = in.dcsr;
    square_info_.push_back(out.info);
  }

  if (opt.verify.enabled) {
    stored_ = art.stored;
    norm_inf_ = art.norm_inf;
  }

  // Same simulated address layout as the cold constructor.
  sim::AddressSpace as;
  const auto n_u = static_cast<std::uint64_t>(plan_.n);
  x_base_ = as.reserve(n_u * sizeof(T));
  b_base_ = as.reserve(n_u * sizeof(T));
  aux_base_ = as.reserve(n_u * (sizeof(T) + 4));

  size_tri_scratch();
  ws_pool_ = std::make_unique<WorkspacePool<SolveWorkspace>>(
      typename WorkspacePool<SolveWorkspace>::Options{
          opt_.session.max_workspaces, opt_.session.block_when_exhausted});

  // Deterministic fault hook: a poisoned in-degree counter makes the
  // sync-free parallel spin-wait undrainable, exercising the bounded-spin
  // timeout (the serial and batched paths never consult the counters).
  if (opt_.fault.stuck_spin && opt_.fault.tri_block >= 0 &&
      opt_.fault.tri_block < static_cast<index_t>(tri_.size())) {
    TriBlock& blk = tri_[static_cast<std::size_t>(opt_.fault.tri_block)];
    if (blk.syncfree != nullptr)
      blk.syncfree->poison_in_degree_for_testing(0, 1);
  }
}

template <class T>
Status BlockSolver<T>::create_from_artifact(
    std::shared_ptr<const PlanArtifact<T>> art, const Options& opt,
    std::unique_ptr<BlockSolver<T>>* out) {
  BLOCKTRI_CHECK(out != nullptr);
  if (art == nullptr)
    return Status(StatusCode::kInvalidArgument, "artifact is null");
  if (options_fingerprint(opt) != art->options)
    return Status(
        StatusCode::kInvalidArgument,
        "options fingerprint differs from the one the artifact was captured "
        "under (plan-affecting fields — scheme, planner, kernel selection, "
        "thresholds, verify.enabled — must match exactly)");
  if (Status st = validate_artifact(*art); !st.ok()) return st;
  // validate_artifact should have rejected anything the sub-solver adoption
  // checks would trip over, but an invariant throw from artifact-derived
  // state must still come back as a Status — this is a Status-returning
  // entry point, and create()'s fall-back-to-cold-build contract depends on
  // seeing the failure rather than an escaping exception.
  try {
    out->reset(new BlockSolver<T>(*art, opt));
  } catch (const Error& e) {
    return e.status();
  }
  return Status::Ok();
}

template <class T>
Status BlockSolver<T>::create_from_file(const std::string& path,
                                        const Csr<T>& lower,
                                        const Options& opt,
                                        std::unique_ptr<BlockSolver<T>>* out,
                                        PlanCache<T>* cache) {
  BLOCKTRI_CHECK(out != nullptr);
  if (Status st = check_lower_triangular(lower); !st.ok()) return st;

  // Transient I/O failures (kIoError: racing writers, flaky network mounts)
  // retry with jittered exponential backoff; permanent artifact rejections
  // (checksum, version, malformed sections) fail immediately — retrying a
  // deterministic failure only adds latency.
  auto art = std::make_shared<PlanArtifact<T>>();
  const int attempts = std::max(1, opt.session.artifact_retry_attempts);
  Rng jitter_rng(0x61727472792aULL ^
                 static_cast<std::uint64_t>(
                     std::chrono::steady_clock::now().time_since_epoch()
                         .count()));
  Status load = Status::Ok();
  for (int a = 0; a < attempts; ++a) {
    if (a > 0) {
      const double base_ms = opt.session.artifact_retry_backoff_ms *
                             static_cast<double>(1 << (a - 1));
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(
              base_ms * jitter_rng.uniform(0.5, 1.5)));
    }
    load = load_artifact(path, art.get());
    if (load.ok()) {
      if (a > 0 && cache != nullptr) cache->note_retry_success();
      break;
    }
    if (load.code() != StatusCode::kIoError) return load;  // permanent
  }
  if (!load.ok()) return load;

  if (blocktri::structure_hash(lower) != art->structure)
    return Status(StatusCode::kStructureMismatch,
                  "artifact '" + path +
                      "' was captured from a matrix with a different "
                      "sparsity pattern");
  std::unique_ptr<BlockSolver<T>> solver;
  auto art_for_cache = art;
  if (Status st = create_from_artifact(std::move(art), opt, &solver);
      !st.ok())
    return st;
  if (Status st = solver->refresh_values(lower); !st.ok()) return st;
  // Only a fully rehydrated artifact is worth caching; first-writer-wins
  // keeps an existing (already proven) entry.
  if (cache != nullptr) cache->insert(std::move(art_for_cache), false);
  *out = std::move(solver);
  return Status::Ok();
}

template <class T>
Status BlockSolver<T>::refresh_values(const Csr<T>& lower) {
  if (Status st = check_lower_triangular(lower); !st.ok()) return st;
  if (lower.nrows != plan_.n || lower.nnz() != nnz_ ||
      blocktri::structure_hash(lower) != structure_hash_)
    return Status(StatusCode::kStructureMismatch,
                  "refresh_values requires the exact sparsity pattern this "
                  "solver was analyzed for");
  // Invariant checks past this point (permute_symmetric's permutation
  // check, the sub-solvers' structure checks) throw blocktri::Error; for a
  // solver rehydrated from an artifact they indict the artifact, not the
  // caller, and must surface as a Status so create()'s cache-hit path can
  // fall back to a cold build instead of unwinding out of the Status API.
  try {
    return refresh_values_impl(lower);
  } catch (const Error& e) {
    return e.status();
  }
}

template <class T>
Status BlockSolver<T>::refresh_values_impl(const Csr<T>& lower) {
  // permute_symmetric is canonical (sorted rows), so one application of the
  // composite permutation reproduces the cold constructor's stored matrix.
  Csr<T> stored = permute_symmetric(lower, plan_.new_of_old);

  for (TriBlock& blk : tri_) {
    Csr<T> sub = extract_block(stored, blk.info.r0, blk.info.r1, blk.info.r0,
                               blk.info.r1);
    if (opt_.verify.enabled) blk.csr.val = sub.val;
    switch (blk.info.kind) {
      case TriKernelKind::kCompletelyParallel: {
        StrictLowerSplit<T> split = split_diagonal(sub);
        blk.diag->refresh_values(std::move(split.diag));
        break;
      }
      case TriKernelKind::kLevelSet:
        blk.levelset->refresh_values(sub);
        break;
      case TriKernelKind::kSyncFree:
        blk.syncfree->refresh_values(sub);
        break;
      case TriKernelKind::kCusparseLike:
        blk.cusparse->refresh_values(sub);
        break;
    }
  }

  for (SquareBlock& blk : squares_) {
    Csr<T> sub = extract_block(stored, blk.info.ref.r0, blk.info.ref.r1,
                               blk.info.ref.c0, blk.info.ref.c1);
    const bool dcsr = blk.info.kind == SpmvKernelKind::kScalarDcsr ||
                      blk.info.kind == SpmvKernelKind::kVectorDcsr;
    if (dcsr && blk.info.nnz != 0) {
      // csr_to_dcsr keeps values in row-major order, so the block's value
      // stream maps 1:1 onto the DCSR value array.
      BLOCKTRI_CHECK(sub.val.size() == blk.dcsr.val.size());
      blk.dcsr.val = std::move(sub.val);
    } else {
      BLOCKTRI_CHECK(sub.val.size() == blk.csr.val.size());
      blk.csr.val = std::move(sub.val);
    }
  }

  if (opt_.verify.enabled) {
    norm_inf_ = 0.0;
    for (index_t i = 0; i < stored.nrows; ++i) {
      double s = 0.0;
      for (offset_t k = stored.row_ptr[static_cast<std::size_t>(i)];
           k < stored.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        s += std::fabs(
            static_cast<double>(stored.val[static_cast<std::size_t>(k)]));
      norm_inf_ = std::max(norm_inf_, s);
    }
    stored_ = std::move(stored);
  }
  return Status::Ok();
}

template <class T>
Status BlockSolver<T>::run_steps_checked(std::vector<T>& bw,
                                         std::vector<T>& xw, SolveReport* rep,
                                         ThreadPool* epool,
                                         const ExecControl* ctl,
                                         T* tri_scratch) const {
  // Steps stay sequential here — the ladder needs each block's output
  // inspected before its dependents run — but kernels still use this call's
  // arbitrated pool. With the pool in hand the sync-free scratch is still
  // safe to lend: the steps below never overlap.
  rep->steps_completed = 0;  // progress of this pass (attempt or refinement)
  for (const ExecStep& step : plan_.steps) {
    if (ctl != nullptr && !ctl->check())
      return ctl->to_status("after " + std::to_string(rep->steps_completed) +
                            " of " + std::to_string(plan_.steps.size()) +
                            " plan steps");
    if (step.kind != ExecStep::Kind::kTri) {
      const SquareBlock& blk = squares_[static_cast<std::size_t>(step.index)];
      if (blk.info.nnz == 0) continue;  // skipped, like the plain executors
      exec_square(blk, xw.data() + blk.info.ref.c0,
                  bw.data() + blk.info.ref.r0, nullptr, epool);
      ++rep->steps_completed;
      continue;
    }
    const TriBlock& blk = tri_[static_cast<std::size_t>(step.index)];
    const index_t len = blk.info.r1 - blk.info.r0;
    const T* bb = bw.data() + blk.info.r0;
    T* xx = xw.data() + blk.info.r0;

    int attempt = 0;
    auto run = [&](auto&& solve_fn) {
      solve_fn();
      if (ctl != nullptr && ctl->tripped()) {
        // A spin timeout is healable — the rungs below never spin — so with
        // the ladder enabled it is consumed and treated as a failed attempt.
        // Deadline/cancel trips stay tripped; the check after the ladder
        // turns them into the terminal typed Status.
        if (opt_.verify.fallback) ctl->consume_spin_trip();
        return false;
      }
      if (step.index == this->opt_.fault.tri_block &&
          attempt < this->opt_.fault.corrupt_attempts && len > 0)
        xx[0] = std::numeric_limits<T>::quiet_NaN();
      ++attempt;
      return all_finite(xx, len);
    };

    bool ok =
        run([&] { exec_tri(blk, bb, xx, nullptr, epool, tri_scratch, ctl); });
    if (!ok && ctl != nullptr && ctl->tripped())
      return ctl->to_status("in triangular block " +
                            std::to_string(step.index));
    if (!ok && opt_.verify.fallback) {
      if (blk.info.kind != TriKernelKind::kLevelSet) {
        rep->fallbacks.push_back({step.index, blk.info.kind,
                                  FallbackEvent::Rung::kLevelSet});
        const LevelSetSolver<T> ls(blk.csr);
        ok = run([&] { ls.solve(bb, xx, nullptr); });
      }
      if (!ok) {
        rep->fallbacks.push_back(
            {step.index, blk.info.kind, FallbackEvent::Rung::kSerial});
        ok = run([&] { sptrsv_serial_raw(blk.csr, bb, xx); });
      }
    }
    if (!ok)
      return Status(StatusCode::kNumericalBreakdown,
                    "triangular block " + std::to_string(step.index) +
                        " (rows " + std::to_string(blk.info.r0) + ".." +
                        std::to_string(blk.info.r1) +
                        ") produced non-finite output on every rung of the "
                        "fallback ladder");
    ++rep->steps_completed;
  }
  return Status::Ok();
}

template <class T>
void BlockSolver<T>::residual_into(const T* xw, const T* bw0, T* r,
                                   ThreadPool* epool) const {
  auto row_range = [&](index_t i0, index_t i1) {
    for (index_t i = i0; i < i1; ++i) {
      double acc = 0.0;
      for (offset_t k = stored_.row_ptr[static_cast<std::size_t>(i)];
           k < stored_.row_ptr[static_cast<std::size_t>(i) + 1]; ++k)
        acc += static_cast<double>(stored_.val[static_cast<std::size_t>(k)]) *
               static_cast<double>(
                   xw[static_cast<std::size_t>(
                       stored_.col_idx[static_cast<std::size_t>(k)])]);
      r[static_cast<std::size_t>(i)] =
          static_cast<T>(static_cast<double>(bw0[static_cast<std::size_t>(i)]) -
                         acc);
    }
  };
  if (parallel_enabled(epool) && nnz_ >= kHostParallelMinNnz) {
    epool->run_partition(
        balanced_row_partition(stored_.row_ptr, stored_.nrows, epool->size()),
        [&](index_t i0, index_t i1, int) { row_range(i0, i1); });
  } else {
    row_range(0, stored_.nrows);
  }
}

template <class T>
double BlockSolver<T>::residual_norm(const T* xw, const T* bw0,
                                     std::vector<T>& rw,
                                     ThreadPool* epool) const {
  const std::size_t n = static_cast<std::size_t>(plan_.n);
  rw.resize(n);
  residual_into(xw, bw0, rw.data(), epool);
  double rmax = 0.0, xmax = 0.0, bmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rmax = std::max(rmax, std::fabs(static_cast<double>(rw[i])));
    xmax = std::max(xmax, std::fabs(static_cast<double>(xw[i])));
    bmax = std::max(bmax, std::fabs(static_cast<double>(bw0[i])));
  }
  const double denom = norm_inf_ * xmax + bmax;
  if (denom == 0.0) return rmax == 0.0 ? 0.0 : rmax;
  return rmax / denom;
}

template <class T>
void BlockSolver<T>::size_tri_scratch() {
  index_t longest = 0;
  for (const TriBlock& blk : tri_)
    if (blk.info.kind == TriKernelKind::kSyncFree)
      longest = std::max(longest, blk.info.r1 - blk.info.r0);
  // kRhsTile columns is syncfree's per-visit panel width, so this one buffer
  // covers both the single-RHS and the batched serial accumulators. Each
  // leased workspace sizes its scratch to this once, at creation.
  tri_scratch_len_ = static_cast<std::size_t>(longest) *
                     static_cast<std::size_t>(kRhsTile);
}

template <class T>
void BlockSolver<T>::accumulate_op_stats(SolveReport* rep) const {
  const auto idx_val =
      static_cast<std::int64_t>(sizeof(index_t) + sizeof(T));
  const auto row_overhead =
      static_cast<std::int64_t>(sizeof(offset_t) + 2 * sizeof(T));
  for (const TriBlock& blk : tri_) {
    rep->flops += 2 * static_cast<std::int64_t>(blk.info.nnz);
    rep->bytes += static_cast<std::int64_t>(blk.info.nnz) * idx_val +
                  static_cast<std::int64_t>(blk.info.r1 - blk.info.r0) *
                      row_overhead;
    if (blk.info.kind == TriKernelKind::kLevelSet &&
        blk.levelset != nullptr) {
      const index_t groups = blk.levelset->exec_groups();
      rep->levels_executed += groups;
      rep->levels_merged += blk.info.nlevels - groups;
    }
  }
  for (const SquareBlock& blk : squares_) {
    if (blk.info.nnz == 0) continue;
    rep->flops += 2 * static_cast<std::int64_t>(blk.info.nnz);
    const bool dcsr = blk.info.kind == SpmvKernelKind::kScalarDcsr ||
                      blk.info.kind == SpmvKernelKind::kVectorDcsr;
    // DCSR kernels iterate only the stored (non-empty) rows, but each of
    // those rows additionally streams its row id from the indirection array.
    const auto rows =
        dcsr ? static_cast<std::int64_t>(blk.dcsr.row_ids.size())
             : static_cast<std::int64_t>(blk.info.ref.r1 - blk.info.ref.r0);
    const auto per_row =
        row_overhead +
        (dcsr ? static_cast<std::int64_t>(sizeof(index_t)) : 0);
    rep->bytes +=
        static_cast<std::int64_t>(blk.info.nnz) * idx_val + rows * per_row;
  }
}

template <class T>
double BlockSolver<T>::default_residual_tolerance() const {
  const double eps = static_cast<double>(std::numeric_limits<T>::epsilon());
  return 100.0 * static_cast<double>(std::max<index_t>(plan_.n, 1)) * eps;
}

template <class T>
SolveResult<T> BlockSolver<T>::solve_checked(const std::vector<T>& b) const {
  return solve_checked(b, SolveControls{});
}

template <class T>
SolveResult<T> BlockSolver<T>::solve_checked(
    const std::vector<T>& b, const SolveControls& controls) const {
  SolveResult<T> res;
  if (!opt_.verify.enabled) {
    res.status =
        Status(StatusCode::kInvalidArgument,
               "solve_checked requires Options::verify.enabled at build time");
    return res;
  }
  if (b.size() != static_cast<std::size_t>(plan_.n)) {
    res.status = Status(StatusCode::kInvalidArgument,
                        "rhs has " + std::to_string(b.size()) +
                            " entries, expected " + std::to_string(plan_.n));
    return res;
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (!std::isfinite(static_cast<double>(b[i]))) {
      res.status = Status(StatusCode::kNonFinite,
                          "rhs entry " + std::to_string(i) + " is not finite",
                          static_cast<std::int64_t>(i));
      return res;
    }
  }

  const int prev = in_flight_.fetch_add(1, std::memory_order_relaxed);
  InFlightGuard in_flight_guard{&in_flight_};
  if (prev > 0 && opt_.session.strict_reentrancy) {
    res.status = Status(StatusCode::kReentrantSolve,
                        "another solve is in flight on this solver and "
                        "Options::session.strict_reentrancy is set");
    return res;
  }
  const ExecControl ctl(controls);

  res.report.tolerance = opt_.verify.tolerance > 0.0
                             ? opt_.verify.tolerance
                             : default_residual_tolerance();
  if (opt_.collect_stats) accumulate_op_stats(&res.report);
  res.report.steps_total = static_cast<index_t>(plan_.steps.size());

  auto lease = acquire_workspace(&ctl);
  if (!lease) {
    res.status = ctl.tripped()
                     ? ctl.to_status("while waiting for a solve workspace")
                     : pool_exhausted_status();
    return res;
  }
  SolveWorkspace& ws = *lease;
  if (opt_.fault.hold_lease_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.fault.hold_lease_ms));

  const std::size_t n = static_cast<std::size_t>(plan_.n);
  ws.bw0.resize(n);
  ws.bw.resize(n);
  ws.xw.resize(n);
  // One fused scatter produces the pristine permuted rhs; each attempt's
  // solve input is a plain copy of it — the residual and refinement rounds
  // reuse ws.bw0 instead of re-permuting b each time.
  scatter_permuted(b.data(), plan_.new_of_old, ws.bw0.data());

  // Pool arbitration (see the unchecked solve): losing the try_lock is
  // itself a whole-solve degradation — recorded, then run serial.
  std::unique_lock<std::mutex> pool_lk(exec_mu_, std::defer_lock);
  const bool have_pool = pool_ != nullptr && pool_lk.try_lock();
  if (pool_ != nullptr && !have_pool)
    res.report.degrades.push_back({DegradeEvent::Kind::kParallelToSerial,
                                   StatusCode::kReentrantSolve});

  // The whole-solve degradation ladder. Rung 0 is the configured execution;
  // each further rung demotes one axis (parallel → serial, then SIMD
  // vector → blocked → strict). Demoted SIMD rungs run serial, so the
  // thread-local path override is seen by every kernel of the attempt.
  const std::vector<LadderRung> rungs =
      build_ladder(have_pool, opt_.verify.fallback);
  const SolveReport base_report = res.report;  // pre-attempt snapshot
  Status final_status = Status::Ok();
  for (std::size_t a = 0; a < rungs.size(); ++a) {
    const LadderRung& rung = rungs[a];
    SolveReport rep = base_report;  // fallbacks describe this attempt only
    rep.degrades = std::move(res.report.degrades);  // accumulate across rungs
    rep.attempts = static_cast<int>(a) + 1;
    ThreadPool* epool = rung.use_pool ? pool_.get() : nullptr;
    T* scratch = epool != nullptr || ws.tri_scratch.empty()
                     ? nullptr
                     : ws.tri_scratch.data();
    std::optional<simd::ScopedPathOverride> demoted;
    if (rung.forced_path >= 0)
      demoted.emplace(static_cast<simd::Path>(rung.forced_path));

    std::copy(ws.bw0.begin(), ws.bw0.end(), ws.bw.begin());
    // On breakdown the partial solution is returned for diagnosis; zeroing
    // the reused workspace keeps untouched rows at 0 as a fresh vector had.
    std::fill(ws.xw.begin(), ws.xw.end(), T(0));

    Status st = run_steps_checked(ws.bw, ws.xw, &rep, epool, &ctl, scratch);
    double resid = 0.0;
    if (st.ok()) {
      // Deterministic fault hook: a wrong-but-finite solution slips past the
      // per-block finiteness checks, so only the residual can reject it.
      if (rep.attempts <= opt_.fault.corrupt_solve_attempts && n > 0)
        ws.xw[0] = T(1e30);

      // Normwise residual in the permuted space; permutations preserve max
      // norms, so this equals the residual of the user-facing system.
      resid = residual_norm(ws.xw.data(), ws.bw0.data(), ws.rw, epool);
      rep.residual_checked = true;
      for (int it = 0;
           it < opt_.verify.max_refinements && resid > rep.tolerance &&
           ctl.check();
           ++it) {
        // One round of iterative refinement: solve L d = b − L x, x += d.
        ws.rw.resize(n);
        ws.dw.resize(n);
        residual_into(ws.xw.data(), ws.bw0.data(), ws.rw.data(), epool);
        const index_t attempt_steps = rep.steps_completed;
        const bool refined =
            run_steps_checked(ws.rw, ws.dw, &rep, epool, &ctl, scratch).ok();
        rep.steps_completed = attempt_steps;
        if (!refined) break;
        for (std::size_t i = 0; i < n; ++i) ws.xw[i] += ws.dw[i];
        resid = residual_norm(ws.xw.data(), ws.bw0.data(), ws.rw, epool);
        ++rep.refinements;
      }
      rep.residual = resid;
      st = resid <= rep.tolerance
               ? Status::Ok()
               : Status(StatusCode::kResidualTooLarge,
                        "residual " + std::to_string(resid) +
                            " exceeds tolerance " +
                            std::to_string(rep.tolerance));
    }

    res.report = std::move(rep);
    final_status = std::move(st);
    if (final_status.ok()) break;
    // Deadline/cancel (and spin timeouts the disabled ladder left tripped)
    // are terminal: retrying against an expired budget only burns time.
    if (ctl.tripped()) break;
    if (a + 1 < rungs.size())
      res.report.degrades.push_back(
          {rungs[a + 1].entered_by, final_status.code()});
  }

  res.status = std::move(final_status);
  res.x.resize(n);
  gather_permuted(ws.xw.data(), plan_.new_of_old, res.x.data());
  return res;
}

template <class T>
Status BlockSolver<T>::run_steps_checked_many(
    std::vector<T>& bw, std::vector<T>& xw, index_t k,
    std::vector<SolveReport>* reps, ThreadPool* epool, const ExecControl* ctl,
    T* tri_scratch) const {
  const std::size_t n = static_cast<std::size_t>(plan_.n);
  index_t done = 0;  // panel-level progress, mirrored into every report
  const auto set_progress = [&] {
    for (SolveReport& rp : *reps) rp.steps_completed = done;
  };
  for (const ExecStep& step : plan_.steps) {
    if (ctl != nullptr && !ctl->check()) {
      set_progress();
      return ctl->to_status("after " + std::to_string(done) + " of " +
                            std::to_string(plan_.steps.size()) +
                            " plan steps");
    }
    if (step.kind != ExecStep::Kind::kTri) {
      const SquareBlock& blk = squares_[static_cast<std::size_t>(step.index)];
      if (blk.info.nnz == 0) continue;  // skipped, like the plain executors
      exec_square_many(blk, xw.data() + blk.info.ref.c0,
                       bw.data() + blk.info.ref.r0, k, epool, plan_.n,
                       PanelLayout::kColMajor);
      ++done;
      continue;
    }
    const TriBlock& blk = tri_[static_cast<std::size_t>(step.index)];
    const index_t len = blk.info.r1 - blk.info.r0;

    // Attempt 0: the selected kernel, batched over the whole panel. The
    // batched sync-free path never spins (it is the serial column-split
    // algorithm), so a trip here can only be a deadline/cancel — terminal.
    // The checked panel stays column-major: the per-column fallback ladder
    // below hands contiguous column slices to the single-RHS rungs.
    exec_tri_many(blk, bw.data() + blk.info.r0, xw.data() + blk.info.r0, k,
                  epool, tri_scratch, ctl, plan_.n, PanelLayout::kColMajor);
    if (ctl != nullptr && ctl->tripped()) {
      set_progress();
      return ctl->to_status("in triangular block " +
                            std::to_string(step.index));
    }
    const bool faulted = step.index == opt_.fault.tri_block &&
                         opt_.fault.corrupt_attempts > 0 && len > 0 &&
                         opt_.fault.column >= 0 && opt_.fault.column < k;
    if (faulted)
      xw[static_cast<std::size_t>(opt_.fault.column) * n +
         static_cast<std::size_t>(blk.info.r0)] =
          std::numeric_limits<T>::quiet_NaN();

    // A column that came out non-finite degrades alone through the
    // single-RHS rungs; the healthy columns keep the batched result.
    for (index_t c = 0; c < k; ++c) {
      T* xx = xw.data() + static_cast<std::size_t>(c) * n + blk.info.r0;
      const T* bb =
          bw.data() + static_cast<std::size_t>(c) * n + blk.info.r0;
      if (all_finite(xx, len)) continue;

      bool ok = false;
      if (opt_.verify.fallback) {
        int attempt = 1;  // the batched kernel above was attempt 0
        auto run = [&](auto&& solve_fn) {
          solve_fn();
          if (faulted && c == this->opt_.fault.column &&
              attempt < this->opt_.fault.corrupt_attempts)
            xx[0] = std::numeric_limits<T>::quiet_NaN();
          ++attempt;
          return all_finite(xx, len);
        };
        SolveReport& rep = (*reps)[static_cast<std::size_t>(c)];
        if (blk.info.kind != TriKernelKind::kLevelSet) {
          rep.fallbacks.push_back(
              {step.index, blk.info.kind, FallbackEvent::Rung::kLevelSet});
          const LevelSetSolver<T> ls(blk.csr);
          ok = run([&] { ls.solve(bb, xx, nullptr); });
        }
        if (!ok) {
          rep.fallbacks.push_back(
              {step.index, blk.info.kind, FallbackEvent::Rung::kSerial});
          ok = run([&] { sptrsv_serial_raw(blk.csr, bb, xx); });
        }
      }
      if (!ok) {
        set_progress();
        return Status(StatusCode::kNumericalBreakdown,
                      "triangular block " + std::to_string(step.index) +
                          " (rows " + std::to_string(blk.info.r0) + ".." +
                          std::to_string(blk.info.r1) +
                          ") produced non-finite output for panel column " +
                          std::to_string(c) +
                          " on every rung of the fallback ladder",
                      static_cast<std::int64_t>(c));
      }
    }
    ++done;
  }
  set_progress();
  return Status::Ok();
}

template <class T>
SolveManyResult<T> BlockSolver<T>::solve_many_checked(const std::vector<T>& B,
                                                      index_t k) const {
  return solve_many_checked(B, k, SolveControls{});
}

template <class T>
SolveManyResult<T> BlockSolver<T>::solve_many_checked(
    const std::vector<T>& B, index_t k, const SolveControls& controls) const {
  SolveManyResult<T> res;
  if (!opt_.verify.enabled) {
    res.status = Status(
        StatusCode::kInvalidArgument,
        "solve_many_checked requires Options::verify.enabled at build time");
    return res;
  }
  const std::size_t n = static_cast<std::size_t>(plan_.n);
  if (k < 0 || B.size() != n * static_cast<std::size_t>(k)) {
    res.status = Status(StatusCode::kInvalidArgument,
                        "panel has " + std::to_string(B.size()) +
                            " entries, expected n * k = " +
                            std::to_string(n * static_cast<std::size_t>(
                                                   std::max<index_t>(k, 0))));
    return res;
  }
  if (k == 0) return res;
  for (std::size_t i = 0; i < B.size(); ++i) {
    if (!std::isfinite(static_cast<double>(B[i]))) {
      res.status =
          Status(StatusCode::kNonFinite,
                 "panel entry " + std::to_string(i % n) + " of column " +
                     std::to_string(i / n) + " is not finite",
                 static_cast<std::int64_t>(i));
      return res;
    }
  }

  const int prev = in_flight_.fetch_add(1, std::memory_order_relaxed);
  InFlightGuard in_flight_guard{&in_flight_};
  if (prev > 0 && opt_.session.strict_reentrancy) {
    res.status = Status(StatusCode::kReentrantSolve,
                        "another solve is in flight on this solver and "
                        "Options::session.strict_reentrancy is set");
    return res;
  }
  const ExecControl ctl(controls);

  const double tol = opt_.verify.tolerance > 0.0
                         ? opt_.verify.tolerance
                         : default_residual_tolerance();
  res.reports.resize(static_cast<std::size_t>(k));
  for (SolveReport& rep : res.reports) {
    rep.tolerance = tol;
    rep.steps_total = static_cast<index_t>(plan_.steps.size());
  }
  if (opt_.collect_stats)
    for (SolveReport& rep : res.reports) accumulate_op_stats(&rep);

  auto lease = acquire_workspace(&ctl);
  if (!lease) {
    res.status = ctl.tripped()
                     ? ctl.to_status("while waiting for a solve workspace")
                     : pool_exhausted_status();
    return res;
  }
  SolveWorkspace& ws = *lease;
  if (opt_.fault.hold_lease_ms > 0)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.fault.hold_lease_ms));

  const std::size_t total = n * static_cast<std::size_t>(k);
  ws.bw0.resize(total);
  ws.bw.resize(total);
  ws.xw.resize(total);
  // Fused per-column scatter into the pristine permuted panel; each
  // attempt's solve input is a copy of it, and the per-column residuals
  // below read ws.bw0 directly instead of re-permuting B.
  for (index_t c = 0; c < k; ++c)
    scatter_permuted(B.data() + static_cast<std::size_t>(c) * n,
                     plan_.new_of_old,
                     ws.bw0.data() + static_cast<std::size_t>(c) * n);

  // Pool arbitration, as in solve_checked; panel-level degradations are
  // mirrored into every column's report.
  std::unique_lock<std::mutex> pool_lk(exec_mu_, std::defer_lock);
  const bool have_pool = pool_ != nullptr && pool_lk.try_lock();
  std::vector<DegradeEvent> degrades;
  if (pool_ != nullptr && !have_pool)
    degrades.push_back({DegradeEvent::Kind::kParallelToSerial,
                        StatusCode::kReentrantSolve});

  // Whole-solve ladder at panel granularity: a batched breakdown or any
  // column whose residual survives refinement retries the entire panel on
  // the next rung (per-column rescue inside run_steps_checked_many remains
  // the first line of defence).
  const std::vector<LadderRung> rungs =
      build_ladder(have_pool, opt_.verify.fallback);
  const std::vector<SolveReport> base_reports = res.reports;
  Status final_status = Status::Ok();
  for (std::size_t a = 0; a < rungs.size(); ++a) {
    const LadderRung& rung = rungs[a];
    res.reports = base_reports;  // fallbacks describe this attempt only
    for (SolveReport& rep : res.reports)
      rep.attempts = static_cast<int>(a) + 1;
    ThreadPool* epool = rung.use_pool ? pool_.get() : nullptr;
    T* scratch = epool != nullptr || ws.tri_scratch.empty()
                     ? nullptr
                     : ws.tri_scratch.data();
    std::optional<simd::ScopedPathOverride> demoted;
    if (rung.forced_path >= 0)
      demoted.emplace(static_cast<simd::Path>(rung.forced_path));

    std::copy(ws.bw0.begin(), ws.bw0.end(), ws.bw.begin());
    // Same partial-solution contract as solve_checked: untouched rows read 0.
    std::fill(ws.xw.begin(), ws.xw.end(), T(0));
    Status st = run_steps_checked_many(ws.bw, ws.xw, k, &res.reports, epool,
                                       &ctl, scratch);
    if (st.ok()) {
      // Deterministic fault hook (see solve_checked): a wrong-but-finite
      // column only the residual check can reject.
      if (static_cast<int>(a) < opt_.fault.corrupt_solve_attempts) {
        const index_t fc =
            opt_.fault.column >= 0 && opt_.fault.column < k ? opt_.fault.column
                                                            : 0;
        ws.xw[static_cast<std::size_t>(fc) * n] = T(1e30);
      }

      // Residual check and refinement stay per-column: each column carries
      // its own report, and refinement solves reuse the single-RHS ladder.
      double worst = 0.0;
      index_t worst_col = -1;
      ws.xc.resize(n);
      ws.bc.resize(n);
      for (index_t c = 0; c < k && !ctl.tripped(); ++c) {
        SolveReport& rep = res.reports[static_cast<std::size_t>(c)];
        const std::size_t off = static_cast<std::size_t>(c) * n;
        std::copy(ws.xw.begin() + static_cast<std::ptrdiff_t>(off),
                  ws.xw.begin() + static_cast<std::ptrdiff_t>(off + n),
                  ws.xc.begin());
        std::copy(ws.bw0.begin() + static_cast<std::ptrdiff_t>(off),
                  ws.bw0.begin() + static_cast<std::ptrdiff_t>(off + n),
                  ws.bc.begin());
        double resid = residual_norm(ws.xc.data(), ws.bc.data(), ws.rw, epool);
        rep.residual_checked = true;
        for (int it = 0;
             it < opt_.verify.max_refinements && resid > tol && ctl.check();
             ++it) {
          ws.rw.resize(n);
          ws.dw.resize(n);
          residual_into(ws.xc.data(), ws.bc.data(), ws.rw.data(), epool);
          const index_t panel_steps = rep.steps_completed;
          const bool refined =
              run_steps_checked(ws.rw, ws.dw, &rep, epool, &ctl, scratch)
                  .ok();
          rep.steps_completed = panel_steps;
          if (!refined) break;
          for (std::size_t i = 0; i < n; ++i) ws.xc[i] += ws.dw[i];
          resid = residual_norm(ws.xc.data(), ws.bc.data(), ws.rw, epool);
          ++rep.refinements;
        }
        rep.residual = resid;
        std::copy(ws.xc.begin(), ws.xc.end(),
                  ws.xw.begin() + static_cast<std::ptrdiff_t>(off));
        if (!(resid <= tol) && resid >= worst) {
          worst = resid;
          worst_col = c;
        }
      }
      st = worst_col >= 0
               ? Status(StatusCode::kResidualTooLarge,
                        "panel column " + std::to_string(worst_col) +
                            " residual " + std::to_string(worst) +
                            " exceeds tolerance " + std::to_string(tol),
                        static_cast<std::int64_t>(worst_col))
               : Status::Ok();
    }

    final_status = std::move(st);
    if (final_status.ok()) break;
    if (ctl.tripped()) break;  // deadline/cancel: terminal, never retried
    if (a + 1 < rungs.size())
      degrades.push_back({rungs[a + 1].entered_by, final_status.code()});
  }

  for (SolveReport& rep : res.reports) rep.degrades = degrades;
  res.status = std::move(final_status);
  res.X = unpermute_panel(ws.xw, plan_.new_of_old, k);
  return res;
}

template <class T>
offset_t BlockSolver<T>::nnz_in_squares() const {
  offset_t total = 0;
  for (const auto& sq : square_info_) total += sq.nnz;
  return total;
}

template <class T>
typename BlockSolver<T>::PreprocessStats BlockSolver<T>::preprocess_stats()
    const {
  PreprocessStats st;
  st.host_ops = plan_.host_ops + build_ops_;
  st.host_bytes = plan_.host_bytes + build_bytes_;
  sim::HostSim hs(sim::host_default());
  hs.ops(st.host_ops);
  hs.bytes(st.host_bytes);
  st.model_ms = hs.ms();
  return st;
}

template class BlockSolver<float>;
template class BlockSolver<double>;

}  // namespace blocktri
