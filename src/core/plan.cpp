#include "core/plan.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/levels.hpp"
#include "sparse/permute.hpp"
#include "sparse/triangular.hpp"

namespace blocktri {

std::string to_string(BlockScheme s) {
  switch (s) {
    case BlockScheme::kColumn: return "column-block";
    case BlockScheme::kRow: return "row-block";
    case BlockScheme::kRecursive: return "recursive-block";
    case BlockScheme::kHbmc: return "hbmc-block";
  }
  return "?";
}

std::vector<index_t> uniform_boundaries(index_t n, index_t nseg) {
  BLOCKTRI_CHECK(nseg >= 1);
  std::vector<index_t> b(static_cast<std::size_t>(nseg) + 1);
  for (index_t s = 0; s <= nseg; ++s)
    b[static_cast<std::size_t>(s)] = static_cast<index_t>(
        static_cast<std::int64_t>(n) * s / nseg);
  return b;
}

namespace {

/// More segments than rows would make uniform_boundaries repeat values,
/// yielding empty triangular blocks and zero-area squares in the plan.
/// Clamping keeps every segment non-empty (n == 0 still plans one empty
/// segment so the degenerate system flows through the normal executor).
index_t clamp_nseg(index_t n, index_t nseg) {
  return std::max<index_t>(1, std::min(nseg, n));
}

/// Invariant after clamping: every triangular segment is non-empty (strictly
/// increasing boundaries) except in the n == 0 single-segment plan.
void check_segments_nonempty(const std::vector<index_t>& b, index_t n) {
  for (std::size_t s = 0; s + 1 < b.size(); ++s)
    BLOCKTRI_CHECK_MSG(n == 0 || b[s] < b[s + 1],
                       "planner produced an empty triangular segment");
}

}  // namespace

std::int64_t BlockPlan::b_items_updated() const {
  // Triangular solves consume each b entry once ...
  std::int64_t total = n;
  // ... and every SpMV call updates its block's rows.
  for (const auto& sq : squares) total += sq.r1 - sq.r0;
  return total;
}

std::int64_t BlockPlan::x_items_loaded() const {
  std::int64_t total = 0;
  for (const auto& sq : squares) total += sq.c1 - sq.c0;
  return total;
}

BlockPlan plan_column(index_t n, index_t nseg) {
  nseg = clamp_nseg(n, nseg);
  BlockPlan p;
  p.scheme = BlockScheme::kColumn;
  p.n = n;
  p.new_of_old.resize(static_cast<std::size_t>(n));
  std::iota(p.new_of_old.begin(), p.new_of_old.end(), 0);
  p.tri_bounds = uniform_boundaries(n, nseg);
  check_segments_nonempty(p.tri_bounds, n);
  for (index_t si = 0; si < nseg; ++si) {
    p.steps.push_back({ExecStep::Kind::kTri, si});
    if (si + 1 < nseg) {
      // The rectangle below triangular block si: all remaining rows, this
      // segment's columns (Alg. 4 line 5 updates b for the whole rest).
      p.squares.push_back({p.tri_bounds[static_cast<std::size_t>(si) + 1], n,
                           p.tri_bounds[static_cast<std::size_t>(si)],
                           p.tri_bounds[static_cast<std::size_t>(si) + 1]});
      p.steps.push_back({ExecStep::Kind::kSquare,
                         static_cast<index_t>(p.squares.size()) - 1});
    }
  }
  return p;
}

BlockPlan plan_row(index_t n, index_t nseg) {
  nseg = clamp_nseg(n, nseg);
  BlockPlan p;
  p.scheme = BlockScheme::kRow;
  p.n = n;
  p.new_of_old.resize(static_cast<std::size_t>(n));
  std::iota(p.new_of_old.begin(), p.new_of_old.end(), 0);
  p.tri_bounds = uniform_boundaries(n, nseg);
  check_segments_nonempty(p.tri_bounds, n);
  for (index_t si = 0; si < nseg; ++si) {
    if (si > 0) {
      // The rectangle left of triangular block si: this segment's rows, all
      // already-solved columns (Alg. 5 line 4).
      p.squares.push_back({p.tri_bounds[static_cast<std::size_t>(si)],
                           p.tri_bounds[static_cast<std::size_t>(si) + 1], 0,
                           p.tri_bounds[static_cast<std::size_t>(si)]});
      p.steps.push_back({ExecStep::Kind::kSquare,
                         static_cast<index_t>(p.squares.size()) - 1});
    }
    p.steps.push_back({ExecStep::Kind::kTri, si});
  }
  return p;
}

namespace {

/// The recursion tree is fully determined by (n, stop_rows, max_depth):
/// splits always land at range midpoints. The planner therefore builds the
/// tree arithmetically first, then — when reordering is enabled — performs
/// ONE whole-matrix permutation per recursion DEPTH, composing the level
/// orders of every node at that depth. This keeps the preprocessing at
/// O(nnz · depth) rather than O(nnz · node-count): exactly the batching a
/// production implementation of §3.3 uses, and what keeps the paper's
/// preprocessing "moderate" (Table 5).
template <class T>
class RecursivePlanner {
 public:
  RecursivePlanner(const Csr<T>& lower, const PlannerOptions& opt,
                   ThreadPool* pool)
      : opt_(opt), pool_(pool), work_(lower) {
    plan_.scheme = BlockScheme::kRecursive;
    plan_.n = lower.nrows;
  }

  BlockPlan run(Csr<T>* permuted) {
    plan_.tri_bounds.push_back(0);
    if (plan_.n > 0) build_tree(0, plan_.n, 0);

    if (opt_.reorder) {
      for (const auto& depth_nodes : nodes_by_depth_) reorder_depth(depth_nodes);
    }

    if (cur_of_orig_.empty()) {
      plan_.new_of_old.resize(static_cast<std::size_t>(plan_.n));
      std::iota(plan_.new_of_old.begin(), plan_.new_of_old.end(), 0);
    } else {
      plan_.new_of_old = std::move(cur_of_orig_);
    }
    if (permuted != nullptr) *permuted = std::move(work_);
    return std::move(plan_);
  }

 private:
  void build_tree(index_t r0, index_t r1, int depth) {
    plan_.depth_used = std::max(plan_.depth_used, depth);
    if (nodes_by_depth_.size() <= static_cast<std::size_t>(depth))
      nodes_by_depth_.resize(static_cast<std::size_t>(depth) + 1);
    nodes_by_depth_[static_cast<std::size_t>(depth)].push_back({r0, r1});

    const index_t rows = r1 - r0;
    // §3.4 depth rule: split only while both halves stay at or above the
    // saturation size.
    if (rows / 2 < opt_.stop_rows || depth >= opt_.max_depth) {
      plan_.tri_bounds.push_back(r1);  // leaf
      plan_.steps.push_back(
          {ExecStep::Kind::kTri,
           static_cast<index_t>(plan_.tri_bounds.size()) - 2});
      return;
    }
    const index_t mid = r0 + rows / 2;
    build_tree(r0, mid, depth + 1);  // top triangle first (Alg. 6 line 5)
    plan_.squares.push_back({mid, r1, r0, mid});  // then the square update
    plan_.steps.push_back({ExecStep::Kind::kSquare,
                           static_cast<index_t>(plan_.squares.size()) - 1});
    build_tree(mid, r1, depth + 1);  // bottom triangle last (Alg. 6 line 7)
  }

  /// Level-orders every node range of one depth with a single global
  /// symmetric permutation. Nodes of one depth cover disjoint row ranges, so
  /// their level analyses (the preprocessing hot spot) run across the pool;
  /// each node writes only its own perm[r0, r1) slice.
  void reorder_depth(const std::vector<std::pair<index_t, index_t>>& nodes) {
    std::vector<index_t> perm(static_cast<std::size_t>(plan_.n));
    std::iota(perm.begin(), perm.end(), 0);
    const auto nnodes = static_cast<int>(nodes.size());
    std::vector<std::int64_t> node_ops(nodes.size(), 0);
    std::vector<std::int64_t> node_bytes(nodes.size(), 0);
    std::vector<char> node_moved(nodes.size(), 0);
    auto analyse_node = [&](int nd, ThreadPool* level_pool) {
      const auto [r0, r1] = nodes[static_cast<std::size_t>(nd)];
      const Csr<T> sub = extract_block(work_, r0, r1, r0, r1);
      const LevelSets ls = compute_level_sets(
          sub.nrows, sub.row_ptr, sub.col_idx, level_pool);
      // Level analysis pass: one visit per nonzero + per row.
      node_ops[static_cast<std::size_t>(nd)] = sub.nnz() + (r1 - r0);
      node_bytes[static_cast<std::size_t>(nd)] =
          sub.nnz() * static_cast<std::int64_t>(sizeof(index_t) + sizeof(T));
      if (ls.nlevels <= 1) return;  // already diagonal: nothing to move
      const std::vector<index_t> local = level_order_permutation(ls);
      for (index_t i = r0; i < r1; ++i)
        perm[static_cast<std::size_t>(i)] =
            r0 + local[static_cast<std::size_t>(i - r0)];
      node_moved[static_cast<std::size_t>(nd)] = 1;
    };
    if (parallel_enabled(pool_) && nnodes > 1) {
      pool_->run(nnodes, [&](int nd) { analyse_node(nd, nullptr); });
    } else {
      // A single node (the root depths) can still use the pool inside the
      // level analysis itself.
      for (int nd = 0; nd < nnodes; ++nd) analyse_node(nd, pool_);
    }
    bool any = false;
    for (std::size_t nd = 0; nd < nodes.size(); ++nd) {
      plan_.host_ops += node_ops[nd];
      plan_.host_bytes += node_bytes[nd];
      any = any || node_moved[nd] != 0;
    }
    if (!any) return;
    work_ = permute_symmetric(work_, perm);
    if (cur_of_orig_.empty()) {
      cur_of_orig_ = perm;
    } else {
      for (auto& cur : cur_of_orig_)
        cur = perm[static_cast<std::size_t>(cur)];
    }
    // One whole-matrix permutation pass per depth (ptr rebuild + scatter +
    // row sorts).
    plan_.host_ops += 2 * work_.nnz() + plan_.n;
    plan_.host_bytes += 2 * work_.nnz() *
                        static_cast<std::int64_t>(sizeof(index_t) + sizeof(T));
  }

  const PlannerOptions& opt_;
  ThreadPool* pool_;
  Csr<T> work_;
  std::vector<index_t> cur_of_orig_;  // empty until the first permutation
  std::vector<std::vector<std::pair<index_t, index_t>>> nodes_by_depth_;
  BlockPlan plan_;
};

}  // namespace

template <class T>
BlockPlan plan_recursive(const Csr<T>& lower, const PlannerOptions& opt,
                         Csr<T>* permuted, ThreadPool* pool) {
  BLOCKTRI_CHECK(lower.nrows == lower.ncols);
  BLOCKTRI_CHECK(opt.stop_rows >= 1);
  RecursivePlanner<T> planner(lower, opt, pool);
  return planner.run(permuted);
}

template BlockPlan plan_recursive(const Csr<float>&, const PlannerOptions&,
                                  Csr<float>*, ThreadPool*);
template BlockPlan plan_recursive(const Csr<double>&, const PlannerOptions&,
                                  Csr<double>*, ThreadPool*);

std::vector<std::vector<ExecStep>> compute_step_waves(
    const BlockPlan& plan, const std::vector<offset_t>& square_nnz) {
  struct Access {
    // Half-open row intervals per array; an empty interval is lo >= hi.
    index_t x_r0 = 0, x_r1 = 0;  // x range written (tri) or read (square)
    bool x_writes = false;
    index_t b_r0 = 0, b_r1 = 0;  // b range read (tri) or updated (square)
    bool b_writes = false;
  };
  auto access_of = [&](const ExecStep& step) {
    Access a;
    if (step.kind == ExecStep::Kind::kTri) {
      const auto t = static_cast<std::size_t>(step.index);
      a.x_r0 = plan.tri_bounds[t];
      a.x_r1 = plan.tri_bounds[t + 1];
      a.x_writes = true;
      a.b_r0 = a.x_r0;
      a.b_r1 = a.x_r1;
      a.b_writes = false;
    } else {
      const SquareBlockRef& sq =
          plan.squares[static_cast<std::size_t>(step.index)];
      a.x_r0 = sq.c0;
      a.x_r1 = sq.c1;
      a.x_writes = false;
      a.b_r0 = sq.r0;
      a.b_r1 = sq.r1;
      a.b_writes = true;  // y -= A·x is a read-modify-write
    }
    return a;
  };
  auto overlap = [](index_t a0, index_t a1, index_t b0, index_t b1) {
    return std::max(a0, b0) < std::min(a1, b1);
  };
  auto conflict = [&](const Access& a, const Access& b) {
    // Two steps conflict when they touch an overlapping range of the same
    // array and at least one writes it.
    if ((a.x_writes || b.x_writes) &&
        overlap(a.x_r0, a.x_r1, b.x_r0, b.x_r1))
      return true;
    if ((a.b_writes || b.b_writes) &&
        overlap(a.b_r0, a.b_r1, b.b_r0, b.b_r1))
      return true;
    return false;
  };

  std::vector<std::vector<ExecStep>> waves;
  std::vector<Access> wave_access;
  for (const ExecStep& step : plan.steps) {
    if (step.kind == ExecStep::Kind::kSquare &&
        !square_nnz.empty() &&
        square_nnz[static_cast<std::size_t>(step.index)] == 0)
      continue;  // empty square: a no-op, not a dependency
    const Access a = access_of(step);
    bool fits = !waves.empty();
    if (fits)
      for (const Access& w : wave_access)
        if (conflict(a, w)) {
          fits = false;
          break;
        }
    if (!fits) {
      waves.emplace_back();
      wave_access.clear();
    }
    waves.back().push_back(step);
    wave_access.push_back(a);
  }
  return waves;
}

bool equals(const BlockPlan& a, const BlockPlan& b) {
  return a.scheme == b.scheme && a.n == b.n && a.new_of_old == b.new_of_old &&
         a.tri_bounds == b.tri_bounds && a.squares == b.squares &&
         a.steps == b.steps && a.depth_used == b.depth_used &&
         a.host_ops == b.host_ops && a.host_bytes == b.host_bytes &&
         a.color_bounds == b.color_bounds &&
         a.hbmc_block_rows == b.hbmc_block_rows;
}

}  // namespace blocktri
