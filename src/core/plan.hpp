// Block partition planning — the three schemes of §3.1 (Fig. 2) plus the
// recursive level-set reordering of §3.3 (Fig. 3).
//
// A BlockPlan is scheme-agnostic: a permutation (identity for the column/row
// schemes), the leaf triangular ranges, the rectangular/square blocks, and
// the execution sequence interleaving them exactly as the arrows in Fig. 2
// prescribe. The executor (core/solver) walks the steps; the traffic
// analysis of Tables 1–2 reads the block shapes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "sparse/formats.hpp"

namespace blocktri {

enum class BlockScheme {
  kColumn,     // Fig. 2(a), Algorithm 4
  kRow,        // Fig. 2(b), Algorithm 5
  kRecursive,  // Fig. 2(c), Algorithm 6 / §3.3 improved layout
  kHbmc,       // hierarchical block multi-color ordering (DESIGN.md §16)
};

std::string to_string(BlockScheme s);

struct PlannerOptions {
  /// Stop splitting when the next (half) block would have fewer rows than
  /// this. The paper's rule is 20 x GPU core count (§3.4: 92160 on the Titan
  /// RTX); benches on the scaled suite pass a proportionally scaled value.
  index_t stop_rows = 92160;
  int max_depth = 30;
  /// Apply the §3.3 recursive level-set reordering (recursive scheme only).
  bool reorder = true;
  /// Number of segments for the column/row schemes.
  index_t nseg = 4;

  // HBMC scheme knobs (DESIGN.md §16). `hbmc_block_rows` is the aggregation
  // target W: rows greedily absorbed into a parent's block until it holds W
  // rows (default one cache line of doubles). The planner doubles W until
  // the color count fits under `hbmc_max_colors` (or W reaches n), so the
  // sync-step count is bounded regardless of dependency depth.
  index_t hbmc_block_rows = 8;
  index_t hbmc_max_colors = 16;
};

struct SquareBlockRef {
  index_t r0, r1;  // row range of the block (global, post-permutation)
  index_t c0, c1;  // column range
};

struct ExecStep {
  enum class Kind { kTri, kSquare };
  Kind kind;
  index_t index;  // into tri_bounds (tri i spans [tri_bounds[i],
                  // tri_bounds[i+1])) or into squares
};

struct BlockPlan {
  BlockScheme scheme = BlockScheme::kRecursive;
  index_t n = 0;
  std::vector<index_t> new_of_old;  // §3.3 permutation; identity if disabled
  std::vector<index_t> tri_bounds;  // nleaves + 1 ascending boundaries
  std::vector<SquareBlockRef> squares;
  std::vector<ExecStep> steps;
  int depth_used = 0;  // recursion depth actually reached

  // HBMC only (empty / 0 for the other schemes): ncolors + 1 ascending color
  // boundaries in permuted row space — every value is also a tri_bounds entry
  // (a color is a contiguous run of whole blocks, so the shard planner's
  // tri-bound cuts respect colors for free) — and the effective aggregation
  // width W after the planner's doubling loop.
  std::vector<index_t> color_bounds;
  index_t hbmc_block_rows = 0;

  index_t num_colors() const {
    return color_bounds.empty()
               ? index_t{0}
               : static_cast<index_t>(color_bounds.size()) - 1;
  }

  // Host-model preprocessing counters (level analyses + permutations).
  std::int64_t host_ops = 0;
  std::int64_t host_bytes = 0;

  index_t num_tri_blocks() const {
    return static_cast<index_t>(tri_bounds.size()) - 1;
  }

  /// Dense-model traffic counts for Tables 1 and 2: every SpMV updates all
  /// rows of its block and loads all columns of its block; every triangular
  /// solve consumes its b segment once (n total).
  std::int64_t b_items_updated() const;
  std::int64_t x_items_loaded() const;
};

/// Fig. 2(a): nseg column blocks; square si spans rows (b[si+1], n) x cols
/// segment si. No reordering. nseg is clamped to max(1, min(nseg, n)) so no
/// segment is ever empty.
BlockPlan plan_column(index_t n, index_t nseg);

/// Fig. 2(b): nseg row blocks; square si spans rows segment si x cols
/// [0, b[si]). No reordering. nseg is clamped to max(1, min(nseg, n)) so no
/// segment is ever empty.
BlockPlan plan_row(index_t n, index_t nseg);

/// Fig. 2(c) + §3.3: recursive halving with per-node level-set reordering.
/// Returns the plan and (through `permuted`) the reordered matrix the
/// executor should store — recomputing the permutation application would
/// double the preprocessing cost. A pool parallelises the per-node level
/// analyses of each recursion depth (nodes of one depth cover disjoint row
/// ranges); the resulting plan is identical to the serial one.
template <class T>
BlockPlan plan_recursive(const Csr<T>& lower, const PlannerOptions& opt,
                         Csr<T>* permuted, ThreadPool* pool = nullptr);

/// nseg+1 near-equal boundaries over [0, n].
std::vector<index_t> uniform_boundaries(index_t n, index_t nseg);

/// Exact equality of every plan field — the bitwise-identity checks of the
/// plan-persistence tests compare a deserialized plan against the cold one.
bool equals(const BlockPlan& a, const BlockPlan& b);

inline bool operator==(const SquareBlockRef& a, const SquareBlockRef& b) {
  return a.r0 == b.r0 && a.r1 == b.r1 && a.c0 == b.c0 && a.c1 == b.c1;
}

inline bool operator==(const ExecStep& a, const ExecStep& b) {
  return a.kind == b.kind && a.index == b.index;
}

/// Groups the plan's steps into "waves" of mutually independent steps for
/// the multithreaded executor: steps are taken in plan order and appended to
/// the current wave unless they conflict with a step already in it (tri
/// reads its b range and writes its x range; a square reads its x column
/// range and read-modify-writes its b row range). Barriers between waves
/// make any schedule of a wave's steps equivalent to the serial order.
/// `square_nnz[q]` (when provided, indexed like plan.squares) lets the
/// analysis drop empty square blocks — the no-op steps that otherwise chain
/// the two triangles of a block-diagonal matrix together.
std::vector<std::vector<ExecStep>> compute_step_waves(
    const BlockPlan& plan, const std::vector<offset_t>& square_nnz = {});

}  // namespace blocktri
