// BlockSolver — the library's main public API, implementing the paper's
// contribution end to end:
//
//   preprocessing (once):  partition (column / row / recursive scheme §3.1),
//                          recursive level-set reordering (§3.3),
//                          per-block adaptive kernel selection (§3.4),
//                          per-block storage (CSC-style triangles via the
//                          sub-solvers, CSR/DCSR squares, diagonal separate)
//   solve (many times):    walk the execution steps, calling the selected
//                          SpTRSV kernel on each triangular block and the
//                          selected SpMV kernel on each square block.
//
// Typical use:
//
//   blocktri::BlockSolver<double>::Options opt;
//   opt.planner.stop_rows = 4096;
//   blocktri::BlockSolver<double> solver(L, opt);   // preprocess once
//   std::vector<double> x = solver.solve(b);        // solve many rhs
//
// Simulated-GPU timing (the benchmark path) goes through solve_simulated.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/deadline.hpp"
#include "common/workspace_pool.hpp"
#include "core/adaptive.hpp"
#include "core/plan.hpp"
#include "sim/cache.hpp"
#include "sim/host_sim.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "spmv/kernels.hpp"
#include "sptrsv/cusparse_like.hpp"
#include "sptrsv/diagonal.hpp"
#include "sptrsv/levelset.hpp"
#include "sptrsv/syncfree.hpp"
#include "tune/search.hpp"

namespace blocktri {

template <class T>
struct PlanArtifact;  // persist/artifact.hpp
template <class T>
class PlanCache;  // persist/plan_cache.hpp

/// Time split between the triangular and SpMV parts of a blocked solve —
/// the quantity Fig. 4 plots.
struct BlockSolveBreakdown {
  double tri_ns = 0.0;
  double spmv_ns = 0.0;
  int tri_kernels = 0;
  int spmv_kernels = 0;
};

/// One engagement of the per-block fallback ladder: triangular block `block`
/// produced non-finite output on kernel `from`, and the solve degraded to
/// `to` (level-set first, then the serial reference).
struct FallbackEvent {
  index_t block = 0;
  TriKernelKind from = TriKernelKind::kSyncFree;
  enum class Rung { kLevelSet, kSerial } to = Rung::kLevelSet;
};

/// One rung of the whole-solve degradation ladder: a full retry attempt was
/// demoted along one axis — parallel execution handed back for a serial
/// pass, or the SIMD lowering stepped down vector → blocked → strict —
/// because of `reason` (kNumericalBreakdown, kSpinTimeout,
/// kResidualTooLarge, or kReentrantSolve when the solver's pool was busy
/// serving a concurrent caller). The per-block FallbackEvent ladder swaps
/// the *kernel* of one block; DegradeEvents demote the *whole solve*.
struct DegradeEvent {
  enum class Kind {
    kParallelToSerial,   // pool handed back; retry runs the serial executor
    kVectorToBlocked,    // SIMD lowering demoted to canonical blocked-scalar
    kBlockedToStrict,    // lowering demoted to the pre-SIMD sequential order
  };
  Kind kind = Kind::kParallelToSerial;
  StatusCode reason = StatusCode::kOk;
};

/// What solve_checked observed: the verified residual, how many refinement
/// rounds ran, and every fallback the degradation ladder fired — benches and
/// callers can see when and where a solve did not take the fast path.
///
/// The operation counters (flops, bytes, levels) are filled only when
/// Options::collect_stats is set: they expose the arithmetic intensity per
/// solve (2 flops per nonzero, structure + value bytes streamed) and how much
/// per-level overhead the level-merge optimisation removed. They count the
/// first ladder attempt of each block, not refinement/fallback re-runs.
struct SolveReport {
  bool residual_checked = false;
  double residual = 0.0;   // ‖Lx−b‖∞ / (‖L‖∞‖x‖∞ + ‖b‖∞), final
  double tolerance = 0.0;  // threshold the residual was compared against
  int refinements = 0;     // iterative-refinement rounds applied
  std::vector<FallbackEvent> fallbacks;  // per-block rungs, final attempt only
  std::vector<DegradeEvent> degrades;    // whole-solve rungs, all attempts
  int attempts = 0;              // whole-solve attempts run (1 = no ladder)
  index_t steps_completed = 0;   // plan steps finished (partial progress when
                                 // a deadline/cancel/spin-timeout fired)
  index_t steps_total = 0;       // plan steps the solve would run
  std::int64_t flops = 0;        // 2 per nonzero touched (+1 divide per row)
  std::int64_t bytes = 0;        // structure + value bytes streamed
  index_t levels_executed = 0;   // level-set groups actually run
  index_t levels_merged = 0;     // levels folded away by group merging
};

/// Outcome of solve_checked. `x` is populated even on kResidualTooLarge (the
/// best solution found, with the residual in the report); on
/// kNumericalBreakdown it holds the partial, non-finite solve for
/// diagnosis.
template <class T>
struct SolveResult {
  Status status;
  std::vector<T> x;
  SolveReport report;
  bool ok() const { return status.ok(); }
};

/// Outcome of solve_many_checked: the solution panel (n × k, column-major)
/// and one SolveReport per column. `status` is the worst column's outcome —
/// Ok only when every column verified; on kResidualTooLarge /
/// kNumericalBreakdown the per-column reports identify the offenders, and X
/// still holds the best solution found for every column.
template <class T>
struct SolveManyResult {
  Status status;
  std::vector<T> X;                  // n × k, column-major
  std::vector<SolveReport> reports;  // one per right-hand side
  bool ok() const { return status.ok(); }
};

template <class T>
class BlockSolver {
 public:
  struct Options {
    BlockScheme scheme = BlockScheme::kRecursive;
    PlannerOptions planner;
    /// Adaptive per-block kernel selection (Alg. 7). When false, every
    /// triangular block uses forced_tri and every square block forced_square
    /// — the ablation mode of bench/ablation_adaptive.
    bool adaptive = true;
    TriKernelKind forced_tri = TriKernelKind::kSyncFree;
    SpmvKernelKind forced_square = SpmvKernelKind::kScalarCsr;
    ThresholdTable thresholds;

    /// Host execution threads. 1 (the default) takes the serial paths
    /// unchanged — required by the simulator and the deterministic tests.
    /// 0 means std::thread::hardware_concurrency. The BLOCKTRI_THREADS
    /// environment variable, when set, overrides whatever is configured
    /// here (see resolve_threads). With more than one thread the solver
    /// owns a ThreadPool used for preprocessing (planning, CSC conversion,
    /// level analyses) and for solve()/solve_checked(). Every solve entry
    /// point is reentrant at any thread count: concurrent callers lease
    /// independent workspaces, and the pool is arbitrated so exactly one
    /// in-flight solve drives it while the others take the serial executor.
    int threads = 1;

    /// Fill the SolveReport operation counters (flops, bytes, levels
    /// executed/merged) during solve_checked/solve_many_checked. Off by
    /// default — the increments are cheap but not free, and most callers
    /// only want the residual machinery. Runtime-only: not part of the
    /// options fingerprint, so cached plans are reusable across it.
    bool collect_stats = false;

    /// Robustness knobs for solve_checked. `enabled` keeps the (permuted)
    /// matrix and per-block CSR copies around — required by the residual
    /// check, refinement and fallback ladder; disable to reclaim the memory
    /// when only the unchecked solve()/solve_simulated() paths are used.
    struct VerifyOptions {
      bool enabled = true;
      double tolerance = 0.0;  // 0 → 100 · n · eps(T)
      int max_refinements = 1;
      bool fallback = true;    // degrade adaptive → level-set → serial
    };
    VerifyOptions verify;

    /// Session/resilience knobs. All runtime-only: none participate in the
    /// options fingerprint, so cached plans are reusable across them.
    struct SessionOptions {
      /// Upper bound on concurrently leased solve workspaces (≥ 1). Each
      /// concurrent in-flight solve on this solver holds one lease; the pool
      /// never shrinks, so steady-state concurrency costs no allocation.
      int max_workspaces = 8;
      /// When every workspace is leased: true blocks the caller until one
      /// frees (backpressure), false fails the solve with kPoolExhausted.
      bool block_when_exhausted = true;
      /// Debug guard: when true, a second solve entering while one is in
      /// flight returns kReentrantSolve instead of proceeding. Off by
      /// default — concurrent solves are supported; this exists to flag
      /// callers that *assumed* exclusive use and want the old contract
      /// enforced as a typed error rather than silently sharing the pool.
      bool strict_reentrancy = false;
      /// create_from_file retries transient kIoError loads up to this many
      /// attempts total, sleeping a jittered exponential backoff
      /// (artifact_retry_backoff_ms · 2^attempt · U[0.5,1.5)) between them.
      /// Permanent failures (checksum/version/structure mismatch) never
      /// retry.
      int artifact_retry_attempts = 3;
      double artifact_retry_backoff_ms = 1.0;
    };
    SessionOptions session;

    /// Sharded multi-process execution (src/shard, DESIGN.md §15). All
    /// runtime-only: none participate in the options fingerprint — a shard
    /// worker rehydrates the same plan a single-process solver would use.
    /// Consumed by shard::ShardCoordinator and the solve service's shard
    /// backend; the in-process BlockSolver ignores every field.
    struct ShardOptions {
      /// Worker processes (shards). 0 disables sharding entirely (the
      /// service then solves in process); 1 is valid and useful in tests —
      /// one worker, full transport machinery.
      int processes = 0;
      /// How long the coordinator waits for any worker progress before
      /// declaring the epoch dead and typing the solve kWorkerLost.
      int epoch_timeout_ms = 10000;
      /// After a kWorkerLost, retry the solve on the coordinator's own
      /// in-process solver instead of surfacing the loss to the caller.
      bool fallback_inprocess = true;
      /// Directory for the per-shard .btpa slices (empty → TMPDIR or /tmp).
      std::string artifact_dir;
      /// Panel width the shared-memory segment is sized for (k ≤ max_panel).
      index_t max_panel = 32;
      /// Test-only deterministic fault hooks, mirroring FaultInjection:
      /// worker `kill_worker` SIGKILLs itself (or sleeps forever when
      /// `hang_worker` is set instead) after `after_steps` local steps of
      /// the next solve. Never set in production.
      struct Fault {
        int kill_worker = -1;   // shard index to kill (-1 = none)
        int hang_worker = -1;   // shard index to hang (-1 = none)
        int after_steps = 0;    // local steps to run before the fault
      };
      Fault fault;
    };
    ShardOptions shard;

    /// Cost-model-driven plan autotuning (DESIGN.md §13). Off by default —
    /// plans are then byte-for-byte identical to the untuned planner +
    /// Alg. 7 selector. When enabled, the cold build calibrates (or loads) a
    /// per-device CostModel, searches partition depth / per-block kernels /
    /// the level-merge schedule against the execution-simulator oracle, and
    /// adopts the winner; the tuned choices persist into the .btpa artifact
    /// so warm starts pay zero re-tuning. tune.enabled and the fields that
    /// change the chosen plan (device, SA budget, seed) join the options
    /// fingerprint only when enabled, so untuned fingerprints are unchanged.
    tune::TuneOptions tune;

    /// Test-only deterministic fault hook for the fault-injection suite:
    /// while solve_checked processes triangular block `tri_block`, the
    /// output of its first `corrupt_attempts` solve attempts (0 = the
    /// selected kernel, 1 = the next fallback rung, ...) is poisoned with
    /// NaN, forcing the ladder to engage. In solve_many_checked only panel
    /// column `column` is poisoned — the other columns must sail through
    /// untouched. Never set in production.
    struct FaultInjection {
      index_t tri_block = -1;
      int corrupt_attempts = 0;
      index_t column = 0;
      /// Poisons the checked solve's first `corrupt_solve_attempts` whole
      /// attempts with a large-but-finite wrong solution *after* the steps
      /// ran clean, so the per-block ladder sees nothing and the residual
      /// check must catch it — exercising the whole-solve degradation
      /// ladder's residual-rejection trigger.
      int corrupt_solve_attempts = 0;
      /// Bumps one in-degree counter of `tri_block`'s sync-free solver at
      /// construction, so its parallel spin-wait can never drain — the
      /// bounded-spin timeout and its spin-free fallbacks are exercised.
      bool stuck_spin = false;
      /// Holds the leased workspace for this long at solve entry —
      /// lets tests overlap leases deterministically to fill the pool.
      int hold_lease_ms = 0;
    };
    FaultInjection fault;
  };

  /// Preprocessing stage. `lower` must be lower triangular with a nonzero
  /// diagonal stored last in each row; throws blocktri::Error carrying the
  /// check_lower_triangular status otherwise.
  BlockSolver(const Csr<T>& lower, const Options& opt);

  /// Non-throwing factory: validates `lower` (check_lower_triangular) and
  /// returns the typed Status instead of throwing; on success *out owns the
  /// solver. With a `cache`, the solver is rehydrated from a cached plan
  /// when one matches (structure hash, options fingerprint) — performing
  /// zero level-set analysis and producing bitwise-identical solves — and a
  /// cold build's plan is captured into the cache for the next caller.
  static Status create(const Csr<T>& lower, const Options& opt,
                       std::unique_ptr<BlockSolver<T>>* out,
                       PlanCache<T>* cache = nullptr);

  // --- Plan persistence (persist/artifact.hpp, persist/plan_cache.hpp) -----

  /// Snapshots everything preprocessing computed — plan, waves, kernel
  /// selections, built block structures, verify state — as plain data.
  PlanArtifact<T> capture_artifact() const;

  /// capture_artifact() + persist::save_artifact in one call.
  Status save_artifact(const std::string& path) const;

  /// Rehydrates a solver from a (shared, immutable) artifact with zero
  /// re-analysis. Fails with kInvalidArgument when `opt`'s plan-affecting
  /// fields differ from those the artifact was captured under (fingerprint
  /// mismatch — e.g. verify wanted but not captured). The artifact's numeric
  /// values are adopted as-is; call refresh_values to install a new
  /// factorization with the same pattern.
  static Status create_from_artifact(
      std::shared_ptr<const PlanArtifact<T>> art, const Options& opt,
      std::unique_ptr<BlockSolver<T>>* out);

  /// load_artifact(path) + structure check against `lower` +
  /// create_from_artifact + refresh_values(lower): the full warm-start path.
  /// Adds kStructureMismatch when `lower`'s pattern differs from the one the
  /// artifact was captured from. Transient I/O failures (kIoError) are
  /// retried with jittered exponential backoff per opt.session; permanent
  /// artifact rejections (checksum, version, structure) fail immediately.
  /// With a `cache`, a successfully loaded artifact is inserted so later
  /// create() calls warm-hit, and retried-then-successful loads are counted
  /// in the cache stats.
  static Status create_from_file(const std::string& path, const Csr<T>& lower,
                                 const Options& opt,
                                 std::unique_ptr<BlockSolver<T>>* out,
                                 PlanCache<T>* cache = nullptr);

  /// Installs the numeric values of `lower` — which must have the exact
  /// sparsity pattern this solver was built for (checked via the structure
  /// hash; kStructureMismatch otherwise) — into every block structure
  /// without re-running any analysis. After Ok, solves behave exactly as if
  /// the solver had been cold-built from `lower`. Not thread safe with
  /// concurrent solves on this solver.
  Status refresh_values(const Csr<T>& lower);

  /// Canonical hash of the original (unpermuted) input pattern — the
  /// artifact/cache key (analysis/features.hpp structure_hash).
  std::uint64_t structure_hash() const { return structure_hash_; }

  /// Fingerprint of the plan-affecting Options fields (scheme, planner,
  /// kernel selection, thresholds, verify.enabled). Runtime-only fields
  /// (threads, tolerances, fault injection) are deliberately excluded — a
  /// cached plan is reusable across them.
  static std::uint64_t options_fingerprint(const Options& opt);

  /// Solves L x = b (host execution only).
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Allocation-free solve into caller storage: `b` and `x` are length-n
  /// arrays (they may not alias). The entry/exit permutations run as single
  /// fused scatter/gather passes over a leased workspace, so after the first
  /// (warm-up) call per shape this path performs zero heap allocations — the
  /// serving fast path, enforced by tests/test_alloc.cpp. Every solve entry
  /// point is reentrant: concurrent callers lease independent workspaces
  /// from a bounded pool (Options::session), and at threads = 1 concurrent
  /// results are bitwise identical to serial ones. Throws blocktri::Error
  /// only for the session faults the Status overload types (pool exhaustion
  /// in failing mode, strict-reentrancy violations, spin timeouts).
  void solve(const T* b, T* x) const;

  /// Resilient solve: like the raw solve() but cooperative — `controls`
  /// carries an optional deadline, cancel token and spin-wait budget that
  /// the executor polls at step/wave granularity (and the kernels poll at
  /// level/chunk granularity). On kDeadlineExceeded / kCancelled, `x` holds
  /// the partial permuted progress gathered back (diagnostic only) and
  /// `rep` (optional) reports steps_completed/steps_total. Returns
  /// kPoolExhausted when the workspace pool is drained in failing mode and
  /// kReentrantSolve under session.strict_reentrancy.
  Status solve(const T* b, T* x, const SolveControls& controls,
               SolveReport* rep = nullptr) const;

  /// Allocation-free batched solve into caller storage: `B` and `X` are
  /// n × k column-major panels. Same workspace/warm-up/reentrancy contract
  /// as the raw-pointer solve().
  void solve_many(const T* B, T* X, index_t k) const;

  /// Resilient batched solve — the solve_many counterpart of the
  /// Status-returning solve() overload, with the same controls semantics.
  Status solve_many(const T* B, T* X, index_t k,
                    const SolveControls& controls,
                    SolveReport* rep = nullptr) const;

  /// Gather/scatter batched solve: column c is read from Bs[c] and written
  /// to Xs[c] (each an n-vector), with no contiguous panel required on
  /// either side. The entry permutation gathers the scattered columns
  /// straight into the solver's interleaved workspace and the exit
  /// permutation scatters back, so callers batching k independent
  /// right-hand sides (e.g. the solve service's coalescing queue) pay zero
  /// panel-assembly or demux copies. Column c of the result is bitwise
  /// identical to solve(Bs[c], Xs[c]).
  Status solve_many(const T* const* Bs, T* const* Xs, index_t k,
                    const SolveControls& controls,
                    SolveReport* rep = nullptr) const;

  /// Batched solve of k right-hand sides against the same plan: `B` is an
  /// n × k column-major panel (column c occupies [c·n, (c+1)·n)) and the
  /// returned X uses the same layout. One pass over the execution steps
  /// solves every column per step, so the plan, per-block structures and
  /// level sets are streamed once per step instead of once per RHS. With
  /// threads > 1 the wave executor parallelises over steps × column chunks;
  /// every batched kernel is deterministic, so the result is bitwise
  /// identical to k independent solve() calls at threads = 1, at any thread
  /// count.
  std::vector<T> solve_many(const std::vector<T>& B, index_t k) const;

  /// Hardened solve: validates b (size, finiteness), runs the block solve
  /// with the per-block fallback ladder, then verifies the normwise residual
  /// and applies up to verify.max_refinements rounds of iterative refinement
  /// when it exceeds the tolerance. Never throws on bad numerics — the
  /// outcome is typed in SolveResult::status and itemised in the report.
  ///
  /// On top of the per-block ladder, a whole-solve degradation ladder
  /// (gated on verify.fallback) retries the complete solve on progressively
  /// more conservative rungs — parallel → serial executor, then SIMD
  /// vector → blocked → strict lowering — when an attempt ends in
  /// kNumericalBreakdown, a sync-free spin timeout, or a residual still
  /// above tolerance after refinement. Each demotion is recorded as a
  /// DegradeEvent; the report's fallbacks describe the final attempt only.
  SolveResult<T> solve_checked(const std::vector<T>& b) const;

  /// solve_checked with cooperative controls: deadline/cancel trips are
  /// terminal (never retried by the ladder) and surface as
  /// kDeadlineExceeded / kCancelled with partial progress in the report.
  SolveResult<T> solve_checked(const std::vector<T>& b,
                               const SolveControls& controls) const;

  /// Hardened batched solve: validates the panel, runs the batched block
  /// solve with the per-block fallback ladder engaged per column (a bad
  /// column degrades alone — the healthy columns keep their fast batched
  /// result), then verifies every column's normwise residual and applies
  /// per-column iterative refinement. Requires verify.enabled. The
  /// whole-solve degradation ladder applies at panel granularity: when a
  /// batched attempt breaks down or any column's residual survives
  /// refinement, the entire panel retries on the next rung.
  SolveManyResult<T> solve_many_checked(const std::vector<T>& B,
                                        index_t k) const;

  /// solve_many_checked with cooperative controls (see solve_checked).
  SolveManyResult<T> solve_many_checked(const std::vector<T>& B, index_t k,
                                        const SolveControls& controls) const;

  /// Solves and accounts simulated GPU time into `report`. `cache` carries
  /// locality across calls (pass the same cache for warm-cache measurements;
  /// nullptr models a cache-less device). `breakdown` (optional) splits the
  /// time between triangular and SpMV kernels.
  std::vector<T> solve_simulated(const std::vector<T>& b,
                                 const sim::GpuSpec& gpu,
                                 sim::CacheModel* cache,
                                 sim::SolveReport* report,
                                 BlockSolveBreakdown* breakdown = nullptr,
                                 bool fp64 = sizeof(T) == 8) const;

  // --- Introspection -------------------------------------------------------

  struct TriBlockInfo {
    index_t r0 = 0, r1 = 0;
    TriKernelKind kind = TriKernelKind::kSyncFree;
    index_t nlevels = 0;
    offset_t nnz = 0;
  };
  struct SquareBlockInfo {
    SquareBlockRef ref{};
    SpmvKernelKind kind = SpmvKernelKind::kScalarCsr;
    offset_t nnz = 0;
    double empty_ratio = 0.0;
  };

  const BlockPlan& plan() const { return plan_; }
  const std::vector<TriBlockInfo>& tri_info() const { return tri_info_; }
  const std::vector<SquareBlockInfo>& square_info() const {
    return square_info_;
  }

  index_t n() const { return plan_.n; }
  offset_t nnz() const { return nnz_; }

  /// Effective host thread count after the BLOCKTRI_THREADS override.
  int threads() const { return threads_; }

  /// Live counters of the leased-workspace pool: total leases, creations,
  /// blocking waits, failed (exhausted) acquisitions, and current in-use.
  WorkspacePoolStats workspace_stats() const { return ws_pool_->stats(); }

  /// The executor's step waves (mutually independent steps grouped for
  /// concurrent execution) — introspection for tests and the explorer.
  const std::vector<std::vector<ExecStep>>& step_waves() const {
    return waves_;
  }

  // --- Shard-worker hooks (src/shard) ---------------------------------------
  // A shard worker executes a *subsequence* of this solver's plan steps
  // against an externally managed interleaved panel (the shared-memory
  // x/b regions), so it needs the per-step executor without the surrounding
  // permute/workspace machinery. Serial (the worker is single-threaded);
  // bitwise-identical to the same step inside solve_many.

  /// Runs one plan step against interleaved n × k panels `bw`/`xw`
  /// (element (i, c) at i·k + c). `tri_scratch` must hold at least
  /// tri_scratch_len() elements when any sync-free block is present.
  void exec_plan_step_many(const ExecStep& step, T* bw, T* xw, index_t k,
                           T* tri_scratch,
                           const ExecControl* ctl = nullptr) const {
    exec_step_many(step, bw, xw, 0, k, nullptr, tri_scratch, ctl, k,
                   PanelLayout::kInterleaved);
  }

  /// Elements of sync-free serial scratch one solve needs (0 when no
  /// sync-free block exists).
  std::size_t tri_scratch_len() const { return tri_scratch_len_; }

  /// Nonzeros that ended up in square blocks — the §3.3 claim that the
  /// reordering concentrates work into the parallel-friendly SpMV parts.
  offset_t nnz_in_squares() const;

  /// Host-model preprocessing cost (Table 5 column 1).
  struct PreprocessStats {
    std::int64_t host_ops = 0;
    std::int64_t host_bytes = 0;
    double model_ms = 0.0;
  };
  PreprocessStats preprocess_stats() const;

  /// True when this solver was built with Options::tune.enabled (cold tuned
  /// build) or rehydrated from an artifact captured by one. Whether the
  /// search actually beat the default plan is tune_stats().fell_back.
  bool tuned() const { return tuned_; }
  /// Level-merge width every level-set block of this solver was built with.
  offset_t level_merge_width() const { return merge_width_; }
  /// Search diagnostics of the cold tuned build (zeros for untuned solvers
  /// and artifact rehydrations, which re-run no search).
  const tune::TuneStats& tune_stats() const { return tune_stats_; }

 private:
  /// Rehydration: adopt a captured artifact instead of analyzing. The
  /// fingerprint/verify preconditions are create_from_artifact's job.
  BlockSolver(const PlanArtifact<T>& art, const Options& opt);

  struct TriBlock {
    TriBlockInfo info;
    Csr<T> csr;  // retained when verify.enabled: fallback + refinement input
    std::unique_ptr<DiagonalSolver<T>> diag;
    std::unique_ptr<LevelSetSolver<T>> levelset;
    std::unique_ptr<SyncFreeSolver<T>> syncfree;
    std::unique_ptr<CusparseLikeSolver<T>> cusparse;
  };
  struct SquareBlock {
    SquareBlockInfo info;
    Csr<T> csr;    // populated for the CSR kernel kinds
    Dcsr<T> dcsr;  // populated for the DCSR kernel kinds
  };

  /// `tri_scratch` is the leased workspace's sync-free serial accumulator;
  /// callers lend it only when the per-call executor pool is null (wave
  /// steps of one call share a workspace, so concurrent steps must not share
  /// the scratch). `ctl` is the session's cooperative control (nullable).
  void exec_tri(const TriBlock& blk, const T* b, T* x, const TrsvSim* s,
                ThreadPool* pool = nullptr, T* tri_scratch = nullptr,
                const ExecControl* ctl = nullptr) const;
  void exec_square(const SquareBlock& blk, const T* x, T* y, const SpmvSim* s,
                   ThreadPool* pool = nullptr) const;
  /// One ExecStep of the host solve (no simulation, no ladder).
  void exec_step(const ExecStep& step, T* bw, T* xw, ThreadPool* pool,
                 T* tri_scratch, const ExecControl* ctl) const;
  /// Batched counterparts (host only): b/x/y point at the block's rows in
  /// the panel's first solved column (kColMajor, ld = plan_.n) or at the
  /// block's first row of an interleaved panel (kInterleaved, ld = the
  /// panel's row stride).
  void exec_tri_many(const TriBlock& blk, const T* b, T* x, index_t k,
                     ThreadPool* pool, T* tri_scratch, const ExecControl* ctl,
                     index_t ld, PanelLayout layout) const;
  void exec_square_many(const SquareBlock& blk, const T* x, T* y, index_t k,
                        ThreadPool* pool, index_t ld,
                        PanelLayout layout) const;
  /// One ExecStep of the batched host solve over panel columns [c0, c1).
  /// For kColMajor `ld` is plan_.n; for kInterleaved it is the full panel's
  /// row stride (an interleaved sub-panel is base + c0 with the same
  /// stride, so [c0, c1) needs no kernel-side column offsets).
  void exec_step_many(const ExecStep& step, T* bw, T* xw, index_t c0,
                      index_t c1, ThreadPool* pool, T* tri_scratch,
                      const ExecControl* ctl, index_t ld,
                      PanelLayout layout) const;
  /// refresh_values body; the public wrapper maps any escaping Error back to
  /// its Status so the warm path never throws through the Status API.
  Status refresh_values_impl(const Csr<T>& lower);
  /// One pass over the execution steps with the fallback ladder armed.
  /// Consumes bw (square blocks accumulate into it). `epool` is this call's
  /// arbitrated executor pool (null → serial), `ctl` the cooperative
  /// control: deadline/cancel trips return its typed Status immediately; a
  /// sync-free spin timeout is consumed and healed by the spin-free rungs
  /// when the ladder is enabled. `rep->steps_completed` tracks progress.
  Status run_steps_checked(std::vector<T>& bw, std::vector<T>& xw,
                           SolveReport* rep, ThreadPool* epool,
                           const ExecControl* ctl, T* tri_scratch) const;
  /// Batched ladder pass: the selected kernels run batched over all k
  /// columns; columns with non-finite output degrade individually through
  /// the single-RHS rungs, recorded in their own report.
  Status run_steps_checked_many(std::vector<T>& bw, std::vector<T>& xw,
                                index_t k, std::vector<SolveReport>* reps,
                                ThreadPool* epool, const ExecControl* ctl,
                                T* tri_scratch) const;
  /// r = bw0 − L·xw over the retained (permuted) matrix (length-n arrays;
  /// r may not alias xw/bw0).
  void residual_into(const T* xw, const T* bw0, T* r, ThreadPool* epool) const;
  /// Normwise relative residual, staged through the caller's `rw` scratch.
  double residual_norm(const T* xw, const T* bw0, std::vector<T>& rw,
                       ThreadPool* epool) const;
  double default_residual_tolerance() const;
  /// Adds the per-solve operation counters (Options::collect_stats) — flops
  /// and bytes from the block nnz, level-merge savings from the level-set
  /// blocks' execution groups.
  void accumulate_op_stats(SolveReport* rep) const;
  /// Computes tri_scratch_len_ (largest syncfree block × kRhsTile); called
  /// at the end of both constructors so leased workspaces size their
  /// scratch once and warm solves never grow it.
  void size_tri_scratch();

  /// Shared body of the panel solves. Exactly one of `B`/`Bs` is non-null
  /// (likewise `X`/`Xs`): the contiguous form reads column c at B + c·n,
  /// the gather form through the pointer table. Branching here instead of
  /// delegating through a built pointer array keeps the warm contiguous
  /// path allocation-free.
  Status solve_many_impl(const T* B, const T* const* Bs, T* X, T* const* Xs,
                         index_t k, const SolveControls& controls,
                         SolveReport* rep) const;

  Options opt_;
  std::uint64_t structure_hash_ = 0;  // of the original (unpermuted) pattern
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // only when threads_ > 1
  std::vector<std::vector<ExecStep>> waves_;
  BlockPlan plan_;
  offset_t nnz_ = 0;
  Csr<T> stored_;          // permuted matrix, retained when verify.enabled
  double norm_inf_ = 0.0;  // ‖L‖∞ of stored_
  std::vector<TriBlock> tri_;
  std::vector<SquareBlock> squares_;
  std::vector<TriBlockInfo> tri_info_;
  std::vector<SquareBlockInfo> square_info_;
  std::int64_t build_ops_ = 0;    // extraction/conversion cost counters
  std::int64_t build_bytes_ = 0;
  bool tuned_ = false;            // this solver runs an autotuned plan
  offset_t merge_width_ = kLevelMergeMaxWidth;  // level-set exec-group bound
  tune::TuneStats tune_stats_;    // cold tuned builds only
  // Simulated address layout: x, b and the per-solve scratch region.
  std::uint64_t x_base_ = 0, b_base_ = 0, aux_base_ = 0;

  /// Reusable buffers backing the allocation-free solve paths. Vectors only
  /// ever grow (resize never shrinks capacity), so after the first solve of
  /// each shape every entry point runs without heap traffic. Instances live
  /// in ws_pool_ and are leased per call — concurrent solves each hold a
  /// private workspace, which is what makes the solve entry points
  /// reentrant.
  struct SolveWorkspace {
    std::vector<T> bw;           // permuted rhs (n, or n·k for panels)
    std::vector<T> xw;           // permuted solution (n, or n·k)
    std::vector<T> bw0;          // checked paths: pristine permuted rhs
    std::vector<T> rw;           // refinement residual
    std::vector<T> dw;           // refinement correction
    std::vector<T> xc, bc;       // solve_many_checked per-column staging
    std::vector<T> tri_scratch;  // syncfree serial left_sum (× kRhsTile)
  };

  /// Leases a workspace from ws_pool_, sizing a freshly created one's
  /// sync-free scratch to tri_scratch_len_. When `ctl` is armed, a blocking
  /// acquisition races the caller's deadline/cancel instead of sleeping
  /// forever on a drained pool: the denial is tripped on `ctl` so callers
  /// surface ctl.to_status(). An empty lease with `ctl` untripped means the
  /// pool is exhausted in failing mode — callers surface
  /// pool_exhausted_status().
  typename WorkspacePool<SolveWorkspace>::Lease acquire_workspace(
      const ExecControl* ctl = nullptr) const;
  Status pool_exhausted_status() const;

  std::size_t tri_scratch_len_ = 0;  // sync-free serial scratch per workspace
  /// Bounded, never-shrinking pool of per-call workspaces (capacity and
  /// exhaustion behaviour from Options::session).
  std::unique_ptr<WorkspacePool<SolveWorkspace>> ws_pool_;
  /// Arbitrates pool_ between concurrent callers: the try_lock winner drives
  /// the parallel wave executor, every other in-flight solve runs serial.
  mutable std::mutex exec_mu_;
  /// In-flight solve count — the strict_reentrancy debug guard's evidence.
  mutable std::atomic<int> in_flight_{0};
};

}  // namespace blocktri
