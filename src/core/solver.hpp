// BlockSolver — the library's main public API, implementing the paper's
// contribution end to end:
//
//   preprocessing (once):  partition (column / row / recursive scheme §3.1),
//                          recursive level-set reordering (§3.3),
//                          per-block adaptive kernel selection (§3.4),
//                          per-block storage (CSC-style triangles via the
//                          sub-solvers, CSR/DCSR squares, diagonal separate)
//   solve (many times):    walk the execution steps, calling the selected
//                          SpTRSV kernel on each triangular block and the
//                          selected SpMV kernel on each square block.
//
// Typical use:
//
//   blocktri::BlockSolver<double>::Options opt;
//   opt.planner.stop_rows = 4096;
//   blocktri::BlockSolver<double> solver(L, opt);   // preprocess once
//   std::vector<double> x = solver.solve(b);        // solve many rhs
//
// Simulated-GPU timing (the benchmark path) goes through solve_simulated.
#pragma once

#include <memory>
#include <vector>

#include "core/adaptive.hpp"
#include "core/plan.hpp"
#include "sim/cache.hpp"
#include "sim/host_sim.hpp"
#include "sim/machine.hpp"
#include "sim/report.hpp"
#include "spmv/kernels.hpp"
#include "sptrsv/cusparse_like.hpp"
#include "sptrsv/diagonal.hpp"
#include "sptrsv/levelset.hpp"
#include "sptrsv/syncfree.hpp"

namespace blocktri {

/// Time split between the triangular and SpMV parts of a blocked solve —
/// the quantity Fig. 4 plots.
struct BlockSolveBreakdown {
  double tri_ns = 0.0;
  double spmv_ns = 0.0;
  int tri_kernels = 0;
  int spmv_kernels = 0;
};

template <class T>
class BlockSolver {
 public:
  struct Options {
    BlockScheme scheme = BlockScheme::kRecursive;
    PlannerOptions planner;
    /// Adaptive per-block kernel selection (Alg. 7). When false, every
    /// triangular block uses forced_tri and every square block forced_square
    /// — the ablation mode of bench/ablation_adaptive.
    bool adaptive = true;
    TriKernelKind forced_tri = TriKernelKind::kSyncFree;
    SpmvKernelKind forced_square = SpmvKernelKind::kScalarCsr;
    ThresholdTable thresholds;
  };

  /// Preprocessing stage. `lower` must be lower triangular with a nonzero
  /// diagonal stored last in each row.
  BlockSolver(const Csr<T>& lower, const Options& opt);

  /// Solves L x = b (host execution only).
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Solves and accounts simulated GPU time into `report`. `cache` carries
  /// locality across calls (pass the same cache for warm-cache measurements;
  /// nullptr models a cache-less device). `breakdown` (optional) splits the
  /// time between triangular and SpMV kernels.
  std::vector<T> solve_simulated(const std::vector<T>& b,
                                 const sim::GpuSpec& gpu,
                                 sim::CacheModel* cache,
                                 sim::SolveReport* report,
                                 BlockSolveBreakdown* breakdown = nullptr,
                                 bool fp64 = sizeof(T) == 8) const;

  // --- Introspection -------------------------------------------------------

  struct TriBlockInfo {
    index_t r0 = 0, r1 = 0;
    TriKernelKind kind = TriKernelKind::kSyncFree;
    index_t nlevels = 0;
    offset_t nnz = 0;
  };
  struct SquareBlockInfo {
    SquareBlockRef ref{};
    SpmvKernelKind kind = SpmvKernelKind::kScalarCsr;
    offset_t nnz = 0;
    double empty_ratio = 0.0;
  };

  const BlockPlan& plan() const { return plan_; }
  const std::vector<TriBlockInfo>& tri_info() const { return tri_info_; }
  const std::vector<SquareBlockInfo>& square_info() const {
    return square_info_;
  }

  index_t n() const { return plan_.n; }
  offset_t nnz() const { return nnz_; }

  /// Nonzeros that ended up in square blocks — the §3.3 claim that the
  /// reordering concentrates work into the parallel-friendly SpMV parts.
  offset_t nnz_in_squares() const;

  /// Host-model preprocessing cost (Table 5 column 1).
  struct PreprocessStats {
    std::int64_t host_ops = 0;
    std::int64_t host_bytes = 0;
    double model_ms = 0.0;
  };
  PreprocessStats preprocess_stats() const;

 private:
  struct TriBlock {
    TriBlockInfo info;
    std::unique_ptr<DiagonalSolver<T>> diag;
    std::unique_ptr<LevelSetSolver<T>> levelset;
    std::unique_ptr<SyncFreeSolver<T>> syncfree;
    std::unique_ptr<CusparseLikeSolver<T>> cusparse;
  };
  struct SquareBlock {
    SquareBlockInfo info;
    Csr<T> csr;    // populated for the CSR kernel kinds
    Dcsr<T> dcsr;  // populated for the DCSR kernel kinds
  };

  void exec_tri(const TriBlock& blk, const T* b, T* x,
                const TrsvSim* s) const;
  void exec_square(const SquareBlock& blk, const T* x, T* y,
                   const SpmvSim* s) const;

  Options opt_;
  BlockPlan plan_;
  offset_t nnz_ = 0;
  std::vector<TriBlock> tri_;
  std::vector<SquareBlock> squares_;
  std::vector<TriBlockInfo> tri_info_;
  std::vector<SquareBlockInfo> square_info_;
  std::int64_t build_ops_ = 0;    // extraction/conversion cost counters
  std::int64_t build_bytes_ = 0;
  // Simulated address layout: x, b and the per-solve scratch region.
  std::uint64_t x_base_ = 0, b_base_ = 0, aux_base_ = 0;
};

}  // namespace blocktri
