// Adaptive kernel selection (§3.4, Fig. 5, Algorithm 7).
//
// After the recursive blocking, every triangular block is solved by one of
// four SpTRSV kernels and every square block is multiplied by one of four
// SpMV kernels. The paper selects per block from two features each:
//
//   triangular: (nnz/row, nlevels)      square: (nnz/row, emptyratio)
//
// with thresholds fitted offline from 373,814 measured kernel timings
// (Fig. 5). The published decision tree (Alg. 7) is the default
// ThresholdTable below; bench/fig5_adaptive_heatmap regenerates a table from
// simulated measurements the same way the authors fitted theirs.
#pragma once

#include <string>

#include "analysis/features.hpp"
#include "spmv/kernels.hpp"

namespace blocktri {

enum class TriKernelKind {
  kCompletelyParallel,  // diagonal-only block (§3.4 case 1)
  kLevelSet,            // few levels, short rows
  kSyncFree,            // the broad middle
  kCusparseLike,        // very deep blocks (nlevels > 20000)
};

std::string to_string(TriKernelKind k);

struct ThresholdTable {
  // SpTRSV thresholds (Alg. 7 lines 4-10).
  double tri_nnz_row_levelset = 15.0;   // nnz/row <= 15 ...
  index_t tri_nlevels_levelset = 20;    // ... and nlevels <= 20 -> level-set
  index_t tri_nlevels_unit_row = 100;   // nnz/row == 1 and nlevels <= 100
  index_t tri_nlevels_cusparse = 20000; // nlevels > 20000 -> cuSPARSE-like

  // SpMV thresholds (Alg. 7 lines 12-20).
  double sq_nnz_row_scalar = 12.0;  // nnz/row <= 12 -> scalar kernels
  double sq_empty_scalar = 0.50;    // scalar: emptyratio > 50% -> DCSR
  double sq_empty_vector = 0.15;    // vector: emptyratio > 15% -> DCSR

  // Scheme-level depth-vs-colors decision (DESIGN.md §16): the HBMC
  // reordering replaces O(level-depth) synchronisation with O(color-bound)
  // steps, but pays extra squares and a permutation that scatters locality.
  // It is considered worthwhile only when the level depth exceeds this
  // multiple of the color budget (hbmc_max_colors).
  double hbmc_depth_per_color = 4.0;
};

/// Thresholds fitted to THIS repository's device model via the Fig. 5
/// methodology (bench/fig5_adaptive_heatmap) — the same offline calibration
/// the authors ran on their physical GPUs to obtain the published table.
/// On the simulator, the warp-per-row (vector) SpMV kernels win at much
/// lower nnz/row than on the authors' hardware because the scalar kernels'
/// uncoalesced structure traffic is fully bandwidth-visible, and square
/// blocks switch to DCSR around 40% empty rows.
ThresholdTable simulator_fitted_thresholds();

/// The SpTRSV branch of Algorithm 7.
TriKernelKind select_tri_kernel(const TriangularFeatures& f,
                                const ThresholdTable& t);

/// The SpMV branch of Algorithm 7 (kind defined in spmv/kernels.hpp).
SpmvKernelKind select_square_kernel(const MatrixFeatures& f,
                                    const ThresholdTable& t);

/// Depth-vs-colors gate for the HBMC scheme: true when the whole-matrix
/// level depth is deep enough (relative to the color budget) that trading
/// locality for a fixed sync-step count should pay. Used by the tuner to
/// decide whether to price an HBMC candidate at all.
bool prefer_hbmc(index_t nlevels, index_t max_colors,
                 const ThresholdTable& t);

}  // namespace blocktri
