#include "core/adaptive.hpp"

#include <algorithm>

namespace blocktri {

std::string to_string(TriKernelKind k) {
  switch (k) {
    case TriKernelKind::kCompletelyParallel: return "completely-parallel";
    case TriKernelKind::kLevelSet: return "level-set";
    case TriKernelKind::kSyncFree: return "sync-free";
    case TriKernelKind::kCusparseLike: return "cusparse-like";
  }
  return "?";
}

ThresholdTable simulator_fitted_thresholds() {
  ThresholdTable t;  // triangular thresholds: the measured map matches the
                     // published one (P at nlevels==1, cuSPARSE beyond
                     // 20000 levels, sync-free in between)
  t.sq_nnz_row_scalar = 0.5;  // vector kernels essentially always win
  t.sq_empty_vector = 0.4;    // DCSR from ~40% empty rows
  return t;
}

TriKernelKind select_tri_kernel(const TriangularFeatures& f,
                                const ThresholdTable& t) {
  // Algorithm 7, triangular branch, in the paper's order of tests.
  if (f.nlevels <= 1) return TriKernelKind::kCompletelyParallel;
  if (f.nlevels > t.tri_nlevels_cusparse) return TriKernelKind::kCusparseLike;
  // "nnz/row == 1" in the paper counts off-diagonal entries (a pure chain);
  // with the diagonal stored, that reads as nnz/row <= 2.
  const double offdiag_per_row =
      f.base.nnz_per_row - 1.0;  // diagonal always present
  if ((offdiag_per_row <= 1.0 && f.nlevels <= t.tri_nlevels_unit_row) ||
      (offdiag_per_row <= t.tri_nnz_row_levelset &&
       f.nlevels <= t.tri_nlevels_levelset)) {
    return TriKernelKind::kLevelSet;
  }
  return TriKernelKind::kSyncFree;
}

SpmvKernelKind select_square_kernel(const MatrixFeatures& f,
                                    const ThresholdTable& t) {
  // nnz/row over the *non-empty* rows decides scalar vs vector (an empty-row
  // dominated block would otherwise always look "short-rowed").
  const double active_rows =
      static_cast<double>(f.nrows) * (1.0 - f.empty_ratio);
  const double nnz_row = active_rows > 0.0
                             ? static_cast<double>(f.nnz) / active_rows
                             : 0.0;
  if (nnz_row <= t.sq_nnz_row_scalar) {
    return f.empty_ratio <= t.sq_empty_scalar ? SpmvKernelKind::kScalarCsr
                                              : SpmvKernelKind::kScalarDcsr;
  }
  return f.empty_ratio <= t.sq_empty_vector ? SpmvKernelKind::kVectorCsr
                                            : SpmvKernelKind::kVectorDcsr;
}

bool prefer_hbmc(index_t nlevels, index_t max_colors,
                 const ThresholdTable& t) {
  return static_cast<double>(nlevels) >
         t.hbmc_depth_per_color * static_cast<double>(std::max<index_t>(
                                      1, max_colors));
}

}  // namespace blocktri
