// HBMC ordering tests (DESIGN.md §16): aggregation invariants, chain
// collapse, the color bound, the color-stepped plan layout, wave counts, and
// end-to-end solver correctness under BlockScheme::kHbmc.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/levels.hpp"
#include "common/prefix.hpp"
#include "core/plan.hpp"
#include "core/solver.hpp"
#include "gen/generators.hpp"
#include "helpers.hpp"
#include "order/hbmc.hpp"
#include "sparse/permute.hpp"
#include "sparse/triangular.hpp"
#include "sptrsv/serial.hpp"

namespace blocktri {
namespace {

using blocktri::testing::default_tol;
using blocktri::testing::test_matrices;
using blocktri::testing::VectorsNear;

constexpr index_t kW = 8;
constexpr index_t kMaxColors = 16;

/// Checks every structural invariant the plan layout relies on.
void check_partition(const Csr<double>& L, const order::HbmcPartition& part,
                     index_t max_colors) {
  const index_t n = L.nrows;
  ASSERT_EQ(part.n, n);
  ASSERT_TRUE(is_permutation_of_iota(part.new_of_old));

  // Bounds: ascending, covering, colors a subset of blocks.
  ASSERT_GE(part.color_bounds.size(), 2u);
  EXPECT_EQ(part.color_bounds.front(), 0);
  EXPECT_EQ(part.color_bounds.back(), n);
  EXPECT_EQ(static_cast<index_t>(part.color_bounds.size()) - 1, part.ncolors);
  for (std::size_t i = 1; i < part.color_bounds.size(); ++i)
    EXPECT_LE(part.color_bounds[i - 1], part.color_bounds[i]);
  EXPECT_EQ(part.block_bounds.front(), 0);
  EXPECT_EQ(part.block_bounds.back(), n);
  for (std::size_t i = 1; i < part.block_bounds.size(); ++i)
    EXPECT_LE(part.block_bounds[i - 1], part.block_bounds[i]);
  for (const index_t c : part.color_bounds)
    EXPECT_TRUE(std::find(part.block_bounds.begin(), part.block_bounds.end(),
                          c) != part.block_bounds.end())
        << "color bound " << c << " is not a block bound";

  // The doubling loop always lands at or under the color budget (W == n
  // degenerates to a single color, so the loop cannot overshoot).
  EXPECT_LE(part.ncolors, std::max<index_t>(1, max_colors));

  // The aggregation invariant in permuted space: every dependency of row r
  // is either in a strictly earlier color (covered by the inter-color
  // square) or inside r's own block (covered by its serial triangle).
  const auto P = permute_symmetric(L, part.new_of_old);
  index_t blk = 0, col = 0;
  for (index_t r = 0; r < n; ++r) {
    while (part.block_bounds[static_cast<std::size_t>(blk) + 1] <= r) ++blk;
    while (part.color_bounds[static_cast<std::size_t>(col) + 1] <= r) ++col;
    const index_t color_begin =
        part.color_bounds[static_cast<std::size_t>(col)];
    const index_t block_begin =
        part.block_bounds[static_cast<std::size_t>(blk)];
    for (offset_t k = P.row_ptr[static_cast<std::size_t>(r)];
         k < P.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const index_t q = P.col_idx[static_cast<std::size_t>(k)];
      ASSERT_LE(q, r) << "permuted matrix is not lower triangular";
      EXPECT_TRUE(q < color_begin || q >= block_begin)
          << "row " << r << " depends on column " << q
          << " inside its own color but outside its block";
    }
  }
}

TEST(HbmcPartition, InvariantsOnEveryFamily) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    const auto L = tm.build();
    const auto part = order::hbmc_partition(L, kW, kMaxColors);
    check_partition(L, part, kMaxColors);
  }
}

TEST(HbmcPartition, ChainCollapsesByDoubling) {
  // A 256-deep chain at W=8 would need 32 colors; one doubling to W=16
  // folds it into exactly 16 chained blocks, one per color.
  const auto L = gen::tridiag_chain(256, 2);
  const auto part = order::hbmc_partition(L, 8, 16);
  EXPECT_EQ(part.passes, 2);
  EXPECT_EQ(part.block_rows, 16);
  EXPECT_EQ(part.ncolors, 16);
  ASSERT_EQ(part.block_bounds.size(), 17u);
  for (std::size_t b = 1; b < part.block_bounds.size(); ++b)
    EXPECT_EQ(part.block_bounds[b] - part.block_bounds[b - 1], 16);
  check_partition(L, part, 16);
  // 16 sync colors versus the pattern's 256 levels: parallelism was
  // manufactured, not discovered.
  EXPECT_EQ(compute_level_sets(L).nlevels, 256);
}

TEST(HbmcPartition, DiagonalIsOneColor) {
  const auto L = gen::diagonal(100, 1);
  const auto part = order::hbmc_partition(L, 8, 16);
  EXPECT_EQ(part.ncolors, 1);
  EXPECT_EQ(part.passes, 1);
  EXPECT_EQ(part.block_rows, 8);
  // ceil(100 / 8) blocks, all within the single color.
  EXPECT_EQ(part.block_bounds.size(), 14u);
  check_partition(L, part, 16);
}

TEST(HbmcPartition, MergeWidthFusesStragglyColors) {
  // chain(64) at W=4 (no doubling: 16 <= 64 colors allowed) gives a 16-block
  // quotient chain; merge_width=16 ROWS is a budget of 16/4 = 4 quotient
  // blocks, fusing runs of 4 into single serial blocks — 4 colors of one
  // fat block each.
  const auto L = gen::tridiag_chain(64, 2);
  const auto merged = order::hbmc_partition(L, 4, 64, 16);
  EXPECT_EQ(merged.ncolors, 4);
  ASSERT_EQ(merged.block_bounds.size(), 5u);
  for (std::size_t b = 1; b < merged.block_bounds.size(); ++b)
    EXPECT_EQ(merged.block_bounds[b] - merged.block_bounds[b - 1], 16);
  check_partition(L, merged, 64);

  // merge_width == 0 must reproduce the unmerged partition exactly.
  const auto plain = order::hbmc_partition(L, 4, 64);
  const auto plain0 = order::hbmc_partition(L, 4, 64, 0);
  EXPECT_EQ(plain.ncolors, 16);
  EXPECT_EQ(plain0.new_of_old, plain.new_of_old);
  EXPECT_EQ(plain0.color_bounds, plain.color_bounds);
  EXPECT_EQ(plain0.block_bounds, plain.block_bounds);
}

TEST(HbmcPartition, EmptyAndSingleRow) {
  Csr<double> empty;
  empty.nrows = empty.ncols = 0;
  empty.row_ptr = {0};
  const auto p0 = order::hbmc_partition(empty, 8, 16);
  EXPECT_EQ(p0.ncolors, 1);
  EXPECT_EQ(p0.color_bounds, (std::vector<index_t>{0, 0}));
  EXPECT_EQ(p0.block_bounds, (std::vector<index_t>{0, 0}));

  const auto L1 = gen::diagonal(1, 3);
  const auto p1 = order::hbmc_partition(L1, 8, 16);
  EXPECT_EQ(p1.ncolors, 1);
  EXPECT_EQ(p1.new_of_old, (std::vector<index_t>{0}));
  check_partition(L1, p1, 16);
}

TEST(HbmcPartition, DeterministicAcrossCalls) {
  const auto L = gen::power_law(1500, 2.1, 128, 5.0, 7);
  const auto a = order::hbmc_partition(L, kW, kMaxColors);
  const auto b = order::hbmc_partition(L, kW, kMaxColors);
  EXPECT_EQ(a.new_of_old, b.new_of_old);
  EXPECT_EQ(a.color_bounds, b.color_bounds);
  EXPECT_EQ(a.block_bounds, b.block_bounds);
  EXPECT_EQ(a.passes, b.passes);
}

PlannerOptions hbmc_opts(index_t w = kW, index_t colors = kMaxColors) {
  PlannerOptions o;
  o.hbmc_block_rows = w;
  o.hbmc_max_colors = colors;
  return o;
}

TEST(HbmcPlan, ColorSteppedLayoutAndWaves) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    const auto L = tm.build();
    Csr<double> permuted;
    const auto p = order::plan_hbmc(L, hbmc_opts(), 0, &permuted);
    ASSERT_EQ(p.scheme, BlockScheme::kHbmc);
    const index_t C = p.num_colors();
    ASSERT_GE(C, 1);
    EXPECT_GE(p.hbmc_block_rows, kW);
    // One inter-color square per color after the first, spanning every
    // previously solved column.
    ASSERT_EQ(static_cast<index_t>(p.squares.size()), C - 1);
    for (index_t c = 1; c < C; ++c) {
      const auto& sq = p.squares[static_cast<std::size_t>(c) - 1];
      EXPECT_EQ(sq.r0, p.color_bounds[static_cast<std::size_t>(c)]);
      EXPECT_EQ(sq.r1, p.color_bounds[static_cast<std::size_t>(c) + 1]);
      EXPECT_EQ(sq.c0, 0);
      EXPECT_EQ(sq.c1, p.color_bounds[static_cast<std::size_t>(c)]);
    }
    // Fixed synchronisation budget: exactly 2C - 1 waves, independent of the
    // pattern's level depth.
    const auto waves = compute_step_waves(p);
    EXPECT_EQ(static_cast<index_t>(waves.size()), 2 * C - 1);
    // The permuted matrix is exactly P L P^T and still triangular.
    EXPECT_TRUE(is_lower_triangular_nonsingular(permuted));
    EXPECT_TRUE(equals(permuted, permute_symmetric(L, p.new_of_old)));
  }
}

TEST(HbmcPlan, BoundsSyncStepsOnDeepChain) {
  // The headline property: a chain_banded pattern with nlevels == n solves
  // in at most 2 * kMaxColors - 1 waves under HBMC.
  const auto L = gen::chain_banded(2000, 8, 2.0, 3);
  ASSERT_EQ(compute_level_sets(L).nlevels, 2000);
  Csr<double> permuted;
  const auto p = order::plan_hbmc(L, hbmc_opts(), 0, &permuted);
  EXPECT_LE(p.num_colors(), kMaxColors);
  EXPECT_LE(static_cast<index_t>(compute_step_waves(p).size()),
            2 * kMaxColors - 1);
  EXPECT_GT(p.host_ops, L.nnz());  // preprocessing accounted for
}

template <class T>
typename BlockSolver<T>::Options hbmc_solver_opts() {
  typename BlockSolver<T>::Options o;
  o.scheme = BlockScheme::kHbmc;
  return o;
}

TEST(HbmcSolver, MatchesSerialOnEveryFamily) {
  for (const auto& tm : test_matrices()) {
    SCOPED_TRACE(tm.name);
    const auto L = tm.build();
    const auto b = gen::random_rhs<double>(L.nrows, 501);
    BlockSolver<double> solver(L, hbmc_solver_opts<double>());
    EXPECT_EQ(solver.plan().scheme, BlockScheme::kHbmc);
    EXPECT_GE(solver.plan().num_colors(), 1);
    EXPECT_TRUE(VectorsNear(solver.solve(b), sptrsv_serial(L, b),
                            default_tol<double>()));
  }
}

TEST(HbmcSolver, MultithreadedAndCheckedSolves) {
  const auto L = gen::chain_banded(3000, 16, 2.0, 5);
  const auto b = gen::random_rhs<double>(L.nrows, 502);
  const auto want = sptrsv_serial(L, b);
  auto o = hbmc_solver_opts<double>();
  o.threads = 4;
  BlockSolver<double> solver(L, o);
  EXPECT_TRUE(VectorsNear(solver.solve(b), want, default_tol<double>()));
  const auto res = solver.solve_checked(b);
  ASSERT_TRUE(res.ok()) << res.status.to_string();
  EXPECT_LE(res.report.residual, res.report.tolerance);
  EXPECT_TRUE(VectorsNear(res.x, want, default_tol<double>()));
}

TEST(HbmcSolver, FloatPrecision) {
  const auto Lf = gen::convert_values<float>(gen::grid3d(9, 8, 7, 11));
  const auto b = gen::random_rhs<float>(Lf.nrows, 503);
  BlockSolver<float> solver(Lf, hbmc_solver_opts<float>());
  EXPECT_TRUE(VectorsNear(solver.solve(b), sptrsv_serial(Lf, b),
                          default_tol<float>()));
}

TEST(HbmcSolver, Laplace3dSolve) {
  const auto L = gen::laplace3d(12, 10, 8, 17);
  const auto b = gen::random_rhs<double>(L.nrows, 504);
  BlockSolver<double> solver(L, hbmc_solver_opts<double>());
  EXPECT_TRUE(VectorsNear(solver.solve(b), sptrsv_serial(L, b),
                          default_tol<double>()));
}

TEST(HbmcAdaptive, DepthVersusColorsGate) {
  const ThresholdTable t;  // hbmc_depth_per_color = 4
  EXPECT_TRUE(prefer_hbmc(2000, 16, t));    // 2000 > 4 * 16
  EXPECT_FALSE(prefer_hbmc(20, 16, t));     // shallow: recursion suffices
  EXPECT_FALSE(prefer_hbmc(64, 16, t));     // boundary: 64 == 4 * 16
  EXPECT_TRUE(prefer_hbmc(65, 16, t));
  EXPECT_TRUE(prefer_hbmc(5, 0, t));        // color floor clamps to 1
}

TEST(HbmcPlan, SchemeNameAndEquality) {
  EXPECT_EQ(to_string(BlockScheme::kHbmc), "hbmc-block");
  const auto L = gen::banded(500, 8, 2.0, 13);
  Csr<double> permuted;
  const auto a = order::plan_hbmc(L, hbmc_opts(), 0, &permuted);
  auto b = a;
  EXPECT_TRUE(equals(a, b));
  b.color_bounds.back() += 0;  // no-op, still equal
  EXPECT_TRUE(equals(a, b));
  b.hbmc_block_rows += 1;
  EXPECT_FALSE(equals(a, b));  // HBMC fields participate in plan equality
}

}  // namespace
}  // namespace blocktri
