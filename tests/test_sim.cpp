// Simulator unit tests: cache model behaviour, address space, the warp-task
// scheduler's roofline components and dependency handling, host cost model.
#include <gtest/gtest.h>

#include "common/types.hpp"
#include "sim/cache.hpp"
#include "sim/host_sim.hpp"
#include "sim/kernel_sim.hpp"
#include "sim/machine.hpp"

namespace blocktri::sim {
namespace {

TEST(Machine, PresetsMatchTable3) {
  const GpuSpec x = titan_x();
  EXPECT_EQ(x.cores(), 3072);
  EXPECT_DOUBLE_EQ(x.clock_ghz, 1.075);
  EXPECT_DOUBLE_EQ(x.mem_bandwidth_gbps, 336.5);

  const GpuSpec rtx = titan_rtx();
  EXPECT_EQ(rtx.cores(), 4608);
  EXPECT_DOUBLE_EQ(rtx.clock_ghz, 1.770);
  EXPECT_DOUBLE_EQ(rtx.mem_bandwidth_gbps, 672.0);
  EXPECT_GT(rtx.warp_slots(), 0);
}

TEST(Machine, Fp64RateReducesPeak) {
  const GpuSpec g = titan_rtx();
  EXPECT_DOUBLE_EQ(g.peak_flops_per_ns(true) * 32.0, g.peak_flops_per_ns(false));
}

TEST(Cache, HitAfterMiss) {
  CacheModel c(1 << 16, 64, 4);
  EXPECT_EQ(c.access(0x1000, 8), 1);  // cold miss
  EXPECT_EQ(c.access(0x1000, 8), 0);  // hit
  EXPECT_EQ(c.access(0x1008, 8), 0);  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, StraddlingAccessTouchesTwoLines) {
  CacheModel c(1 << 16, 64, 4);
  EXPECT_EQ(c.access(60, 8), 2);  // crosses the line boundary at 64
}

TEST(Cache, LruEviction) {
  // One set: capacity 4 lines of 64B, associativity 4.
  CacheModel c(4 * 64, 64, 4);
  // Fill the (single) set; line addresses must map to the same set.
  for (int i = 0; i < 4; ++i) c.access(static_cast<std::uint64_t>(i) * 64, 1);
  EXPECT_EQ(c.access(0, 1), 0);        // 0 still resident, refreshes LRU
  EXPECT_EQ(c.access(4 * 64, 1), 1);   // evicts line 1 (LRU)
  EXPECT_EQ(c.access(0, 1), 0);        // 0 survived
  EXPECT_EQ(c.access(1 * 64, 1), 1);   // line 1 was evicted
}

TEST(Cache, ResetForgets) {
  CacheModel c(1 << 12, 64, 4);
  c.access(0, 8);
  c.reset();
  EXPECT_EQ(c.access(0, 8), 1);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, CapacityRoundsToPowerOfTwoSets) {
  CacheModel c(100 * 64 * 4, 64, 4);  // 100 sets requested -> 64 sets
  EXPECT_EQ(c.capacity_bytes(), 64u * 64u * 4u);
}

TEST(Cache, WorkingSetLargerThanCapacityThrashes) {
  CacheModel c(1 << 12, 64, 4);  // 4 KB
  // Stream 64 KB twice: second pass must still miss (capacity).
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t a = 0; a < (1u << 16); a += 64) c.access(a, 1);
  EXPECT_GT(c.misses(), 1500u);
}

TEST(Cache, WorkingSetSmallerThanCapacityGetsWarm) {
  CacheModel c(1 << 16, 64, 8);  // 64 KB
  for (int pass = 0; pass < 4; ++pass)
    for (std::uint64_t a = 0; a < (1u << 14); a += 64) c.access(a, 1);
  // First pass misses (256), later passes hit.
  EXPECT_EQ(c.misses(), 256u);
  EXPECT_EQ(c.hits(), 768u);
}

TEST(AddressSpace, NonOverlappingAligned) {
  AddressSpace as;
  const auto a = as.reserve(100);
  const auto b = as.reserve(10);
  const auto c = as.reserve(1);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 10);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
}

GpuSpec tiny_gpu() {
  GpuSpec g = titan_rtx();
  g.num_sms = 1;
  g.max_warps_per_sm = 2;  // 2 warp slots: scheduling is hand-checkable
  g.warp_start_ns = 0.0;
  g.kernel_launch_ns = 0.0;
  return g;
}

TEST(KernelSim, IndependentTasksPackOntoSlots) {
  KernelSim ks(tiny_gpu(), nullptr, true);
  for (int t = 0; t < 4; ++t) {
    ks.begin_task();
    ks.serial_ns(100.0);
    ks.end_task();
  }
  const KernelReport rep = ks.finish();
  // 4 x 100ns on 2 slots = 200ns latency.
  EXPECT_DOUBLE_EQ(rep.latency_ns, 200.0);
  EXPECT_DOUBLE_EQ(rep.ns, 200.0);
  EXPECT_EQ(rep.tasks, 4);
}

TEST(KernelSim, DependencyChainSerialises) {
  const GpuSpec g = tiny_gpu();
  KernelSim ks(g, nullptr, true);
  std::int64_t prev = -1;
  for (int t = 0; t < 3; ++t) {
    ks.begin_task();
    if (prev >= 0) ks.dep(prev);
    ks.serial_ns(100.0);
    prev = ks.end_task();
  }
  const KernelReport rep = ks.finish();
  // Chain: 100 + (prop + spin-detect + 100) * 2.
  EXPECT_DOUBLE_EQ(rep.latency_ns,
                   300.0 + 2 * (g.atomic_propagate_ns + g.spin_poll_ns));
}

TEST(KernelSim, SpinningTaskHoldsItsSlot) {
  // Slot-holding semantics: tasks acquire slots in issue order even while
  // waiting on dependencies, so a long chain starves unrelated tasks.
  const GpuSpec g = tiny_gpu();  // 2 slots
  KernelSim ks(g, nullptr, true);
  ks.begin_task();               // t0: 1000ns of work
  ks.serial_ns(1000.0);
  const auto t0 = ks.end_task();
  ks.begin_task();               // t1: waits on t0, occupies slot 2
  ks.dep(t0);
  ks.serial_ns(10.0);
  ks.end_task();
  ks.begin_task();               // t2: independent, but both slots are busy
  ks.serial_ns(10.0);
  ks.end_task();
  const KernelReport rep = ks.finish();
  // t2 can only start when t0's slot frees at 1000 (t1 spins until
  // 1000+prop+poll). Makespan = t1's finish = 1000 + prop + poll + 10.
  EXPECT_DOUBLE_EQ(rep.latency_ns,
                   1010.0 + g.atomic_propagate_ns + g.spin_poll_ns);
}

TEST(KernelSim, BandwidthRooflineDominatesWhenStreaming) {
  GpuSpec g = tiny_gpu();
  g.mem_bandwidth_gbps = 100.0;  // bytes per ns
  KernelSim ks(g, nullptr, true);
  ks.begin_task();
  ks.stream_bytes(1000000);
  ks.serial_ns(1.0);
  ks.end_task();
  const KernelReport rep = ks.finish();
  EXPECT_DOUBLE_EQ(rep.bandwidth_ns, 10000.0);
  EXPECT_DOUBLE_EQ(rep.ns, 10000.0);
  EXPECT_EQ(rep.bytes, 1000000);
}

TEST(KernelSim, GatherCostsMissVsHit) {
  GpuSpec g = tiny_gpu();
  CacheModel cache(1 << 16, g.cache_line_bytes, 8);
  KernelSim ks(g, &cache, true);
  const std::uint64_t addr = 0x4000;
  ks.begin_task();
  ks.touch(addr, 8);  // miss
  ks.touch(addr, 8);  // hit
  ks.end_task();
  const KernelReport rep = ks.finish();
  EXPECT_DOUBLE_EQ(rep.latency_ns, g.dram_latency_ns + g.cache_hit_latency_ns);
  EXPECT_EQ(rep.cache_misses, 1u);
  EXPECT_EQ(rep.cache_hits, 1u);
  EXPECT_EQ(rep.bytes, g.cache_line_bytes);  // one missed line
}

TEST(KernelSim, GatherGroupsBy32Lanes) {
  GpuSpec g = tiny_gpu();
  KernelSim ks(g, nullptr, true);  // no cache: every group is a DRAM access
  std::uint64_t addrs[64];
  for (int i = 0; i < 64; ++i) addrs[i] = static_cast<std::uint64_t>(i) * 4096;
  ks.begin_task();
  ks.gather(addrs, 64, 8);  // two 32-lane groups
  ks.end_task();
  const KernelReport rep = ks.finish();
  EXPECT_DOUBLE_EQ(rep.latency_ns, 2 * g.dram_latency_ns);
}

TEST(KernelSim, FlopsCountAndComputeRoofline) {
  GpuSpec g = tiny_gpu();
  KernelSim ks(g, nullptr, false);
  ks.begin_task();
  ks.fma_iters(10);
  ks.flops(5);
  ks.end_task();
  const KernelReport rep = ks.finish();
  EXPECT_EQ(rep.flops, 25);
  EXPECT_GT(rep.compute_ns, 0.0);
}

TEST(KernelSim, ReusableAfterFinish) {
  KernelSim ks(tiny_gpu(), nullptr, true);
  ks.begin_task();
  ks.serial_ns(50.0);
  ks.end_task();
  (void)ks.finish();
  ks.begin_task();
  ks.serial_ns(70.0);
  ks.end_task();
  const KernelReport rep = ks.finish();
  EXPECT_DOUBLE_EQ(rep.latency_ns, 70.0);
  EXPECT_EQ(rep.tasks, 1);
}

TEST(KernelSim, DepOnFutureTaskRejected) {
  KernelSim ks(tiny_gpu(), nullptr, true);
  ks.begin_task();
  EXPECT_THROW(ks.dep(0), blocktri::Error);  // task 0 has not finished registration
}

TEST(SolveReport, ComposesKernelsAndOverheads) {
  SolveReport rep;
  KernelReport k;
  k.ns = 100.0;
  k.flops = 1000;
  k.bytes = 64;
  rep.add_kernel_launch(k, 4000.0);
  rep.add_kernel_grid_sync(k, 700.0);
  EXPECT_DOUBLE_EQ(rep.ns, 100.0 + 4000.0 + 100.0 + 700.0);
  EXPECT_EQ(rep.flops, 2000);
  EXPECT_EQ(rep.kernel_launches, 1);
  EXPECT_EQ(rep.grid_syncs, 1);
  EXPECT_DOUBLE_EQ(rep.gflops(), 2000.0 / 4900.0);
}

TEST(HostSim, TwoTermRoofline) {
  HostSpec spec;
  spec.ops_per_ns = 2.0;
  spec.mem_bandwidth_gbps = 10.0;
  HostSim hs(spec);
  hs.ops(1000);   // 500 ns op-limited
  hs.bytes(100);  // 10 ns bandwidth-limited
  EXPECT_DOUBLE_EQ(hs.ns(), 500.0);
  hs.bytes(100000);  // now bandwidth dominates: 10010 bytes -> 1001 ns? no:
  // total bytes 100100 -> 10010 ns > 500 ns.
  EXPECT_DOUBLE_EQ(hs.ns(), 10010.0);
  EXPECT_EQ(hs.total_ops(), 1000);
}

}  // namespace
}  // namespace blocktri::sim
